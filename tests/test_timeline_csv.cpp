// Tests for the ASCII timeline renderer and the CSV writer.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.hpp"
#include "netsim/simulator.hpp"
#include "netsim/timeline.hpp"
#include "topology/builders.hpp"

namespace echelon {
namespace {

TEST(Timeline, CellCodeExtraction) {
  using netsim::TimelineRecorder;
  EXPECT_EQ(TimelineRecorder::cell_code("it0.f.s2.mb3"), "f3");
  EXPECT_EQ(TimelineRecorder::cell_code("it1.b.l10.w2"), "b2");
  EXPECT_EQ(TimelineRecorder::cell_code("opt"), "o");
  EXPECT_EQ(TimelineRecorder::cell_code("123"), "12");
}

TEST(Timeline, RecordsAndRendersTasks) {
  auto fabric = topology::make_big_switch(2, 10.0);
  netsim::Simulator sim(&fabric.topo);
  netsim::TimelineRecorder rec(sim);
  const WorkerId w0 = sim.add_worker(fabric.hosts[0]);
  const WorkerId w1 = sim.add_worker(fabric.hosts[1]);
  sim.enqueue_task(w0, 2.0, "f.mb0");
  sim.enqueue_task(w0, 2.0, "f.mb1");
  sim.schedule_at(1.0, [w1](netsim::Simulator& s) {
    s.enqueue_task(w1, 1.0, "b.mb0");
  });
  sim.run();

  ASSERT_EQ(rec.records().size(), 3u);
  const std::string out = rec.render(/*slot=*/1.0);
  // Two rows, worker 0 busy for 4 slots, worker 1 idle then busy one slot.
  std::istringstream is(out);
  std::string row0, row1;
  std::getline(is, row0);
  std::getline(is, row1);
  EXPECT_NE(row0.find("f0"), std::string::npos);
  EXPECT_NE(row0.find("f1"), std::string::npos);
  EXPECT_NE(row1.find("b0"), std::string::npos);
  EXPECT_NE(row1.find(".."), std::string::npos);  // idle first slot
}

TEST(Timeline, EmptyRunRendersNothing) {
  auto fabric = topology::make_big_switch(2, 10.0);
  netsim::Simulator sim(&fabric.topo);
  netsim::TimelineRecorder rec(sim);
  sim.run();
  EXPECT_TRUE(rec.render(1.0).empty());
}

TEST(Csv, WritesHeaderAndRows) {
  Csv csv({"a", "b"});
  csv.add_row({"1", "x"});
  csv.add_row({"2", "y"});
  std::ostringstream os;
  csv.write(os);
  EXPECT_EQ(os.str(), "a,b\n1,x\n2,y\n");
  EXPECT_EQ(csv.row_count(), 2u);
}

TEST(Csv, EscapesSpecialCharacters) {
  Csv csv({"v"});
  csv.add_row({"plain"});
  csv.add_row({"with,comma"});
  csv.add_row({"with\"quote"});
  std::ostringstream os;
  csv.write(os);
  EXPECT_EQ(os.str(), "v\nplain\n\"with,comma\"\n\"with\"\"quote\"\n");
}

TEST(Csv, NumRoundTripsDoubles) {
  const double v = 0.1 + 0.2;
  EXPECT_EQ(std::stod(Csv::num(v)), v);
}

TEST(Csv, WriteFileAndReadBack) {
  const std::string path = "/tmp/echelonflow_csv_test.csv";
  Csv csv({"k", "v"});
  csv.add_row({"x", "1"});
  ASSERT_TRUE(csv.write_file(path));
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "k,v");
  std::getline(f, line);
  EXPECT_EQ(line, "x,1");
  std::remove(path.c_str());
}

TEST(Csv, WriteFileFailsOnBadPath) {
  Csv csv({"a"});
  EXPECT_FALSE(csv.write_file("/nonexistent-dir/x.csv"));
}

}  // namespace
}  // namespace echelon
