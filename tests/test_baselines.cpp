// Tests for the SRPT per-flow baseline and the weighted Eq. 4 variant of
// EchelonFlow-MADD.

#include <gtest/gtest.h>

#include "echelon/echelon_madd.hpp"
#include "echelon/registry.hpp"
#include "echelon/srpt.hpp"
#include "netsim/simulator.hpp"
#include "topology/builders.hpp"

namespace echelon::ef {
namespace {

using netsim::FlowSpec;
using netsim::Simulator;

TEST(Srpt, ShortestFlowPreempts) {
  auto fabric = topology::make_big_switch(2, 10.0);
  Simulator sim(&fabric.topo);
  SrptScheduler sched;
  sim.set_scheduler(&sched);
  const FlowId big = sim.submit_flow(FlowSpec{
      .src = fabric.hosts[0], .dst = fabric.hosts[1], .size = 80.0});
  sim.schedule_at(1.0, [&fabric](Simulator& s) {
    s.submit_flow(FlowSpec{
        .src = fabric.hosts[0], .dst = fabric.hosts[1], .size = 10.0});
  });
  sim.run();
  // big sends 10 in [0,1], then is preempted until the short flow drains.
  EXPECT_NEAR(sim.flow(FlowId{1}).finish_time, 2.0, 1e-9);
  EXPECT_NEAR(sim.flow(big).finish_time, 9.0, 1e-9);
}

TEST(Srpt, MinimizesMeanFctVsFairSharing) {
  auto run_mean_fct = [](bool srpt) {
    auto fabric = topology::make_big_switch(2, 10.0);
    Simulator sim(&fabric.topo);
    SrptScheduler sched;
    if (srpt) sim.set_scheduler(&sched);
    std::vector<FlowId> ids;
    for (const double size : {10.0, 20.0, 40.0, 80.0}) {
      ids.push_back(sim.submit_flow(FlowSpec{
          .src = fabric.hosts[0], .dst = fabric.hosts[1], .size = size}));
    }
    sim.run();
    double sum = 0.0;
    for (const FlowId id : ids) sum += sim.flow(id).completion_time();
    return sum / static_cast<double>(ids.size());
  };
  EXPECT_LT(run_mean_fct(true), run_mean_fct(false));
  // SRPT serves 10,20,40,80 in order: FCTs 1,3,7,15 -> mean 6.5.
  EXPECT_NEAR(run_mean_fct(true), 6.5, 1e-9);
}

TEST(Srpt, WorkConservingAcrossPorts) {
  auto fabric = topology::make_big_switch(4, 10.0);
  Simulator sim(&fabric.topo);
  SrptScheduler sched;
  sim.set_scheduler(&sched);
  const FlowId a = sim.submit_flow(FlowSpec{
      .src = fabric.hosts[0], .dst = fabric.hosts[1], .size = 40.0});
  const FlowId b = sim.submit_flow(FlowSpec{
      .src = fabric.hosts[2], .dst = fabric.hosts[3], .size = 80.0});
  sim.run();
  EXPECT_NEAR(sim.flow(a).finish_time, 4.0, 1e-9);
  EXPECT_NEAR(sim.flow(b).finish_time, 8.0, 1e-9);  // disjoint ports: full rate
}

TEST(WeightedEchelon, HigherWeightServedFirst) {
  auto fabric = topology::make_big_switch(2, 10.0);
  Simulator sim(&fabric.topo);
  Registry reg;
  reg.attach(sim);
  EchelonMaddScheduler sched(&reg, {.use_weights = true});
  sim.set_scheduler(&sched);
  // Two identical single-flow EchelonFlows; the second carries weight 4.
  const EchelonFlowId light =
      reg.create(JobId{0}, Arrangement::coflow(1), "light", 1.0);
  const EchelonFlowId heavy =
      reg.create(JobId{1}, Arrangement::coflow(1), "heavy", 4.0);
  const FlowId fl = sim.submit_flow(FlowSpec{.src = fabric.hosts[0],
                                             .dst = fabric.hosts[1],
                                             .size = 40.0,
                                             .group = light,
                                             .index_in_group = 0});
  const FlowId fh = sim.submit_flow(FlowSpec{.src = fabric.hosts[0],
                                             .dst = fabric.hosts[1],
                                             .size = 40.0,
                                             .group = heavy,
                                             .index_in_group = 0});
  sim.run();
  EXPECT_NEAR(sim.flow(fh).finish_time, 4.0, 1e-9);
  EXPECT_NEAR(sim.flow(fl).finish_time, 8.0, 1e-9);
  // Weighted Eq. 4: 4*4 + 1*8 = 24 beats the unweighted order's 4*8+1*4=36.
  EXPECT_NEAR(reg.weighted_total_tardiness(), 24.0, 1e-9);
}

TEST(WeightedEchelon, DisabledWeightsIgnoreRegistryWeight) {
  auto fabric = topology::make_big_switch(2, 10.0);
  Simulator sim(&fabric.topo);
  Registry reg;
  reg.attach(sim);
  EchelonMaddScheduler sched(&reg);  // use_weights defaults to false
  sim.set_scheduler(&sched);
  const EchelonFlowId light =
      reg.create(JobId{0}, Arrangement::coflow(1), "light", 1.0);
  const EchelonFlowId heavy =
      reg.create(JobId{1}, Arrangement::coflow(1), "heavy", 4.0);
  const FlowId fl = sim.submit_flow(FlowSpec{.src = fabric.hosts[0],
                                             .dst = fabric.hosts[1],
                                             .size = 40.0,
                                             .group = light,
                                             .index_in_group = 0});
  (void)sim.submit_flow(FlowSpec{.src = fabric.hosts[0],
                                 .dst = fabric.hosts[1],
                                 .size = 40.0,
                                 .group = heavy,
                                 .index_in_group = 0});
  sim.run();
  // Equal rank keys: stable order (map key order = creation order) wins.
  EXPECT_NEAR(sim.flow(fl).finish_time, 4.0, 1e-9);
}

}  // namespace
}  // namespace echelon::ef
