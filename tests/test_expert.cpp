// Tests for the Expert-Parallel (MoE) paradigm -- the "future paradigm"
// extensibility demonstration.

#include <gtest/gtest.h>

#include "echelon/echelon_madd.hpp"
#include "echelon/registry.hpp"
#include "netsim/simulator.hpp"
#include "topology/builders.hpp"
#include "workload/ep.hpp"

namespace echelon::workload {
namespace {

TEST(Expert, StructureIsCoflowCompliantAllToAll) {
  auto fabric = topology::make_big_switch(4, 1e30);
  netsim::Simulator sim(&fabric.topo);
  ef::Registry reg;
  const auto placement = make_placement(sim, fabric.hosts);
  const auto job = generate_expert(
      {.model = make_mlp(3, 64, 4), .gpu = unit_gpu(), .iterations = 1},
      placement, reg, JobId{0});
  // 4 all-to-alls per layer (dispatch/combine x fwd/bwd).
  EXPECT_EQ(job.echelonflows.size(), 12u);
  for (const EchelonFlowId id : job.echelonflows) {
    const auto& a = reg.get(id).arrangement();
    EXPECT_TRUE(a.is_coflow_compliant());
    EXPECT_EQ(a.size(), 12);  // m(m-1) flows per all-to-all
  }
  EXPECT_TRUE(job.workflow.is_acyclic());
  EXPECT_EQ(job.paradigm, Paradigm::kExpert);
}

TEST(Expert, InfiniteBandwidthMakespanIsComputeBound) {
  auto fabric = topology::make_big_switch(4, 1e30);
  netsim::Simulator sim(&fabric.topo);
  ef::Registry reg;
  const auto placement = make_placement(sim, fabric.hosts);
  const ModelSpec model = make_mlp(3, 64, 4);
  const GpuSpec gpu = unit_gpu();
  const auto job = generate_expert(
      {.model = model, .gpu = gpu, .iterations = 1,
       .optimizer_fraction = 0.0},
      placement, reg, JobId{0});
  netsim::WorkflowEngine eng(&sim, &job.workflow);
  eng.launch(0.0);
  const SimTime t = sim.run();
  EXPECT_TRUE(eng.finished());
  // Per layer: expert fwd + 0.1 fwd (combine) + bwd + 0.1 bwd.
  const double expected = 1.1 * gpu.compute_time(model.total_fwd_flops()) +
                          1.1 * gpu.compute_time(model.total_bwd_flops());
  EXPECT_NEAR(t, expected, 1e-6);
}

TEST(Expert, CompletesOnFiniteFabricUnderEchelonScheduler) {
  auto fabric = topology::make_big_switch(4, 1e9);
  netsim::Simulator sim(&fabric.topo);
  ef::Registry reg;
  reg.attach(sim);
  ef::EchelonMaddScheduler sched(&reg);
  sim.set_scheduler(&sched);
  const auto placement = make_placement(sim, fabric.hosts);
  const auto job = generate_expert(
      {.model = make_mlp(3, 256, 8), .gpu = a100(), .iterations = 2},
      placement, reg, JobId{0});
  netsim::WorkflowEngine eng(&sim, &job.workflow);
  eng.launch(0.0);
  sim.run();
  EXPECT_TRUE(eng.finished());
  for (const EchelonFlowId id : job.echelonflows) {
    EXPECT_TRUE(reg.get(id).complete());
  }
  ASSERT_EQ(job.iteration_end.size(), 2u);
}

TEST(Expert, RoutedFractionScalesFlowSizes) {
  auto make = [](double fraction) {
    auto fabric = topology::make_big_switch(4, 1e9);
    netsim::Simulator sim(&fabric.topo);
    ef::Registry reg;
    const auto placement = make_placement(sim, fabric.hosts);
    const auto job = generate_expert({.model = make_mlp(2, 64, 4),
                                      .gpu = unit_gpu(),
                                      .iterations = 1,
                                      .routed_fraction = fraction},
                                     placement, reg, JobId{0});
    for (const auto& n : job.workflow.nodes()) {
      if (n.kind == netsim::WfKind::kFlow) return n.flow.size;
    }
    return 0.0;
  };
  EXPECT_NEAR(make(0.5), 0.5 * make(1.0), 1e-9);
}

}  // namespace
}  // namespace echelon::workload
