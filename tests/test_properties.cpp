// Cross-cutting property tests: invariants that must hold for every
// (paradigm, rank count, scheduler) combination and for random EchelonFlow
// instances.
//
//  * liveness: every generated workflow drains under every scheduler;
//  * binding: every declared EchelonFlow completes with consistent
//    bookkeeping (started == finished == cardinality, tardiness >= 0 for
//    the head-anchored arrangements);
//  * conservation: GPU busy time equals the sum of task durations, flow
//    finish times are ordered after their starts;
//  * dominance: on a single bottleneck, the EchelonFlow scheduler's
//    realized tardiness matches analytic preemptive EDF.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "common/rng.hpp"
#include "echelon/coflow_madd.hpp"
#include "echelon/echelon_madd.hpp"
#include "echelon/exhaustive.hpp"
#include "echelon/registry.hpp"
#include "echelon/srpt.hpp"
#include "netsim/simulator.hpp"
#include "topology/builders.hpp"
#include "workload/dp.hpp"
#include "workload/ep.hpp"
#include "workload/fsdp.hpp"
#include "workload/pp.hpp"
#include "workload/tp.hpp"

namespace echelon {
namespace {

using workload::Paradigm;

// (paradigm, ranks, scheduler-name)
using Combo = std::tuple<Paradigm, int, const char*>;

class ParadigmScheduler : public ::testing::TestWithParam<Combo> {};

std::unique_ptr<netsim::NetworkScheduler> make_scheduler(
    const std::string& name, const ef::Registry* reg) {
  if (name == "coflow") return std::make_unique<ef::CoflowMaddScheduler>();
  if (name == "echelonflow") {
    return std::make_unique<ef::EchelonMaddScheduler>(reg);
  }
  if (name == "srpt") return std::make_unique<ef::SrptScheduler>();
  return nullptr;  // fair (simulator default)
}

TEST_P(ParadigmScheduler, DrainsWithConsistentBookkeeping) {
  const auto [paradigm, ranks, sched_name] = GetParam();

  const bool needs_ps = paradigm == Paradigm::kDpPs;
  auto fabric = topology::make_big_switch(ranks + (needs_ps ? 1 : 0), 1e8);
  netsim::Simulator sim(&fabric.topo);
  ef::Registry reg;
  reg.attach(sim);
  auto sched = make_scheduler(sched_name, &reg);
  if (sched) sim.set_scheduler(sched.get());

  std::vector<NodeId> hosts(fabric.hosts.begin(),
                            fabric.hosts.begin() + ranks);
  const auto placement = workload::make_placement(sim, hosts);
  const workload::ModelSpec model =
      workload::make_mlp(std::max(3, ranks), 128, 4);
  const workload::GpuSpec gpu = workload::a100();

  workload::GeneratedJob job;
  switch (paradigm) {
    case Paradigm::kDpAllReduce:
      job = workload::generate_dp_allreduce(
          {.model = model, .gpu = gpu, .buckets = 2, .iterations = 2},
          placement, reg, JobId{0});
      break;
    case Paradigm::kDpPs: {
      const WorkerId ps = sim.add_worker(fabric.hosts.back());
      job = workload::generate_dp_ps(
          {.model = model, .gpu = gpu, .buckets = 2, .iterations = 2},
          placement, fabric.hosts.back(), ps, reg, JobId{0});
      break;
    }
    case Paradigm::kPipeline:
      job = workload::generate_pipeline(
          {.model = model, .gpu = gpu, .micro_batches = 3, .iterations = 2},
          placement, reg, JobId{0});
      break;
    case Paradigm::kTensor:
      job = workload::generate_tensor(
          {.model = model, .gpu = gpu, .iterations = 2}, placement, reg,
          JobId{0});
      break;
    case Paradigm::kFsdp:
      job = workload::generate_fsdp(
          {.model = model, .gpu = gpu, .iterations = 2}, placement, reg,
          JobId{0});
      break;
    case Paradigm::kExpert:
      job = workload::generate_expert(
          {.model = model, .gpu = gpu, .iterations = 2}, placement, reg,
          JobId{0});
      break;
  }
  ASSERT_TRUE(job.workflow.is_acyclic());

  // Conservation checks via listeners.
  double task_seconds = 0.0;
  sim.add_task_listener(
      [&task_seconds](netsim::Simulator&, const netsim::ComputeTask& t) {
        EXPECT_GE(t.start_time, t.enqueue_time - kTimeEpsilon);
        EXPECT_NEAR(t.finish_time - t.start_time, t.duration, 1e-9);
        task_seconds += t.duration;
      });
  sim.add_flow_listener([](netsim::Simulator&, const netsim::Flow& f) {
    EXPECT_GE(f.finish_time, f.start_time - kTimeEpsilon);
    EXPECT_LE(f.remaining, 1e-6);
  });

  netsim::WorkflowEngine engine(&sim, &job.workflow);
  engine.launch(0.0);
  sim.run();
  ASSERT_TRUE(engine.finished())
      << workload::to_string(paradigm) << " x" << ranks << " under "
      << sched_name;

  // Every declared EchelonFlow completed with the declared cardinality.
  for (const EchelonFlowId id : job.echelonflows) {
    const ef::EchelonFlow& h = reg.get(id);
    EXPECT_TRUE(h.complete()) << h.label();
    EXPECT_EQ(h.started_count(), h.cardinality());
    EXPECT_GE(h.tardiness(), 0.0);  // head flow's transfer time is > 0
  }

  // GPU busy time equals total task seconds.
  double busy = 0.0;
  for (std::size_t w = 0; w < sim.worker_count(); ++w) {
    busy += sim.worker(WorkerId{w}).busy_time;
  }
  EXPECT_NEAR(busy, task_seconds, 1e-6);
}

constexpr const char* kSchedulers[] = {"fair", "srpt", "coflow",
                                       "echelonflow"};

INSTANTIATE_TEST_SUITE_P(
    AllCombos, ParadigmScheduler,
    ::testing::Combine(
        ::testing::Values(Paradigm::kDpAllReduce, Paradigm::kDpPs,
                          Paradigm::kPipeline, Paradigm::kTensor,
                          Paradigm::kFsdp, Paradigm::kExpert),
        ::testing::Values(2, 4), ::testing::ValuesIn(kSchedulers)));

// ---------------------------------------------------------------------------
// Single-bottleneck dominance: the simulated EchelonFlow scheduler realizes
// the analytic preemptive-EDF tardiness on random staggered instances.
// ---------------------------------------------------------------------------

class EdfEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(EdfEquivalence, SimulatorMatchesAnalyticEdf) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 17);
  const int n = 2 + static_cast<int>(rng.uniform_int(5));

  std::vector<ef::MiniFlow> flows;
  std::vector<Duration> offsets;
  double off = 0.0;
  double release = 0.0;
  for (int i = 0; i < n; ++i) {
    ef::MiniFlow f;
    release += rng.uniform(0.0, 2.0);
    f.release = release;
    f.size = rng.uniform(0.5, 4.0);
    offsets.push_back(off);
    off += rng.uniform(0.0, 2.0);
    flows.push_back(f);
  }
  for (int i = 0; i < n; ++i) {
    flows[static_cast<std::size_t>(i)].deadline =
        flows[0].release + offsets[static_cast<std::size_t>(i)];
  }

  auto fabric = topology::make_big_switch(2, 1.0);
  netsim::Simulator sim(&fabric.topo);
  ef::Registry reg;
  reg.attach(sim);
  ef::EchelonMaddScheduler sched(&reg);
  sim.set_scheduler(&sched);
  const EchelonFlowId id =
      reg.create(JobId{0}, ef::Arrangement::from_offsets(offsets));
  for (int i = 0; i < n; ++i) {
    sim.schedule_at(flows[static_cast<std::size_t>(i)].release,
                    [&, i](netsim::Simulator& s) {
                      s.submit_flow(netsim::FlowSpec{
                          .src = fabric.hosts[0],
                          .dst = fabric.hosts[1],
                          .size = flows[static_cast<std::size_t>(i)].size,
                          .group = id,
                          .index_in_group = i});
                    });
  }
  sim.run();

  const double analytic =
      ef::max_tardiness(flows, ef::simulate_edf(flows, 1.0));
  EXPECT_NEAR(reg.get(id).tardiness(), analytic, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, EdfEquivalence,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace echelon
