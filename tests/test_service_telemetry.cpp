// Service-plane telemetry suite (DESIGN.md §15, EXPERIMENTS.md EXT-T).
//
// The telemetry layer promises to be a pure *observer* of the service loop:
//
//   1. Telemetry-on vs telemetry-off bit identity: every deterministic
//      ServiceResult field and the whole trace stream are unchanged by any
//      combination of flusher / SLO tracker / flight recorder / series
//      budget, across the scheduler x fabric x chaos x threads matrix.
//   2. Snapshot/restore mid-flush-window: the restored loop resumes the
//      flusher, SLO window, and flight ring exactly -- the Prometheus
//      exposition, SLO digest, and ring digest of a restored-then-drained
//      run match the uninterrupted run byte/bit-for-bit. Periodic saves
//      inject kSnapshot ring markers; later snapshots must still restore.
//   3. Chunked trace streaming: ECHCHUNK chunks merged back through
//      obs::merge_trace_chunks reproduce a byte-identical Perfetto trace.
//   4. SLO tracker unit behaviour: spec parsing, burn-rate / error-budget
//      arithmetic, rolling-window expiry, zero-budget edge.
//   5. Flight recorder: dump -> parse round-trip (exact doubles, notes with
//      spaces), ring overflow accounting, restore().
//   6. Seeded fuzz over SLO configurations and cut points
//      (ECHELON_SLO_SEEDS overrides the budget; sanitizer legs reduce it).
//
// Single translation unit: equivalence_harness.hpp defines the global
// allocation hook (see its header comment).

#include "equivalence_harness.hpp"

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/expose.hpp"
#include "obs/flightrec.hpp"
#include "obs/metrics.hpp"
#include "obs/perfetto.hpp"
#include "obs/stream.hpp"
#include "obs/trace.hpp"
#include "service/arrivals.hpp"
#include "service/service.hpp"
#include "service/slo.hpp"
#include "service/snapshot.hpp"

namespace echelon {
namespace {

using cluster::FabricKind;
using cluster::SchedulerKind;
using faultsim::ChaosProfile;
using faultsim::FaultPlan;
using service::parse_slo_spec;
using service::PoissonArrivalGenerator;
using service::restore_snapshot;
using service::RestoreOptions;
using service::save_snapshot;
using service::ServiceConfig;
using service::ServiceLoop;
using service::ServiceResult;
using service::SloConfig;
using service::SloGauges;
using service::SloKind;
using service::SloObjective;
using service::SloTracker;
using service::TelemetryConfig;

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

struct TelSpec {
  SchedulerKind scheduler = SchedulerKind::kEchelonMadd;
  FabricKind fabric = FabricKind::kBigSwitch;
  unsigned threads = 1;
  const FaultPlan* plan = nullptr;
  obs::TraceSink* sink = nullptr;
  TelemetryConfig telemetry;
};

ServiceConfig make_config(const TelSpec& s) {
  ServiceConfig c;
  c.scheduler = s.scheduler;
  c.fabric = s.fabric;
  c.hosts = 16;
  c.port_capacity = gbps(25);
  c.oversubscription = s.fabric == FabricKind::kLeafSpine ? 2.0 : 1.0;
  c.threads = s.threads;
  c.control_period = 0.02;
  c.fault_plan = s.plan;
  c.telemetry = s.telemetry;
  if (s.sink != nullptr) {
    c.trace_sink = s.sink;
    c.trace_detail = obs::TraceDetail::kFlow;
  }
  return c;
}

cluster::TraceConfig small_arrivals(std::uint64_t seed, int jobs = 3) {
  cluster::TraceConfig t;
  t.num_jobs = jobs;
  t.seed = seed;
  t.arrival_rate = 4.0;
  t.iterations = 1;
  t.min_layers = 4;
  t.max_layers = 6;
  t.min_width = 512;
  t.max_width = 1024;
  t.rank_choices = {2, 4};
  return t;
}

std::unique_ptr<ServiceLoop> make_loop(const TelSpec& spec,
                                       const cluster::TraceConfig& trace) {
  auto loop = std::make_unique<ServiceLoop>(make_config(spec));
  loop->set_generator(std::make_unique<PoissonArrivalGenerator>(trace, 0));
  return loop;
}

// Everything on: periodic flusher, SLO tracker, flight ring, series budget.
TelemetryConfig full_telemetry() {
  TelemetryConfig t;
  t.metrics_every = 0.05;
  t.series_budget = 32;
  t.flightrec_capacity = 128;
  t.slo.window = 0.5;
  t.slo.objectives = {
      SloObjective{SloKind::kJct, 0.5, 0.1},
      SloObjective{SloKind::kQueueWait, 0.05, 0.2},
      SloObjective{SloKind::kTardiness, 0.2, 0.05},
  };
  return t;
}

// The deterministic scheduling outcome, compared to the bit. Telemetry
// annotations (telemetry_flushes, deadline_at_risk) are deliberately NOT
// here: they exist only when telemetry is on, and the invariant under test
// is that everything *else* is unchanged by it.
void expect_same_outcome(const ServiceResult& a, const ServiceResult& b) {
  EXPECT_EQ(a.scheduler_name, b.scheduler_name);
  EXPECT_BITEQ(a.end, b.end);
  EXPECT_BITEQ(a.total_tardiness, b.total_tardiness);
  EXPECT_BITEQ(a.weighted_total_tardiness, b.weighted_total_tardiness);
  EXPECT_EQ(a.control_invocations, b.control_invocations);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.queued, b.queued);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.launched, b.launched);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.control_ticks, b.control_ticks);
  ASSERT_EQ(a.flow_finish.size(), b.flow_finish.size());
  for (std::size_t i = 0; i < a.flow_finish.size(); ++i) {
    EXPECT_BITEQ(a.flow_finish[i], b.flow_finish[i]) << "flow " << i;
  }
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_BITEQ(a.jobs[j].submitted, b.jobs[j].submitted) << "job " << j;
    EXPECT_BITEQ(a.jobs[j].started, b.jobs[j].started) << "job " << j;
    EXPECT_BITEQ(a.jobs[j].finish, b.jobs[j].finish) << "job " << j;
    EXPECT_EQ(a.jobs[j].finished, b.jobs[j].finished) << "job " << j;
  }
}

void expect_same_trace(const obs::TraceRecorder& a,
                       const obs::TraceRecorder& b) {
  EXPECT_EQ(a.recorded(), b.recorded());
  const std::vector<obs::TraceEvent> ea = a.events();
  const std::vector<obs::TraceEvent> eb = b.events();
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].kind, eb[i].kind) << "event " << i;
    EXPECT_BITEQ(ea[i].t, eb[i].t) << "event " << i;
    EXPECT_EQ(ea[i].id, eb[i].id) << "event " << i;
    EXPECT_EQ(ea[i].job, eb[i].job) << "event " << i;
    EXPECT_EQ(ea[i].ctx, eb[i].ctx) << "event " << i;
    EXPECT_BITEQ(ea[i].value, eb[i].value) << "event " << i;
  }
}

FaultPlan service_chaos_plan(std::uint64_t seed,
                             const topology::Topology& topo) {
  ChaosProfile p;
  p.seed = seed;
  p.horizon = 1.5;
  p.link_faults = 3;
  p.brownouts = 2;
  p.stragglers = 0;
  return faultsim::from_chaos(p, topo, /*worker_count=*/0, /*job_count=*/8);
}

topology::BuiltFabric service_fabric(FabricKind fabric) {
  if (fabric == FabricKind::kBigSwitch) {
    return topology::make_big_switch(16, gbps(25));
  }
  return topology::make_leaf_spine({.leaves = 2,
                                    .spines = 2,
                                    .hosts_per_leaf = 8,
                                    .host_link = gbps(25),
                                    .uplink = 8 * gbps(25) / (2 * 2.0)});
}

// ---------------------------------------------------------------------------
// 1. Telemetry-on vs telemetry-off bit identity
// ---------------------------------------------------------------------------

TEST(TelemetryIdentity, OnVsOffAcrossMatrix) {
  for (const SchedulerKind sched :
       {SchedulerKind::kEchelonMadd, SchedulerKind::kSincronia}) {
    for (const FabricKind fabric :
         {FabricKind::kBigSwitch, FabricKind::kLeafSpine}) {
      for (const bool chaos : {false, true}) {
        for (const unsigned threads : {1u, 2u, 8u}) {
          SCOPED_TRACE(::testing::Message()
                       << "sched=" << static_cast<int>(sched)
                       << " fabric=" << static_cast<int>(fabric)
                       << " chaos=" << chaos << " threads=" << threads);
          const auto built = service_fabric(fabric);
          const FaultPlan plan = service_chaos_plan(7, built.topo);
          const auto trace = small_arrivals(11);

          obs::TraceRecorder off_trace;
          TelSpec off;
          off.scheduler = sched;
          off.fabric = fabric;
          off.threads = threads;
          off.plan = chaos ? &plan : nullptr;
          off.sink = &off_trace;
          auto off_loop = make_loop(off, trace);
          off_loop->drain();

          obs::TraceRecorder on_trace;
          TelSpec on = off;
          on.sink = &on_trace;
          on.telemetry = full_telemetry();
          auto on_loop = make_loop(on, trace);
          on_loop->drain();

          expect_same_outcome(off_loop->result(), on_loop->result());
          expect_same_trace(off_trace, on_trace);
          EXPECT_GT(on_loop->telemetry_flushes(), 0u);
          EXPECT_EQ(off_loop->telemetry_flushes(), 0u);
        }
      }
    }
  }
}

TEST(TelemetryIdentity, EachKnobAloneIsInert) {
  const auto trace = small_arrivals(13);
  TelSpec off;
  auto reference = make_loop(off, trace);
  reference->drain();
  const ServiceResult ref = reference->result();

  for (int knob = 0; knob < 4; ++knob) {
    SCOPED_TRACE(::testing::Message() << "knob " << knob);
    TelSpec on;
    switch (knob) {
      case 0: on.telemetry.metrics_every = 0.02; break;
      case 1: on.telemetry.slo = full_telemetry().slo; break;
      case 2: on.telemetry.flightrec_capacity = 16; break;
      case 3:
        on.telemetry.metrics_every = 0.02;
        on.telemetry.series_budget = 4;
        break;
    }
    auto loop = make_loop(on, trace);
    loop->drain();
    expect_same_outcome(ref, loop->result());
  }
}

// Attaching output writers (the only wall-world side effects) must not
// change anything either: same run with and without a PromWriter target.
TEST(TelemetryIdentity, OutputAttachmentIsInert) {
  const auto trace = small_arrivals(19);
  TelSpec spec;
  spec.telemetry = full_telemetry();

  auto silent = make_loop(spec, trace);
  silent->drain();

  const std::string path = ::testing::TempDir() + "/tel_prom.txt";
  obs::PromWriter prom(path, /*rotate_keep=*/1);
  auto writing = make_loop(spec, trace);
  writing->attach_telemetry_outputs(
      {.prom = &prom, .chunk = nullptr, .flightrec_path = ""});
  writing->drain();

  expect_same_outcome(silent->result(), writing->result());
  EXPECT_EQ(silent->prom_exposition(), writing->prom_exposition());
  EXPECT_EQ(prom.writes(), writing->telemetry_flushes());
}

// ---------------------------------------------------------------------------
// 2. Snapshot/restore resumes telemetry exactly
// ---------------------------------------------------------------------------

TEST(TelemetrySnapshot, MidWindowRestoreMatchesUninterrupted) {
  const auto trace = small_arrivals(23, /*jobs=*/10);
  TelSpec spec;
  spec.telemetry = full_telemetry();

  auto whole = make_loop(spec, trace);
  whole->drain();
  const ServiceResult reference = whole->result();
  ASSERT_GT(whole->telemetry_flushes(), 2u);
  const std::string ref_prom = whole->prom_exposition();
  ASSERT_NE(whole->slo(), nullptr);
  ASSERT_NE(whole->flight(), nullptr);
  const std::uint64_t ref_slo = whole->slo()->digest();
  const std::uint64_t ref_ring = whole->flight()->ring_digest();

  for (const std::uint64_t cut : {1u, 5u, 13u, 40u}) {
    SCOPED_TRACE(::testing::Message() << "cut " << cut);
    auto prefix = make_loop(spec, trace);
    for (std::uint64_t k = 0; k < cut; ++k) {
      if (!prefix->step()) break;
    }
    const std::string bytes = save_snapshot(*prefix);
    prefix.reset();
    auto restored = restore_snapshot(bytes);
    restored->drain();
    expect_same_outcome(reference, restored->result());
    EXPECT_EQ(whole->telemetry_flushes(), restored->telemetry_flushes());
    EXPECT_EQ(ref_prom, restored->prom_exposition());
    ASSERT_NE(restored->slo(), nullptr);
    ASSERT_NE(restored->flight(), nullptr);
    EXPECT_EQ(ref_slo, restored->slo()->digest());
    EXPECT_EQ(ref_ring, restored->flight()->ring_digest());
  }
}

// Periodic saves leave kSnapshot markers in the live ring; a later snapshot
// must serialize that ring verbatim and restore it (replay alone cannot
// reproduce the markers).
TEST(TelemetrySnapshot, RingWithSnapshotMarkersRoundTrips) {
  const auto trace = small_arrivals(23, /*jobs=*/10);
  TelSpec spec;
  spec.telemetry = full_telemetry();

  auto loop = make_loop(spec, trace);
  for (int k = 0; k < 6; ++k) ASSERT_TRUE(loop->step());
  (void)save_snapshot(*loop);
  loop->note_snapshot();  // marker for the first save
  for (int k = 0; k < 6; ++k) ASSERT_TRUE(loop->step());
  const std::string bytes = save_snapshot(*loop);
  ASSERT_NE(loop->flight(), nullptr);
  const std::uint64_t marked_ring = loop->flight()->ring_digest();
  EXPECT_EQ(loop->flight()->count(obs::FlightKind::kSnapshot), 1u);

  auto restored = restore_snapshot(bytes);
  ASSERT_NE(restored->flight(), nullptr);
  EXPECT_EQ(marked_ring, restored->flight()->ring_digest());
  EXPECT_EQ(restored->flight()->count(obs::FlightKind::kSnapshot), 1u);
  restored->drain();

  loop->drain();
  expect_same_outcome(loop->result(), restored->result());
  EXPECT_EQ(loop->prom_exposition(), restored->prom_exposition());
  EXPECT_EQ(loop->flight()->ring_digest(), restored->flight()->ring_digest());
}

// A snapshot taken by a telemetry-off run stays restorable, and a flipped
// telemetry byte in the config section fails loudly.
TEST(TelemetrySnapshot, TelemetryOffSnapshotStillRoundTrips) {
  const auto trace = small_arrivals(29);
  const TelSpec spec;  // telemetry off
  auto whole = make_loop(spec, trace);
  whole->drain();
  const ServiceResult reference = whole->result();

  auto prefix = make_loop(spec, trace);
  for (int k = 0; k < 5; ++k) ASSERT_TRUE(prefix->step());
  const std::string bytes = save_snapshot(*prefix);
  auto restored = restore_snapshot(bytes);
  restored->drain();
  expect_same_outcome(reference, restored->result());
  EXPECT_EQ(restored->telemetry_flushes(), 0u);
  EXPECT_EQ(restored->flight(), nullptr);
  EXPECT_EQ(restored->slo(), nullptr);
}

// ---------------------------------------------------------------------------
// 3. Chunked trace streaming == whole-run trace
// ---------------------------------------------------------------------------

TEST(TelemetryChunks, MergedChunksReproducePerfettoByteIdentical) {
  const auto trace = small_arrivals(31);

  // Reference: the whole trace in one in-memory recorder.
  obs::TraceRecorder whole;
  TelSpec ref_spec;
  ref_spec.sink = &whole;
  ref_spec.telemetry.metrics_every = 0.05;
  auto ref_loop = make_loop(ref_spec, trace);
  ref_loop->drain();
  ref_loop->flush_now();

  // Chunked: the chunk writer is the sink, flushed at every boundary.
  std::ostringstream chunk_bytes;
  obs::TraceChunkWriter writer(chunk_bytes);
  TelSpec chunk_spec;
  chunk_spec.sink = &writer;
  chunk_spec.telemetry.metrics_every = 0.05;
  auto chunk_loop = make_loop(chunk_spec, trace);
  chunk_loop->attach_telemetry_outputs(
      {.prom = nullptr, .chunk = &writer, .flightrec_path = ""});
  chunk_loop->drain();
  chunk_loop->flush_now();

  expect_same_outcome(ref_loop->result(), chunk_loop->result());
  EXPECT_GT(writer.chunks(), 1u);
  EXPECT_EQ(writer.total_events(), whole.recorded());

  // Merge the chunk stream back and compare the final Perfetto bytes.
  obs::TraceRecorder merged;
  std::istringstream in(chunk_bytes.str());
  EXPECT_EQ(obs::merge_trace_chunks(in, merged), whole.recorded());
  expect_same_trace(whole, merged);

  std::ostringstream ref_json;
  std::ostringstream merged_json;
  obs::write_perfetto_trace(ref_json, whole, nullptr, {});
  obs::write_perfetto_trace(merged_json, merged, nullptr, {});
  EXPECT_EQ(ref_json.str(), merged_json.str());
}

TEST(TelemetryChunks, TruncatedChunkStreamFailsLoudly) {
  std::ostringstream bytes;
  obs::TraceChunkWriter writer(bytes);
  writer.record(obs::TraceEvent{});
  (void)writer.flush();
  const std::string whole = bytes.str();
  obs::TraceRecorder sink;
  std::istringstream truncated(whole.substr(0, whole.size() / 2));
  EXPECT_THROW((void)obs::merge_trace_chunks(truncated, sink),
               std::runtime_error);
  std::istringstream garbage("ECHGARBAGE 1\n");
  EXPECT_THROW((void)obs::merge_trace_chunks(garbage, sink),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// 4. SLO tracker
// ---------------------------------------------------------------------------

TEST(Slo, SpecParsing) {
  std::string err;
  const auto parsed =
      parse_slo_spec("jct<=2.0@0.1,queue_wait<=0.5@0.2,tardiness<=1@0", &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_EQ((*parsed)[0].kind, SloKind::kJct);
  EXPECT_BITEQ((*parsed)[0].threshold, 2.0);
  EXPECT_BITEQ((*parsed)[0].budget, 0.1);
  EXPECT_EQ((*parsed)[1].kind, SloKind::kQueueWait);
  EXPECT_EQ((*parsed)[2].kind, SloKind::kTardiness);
  EXPECT_BITEQ((*parsed)[2].budget, 0.0);

  // Empty segments (trailing / doubled commas) are tolerated, not errors:
  // the parser only rejects malformed non-empty objectives.
  err.clear();
  const auto trailing = parse_slo_spec("jct<=1@0.1,,", &err);
  ASSERT_TRUE(trailing.has_value()) << err;
  EXPECT_EQ(trailing->size(), 1u);

  for (const char* bad :
       {"", "jct<=x@0.1", "bogus<=1@0.1", "jct<=1@1.5", "jct<=1", ",,"}) {
    SCOPED_TRACE(bad);
    err.clear();
    EXPECT_FALSE(parse_slo_spec(bad, &err).has_value());
    EXPECT_FALSE(err.empty());
  }
}

TEST(Slo, BurnRateArithmetic) {
  SloConfig cfg;
  cfg.window = 10.0;
  cfg.objectives = {SloObjective{SloKind::kJct, 1.0, 0.25}};
  SloTracker tracker(cfg);

  // 4 completions, 1 violation -> rate 0.25 == budget -> burn rate 1.
  const double good[service::kSloKindCount] = {0.5, 0.0, 0.0};
  const double bad[service::kSloKindCount] = {2.0, 0.0, 0.0};
  tracker.on_completion(0.0, good);
  tracker.on_completion(1.0, good);
  tracker.on_completion(2.0, good);
  tracker.on_completion(3.0, bad);
  tracker.on_boundary(4.0, nullptr);
  const SloGauges g = tracker.gauges(0);
  EXPECT_EQ(g.total, 4u);
  EXPECT_EQ(g.violations, 1u);
  EXPECT_BITEQ(g.burn_rate, 1.0);
  EXPECT_BITEQ(g.error_budget, 0.0);
}

TEST(Slo, WindowExpiryDropsOldSamples) {
  SloConfig cfg;
  cfg.window = 1.0;
  cfg.objectives = {SloObjective{SloKind::kJct, 1.0, 0.5}};
  SloTracker tracker(cfg);
  const double bad[service::kSloKindCount] = {2.0, 0.0, 0.0};
  const double good[service::kSloKindCount] = {0.1, 0.0, 0.0};
  tracker.on_completion(0.0, bad);
  tracker.on_completion(1.5, good);
  tracker.on_boundary(1.6, nullptr);  // the t=0 violation fell out
  const SloGauges g = tracker.gauges(0);
  EXPECT_EQ(g.total, 1u);
  EXPECT_EQ(g.violations, 0u);
  EXPECT_BITEQ(g.burn_rate, 0.0);
  EXPECT_BITEQ(g.error_budget, 1.0);
  EXPECT_EQ(tracker.total_samples(), 2u);  // cumulative, not windowed
}

TEST(Slo, ZeroBudgetBurnsHardOnAnyViolation) {
  SloConfig cfg;
  cfg.objectives = {SloObjective{SloKind::kTardiness, 0.0, 0.0}};
  SloTracker tracker(cfg);
  const double bad[service::kSloKindCount] = {0.0, 0.0, 1.0};
  tracker.on_completion(0.0, bad);
  tracker.on_boundary(0.1, nullptr);
  const SloGauges g = tracker.gauges(0);
  EXPECT_EQ(g.violations, 1u);
  EXPECT_BITEQ(g.burn_rate, 1e9);
  EXPECT_BITEQ(g.error_budget, 0.0);
}

TEST(Slo, EmptyWindowReportsFullBudget) {
  SloConfig cfg;
  cfg.objectives = {SloObjective{SloKind::kJct, 1.0, 0.1}};
  SloTracker tracker(cfg);
  tracker.on_boundary(5.0, nullptr);
  const SloGauges g = tracker.gauges(0);
  EXPECT_EQ(g.total, 0u);
  EXPECT_BITEQ(g.error_budget, 1.0);
  EXPECT_BITEQ(g.burn_rate, 0.0);
}

TEST(Slo, DeadlineAtRiskLatchesOnSlowJobs) {
  const auto trace = small_arrivals(37);
  TelSpec spec;
  spec.telemetry.metrics_every = 0.02;
  spec.telemetry.slo.objectives = {
      SloObjective{SloKind::kJct, 1e-6, 0.5}};  // everything is at risk
  auto loop = make_loop(spec, trace);
  loop->drain();
  const ServiceResult r = loop->result();
  // Risk is evaluated at flush boundaries and only latches on jobs still
  // in flight, so jobs completing between two flushes escape the flag; with
  // a 1e-6 threshold anything alive across a boundary must be caught.
  EXPECT_GE(r.deadline_at_risk, 1u);
  EXPECT_LE(r.deadline_at_risk, r.launched);
  std::uint64_t flagged = 0;
  for (const auto& j : r.jobs) flagged += j.deadline_at_risk ? 1 : 0;
  EXPECT_EQ(flagged, r.deadline_at_risk);
}

// ---------------------------------------------------------------------------
// 5. Flight recorder
// ---------------------------------------------------------------------------

TEST(FlightRecorder, DumpParseRoundTrip) {
  obs::FlightRecorder rec(8);
  rec.record(obs::FlightKind::kAdmit, 0.0, 0, 0);
  rec.record(obs::FlightKind::kLaunch, 0x1.fffffffffffffp-2, 0, 1);
  rec.record(obs::FlightKind::kError, 1.0 / 3.0, 7, 9,
             "note with several spaces");
  const std::string text = rec.dump_string();

  std::istringstream in(text);
  const obs::ParsedFlightDump parsed = obs::parse_flight_dump(in);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.capacity, 8u);
  EXPECT_EQ(parsed.recorded, 3u);
  const std::vector<obs::FlightEvent> events = rec.events();
  ASSERT_EQ(parsed.events.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(parsed.events[i], events[i]) << "event " << i;
  }
  for (int k = 0; k < obs::kFlightKindCount; ++k) {
    EXPECT_EQ(parsed.counts[k],
              rec.count(static_cast<obs::FlightKind>(k)))
        << "kind " << k;
  }
}

TEST(FlightRecorder, OverflowKeepsNewestAndExactCounts) {
  obs::FlightRecorder rec(4);
  for (int i = 0; i < 10; ++i) {
    rec.record(obs::FlightKind::kAdmit, static_cast<double>(i),
               static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.count(obs::FlightKind::kAdmit), 10u);
  const std::vector<obs::FlightEvent> events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().a, 6u);
  EXPECT_EQ(events.back().a, 9u);
}

TEST(FlightRecorder, RestoreReproducesDigest) {
  obs::FlightRecorder rec(6);
  for (int i = 0; i < 9; ++i) {
    rec.record(obs::FlightKind::kFlush, 0.1 * i, static_cast<std::uint64_t>(i),
               0, i % 2 == 0 ? "even" : "");
  }
  std::vector<std::uint64_t> counts;
  for (int k = 0; k < obs::kFlightKindCount; ++k) {
    counts.push_back(rec.count(static_cast<obs::FlightKind>(k)));
  }
  obs::FlightRecorder copy(6);
  copy.restore(rec.recorded(), counts, rec.events());
  EXPECT_EQ(copy.ring_digest(), rec.ring_digest());
  EXPECT_EQ(copy.events(), rec.events());

  obs::FlightRecorder small(2);
  EXPECT_THROW(small.restore(rec.recorded(), counts, rec.events()),
               std::invalid_argument);
}

TEST(FlightRecorder, ParserRejectsMalformedDumps) {
  for (const char* bad :
       {"", "ECHFLIGHT 2\n", "ECHFLIGHT 1\ncapacity x\n",
        "ECHFLIGHT 1\ncapacity 4\nrecorded 1\ncounts admit=1\n"
        "E admit 0 0 0\n",  // missing END
        "ECHFLIGHT 1\ncapacity 4\nrecorded 1\ncounts bogus=1\nEND\n",
        "ECHFLIGHT 1\ncapacity 1\nrecorded 2\ncounts admit=2\n"
        "E admit 0 0 0\nE admit 1 1 0\nEND\n"}) {  // over capacity
    SCOPED_TRACE(bad);
    std::istringstream in(bad);
    const obs::ParsedFlightDump parsed = obs::parse_flight_dump(in);
    EXPECT_FALSE(parsed.ok);
    EXPECT_FALSE(parsed.error.empty());
  }
}

// Errors inside step() land in the ring and the post-mortem file.
TEST(FlightRecorder, ServiceErrorPathDumpsPostMortem) {
  const auto trace = small_arrivals(41);
  TelSpec spec;
  spec.telemetry.flightrec_capacity = 32;
  auto loop = make_loop(spec, trace);
  const std::string path = ::testing::TempDir() + "/tel_flight_err.txt";
  loop->attach_telemetry_outputs(
      {.prom = nullptr, .chunk = nullptr, .flightrec_path = path});
  for (int k = 0; k < 3; ++k) ASSERT_TRUE(loop->step());
  loop->note_error("synthetic failure for the post-mortem path");

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  const obs::ParsedFlightDump parsed = obs::parse_flight_dump(in);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ASSERT_FALSE(parsed.events.empty());
  EXPECT_EQ(parsed.events.back().kind, obs::FlightKind::kError);
  EXPECT_EQ(parsed.events.back().note,
            "synthetic failure for the post-mortem path");
}

// ---------------------------------------------------------------------------
// 6. Seeded SLO/cut fuzz (ECHELON_SLO_SEEDS budget knob)
// ---------------------------------------------------------------------------

TEST(TelemetryFuzz, SeededSloConfigsSurviveSnapshotCuts) {
  const int budget = eqh::env_seed_budget("ECHELON_SLO_SEEDS", 24);
  for (int seed = 0; seed < budget; ++seed) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    const auto trace = small_arrivals(3000 + static_cast<std::uint64_t>(seed));
    TelSpec spec;
    spec.telemetry.metrics_every = 0.01 * (1 + seed % 7);
    spec.telemetry.flightrec_capacity =
        static_cast<std::size_t>(4 << (seed % 4));
    spec.telemetry.series_budget = (seed % 3 == 0) ? 8 : 0;
    spec.telemetry.slo.window = 0.1 * (1 + seed % 10);
    spec.telemetry.slo.objectives = {
        SloObjective{static_cast<SloKind>(seed % service::kSloKindCount),
                     0.05 * (1 + seed % 5), 0.1 * (seed % 10) / 10.0},
    };

    auto whole = make_loop(spec, trace);
    whole->drain();
    const ServiceResult reference = whole->result();
    const std::string ref_prom = whole->prom_exposition();

    const std::uint64_t cut = 1 + static_cast<std::uint64_t>(seed) * 7 % 50;
    auto prefix = make_loop(spec, trace);
    for (std::uint64_t k = 0; k < cut; ++k) {
      if (!prefix->step()) break;
    }
    const std::string bytes = save_snapshot(*prefix);
    prefix.reset();
    auto restored = restore_snapshot(bytes);
    restored->drain();
    expect_same_outcome(reference, restored->result());
    EXPECT_EQ(ref_prom, restored->prom_exposition());
    EXPECT_EQ(whole->telemetry_flushes(), restored->telemetry_flushes());
    ASSERT_NE(restored->flight(), nullptr);
    ASSERT_NE(whole->flight(), nullptr);
    EXPECT_EQ(whole->flight()->ring_digest(),
              restored->flight()->ring_digest());
  }
}

}  // namespace
}  // namespace echelon
