// Unit tests for the workflow DAG and its execution engine.

#include <gtest/gtest.h>

#include "netsim/simulator.hpp"
#include "netsim/workflow.hpp"
#include "topology/builders.hpp"

namespace echelon::netsim {
namespace {

struct WfFixture : ::testing::Test {
  WfFixture() : fabric(topology::make_big_switch(4, 10.0)), sim(&fabric.topo) {
    w0 = sim.add_worker(fabric.hosts[0]);
    w1 = sim.add_worker(fabric.hosts[1]);
  }
  topology::BuiltFabric fabric;
  Simulator sim;
  WorkerId w0, w1;
};

TEST_F(WfFixture, LinearChainExecutesInOrder) {
  Workflow wf;
  const WfNodeId a = wf.add_compute(w0, 1.0, "a");
  const WfNodeId f = wf.add_flow(FlowSpec{
      .src = fabric.hosts[0], .dst = fabric.hosts[1], .size = 20.0});
  const WfNodeId b = wf.add_compute(w1, 0.5, "b");
  wf.add_dep(a, f);
  wf.add_dep(f, b);
  EXPECT_TRUE(wf.is_acyclic());
  EXPECT_EQ(wf.roots(), (std::vector<WfNodeId>{a}));

  WorkflowEngine eng(&sim, &wf);
  eng.launch(0.0);
  sim.run();
  EXPECT_TRUE(eng.finished());
  EXPECT_NEAR(eng.node_finish(a), 1.0, 1e-9);
  EXPECT_NEAR(eng.node_finish(f), 3.0, 1e-9);   // 20 bytes at 10 B/s
  EXPECT_NEAR(eng.node_finish(b), 3.5, 1e-9);
}

TEST_F(WfFixture, DiamondJoinsWaitForAllDeps) {
  Workflow wf;
  const WfNodeId a = wf.add_compute(w0, 1.0, "a");
  const WfNodeId b1 = wf.add_compute(w0, 2.0, "b1");
  const WfNodeId b2 = wf.add_compute(w1, 5.0, "b2");
  const WfNodeId join = wf.add_barrier("join");
  const WfNodeId c = wf.add_compute(w0, 1.0, "c");
  wf.add_dep(a, b1);
  wf.add_dep(a, b2);
  wf.add_deps({b1, b2}, join);
  wf.add_dep(join, c);

  WorkflowEngine eng(&sim, &wf);
  eng.launch(0.0);
  sim.run();
  EXPECT_NEAR(eng.node_finish(join), 6.0, 1e-9);  // limited by b2
  EXPECT_NEAR(eng.node_finish(c), 7.0, 1e-9);
}

TEST_F(WfFixture, BarrierChainsAreInstant) {
  Workflow wf;
  const WfNodeId b1 = wf.add_barrier("b1");
  const WfNodeId b2 = wf.add_barrier("b2");
  const WfNodeId b3 = wf.add_barrier("b3");
  wf.add_dep(b1, b2);
  wf.add_dep(b2, b3);
  WorkflowEngine eng(&sim, &wf);
  eng.launch(2.0);
  sim.run();
  EXPECT_TRUE(eng.finished());
  EXPECT_NEAR(eng.node_finish(b3), 2.0, 1e-9);
}

TEST_F(WfFixture, LaunchTimeDelaysRoots) {
  Workflow wf;
  const WfNodeId a = wf.add_compute(w0, 1.0, "a");
  WorkflowEngine eng(&sim, &wf);
  eng.launch(5.0);
  sim.run();
  EXPECT_NEAR(eng.node_start(a), 5.0, 1e-9);
  EXPECT_NEAR(eng.node_finish(a), 6.0, 1e-9);
}

TEST_F(WfFixture, FlowNodeBindsFlowId) {
  Workflow wf;
  const WfNodeId f = wf.add_flow(FlowSpec{
      .src = fabric.hosts[0], .dst = fabric.hosts[1], .size = 10.0});
  std::vector<std::pair<WfNodeId, FlowId>> bound;
  WorkflowEngine eng(&sim, &wf);
  eng.on_flow_submitted = [&bound](WfNodeId n, FlowId id) {
    bound.emplace_back(n, id);
  };
  eng.launch(0.0);
  sim.run();
  ASSERT_EQ(bound.size(), 1u);
  EXPECT_EQ(bound[0].first, f);
  EXPECT_EQ(eng.flow_of(f), bound[0].second);
  EXPECT_TRUE(sim.flow(bound[0].second).finished());
}

TEST_F(WfFixture, OnCompleteFiresOnce) {
  Workflow wf;
  const WfNodeId a = wf.add_compute(w0, 1.0, "a");
  const WfNodeId b = wf.add_compute(w0, 1.0, "b");
  wf.add_dep(a, b);
  int completions = 0;
  WorkflowEngine eng(&sim, &wf);
  eng.on_complete = [&completions](Simulator&) { ++completions; };
  eng.launch(0.0);
  sim.run();
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(eng.completed_nodes(), 2u);
}

TEST_F(WfFixture, OnCompleteFiresOnceThroughTerminalBarrierChain) {
  // A terminal barrier completes synchronously inside its parent's
  // node_done, so the parent frame also observes finished() == true after
  // its successor loop. The engine must still invoke on_complete exactly
  // once (regression: the service loop's running-job counter underflowed
  // when the callback double-fired).
  Workflow wf;
  const WfNodeId a = wf.add_compute(w0, 1.0, "a");
  const WfNodeId bar = wf.add_barrier("join");
  wf.add_dep(a, bar);
  int completions = 0;
  WorkflowEngine eng(&sim, &wf);
  eng.on_complete = [&completions](Simulator&) { ++completions; };
  eng.launch(0.0);
  sim.run();
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(eng.completed_nodes(), 2u);
}

TEST_F(WfFixture, TwoEnginesInterleave) {
  Workflow wf1, wf2;
  const WfNodeId t1 = wf1.add_compute(w0, 1.0, "j1");
  const WfNodeId t2 = wf2.add_compute(w0, 1.0, "j2");
  WorkflowEngine e1(&sim, &wf1);
  WorkflowEngine e2(&sim, &wf2);
  e1.launch(0.0);
  e2.launch(0.5);  // queued behind j1 on the same GPU
  sim.run();
  EXPECT_NEAR(e1.node_finish(t1), 1.0, 1e-9);
  EXPECT_NEAR(e2.node_finish(t2), 2.0, 1e-9);
}

TEST(Workflow, CycleDetection) {
  Workflow wf;
  const WfNodeId a = wf.add_barrier("a");
  const WfNodeId b = wf.add_barrier("b");
  const WfNodeId c = wf.add_barrier("c");
  wf.add_dep(a, b);
  wf.add_dep(b, c);
  EXPECT_TRUE(wf.is_acyclic());
  wf.add_dep(c, a);
  EXPECT_FALSE(wf.is_acyclic());
}

TEST(Workflow, JobStampsFlows) {
  Workflow wf;
  wf.set_job(JobId{7});
  const WfNodeId f = wf.add_flow(FlowSpec{.size = 1.0});
  EXPECT_EQ(wf.node(f).flow.job, JobId{7});
}

}  // namespace
}  // namespace echelon::netsim
