// Unit tests for the EchelonFlow-MADD scheduler: EDF behaviour, Property 2
// (Coflow is a special case), inter-EchelonFlow ranking, and work
// conservation.

#include <gtest/gtest.h>

#include "echelon/coflow_madd.hpp"
#include "echelon/echelon_madd.hpp"
#include "echelon/registry.hpp"
#include "netsim/simulator.hpp"
#include "topology/builders.hpp"

namespace echelon::ef {
namespace {

using netsim::FlowSpec;
using netsim::Simulator;

struct EchelonFixture : ::testing::Test {
  EchelonFixture()
      : fabric(topology::make_big_switch(6, 10.0)),
        sim(&fabric.topo),
        sched(&registry) {
    registry.attach(sim);
    sim.set_scheduler(&sched);
  }

  FlowId submit(std::size_t src, std::size_t dst, Bytes size,
                EchelonFlowId group, int index) {
    return sim.submit_flow(FlowSpec{.src = fabric.hosts[src],
                                    .dst = fabric.hosts[dst],
                                    .size = size,
                                    .group = group,
                                    .index_in_group = index});
  }

  topology::BuiltFabric fabric;
  Simulator sim;
  Registry registry;
  EchelonMaddScheduler sched;
};

TEST_F(EchelonFixture, StaggeredDeadlinesServeEdfOrder) {
  // Pipeline arrangement, both flows released together on one port pair.
  // EDF gives the earlier deadline full rate first.
  const EchelonFlowId ef =
      registry.create(JobId{0}, Arrangement::pipeline(2, 1.0));
  const FlowId a = submit(0, 1, 20.0, ef, 0);  // d = 0
  const FlowId b = submit(0, 1, 20.0, ef, 1);  // d = 1
  sim.run();
  EXPECT_NEAR(sim.flow(a).finish_time, 2.0, 1e-9);
  EXPECT_NEAR(sim.flow(b).finish_time, 4.0, 1e-9);
}

TEST_F(EchelonFixture, Property2CoflowArrangementMatchesCoflowMadd) {
  // With an Eq. 5 arrangement, EchelonFlow-MADD must reproduce Coflow-MADD
  // exactly: same finish time for all members at the bottleneck bound.
  const EchelonFlowId ef = registry.create(JobId{0}, Arrangement::coflow(2));
  const FlowId a = submit(0, 2, 30.0, ef, 0);
  const FlowId b = submit(1, 2, 10.0, ef, 1);
  sim.run();
  const SimTime ea = sim.flow(a).finish_time;
  const SimTime eb = sim.flow(b).finish_time;

  // Reference run under CoflowMadd.
  auto fabric2 = topology::make_big_switch(6, 10.0);
  Simulator sim2(&fabric2.topo);
  CoflowMaddScheduler cf;
  sim2.set_scheduler(&cf);
  const FlowId a2 = sim2.submit_flow(FlowSpec{.src = fabric2.hosts[0],
                                              .dst = fabric2.hosts[2],
                                              .size = 30.0,
                                              .group = EchelonFlowId{0}});
  const FlowId b2 = sim2.submit_flow(FlowSpec{.src = fabric2.hosts[1],
                                              .dst = fabric2.hosts[2],
                                              .size = 10.0,
                                              .group = EchelonFlowId{0}});
  sim2.run();
  EXPECT_NEAR(ea, sim2.flow(a2).finish_time, 1e-9);
  EXPECT_NEAR(eb, sim2.flow(b2).finish_time, 1e-9);
  EXPECT_NEAR(ea, 4.0, 1e-9);
  EXPECT_NEAR(eb, 4.0, 1e-9);
}

TEST_F(EchelonFixture, LateFlowCatchesUpAtFullRate) {
  // Member 1 starts long after its ideal finish time has passed; the
  // scheduler gives it full catch-up rate.
  const EchelonFlowId ef =
      registry.create(JobId{0}, Arrangement::pipeline(2, 0.5));
  submit(0, 1, 10.0, ef, 0);  // finishes at t=1
  sim.schedule_at(5.0, [this, ef](Simulator&) {
    submit(0, 1, 10.0, ef, 1);  // d_1 = 0.5, long past
  });
  sim.run();
  EXPECT_NEAR(sim.flow(FlowId{1}).finish_time, 6.0, 1e-9);  // full rate
}

TEST_F(EchelonFixture, SmallestTardinessFirstRanking) {
  // EF A can be cleared fast (small); EF B is big. Default ranking serves A
  // first on the shared port.
  const EchelonFlowId big = registry.create(JobId{0}, Arrangement::coflow(1));
  const EchelonFlowId small =
      registry.create(JobId{1}, Arrangement::coflow(1));
  const FlowId fb = submit(0, 1, 80.0, big, 0);
  const FlowId fs = submit(0, 1, 10.0, small, 0);
  sim.run();
  EXPECT_NEAR(sim.flow(fs).finish_time, 1.0, 1e-9);
  EXPECT_NEAR(sim.flow(fb).finish_time, 9.0, 1e-9);
}

TEST_F(EchelonFixture, LargestTardinessFirstRankingInverts) {
  EchelonMaddScheduler largest(
      &registry, {.ranking = InterRanking::kLargestTardinessFirst});
  sim.set_scheduler(&largest);
  const EchelonFlowId big = registry.create(JobId{0}, Arrangement::coflow(1));
  const EchelonFlowId small =
      registry.create(JobId{1}, Arrangement::coflow(1));
  const FlowId fb = submit(0, 1, 80.0, big, 0);
  const FlowId fs = submit(0, 1, 10.0, small, 0);
  sim.run();
  EXPECT_NEAR(sim.flow(fb).finish_time, 8.0, 1e-9);
  EXPECT_NEAR(sim.flow(fs).finish_time, 9.0, 1e-9);
}

TEST_F(EchelonFixture, WorkConservationAcrossEchelonFlows) {
  // EF A occupies ports 0->1; EF B on 2->3 must be unthrottled.
  const EchelonFlowId a = registry.create(JobId{0}, Arrangement::coflow(1));
  const EchelonFlowId b = registry.create(JobId{1}, Arrangement::coflow(1));
  const FlowId fa = submit(0, 1, 40.0, a, 0);
  const FlowId fbid = submit(2, 3, 40.0, b, 0);
  sim.run();
  EXPECT_NEAR(sim.flow(fa).finish_time, 4.0, 1e-9);
  EXPECT_NEAR(sim.flow(fbid).finish_time, 4.0, 1e-9);
}

TEST_F(EchelonFixture, UngroupedFlowStillServed) {
  const FlowId f = sim.submit_flow(FlowSpec{
      .src = fabric.hosts[0], .dst = fabric.hosts[1], .size = 20.0});
  sim.run();
  EXPECT_NEAR(sim.flow(f).finish_time, 2.0, 1e-9);
}

TEST_F(EchelonFixture, MeasuredTardinessMatchesEq2) {
  const EchelonFlowId ef =
      registry.create(JobId{0}, Arrangement::pipeline(2, 1.0));
  submit(0, 1, 20.0, ef, 0);
  submit(0, 1, 20.0, ef, 1);
  sim.run();
  const EchelonFlow& h = registry.get(ef);
  ASSERT_TRUE(h.complete());
  // Finishes at 2 and 4 vs ideals 0 and 1 -> tardiness max(2, 3) = 3.
  EXPECT_NEAR(h.tardiness(), 3.0, 1e-9);
  EXPECT_NEAR(*h.flow_tardiness(0), 2.0, 1e-9);
  EXPECT_NEAR(*h.flow_tardiness(1), 3.0, 1e-9);
}

TEST_F(EchelonFixture, FsdpStagedArrangementServesStagesInOrder) {
  // Two stages of two flows each, staggered by 10 s: stage 0 must be served
  // (and finish) before stage 1 when all four flows contend for one port.
  const EchelonFlowId ef = registry.create(
      JobId{0}, Arrangement::staged({2, 2}, {0.0, 10.0}));
  const FlowId s0a = submit(0, 1, 10.0, ef, 0);
  const FlowId s0b = submit(2, 1, 10.0, ef, 1);
  const FlowId s1a = submit(0, 1, 10.0, ef, 2);
  const FlowId s1b = submit(2, 1, 10.0, ef, 3);
  sim.run();
  // Stage 0: shared ingress -> both finish at 2; stage 1 backfills behind
  // and completes at 4.
  EXPECT_NEAR(sim.flow(s0a).finish_time, 2.0, 1e-9);
  EXPECT_NEAR(sim.flow(s0b).finish_time, 2.0, 1e-9);
  EXPECT_NEAR(sim.flow(s1a).finish_time, 4.0, 1e-9);
  EXPECT_NEAR(sim.flow(s1b).finish_time, 4.0, 1e-9);
}

}  // namespace
}  // namespace echelon::ef
