// Tests for the computation profiler: ideal-finish offsets measured on an
// infinitely fast network must reproduce the analytic arrangement functions
// (Eq. 6 for GPipe, Eq. 7's generalized form for FSDP), and calibration must
// install them into the registry.

#include <gtest/gtest.h>

#include "topology/builders.hpp"
#include "workload/fsdp.hpp"
#include "workload/pp.hpp"
#include "workload/profiler.hpp"

namespace echelon::workload {
namespace {

TEST(Profiler, PipelineOffsetsMatchEq6) {
  auto fabric = topology::make_big_switch(2, 1.0);
  netsim::Simulator sim(&fabric.topo);
  ef::Registry reg;
  const auto placement = make_placement(sim, fabric.hosts);
  const ModelSpec model = make_mlp(2, 32, 2);  // uniform stages
  const GpuSpec gpu = unit_gpu();
  const auto job = generate_pipeline(
      {.model = model, .gpu = gpu, .micro_batches = 3, .iterations = 1},
      placement, reg, JobId{0});

  const auto profile = profile_job(job, fabric.topo, placement.hosts);
  // Forward EchelonFlow (first declared): flows released when the producer
  // stage finishes each micro-batch -> offsets 0, T, 2T with T = stage fwd
  // time.
  const EchelonFlowId fwd_ef = job.echelonflows[0];
  const auto it = profile.offsets.find(fwd_ef.value());
  ASSERT_NE(it, profile.offsets.end());
  const double T = gpu.compute_time(model.layers[0].fwd_flops);
  ASSERT_EQ(it->second.size(), 3u);
  EXPECT_NEAR(it->second[0], 0.0, 1e-9);
  EXPECT_NEAR(it->second[1], T, 1e-9);
  EXPECT_NEAR(it->second[2], 2 * T, 1e-9);
}

TEST(Profiler, MakespanAndTaskTimesRecorded) {
  auto fabric = topology::make_big_switch(2, 1.0);
  netsim::Simulator sim(&fabric.topo);
  ef::Registry reg;
  const auto placement = make_placement(sim, fabric.hosts);
  const ModelSpec model = make_mlp(2, 32, 2);
  const auto job = generate_pipeline(
      {.model = model, .gpu = unit_gpu(), .micro_batches = 2,
       .iterations = 1},
      placement, reg, JobId{0});
  const auto profile = profile_job(job, fabric.topo, placement.hosts);
  EXPECT_GT(profile.makespan, 0.0);
  EXPECT_FALSE(profile.tasks.empty());
  const double T = unit_gpu().compute_time(model.layers[0].fwd_flops);
  EXPECT_NEAR(profile.mean_task_duration("it0.f.s0"), T, 1e-9);
}

TEST(Profiler, FsdpOffsetsMatchGeneralizedEq7) {
  auto fabric = topology::make_big_switch(2, 1.0);
  netsim::Simulator sim(&fabric.topo);
  ef::Registry reg;
  const auto placement = make_placement(sim, fabric.hosts);
  const ModelSpec model = make_mlp(3, 32, 2);
  const GpuSpec gpu = unit_gpu();
  const auto job = generate_fsdp(
      {.model = model, .gpu = gpu, .iterations = 1}, placement, reg,
      JobId{0});

  const auto profile = profile_job(job, fabric.topo, placement.hosts);
  const EchelonFlowId ag = job.echelonflows[0];
  const auto it = profile.offsets.find(ag.value());
  ASSERT_NE(it, profile.offsets.end());

  // On an infinitely fast network the forward all-gathers are all released
  // at iteration start (offset 0); the backward ones at the end of the
  // forward pass. The *analytic* arrangement instead staggers ideals by
  // compute times -- so profiled release offsets are a lower bound of the
  // analytic offsets and share the fwd/bwd structure.
  const int per_stage = 2 * 1;  // m(m-1) with m=2
  const auto& analytic = reg.get(ag).arrangement();
  for (std::size_t j = 0; j < it->second.size(); ++j) {
    EXPECT_LE(it->second[j],
              analytic.offset(static_cast<int>(j)) + 1e-9);
  }
  // Backward stages (index >= L*per_stage) are released when the forward
  // pass finishes: sum of fwd compute.
  const double t_fwd_total = gpu.compute_time(model.total_fwd_flops());
  EXPECT_NEAR(it->second[static_cast<std::size_t>(3 * per_stage)],
              t_fwd_total, 1e-9);
}

TEST(Profiler, CalibrateRegistryInstallsMeasuredOffsets) {
  auto fabric = topology::make_big_switch(2, 1.0);
  netsim::Simulator sim(&fabric.topo);
  ef::Registry reg;
  const auto placement = make_placement(sim, fabric.hosts);
  const ModelSpec model = make_mlp(2, 32, 2);
  const auto job = generate_pipeline(
      {.model = model, .gpu = unit_gpu(), .micro_batches = 3,
       .iterations = 1, .schedule = PipelineSchedule::kOneFOneB},
      placement, reg, JobId{0});
  const auto profile = profile_job(job, fabric.topo, placement.hosts);
  calibrate_registry(job, profile, reg);
  // After calibration the arrangements equal the profiled offsets.
  for (const EchelonFlowId id : job.echelonflows) {
    const auto it = profile.offsets.find(id.value());
    ASSERT_NE(it, profile.offsets.end());
    const auto& arr = reg.get(id).arrangement();
    double prev = -1.0;
    for (int j = 0; j < arr.size(); ++j) {
      EXPECT_GE(arr.offset(j), prev);  // monotonized
      prev = arr.offset(j);
      EXPECT_NEAR(arr.offset(j), it->second[static_cast<std::size_t>(j)],
                  1e-9);
    }
  }
}

}  // namespace
}  // namespace echelon::workload
