// Control-plane churn-equivalence suite (DESIGN.md §12).
//
// The incremental control plane promises *bit identity* with the
// kFullRecompute reference mode: dirty-job-scoped scheduler passes must
// produce exactly the decisions a full recomputation would, under streaming
// job churn (arrivals/completions), fault outcomes, external setter churn,
// and at any intra-run parallelism width. Four sections:
//
//   1. Scheduler x fabric matrix: full-vs-incremental on the streaming-churn
//      trace with external setter churn layered on, results AND whole trace
//      streams compared bitwise; plus a chaos-plan cross that also sweeps
//      the threads axis {1, 2, 8}.
//   2. Seeded differential fuzz: >= 100 seeded (trace, churn, chaos,
//      scheduler, fabric, threads) combinations (ECHELON_CHURN_SEEDS
//      overrides the budget; CI sanitizer legs set it to 8), each run in
//      both modes and compared bitwise.
//   3. Direct-drive twin differential: the same address-stable flow
//      population driven through two scheduler instances (one incremental,
//      one full) with per-round dirty marks, membership churn and capacity
//      churn; every flow's weight/rate_cap compared bitwise after every
//      pass. Covers EchelonFlow-MADD, SRPT, Coflow-MADD and Sincronia
//      without simulator noise.
//   4. Steady-state economics: exact skip on mark-less same-era passes, and
//      zero heap allocations across steady-state incremental passes
//      (skipped under ASan/TSan where the counting hook is disabled).

#include "equivalence_harness.hpp"

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "echelon/coflow_madd.hpp"
#include "echelon/echelon_madd.hpp"
#include "echelon/registry.hpp"
#include "echelon/sincronia.hpp"
#include "echelon/srpt.hpp"
#include "obs/trace.hpp"

namespace echelon {
namespace {

using cluster::FabricKind;
using cluster::SchedulerKind;
using eqh::churn_trace;
using eqh::expect_same_result;
using eqh::expect_same_trace;
using eqh::run_cluster;
using eqh::RunSpec;
using faultsim::ChaosProfile;
using faultsim::FaultPlan;
using netsim::SchedMode;

FaultPlan chaos_plan(std::uint64_t seed, const topology::Topology& topo) {
  ChaosProfile p;
  p.seed = seed;
  p.horizon = 1.5;
  p.link_faults = 3;
  p.brownouts = 2;
  p.stragglers = 2;
  return faultsim::from_chaos(p, topo, /*worker_count=*/24, /*job_count=*/10);
}

// ============================================================================
// 1. Scheduler x fabric matrix
// ============================================================================

using ChurnSchedFabric = eqh::SchedFabricTest;

TEST_P(ChurnSchedFabric, FullVsIncrementalBitIdenticalWithSetterChurn) {
  const auto [sched, fabric] = GetParam();
  const auto jobs = churn_trace(11);

  obs::TraceRecorder rec_full(1 << 16);
  obs::TraceRecorder rec_inc(1 << 16);
  RunSpec full{.scheduler = sched, .fabric = fabric};
  full.sched_mode = SchedMode::kFullRecompute;
  full.churn_seed = 77;
  full.trace_sink = &rec_full;
  RunSpec inc = full;
  inc.sched_mode = SchedMode::kIncremental;
  inc.trace_sink = &rec_inc;

  const auto a = run_cluster(jobs, full);
  const auto b = run_cluster(jobs, inc);
  expect_same_result(a, b);
  expect_same_trace(rec_full, rec_inc);
}

TEST_P(ChurnSchedFabric, FullVsIncrementalUnderChaosAcrossThreads) {
  const auto [sched, fabric] = GetParam();
  const auto jobs = churn_trace(23);
  const auto built = eqh::run_cluster_fabric(fabric);
  const FaultPlan plan = chaos_plan(5, built.topo);

  RunSpec full{.scheduler = sched, .fabric = fabric};
  full.plan = &plan;
  full.sched_mode = SchedMode::kFullRecompute;
  full.churn_seed = 13;
  const auto reference = run_cluster(jobs, full);

  for (const unsigned threads : {1u, 2u, 8u}) {
    RunSpec inc = full;
    inc.sched_mode = SchedMode::kIncremental;
    inc.threads = threads;
    const auto b = run_cluster(jobs, inc);
    expect_same_result(reference, b);
  }
}

ECHELON_INSTANTIATE_SCHED_FABRIC(ChurnSchedFabric);

// ============================================================================
// 2. Seeded differential fuzz
// ============================================================================

TEST(ChurnFuzz, ManySeededRunsAgreeAcrossModes) {
  const int budget = eqh::env_seed_budget("ECHELON_CHURN_SEEDS", 100);

  constexpr SchedulerKind kKinds[] = {
      SchedulerKind::kFairSharing, SchedulerKind::kSrpt,
      SchedulerKind::kCoflowMadd,  SchedulerKind::kSincronia,
      SchedulerKind::kEchelonMadd, SchedulerKind::kCoordinator};
  constexpr FabricKind kFabrics[] = {FabricKind::kBigSwitch,
                                     FabricKind::kLeafSpine};
  constexpr unsigned kThreads[] = {1u, 2u, 8u};

  for (int s = 0; s < budget; ++s) {
    const auto seed = static_cast<std::uint64_t>(s);
    const auto jobs = churn_trace(1000 + seed);
    RunSpec full;
    full.scheduler = kKinds[s % 6];
    full.fabric = kFabrics[(s / 6) % 2];
    full.threads = kThreads[s % 3];
    full.sched_mode = SchedMode::kFullRecompute;
    full.churn_seed = (s % 4 == 0) ? 0 : 7000 + seed;  // some churn-free

    const auto built = eqh::run_cluster_fabric(full.fabric);
    FaultPlan plan;
    if (s % 2 == 1) plan = chaos_plan(seed, built.topo);
    if (s % 2 == 1) full.plan = &plan;

    RunSpec inc = full;
    inc.sched_mode = SchedMode::kIncremental;

    const auto a = run_cluster(jobs, full);
    const auto b = run_cluster(jobs, inc);
    expect_same_result(a, b);
    if (HasFailure()) {
      FAIL() << "first divergence at seed " << s << " (scheduler "
             << cluster::to_string(full.scheduler) << ", fabric "
             << (full.fabric == FabricKind::kBigSwitch ? "bigswitch"
                                                       : "leafspine")
             << ", threads " << full.threads << ", chaos " << (s % 2)
             << ", churn_seed " << full.churn_seed << ")";
    }
  }
}

// ============================================================================
// 3. Direct-drive twin differential
// ============================================================================

// The driver (TwinPopulation / Twin / expect_same_decisions) lives in
// equivalence_harness.hpp so other differential suites (the service suite
// among them) can reuse it; this section owns the 120-round churn script.
using eqh::expect_same_decisions;
using eqh::to_string;
using eqh::Twin;
using PolicyKind = eqh::TwinPolicy;

class ChurnTwin : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(ChurnTwin, ScopedPassesMatchFullRecompute) {
  const PolicyKind kind = GetParam();
  const int jobs = 16;
  Twin full(jobs, kind, SchedMode::kFullRecompute);
  Twin inc(jobs, kind, SchedMode::kIncremental);

  Rng rng(2024);
  std::vector<std::size_t> parked;  // indices into pop.flows, departed
  for (int round = 0; round < 120; ++round) {
    const std::uint64_t action = rng.uniform_int(10);
    if (action < 5) {
      // Dirty-mark churn: between 1 and 4 random jobs.
      const int d = 1 + static_cast<int>(rng.uniform_int(4));
      for (int k = 0; k < d; ++k) {
        const JobId j{rng.uniform_int(static_cast<std::uint64_t>(jobs))};
        full.sched->mark_job_dirty(j);
        inc.sched->mark_job_dirty(j);
      }
    } else if (action < 7 && full.active.size() > 8) {
      // Membership churn: one departure (same index in both twins).
      const std::size_t idx = rng.uniform_int(full.active.size());
      parked.push_back(full.active[idx]->id.value());
      full.depart(idx);
      inc.depart(idx);
    } else if (action == 7 && !parked.empty()) {
      // Re-arrival of a departed member.
      const std::size_t fi = parked.back();
      parked.pop_back();
      full.arrive(&full.pop.flows[fi]);
      inc.arrive(&inc.pop.flows[fi]);
    } else if (action == 8) {
      // Capacity churn: identical link degradation in both fabrics -- the
      // capacity-epoch bump moves the era and must force a full fallback.
      const auto lid =
          LinkId{rng.uniform_int(full.pop.fabric.topo.link_count())};
      const double scale = 0.5 + 0.5 * rng.uniform();
      full.pop.fabric.topo.set_link_capacity(
          lid, full.pop.fabric.topo.link(lid).capacity * scale);
      inc.pop.fabric.topo.set_link_capacity(
          lid, inc.pop.fabric.topo.link(lid).capacity * scale);
    }
    // action == 9 (and starved churn buckets): a quiet round -- nothing
    // marked, same era. The incremental twin must take the exact-skip tier
    // and still match the full recompute bit for bit.
    full.control();
    inc.control();
    expect_same_decisions(full, inc, round);
    if (HasFailure()) {
      FAIL() << "first divergence: policy " << to_string(kind) << " round "
             << round;
    }
  }
  // The incremental twin must actually have taken the fast tiers, or this
  // test proves nothing.
  const netsim::SchedStats& st = inc.sched->sched_stats();
  EXPECT_GT(st.scoped_passes + st.pass_skips, 0u)
      << "policy " << to_string(kind);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ChurnTwin,
                         ::testing::Values(PolicyKind::kEchelonMadd,
                                           PolicyKind::kSrpt,
                                           PolicyKind::kCoflowMadd,
                                           PolicyKind::kSincronia),
                         [](const auto& info) {
                           std::string n = to_string(info.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// ============================================================================
// 4. Steady-state economics
// ============================================================================

TEST(ChurnSteadyState, MarklessSameEraPassIsAnExactSkip) {
  Twin inc(8, PolicyKind::kEchelonMadd, SchedMode::kIncremental);
  inc.control();  // consumes the arrival marks (full pass, enters the era)

  std::vector<double> weights;
  std::vector<double> caps;
  for (const netsim::Flow& f : inc.pop.flows) {
    weights.push_back(f.weight);
    caps.push_back(f.rate_cap.value_or(-1.0));
  }
  const std::uint64_t skips_before = inc.sched->sched_stats().pass_skips;
  for (int i = 0; i < 10; ++i) inc.control();
  EXPECT_EQ(inc.sched->sched_stats().pass_skips, skips_before + 10);
  for (std::size_t i = 0; i < inc.pop.flows.size(); ++i) {
    EXPECT_BITEQ(inc.pop.flows[i].weight, weights[i]);
    EXPECT_BITEQ(inc.pop.flows[i].rate_cap.value_or(-1.0), caps[i]);
  }
}

TEST(ChurnSteadyState, IncrementalPassesAllocateNothing) {
#if !ECHELON_ALLOC_HOOK
  GTEST_SKIP() << "allocation hook disabled under this sanitizer";
#else
  for (const PolicyKind kind :
       {PolicyKind::kEchelonMadd, PolicyKind::kSrpt, PolicyKind::kCoflowMadd}) {
    const int jobs = 16;
    Twin inc(jobs, kind, SchedMode::kIncremental);
    // Warm-up: the initial full pass plus one scoped pass per job (stamps
    // every rank cache) and one wide pass (high-waters the dirty set and
    // the component scratch).
    inc.control();
    for (int j = 0; j < jobs; ++j) {
      inc.sched->mark_job_dirty(JobId{static_cast<std::uint64_t>(j)});
      inc.control();
    }
    for (int j = 0; j < jobs; ++j) {
      inc.sched->mark_job_dirty(JobId{static_cast<std::uint64_t>(j)});
    }
    inc.control();

    // Steady state: skip passes and scoped passes of every width.
    eqh::alloc_count_begin();
    for (int round = 0; round < 100; ++round) {
      const int d = round % 4;  // 0 = skip tier
      for (int k = 0; k < d; ++k) {
        inc.sched->mark_job_dirty(
            JobId{static_cast<std::uint64_t>((round + k * 5) % jobs)});
      }
      inc.control();
    }
    const std::uint64_t allocs = eqh::alloc_count_end();
    EXPECT_EQ(allocs, 0u) << "policy " << to_string(kind);
    const netsim::SchedStats& st = inc.sched->sched_stats();
    EXPECT_GT(st.scoped_passes, 0u) << "policy " << to_string(kind);
    EXPECT_GT(st.pass_skips, 0u) << "policy " << to_string(kind);
  }
#endif
}

}  // namespace
}  // namespace echelon
