// Robustness tests: runtime link-capacity changes (degradation/recovery)
// and compute jitter (real runs deviating from the profiled arrangement).

#include <gtest/gtest.h>

#include "echelon/echelon_madd.hpp"
#include "echelon/registry.hpp"
#include "netsim/simulator.hpp"
#include "topology/builders.hpp"
#include "workload/pp.hpp"

namespace echelon {
namespace {

using netsim::FlowSpec;
using netsim::Simulator;

TEST(LinkCapacity, RuntimeChangeAffectsRates) {
  auto fabric = topology::make_big_switch(2, 10.0);
  Simulator sim(&fabric.topo);
  const FlowId id = sim.submit_flow(FlowSpec{
      .src = fabric.hosts[0], .dst = fabric.hosts[1], .size = 100.0});
  // Halve every link at t = 4 (60 bytes remain); 60 / 5 = 12 more seconds.
  sim.schedule_at(4.0, [&fabric](Simulator& s) {
    for (std::size_t l = 0; l < fabric.topo.link_count(); ++l) {
      fabric.topo.set_link_capacity(LinkId{l}, 5.0);
    }
    s.invalidate_allocation();
  });
  sim.run();
  EXPECT_NEAR(sim.flow(id).finish_time, 16.0, 1e-9);
}

TEST(LinkCapacity, RecoveryRestoresFullRate) {
  auto fabric = topology::make_big_switch(2, 10.0);
  Simulator sim(&fabric.topo);
  const FlowId id = sim.submit_flow(FlowSpec{
      .src = fabric.hosts[0], .dst = fabric.hosts[1], .size = 100.0});
  sim.schedule_at(2.0, [&fabric](Simulator& s) {  // degrade to 2 B/s
    for (std::size_t l = 0; l < fabric.topo.link_count(); ++l) {
      fabric.topo.set_link_capacity(LinkId{l}, 2.0);
    }
    s.invalidate_allocation();
  });
  sim.schedule_at(7.0, [&fabric](Simulator& s) {  // recover
    for (std::size_t l = 0; l < fabric.topo.link_count(); ++l) {
      fabric.topo.set_link_capacity(LinkId{l}, 10.0);
    }
    s.invalidate_allocation();
  });
  sim.run();
  // 20 bytes in [0,2], 10 in [2,7], 70 at full rate: 7 + 7 = 14.
  EXPECT_NEAR(sim.flow(id).finish_time, 14.0, 1e-9);
}

TEST(LinkCapacity, EchelonFlowCatchesUpAfterDegradation) {
  // A transient brownout delays the first member of a pipeline EchelonFlow;
  // the Fig.-6 recalibration gives later members full catch-up bandwidth and
  // the echelon re-forms: all finishes stay exactly one transfer apart.
  auto fabric = topology::make_big_switch(2, 10.0);
  Simulator sim(&fabric.topo);
  ef::Registry reg;
  reg.attach(sim);
  ef::EchelonMaddScheduler sched(&reg);
  sim.set_scheduler(&sched);
  const EchelonFlowId efid =
      reg.create(JobId{0}, ef::Arrangement::pipeline(3, 1.0));
  for (int i = 0; i < 3; ++i) {
    sim.schedule_at(2.0 * i, [&fabric, efid, i](Simulator& s) {
      s.submit_flow(FlowSpec{.src = fabric.hosts[0],
                             .dst = fabric.hosts[1],
                             .size = 20.0,
                             .group = efid,
                             .index_in_group = i});
    });
  }
  // Brownout in [0, 1]: flow 0 crawls at 1 B/s.
  for (std::size_t l = 0; l < fabric.topo.link_count(); ++l) {
    fabric.topo.set_link_capacity(LinkId{l}, 1.0);
  }
  sim.schedule_at(1.0, [&fabric](Simulator& s) {
    for (std::size_t l = 0; l < fabric.topo.link_count(); ++l) {
      fabric.topo.set_link_capacity(LinkId{l}, 10.0);
    }
    s.invalidate_allocation();
  });
  sim.run();
  // Flow 0: 1 byte in [0,1], 19 more at 10 B/s -> 2.9. Flows 1 and 2 are
  // sequential full-rate transfers behind it.
  EXPECT_NEAR(sim.flow(FlowId{0}).finish_time, 2.9, 1e-9);
  EXPECT_NEAR(sim.flow(FlowId{1}).finish_time, 4.9, 1e-9);
  EXPECT_NEAR(sim.flow(FlowId{2}).finish_time, 6.9, 1e-9);
  // Without the brownout the finishes would be 2/4/6 (tardiness 4); the
  // brownout adds only its 0.9 s residue once -- it does not compound
  // across the echelon.
  EXPECT_NEAR(reg.get(efid).tardiness(), 4.9, 1e-9);
}

TEST(Jitter, ZeroJitterIsExact) {
  const Duration d = workload::apply_jitter(2.0, 0.0, nullptr);
  EXPECT_DOUBLE_EQ(d, 2.0);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(workload::apply_jitter(2.0, 0.0, &rng), 2.0);
}

TEST(Jitter, StaysPositiveAndTracksMean) {
  Rng rng(7);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const Duration d = workload::apply_jitter(1.0, 0.2, &rng);
    EXPECT_GT(d, 0.0);
    sum += d;
  }
  EXPECT_NEAR(sum / kN, 1.0, 0.02);
}

TEST(Jitter, PipelineStillDrainsUnderHeavyJitter) {
  auto fabric = topology::make_big_switch(4, 1e8);
  Simulator sim(&fabric.topo);
  ef::Registry reg;
  reg.attach(sim);
  ef::EchelonMaddScheduler sched(&reg);
  sim.set_scheduler(&sched);
  const auto placement = workload::make_placement(sim, fabric.hosts);
  const auto job = workload::generate_pipeline(
      {.model = workload::make_mlp(4, 128, 4),
       .gpu = workload::a100(),
       .micro_batches = 4,
       .iterations = 2,
       .compute_jitter = 0.5,
       .jitter_seed = 99},
      placement, reg, JobId{0});
  netsim::WorkflowEngine engine(&sim, &job.workflow);
  engine.launch(0.0);
  sim.run();
  EXPECT_TRUE(engine.finished());
  for (const EchelonFlowId id : job.echelonflows) {
    EXPECT_TRUE(reg.get(id).complete());
  }
}

TEST(Jitter, DeterministicPerSeed) {
  auto gen = [](std::uint64_t seed) {
    auto fabric = topology::make_big_switch(2, 1e8);
    Simulator sim(&fabric.topo);
    ef::Registry reg;
    const auto placement = workload::make_placement(sim, fabric.hosts);
    const auto job = workload::generate_pipeline(
        {.model = workload::make_mlp(2, 64, 4),
         .gpu = workload::a100(),
         .micro_batches = 2,
         .iterations = 1,
         .compute_jitter = 0.3,
         .jitter_seed = seed},
        placement, reg, JobId{0});
    std::vector<double> durations;
    for (const auto& n : job.workflow.nodes()) {
      if (n.kind == netsim::WfKind::kCompute) durations.push_back(n.duration);
    }
    return durations;
  };
  EXPECT_EQ(gen(5), gen(5));
  EXPECT_NE(gen(5), gen(6));
}

}  // namespace
}  // namespace echelon
