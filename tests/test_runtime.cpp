// Tests for the §5 system sketch: agent + coordinator request path,
// interval-mode scheduling, iterative decision reuse, and priority-queue
// enforcement.

#include <gtest/gtest.h>

#include "netsim/simulator.hpp"
#include "runtime/agent.hpp"
#include "runtime/backend.hpp"
#include "runtime/coordinator.hpp"
#include "runtime/priority_queue.hpp"
#include "topology/builders.hpp"

namespace echelon::runtime {
namespace {

using netsim::FlowSpec;
using netsim::Simulator;

struct RuntimeFixture : ::testing::Test {
  RuntimeFixture()
      : fabric(topology::make_big_switch(4, 10.0)), sim(&fabric.topo) {}
  topology::BuiltFabric fabric;
  Simulator sim;
};

EchelonFlowRequest pipeline_request(const topology::BuiltFabric& f,
                                    int flows, Duration T, Bytes size,
                                    std::uint64_t sig_base = 0) {
  EchelonFlowRequest req;
  req.label = "pipe";
  req.arrangement = ef::Arrangement::pipeline(flows, T);
  for (int i = 0; i < flows; ++i) {
    req.flows.push_back(FlowInfo{size, f.hosts[0], f.hosts[1]});
  }
  req.signature_base = sig_base;
  return req;
}

TEST_F(RuntimeFixture, AgentRegistersAndPostsFlows) {
  Coordinator coord(&sim);
  sim.set_scheduler(&coord);
  EchelonFlowAgent agent(&sim, &coord, JobId{0}, "pytorch");

  const EchelonFlowId ef =
      agent.register_echelonflow(pipeline_request(fabric, 2, 1.0, 20.0));
  EXPECT_EQ(coord.registry().size(), 1u);

  std::vector<SimTime> done;
  agent.post_flow(ef, 0, [&done](Simulator& s, const netsim::Flow&) {
    done.push_back(s.now());
  });
  sim.schedule_at(1.0, [&agent, ef, &done](Simulator&) {
    agent.post_flow(ef, 1, [&done](Simulator& s, const netsim::Flow&) {
      done.push_back(s.now());
    });
  });
  sim.run();
  EXPECT_EQ(agent.posted_flows(), 2u);
  ASSERT_EQ(done.size(), 2u);
  // EDF order on one port: flow 0 at full rate [0,2], flow 1 [2,4].
  EXPECT_NEAR(done[0], 2.0, 1e-9);
  EXPECT_NEAR(done[1], 4.0, 1e-9);
  // Tardiness measured by the coordinator's registry.
  EXPECT_TRUE(coord.registry().get(ef).complete());
  EXPECT_NEAR(coord.registry().get(ef).tardiness(), 3.0, 1e-9);
}

TEST_F(RuntimeFixture, PerEventModeRunsHeuristicPerChange) {
  Coordinator coord(&sim);
  sim.set_scheduler(&coord);
  EchelonFlowAgent agent(&sim, &coord, JobId{0});
  const EchelonFlowId ef =
      agent.register_echelonflow(pipeline_request(fabric, 3, 0.5, 10.0));
  for (int i = 0; i < 3; ++i) agent.post_flow(ef, i);
  sim.run();
  // Arrivals (batched) + three departures: at least 4 heuristic runs.
  EXPECT_GE(coord.heuristic_runs(), 4u);
  EXPECT_EQ(coord.reuse_hits(), 0u);
}

TEST_F(RuntimeFixture, IntervalModeDefersMidIntervalArrivals) {
  Coordinator coord(&sim, {.mode = SchedulingMode::kInterval,
                           .interval = 2.0});
  sim.set_scheduler(&coord);
  EchelonFlowAgent agent(&sim, &coord, JobId{0});
  const EchelonFlowId ef =
      agent.register_echelonflow(pipeline_request(fabric, 2, 0.5, 10.0));
  agent.post_flow(ef, 0);  // t=0: scheduled immediately (first recompute)
  sim.schedule_at(0.5, [&agent, ef](Simulator&) {
    agent.post_flow(ef, 1);  // mid-interval: parked until t=2
  });
  sim.run();
  EXPECT_GE(coord.deferred_flows(), 1u);
  // Flow 0: [0,1] at full rate. Flow 1 parked [0.5,2], then served: done 3.
  EXPECT_NEAR(sim.flow(FlowId{1}).finish_time, 3.0, 1e-9);
}

TEST_F(RuntimeFixture, IterativeReuseGrantsCachedRates) {
  Coordinator coord(&sim, {.mode = SchedulingMode::kInterval,
                           .interval = 5.0,
                           .iterative_reuse = true});
  sim.set_scheduler(&coord);
  EchelonFlowAgent agent(&sim, &coord, JobId{0});
  // Iteration 1 (t=0): same signature base as iteration 2.
  const EchelonFlowId ef1 = agent.register_echelonflow(
      pipeline_request(fabric, 1, 0.5, 10.0, /*sig=*/100));
  agent.post_flow(ef1, 0);  // scheduled by the t=0 recompute, cached
  // Iteration 2 arrives mid-interval with the same structural signature.
  sim.schedule_at(2.0, [&](Simulator&) {
    const EchelonFlowId ef2 = agent.register_echelonflow(
        pipeline_request(fabric, 1, 0.5, 10.0, /*sig=*/100));
    agent.post_flow(ef2, 0);
  });
  sim.run();
  EXPECT_GE(coord.reuse_hits(), 1u);
  EXPECT_EQ(coord.deferred_flows(), 0u);
  // The cached decision was full rate -> finishes at 3.0 without waiting
  // for the t=5 recompute.
  EXPECT_NEAR(sim.flow(FlowId{1}).finish_time, 3.0, 1e-9);
}

TEST_F(RuntimeFixture, PriorityQueueEnforcerQuantizesToWeights) {
  netsim::FairSharingScheduler fair;
  PriorityQueueEnforcer pq(&fair, {.num_queues = 4});
  sim.set_scheduler(&pq);
  EXPECT_EQ(pq.name(), "fair+pq4");
  const FlowId a = sim.submit_flow(FlowSpec{
      .src = fabric.hosts[0], .dst = fabric.hosts[1], .size = 10.0});
  sim.run();
  // A single uncapped flow lands in queue 0 and still gets the full port.
  EXPECT_NEAR(sim.flow(a).finish_time, 1.0, 1e-9);
}

TEST_F(RuntimeFixture, PriorityQueueApproximatesEchelonDecisions) {
  // Under K-queue enforcement the echelon policy's strict ordering becomes
  // weighted sharing: both flows make progress, earlier deadline faster.
  ef::Registry reg;
  reg.attach(sim);
  ef::EchelonMaddScheduler policy(&reg);
  PriorityQueueEnforcer pq(&policy, {.num_queues = 8});
  sim.set_scheduler(&pq);
  const EchelonFlowId ef =
      reg.create(JobId{0}, ef::Arrangement::pipeline(2, 1.0));
  const FlowId a = sim.submit_flow(FlowSpec{.src = fabric.hosts[0],
                                            .dst = fabric.hosts[1],
                                            .size = 20.0,
                                            .group = ef,
                                            .index_in_group = 0});
  const FlowId b = sim.submit_flow(FlowSpec{.src = fabric.hosts[0],
                                            .dst = fabric.hosts[1],
                                            .size = 20.0,
                                            .group = ef,
                                            .index_in_group = 1});
  sim.run();
  // Exact rate control would give 2.0 / 4.0; the K-queue approximation puts
  // the zero-rate flow in the lowest queue (weight 2^-7), so flow a is
  // slightly slower and flow b slightly faster.
  EXPECT_LT(sim.flow(a).finish_time, sim.flow(b).finish_time);
  EXPECT_GT(sim.flow(a).finish_time, 2.0 - 1e-9);
  EXPECT_LE(sim.flow(b).finish_time, 4.0 + 0.2);
}

TEST(Backend, CardinalitiesMatchDecomposition) {
  Backend nccl(BackendKind::kNccl);
  Backend mpi(BackendKind::kMpi);
  EXPECT_EQ(nccl.all_reduce_cardinality(4), 24);
  EXPECT_EQ(mpi.all_reduce_cardinality(4), 24);  // scatter + gather rounds
  EXPECT_STREQ(to_string(BackendKind::kGloo), "gloo");
}

TEST(Backend, DecompositionsProduceDeclaredFlowCounts) {
  auto fabric = topology::make_big_switch(4, 10.0);
  netsim::Workflow wf;
  collective::FlowTag tag{.job = JobId{0}, .group = EchelonFlowId{0}};
  Backend nccl(BackendKind::kNccl);
  const auto h =
      nccl.all_reduce(wf, fabric.hosts, 40.0, tag, "ar");
  EXPECT_EQ(static_cast<int>(h.flow_nodes.size()),
            nccl.all_reduce_cardinality(4));

  netsim::Workflow wf2;
  collective::FlowTag tag2{.job = JobId{0}, .group = EchelonFlowId{0}};
  Backend mpi(BackendKind::kMpi);
  const auto h2 = mpi.all_reduce(wf2, fabric.hosts, 40.0, tag2, "ar");
  EXPECT_EQ(static_cast<int>(h2.flow_nodes.size()),
            mpi.all_reduce_cardinality(4));
}

}  // namespace
}  // namespace echelon::runtime
