// Integration test: exact reproduction of the paper's Fig. 2 motivating
// example.
//
// Setup (from the figure caption and §1): pipeline-parallel forward phase,
// two consecutive workers, three micro-batches. Each worker spends 1 s of
// computation per micro-batch; each micro-batch's activations are 2*B bytes,
// sent over a link of bandwidth B.
//
// Expected computation finish times (see EXPERIMENTS.md for the derivation,
// consistent with the paper's statement that Coflow scheduling "is worse
// than naive bandwidth fair sharing"):
//   fair sharing      -> 8.5
//   Coflow (MADD)     -> 10
//   EchelonFlow       -> 8   (optimal)
// and under EchelonFlow scheduling the three flows finish staggered at
// t = 3, 5, 7 -- matching the computation pattern.

#include <gtest/gtest.h>

#include "echelon/coflow_madd.hpp"
#include "echelon/echelon_madd.hpp"
#include "echelon/registry.hpp"
#include "netsim/simulator.hpp"
#include "netsim/workflow.hpp"
#include "topology/builders.hpp"

namespace echelon {
namespace {

constexpr double kBandwidth = 1.0;      // B (bytes/s)
constexpr Bytes kActivation = 2.0;      // 2*B per micro-batch
constexpr Duration kCompute = 1.0;      // per micro-batch, both workers
constexpr int kMicroBatches = 3;

struct Fig2Run {
  SimTime comp_finish = 0.0;
  std::vector<SimTime> flow_finish;     // activation flow finish times
};

// Builds the forward-phase workflow of Fig. 1b / Fig. 2 and runs it under
// the given scheduler. `registry` must outlive the run.
Fig2Run run_fig2(netsim::NetworkScheduler* scheduler, ef::Registry& registry) {
  auto fabric = topology::make_big_switch(2, kBandwidth);
  netsim::Simulator sim(&fabric.topo);
  registry.attach(sim);
  if (scheduler != nullptr) sim.set_scheduler(scheduler);

  const WorkerId w0 = sim.add_worker(fabric.hosts[0]);
  const WorkerId w1 = sim.add_worker(fabric.hosts[1]);

  const EchelonFlowId ef = registry.create(
      JobId{0}, ef::Arrangement::pipeline(kMicroBatches, kCompute), "fig2");

  netsim::Workflow wf;
  std::vector<netsim::WfNodeId> producer(kMicroBatches);
  std::vector<netsim::WfNodeId> flows(kMicroBatches);
  std::vector<netsim::WfNodeId> consumer(kMicroBatches);
  for (int i = 0; i < kMicroBatches; ++i) {
    const auto u = static_cast<std::size_t>(i);
    producer[u] =
        wf.add_compute(w0, kCompute, "f.s0.mb" + std::to_string(i));
    flows[u] = wf.add_flow(netsim::FlowSpec{.src = fabric.hosts[0],
                                            .dst = fabric.hosts[1],
                                            .size = kActivation,
                                            .job = JobId{0},
                                            .group = ef,
                                            .index_in_group = i,
                                            .label = "act.mb" +
                                                     std::to_string(i)});
    consumer[u] =
        wf.add_compute(w1, kCompute, "f.s1.mb" + std::to_string(i));
    wf.add_dep(producer[u], flows[u]);
    wf.add_dep(flows[u], consumer[u]);
    if (i > 0) {
      wf.add_dep(producer[u - 1], producer[u]);
      wf.add_dep(consumer[u - 1], consumer[u]);
    }
  }
  EXPECT_TRUE(wf.is_acyclic());

  netsim::WorkflowEngine engine(&sim, &wf);
  engine.launch(0.0);
  sim.run();
  EXPECT_TRUE(engine.finished());

  Fig2Run out;
  out.comp_finish = engine.node_finish(consumer.back());
  for (int i = 0; i < kMicroBatches; ++i) {
    out.flow_finish.push_back(
        engine.node_finish(flows[static_cast<std::size_t>(i)]));
  }
  return out;
}

TEST(Fig2, FairSharingFinishesAt8_5) {
  ef::Registry registry;
  const Fig2Run run = run_fig2(nullptr, registry);  // default = fair sharing
  EXPECT_NEAR(run.comp_finish, 8.5, 1e-9);
  // Flow finish times under fair sharing: 4.5, 6.5, 7.
  ASSERT_EQ(run.flow_finish.size(), 3u);
  EXPECT_NEAR(run.flow_finish[0], 4.5, 1e-9);
  EXPECT_NEAR(run.flow_finish[1], 6.5, 1e-9);
  EXPECT_NEAR(run.flow_finish[2], 7.0, 1e-9);
}

TEST(Fig2, CoflowMaddFinishesAt10) {
  ef::Registry registry;
  ef::CoflowMaddScheduler sched;
  const Fig2Run run = run_fig2(&sched, registry);
  EXPECT_NEAR(run.comp_finish, 10.0, 1e-9);
  // MADD makes all flows of the "coflow" finish simultaneously at t = 7.
  for (const SimTime t : run.flow_finish) EXPECT_NEAR(t, 7.0, 1e-9);
}

TEST(Fig2, EchelonFlowFinishesAt8) {
  ef::Registry registry;
  ef::EchelonMaddScheduler sched(&registry);
  const Fig2Run run = run_fig2(&sched, registry);
  EXPECT_NEAR(run.comp_finish, 8.0, 1e-9);
  // Staggered finishes matching the computation pattern: 3, 5, 7 (Fig. 2c).
  ASSERT_EQ(run.flow_finish.size(), 3u);
  EXPECT_NEAR(run.flow_finish[0], 3.0, 1e-9);
  EXPECT_NEAR(run.flow_finish[1], 5.0, 1e-9);
  EXPECT_NEAR(run.flow_finish[2], 7.0, 1e-9);
}

TEST(Fig2, EchelonFlowTardinessIsMinimal) {
  // Under EchelonFlow scheduling the measured EchelonFlow tardiness (Eq. 2)
  // equals the analytic optimum: flows finish at 3/5/7 against ideal finish
  // times 1/2/3 -> max tardiness 4.
  ef::Registry registry;
  ef::EchelonMaddScheduler sched(&registry);
  (void)run_fig2(&sched, registry);
  ASSERT_EQ(registry.size(), 1u);
  const ef::EchelonFlow& ef = registry.get(EchelonFlowId{0});
  ASSERT_TRUE(ef.complete());
  EXPECT_NEAR(ef.tardiness(), 4.0, 1e-9);
  // Fair sharing and Coflow both do worse on the same metric.
  ef::Registry fair_reg;
  (void)run_fig2(nullptr, fair_reg);
  EXPECT_GT(fair_reg.get(EchelonFlowId{0}).tardiness(), 4.0);
  ef::Registry co_reg;
  ef::CoflowMaddScheduler co;
  (void)run_fig2(&co, co_reg);
  EXPECT_GT(co_reg.get(EchelonFlowId{0}).tardiness(), 4.0);
}

}  // namespace
}  // namespace echelon
