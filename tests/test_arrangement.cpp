// Unit tests for arrangement functions (Eqs. 5, 6, 7) and the EchelonFlow /
// Registry runtime objects (Definitions 3.1-3.3).

#include <gtest/gtest.h>

#include "echelon/arrangement.hpp"
#include "echelon/echelonflow.hpp"
#include "echelon/registry.hpp"

namespace echelon::ef {
namespace {

TEST(Arrangement, CoflowAllOffsetsZero) {
  const Arrangement a = Arrangement::coflow(4);
  EXPECT_EQ(a.size(), 4);
  for (int j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(a.offset(j), 0.0);
  EXPECT_TRUE(a.is_coflow_compliant());
  EXPECT_EQ(a.describe(), "same flow finish time");
}

TEST(Arrangement, PipelineStaggersByT) {
  const Arrangement a = Arrangement::pipeline(3, 1.5);
  EXPECT_DOUBLE_EQ(a.offset(0), 0.0);
  EXPECT_DOUBLE_EQ(a.offset(1), 1.5);
  EXPECT_DOUBLE_EQ(a.offset(2), 3.0);
  EXPECT_FALSE(a.is_coflow_compliant());
  EXPECT_EQ(a.describe(), "staggered flow finish time");
}

TEST(Arrangement, FsdpEq7Shape) {
  // n=3 layers, 2 flows per stage, T_fwd=1, T_bwd=2.
  const Arrangement a = Arrangement::fsdp(3, 2, 1.0, 2.0);
  EXPECT_EQ(a.size(), 12);  // 2n stages x 2 flows
  // Stage offsets: C0=0, C1=1, C2=2 (fwd, +T_fwd each); C3=4, C4=6, C5=8
  // (bwd, +T_bwd each).
  const double expected[] = {0, 0, 1, 1, 2, 2, 4, 4, 6, 6, 8, 8};
  for (int j = 0; j < 12; ++j) EXPECT_DOUBLE_EQ(a.offset(j), expected[j]);
  EXPECT_FALSE(a.is_coflow_compliant());
  EXPECT_EQ(a.describe(), "staggered Coflow finish time");
}

TEST(Arrangement, StagedBuilder) {
  const Arrangement a = Arrangement::staged({2, 3}, {0.0, 5.0});
  EXPECT_EQ(a.size(), 5);
  EXPECT_DOUBLE_EQ(a.offset(1), 0.0);
  EXPECT_DOUBLE_EQ(a.offset(2), 5.0);
  EXPECT_DOUBLE_EQ(a.offset(4), 5.0);
}

TEST(Arrangement, EmptyIsCompliant) {
  EXPECT_TRUE(Arrangement::coflow(0).is_coflow_compliant());
}

TEST(EchelonFlow, ReferenceTimeFixedByHeadFlow) {
  EchelonFlow h(EchelonFlowId{0}, JobId{0}, Arrangement::pipeline(3, 2.0));
  EXPECT_FALSE(h.reference_known());
  EXPECT_EQ(h.ideal_finish(1), std::nullopt);

  h.note_start(0, FlowId{10}, 4.0, /*now=*/5.0);
  ASSERT_TRUE(h.reference_known());
  EXPECT_DOUBLE_EQ(*h.reference_time(), 5.0);
  EXPECT_DOUBLE_EQ(*h.ideal_finish(0), 5.0);   // d_0 = r = s_0
  EXPECT_DOUBLE_EQ(*h.ideal_finish(1), 7.0);   // + T
  EXPECT_DOUBLE_EQ(*h.ideal_finish(2), 9.0);
}

TEST(EchelonFlow, LateFlowsKeepIdealFinishFromReference) {
  // Fig. 6: flows that start late still get d_j derived from r, which may
  // precede their own start time.
  EchelonFlow h(EchelonFlowId{0}, JobId{0}, Arrangement::pipeline(2, 1.0));
  h.note_start(0, FlowId{1}, 1.0, 0.0);
  h.note_start(1, FlowId{2}, 1.0, /*now=*/10.0);  // very late
  EXPECT_DOUBLE_EQ(*h.ideal_finish(1), 1.0);      // r + T, not start-based
}

TEST(EchelonFlow, NonHeadFirstStarterAnchorsReference) {
  // If (unusually) member 1 starts first, r is derived so that member 1's
  // ideal finish equals its start.
  EchelonFlow h(EchelonFlowId{0}, JobId{0}, Arrangement::pipeline(2, 3.0));
  h.note_start(1, FlowId{2}, 1.0, /*now=*/10.0);
  EXPECT_DOUBLE_EQ(*h.reference_time(), 7.0);
  EXPECT_DOUBLE_EQ(*h.ideal_finish(1), 10.0);
  EXPECT_DOUBLE_EQ(*h.ideal_finish(0), 7.0);
}

TEST(EchelonFlow, TardinessIsMaxOverMembers) {
  EchelonFlow h(EchelonFlowId{0}, JobId{0}, Arrangement::pipeline(2, 1.0));
  h.note_start(0, FlowId{1}, 1.0, 0.0);  // d_0 = 0
  h.note_start(1, FlowId{2}, 1.0, 0.5);  // d_1 = 1
  h.note_finish(0, 2.0);                 // tardiness 2
  EXPECT_DOUBLE_EQ(h.tardiness(), 2.0);
  EXPECT_FALSE(h.complete());
  h.note_finish(1, 2.5);                 // tardiness 1.5 -> max stays 2
  EXPECT_TRUE(h.complete());
  EXPECT_DOUBLE_EQ(h.tardiness(), 2.0);
  EXPECT_DOUBLE_EQ(*h.flow_tardiness(1), 1.5);
}

TEST(EchelonFlow, CoflowCompletionTimeMetric) {
  EchelonFlow h(EchelonFlowId{0}, JobId{0}, Arrangement::coflow(2));
  h.note_start(0, FlowId{1}, 1.0, 1.0);
  h.note_start(1, FlowId{2}, 1.0, 1.0);
  h.note_finish(0, 3.0);
  h.note_finish(1, 4.0);
  ASSERT_TRUE(h.coflow_completion_time().has_value());
  EXPECT_DOUBLE_EQ(*h.coflow_completion_time(), 3.0);  // last finish - r
  // For a Coflow arrangement, tardiness == CCT (Property 2's metric map).
  EXPECT_DOUBLE_EQ(h.tardiness(), 3.0);
}

TEST(EchelonFlow, SetArrangementBeforeStartOnly) {
  EchelonFlow h(EchelonFlowId{0}, JobId{0}, Arrangement::coflow(2));
  h.set_arrangement(Arrangement::pipeline(2, 1.0));
  EXPECT_FALSE(h.arrangement().is_coflow_compliant());
}

TEST(Registry, CreateAssignsSequentialIds) {
  Registry reg;
  const EchelonFlowId a = reg.create(JobId{0}, Arrangement::coflow(1));
  const EchelonFlowId b = reg.create(JobId{0}, Arrangement::coflow(1));
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_TRUE(reg.contains(a));
  EXPECT_FALSE(reg.contains(EchelonFlowId{5}));
  EXPECT_FALSE(reg.contains(EchelonFlowId::invalid()));
}

TEST(Registry, TotalTardinessSumsCompleteEchelonFlows) {
  Registry reg;
  const EchelonFlowId a = reg.create(JobId{0}, Arrangement::coflow(1), "", 1.0);
  const EchelonFlowId b =
      reg.create(JobId{0}, Arrangement::coflow(1), "", 3.0);
  netsim::Flow fa;
  fa.spec.group = a;
  fa.spec.index_in_group = 0;
  fa.id = FlowId{0};
  reg.note_arrival(fa, 0.0);
  reg.note_departure(fa, 2.0);
  EXPECT_DOUBLE_EQ(reg.total_tardiness(), 2.0);

  netsim::Flow fb;
  fb.spec.group = b;
  fb.spec.index_in_group = 0;
  fb.id = FlowId{1};
  reg.note_arrival(fb, 1.0);
  reg.note_departure(fb, 2.0);
  EXPECT_DOUBLE_EQ(reg.total_tardiness(), 3.0);           // Eq. 4
  EXPECT_DOUBLE_EQ(reg.weighted_total_tardiness(), 5.0);  // weights 1 and 3
}

TEST(Registry, IgnoresUngroupedFlows) {
  Registry reg;
  netsim::Flow f;
  f.id = FlowId{0};
  reg.note_arrival(f, 0.0);   // no group: must not crash or register
  reg.note_departure(f, 1.0);
  EXPECT_DOUBLE_EQ(reg.total_tardiness(), 0.0);
}

}  // namespace
}  // namespace echelon::ef
