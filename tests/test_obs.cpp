// Observability-layer suite (DESIGN.md §9).
//
// Pins the four contracts the layer makes:
//   1. Recorder semantics: bounded ring with drop-oldest overflow, exact
//      cumulative per-kind counts, interned label directory.
//   2. No perturbation: an ExperimentResult produced with tracing at full
//      `flow` detail plus a metrics registry attached is *byte-identical*
//      to an untraced run -- across every scheduler x fabric cell, and
//      under fault injection. (The zero-allocation side of the contract --
//      sinks off costs nothing -- is enforced by the equivalence suites,
//      which run with observability compiled in.)
//   3. Perfetto round-trip: the emitted trace_event JSON parses back and
//      its slice/instant/counter populations match the recorder's counts
//      exactly.
//   4. Deterministic capture: cluster::run_sweep's per-point metric
//      snapshots and their merge are identical for any thread count.
//
// Single translation unit: equivalence_harness.hpp defines the global
// operator-new replacement and must not be included twice in one binary.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "cluster/sweep.hpp"
#include "equivalence_harness.hpp"
#include "faultsim/fault_plan.hpp"
#include "obs/export.hpp"
#include "obs/expose.hpp"
#include "obs/metrics.hpp"
#include "obs/perfetto.hpp"
#include "obs/trace.hpp"

namespace {

using namespace echelon;
using cluster::FabricKind;
using cluster::SchedulerKind;
using obs::TraceDetail;
using obs::TraceEvent;
using obs::TraceKind;

// ============================================================================
// 1. Recorder semantics
// ============================================================================

TEST(TraceDetailTest, ParsesAllLevels) {
  TraceDetail d = TraceDetail::kOff;
  EXPECT_TRUE(obs::trace_detail_from_string("off", &d));
  EXPECT_EQ(d, TraceDetail::kOff);
  EXPECT_TRUE(obs::trace_detail_from_string("coarse", &d));
  EXPECT_EQ(d, TraceDetail::kCoarse);
  EXPECT_TRUE(obs::trace_detail_from_string("flow", &d));
  EXPECT_EQ(d, TraceDetail::kFlow);
  EXPECT_FALSE(obs::trace_detail_from_string("verbose", &d));
  EXPECT_FALSE(obs::trace_detail_from_string("", &d));
  // Round-trip through to_string.
  for (const TraceDetail level :
       {TraceDetail::kOff, TraceDetail::kCoarse, TraceDetail::kFlow}) {
    TraceDetail back = TraceDetail::kOff;
    ASSERT_TRUE(obs::trace_detail_from_string(obs::to_string(level), &back));
    EXPECT_EQ(back, level);
  }
}

TEST(TraceRecorderTest, RingDropsOldestKeepsCumulativeCounts) {
  obs::TraceRecorder rec(8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    rec.record(TraceEvent{.kind = i % 2 == 0 ? TraceKind::kControlPass
                                             : TraceKind::kAllocPass,
                          .t = static_cast<double>(i),
                          .id = i});
  }
  EXPECT_EQ(rec.size(), 8u);
  EXPECT_EQ(rec.capacity(), 8u);
  EXPECT_EQ(rec.recorded(), 20u);
  EXPECT_EQ(rec.dropped(), 12u);
  // Cumulative counts include dropped events.
  EXPECT_EQ(rec.count(TraceKind::kControlPass), 10u);
  EXPECT_EQ(rec.count(TraceKind::kAllocPass), 10u);
  // Retained window is the newest 8, oldest first.
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t k = 0; k < events.size(); ++k) {
    EXPECT_EQ(events[k].id, 12u + k);
    EXPECT_EQ(events[k].t, static_cast<double>(12 + k));
  }

  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.count(TraceKind::kControlPass), 0u);
  EXPECT_TRUE(rec.events().empty());
}

TEST(TraceRecorderTest, LabelDirectoryInternsFirstSeen) {
  obs::TraceRecorder rec;
  rec.record(TraceEvent{.kind = TraceKind::kFlowSubmit, .id = 7, .job = 1},
             "grad.bucket3");
  rec.record(TraceEvent{.kind = TraceKind::kTaskStart, .id = 7, .job = 1},
             "fwd.s0.m2");
  rec.record(TraceEvent{.kind = TraceKind::kFlowFinish, .id = 7, .job = 1});
  EXPECT_EQ(rec.flow_label(7), "grad.bucket3");
  EXPECT_EQ(rec.task_label(7), "fwd.s0.m2");  // id spaces are disjoint
  EXPECT_EQ(rec.flow_label(8), "");
  EXPECT_EQ(rec.task_label(99), "");
}

// ============================================================================
// 2. No perturbation: traced runs are byte-identical
// ============================================================================

cluster::ExperimentResult run_traced(const std::vector<cluster::JobSpec>& jobs,
                                     const eqh::RunSpec& spec,
                                     obs::TraceSink* sink, TraceDetail detail,
                                     obs::MetricsRegistry* metrics) {
  cluster::ExperimentConfig cfg;
  cfg.scheduler = spec.scheduler;
  cfg.fabric = spec.fabric;
  cfg.hosts = 16;
  cfg.port_capacity = gbps(25);
  cfg.oversubscription = spec.fabric == FabricKind::kLeafSpine ? 2.0 : 1.0;
  cfg.fault_plan = spec.plan;
  cfg.trace_sink = sink;
  cfg.trace_detail = detail;
  cfg.metrics = metrics;
  return cluster::run_experiment(jobs, cfg);
}

using ObsEquivalence = eqh::SchedFabricTest;

TEST_P(ObsEquivalence, FlowDetailTracingIsByteIdentical) {
  const auto [scheduler, fabric] = GetParam();
  const auto jobs = eqh::small_trace(/*seed=*/21, /*jitter=*/0.1);
  eqh::RunSpec spec;
  spec.scheduler = scheduler;
  spec.fabric = fabric;

  const auto baseline = eqh::run_cluster(jobs, spec);
  obs::TraceRecorder rec;
  obs::MetricsRegistry metrics;
  const auto traced =
      run_traced(jobs, spec, &rec, TraceDetail::kFlow, &metrics);

  eqh::expect_same_result(baseline, traced);
  EXPECT_GT(rec.recorded(), 0u);
  EXPECT_FALSE(metrics.snapshot().empty());
}

TEST_P(ObsEquivalence, TracingUnderFaultsIsByteIdentical) {
  const auto [scheduler, fabric] = GetParam();
  const auto jobs = eqh::small_trace(/*seed=*/33);

  faultsim::ChaosProfile profile;
  profile.seed = 5;
  profile.horizon = 1.5;
  profile.link_faults = 3;
  profile.brownouts = 2;
  profile.stragglers = 2;
  const auto fabric_shape = eqh::run_cluster_fabric(fabric);
  std::size_t workers = 0;
  for (const auto& j : jobs) workers += static_cast<std::size_t>(j.ranks);
  const faultsim::FaultPlan plan =
      faultsim::from_chaos(profile, fabric_shape.topo, workers, jobs.size());

  eqh::RunSpec spec;
  spec.scheduler = scheduler;
  spec.fabric = fabric;
  spec.plan = &plan;

  const auto baseline = eqh::run_cluster(jobs, spec);
  obs::TraceRecorder rec;
  const auto traced =
      run_traced(jobs, spec, &rec, TraceDetail::kFlow, nullptr);

  eqh::expect_same_result(baseline, traced);
  // The fault plan's activity must show up on the trace.
  EXPECT_EQ(rec.count(TraceKind::kFaultFired), baseline.fault_events);
  EXPECT_EQ(rec.count(TraceKind::kFlowReroute), baseline.flow_reroutes);
  EXPECT_EQ(rec.count(TraceKind::kFlowPark), baseline.flow_parks);
  EXPECT_EQ(rec.count(TraceKind::kFlowRetry), baseline.flow_retries);
  EXPECT_EQ(rec.count(TraceKind::kFlowAbandon), baseline.flows_abandoned);
}

ECHELON_INSTANTIATE_SCHED_FABRIC(ObsEquivalence);

TEST(TraceCountsTest, MirrorSimulationTotals) {
  const auto jobs = eqh::small_trace(/*seed=*/11);
  eqh::RunSpec spec;  // echelonflow-madd on the big switch
  obs::TraceRecorder rec;
  const auto result =
      run_traced(jobs, spec, &rec, TraceDetail::kFlow, nullptr);

  EXPECT_EQ(rec.count(TraceKind::kControlPass), result.control_invocations);
  // Fault-free: every submitted flow starts and finishes, every task that
  // starts finishes.
  EXPECT_GT(rec.count(TraceKind::kFlowSubmit), 0u);
  EXPECT_EQ(rec.count(TraceKind::kFlowSubmit),
            rec.count(TraceKind::kFlowStart));
  EXPECT_EQ(rec.count(TraceKind::kFlowSubmit),
            rec.count(TraceKind::kFlowFinish));
  EXPECT_GT(rec.count(TraceKind::kTaskStart), 0u);
  EXPECT_EQ(rec.count(TraceKind::kTaskStart),
            rec.count(TraceKind::kTaskFinish));
  EXPECT_GT(rec.count(TraceKind::kAllocPass), 0u);
}

TEST(TraceCountsTest, CoarseDetailOmitsFlowAndTaskEvents) {
  const auto jobs = eqh::small_trace(/*seed=*/11);
  eqh::RunSpec spec;
  obs::TraceRecorder coarse;
  obs::TraceRecorder flow;
  const auto a = run_traced(jobs, spec, &coarse, TraceDetail::kCoarse, nullptr);
  const auto b = run_traced(jobs, spec, &flow, TraceDetail::kFlow, nullptr);
  eqh::expect_same_result(a, b);

  EXPECT_EQ(coarse.count(TraceKind::kFlowSubmit), 0u);
  EXPECT_EQ(coarse.count(TraceKind::kFlowStart), 0u);
  EXPECT_EQ(coarse.count(TraceKind::kFlowFinish), 0u);
  EXPECT_EQ(coarse.count(TraceKind::kTaskStart), 0u);
  EXPECT_EQ(coarse.count(TraceKind::kTaskFinish), 0u);
  // Control-plane events are a strict superset level: identical at both.
  EXPECT_EQ(coarse.count(TraceKind::kControlPass),
            flow.count(TraceKind::kControlPass));
  EXPECT_EQ(coarse.count(TraceKind::kAllocPass),
            flow.count(TraceKind::kAllocPass));
}

// ============================================================================
// 3. Perfetto round-trip
// ============================================================================

TEST(PerfettoTest, RoundTripCountsMatchRecorder) {
  const auto jobs = eqh::small_trace(/*seed=*/17);
  eqh::RunSpec spec;  // echelonflow-madd: no coordinator events
  obs::TraceRecorder rec;
  obs::MetricsRegistry metrics;
  (void)run_traced(jobs, spec, &rec, TraceDetail::kFlow, &metrics);
  ASSERT_EQ(rec.dropped(), 0u) << "scenario must fit the default ring";

  const obs::MetricsSnapshot snap = metrics.snapshot();
  std::ostringstream os;
  const std::size_t emitted = obs::write_perfetto_trace(os, rec, &snap);

  std::istringstream is(os.str());
  const obs::ParsedTrace parsed = obs::parse_trace_event_json(is);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.events.size(), emitted);

  // Slices: one per finished flow + one per finished task; fault-free runs
  // leave nothing unfinished.
  EXPECT_EQ(parsed.count_ph("X"), rec.count(TraceKind::kFlowFinish) +
                                      rec.count(TraceKind::kTaskFinish));
  // Instants: submits plus the control plane (each reallocate emits a
  // control_pass + sched_pass pair, plus the allocator's alloc_pass).
  EXPECT_EQ(parsed.count_ph("i"), rec.count(TraceKind::kFlowSubmit) +
                                      rec.count(TraceKind::kControlPass) +
                                      rec.count(TraceKind::kSchedPass) +
                                      rec.count(TraceKind::kAllocPass));
  // Counter samples: every series point lands as one "C" event.
  std::size_t series_points = 0;
  for (const auto& ser : snap.series) series_points += ser.points.size();
  EXPECT_GT(series_points, 0u);
  EXPECT_EQ(parsed.count_ph("C"), series_points);
  EXPECT_GT(parsed.count_ph("M"), 0u);  // process/thread metadata present

  // Ordering: instants are emitted in recorded (= simulation time) order.
  double prev = -1.0;
  for (const auto& ev : parsed.events) {
    if (ev.ph != "i") continue;
    EXPECT_GE(ev.ts, prev);
    prev = ev.ts;
  }
  // Durations are non-negative and every slice carries one.
  for (const auto& ev : parsed.events) {
    if (ev.ph != "X") continue;
    EXPECT_TRUE(ev.has_dur);
    EXPECT_GE(ev.dur, 0.0);
  }
}

TEST(PerfettoTest, UnfinishedSlicesAreClosedAtHorizon) {
  // Hand-built stream: one flow that never finishes, one that does.
  obs::TraceRecorder rec;
  rec.record(TraceEvent{.kind = TraceKind::kFlowSubmit, .t = 0.0, .id = 0,
                        .job = 0, .ctx = 0, .value = 100.0},
             "stuck");
  rec.record(TraceEvent{.kind = TraceKind::kFlowStart, .t = 0.0, .id = 0,
                        .job = 0, .ctx = 0, .value = 100.0});
  rec.record(TraceEvent{.kind = TraceKind::kFlowSubmit, .t = 0.5, .id = 1,
                        .job = 0, .ctx = 0, .value = 50.0},
             "done");
  rec.record(TraceEvent{.kind = TraceKind::kFlowStart, .t = 0.5, .id = 1,
                        .job = 0, .ctx = 0, .value = 50.0});
  rec.record(TraceEvent{.kind = TraceKind::kFlowFinish, .t = 2.0, .id = 1,
                        .job = 0, .ctx = 0, .value = 0.0});

  std::ostringstream os;
  (void)obs::write_perfetto_trace(os, rec);
  std::istringstream is(os.str());
  const obs::ParsedTrace parsed = obs::parse_trace_event_json(is);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  // Both flows produce a slice: "done" at its finish, "stuck" force-closed
  // at the horizon (t = 2.0, the latest event).
  EXPECT_EQ(parsed.count_ph("X"), 2u);
  EXPECT_EQ(parsed.count_name("stuck"), 1u);
  EXPECT_EQ(parsed.count_name("done"), 1u);
  for (const auto& ev : parsed.events) {
    if (ev.name != "stuck") continue;
    EXPECT_EQ(ev.ts, 0.0);
    ASSERT_TRUE(ev.has_dur);
    EXPECT_EQ(ev.dur, 2.0 * 1e6);  // default scale: seconds -> microseconds
  }
}

TEST(PerfettoTest, ParserRejectsMalformedInput) {
  {
    std::istringstream is("not json at all");
    EXPECT_FALSE(obs::parse_trace_event_json(is).ok);
  }
  {
    std::istringstream is(R"({"foo": 1})");
    EXPECT_FALSE(obs::parse_trace_event_json(is).ok);
  }
  {
    std::istringstream is(R"({"traceEvents": [{"name": "x", "ph": "i")");
    EXPECT_FALSE(obs::parse_trace_event_json(is).ok);
  }
}

// ============================================================================
// 4. Metrics registry + deterministic sweep capture
// ============================================================================

TEST(MetricsTest, InstrumentsAndSnapshot) {
  obs::MetricsRegistry reg;
  reg.counter("a.events").inc();
  reg.counter("a.events").inc(4);
  reg.gauge("b.level").set(2.5);
  auto& h = reg.histogram("c.latency", {1.0, 10.0, 100.0});
  for (const double x : {0.5, 5.0, 5.0, 50.0, 500.0}) h.observe(x);
  reg.series("d.util").sample(0.0, 0.1);
  reg.series("d.util").sample(1.0, 0.9);

  // Instrument references are stable: re-lookup hits the same object.
  EXPECT_EQ(&reg.counter("a.events"), &reg.counter("a.events"));
  EXPECT_EQ(reg.counter("a.events").value(), 5u);

  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "a.events");
  EXPECT_EQ(snap.counters[0].second, 5u);
  const double* gauge = snap.find_gauge("b.level");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(*gauge, 2.5);
  const auto* hist = snap.find_histogram("c.latency");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 5u);
  EXPECT_EQ(hist->sum, 560.5);
  EXPECT_EQ(hist->min, 0.5);
  EXPECT_EQ(hist->max, 500.0);
  ASSERT_EQ(hist->counts.size(), 4u);  // 3 bounds + inf tail
  EXPECT_EQ(hist->counts[0], 1u);
  EXPECT_EQ(hist->counts[1], 2u);
  EXPECT_EQ(hist->counts[2], 1u);
  EXPECT_EQ(hist->counts[3], 1u);
  // Bucket-resolution quantiles: p50 falls in the (1, 10] bucket.
  EXPECT_EQ(hist->quantile(0.5), 10.0);
  EXPECT_EQ(hist->quantile(1.0), 500.0);
  const auto* ser = snap.find_series("d.util");
  ASSERT_NE(ser, nullptr);
  EXPECT_EQ(ser->points.size(), 2u);
  EXPECT_EQ(snap.find_counter("missing"), nullptr);
}

TEST(MetricsTest, MergeSumsCountersAveragesGaugesAddsHistograms) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.counter("n").inc(3);
  b.counter("n").inc(5);
  a.gauge("g").set(1.0);
  b.gauge("g").set(3.0);
  a.gauge("only_a").set(7.0);
  a.histogram("h", {1.0, 2.0}).observe(0.5);
  b.histogram("h", {1.0, 2.0}).observe(1.5);
  a.series("s").sample(0.0, 1.0);

  const std::vector<obs::MetricsSnapshot> snaps = {a.snapshot(), b.snapshot()};
  const obs::MetricsSnapshot merged = obs::merge_snapshots(snaps);

  const std::uint64_t* n = merged.find_counter("n");
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(*n, 8u);
  const double* g = merged.find_gauge("g");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(*g, 2.0);  // mean over the snapshots defining it
  const double* only_a = merged.find_gauge("only_a");
  ASSERT_NE(only_a, nullptr);
  EXPECT_EQ(*only_a, 7.0);
  const auto* h = merged.find_histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_EQ(h->sum, 2.0);
  EXPECT_EQ(h->min, 0.5);
  EXPECT_EQ(h->max, 1.5);
  ASSERT_EQ(h->counts.size(), 3u);
  EXPECT_EQ(h->counts[0], 1u);
  EXPECT_EQ(h->counts[1], 1u);
  // Series are point-local and dropped from merges by design.
  EXPECT_TRUE(merged.series.empty());
}

void expect_same_snapshot(const obs::MetricsSnapshot& a,
                          const obs::MetricsSnapshot& b) {
  ASSERT_EQ(a.counters.size(), b.counters.size());
  for (std::size_t i = 0; i < a.counters.size(); ++i) {
    EXPECT_EQ(a.counters[i].first, b.counters[i].first);
    EXPECT_EQ(a.counters[i].second, b.counters[i].second);
  }
  ASSERT_EQ(a.gauges.size(), b.gauges.size());
  for (std::size_t i = 0; i < a.gauges.size(); ++i) {
    EXPECT_EQ(a.gauges[i].first, b.gauges[i].first);
    // run.wall_ms is host timing -- the one non-deterministic value in a
    // snapshot (same carve-out as eqh::expect_same_result).
    if (a.gauges[i].first == "run.wall_ms") continue;
    // Bitwise: the merge is deterministic, not merely close.
    EXPECT_BITEQ(a.gauges[i].second, b.gauges[i].second);
  }
  ASSERT_EQ(a.histograms.size(), b.histograms.size());
  for (std::size_t i = 0; i < a.histograms.size(); ++i) {
    EXPECT_EQ(a.histograms[i].name, b.histograms[i].name);
    EXPECT_EQ(a.histograms[i].counts, b.histograms[i].counts);
    EXPECT_BITEQ(a.histograms[i].sum, b.histograms[i].sum);
  }
}

TEST(SweepCaptureTest, DeterministicAcrossThreadCounts) {
  const auto jobs = eqh::small_trace(/*seed=*/29);
  std::vector<cluster::SweepPoint> points;
  for (const auto kind :
       {SchedulerKind::kFairSharing, SchedulerKind::kCoflowMadd,
        SchedulerKind::kEchelonMadd}) {
    cluster::ExperimentConfig cfg;
    cfg.scheduler = kind;
    points.push_back({jobs, cfg});
  }

  cluster::SweepCapture serial;
  cluster::SweepCapture parallel;
  const auto r1 = cluster::run_sweep(points, {.threads = 1}, &serial);
  const auto r4 = cluster::run_sweep(points, {.threads = 4}, &parallel);

  ASSERT_EQ(r1.size(), points.size());
  ASSERT_EQ(r4.size(), points.size());
  ASSERT_EQ(serial.point_metrics.size(), points.size());
  ASSERT_EQ(parallel.point_metrics.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    eqh::expect_same_result(r1[i], r4[i]);
    expect_same_snapshot(serial.point_metrics[i], parallel.point_metrics[i]);
    EXPECT_FALSE(serial.point_metrics[i].empty());
  }
  expect_same_snapshot(serial.merged, parallel.merged);
  // wall_ms is host timing; everything else in the merge is deterministic,
  // including the run-level gauges run_experiment fills.
  EXPECT_NE(serial.merged.find_counter("sim.flows"), nullptr);
  EXPECT_NE(serial.merged.find_gauge("sim.makespan_s"), nullptr);
}

TEST(ExportTest, MetricsCsvHasOneRowPerScalarAndBucket) {
  obs::MetricsRegistry reg;
  reg.counter("n").inc(2);
  reg.gauge("g").set(1.5);
  reg.histogram("h", {1.0}).observe(0.5);
  reg.series("s").sample(0.25, 4.0);
  const Csv csv = obs::metrics_to_csv(reg.snapshot());
  // counter 1 + gauge 1 + histogram (count/sum/mean/min/p50/p90/p99/max = 8
  // rows + 2 buckets) + series 1 point.
  EXPECT_EQ(csv.row_count(), 1u + 1u + 8u + 2u + 1u);
}

// ============================================================================
// Exporter edge cases (DESIGN.md §15)
// ============================================================================

TEST(ExportTest, EmptyRegistryProducesWellFormedOutputs) {
  obs::MetricsRegistry reg;
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_TRUE(snap.empty());
  EXPECT_EQ(obs::metrics_to_csv(snap).row_count(), 0u);
  std::ostringstream summary;
  obs::print_metrics_summary(summary, snap);  // must not throw or crash
  EXPECT_EQ(obs::to_prom_text(snap), "");
}

TEST(ExportTest, HistogramBucketEdgeValuesAreLeInclusive) {
  obs::MetricsRegistry reg;
  auto& h = reg.histogram("h", {1.0, 2.0});
  h.observe(1.0);                             // exactly on the first bound
  h.observe(2.0);                             // exactly on the second
  h.observe(std::nextafter(2.0, 3.0));        // one ulp past -> tail
  const obs::MetricsSnapshot snap = reg.snapshot();
  const auto* hist = snap.find_histogram("h");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->counts[0], 1u);
  EXPECT_EQ(hist->counts[1], 1u);
  EXPECT_EQ(hist->counts[2], 1u);
  // Prometheus buckets are cumulative `le` counts; the edge values must
  // be *inside* their own bound's bucket.
  const std::string text = obs::to_prom_text(snap);
  EXPECT_NE(text.find("h_bucket{le=\"1\"} 1\n"), std::string::npos) << text;
  EXPECT_NE(text.find("h_bucket{le=\"2\"} 2\n"), std::string::npos) << text;
  EXPECT_NE(text.find("h_bucket{le=\"+Inf\"} 3\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("h_count 3\n"), std::string::npos) << text;
}

TEST(ExportTest, PromNameSplittingAndTypeLines) {
  std::string family;
  std::string labels;
  obs::prom_split_name("link.3.util", family, labels);
  EXPECT_EQ(family, "link_util");
  EXPECT_EQ(labels, "link=\"3\"");
  obs::prom_split_name("service.slo.2.burn_rate", family, labels);
  EXPECT_EQ(labels, "slo=\"2\"");

  obs::MetricsRegistry reg;
  reg.counter("service.admitted").inc(4);
  reg.gauge("link.3.util").set(0.5);
  reg.gauge("link.10.util").set(0.25);
  const std::string text = obs::to_prom_text(reg.snapshot());
  EXPECT_NE(text.find("# TYPE service_admitted_total counter\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("service_admitted_total 4\n"), std::string::npos);
  EXPECT_NE(text.find("link_util{link=\"10\"} 0.25\n"), std::string::npos);
  EXPECT_NE(text.find("link_util{link=\"3\"} 0.5\n"), std::string::npos);
  // Byte-stable: rendering the same snapshot twice is identical.
  EXPECT_EQ(text, obs::to_prom_text(reg.snapshot()));
}

TEST(ExportTest, LabelInternerStaysStablePast256Ids) {
  obs::LabelInterner interner;
  obs::MetricsRegistry reg;
  for (int i = 0; i < 300; ++i) {
    reg.gauge("link." + std::to_string(i) + ".util")
        .set(static_cast<double>(i));
  }
  const std::string first = obs::to_prom_text(reg.snapshot(), &interner);
  EXPECT_GE(interner.size(), 300u);
  // Ids are first-seen stable: a second render interns nothing new and
  // produces identical bytes.
  const std::size_t after_first = interner.size();
  const std::string second = obs::to_prom_text(reg.snapshot(), &interner);
  EXPECT_EQ(interner.size(), after_first);
  EXPECT_EQ(first, second);
  for (std::uint32_t id = 0; id < 300u; ++id) {
    EXPECT_EQ(interner.intern(interner.label_at(id)), id);
  }
}

TEST(ExportTest, MixedInstrumentKindsOnOneFamilyThrow) {
  // Counters are disambiguated by their `_total` suffix, so the reachable
  // collision is a gauge and a histogram landing on the same family name.
  obs::MetricsRegistry reg;
  reg.gauge("x.1.n").set(1.0);
  reg.histogram("x.2.n", {1.0}).observe(0.5);  // family "x_n" again
  EXPECT_THROW((void)obs::to_prom_text(reg.snapshot()),
               std::invalid_argument);
}

TEST(PerfettoTest, ZeroEventTraceRoundTrips) {
  const obs::TraceRecorder empty;
  std::ostringstream os;
  obs::write_perfetto_trace(os, empty);
  std::istringstream in(os.str());
  const obs::ParsedTrace parsed = obs::parse_trace_event_json(in);
  EXPECT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.count_ph("X"), 0u);
  EXPECT_EQ(parsed.count_ph("i"), 0u);
}

TEST(MetricsTest, SeriesBudgetDecimatesButAgreesOnKeptPoints) {
  obs::MetricsRegistry capped;
  capped.set_series_budget(16);
  obs::MetricsRegistry uncapped;
  for (int i = 0; i < 1000; ++i) {
    const double t = 0.001 * i;
    const double v = std::sin(0.01 * i);
    capped.series("s").sample(t, v);
    uncapped.series("s").sample(t, v);
  }
  const obs::MetricsSnapshot capped_snap = capped.snapshot();
  const obs::MetricsSnapshot uncapped_snap = uncapped.snapshot();
  const auto* cs = capped_snap.find_series("s");
  const auto* us = uncapped_snap.find_series("s");
  ASSERT_NE(cs, nullptr);
  ASSERT_NE(us, nullptr);
  EXPECT_EQ(us->points.size(), 1000u);
  EXPECT_LE(cs->points.size(), 16u);
  EXPECT_GE(cs->points.size(), 2u);
  // Every kept point is an exact member of the uncapped sequence, and the
  // kept offsets are stride-regular.
  const std::size_t stride = capped.series("s").stride();
  EXPECT_GE(stride, 1000u / 16u);
  for (std::size_t i = 0; i < cs->points.size(); ++i) {
    const auto& kept = cs->points[i];
    const auto& orig = us->points[i * stride];
    EXPECT_EQ(kept.first, orig.first) << "point " << i;
    EXPECT_EQ(kept.second, orig.second) << "point " << i;
  }
}

TEST(MetricsTest, MergeSnapshotsThrowsOnMismatchedHistogramBounds) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.histogram("h", {1.0, 2.0}).observe(0.5);
  b.histogram("h", {1.0, 2.0, 3.0}).observe(0.5);
  const std::vector<obs::MetricsSnapshot> snaps = {a.snapshot(),
                                                   b.snapshot()};
  try {
    (void)obs::merge_snapshots(snaps);
    FAIL() << "mismatched bucket layouts must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("h"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bucket"), std::string::npos);
  }
}

}  // namespace
