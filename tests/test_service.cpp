// Online-service-mode suite (DESIGN.md §13, EXPERIMENTS.md EXT-S).
//
// The ServiceLoop promises that streaming operation is *bit-identical* to
// itself under interruption: a snapshot taken at any step boundary, restored
// into a fresh process, and run to completion must produce exactly the
// results and trace stream of the uninterrupted run. Six sections:
//
//   1. Snapshot/restore bit identity: every-boundary sweep on a small
//      configuration (results AND split trace streams), then a mid-run
//      snapshot across the scheduler x fabric x {chaos, none} x threads
//      {1, 2, 8} matrix.
//   2. Crash/resume fuzz: >= 100 seeded (trace, scheduler, fabric, threads,
//      admission, burst, cut point) combinations (ECHELON_SERVICE_SEEDS
//      overrides the budget; CI sanitizer legs set it to 8).
//   3. Corrupt-snapshot negative fuzz: truncations at every short length and
//      seeded byte flips at every offset class must throw SnapshotError with
//      a diagnostic -- a snapshot never loads garbage. Re-checksummed
//      header/version/tag/length/enum mutations fail their specific checks.
//   4. Arrival generators: Poisson draw-compatibility with generate_trace,
//      checkpoint determinism, trace-file write -> read -> write byte
//      identity, burst-knob invariants, empty/zero-rate edges.
//   5. Admission control: decide() truth table and service-level queue /
//      backfill / reject behaviour.
//   6. Same-instant ordering: simultaneous arrivals launch in submission
//      order (the event-queue seq tie-break), and non-monotone or stale
//      arrival streams are rejected loudly.
//
// Single translation unit: equivalence_harness.hpp defines the global
// allocation hook (see its header comment).

#include "equivalence_harness.hpp"

#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/admission.hpp"
#include "service/arrivals.hpp"
#include "service/service.hpp"
#include "service/snapshot.hpp"

namespace echelon {
namespace {

using cluster::FabricKind;
using cluster::SchedulerKind;
using faultsim::ChaosProfile;
using faultsim::FaultPlan;
using service::AdmissionConfig;
using service::AdmissionOutcome;
using service::AdmissionPolicy;
using service::Arrival;
using service::ArrivalGenerator;
using service::PoissonArrivalGenerator;
using service::restore_snapshot;
using service::RestoreOptions;
using service::save_snapshot;
using service::ServiceConfig;
using service::ServiceLoop;
using service::ServiceResult;
using service::SnapshotError;
using service::TraceFileArrivalReader;

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

// One point in the service equivalence matrix (the service-side RunSpec).
struct ServiceSpec {
  SchedulerKind scheduler = SchedulerKind::kEchelonMadd;
  FabricKind fabric = FabricKind::kBigSwitch;
  unsigned threads = 1;
  const FaultPlan* plan = nullptr;
  AdmissionConfig admission;
  double control_period = 0.02;
  obs::TraceSink* sink = nullptr;
};

ServiceConfig make_config(const ServiceSpec& s) {
  ServiceConfig c;
  c.scheduler = s.scheduler;
  c.fabric = s.fabric;
  c.hosts = 16;
  c.port_capacity = gbps(25);
  c.oversubscription = s.fabric == FabricKind::kLeafSpine ? 2.0 : 1.0;
  c.threads = s.threads;
  c.control_period = s.control_period;
  c.admission = s.admission;
  c.fault_plan = s.plan;
  if (s.sink != nullptr) {
    c.trace_sink = s.sink;
    c.trace_detail = obs::TraceDetail::kFlow;
  }
  return c;
}

// Small streaming workload: overlapping Poisson arrivals of short jobs.
cluster::TraceConfig small_arrivals(std::uint64_t seed, int jobs = 3) {
  cluster::TraceConfig t;
  t.num_jobs = jobs;
  t.seed = seed;
  t.arrival_rate = 4.0;
  t.iterations = 1;
  t.min_layers = 4;
  t.max_layers = 6;
  t.min_width = 512;
  t.max_width = 1024;
  t.rank_choices = {2, 4};
  return t;
}

std::unique_ptr<ServiceLoop> make_loop(const ServiceSpec& spec,
                                       const cluster::TraceConfig& trace,
                                       int burst_every = 0) {
  auto loop = std::make_unique<ServiceLoop>(make_config(spec));
  loop->set_generator(
      std::make_unique<PoissonArrivalGenerator>(trace, burst_every));
  return loop;
}

// Every deterministic ServiceResult field compared to the bit (wall_ms is
// host timing and excluded).
void expect_same_service_result(const ServiceResult& a,
                                const ServiceResult& b) {
  EXPECT_EQ(a.scheduler_name, b.scheduler_name);
  EXPECT_BITEQ(a.end, b.end);
  EXPECT_BITEQ(a.total_tardiness, b.total_tardiness);
  EXPECT_BITEQ(a.weighted_total_tardiness, b.weighted_total_tardiness);
  EXPECT_EQ(a.control_invocations, b.control_invocations);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.queued, b.queued);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.launched, b.launched);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.control_ticks, b.control_ticks);
  ASSERT_EQ(a.flow_finish.size(), b.flow_finish.size());
  for (std::size_t i = 0; i < a.flow_finish.size(); ++i) {
    EXPECT_BITEQ(a.flow_finish[i], b.flow_finish[i]) << "flow " << i;
  }
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_EQ(a.jobs[j].paradigm, b.jobs[j].paradigm) << "job " << j;
    EXPECT_BITEQ(a.jobs[j].submitted, b.jobs[j].submitted) << "job " << j;
    EXPECT_BITEQ(a.jobs[j].started, b.jobs[j].started) << "job " << j;
    EXPECT_BITEQ(a.jobs[j].finish, b.jobs[j].finish) << "job " << j;
    EXPECT_EQ(a.jobs[j].finished, b.jobs[j].finished) << "job " << j;
  }
}

// Uninterrupted trace stream == prefix stream + restored-suffix stream.
void expect_split_trace(const obs::TraceRecorder& whole,
                        const obs::TraceRecorder& prefix,
                        const obs::TraceRecorder& suffix) {
  EXPECT_EQ(whole.recorded(), prefix.recorded() + suffix.recorded());
  for (std::size_t k = 0; k < obs::kTraceKindCount; ++k) {
    EXPECT_EQ(whole.count(static_cast<obs::TraceKind>(k)),
              prefix.count(static_cast<obs::TraceKind>(k)) +
                  suffix.count(static_cast<obs::TraceKind>(k)))
        << "kind " << obs::to_string(static_cast<obs::TraceKind>(k));
  }
  const std::vector<obs::TraceEvent> ew = whole.events();
  std::vector<obs::TraceEvent> es = prefix.events();
  const std::vector<obs::TraceEvent> tail = suffix.events();
  es.insert(es.end(), tail.begin(), tail.end());
  ASSERT_EQ(ew.size(), es.size());
  for (std::size_t i = 0; i < ew.size(); ++i) {
    EXPECT_EQ(ew[i].kind, es[i].kind) << "event " << i;
    EXPECT_BITEQ(ew[i].t, es[i].t) << "event " << i;
    EXPECT_EQ(ew[i].id, es[i].id) << "event " << i;
    EXPECT_EQ(ew[i].job, es[i].job) << "event " << i;
    EXPECT_EQ(ew[i].ctx, es[i].ctx) << "event " << i;
    EXPECT_BITEQ(ew[i].value, es[i].value) << "event " << i;
  }
}

// Service-mode chaos: link faults and brownouts only. Straggler events
// target WorkerIds by index, and in service mode workers are created at
// launch time -- a straggler firing before its worker exists is a scripting
// error, not a scheduling scenario.
FaultPlan service_chaos_plan(std::uint64_t seed,
                             const topology::Topology& topo) {
  ChaosProfile p;
  p.seed = seed;
  p.horizon = 1.5;
  p.link_faults = 3;
  p.brownouts = 2;
  p.stragglers = 0;
  return faultsim::from_chaos(p, topo, /*worker_count=*/0, /*job_count=*/8);
}

topology::BuiltFabric service_fabric(FabricKind fabric) {
  if (fabric == FabricKind::kBigSwitch) {
    return topology::make_big_switch(16, gbps(25));
  }
  return topology::make_leaf_spine({.leaves = 2,
                                    .spines = 2,
                                    .hosts_per_leaf = 8,
                                    .host_link = gbps(25),
                                    .uplink = 8 * gbps(25) / (2 * 2.0)});
}

// Steps a fresh loop to `cut` boundaries, snapshots, restores, and drains
// the restored loop to completion.
ServiceResult run_with_snapshot_at(const ServiceSpec& spec,
                                   const cluster::TraceConfig& trace,
                                   std::uint64_t cut, int burst_every = 0,
                                   std::string* bytes_out = nullptr,
                                   const RestoreOptions& opts = {}) {
  auto prefix = make_loop(spec, trace, burst_every);
  for (std::uint64_t k = 0; k < cut; ++k) {
    if (!prefix->step()) break;  // cut past the end: snapshot the idle state
  }
  const std::string bytes = save_snapshot(*prefix);
  if (bytes_out != nullptr) *bytes_out = bytes;
  prefix.reset();  // the "crash"
  auto restored = restore_snapshot(bytes, opts);
  restored->drain();
  return restored->result();
}

// A scripted arrival source for the ordering tests.
class VectorArrivalGenerator final : public ArrivalGenerator {
 public:
  explicit VectorArrivalGenerator(std::vector<Arrival> arrivals)
      : arrivals_(std::move(arrivals)) {}
  std::optional<Arrival> next() override {
    if (i_ >= arrivals_.size()) return std::nullopt;
    return arrivals_[i_++];
  }
  const char* kind() const noexcept override { return "vector"; }

 private:
  std::vector<Arrival> arrivals_;
  std::size_t i_ = 0;
};

std::string temp_path(const char* stem) {
  return ::testing::TempDir() + "/" + stem;
}

// ---------------------------------------------------------------------------
// 1. Snapshot/restore bit identity
// ---------------------------------------------------------------------------

TEST(ServiceSnapshot, EveryBoundaryResumeMatchesUninterrupted) {
  const ServiceSpec spec;
  const auto trace = small_arrivals(17);

  auto whole = make_loop(spec, trace);
  whole->drain();
  const ServiceResult reference = whole->result();
  ASSERT_GT(reference.steps, 4u);
  ASSERT_EQ(reference.completed, reference.launched);

  // Boundary 0 (nothing consumed), every interior boundary, and one past the
  // end (idle-state snapshot).
  for (std::uint64_t cut = 0; cut <= reference.steps + 1; ++cut) {
    const ServiceResult resumed = run_with_snapshot_at(spec, trace, cut);
    expect_same_service_result(reference, resumed);
    if (HasFailure()) {
      FAIL() << "first divergence at snapshot boundary " << cut << " of "
             << reference.steps;
    }
  }
}

TEST(ServiceSnapshot, SplitTraceStreamMatchesUninterrupted) {
  obs::TraceRecorder whole_rec(1 << 16);
  ServiceSpec spec;
  spec.sink = &whole_rec;
  const auto trace = small_arrivals(29);

  auto whole = make_loop(spec, trace);
  whole->drain();
  const ServiceResult reference = whole->result();
  ASSERT_GT(whole_rec.recorded(), 0u);

  const std::uint64_t cut = reference.steps / 2;
  obs::TraceRecorder prefix_rec(1 << 16);
  ServiceSpec prefix_spec = spec;
  prefix_spec.sink = &prefix_rec;
  auto prefix = make_loop(prefix_spec, trace);
  for (std::uint64_t k = 0; k < cut; ++k) ASSERT_TRUE(prefix->step());
  const std::string bytes = save_snapshot(*prefix);
  prefix.reset();

  // Replay runs dark; the suffix recorder sees only post-snapshot events.
  obs::TraceRecorder suffix_rec(1 << 16);
  RestoreOptions opts;
  opts.trace_sink = &suffix_rec;
  opts.trace_detail = obs::TraceDetail::kFlow;
  auto restored = restore_snapshot(bytes, opts);
  restored->drain();

  expect_same_service_result(reference, restored->result());
  expect_split_trace(whole_rec, prefix_rec, suffix_rec);
}

using ServiceSnapshotMatrix = eqh::SchedFabricTest;

TEST_P(ServiceSnapshotMatrix, MidRunSnapshotBitIdenticalAcrossChaosAndThreads) {
  const auto [sched, fabric] = GetParam();
  const auto trace = small_arrivals(41);
  const auto built = service_fabric(fabric);
  const FaultPlan plan = service_chaos_plan(7, built.topo);

  for (const FaultPlan* p :
       {static_cast<const FaultPlan*>(nullptr), &plan}) {
    ServiceSpec spec;
    spec.scheduler = sched;
    spec.fabric = fabric;
    spec.plan = p;

    auto whole = make_loop(spec, trace);
    whole->drain();
    const ServiceResult reference = whole->result();
    const std::uint64_t cut = reference.steps / 2;

    for (const unsigned threads : {1u, 2u, 8u}) {
      ServiceSpec wide = spec;
      wide.threads = threads;
      const ServiceResult resumed = run_with_snapshot_at(wide, trace, cut);
      expect_same_service_result(reference, resumed);
      if (HasFailure()) {
        FAIL() << "first divergence: chaos " << (p != nullptr) << " threads "
               << threads << " cut " << cut;
      }
    }
  }
}

ECHELON_INSTANTIATE_SCHED_FABRIC(ServiceSnapshotMatrix);

// ---------------------------------------------------------------------------
// 2. Crash/resume fuzz
// ---------------------------------------------------------------------------

TEST(ServiceFuzz, CrashResumeManySeededRuns) {
  const int budget = eqh::env_seed_budget("ECHELON_SERVICE_SEEDS", 100);

  constexpr SchedulerKind kKinds[] = {
      SchedulerKind::kFairSharing, SchedulerKind::kSrpt,
      SchedulerKind::kCoflowMadd,  SchedulerKind::kSincronia,
      SchedulerKind::kEchelonMadd, SchedulerKind::kCoordinator};
  constexpr FabricKind kFabrics[] = {FabricKind::kBigSwitch,
                                     FabricKind::kLeafSpine};
  constexpr unsigned kThreads[] = {1u, 2u, 8u};

  for (int s = 0; s < budget; ++s) {
    const auto seed = static_cast<std::uint64_t>(s);
    const auto trace = small_arrivals(2000 + seed);
    const int burst = (s % 3 == 2) ? 2 : 0;

    ServiceSpec spec;
    spec.scheduler = kKinds[s % 6];
    spec.fabric = kFabrics[(s / 6) % 2];
    spec.threads = kThreads[s % 3];
    switch (s % 4) {
      case 0:
        spec.admission.policy = AdmissionPolicy::kAcceptAll;
        break;
      case 1:
        spec.admission.policy = AdmissionPolicy::kQueueWithCap;
        spec.admission.max_running = 1;
        spec.admission.queue_cap = 4;
        break;
      case 2:
        spec.admission.policy = AdmissionPolicy::kQueueWithCap;
        spec.admission.max_running = 1;
        spec.admission.queue_cap = 1;  // forces rejections under bursts
        break;
      default:
        spec.admission.policy = AdmissionPolicy::kTardinessAware;
        spec.admission.max_running = 2;
        spec.admission.queue_cap = 4;
        break;
    }

    const auto built = service_fabric(spec.fabric);
    FaultPlan plan;
    if (s % 2 == 1) {
      plan = service_chaos_plan(seed, built.topo);
      spec.plan = &plan;
    }

    auto whole = make_loop(spec, trace, burst);
    whole->drain();
    const ServiceResult reference = whole->result();

    // The cut point walks the whole boundary range as seeds advance.
    const std::uint64_t cut = seed % (reference.steps + 2);
    const ServiceResult resumed =
        run_with_snapshot_at(spec, trace, cut, burst);
    expect_same_service_result(reference, resumed);
    if (HasFailure()) {
      FAIL() << "first divergence at seed " << s << " (scheduler "
             << cluster::to_string(spec.scheduler) << ", fabric "
             << (spec.fabric == FabricKind::kBigSwitch ? "bigswitch"
                                                       : "leafspine")
             << ", threads " << spec.threads << ", admission " << (s % 4)
             << ", chaos " << (s % 2) << ", burst " << burst << ", cut "
             << cut << " of " << reference.steps << ")";
    }
  }
}

// ---------------------------------------------------------------------------
// 3. Corrupt-snapshot negative fuzz
// ---------------------------------------------------------------------------

class CorruptSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const ServiceSpec spec;
    const auto trace = small_arrivals(53);
    auto loop = make_loop(spec, trace);
    for (int k = 0; k < 6; ++k) ASSERT_TRUE(loop->step());
    bytes_ = save_snapshot(*loop);
    ASSERT_GT(bytes_.size(), 64u);
    // Sanity: the pristine snapshot restores.
    auto restored = restore_snapshot(bytes_);
    restored->drain();
  }

  // Recomputes and rewrites the trailing checksum so a mutation reaches the
  // validation layer it targets instead of tripping the integrity check.
  static std::string restamp(std::string b) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i + 8 < b.size(); ++i) {
      h ^= static_cast<unsigned char>(b[i]);
      h *= 0x100000001b3ULL;
    }
    for (int i = 0; i < 8; ++i) {
      b[b.size() - 8 + static_cast<std::size_t>(i)] =
          static_cast<char>((h >> (8 * i)) & 0xff);
    }
    return b;
  }

  static std::string expect_snapshot_error(const std::string& bytes) {
    try {
      auto loop = restore_snapshot(bytes);
      ADD_FAILURE() << "corrupt snapshot restored without error";
      return {};
    } catch (const SnapshotError& e) {
      EXPECT_FALSE(std::string(e.what()).empty());
      return e.what();
    }
    // Anything else (std::logic_error, segfault, silent garbage) escapes
    // and fails the test.
  }

  std::string bytes_;
};

TEST_F(CorruptSnapshotTest, EveryShortTruncationThrows) {
  for (std::size_t len = 0; len < 64; ++len) {
    expect_snapshot_error(bytes_.substr(0, len));
  }
  Rng rng(7);
  for (int k = 0; k < 64; ++k) {
    const std::size_t len = rng.uniform_int(bytes_.size());  // < full size
    expect_snapshot_error(bytes_.substr(0, len));
  }
}

TEST_F(CorruptSnapshotTest, SeededByteFlipsAlwaysThrow) {
  Rng rng(11);
  const int flips = 256;
  for (int k = 0; k < flips; ++k) {
    std::string mutated = bytes_;
    const std::size_t off = rng.uniform_int(mutated.size());
    const int bit = static_cast<int>(rng.uniform_int(8));
    mutated[off] = static_cast<char>(
        static_cast<unsigned char>(mutated[off]) ^ (1u << bit));
    const std::string what = expect_snapshot_error(mutated);
    EXPECT_NE(what.find("snapshot"), std::string::npos)
        << "offset " << off << " bit " << bit << ": " << what;
  }
}

TEST_F(CorruptSnapshotTest, HeaderAndVersionMutationsFailTheirOwnChecks) {
  {
    std::string m = bytes_;
    m[0] = 'X';  // magic
    EXPECT_NE(expect_snapshot_error(m).find("magic"), std::string::npos);
  }
  {
    std::string m = bytes_;
    m[8] = 99;  // version (little-endian u32 after the 8-byte magic)
    EXPECT_NE(expect_snapshot_error(restamp(m)).find("version"),
              std::string::npos);
  }
  {
    std::string m = bytes_;
    m[12] = 9;  // first section tag (kConfig = 1)
    EXPECT_NE(expect_snapshot_error(restamp(m)).find("tag"),
              std::string::npos);
  }
  {
    std::string m = bytes_;
    m[16] = static_cast<char>(0xff);  // first section length, low byte
    const std::string what = expect_snapshot_error(restamp(m));
    EXPECT_TRUE(what.find("section") != std::string::npos ||
                what.find("truncated") != std::string::npos)
        << what;
  }
  {
    std::string m = bytes_;
    m[24] = static_cast<char>(0xee);  // config.scheduler enum, low byte
    EXPECT_NE(expect_snapshot_error(restamp(m)).find("scheduler"),
              std::string::npos);
  }
  {
    // Plain checksum corruption: flip a bit in the trailing u64.
    std::string m = bytes_;
    m[m.size() - 1] = static_cast<char>(
        static_cast<unsigned char>(m[m.size() - 1]) ^ 0x01);
    EXPECT_NE(expect_snapshot_error(m).find("checksum"), std::string::npos);
  }
}

TEST(CorruptSnapshotFile, MissingFileThrows) {
  EXPECT_THROW(
      (void)service::restore_snapshot_file(temp_path("no_such_snapshot.bin")),
      SnapshotError);
}

// ---------------------------------------------------------------------------
// 4. Arrival generators
// ---------------------------------------------------------------------------

void expect_same_job(const cluster::JobSpec& a, const cluster::JobSpec& b,
                     std::size_t i) {
  EXPECT_EQ(a.paradigm, b.paradigm) << "job " << i;
  EXPECT_EQ(a.ranks, b.ranks) << "job " << i;
  EXPECT_EQ(a.iterations, b.iterations) << "job " << i;
  EXPECT_EQ(a.buckets, b.buckets) << "job " << i;
  EXPECT_EQ(a.micro_batches, b.micro_batches) << "job " << i;
  EXPECT_EQ(a.pp_schedule, b.pp_schedule) << "job " << i;
  EXPECT_BITEQ(a.compute_jitter, b.compute_jitter) << "job " << i;
  EXPECT_EQ(a.jitter_seed, b.jitter_seed) << "job " << i;
  EXPECT_EQ(a.gpu.name, b.gpu.name) << "job " << i;
  EXPECT_BITEQ(a.gpu.peak_flops, b.gpu.peak_flops) << "job " << i;
  EXPECT_BITEQ(a.gpu.efficiency, b.gpu.efficiency) << "job " << i;
  EXPECT_EQ(a.model.name, b.model.name) << "job " << i;
  EXPECT_BITEQ(a.model.bytes_per_element, b.model.bytes_per_element)
      << "job " << i;
  ASSERT_EQ(a.model.layers.size(), b.model.layers.size()) << "job " << i;
  for (std::size_t l = 0; l < a.model.layers.size(); ++l) {
    EXPECT_EQ(a.model.layers[l].name, b.model.layers[l].name);
    EXPECT_EQ(a.model.layers[l].params, b.model.layers[l].params);
    EXPECT_BITEQ(a.model.layers[l].activation_bytes,
                 b.model.layers[l].activation_bytes);
    EXPECT_BITEQ(a.model.layers[l].fwd_flops, b.model.layers[l].fwd_flops);
    EXPECT_BITEQ(a.model.layers[l].bwd_flops, b.model.layers[l].bwd_flops);
  }
}

TEST(ArrivalGen, PoissonStreamMatchesGenerateTrace) {
  cluster::TraceConfig cfg;  // the production defaults: 10 jobs, seed 42
  const std::vector<cluster::JobSpec> batch = cluster::generate_trace(cfg);

  PoissonArrivalGenerator gen(cfg);
  const std::vector<Arrival> stream = service::drain(gen);

  ASSERT_EQ(stream.size(), batch.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_BITEQ(stream[i].at, batch[i].arrival) << "job " << i;
    EXPECT_BITEQ(stream[i].job.arrival, batch[i].arrival) << "job " << i;
    expect_same_job(stream[i].job, batch[i], i);
  }
}

TEST(ArrivalGen, CheckpointRestoreResumesBitExactly) {
  const auto cfg = small_arrivals(61, /*jobs=*/8);
  PoissonArrivalGenerator full(cfg);
  const std::vector<Arrival> reference = service::drain(full);
  ASSERT_EQ(reference.size(), 8u);

  for (std::size_t cut = 0; cut <= reference.size(); ++cut) {
    PoissonArrivalGenerator prefix(cfg);
    for (std::size_t k = 0; k < cut; ++k) ASSERT_TRUE(prefix.next());

    PoissonArrivalGenerator resumed(cfg);
    resumed.restore(prefix.rng().state(), prefix.clock(), prefix.emitted());
    const std::vector<Arrival> tail = service::drain(resumed);
    ASSERT_EQ(tail.size(), reference.size() - cut) << "cut " << cut;
    for (std::size_t i = 0; i < tail.size(); ++i) {
      EXPECT_BITEQ(tail[i].at, reference[cut + i].at);
      expect_same_job(tail[i].job, reference[cut + i].job, cut + i);
    }
  }
}

TEST(ArrivalGen, JournalIdenticalAcrossThreadCounts) {
  const auto trace = small_arrivals(67);
  std::string reference;
  for (const unsigned threads : {1u, 2u, 8u}) {
    ServiceSpec spec;
    spec.threads = threads;
    auto loop = make_loop(spec, trace);
    loop->drain();
    std::vector<Arrival> consumed;
    for (const service::JournalEntry& e : loop->journal()) {
      consumed.push_back(e.arrival);
    }
    const std::string text = service::serialize_arrivals(consumed);
    if (threads == 1u) {
      reference = text;
    } else {
      EXPECT_EQ(reference, text) << "threads " << threads;
    }
  }
}

TEST(ArrivalGen, TraceFileWriteReadWriteByteIdentity) {
  const auto cfg = small_arrivals(71, /*jobs=*/6);
  PoissonArrivalGenerator gen(cfg);
  const std::vector<Arrival> arrivals = service::drain(gen);

  const std::string text1 = service::serialize_arrivals(arrivals);
  const std::string path = temp_path("arrivals_roundtrip.trace");
  {
    std::ofstream out(path);
    ASSERT_TRUE(out.good());
    out << text1;
  }
  TraceFileArrivalReader reader(path);
  EXPECT_EQ(reader.size(), arrivals.size());
  const std::vector<Arrival> reread = service::drain(reader);
  const std::string text2 = service::serialize_arrivals(reread);
  EXPECT_EQ(text1, text2);

  // And the in-memory parse path agrees byte for byte too.
  EXPECT_EQ(service::serialize_arrivals(service::parse_arrival_trace(text1)),
            text1);
  std::remove(path.c_str());
}

TEST(ArrivalGen, BurstCollapsesGapsWithoutPerturbingParameters) {
  const auto cfg = small_arrivals(73, /*jobs=*/8);
  PoissonArrivalGenerator plain(cfg);
  PoissonArrivalGenerator bursty(cfg, /*burst_every=*/2);
  const std::vector<Arrival> a = service::drain(plain);
  const std::vector<Arrival> b = service::drain(bursty);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_same_job(a[i].job, b[i].job, i);  // parameter stream untouched
    if (i > 0) EXPECT_GE(b[i].at, b[i - 1].at);
  }
  // Every 2nd emission pins its successor to the same instant: pairs (1,2),
  // (3,4), ... share arrival doubles bitwise.
  EXPECT_BITEQ(b[2].at, b[1].at);
  EXPECT_BITEQ(b[4].at, b[3].at);
  // burst_every == 0 is exactly the batch trace.
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_BITEQ(a[i].at, a[i].job.arrival);
  }
}

TEST(ArrivalGen, EdgeCasesFailLoudOrEmpty) {
  auto cfg = small_arrivals(79);
  cfg.num_jobs = 0;
  PoissonArrivalGenerator empty(cfg);
  EXPECT_FALSE(empty.next().has_value());

  auto bad = small_arrivals(79);
  bad.arrival_rate = 0.0;
  EXPECT_THROW(PoissonArrivalGenerator{bad}, std::invalid_argument);
  bad.arrival_rate = -1.0;
  EXPECT_THROW(PoissonArrivalGenerator{bad}, std::invalid_argument);

  auto no_ranks = small_arrivals(79);
  no_ranks.rank_choices.clear();
  EXPECT_THROW(PoissonArrivalGenerator{no_ranks}, std::invalid_argument);

  auto bad_weights = small_arrivals(79);
  bad_weights.paradigm_weights = {1.0, 2.0};
  EXPECT_THROW(PoissonArrivalGenerator{bad_weights}, std::invalid_argument);

  // Empty stream round trip.
  const std::string empty_text = service::serialize_arrivals({});
  EXPECT_TRUE(service::parse_arrival_trace(empty_text).empty());

  // Malformed traces name the offending line.
  try {
    (void)service::parse_arrival_trace(std::string("bogus header\n"));
    ADD_FAILURE() << "bad header parsed";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
  try {
    (void)service::parse_arrival_trace(
        std::string("# echelonflow arrival trace v1\narrivals 1\n"));
    ADD_FAILURE() << "truncated trace parsed";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line"), std::string::npos);
  }

  EXPECT_THROW(TraceFileArrivalReader{temp_path("no_such.trace")},
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// 5. Admission control
// ---------------------------------------------------------------------------

TEST(Admission, DecideTruthTable) {
  AdmissionConfig accept;  // kAcceptAll
  EXPECT_EQ(decide(accept, 0, 0, 0.0), AdmissionOutcome::kAdmitted);
  EXPECT_EQ(decide(accept, 1000, 1000, 1e9), AdmissionOutcome::kAdmitted);

  AdmissionConfig capped;
  capped.policy = AdmissionPolicy::kQueueWithCap;
  capped.max_running = 2;
  capped.queue_cap = 1;
  EXPECT_EQ(decide(capped, 0, 0, 0.0), AdmissionOutcome::kAdmitted);
  EXPECT_EQ(decide(capped, 1, 0, 0.0), AdmissionOutcome::kAdmitted);
  EXPECT_EQ(decide(capped, 2, 0, 0.0), AdmissionOutcome::kQueued);
  EXPECT_EQ(decide(capped, 2, 1, 0.0), AdmissionOutcome::kRejected);
  capped.max_running = 0;  // unlimited
  EXPECT_EQ(decide(capped, 5000, 0, 0.0), AdmissionOutcome::kAdmitted);

  AdmissionConfig tardy;
  tardy.policy = AdmissionPolicy::kTardinessAware;
  tardy.max_running = 1;
  tardy.queue_cap = 2;
  tardy.tardiness_limit = 0.5;
  EXPECT_EQ(decide(tardy, 0, 0, 0.0), AdmissionOutcome::kAdmitted);
  EXPECT_EQ(decide(tardy, 1, 0, 0.4), AdmissionOutcome::kQueued);
  EXPECT_EQ(decide(tardy, 1, 0, 0.6), AdmissionOutcome::kRejected);
  // Tardiness only sheds the *overflow*: total tardiness is cumulative and
  // never decreases, so rejecting while a running slot is free would starve
  // the cluster forever once the limit is ever crossed.
  EXPECT_EQ(decide(tardy, 0, 0, 0.6), AdmissionOutcome::kAdmitted);
  EXPECT_EQ(decide(tardy, 1, 2, 0.4), AdmissionOutcome::kRejected);  // cap
}

TEST(Admission, NamesRoundTrip) {
  for (const AdmissionPolicy p :
       {AdmissionPolicy::kAcceptAll, AdmissionPolicy::kQueueWithCap,
        AdmissionPolicy::kTardinessAware}) {
    EXPECT_EQ(service::admission_policy_from_string(service::to_string(p)), p);
  }
  EXPECT_THROW(service::admission_policy_from_string("nonsense"),
               std::invalid_argument);
  EXPECT_EQ(std::string(service::to_string(AdmissionOutcome::kQueued)),
            "queued");
}

TEST(Admission, QueueWithCapBackfillsAndCompletes) {
  ServiceSpec spec;
  spec.admission.policy = AdmissionPolicy::kQueueWithCap;
  spec.admission.max_running = 1;
  spec.admission.queue_cap = 8;
  const auto trace = small_arrivals(83, /*jobs=*/4);
  auto loop = make_loop(spec, trace, /*burst_every=*/2);
  loop->drain();
  const ServiceResult r = loop->result();
  EXPECT_EQ(r.arrivals, 4u);
  EXPECT_GT(r.queued, 0u);  // serial admission must queue the overlap
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_EQ(r.launched, r.admitted + r.queued);
  EXPECT_EQ(r.completed, r.launched);  // the queue fully drains
  for (const service::ServiceJobRecord& j : r.jobs) {
    EXPECT_TRUE(j.finished);
    EXPECT_GE(j.started, j.submitted);  // queued jobs start late, never early
  }
}

TEST(Admission, ZeroQueueCapRejects) {
  ServiceSpec spec;
  spec.admission.policy = AdmissionPolicy::kQueueWithCap;
  spec.admission.max_running = 1;
  spec.admission.queue_cap = 0;
  const auto trace = small_arrivals(89, /*jobs=*/4);
  auto loop = make_loop(spec, trace, /*burst_every=*/2);
  loop->drain();
  const ServiceResult r = loop->result();
  EXPECT_GT(r.rejected, 0u);
  EXPECT_EQ(r.arrivals, r.admitted + r.queued + r.rejected);
  EXPECT_EQ(r.completed, r.launched);
}

TEST(Admission, PublishMetricsExportsServiceCounters) {
  obs::MetricsRegistry metrics;
  ServiceSpec spec;
  ServiceConfig cfg = make_config(spec);
  cfg.metrics = &metrics;
  ServiceLoop loop(cfg);
  loop.set_generator(
      std::make_unique<PoissonArrivalGenerator>(small_arrivals(97)));
  loop.drain();
  loop.publish_metrics();
  const ServiceResult r = loop.result();
  EXPECT_EQ(metrics.counter("service.arrivals").value(), r.arrivals);
  EXPECT_EQ(metrics.counter("service.completed").value(), r.completed);
  EXPECT_EQ(metrics.counter("service.control_ticks").value(),
            r.control_ticks);
  EXPECT_EQ(metrics.gauge("service.queue_depth").value(), 0.0);
  EXPECT_EQ(metrics.gauge("service.admission_rate").value(), 1.0);
  EXPECT_GT(metrics.gauge("service.decisions_per_sec").value(), 0.0);
}

// ---------------------------------------------------------------------------
// 6. Same-instant ordering
// ---------------------------------------------------------------------------

std::vector<Arrival> simultaneous_arrivals(int n, SimTime at) {
  const auto cfg = small_arrivals(101, n);
  PoissonArrivalGenerator gen(cfg);
  std::vector<Arrival> arrivals = service::drain(gen);
  for (Arrival& a : arrivals) {
    a.at = at;
    a.job.arrival = at;
  }
  return arrivals;
}

TEST(SameInstant, SimultaneousArrivalsLaunchInSubmissionOrder) {
  obs::TraceRecorder rec(1 << 16);
  ServiceSpec spec;
  spec.sink = &rec;
  ServiceLoop loop(make_config(spec));
  loop.set_generator(std::make_unique<VectorArrivalGenerator>(
      simultaneous_arrivals(3, 0.125)));
  loop.drain();

  const ServiceResult r = loop.result();
  ASSERT_EQ(r.launched, 3u);
  EXPECT_EQ(r.completed, 3u);
  for (const service::ServiceJobRecord& j : r.jobs) {
    EXPECT_BITEQ(j.submitted, 0.125);
    EXPECT_BITEQ(j.started, 0.125);
  }

  // The regression check proper: in the merged trace stream, each job's
  // first event must appear in submission (JobId) order -- the event-queue
  // seq tie-break replaying same-instant releases in launch order.
  const std::vector<obs::TraceEvent> events = rec.events();
  std::vector<std::size_t> first_seen;
  for (std::uint64_t job = 0; job < 3; ++job) {
    bool found = false;
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (events[i].job == job) {
        first_seen.push_back(i);
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found) << "job " << job << " never traced";
  }
  EXPECT_LT(first_seen[0], first_seen[1]);
  EXPECT_LT(first_seen[1], first_seen[2]);
}

TEST(SameInstant, SnapshotBetweenSimultaneousBatchesStaysIdentical) {
  // Burst arrivals (pairs at identical instants) + every-boundary snapshots:
  // the cut can land exactly between two same-instant admissions' boundary
  // and the restored run must still replay them in order.
  const ServiceSpec spec;
  const auto trace = small_arrivals(103, /*jobs=*/4);
  auto whole = make_loop(spec, trace, /*burst_every=*/2);
  whole->drain();
  const ServiceResult reference = whole->result();
  for (std::uint64_t cut = 0; cut <= reference.steps; ++cut) {
    const ServiceResult resumed =
        run_with_snapshot_at(spec, trace, cut, /*burst_every=*/2);
    expect_same_service_result(reference, resumed);
    if (HasFailure()) FAIL() << "divergence at cut " << cut;
  }
}

TEST(SameInstant, NonMonotoneArrivalStreamThrows) {
  std::vector<Arrival> arrivals = simultaneous_arrivals(2, 0.5);
  arrivals[1].at = 0.25;  // travels back in time
  arrivals[1].job.arrival = 0.25;
  ServiceLoop loop(make_config(ServiceSpec{}));
  loop.set_generator(
      std::make_unique<VectorArrivalGenerator>(std::move(arrivals)));
  EXPECT_THROW(loop.drain(), std::logic_error);
}

}  // namespace
}  // namespace echelon
