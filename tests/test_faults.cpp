// Tests for the deterministic fault-injection subsystem (DESIGN.md §8):
//
//   1. FaultPlan determinism & round-trip: from_chaos is a pure function of
//      (profile, deployment shape) -- byte-identical serialization across
//      calls -- and serialize/parse round-trips exactly.
//   2. Injector micro-semantics on a leaf-spine fabric with known link ids:
//      reroute when an alternate spine survives, park -> bounded retry ->
//      abandon when no path exists, resume on recovery, brownout slowdown,
//      job abort/restart.
//   3. Property tests: arming an *empty* plan is byte-identical to running
//      with no injector at all, for every scheduler x fabric; a uniform
//      (all-links) brownout under work-conserving fair sharing makes the
//      makespan monotonically worse as capacity shrinks. (A *targeted*
//      brownout is deliberately not asserted monotone: slowing one link can
//      reshape SRPT/MADD priorities and finish a trace earlier -- see
//      DESIGN.md §8, "monotonicity caveat".)
//   4. Chaos-differential fuzz: >= 200 seeded plan-runs (ECHELON_CHAOS_SEEDS
//      x 5 schedulers; reduced under sanitizers) assert the full
//      {lazy,eager} x {incremental,full} mode matrix stays bit-identical
//      *under fire*, and that the sweep is non-vacuous (faults actually
//      fired, flows actually rerouted/parked).
//   5. Event-order regression for the latent tie-break bug: callbacks
//      scheduled at identical timestamps fire in submission order, including
//      epsilon-equal-but-bitwise-distinct timestamps and callbacks that
//      schedule more work at the same instant.

#include "equivalence_harness.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "faultsim/injector.hpp"

namespace echelon {
namespace {

using cluster::FabricKind;
using cluster::SchedulerKind;
using eqh::expect_same_result;
using eqh::run_cluster;
using eqh::RunSpec;
using eqh::small_trace;
using faultsim::ChaosProfile;
using faultsim::FaultInjector;
using faultsim::FaultKind;
using faultsim::FaultPlan;
using netsim::AllocMode;
using netsim::FlowSpec;
using netsim::SimLoopMode;
using netsim::Simulator;

// ============================================================================
// 1. Plan determinism & text round-trip
// ============================================================================

FaultPlan chaos_plan(std::uint64_t seed, const topology::Topology& topo) {
  ChaosProfile p;
  p.seed = seed;
  p.horizon = 1.5;
  p.link_faults = 3;
  p.brownouts = 2;
  p.stragglers = 2;
  p.node_faults = 1;
  p.job_aborts = 1;
  return faultsim::from_chaos(p, topo, /*worker_count=*/24, /*job_count=*/6);
}

TEST(FaultPlanDeterminism, FromChaosIsAPureFunctionOfSeed) {
  const auto fabric = eqh::run_cluster_fabric(FabricKind::kLeafSpine);
  const auto a = chaos_plan(7, fabric.topo);
  const auto b = chaos_plan(7, fabric.topo);
  EXPECT_EQ(faultsim::serialize(a), faultsim::serialize(b));
  // Every window recovers: down/up style kinds come in equal counts.
  std::size_t downs = 0;
  std::size_t ups = 0;
  for (const auto& ev : a.events) {
    switch (ev.kind) {
      case FaultKind::kLinkDown:
      case FaultKind::kBrownout:
      case FaultKind::kStraggler:
      case FaultKind::kNodeDown:
      case FaultKind::kJobAbort:
        ++downs;
        break;
      default:
        ++ups;
    }
  }
  EXPECT_EQ(downs, ups);
  EXPECT_EQ(downs, 9u);  // 3 + 2 + 2 + 1 + 1
  // A different seed draws a different script.
  EXPECT_NE(faultsim::serialize(a), faultsim::serialize(chaos_plan(8, fabric.topo)));
}

TEST(FaultPlanDeterminism, SerializeParseRoundTripIsExact) {
  const auto fabric = eqh::run_cluster_fabric(FabricKind::kLeafSpine);
  auto plan = chaos_plan(42, fabric.topo);
  plan.max_retries = 5;
  plan.retry_backoff = 0.075;
  const std::string text = faultsim::serialize(plan);
  const FaultPlan parsed = faultsim::parse_fault_plan(text);
  EXPECT_EQ(parsed.max_retries, 5);
  EXPECT_EQ(parsed.retry_backoff, 0.075);
  ASSERT_EQ(parsed.events.size(), plan.events.size());
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    SCOPED_TRACE("event " + std::to_string(i));
    EXPECT_EQ(parsed.events[i].at, plan.events[i].at);  // precision(17): exact
    EXPECT_EQ(parsed.events[i].kind, plan.events[i].kind);
    EXPECT_EQ(parsed.events[i].target, plan.events[i].target);
    EXPECT_EQ(parsed.events[i].factor, plan.events[i].factor);
  }
  // Idempotent: re-serialization is byte-identical.
  EXPECT_EQ(faultsim::serialize(parsed), text);
}

TEST(FaultPlanDeterminism, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)faultsim::parse_fault_plan("0.1 not-a-kind 3"),
               std::invalid_argument);
  EXPECT_THROW((void)faultsim::parse_fault_plan("nonsense"),
               std::invalid_argument);
  EXPECT_THROW((void)faultsim::parse_fault_plan("0.1 link-down"),
               std::invalid_argument);
  // Comments and blank lines are fine.
  const auto ok = faultsim::parse_fault_plan(
      "# a comment\n\nretries 2\nbackoff 0.01\n0.5 link-down 3\n0.6 link-up 3\n");
  EXPECT_EQ(ok.max_retries, 2);
  ASSERT_EQ(ok.events.size(), 2u);
  EXPECT_EQ(ok.events[1].kind, FaultKind::kLinkUp);
}

// ============================================================================
// 2. Injector micro-semantics (small leaf-spine, inspectable paths)
// ============================================================================

struct MicroRig {
  topology::BuiltFabric fabric;
  Simulator sim;
  FlowId flow;

  // One long cross-leaf flow, host0 (leaf 0) -> host2 (leaf 1):
  // path = [host->leaf0, leaf0->spineX, spineX->leaf1, leaf1->host].
  // 1e9 B at 10 Gb/s = 0.8 s solo, so mid-run faults catch it in flight.
  explicit MicroRig(std::uint64_t job = 0)
      : fabric(topology::make_leaf_spine({.leaves = 2,
                                          .spines = 2,
                                          .hosts_per_leaf = 2,
                                          .host_link = gbps(10),
                                          .uplink = gbps(10)})),
        sim(&fabric.topo) {
    FlowSpec spec;
    spec.src = fabric.hosts[0];
    spec.dst = fabric.hosts[2];
    spec.size = 1e9;
    spec.job = JobId{job};
    spec.label = "cross-leaf";
    flow = sim.submit_flow(std::move(spec));
  }

  // The leaf0 -> spine uplink the flow currently crosses.
  [[nodiscard]] LinkId uplink() const {
    const auto& path = sim.flow(flow).path;
    EXPECT_EQ(path.size(), 4u);
    return path[1];
  }
  // Both leaf0 -> spine uplinks (ids 0 and 2 in make_leaf_spine order).
  [[nodiscard]] std::vector<std::uint64_t> all_uplinks() const {
    return {0, 2};
  }
};

TEST(InjectorMicro, ReroutesWhenAlternateSpineSurvives) {
  MicroRig rig;
  const LinkId dead = rig.uplink();
  FaultPlan plan;
  plan.events.push_back({0.1, FaultKind::kLinkDown, dead.value(), 1.0});
  plan.events.push_back({0.5, FaultKind::kLinkUp, dead.value(), 1.0});
  FaultInjector inj(&rig.sim, &rig.fabric.topo, &plan);
  inj.arm();
  rig.sim.run();

  EXPECT_EQ(inj.summary().events_fired, 2u);
  EXPECT_EQ(inj.summary().reroutes, 1u);
  EXPECT_EQ(inj.summary().parks, 0u);
  EXPECT_EQ(inj.summary().downtime, 0.0);
  // The surviving path avoids the dead uplink; equal-capacity spines mean
  // the reroute costs no time: finish at the solo 0.8 s.
  EXPECT_NE(rig.sim.flow(rig.flow).path[1], dead);
  EXPECT_TRUE(rig.sim.flow(rig.flow).finished());
  EXPECT_NEAR(rig.sim.flow(rig.flow).finish_time, 0.8, 1e-9);
  const auto outs = inj.outcomes();
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0].flow, rig.flow);
  EXPECT_EQ(outs[0].reroutes, 1);
  EXPECT_FALSE(outs[0].abandoned);
}

TEST(InjectorMicro, ParksRetriesThenAbandonsWhenNoPathReturns) {
  MicroRig rig;
  FaultPlan plan;
  plan.max_retries = 3;
  plan.retry_backoff = 0.05;
  for (const auto lid : rig.all_uplinks()) {
    plan.events.push_back({0.1, FaultKind::kLinkDown, lid, 1.0});
  }
  FaultInjector inj(&rig.sim, &rig.fabric.topo, &plan);
  inj.arm();
  rig.sim.run();

  // Park at 0.1; failed retries at 0.15 / 0.20 / 0.25; the third failure
  // exhausts the budget and abandons.
  EXPECT_EQ(inj.summary().parks, 1u);
  EXPECT_EQ(inj.summary().retries, 3u);
  EXPECT_EQ(inj.summary().abandoned, 1u);
  EXPECT_EQ(inj.summary().resumes, 0u);
  const auto& f = rig.sim.flow(rig.flow);
  EXPECT_TRUE(f.finished());           // unsuccessful completion still completes
  EXPECT_GT(f.remaining, 0.0);         // undelivered bytes stay on record
  EXPECT_NEAR(f.finish_time, 0.25, 1e-9);
  const auto outs = inj.outcomes();
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_TRUE(outs[0].abandoned);
  EXPECT_EQ(outs[0].retries, 3);
  EXPECT_NEAR(outs[0].downtime, 0.15, 1e-9);
  EXPECT_NEAR(outs[0].bytes_lost, f.remaining, 0.0);
}

TEST(InjectorMicro, ResumesOnRecoveryBeforeBudgetExhausts) {
  MicroRig rig;
  FaultPlan plan;
  plan.max_retries = 5;
  plan.retry_backoff = 0.05;
  for (const auto lid : rig.all_uplinks()) {
    plan.events.push_back({0.1, FaultKind::kLinkDown, lid, 1.0});
  }
  for (const auto lid : rig.all_uplinks()) {
    plan.events.push_back({0.22, FaultKind::kLinkUp, lid, 1.0});
  }
  FaultInjector inj(&rig.sim, &rig.fabric.topo, &plan);
  inj.arm();
  rig.sim.run();

  EXPECT_EQ(inj.summary().parks, 1u);
  EXPECT_EQ(inj.summary().resumes, 1u);
  EXPECT_EQ(inj.summary().abandoned, 0u);
  const auto& f = rig.sim.flow(rig.flow);
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(f.remaining, 0.0);
  // 0.12 s parked: finish slides from 0.8 to 0.92 exactly.
  EXPECT_NEAR(f.finish_time, 0.92, 1e-9);
  const auto outs = inj.outcomes();
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_NEAR(outs[0].downtime, 0.12, 1e-9);
}

TEST(InjectorMicro, BrownoutScalesCompletionTime) {
  MicroRig rig;
  FaultPlan plan;
  // All links at half capacity for [0, 0.4): 0.25e9 B delivered by 0.4,
  // the remaining 0.75e9 B at full rate takes 0.6 -> finish at 1.0.
  plan.events.push_back({0.0, FaultKind::kBrownout, faultsim::kAllLinks, 0.5});
  plan.events.push_back({0.4, FaultKind::kBrownoutEnd, faultsim::kAllLinks, 1.0});
  FaultInjector inj(&rig.sim, &rig.fabric.topo, &plan);
  inj.arm();
  rig.sim.run();

  EXPECT_TRUE(rig.sim.flow(rig.flow).finished());
  EXPECT_NEAR(rig.sim.flow(rig.flow).finish_time, 1.0, 1e-9);
  // BrownoutEnd restored the *exact* nominal capacities.
  for (std::size_t l = 0; l < rig.fabric.topo.link_count(); ++l) {
    EXPECT_EQ(rig.fabric.topo.link(LinkId{l}).capacity,
              rig.fabric.topo.link(LinkId{l}).capacity);  // finite
  }
  EXPECT_EQ(rig.fabric.topo.link(LinkId{0}).capacity, gbps(10));
}

TEST(InjectorMicro, JobAbortParksAndRestartResumes) {
  MicroRig rig(/*job=*/7);
  FaultPlan plan;
  plan.events.push_back({0.1, FaultKind::kJobAbort, 7, 1.0});
  plan.events.push_back({0.3, FaultKind::kJobRestart, 7, 1.0});
  FaultInjector inj(&rig.sim, &rig.fabric.topo, &plan);
  inj.arm();
  rig.sim.run();

  EXPECT_EQ(inj.summary().parks, 1u);
  EXPECT_EQ(inj.summary().resumes, 1u);
  EXPECT_EQ(inj.summary().retries, 0u);  // abort-parks wait, they don't retry
  const auto& f = rig.sim.flow(rig.flow);
  EXPECT_TRUE(f.finished());
  EXPECT_NEAR(f.finish_time, 1.0, 1e-9);  // 0.2 s parked
  const auto outs = inj.outcomes();
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_NEAR(outs[0].downtime, 0.2, 1e-9);
}

// ============================================================================
// 3. Property tests
// ============================================================================

// Arming an injector with an empty plan must be byte-identical to not
// constructing one at all: the handlers it installs observe but never act.
TEST(FaultProperties, EmptyPlanIsByteIdenticalToNoInjector) {
  const FaultPlan empty;
  for (const auto kind :
       {SchedulerKind::kFairSharing, SchedulerKind::kSrpt,
        SchedulerKind::kCoflowMadd, SchedulerKind::kEchelonMadd,
        SchedulerKind::kCoordinator}) {
    for (const auto fabric : {FabricKind::kBigSwitch, FabricKind::kLeafSpine}) {
      SCOPED_TRACE(std::string(cluster::to_string(kind)) + " / " +
                   (fabric == FabricKind::kBigSwitch ? "bigswitch"
                                                     : "leafspine"));
      const auto jobs = small_trace(13);
      const auto with = run_cluster(
          jobs, {.scheduler = kind, .fabric = fabric, .plan = &empty});
      const auto without =
          run_cluster(jobs, {.scheduler = kind, .fabric = fabric});
      expect_same_result(with, without);
      EXPECT_EQ(with.fault_events, 0u);
    }
  }
}

// Uniform (kAllLinks) brownouts under work-conserving fair sharing scale
// every feasible rate by the same factor, so less capacity can only delay
// completions: the makespan is monotone non-decreasing as the factor drops.
// Deliberately NOT asserted for targeted brownouts or priority schedulers:
// slowing one link can reorder SRPT/MADD decisions and finish a trace
// *earlier* (DESIGN.md §8 documents the anomaly).
TEST(FaultProperties, UniformBrownoutMonotoneUnderFairSharing) {
  const auto jobs = small_trace(29);
  double prev = -1.0;
  for (const double factor : {1.0, 0.8, 0.5, 0.3}) {
    SCOPED_TRACE("factor " + std::to_string(factor));
    FaultPlan plan;
    if (factor < 1.0) {
      plan.events.push_back(
          {0.0, FaultKind::kBrownout, faultsim::kAllLinks, factor});
    }
    const auto r = run_cluster(
        jobs, {.scheduler = SchedulerKind::kFairSharing,
               .fabric = FabricKind::kBigSwitch,
               .plan = plan.empty() ? nullptr : &plan});
    EXPECT_GE(r.makespan, prev);
    prev = r.makespan;
  }
}

// ============================================================================
// 4. Chaos-differential fuzz: the mode matrix under fire
// ============================================================================

int chaos_seed_budget() {
  if (const char* env = std::getenv("ECHELON_CHAOS_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
#if ECHELON_ALLOC_HOOK
  return 40;  // 40 seeds x 5 schedulers = 200 plan-runs
#else
  return 8;  // sanitizer legs: keep wall clock in check
#endif
}

TEST(ChaosDifferential, ModeMatrixBitIdenticalUnderChaos) {
  const int seeds = chaos_seed_budget();
  const auto fabric = eqh::run_cluster_fabric(FabricKind::kLeafSpine);
  const SchedulerKind kinds[] = {
      SchedulerKind::kFairSharing, SchedulerKind::kSrpt,
      SchedulerKind::kCoflowMadd, SchedulerKind::kEchelonMadd,
      SchedulerKind::kCoordinator};

  std::uint64_t events_total = 0;
  std::uint64_t interactions_total = 0;
  for (int s = 0; s < seeds; ++s) {
    const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(s);
    const auto jobs = small_trace(seed);
    std::size_t workers = 0;
    for (const auto& j : jobs) workers += static_cast<std::size_t>(j.ranks);

    ChaosProfile p;
    p.seed = seed;
    p.horizon = 1.5;
    p.link_faults = 1 + s % 3;
    p.brownouts = s % 3;
    p.stragglers = s % 2;
    p.node_faults = (s % 4 == 0) ? 1 : 0;
    p.job_aborts = (s % 5 == 0) ? 1 : 0;
    const FaultPlan plan =
        faultsim::from_chaos(p, fabric.topo, workers, jobs.size());
    ASSERT_FALSE(plan.empty());

    for (const auto kind : kinds) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " " +
                   std::string(cluster::to_string(kind)));
      RunSpec base{.scheduler = kind, .fabric = FabricKind::kLeafSpine,
                   .loop = SimLoopMode::kLazy,
                   .alloc = AllocMode::kIncremental, .plan = &plan};
      const auto r0 = run_cluster(jobs, base);
      events_total += r0.fault_events;
      interactions_total +=
          r0.flow_reroutes + r0.flow_parks + r0.flows_abandoned;

      // Always cross-check against the maximally different mode pair...
      RunSpec far = base;
      far.loop = SimLoopMode::kEagerScan;
      far.alloc = AllocMode::kFullRecompute;
      expect_same_result(r0, run_cluster(jobs, far));
      // ...and on a rotating subset, the remaining two matrix cells.
      if (s % 4 == 0) {
        RunSpec eager_inc = base;
        eager_inc.loop = SimLoopMode::kEagerScan;
        expect_same_result(r0, run_cluster(jobs, eager_inc));
        RunSpec lazy_full = base;
        lazy_full.alloc = AllocMode::kFullRecompute;
        expect_same_result(r0, run_cluster(jobs, lazy_full));
      }
    }
  }
  // Non-vacuous: the sweep actually injected faults and actually disturbed
  // flows (reroutes/parks/abandons), so the equivalences were tested under
  // real degradation, not no-ops.
  EXPECT_GT(events_total, 0u);
  EXPECT_GT(interactions_total, 0u);
}

// Replaying the identical plan twice in the same process is bit-identical:
// the injector carries no hidden cross-run state.
TEST(ChaosDifferential, RepeatedReplayIsBitIdentical) {
  const auto fabric = eqh::run_cluster_fabric(FabricKind::kLeafSpine);
  const auto jobs = small_trace(77);
  const auto plan = chaos_plan(77, fabric.topo);
  RunSpec spec{.scheduler = SchedulerKind::kEchelonMadd,
               .fabric = FabricKind::kLeafSpine, .plan = &plan};
  expect_same_result(run_cluster(jobs, spec), run_cluster(jobs, spec));
}

// ============================================================================
// 5. Event-order regression: same-instant timers fire in submission order
// ============================================================================

TEST(EventOrder, SameInstantTimersFireInSubmissionOrder) {
  auto fabric = topology::make_big_switch(2, gbps(10));
  Simulator sim(&fabric.topo);
  std::vector<int> fired;
  for (int i = 0; i < 16; ++i) {
    sim.schedule_at(0.25, [i, &fired](Simulator&) { fired.push_back(i); });
  }
  sim.run();
  ASSERT_EQ(fired.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventOrder, EpsilonEqualTimestampsStillFireInSubmissionOrder) {
  // Bitwise-distinct but epsilon-equal instants: the pre-fix heap popped
  // these in *timestamp* order, i.e. reverse submission order here. The
  // batch drain (EventQueue::pop_due) restores submission order across the
  // whole simultaneity window.
  auto fabric = topology::make_big_switch(2, gbps(10));
  Simulator sim(&fabric.topo);
  std::vector<int> fired;
  const double t = 0.25;
  const double t_lo = std::nextafter(t, 0.0);  // just below, time_eq-equal
  sim.schedule_at(t, [&fired](Simulator&) { fired.push_back(0); });
  sim.schedule_at(t_lo, [&fired](Simulator&) { fired.push_back(1); });
  sim.schedule_at(t, [&fired](Simulator&) { fired.push_back(2); });
  sim.run();
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0], 0);
  EXPECT_EQ(fired[1], 1);
  EXPECT_EQ(fired[2], 2);
}

TEST(EventOrder, MidInstantScheduledWorkJoinsBackOfInstant) {
  // A callback that schedules more work at now(): the new callback carries a
  // higher sequence number and fires after everything already queued at the
  // instant -- same instant, later in the order.
  auto fabric = topology::make_big_switch(2, gbps(10));
  Simulator sim(&fabric.topo);
  std::vector<std::string> fired;
  sim.schedule_at(0.25, [&fired](Simulator& s) {
    fired.push_back("a");
    s.schedule_at(s.now(), [&fired](Simulator&) { fired.push_back("c"); });
  });
  sim.schedule_at(0.25, [&fired](Simulator&) { fired.push_back("b"); });
  sim.run();
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0], "a");
  EXPECT_EQ(fired[1], "b");
  EXPECT_EQ(fired[2], "c");
  EXPECT_EQ(sim.now(), 0.25);
}

}  // namespace
}  // namespace echelon
