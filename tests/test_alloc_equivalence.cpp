// Golden-equivalence suite for incremental max-min allocation (see
// DESIGN.md, "Incremental max-min allocation").
//
// AllocMode::kIncremental caches each link-contention component's converged
// rates and skips the water-fill for components whose exact inputs (member
// flow ids in span order, weights, caps, link-capacity epoch) are unchanged
// since their last fill. Because the per-component progressive filling is a
// deterministic function of exactly those validated inputs, a cache hit
// restores *bit-identical* doubles -- kIncremental is not an approximation
// of AllocMode::kFullRecompute, it is the same function computed lazily.
// This suite keeps that claim honest (shared scaffolding lives in
// tests/equivalence_harness.hpp):
//
//   1. Randomized cluster experiments across all five SchedulerKinds on both
//      big-switch and leaf-spine fabrics assert bit-identical
//      ExperimentResult metrics (wall_ms excepted) between the two alloc
//      modes, including with per-job compute jitter, and crossed with both
//      event-loop modes (the full {lazy, eager} x {incremental, full}
//      matrix must agree).
//   2. Randomized simulator-level fuzz scenarios (staggered submissions,
//      loopback collisions, cap-assigning schedulers, runtime link-capacity
//      degradation/recovery) assert bit-identical completion *traces*
//      between the two modes -- and assert the incremental run actually
//      served components from its cache, so the equivalence is not vacuous.
//   3. The harness's allocation-counting operator-new hook proves
//      steady-state incremental allocate() passes -- cache hits *and*
//      refills under control-plane churn, including the record-store sweep
//      -- perform zero heap allocations once the arenas and the record slab
//      are warm.

#include "equivalence_harness.hpp"

#include <string>
#include <vector>

#include "echelon/srpt.hpp"

namespace echelon {
namespace {

using eqh::expect_same_result;
using eqh::run_cluster;
using eqh::RunSpec;
using eqh::small_trace;
using netsim::AllocMode;
using netsim::Flow;
using netsim::RateAllocator;
using netsim::SimLoopMode;

// ============================================================================
// 1. Cluster-level golden equivalence: all schedulers x both fabrics
// ============================================================================

using IncrementalVsFull = eqh::SchedFabricTest;

TEST_P(IncrementalVsFull, BitIdenticalExperimentResults) {
  const auto [kind, fabric] = GetParam();
  for (const std::uint64_t seed : {11u, 23u, 47u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto jobs = small_trace(seed);
    RunSpec inc{.scheduler = kind, .fabric = fabric,
                .alloc = AllocMode::kIncremental};
    RunSpec full{.scheduler = kind, .fabric = fabric,
                 .alloc = AllocMode::kFullRecompute};
    expect_same_result(run_cluster(jobs, inc), run_cluster(jobs, full));
  }
}

TEST_P(IncrementalVsFull, BitIdenticalWithComputeJitter) {
  const auto [kind, fabric] = GetParam();
  const auto jobs = small_trace(7, /*jitter=*/0.05);
  RunSpec inc{.scheduler = kind, .fabric = fabric,
              .alloc = AllocMode::kIncremental};
  RunSpec full{.scheduler = kind, .fabric = fabric,
               .alloc = AllocMode::kFullRecompute};
  expect_same_result(run_cluster(jobs, inc), run_cluster(jobs, full));
}

// The full {lazy, eager} x {incremental, full} matrix must agree: the
// incremental cache and the lazy event loop are independent optimizations,
// and any cross-coupling (e.g. the dt == 0 completion-heap patch consuming
// the allocator's dirty set) must not leak into observable state.
TEST_P(IncrementalVsFull, FourWayModeMatrixAgrees) {
  const auto [kind, fabric] = GetParam();
  const auto jobs = small_trace(83);
  const auto base = run_cluster(
      jobs, {.scheduler = kind, .fabric = fabric,
             .loop = SimLoopMode::kLazy, .alloc = AllocMode::kIncremental});
  for (const auto loop : {SimLoopMode::kLazy, SimLoopMode::kEagerScan}) {
    for (const auto alloc :
         {AllocMode::kIncremental, AllocMode::kFullRecompute}) {
      if (loop == SimLoopMode::kLazy && alloc == AllocMode::kIncremental) {
        continue;
      }
      expect_same_result(base, run_cluster(jobs, {.scheduler = kind,
                                                  .fabric = fabric,
                                                  .loop = loop,
                                                  .alloc = alloc}));
    }
  }
}

ECHELON_INSTANTIATE_SCHED_FABRIC(IncrementalVsFull);

// ============================================================================
// 2. Simulator-level fuzz: completion-trace equivalence
// ============================================================================

TEST(AllocFuzz, FairSharingBitIdenticalTraces) {
  for (const std::uint64_t seed : {3u, 17u, 41u, 2026u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto inc = eqh::run_sim_scenario(
        seed, {.alloc = AllocMode::kIncremental, .flows = 60});
    const auto full = eqh::run_sim_scenario(
        seed, {.alloc = AllocMode::kFullRecompute, .flows = 60});
    EXPECT_EQ(inc.trace, full.trace);
    EXPECT_EQ(inc.trace.size(), 60u);
    // Non-vacuous: the incremental run must have served components from its
    // cache (and the full run must never have).
    EXPECT_GT(inc.alloc_stats.components_reused, 0u);
    EXPECT_EQ(full.alloc_stats.components_reused, 0u);
    EXPECT_EQ(full.alloc_stats.components_filled,
              full.alloc_stats.components);
  }
}

TEST(AllocFuzz, SrptCapChurnBitIdenticalTraces) {
  // SRPT rewrites rate caps on every control pass -- the densest cap-churn
  // source in the tree; the cache must separate genuinely changed caps from
  // re-written identical ones.
  for (const std::uint64_t seed : {5u, 99u, 613u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ef::SrptScheduler a;
    ef::SrptScheduler b;
    const auto inc = eqh::run_sim_scenario(
        seed, {.alloc = AllocMode::kIncremental, .flows = 50, .sched = &a});
    const auto full = eqh::run_sim_scenario(
        seed, {.alloc = AllocMode::kFullRecompute, .flows = 50, .sched = &b});
    EXPECT_EQ(inc.trace, full.trace);
    EXPECT_GT(inc.alloc_stats.components_reused, 0u);
  }
}

TEST(AllocFuzz, RuntimeCapacityChurnBitIdenticalTraces) {
  for (const std::uint64_t seed : {29u, 404u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto inc = eqh::run_sim_scenario(
        seed, {.alloc = AllocMode::kIncremental, .flows = 40,
               .capacity_churn = true});
    const auto full = eqh::run_sim_scenario(
        seed, {.alloc = AllocMode::kFullRecompute, .flows = 40,
               .capacity_churn = true});
    EXPECT_EQ(inc.trace, full.trace);
    EXPECT_EQ(inc.trace.size(), 40u);
  }
}

// ============================================================================
// 3. Zero-allocation steady-state incremental passes
// ============================================================================

Flow make_flow(const topology::BuiltFabric& f, std::size_t src,
               std::size_t dst, Bytes size, std::uint64_t id) {
  Flow flow;
  flow.id = FlowId{id};
  flow.spec.src = f.hosts[src];
  flow.spec.dst = f.hosts[dst];
  flow.spec.size = size;
  flow.remaining = size;
  flow.path = *f.topo.route(f.hosts[src], f.hosts[dst], id);
  return flow;
}

TEST(AllocSteadyState, IncrementalPassesAllocationFree) {
  // Four disjoint contention components (one per src->dst host pair), each
  // with a handful of flows. Every pass churns caps in *one* component
  // (cycling through a fixed set of values), so steady state exercises both
  // incremental paths at once: cache hits for the three clean components
  // and a water-fill + in-place record refresh for the dirty one (stable
  // membership means no slab turnover, so the record store itself must not
  // allocate either).
  auto f = topology::make_big_switch(8, gbps(10));
  std::vector<Flow> flows;
  std::uint64_t id = 0;
  for (int c = 0; c < 4; ++c) {
    for (int k = 0; k < 4; ++k) {
      flows.push_back(make_flow(f, static_cast<std::size_t>(2 * c),
                                static_cast<std::size_t>(2 * c + 1), 1e15,
                                id++));
      flows.back().weight = 1.0 + 0.25 * k;
    }
  }
  std::vector<Flow*> p;
  for (Flow& fl : flows) p.push_back(&fl);

  RateAllocator alloc(&f.topo, AllocMode::kIncremental);
  const auto churn = [&](int pass) {
    Flow& target = flows[static_cast<std::size_t>(4 * (pass % 4))];
    target.set_rate_cap(gbps(1) * (1.0 + pass % 3));
  };

  // Warm-up: grows the arenas and the record slab to their high-water marks
  // and runs the mark-and-sweep at least once (the slab stabilizes at
  // 2 x live components + 64 records).
  for (int pass = 0; pass < 200; ++pass) {
    churn(pass);
    alloc.allocate(p);
  }
  const auto warm = alloc.stats();
  EXPECT_GT(warm.components_reused, 0u);
  EXPECT_GT(warm.components_filled, 0u);

  eqh::alloc_count_begin();
  for (int pass = 200; pass < 300; ++pass) {
    churn(pass);
    alloc.allocate(p);
  }
  const std::uint64_t allocs = eqh::alloc_count_end();

  // The counted window really did exercise both paths.
  EXPECT_EQ(alloc.stats().components_reused - warm.components_reused, 300u);
  EXPECT_EQ(alloc.stats().components_filled - warm.components_filled, 100u);
#if ECHELON_ALLOC_HOOK
  EXPECT_EQ(allocs, 0u)
      << "steady-state incremental allocate() must not allocate";
#else
  (void)allocs;
  GTEST_SKIP() << "allocation hook disabled under this sanitizer";
#endif
}

}  // namespace
}  // namespace echelon
