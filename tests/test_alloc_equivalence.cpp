// Golden-equivalence suite for incremental max-min allocation (see
// DESIGN.md, "Incremental max-min allocation").
//
// AllocMode::kIncremental caches each link-contention component's converged
// rates and skips the water-fill for components whose exact inputs (member
// flow ids in span order, weights, caps, link-capacity epoch) are unchanged
// since their last fill. Because the per-component progressive filling is a
// deterministic function of exactly those validated inputs, a cache hit
// restores *bit-identical* doubles -- kIncremental is not an approximation
// of AllocMode::kFullRecompute, it is the same function computed lazily.
// This suite keeps that claim honest:
//
//   1. Randomized cluster experiments across all five SchedulerKinds on both
//      big-switch and leaf-spine fabrics assert bit-identical
//      ExperimentResult metrics (wall_ms excepted) between the two alloc
//      modes, including with per-job compute jitter, and crossed with both
//      event-loop modes (the full {lazy, eager} x {incremental, full}
//      matrix must agree).
//   2. Randomized simulator-level fuzz scenarios (staggered submissions,
//      loopback collisions, cap-assigning schedulers, runtime link-capacity
//      degradation/recovery) assert bit-identical completion *traces*
//      between the two modes -- and assert the incremental run actually
//      served components from its cache, so the equivalence is not vacuous.
//   3. An allocation-counting operator-new hook proves steady-state
//      incremental allocate() passes -- cache hits *and* refills under
//      control-plane churn, including the record-store sweep -- perform
//      zero heap allocations once the arenas and the record slab are warm.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <string>
#include <tuple>
#include <vector>

#include "cluster/experiment.hpp"
#include "cluster/trace.hpp"
#include "common/rng.hpp"
#include "echelon/srpt.hpp"
#include "netsim/allocator.hpp"
#include "netsim/simulator.hpp"
#include "topology/builders.hpp"

// --- allocation-counting hook -----------------------------------------------
// Same pattern as tests/test_simloop_equivalence.cpp: counting global
// new/delete, off by default, disabled under ASan/TSan (the malloc-backed
// replacements fight the sanitizer allocator interceptors).

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define ECHELON_ALLOC_HOOK 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define ECHELON_ALLOC_HOOK 0
#else
#define ECHELON_ALLOC_HOOK 1
#endif
#else
#define ECHELON_ALLOC_HOOK 1
#endif

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

#if ECHELON_ALLOC_HOOK
void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif  // ECHELON_ALLOC_HOOK

namespace echelon {
namespace {

using cluster::ExperimentConfig;
using cluster::ExperimentResult;
using cluster::FabricKind;
using cluster::SchedulerKind;
using netsim::AllocMode;
using netsim::Flow;
using netsim::RateAllocator;
using netsim::SimLoopMode;
using netsim::Simulator;

// ============================================================================
// Helpers
// ============================================================================

#define EXPECT_BITEQ(a, b) EXPECT_EQ(a, b)

void expect_same_result(const ExperimentResult& inc,
                        const ExperimentResult& full) {
  EXPECT_EQ(inc.scheduler_name, full.scheduler_name);
  EXPECT_BITEQ(inc.makespan, full.makespan);
  EXPECT_BITEQ(inc.total_tardiness, full.total_tardiness);
  EXPECT_BITEQ(inc.weighted_total_tardiness, full.weighted_total_tardiness);
  EXPECT_EQ(inc.control_invocations, full.control_invocations);
  EXPECT_EQ(inc.heuristic_runs, full.heuristic_runs);
  EXPECT_EQ(inc.reuse_hits, full.reuse_hits);
  // wall_ms is host timing: nondeterministic by nature, excluded.
  ASSERT_EQ(inc.jobs.size(), full.jobs.size());
  for (std::size_t j = 0; j < inc.jobs.size(); ++j) {
    const auto& a = inc.jobs[j];
    const auto& b = full.jobs[j];
    EXPECT_EQ(a.job, b.job);
    EXPECT_EQ(a.description, b.description);
    EXPECT_BITEQ(a.arrival, b.arrival);
    EXPECT_BITEQ(a.finish, b.finish);
    EXPECT_BITEQ(a.mean_gpu_idle_fraction, b.mean_gpu_idle_fraction);
    ASSERT_EQ(a.iteration_times.size(), b.iteration_times.size());
    for (std::size_t k = 0; k < a.iteration_times.size(); ++k) {
      EXPECT_BITEQ(a.iteration_times[k], b.iteration_times[k]);
    }
  }
}

std::vector<cluster::JobSpec> small_trace(std::uint64_t seed,
                                          double jitter = 0.0) {
  cluster::TraceConfig tcfg;
  tcfg.num_jobs = 6;
  tcfg.seed = seed;
  tcfg.arrival_rate = 3.0;
  tcfg.iterations = 2;
  tcfg.min_width = 1024;
  tcfg.max_width = 2048;
  tcfg.rank_choices = {2, 4};
  auto jobs = cluster::generate_trace(tcfg);
  if (jitter > 0.0) {
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      jobs[j].compute_jitter = jitter;
      jobs[j].jitter_seed = seed * 1000 + j;
    }
  }
  return jobs;
}

ExperimentResult run_mode(const std::vector<cluster::JobSpec>& jobs,
                          SchedulerKind kind, FabricKind fabric,
                          AllocMode alloc_mode,
                          SimLoopMode loop_mode = SimLoopMode::kLazy) {
  ExperimentConfig cfg;
  cfg.scheduler = kind;
  cfg.fabric = fabric;
  cfg.hosts = 16;
  cfg.port_capacity = gbps(25);
  cfg.oversubscription = fabric == FabricKind::kLeafSpine ? 2.0 : 1.0;
  cfg.loop_mode = loop_mode;
  cfg.alloc_mode = alloc_mode;
  return cluster::run_experiment(jobs, cfg);
}

// ============================================================================
// 1. Cluster-level golden equivalence: all schedulers x both fabrics
// ============================================================================

class IncrementalVsFull
    : public ::testing::TestWithParam<std::tuple<SchedulerKind, FabricKind>> {
};

TEST_P(IncrementalVsFull, BitIdenticalExperimentResults) {
  const auto [kind, fabric] = GetParam();
  for (const std::uint64_t seed : {11u, 23u, 47u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto jobs = small_trace(seed);
    expect_same_result(
        run_mode(jobs, kind, fabric, AllocMode::kIncremental),
        run_mode(jobs, kind, fabric, AllocMode::kFullRecompute));
  }
}

TEST_P(IncrementalVsFull, BitIdenticalWithComputeJitter) {
  const auto [kind, fabric] = GetParam();
  const auto jobs = small_trace(7, /*jitter=*/0.05);
  expect_same_result(
      run_mode(jobs, kind, fabric, AllocMode::kIncremental),
      run_mode(jobs, kind, fabric, AllocMode::kFullRecompute));
}

// The full {lazy, eager} x {incremental, full} matrix must agree: the
// incremental cache and the lazy event loop are independent optimizations,
// and any cross-coupling (e.g. the dt == 0 completion-heap patch consuming
// the allocator's dirty set) must not leak into observable state.
TEST_P(IncrementalVsFull, FourWayModeMatrixAgrees) {
  const auto [kind, fabric] = GetParam();
  const auto jobs = small_trace(83);
  const auto base = run_mode(jobs, kind, fabric, AllocMode::kIncremental,
                             SimLoopMode::kLazy);
  expect_same_result(base, run_mode(jobs, kind, fabric,
                                    AllocMode::kFullRecompute,
                                    SimLoopMode::kLazy));
  expect_same_result(base, run_mode(jobs, kind, fabric,
                                    AllocMode::kIncremental,
                                    SimLoopMode::kEagerScan));
  expect_same_result(base, run_mode(jobs, kind, fabric,
                                    AllocMode::kFullRecompute,
                                    SimLoopMode::kEagerScan));
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulersBothFabrics, IncrementalVsFull,
    ::testing::Combine(::testing::Values(SchedulerKind::kFairSharing,
                                         SchedulerKind::kSrpt,
                                         SchedulerKind::kCoflowMadd,
                                         SchedulerKind::kEchelonMadd,
                                         SchedulerKind::kCoordinator),
                       ::testing::Values(FabricKind::kBigSwitch,
                                         FabricKind::kLeafSpine)),
    [](const auto& info) {
      std::string name = cluster::to_string(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      name += std::get<1>(info.param) == FabricKind::kBigSwitch
                  ? "_bigswitch"
                  : "_leafspine";
      return name;
    });

// ============================================================================
// 2. Simulator-level fuzz: completion-trace equivalence
// ============================================================================

struct TraceEvent {
  std::uint64_t flow;
  double finish;
  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

struct FuzzOutcome {
  std::vector<TraceEvent> trace;
  RateAllocator::Stats alloc_stats;
};

// Randomized scenario: `n` flows submitted at staggered times (with
// deliberate src == dst loopback collisions), no-op timers in between, and
// -- when `capacity_churn` is set -- timers that degrade and restore random
// link capacities mid-run (the capacity-epoch invalidation path). Returns
// the exact completion trace plus the allocator's cache telemetry.
FuzzOutcome run_fuzz_scenario(AllocMode alloc_mode, std::uint64_t seed,
                              int n, bool capacity_churn,
                              netsim::NetworkScheduler* sched) {
  auto fabric = topology::make_big_switch(8, gbps(10));
  Simulator sim(&fabric.topo, SimLoopMode::kLazy, alloc_mode);
  if (sched != nullptr) sim.set_scheduler(sched);

  FuzzOutcome out;
  sim.add_flow_listener([&out](Simulator&, const netsim::Flow& f) {
    out.trace.push_back({f.id.value(), f.finish_time});
  });

  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    const double at = rng.uniform() * 0.5;
    const auto src = fabric.hosts[rng.uniform_int(fabric.hosts.size())];
    const auto dst = fabric.hosts[rng.uniform_int(fabric.hosts.size())];
    const double size = 1e6 * std::exp(2.0 * rng.normal());
    sim.schedule_at(at, [src, dst, size, i](Simulator& s) {
      netsim::FlowSpec spec;
      spec.src = src;
      spec.dst = dst;
      spec.size = size;
      spec.label = "t" + std::to_string(i);
      s.submit_flow(std::move(spec));
    });
    sim.schedule_at(rng.uniform() * 0.7, [](Simulator&) {});
  }

  if (capacity_churn) {
    // Degrade a random host port at a random instant, restore it later.
    // Mutating the topology from a timer models mid-run failures; the
    // simulator is told via invalidate_allocation(), and the incremental
    // allocator must additionally notice through its capacity-epoch
    // fingerprint that every cached record is stale.
    topology::Topology* topo = &fabric.topo;
    for (int k = 0; k < 6; ++k) {
      const auto lid = LinkId{rng.uniform_int(fabric.topo.link_count())};
      const double full = fabric.topo.link(lid).capacity;
      const double degraded = full * (0.25 + 0.5 * rng.uniform());
      const double t_fail = 0.05 + rng.uniform() * 0.3;
      const double t_heal = t_fail + 0.05 + rng.uniform() * 0.2;
      sim.schedule_at(t_fail, [topo, lid, degraded](Simulator& s) {
        topo->set_link_capacity(lid, degraded);
        s.invalidate_allocation();
      });
      sim.schedule_at(t_heal, [topo, lid, full](Simulator& s) {
        topo->set_link_capacity(lid, full);
        s.invalidate_allocation();
      });
    }
  }

  sim.run();
  EXPECT_EQ(sim.active_flow_count(), 0u);
  out.alloc_stats = sim.alloc_stats();
  return out;
}

TEST(AllocFuzz, FairSharingBitIdenticalTraces) {
  for (const std::uint64_t seed : {3u, 17u, 41u, 2026u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto inc = run_fuzz_scenario(AllocMode::kIncremental, seed, 60,
                                       false, nullptr);
    const auto full = run_fuzz_scenario(AllocMode::kFullRecompute, seed, 60,
                                        false, nullptr);
    EXPECT_EQ(inc.trace, full.trace);
    EXPECT_EQ(inc.trace.size(), 60u);
    // Non-vacuous: the incremental run must have served components from its
    // cache (and the full run must never have).
    EXPECT_GT(inc.alloc_stats.components_reused, 0u);
    EXPECT_EQ(full.alloc_stats.components_reused, 0u);
    EXPECT_EQ(full.alloc_stats.components_filled,
              full.alloc_stats.components);
  }
}

TEST(AllocFuzz, SrptCapChurnBitIdenticalTraces) {
  // SRPT rewrites rate caps on every control pass -- the densest cap-churn
  // source in the tree; the cache must separate genuinely changed caps from
  // re-written identical ones.
  for (const std::uint64_t seed : {5u, 99u, 613u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ef::SrptScheduler a;
    ef::SrptScheduler b;
    const auto inc =
        run_fuzz_scenario(AllocMode::kIncremental, seed, 50, false, &a);
    const auto full =
        run_fuzz_scenario(AllocMode::kFullRecompute, seed, 50, false, &b);
    EXPECT_EQ(inc.trace, full.trace);
    EXPECT_GT(inc.alloc_stats.components_reused, 0u);
  }
}

TEST(AllocFuzz, RuntimeCapacityChurnBitIdenticalTraces) {
  for (const std::uint64_t seed : {29u, 404u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto inc = run_fuzz_scenario(AllocMode::kIncremental, seed, 40,
                                       true, nullptr);
    const auto full = run_fuzz_scenario(AllocMode::kFullRecompute, seed, 40,
                                        true, nullptr);
    EXPECT_EQ(inc.trace, full.trace);
    EXPECT_EQ(inc.trace.size(), 40u);
  }
}

// ============================================================================
// 3. Zero-allocation steady-state incremental passes
// ============================================================================

Flow make_flow(const topology::BuiltFabric& f, std::size_t src,
               std::size_t dst, Bytes size, std::uint64_t id) {
  Flow flow;
  flow.id = FlowId{id};
  flow.spec.src = f.hosts[src];
  flow.spec.dst = f.hosts[dst];
  flow.spec.size = size;
  flow.remaining = size;
  flow.path = *f.topo.route(f.hosts[src], f.hosts[dst], id);
  return flow;
}

TEST(AllocSteadyState, IncrementalPassesAllocationFree) {
  // Four disjoint contention components (one per src->dst host pair), each
  // with a handful of flows. Every pass churns caps in *one* component
  // (cycling through a fixed set of values), so steady state exercises both
  // incremental paths at once: cache hits for the three clean components
  // and a water-fill + in-place record refresh for the dirty one (stable
  // membership means no slab turnover, so the record store itself must not
  // allocate either).
  auto f = topology::make_big_switch(8, gbps(10));
  std::vector<Flow> flows;
  std::uint64_t id = 0;
  for (int c = 0; c < 4; ++c) {
    for (int k = 0; k < 4; ++k) {
      flows.push_back(make_flow(f, static_cast<std::size_t>(2 * c),
                                static_cast<std::size_t>(2 * c + 1), 1e15,
                                id++));
      flows.back().weight = 1.0 + 0.25 * k;
    }
  }
  std::vector<Flow*> p;
  for (Flow& fl : flows) p.push_back(&fl);

  RateAllocator alloc(&f.topo, AllocMode::kIncremental);
  const auto churn = [&](int pass) {
    Flow& target = flows[static_cast<std::size_t>(4 * (pass % 4))];
    target.set_rate_cap(gbps(1) * (1.0 + pass % 3));
  };

  // Warm-up: grows the arenas and the record slab to their high-water marks
  // and runs the mark-and-sweep at least once (the slab stabilizes at
  // 2 x live components + 64 records).
  for (int pass = 0; pass < 200; ++pass) {
    churn(pass);
    alloc.allocate(p);
  }
  const auto warm = alloc.stats();
  EXPECT_GT(warm.components_reused, 0u);
  EXPECT_GT(warm.components_filled, 0u);

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  for (int pass = 200; pass < 300; ++pass) {
    churn(pass);
    alloc.allocate(p);
  }
  g_count_allocs.store(false);

  // The counted window really did exercise both paths.
  EXPECT_EQ(alloc.stats().components_reused - warm.components_reused, 300u);
  EXPECT_EQ(alloc.stats().components_filled - warm.components_filled, 100u);
#if ECHELON_ALLOC_HOOK
  EXPECT_EQ(g_alloc_count.load(), 0u)
      << "steady-state incremental allocate() must not allocate";
#else
  GTEST_SKIP() << "allocation hook disabled under this sanitizer";
#endif
}

}  // namespace
}  // namespace echelon
