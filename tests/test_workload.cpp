// Tests for the five training-paradigm workflow generators: structural
// invariants, Table-1 Coflow-compliance, and timing on an infinitely fast
// network (where iteration time must equal pure computation time).

#include <gtest/gtest.h>

#include "echelon/registry.hpp"
#include "netsim/simulator.hpp"
#include "topology/builders.hpp"
#include "workload/dp.hpp"
#include "workload/fsdp.hpp"
#include "workload/pp.hpp"
#include "workload/tp.hpp"

namespace echelon::workload {
namespace {

constexpr double kFast = 1e30;

struct RunResult {
  SimTime makespan = 0.0;
  std::vector<SimTime> iter_finish;
};

// Runs a generated job alone on a big switch of `hosts` ports.
RunResult run_job(const GeneratedJob& job, topology::BuiltFabric& fabric,
                  netsim::Simulator& sim) {
  netsim::WorkflowEngine eng(&sim, &job.workflow);
  eng.launch(0.0);
  RunResult r;
  r.makespan = sim.run();
  EXPECT_TRUE(eng.finished()) << job.description;
  for (const netsim::WfNodeId n : job.iteration_end) {
    r.iter_finish.push_back(eng.node_finish(n));
  }
  return r;
}

TEST(ModelSpec, MlpShapes) {
  const ModelSpec m = make_mlp(4, 100, 8);
  EXPECT_EQ(m.layer_count(), 4u);
  EXPECT_EQ(m.total_params(), 4ull * 100 * 100);
  EXPECT_DOUBLE_EQ(m.total_param_bytes(), 4.0 * 100 * 100 * 4);
  EXPECT_DOUBLE_EQ(m.layers[0].fwd_flops, 2.0 * 8 * 100 * 100);
  EXPECT_DOUBLE_EQ(m.layers[0].bwd_flops, 2.0 * m.layers[0].fwd_flops);
}

TEST(ModelSpec, TransformerShapes) {
  const ModelSpec m = make_transformer(2, 64, 128, 4);
  EXPECT_EQ(m.layer_count(), 2u);
  EXPECT_EQ(m.layers[0].params, 12ull * 64 * 64);
  EXPECT_DOUBLE_EQ(m.layers[0].activation_bytes, 4.0 * 128 * 64 * 2.0);
}

TEST(Gpu, ComputeTimeScalesWithFlops) {
  const GpuSpec g = unit_gpu();
  EXPECT_DOUBLE_EQ(g.compute_time(5.0), 5.0);
  EXPECT_GT(a100().peak_flops, v100().peak_flops);
}

TEST(PartitionLayers, BalancedContiguousCover) {
  const ModelSpec m = make_mlp(10, 64, 4);
  const auto parts = partition_layers(m, 3);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].first, 0u);
  EXPECT_EQ(parts.back().second, 10u);
  for (std::size_t i = 1; i < parts.size(); ++i) {
    EXPECT_EQ(parts[i].first, parts[i - 1].second);  // contiguous
    EXPECT_GT(parts[i].second, parts[i].first);      // non-empty
  }
}

TEST(PartitionLayers, OnePartTakesAll) {
  const ModelSpec m = make_mlp(5, 8, 1);
  const auto parts = partition_layers(m, 1);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], (std::pair<std::size_t, std::size_t>{0, 5}));
}

TEST(PartitionLayers, AsManyPartsAsLayers) {
  const ModelSpec m = make_mlp(4, 8, 1);
  const auto parts = partition_layers(m, 4);
  ASSERT_EQ(parts.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(parts[i], (std::pair<std::size_t, std::size_t>{i, i + 1}));
  }
}

// --- Table 1: paradigm -> arrangement kind -----------------------------------

TEST(Table1, DpAllReduceIsCoflowCompliant) {
  auto fabric = topology::make_big_switch(4, kFast);
  netsim::Simulator sim(&fabric.topo);
  ef::Registry reg;
  const auto placement = make_placement(sim, fabric.hosts);
  const auto job = generate_dp_allreduce(
      {.model = make_mlp(4, 32, 2), .gpu = unit_gpu(), .buckets = 2,
       .iterations = 1},
      placement, reg, JobId{0});
  ASSERT_FALSE(job.echelonflows.empty());
  for (const EchelonFlowId id : job.echelonflows) {
    EXPECT_TRUE(reg.get(id).arrangement().is_coflow_compliant());
  }
}

TEST(Table1, DpPsIsCoflowCompliant) {
  auto fabric = topology::make_big_switch(5, kFast);
  netsim::Simulator sim(&fabric.topo);
  ef::Registry reg;
  std::vector<NodeId> worker_hosts(fabric.hosts.begin(),
                                   fabric.hosts.end() - 1);
  const auto placement = make_placement(sim, worker_hosts);
  const WorkerId ps = sim.add_worker(fabric.hosts.back());
  const auto job = generate_dp_ps(
      {.model = make_mlp(4, 32, 2), .gpu = unit_gpu(), .buckets = 2,
       .iterations = 1},
      placement, fabric.hosts.back(), ps, reg, JobId{0});
  for (const EchelonFlowId id : job.echelonflows) {
    EXPECT_TRUE(reg.get(id).arrangement().is_coflow_compliant());
  }
}

TEST(Table1, PipelineIsStaggered) {
  auto fabric = topology::make_big_switch(3, kFast);
  netsim::Simulator sim(&fabric.topo);
  ef::Registry reg;
  const auto placement = make_placement(sim, fabric.hosts);
  const auto job = generate_pipeline(
      {.model = make_mlp(3, 32, 2), .gpu = unit_gpu(), .micro_batches = 4,
       .iterations = 1},
      placement, reg, JobId{0});
  for (const EchelonFlowId id : job.echelonflows) {
    const auto& a = reg.get(id).arrangement();
    EXPECT_FALSE(a.is_coflow_compliant());
    EXPECT_EQ(a.describe(), "staggered flow finish time");
  }
}

TEST(Table1, TensorIsCoflowCompliant) {
  auto fabric = topology::make_big_switch(4, kFast);
  netsim::Simulator sim(&fabric.topo);
  ef::Registry reg;
  const auto placement = make_placement(sim, fabric.hosts);
  const auto job = generate_tensor(
      {.model = make_mlp(3, 32, 2), .gpu = unit_gpu(), .iterations = 1},
      placement, reg, JobId{0});
  // One EF per layer per direction: 2 * layers.
  EXPECT_EQ(job.echelonflows.size(), 6u);
  for (const EchelonFlowId id : job.echelonflows) {
    EXPECT_TRUE(reg.get(id).arrangement().is_coflow_compliant());
  }
}

TEST(Table1, FsdpAllGatherIsStaggeredCoflows) {
  auto fabric = topology::make_big_switch(4, kFast);
  netsim::Simulator sim(&fabric.topo);
  ef::Registry reg;
  const auto placement = make_placement(sim, fabric.hosts);
  const auto job = generate_fsdp(
      {.model = make_mlp(3, 32, 2), .gpu = unit_gpu(), .iterations = 1},
      placement, reg, JobId{0});
  // First EF: the all-gather EchelonFlow (staggered Coflows); the rest are
  // per-layer reduce-scatter Coflows.
  const auto& ag = reg.get(job.echelonflows[0]).arrangement();
  EXPECT_FALSE(ag.is_coflow_compliant());
  EXPECT_EQ(ag.describe(), "staggered Coflow finish time");
  EXPECT_EQ(ag.size(), 2 * 3 * 4 * 3);  // 2L stages x m(m-1) flows
  for (std::size_t i = 1; i < job.echelonflows.size(); ++i) {
    EXPECT_TRUE(
        reg.get(job.echelonflows[i]).arrangement().is_coflow_compliant());
  }
}

// --- structural and timing checks on an infinitely fast network ---------------

TEST(DpAllReduce, InfiniteBandwidthIterationTimeIsComputeBound) {
  auto fabric = topology::make_big_switch(4, kFast);
  netsim::Simulator sim(&fabric.topo);
  ef::Registry reg;
  const auto placement = make_placement(sim, fabric.hosts);
  const ModelSpec model = make_mlp(4, 32, 2);
  const GpuSpec gpu = unit_gpu();
  const auto job = generate_dp_allreduce(
      {.model = model, .gpu = gpu, .buckets = 2, .iterations = 2},
      placement, reg, JobId{0});
  EXPECT_TRUE(job.workflow.is_acyclic());
  const auto r = run_job(job, fabric, sim);
  // Per iteration: fwd + bwd + optimizer (communication is free).
  const double t_iter = gpu.compute_time(model.total_fwd_flops()) * 1.05 +
                        gpu.compute_time(model.total_bwd_flops());
  ASSERT_EQ(r.iter_finish.size(), 2u);
  EXPECT_NEAR(r.iter_finish[0], t_iter, 1e-6);
  EXPECT_NEAR(r.iter_finish[1], 2 * t_iter, 1e-6);
}

TEST(DpAllReduce, AllEchelonFlowsCompleteAndBind) {
  auto fabric = topology::make_big_switch(4, 1e9);
  netsim::Simulator sim(&fabric.topo);
  ef::Registry reg;
  reg.attach(sim);
  const auto placement = make_placement(sim, fabric.hosts);
  const auto job = generate_dp_allreduce(
      {.model = make_mlp(4, 32, 2), .gpu = unit_gpu(), .buckets = 2,
       .iterations = 2},
      placement, reg, JobId{0});
  run_job(job, fabric, sim);
  for (const EchelonFlowId id : job.echelonflows) {
    EXPECT_TRUE(reg.get(id).complete());
    EXPECT_GE(reg.get(id).tardiness(), 0.0);
  }
}

TEST(Pipeline, GpipeBubbleFractionMatchesAnalytic) {
  // Uniform stages, infinitely fast network: the last stage's idle fraction
  // inside one iteration approaches the textbook (p-1)/(m+p-1).
  const int S = 4;
  const int M = 8;
  auto fabric = topology::make_big_switch(S, kFast);
  netsim::Simulator sim(&fabric.topo);
  ef::Registry reg;
  const auto placement = make_placement(sim, fabric.hosts);
  const ModelSpec model = make_mlp(S, 32, 2);  // one layer per stage
  const auto job = generate_pipeline(
      {.model = model, .gpu = unit_gpu(), .micro_batches = M,
       .iterations = 1, .optimizer_fraction = 0.0},
      placement, reg, JobId{0});
  const auto r = run_job(job, fabric, sim);
  // Makespan of one iteration with T per stage-µbatch: (M + S - 1) * 2T
  // (forward fill + drain on both passes; bwd = 2T per µbatch).
  const double T = unit_gpu().compute_time(model.layers[0].fwd_flops);
  const double expected = (M + S - 1) * T + (M + S - 1) * 2 * T;
  EXPECT_NEAR(r.makespan, expected, 1e-6);
  const double busy = M * 3 * T;  // fwd + bwd per µbatch on each worker
  const double bubble = 1.0 - busy / r.makespan;
  // Analytic bubble for combined fwd+bwd pipeline.
  const double analytic = gpipe_bubble_fraction(S, M);
  EXPECT_NEAR(bubble, analytic, 0.02);
}

TEST(Pipeline, OneFOneBCompletesAndIsFasterOrEqual) {
  const int S = 4;
  const int M = 8;
  const ModelSpec model = make_mlp(S, 32, 2);
  auto run_sched = [&](PipelineSchedule sched) {
    auto fabric = topology::make_big_switch(S, kFast);
    netsim::Simulator sim(&fabric.topo);
    ef::Registry reg;
    const auto placement = make_placement(sim, fabric.hosts);
    const auto job = generate_pipeline(
        {.model = model, .gpu = unit_gpu(), .micro_batches = M,
         .iterations = 1, .schedule = sched, .optimizer_fraction = 0.0},
        placement, reg, JobId{0});
    EXPECT_TRUE(job.workflow.is_acyclic());
    netsim::WorkflowEngine eng(&sim, &job.workflow);
    eng.launch(0.0);
    const SimTime t = sim.run();
    EXPECT_TRUE(eng.finished());
    return t;
  };
  const SimTime gpipe = run_sched(PipelineSchedule::kGpipe);
  const SimTime onefb = run_sched(PipelineSchedule::kOneFOneB);
  EXPECT_LE(onefb, gpipe + 1e-9);
}

TEST(Tensor, InfiniteBandwidthMatchesShardedCompute) {
  auto fabric = topology::make_big_switch(4, kFast);
  netsim::Simulator sim(&fabric.topo);
  ef::Registry reg;
  const auto placement = make_placement(sim, fabric.hosts);
  const ModelSpec model = make_mlp(3, 32, 2);
  const GpuSpec gpu = unit_gpu();
  const auto job = generate_tensor(
      {.model = model, .gpu = gpu, .iterations = 1,
       .optimizer_fraction = 0.0},
      placement, reg, JobId{0});
  const auto r = run_job(job, fabric, sim);
  const double expected =
      gpu.compute_time(model.total_fwd_flops() + model.total_bwd_flops()) /
      4.0;  // 1/m of the FLOPs per rank, layers serialized
  EXPECT_NEAR(r.makespan, expected, 1e-6);
}

TEST(Fsdp, InfiniteBandwidthMatchesLayerSerialCompute) {
  auto fabric = topology::make_big_switch(4, kFast);
  netsim::Simulator sim(&fabric.topo);
  ef::Registry reg;
  const auto placement = make_placement(sim, fabric.hosts);
  const ModelSpec model = make_mlp(3, 32, 2);
  const GpuSpec gpu = unit_gpu();
  const auto job = generate_fsdp(
      {.model = model, .gpu = gpu, .iterations = 1,
       .optimizer_fraction = 0.0},
      placement, reg, JobId{0});
  const auto r = run_job(job, fabric, sim);
  const double expected =
      gpu.compute_time(model.total_fwd_flops() + model.total_bwd_flops());
  EXPECT_NEAR(r.makespan, expected, 1e-6);
}

TEST(Generators, SignaturesStableAcrossIterations) {
  auto fabric = topology::make_big_switch(4, kFast);
  netsim::Simulator sim(&fabric.topo);
  ef::Registry reg;
  const auto placement = make_placement(sim, fabric.hosts);
  const auto job = generate_dp_allreduce(
      {.model = make_mlp(4, 32, 2), .gpu = unit_gpu(), .buckets = 2,
       .iterations = 2},
      placement, reg, JobId{0});
  // Collect signatures of flow nodes per iteration (by label prefix).
  std::vector<std::uint64_t> it0, it1;
  for (const auto& n : job.workflow.nodes()) {
    if (n.kind != netsim::WfKind::kFlow) continue;
    if (n.label.rfind("it0.", 0) == 0) it0.push_back(n.flow.signature);
    if (n.label.rfind("it1.", 0) == 0) it1.push_back(n.flow.signature);
  }
  ASSERT_FALSE(it0.empty());
  EXPECT_EQ(it0, it1);
}

}  // namespace
}  // namespace echelon::workload
