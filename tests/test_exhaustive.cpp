// Tests for the single-link reference schedulers, including the property
// sweep backing Property 1: preemptive EDF (what EchelonFlow-MADD reduces to
// on a single bottleneck) achieves the exhaustive-search optimum for maximum
// tardiness on random instances.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "echelon/exhaustive.hpp"

namespace echelon::ef {
namespace {

TEST(MiniSim, PriorityOrderServesSequentially) {
  const std::vector<MiniFlow> flows = {{0.0, 10.0, 0.0}, {0.0, 10.0, 0.0}};
  const auto finish = simulate_priority(flows, {0, 1}, 10.0);
  EXPECT_NEAR(finish[0], 1.0, 1e-9);
  EXPECT_NEAR(finish[1], 2.0, 1e-9);
  const auto finish2 = simulate_priority(flows, {1, 0}, 10.0);
  EXPECT_NEAR(finish2[0], 2.0, 1e-9);
  EXPECT_NEAR(finish2[1], 1.0, 1e-9);
}

TEST(MiniSim, ReleaseTimesIdleTheLink) {
  const std::vector<MiniFlow> flows = {{5.0, 10.0, 0.0}};
  const auto finish = simulate_priority(flows, {0}, 10.0);
  EXPECT_NEAR(finish[0], 6.0, 1e-9);
}

TEST(MiniSim, PreemptionOnHigherPriorityRelease) {
  // Low-priority flow starts first, is preempted at t=1 by the
  // high-priority release, resumes after.
  const std::vector<MiniFlow> flows = {{0.0, 20.0, 0.0}, {1.0, 10.0, 0.0}};
  const auto finish = simulate_priority(flows, {1, 0}, 10.0);
  EXPECT_NEAR(finish[1], 2.0, 1e-9);
  EXPECT_NEAR(finish[0], 3.0, 1e-9);
}

TEST(MiniSim, EdfPicksEarliestDeadline) {
  const std::vector<MiniFlow> flows = {
      {0.0, 10.0, /*deadline=*/5.0},
      {0.0, 10.0, /*deadline=*/1.0},
  };
  const auto finish = simulate_edf(flows, 10.0);
  EXPECT_NEAR(finish[1], 1.0, 1e-9);
  EXPECT_NEAR(finish[0], 2.0, 1e-9);
}

TEST(MiniSim, ZeroSizeFlowFinishesAtRelease) {
  const std::vector<MiniFlow> flows = {{3.0, 0.0, 0.0}};
  const auto finish = simulate_edf(flows, 1.0);
  EXPECT_NEAR(finish[0], 3.0, 1e-9);
}

TEST(MiniSim, MaxTardinessComputation) {
  const std::vector<MiniFlow> flows = {{0, 1, 2.0}, {0, 1, 0.5}};
  const std::vector<SimTime> finish = {3.0, 1.0};
  EXPECT_NEAR(max_tardiness(flows, finish), 1.0, 1e-9);
}

TEST(Exhaustive, FindsKnownOptimum) {
  // Fig. 2 in miniature: releases 1/2/3, sizes 2, deadlines 1/2/3, cap 1.
  const std::vector<MiniFlow> flows = {
      {1.0, 2.0, 1.0}, {2.0, 2.0, 2.0}, {3.0, 2.0, 3.0}};
  const auto best = exhaustive_best(flows, 1.0, [&](const auto& finish) {
    return max_tardiness(flows, finish);
  });
  EXPECT_NEAR(best.objective, 4.0, 1e-9);  // finishes 3/5/7 vs ideals 1/2/3
  EXPECT_EQ(best.order, (std::vector<int>{0, 1, 2}));
}

TEST(Exhaustive, ObjectiveCanBeCompletionTime) {
  // Minimizing makespan-by-order degenerates to any order on one link.
  const std::vector<MiniFlow> flows = {{0.0, 5.0, 0.0}, {0.0, 5.0, 0.0}};
  const auto best = exhaustive_best(flows, 1.0, [](const auto& finish) {
    return std::max(finish[0], finish[1]);
  });
  EXPECT_NEAR(best.objective, 10.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Property 1 backing sweep: EDF == exhaustive optimum for max tardiness.
// ---------------------------------------------------------------------------

class EdfOptimality : public ::testing::TestWithParam<int> {};

TEST_P(EdfOptimality, EdfMatchesExhaustiveOptimum) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  const int n = 2 + static_cast<int>(rng.uniform_int(5));  // up to 6 flows
  std::vector<MiniFlow> flows;
  for (int i = 0; i < n; ++i) {
    MiniFlow f;
    f.release = rng.uniform(0.0, 5.0);
    f.size = rng.uniform(0.5, 5.0);
    f.deadline = f.release + rng.uniform(0.0, 5.0);
    flows.push_back(f);
  }
  const double cap = rng.uniform(0.5, 3.0);

  const auto edf = simulate_edf(flows, cap);
  const double edf_obj = max_tardiness(flows, edf);
  const auto best = exhaustive_best(flows, cap, [&](const auto& finish) {
    return max_tardiness(flows, finish);
  });
  EXPECT_LE(edf_obj, best.objective + 1e-7)
      << "EDF must be optimal for max tardiness (Horn 1974)";
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, EdfOptimality,
                         ::testing::Range(0, 60));

}  // namespace
}  // namespace echelon::ef
