// Unit tests for the Varys-style Coflow scheduler (SEBF + MADD).

#include <gtest/gtest.h>

#include "echelon/coflow_madd.hpp"
#include "netsim/simulator.hpp"
#include "topology/builders.hpp"

namespace echelon::ef {
namespace {

using netsim::FlowSpec;
using netsim::Simulator;

struct CoflowFixture : ::testing::Test {
  CoflowFixture()
      : fabric(topology::make_big_switch(6, 10.0)), sim(&fabric.topo) {
    sim.set_scheduler(&sched);
  }
  topology::BuiltFabric fabric;
  Simulator sim;
  CoflowMaddScheduler sched;

  FlowId submit(std::size_t src, std::size_t dst, Bytes size,
                std::uint64_t group) {
    return sim.submit_flow(FlowSpec{.src = fabric.hosts[src],
                                    .dst = fabric.hosts[dst],
                                    .size = size,
                                    .group = EchelonFlowId{group}});
  }
};

TEST_F(CoflowFixture, NoFlowFinishesAfterGamma) {
  // One coflow, two flows of different sizes on disjoint port pairs. With
  // work conservation (Varys backfilling) the small flow may finish early,
  // but nothing finishes after the bottleneck completion time Gamma = 4.
  const FlowId a = submit(0, 1, 40.0, 0);
  const FlowId b = submit(2, 3, 10.0, 0);
  sim.run();
  EXPECT_NEAR(sim.flow(a).finish_time, 4.0, 1e-9);
  EXPECT_NEAR(sim.flow(b).finish_time, 1.0, 1e-9);  // backfilled to full rate
}

TEST_F(CoflowFixture, SharedPortStretchesGamma) {
  // Two flows of one coflow into the same ingress: Gamma = total/cap.
  const FlowId a = submit(0, 2, 30.0, 0);
  const FlowId b = submit(1, 2, 10.0, 0);
  sim.run();
  EXPECT_NEAR(sim.flow(a).finish_time, 4.0, 1e-9);
  EXPECT_NEAR(sim.flow(b).finish_time, 4.0, 1e-9);
}

TEST_F(CoflowFixture, SebfPrioritizesNarrowCoflow) {
  // Coflow 0 needs 8 s standalone; coflow 1 needs 1 s. SEBF runs coflow 1
  // first; coflow 0 is starved meanwhile on the shared port.
  const FlowId big = submit(0, 1, 80.0, 0);
  const FlowId small = submit(0, 1, 10.0, 1);
  sim.run();
  EXPECT_NEAR(sim.flow(small).finish_time, 1.0, 1e-9);
  EXPECT_NEAR(sim.flow(big).finish_time, 9.0, 1e-9);
}

TEST_F(CoflowFixture, WorkConservationUsesResidualPorts) {
  // Coflow 1 (higher priority, tiny) only uses ports 0->1; coflow 0's flow
  // on 2->3 is unobstructed and must run at full rate despite lower rank.
  const FlowId blocked = submit(0, 1, 80.0, 0);
  const FlowId free = submit(2, 3, 80.0, 0);
  const FlowId tiny = submit(0, 1, 10.0, 1);
  sim.run();
  EXPECT_NEAR(sim.flow(tiny).finish_time, 1.0, 1e-9);
  // `free` shares no port with `tiny`: bottleneck is its own coflow's
  // Gamma = 8 (Gamma is per-coflow; MADD paces both members together).
  EXPECT_NEAR(sim.flow(free).finish_time, 8.0, 1e-9);
  EXPECT_NEAR(sim.flow(blocked).finish_time, 9.0, 1e-9);
}

TEST_F(CoflowFixture, UngroupedFlowsActAsSingletons) {
  const FlowId a = sim.submit_flow(FlowSpec{
      .src = fabric.hosts[0], .dst = fabric.hosts[1], .size = 10.0});
  sim.run();
  EXPECT_NEAR(sim.flow(a).finish_time, 1.0, 1e-9);
}

TEST_F(CoflowFixture, DynamicArrivalRebalances) {
  // Fig. 2's coflow panel in miniature: staggered arrivals of one coflow
  // re-pace so all finish together.
  const FlowId a = submit(0, 1, 20.0, 0);
  sim.schedule_at(1.0, [this](Simulator&) { submit(2, 1, 20.0, 0); });
  sim.run();
  // t=1: a sent 10, rem 10; b rem 20. Shared ingress port: Gamma = 3.
  // Both finish at t = 4.
  EXPECT_NEAR(sim.flow(a).finish_time, 4.0, 1e-9);
  EXPECT_NEAR(sim.flow(FlowId{1}).finish_time, 4.0, 1e-9);
}

TEST(CoflowMaddNonWorkConserving, LeavesSlackUnused) {
  auto fabric = topology::make_big_switch(4, 10.0);
  Simulator sim(&fabric.topo);
  CoflowMaddScheduler sched({.work_conserving = false});
  sim.set_scheduler(&sched);
  // Single coflow bottlenecked on port 0->1 (40 bytes); the 2->3 member
  // (10 bytes) is paced to the same Gamma even though its ports are idle.
  const FlowId a = sim.submit_flow(FlowSpec{.src = fabric.hosts[0],
                                            .dst = fabric.hosts[1],
                                            .size = 40.0,
                                            .group = EchelonFlowId{0}});
  const FlowId b = sim.submit_flow(FlowSpec{.src = fabric.hosts[2],
                                            .dst = fabric.hosts[3],
                                            .size = 10.0,
                                            .group = EchelonFlowId{0}});
  sim.run();
  EXPECT_NEAR(sim.flow(a).finish_time, 4.0, 1e-9);
  EXPECT_NEAR(sim.flow(b).finish_time, 4.0, 1e-9);
  EXPECT_NEAR(sim.flow(b).completion_time(), 4.0, 1e-9);
}

}  // namespace
}  // namespace echelon::ef
