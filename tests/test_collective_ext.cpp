// Tests for the extended collective algorithms: recursive halving-doubling
// and binomial-tree, plus the backend facade's algorithm selection.

#include <gtest/gtest.h>

#include "collective/hd.hpp"
#include "collective/tree.hpp"
#include "netsim/simulator.hpp"
#include "runtime/backend.hpp"
#include "topology/builders.hpp"

namespace echelon::collective {
namespace {

using netsim::Simulator;
using netsim::Workflow;
using netsim::WorkflowEngine;

struct HdFixture : ::testing::Test {
  static constexpr double kCap = 10.0;
  HdFixture() : fabric(topology::make_big_switch(4, kCap)), sim(&fabric.topo) {}

  SimTime run_to(Workflow& wf, netsim::WfNodeId done) {
    WorkflowEngine eng(&sim, &wf);
    eng.launch(0.0);
    sim.run();
    EXPECT_TRUE(eng.finished());
    return eng.node_finish(done);
  }

  topology::BuiltFabric fabric;
  Simulator sim;
};

TEST(HdHelpers, PowerOfTwo) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_TRUE(is_power_of_two(8));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(6));
}

TEST_F(HdFixture, ReduceScatterStructure) {
  Workflow wf;
  FlowTag tag{.job = JobId{0}, .group = EchelonFlowId{0}};
  const auto h = hd_reduce_scatter(wf, fabric.hosts, 40.0, tag, "t");
  // log2(4) = 2 rounds x 4 ranks = 8 flows.
  EXPECT_EQ(h.flow_nodes.size(), 8u);
  // Round 0: half the data to the partner at distance 2.
  EXPECT_DOUBLE_EQ(wf.node(h.flow_nodes[0]).flow.size, 20.0);
  EXPECT_EQ(wf.node(h.flow_nodes[0]).flow.dst, fabric.hosts[2]);
  // Round 1: quarter of the data at distance 1.
  EXPECT_DOUBLE_EQ(wf.node(h.flow_nodes[4]).flow.size, 10.0);
  EXPECT_EQ(wf.node(h.flow_nodes[4]).flow.dst, fabric.hosts[1]);
  EXPECT_TRUE(wf.is_acyclic());
}

TEST_F(HdFixture, AllReduceMovesSameBytesAsRing) {
  // Both algorithms are bandwidth-optimal: (m-1)/m * G per rank per phase,
  // so on a latency-free big switch they take the same time.
  Workflow wf;
  FlowTag tag{.job = JobId{0}, .group = EchelonFlowId{0}};
  const double G = 40.0;
  const auto h = hd_all_reduce(wf, fabric.hosts, G, tag, "ar");
  EXPECT_EQ(h.flow_nodes.size(), 16u);  // 2 phases x 2 rounds x 4 ranks
  const SimTime t = run_to(wf, h.done);
  EXPECT_NEAR(t, 2.0 * 3.0 * (G / 4.0) / kCap, 1e-9);  // == ring time
}

TEST_F(HdFixture, RoundsSerializeOnReceivedData) {
  Workflow wf;
  FlowTag tag{.job = JobId{0}, .group = EchelonFlowId{0}};
  const auto h = hd_all_gather(wf, fabric.hosts, 40.0, tag, "ag");
  // Round-1 send of rank 0 depends on round-0 send of its round-0 partner
  // (rank 1 at distance 1... for all-gather round 0 distance is 1).
  const netsim::WfNodeId r1_n0 = h.flow_nodes[4];
  const netsim::WfNodeId r0_n1 = h.flow_nodes[1];
  bool found = false;
  for (auto succ : wf.node(r0_n1).successors) found |= succ == r1_n0;
  EXPECT_TRUE(found);
}

TEST_F(HdFixture, TreeBroadcastStructureAndTiming) {
  Workflow wf;
  FlowTag tag{.job = JobId{0}, .group = EchelonFlowId{0}};
  const auto h = tree_broadcast(wf, fabric.hosts, 40.0, tag, "m");
  EXPECT_EQ(h.flow_nodes.size(), 3u);  // m-1 edges
  const SimTime t = run_to(wf, h.done);
  // Ranks 1 and 2 receive from the root concurrently (sharing its egress
  // port: 5 B/s each -> done at 8); rank 3 receives from rank 2 afterwards
  // at full rate (4 s) -> 12.
  EXPECT_NEAR(t, 12.0, 1e-9);
}

TEST_F(HdFixture, TreeReduceMirrorsBroadcast) {
  Workflow wf;
  FlowTag tag{.job = JobId{0}, .group = EchelonFlowId{0}};
  const auto h = tree_reduce(wf, fabric.hosts, 40.0, tag, "m");
  EXPECT_EQ(h.flow_nodes.size(), 3u);
  // Ranks 1->0 and 3->2 run concurrently on disjoint ports (done at 4);
  // rank 2 forwards only after receiving rank 3's contribution: 4 + 4 = 8.
  const SimTime t = run_to(wf, h.done);
  EXPECT_NEAR(t, 8.0, 1e-9);
  // All payloads end at the root.
  int to_root = 0;
  for (auto n : h.flow_nodes) {
    to_root += wf.node(n).flow.dst == fabric.hosts[0];
  }
  EXPECT_EQ(to_root, 2);  // ranks 1 and 2 send to root; 3 sends to 2
}

TEST(BackendExt, GlooSelectsHalvingDoublingOnPowersOfTwo) {
  runtime::Backend gloo(runtime::BackendKind::kGloo);
  EXPECT_TRUE(gloo.uses_hd(4));
  EXPECT_FALSE(gloo.uses_hd(6));
  EXPECT_EQ(gloo.all_reduce_cardinality(4), 16);  // 2 * 4 * log2(4)
  EXPECT_EQ(gloo.all_reduce_cardinality(6), 60);  // ring fallback 2*6*5

  auto fabric = topology::make_big_switch(4, 10.0);
  netsim::Workflow wf;
  FlowTag tag{.job = JobId{0}, .group = EchelonFlowId{0}};
  const auto h = gloo.all_reduce(wf, fabric.hosts, 40.0, tag, "ar");
  EXPECT_EQ(static_cast<int>(h.flow_nodes.size()),
            gloo.all_reduce_cardinality(4));
}

}  // namespace
}  // namespace echelon::collective
