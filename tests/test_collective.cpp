// Unit tests for collective decomposition: flow counts, dependency
// structure, tagging, and end-to-end timing on a big-switch fabric.

#include <gtest/gtest.h>

#include "collective/p2p.hpp"
#include "collective/ps.hpp"
#include "collective/ring.hpp"
#include "netsim/simulator.hpp"
#include "topology/builders.hpp"

namespace echelon::collective {
namespace {

using netsim::Simulator;
using netsim::WfNodeId;
using netsim::Workflow;
using netsim::WorkflowEngine;

struct CollectiveFixture : ::testing::Test {
  static constexpr double kCap = 10.0;
  CollectiveFixture() : fabric(topology::make_big_switch(4, kCap)), sim(&fabric.topo) {}

  // Runs the workflow and returns the finish time of `done`.
  SimTime run_to(Workflow& wf, WfNodeId done) {
    WorkflowEngine eng(&sim, &wf);
    eng.launch(0.0);
    sim.run();
    EXPECT_TRUE(eng.finished());
    return eng.node_finish(done);
  }

  topology::BuiltFabric fabric;
  Simulator sim;
};

TEST_F(CollectiveFixture, RingReduceScatterFlowCount) {
  Workflow wf;
  FlowTag tag{.job = JobId{0}, .group = EchelonFlowId{0}};
  const auto h = ring_reduce_scatter(wf, fabric.hosts, 40.0, tag, "t");
  // (m-1) steps x m flows.
  EXPECT_EQ(h.flow_nodes.size(), 12u);
  EXPECT_EQ(tag.next_index, 12);
  // Every flow carries the group tag and a distinct index.
  for (std::size_t i = 0; i < h.flow_nodes.size(); ++i) {
    const auto& spec = wf.node(h.flow_nodes[i]).flow;
    EXPECT_EQ(spec.group, EchelonFlowId{0});
    EXPECT_EQ(spec.index_in_group, static_cast<int>(i));
    EXPECT_DOUBLE_EQ(spec.size, 10.0);  // G/m
  }
  EXPECT_TRUE(wf.is_acyclic());
}

TEST_F(CollectiveFixture, RingAllReduceTiming) {
  // Ring all-reduce of G bytes over m ports of capacity B takes
  // 2*(m-1)*G/(m*B): each step's m transfers run on disjoint port pairs.
  Workflow wf;
  FlowTag tag{.job = JobId{0}, .group = EchelonFlowId{0}};
  const double G = 40.0;
  const auto h = ring_all_reduce(wf, fabric.hosts, G, tag, "ar");
  EXPECT_EQ(h.flow_nodes.size(), 24u);  // 2 * (m-1) * m
  const SimTime t = run_to(wf, h.done);
  const double expected = 2.0 * 3.0 * (G / 4.0) / kCap;
  EXPECT_NEAR(t, expected, 1e-9);
}

TEST_F(CollectiveFixture, RingStepsSerializePerNodeDependency) {
  // The step-s+1 send of node i waits for the step-s send of node i-1.
  Workflow wf;
  FlowTag tag{.job = JobId{0}, .group = EchelonFlowId{0}};
  const auto h = ring_all_gather(wf, fabric.hosts, 40.0, tag, "ag");
  // Check one dependency explicitly: flow(step1, node0) has a predecessor
  // flow(step0, node3).
  const WfNodeId step1_n0 = h.flow_nodes[4 + 0];
  const WfNodeId step0_n3 = h.flow_nodes[3];
  bool found = false;
  for (WfNodeId succ : wf.node(step0_n3).successors) found |= succ == step1_n0;
  EXPECT_TRUE(found);
}

TEST_F(CollectiveFixture, AllGatherAloneTakesHalfAllReduce) {
  Workflow wf;
  FlowTag tag{.job = JobId{0}, .group = EchelonFlowId{0}};
  const double G = 40.0;
  const auto h = ring_all_gather(wf, fabric.hosts, G, tag, "ag");
  const SimTime t = run_to(wf, h.done);
  EXPECT_NEAR(t, 3.0 * (G / 4.0) / kCap, 1e-9);
}

TEST_F(CollectiveFixture, PsPushBottlenecksAtIngress) {
  Workflow wf;
  FlowTag tag{.job = JobId{0}, .group = EchelonFlowId{0}};
  std::vector<NodeId> workers{fabric.hosts[0], fabric.hosts[1],
                              fabric.hosts[2]};
  const auto h = ps_push(wf, workers, fabric.hosts[3], 30.0, tag, "ps");
  EXPECT_EQ(h.flow_nodes.size(), 3u);
  const SimTime t = run_to(wf, h.done);
  // 3 x 30 bytes through one 10 B/s ingress port.
  EXPECT_NEAR(t, 9.0, 1e-9);
}

TEST_F(CollectiveFixture, PsPullBottlenecksAtEgress) {
  Workflow wf;
  FlowTag tag{.job = JobId{0}, .group = EchelonFlowId{0}};
  std::vector<NodeId> workers{fabric.hosts[0], fabric.hosts[1],
                              fabric.hosts[2]};
  const auto h = ps_pull(wf, workers, fabric.hosts[3], 20.0, tag, "ps");
  const SimTime t = run_to(wf, h.done);
  EXPECT_NEAR(t, 6.0, 1e-9);
  // Directions: PS is the source.
  for (const WfNodeId n : h.flow_nodes) {
    EXPECT_EQ(wf.node(n).flow.src, fabric.hosts[3]);
  }
}

TEST_F(CollectiveFixture, P2pSingleFlow) {
  Workflow wf;
  FlowTag tag{.job = JobId{3}, .group = EchelonFlowId{9}};
  const auto h = p2p(wf, fabric.hosts[0], fabric.hosts[1], 25.0, tag, "x");
  ASSERT_EQ(h.flow_nodes.size(), 1u);
  EXPECT_EQ(wf.node(h.flow_nodes[0]).flow.job, JobId{3});
  const SimTime t = run_to(wf, h.done);
  EXPECT_NEAR(t, 2.5, 1e-9);
}

TEST_F(CollectiveFixture, AllToAllCountsAndTiming) {
  Workflow wf;
  FlowTag tag{.job = JobId{0}, .group = EchelonFlowId{0}};
  const auto h = all_to_all(wf, fabric.hosts, 10.0, tag, "a2a");
  EXPECT_EQ(h.flow_nodes.size(), 12u);  // m*(m-1)
  const SimTime t = run_to(wf, h.done);
  // Each port sends and receives 3 x 10 bytes at 10 B/s.
  EXPECT_NEAR(t, 3.0, 1e-9);
}

TEST_F(CollectiveFixture, SignatureBaseStampsDistinctSignatures) {
  Workflow wf;
  FlowTag tag{.job = JobId{0},
              .group = EchelonFlowId{0},
              .signature_base = 1000};
  const auto h = ps_push(wf, {fabric.hosts[0], fabric.hosts[1]},
                         fabric.hosts[2], 5.0, tag, "s");
  EXPECT_EQ(wf.node(h.flow_nodes[0]).flow.signature, 1000u);
  EXPECT_EQ(wf.node(h.flow_nodes[1]).flow.signature, 1001u);
}

TEST_F(CollectiveFixture, NoSignatureBaseMeansZero) {
  Workflow wf;
  FlowTag tag{.job = JobId{0}, .group = EchelonFlowId{0}};
  const auto h = p2p(wf, fabric.hosts[0], fabric.hosts[1], 5.0, tag, "s");
  EXPECT_EQ(wf.node(h.flow_nodes[0]).flow.signature, 0u);
}

TEST_F(CollectiveFixture, ChainedCollectivesRespectBarriers) {
  // reduce-scatter completion gates the all-gather start inside all-reduce.
  Workflow wf;
  FlowTag tag{.job = JobId{0}, .group = EchelonFlowId{0}};
  const auto h = ring_all_reduce(wf, fabric.hosts, 40.0, tag, "ar");
  WorkflowEngine eng(&sim, &wf);
  eng.launch(0.0);
  sim.run();
  // First all-gather flow (index 12) starts exactly when the last
  // reduce-scatter flow finishes.
  SimTime last_rs = 0.0;
  for (std::size_t i = 0; i < 12; ++i) {
    last_rs = std::max(last_rs, eng.node_finish(h.flow_nodes[i]));
  }
  EXPECT_NEAR(eng.node_start(h.flow_nodes[12]), last_rs, 1e-9);
}

}  // namespace
}  // namespace echelon::collective
