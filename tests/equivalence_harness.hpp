// Shared harness for the golden-equivalence suites.
//
// Three production fast paths promise *bit identity* with their reference
// implementations: the dense-state schedulers/allocator
// (tests/test_dense_equivalence.cpp), the lazy event loop
// (tests/test_simloop_equivalence.cpp) and the incremental allocator
// (tests/test_alloc_equivalence.cpp) -- and since the fault-injection
// subsystem, all of the above must stay bit-identical *under fire*
// (tests/test_faults.cpp). Every suite needs the same scaffolding:
//
//   - an allocation-counting operator-new hook (off under ASan/TSan),
//   - a bitwise ExperimentResult comparator,
//   - the small randomized cluster trace + a run_cluster(jobs, RunSpec)
//     entry point spanning the full scheduler x fabric x SimLoopMode x
//     AllocMode (x FaultPlan) matrix,
//   - the scheduler x fabric gtest param fixture with its name generator,
//   - the simulator-level randomized completion-trace scenario.
//
// This header is that scaffolding, defined once. Each test binary is a
// single translation unit, so the global operator new replacement below is
// defined exactly once per binary (replacement functions must not be
// inline; do not include this header from more than one TU of a binary).

#pragma once

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <tuple>
#include <vector>

#include "cluster/experiment.hpp"
#include "cluster/trace.hpp"
#include "common/pool.hpp"
#include "common/rng.hpp"
#include "echelon/coflow_madd.hpp"
#include "echelon/echelon_madd.hpp"
#include "echelon/registry.hpp"
#include "echelon/sincronia.hpp"
#include "echelon/srpt.hpp"
#include "faultsim/fault_plan.hpp"
#include "netsim/allocator.hpp"
#include "netsim/simulator.hpp"
#include "topology/builders.hpp"

// --- allocation-counting hook -----------------------------------------------
// Replaces the (unaligned) global new/delete with counting versions. Counting
// is off by default so gtest bookkeeping does not pollute the numbers.
//
// Disabled under ASan/TSan: the malloc-backed replacements fight the
// sanitizer allocator interceptors (operator-new-vs-free mismatch reports
// for allocations crossing the gtest shared-library boundary). Zero-
// allocation assertions become runtime skips there; UBSan keeps the hook
// live.

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define ECHELON_ALLOC_HOOK 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define ECHELON_ALLOC_HOOK 0
#else
#define ECHELON_ALLOC_HOOK 1
#endif
#else
#define ECHELON_ALLOC_HOOK 1
#endif

namespace echelon::eqh {
inline std::atomic<bool> g_count_allocs{false};
inline std::atomic<std::uint64_t> g_alloc_count{0};

inline void alloc_count_begin() {
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
}
[[nodiscard]] inline std::uint64_t alloc_count_end() {
  g_count_allocs.store(false, std::memory_order_relaxed);
  return g_alloc_count.load(std::memory_order_relaxed);
}
}  // namespace echelon::eqh

#if ECHELON_ALLOC_HOOK
// The replacements are malloc/free-backed by design; GCC's
// -Wmismatched-new-delete cannot see that new and delete were *both*
// replaced and flags every delete of a counted pointer.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  if (echelon::eqh::g_count_allocs.load(std::memory_order_relaxed)) {
    echelon::eqh::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
#endif  // ECHELON_ALLOC_HOOK

// Bitwise double equality (0.0 vs -0.0 and NaN-safety is not needed: the
// simulator never produces either at an observation point; plain == gives
// the strictest portable check with readable gtest failure output).
#define EXPECT_BITEQ(a, b) EXPECT_EQ(a, b)

namespace echelon::eqh {

// ============================================================================
// Cluster-level runs
// ============================================================================

// One point in the equivalence matrix. Everything beyond scheduler/fabric
// defaults to the production configuration; equivalence tests vary exactly
// one axis (or compare whole-matrix crosses) while holding jobs fixed.
struct RunSpec {
  cluster::SchedulerKind scheduler = cluster::SchedulerKind::kEchelonMadd;
  cluster::FabricKind fabric = cluster::FabricKind::kBigSwitch;
  netsim::SimLoopMode loop = netsim::SimLoopMode::kLazy;
  netsim::AllocMode alloc = netsim::AllocMode::kIncremental;
  // Water-fill granularity -- the axis the route-class differential suite
  // (tests/test_route_class_equivalence.cpp) sweeps: kClass and kPerFlow
  // must produce bit-identical results and trace streams.
  netsim::FillMode fill = netsim::FillMode::kClass;
  const faultsim::FaultPlan* plan = nullptr;  // nullptr = fault-free
  // Intra-run parallelism width (ExperimentConfig::threads): 1 = serial,
  // 0 = every shared-pool participant, N = at most N. Results must be
  // bit-identical at every setting -- that IS the axis
  // tests/test_parallel_equivalence.cpp sweeps.
  unsigned threads = 1;
  // Control-plane recomputation mode -- the axis
  // tests/test_churn_equivalence.cpp sweeps: kIncremental (dirty-job-scoped
  // scheduler passes) and kFullRecompute must produce bit-identical results
  // and trace streams.
  netsim::SchedMode sched_mode = netsim::SchedMode::kIncremental;
  // Non-zero: seeded external weight churn through the Flow notification
  // setters during the run (ExperimentConfig::churn_seed); exercises the
  // pre-control control_dirty scan -> job-mark path.
  std::uint64_t churn_seed = 0;
  // Optional structured-event capture (differential suites compare whole
  // streams, not just end-of-run aggregates).
  obs::TraceSink* trace_sink = nullptr;
  obs::TraceDetail trace_detail = obs::TraceDetail::kFlow;
};

inline cluster::ExperimentResult run_cluster(
    const std::vector<cluster::JobSpec>& jobs, const RunSpec& spec) {
  cluster::ExperimentConfig cfg;
  cfg.scheduler = spec.scheduler;
  cfg.fabric = spec.fabric;
  cfg.hosts = 16;
  cfg.port_capacity = gbps(25);
  cfg.oversubscription =
      spec.fabric == cluster::FabricKind::kLeafSpine ? 2.0 : 1.0;
  cfg.loop_mode = spec.loop;
  cfg.alloc_mode = spec.alloc;
  cfg.fill_mode = spec.fill;
  cfg.fault_plan = spec.plan;
  cfg.threads = spec.threads;
  cfg.sched_mode = spec.sched_mode;
  cfg.churn_seed = spec.churn_seed;
  if (spec.trace_sink != nullptr) {
    cfg.trace_sink = spec.trace_sink;
    cfg.trace_detail = spec.trace_detail;
  }
  return cluster::run_experiment(jobs, cfg);
}

// Bitwise trace-stream comparator for differential suites: both recorders
// must have seen the same events in the same order, field for field
// (timestamps and values compared as exact doubles), plus identical
// cumulative per-kind counts (which include ring-dropped events). Size the
// recorders so nothing drops, or the retained-window comparison weakens.
inline void expect_same_trace(const obs::TraceRecorder& a,
                              const obs::TraceRecorder& b) {
  EXPECT_EQ(a.recorded(), b.recorded());
  for (std::size_t k = 0; k < obs::kTraceKindCount; ++k) {
    EXPECT_EQ(a.count(static_cast<obs::TraceKind>(k)),
              b.count(static_cast<obs::TraceKind>(k)))
        << "kind " << obs::to_string(static_cast<obs::TraceKind>(k));
  }
  const std::vector<obs::TraceEvent> ea = a.events();
  const std::vector<obs::TraceEvent> eb = b.events();
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].kind, eb[i].kind) << "event " << i;
    EXPECT_BITEQ(ea[i].t, eb[i].t) << "event " << i;
    EXPECT_EQ(ea[i].id, eb[i].id) << "event " << i;
    EXPECT_EQ(ea[i].job, eb[i].job) << "event " << i;
    EXPECT_EQ(ea[i].ctx, eb[i].ctx) << "event " << i;
    EXPECT_BITEQ(ea[i].value, eb[i].value) << "event " << i;
  }
}

// The fabric run_cluster builds for chaos-profile target selection (must
// match run_experiment's shape for the given RunSpec fabric/hosts).
inline topology::BuiltFabric run_cluster_fabric(cluster::FabricKind fabric) {
  if (fabric == cluster::FabricKind::kBigSwitch) {
    return topology::make_big_switch(16, gbps(25));
  }
  return topology::make_leaf_spine({.leaves = 2,
                                    .spines = 2,
                                    .hosts_per_leaf = 8,
                                    .host_link = gbps(25),
                                    .uplink = 8 * gbps(25) / (2 * 2.0)});
}

// The single bit-identical comparator: every deterministic ExperimentResult
// field must agree to the bit (wall_ms is host timing and excluded). Fault
// counters are part of the contract -- two runs of the same plan in
// different modes must make identical reroute/park/abandon decisions.
inline void expect_same_result(const cluster::ExperimentResult& a,
                               const cluster::ExperimentResult& b) {
  EXPECT_EQ(a.scheduler_name, b.scheduler_name);
  EXPECT_BITEQ(a.makespan, b.makespan);
  EXPECT_BITEQ(a.total_tardiness, b.total_tardiness);
  EXPECT_BITEQ(a.weighted_total_tardiness, b.weighted_total_tardiness);
  EXPECT_EQ(a.control_invocations, b.control_invocations);
  EXPECT_EQ(a.heuristic_runs, b.heuristic_runs);
  EXPECT_EQ(a.reuse_hits, b.reuse_hits);
  EXPECT_EQ(a.fault_events, b.fault_events);
  EXPECT_EQ(a.flow_reroutes, b.flow_reroutes);
  EXPECT_EQ(a.flow_parks, b.flow_parks);
  EXPECT_EQ(a.flow_retries, b.flow_retries);
  EXPECT_EQ(a.flows_abandoned, b.flows_abandoned);
  EXPECT_BITEQ(a.flow_downtime, b.flow_downtime);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    const auto& ja = a.jobs[j];
    const auto& jb = b.jobs[j];
    EXPECT_EQ(ja.job, jb.job);
    EXPECT_EQ(ja.description, jb.description);
    EXPECT_BITEQ(ja.arrival, jb.arrival);
    EXPECT_BITEQ(ja.finish, jb.finish);
    EXPECT_BITEQ(ja.mean_gpu_idle_fraction, jb.mean_gpu_idle_fraction);
    ASSERT_EQ(ja.iteration_times.size(), jb.iteration_times.size());
    for (std::size_t k = 0; k < ja.iteration_times.size(); ++k) {
      EXPECT_BITEQ(ja.iteration_times[k], jb.iteration_times[k]);
    }
  }
}

// The small multi-paradigm trace every cluster-level equivalence test runs.
inline std::vector<cluster::JobSpec> small_trace(std::uint64_t seed,
                                                 double jitter = 0.0) {
  cluster::TraceConfig tcfg;
  tcfg.num_jobs = 6;
  tcfg.seed = seed;
  tcfg.arrival_rate = 3.0;
  tcfg.iterations = 2;
  tcfg.min_width = 1024;
  tcfg.max_width = 2048;
  tcfg.rank_choices = {2, 4};
  auto jobs = cluster::generate_trace(tcfg);
  if (jitter > 0.0) {
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      jobs[j].compute_jitter = jitter;
      jobs[j].jitter_seed = seed * 1000 + j;  // per-job stream
    }
  }
  return jobs;
}

// Streaming-churn trace (EXPERIMENTS.md EXT-R): more, smaller jobs with
// tightly overlapping Poisson arrivals, so the control plane sees a steady
// stream of per-job dirty marks (arrivals, completions) rather than the
// mostly-steady membership of small_trace. The churn-equivalence suite runs
// these with RunSpec::churn_seed set as well, layering external setter
// churn on top of the membership churn.
inline std::vector<cluster::JobSpec> churn_trace(std::uint64_t seed) {
  cluster::TraceConfig tcfg;
  tcfg.num_jobs = 10;
  tcfg.seed = seed;
  tcfg.arrival_rate = 8.0;  // dense overlap: several jobs in flight at once
  tcfg.iterations = 2;
  tcfg.min_width = 512;
  tcfg.max_width = 1024;
  tcfg.rank_choices = {2, 3, 4};
  return cluster::generate_trace(tcfg);
}

// Seed budget for the randomized differential sweeps: CI sets the env var
// (e.g. ECHELON_CHURN_SEEDS) low on sanitizer legs and leaves the larger
// default for the plain legs.
[[nodiscard]] inline int env_seed_budget(const char* name, int def) {
  if (const char* s = std::getenv(name)) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return def;
}

// ============================================================================
// The scheduler x fabric param fixture
// ============================================================================

using SchedFabricParam = std::tuple<cluster::SchedulerKind, cluster::FabricKind>;

class SchedFabricTest : public ::testing::TestWithParam<SchedFabricParam> {};

inline auto all_sched_fabric_params() {
  return ::testing::Combine(
      ::testing::Values(cluster::SchedulerKind::kFairSharing,
                        cluster::SchedulerKind::kSrpt,
                        cluster::SchedulerKind::kCoflowMadd,
                        cluster::SchedulerKind::kSincronia,
                        cluster::SchedulerKind::kEchelonMadd,
                        cluster::SchedulerKind::kCoordinator),
      ::testing::Values(cluster::FabricKind::kBigSwitch,
                        cluster::FabricKind::kLeafSpine));
}

inline std::string sched_fabric_name(
    const ::testing::TestParamInfo<SchedFabricParam>& info) {
  std::string name = cluster::to_string(std::get<0>(info.param));
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  name += std::get<1>(info.param) == cluster::FabricKind::kBigSwitch
              ? "_bigswitch"
              : "_leafspine";
  return name;
}

// Instantiates a TEST_P suite over all six schedulers x both fabrics.
// `Suite` must be SchedFabricTest or an alias of it.
#define ECHELON_INSTANTIATE_SCHED_FABRIC(Suite)                        \
  INSTANTIATE_TEST_SUITE_P(AllSchedulersBothFabrics, Suite,            \
                           ::echelon::eqh::all_sched_fabric_params(),  \
                           ::echelon::eqh::sched_fabric_name)

// ============================================================================
// Simulator-level bitwise result comparator
// ============================================================================

// Trimmed-down result for suites that drive the Simulator directly (no
// cluster layer): every flow's completion time in FlowId order plus the
// registry aggregates. The overload below is the third face of the one
// bitwise-comparison contract (ExperimentResult, trace streams, SimResult).
struct SimResult {
  std::vector<SimTime> finish;
  Duration tardiness = 0.0;
  SimTime makespan = 0.0;
};

inline void expect_same_result(const SimResult& a, const SimResult& b,
                               const std::string& tag) {
  SCOPED_TRACE(tag);
  EXPECT_BITEQ(a.makespan, b.makespan);
  EXPECT_BITEQ(a.tardiness, b.tardiness);
  ASSERT_EQ(a.finish.size(), b.finish.size());
  for (std::size_t i = 0; i < a.finish.size(); ++i) {
    EXPECT_BITEQ(a.finish[i], b.finish[i]) << tag << " flow " << i;
  }
}

// ============================================================================
// Direct-drive twin differential driver
// ============================================================================
// The same address-stable flow population driven through two scheduler
// instances (typically one kIncremental, one kFullRecompute) with per-round
// dirty marks, membership churn and capacity churn -- every flow's
// weight/rate_cap compared bitwise after every pass. Owned here so the
// churn-equivalence suite and the service suite exercise the identical
// driver (tests/test_churn_equivalence.cpp section 3 documents the rounds).

// Foreign-flow population: `jobs` link-disjoint kTwinMembers-member pipeline
// EchelonFlows, each with its own JobId and host range. Foreign flows (ids
// outside the simulator's table) exercise the hint-pointer binding path of
// the incremental caches.
inline constexpr int kTwinMembers = 8;

struct TwinPopulation {
  topology::BuiltFabric fabric;
  std::unique_ptr<netsim::Simulator> sim;
  ef::Registry reg;
  std::vector<netsim::Flow> flows;

  explicit TwinPopulation(int jobs)
      : fabric(
            topology::make_big_switch(jobs * (kTwinMembers + 1), gbps(100))),
        sim(std::make_unique<netsim::Simulator>(&fabric.topo)) {
    flows.reserve(static_cast<std::size_t>(jobs) * kTwinMembers);
    for (int j = 0; j < jobs; ++j) {
      const EchelonFlowId efid = reg.create(
          JobId{static_cast<std::uint64_t>(j)},
          ef::Arrangement::pipeline(kTwinMembers, 0.01));
      for (int m = 0; m < kTwinMembers; ++m) {
        netsim::Flow f;
        f.id = FlowId{static_cast<std::uint64_t>(flows.size())};
        f.spec.job = JobId{static_cast<std::uint64_t>(j)};
        f.spec.group = efid;
        f.spec.index_in_group = m;
        f.spec.size = 1e8 + 1e6 * static_cast<double>(j * kTwinMembers + m);
        f.remaining = f.spec.size;
        const auto src = fabric.hosts[static_cast<std::size_t>(
            j * (kTwinMembers + 1) + m)];
        const auto dst = fabric.hosts[static_cast<std::size_t>(
            j * (kTwinMembers + 1) + m + 1)];
        f.path = *fabric.topo.route(src, dst, flows.size());
        reg.get(efid).note_start(m, f.id, f.spec.size,
                                 0.001 * static_cast<double>(m));
        flows.push_back(std::move(f));
      }
    }
  }
};

enum class TwinPolicy { kEchelonMadd, kSrpt, kCoflowMadd, kSincronia };

inline const char* to_string(TwinPolicy k) {
  switch (k) {
    case TwinPolicy::kEchelonMadd: return "echelonflow-madd";
    case TwinPolicy::kSrpt: return "srpt";
    case TwinPolicy::kCoflowMadd: return "coflow-madd";
    case TwinPolicy::kSincronia: return "sincronia";
  }
  return "?";
}

// One population + one scheduler instance, driven directly (no event loop):
// the harness delivers arrival/departure hooks and dirty marks exactly as
// the Simulator would.
struct Twin {
  TwinPopulation pop;
  std::unique_ptr<netsim::NetworkScheduler> sched;
  std::vector<netsim::Flow*> active;

  Twin(int jobs, TwinPolicy kind, netsim::SchedMode mode) : pop(jobs) {
    switch (kind) {
      case TwinPolicy::kEchelonMadd:
        sched = std::make_unique<ef::EchelonMaddScheduler>(&pop.reg);
        break;
      case TwinPolicy::kSrpt:
        sched = std::make_unique<ef::SrptScheduler>();
        break;
      case TwinPolicy::kCoflowMadd:
        sched = std::make_unique<ef::CoflowMaddScheduler>();
        break;
      case TwinPolicy::kSincronia:
        sched = std::make_unique<ef::SincroniaScheduler>();
        break;
    }
    sched->set_sched_mode(mode);
    for (netsim::Flow& f : pop.flows) {
      active.push_back(&f);
      sched->on_flow_arrival(*pop.sim, f);
      sched->mark_job_dirty(f.spec.job);
    }
  }

  void depart(std::size_t idx) {
    netsim::Flow* f = active[idx];
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(idx));
    sched->on_flow_departure(*pop.sim, *f);
    sched->mark_job_dirty(f->spec.job);
  }

  void arrive(netsim::Flow* f) {
    // Span order is ascending FlowId in the simulator; keep it sorted.
    auto it = active.begin();
    while (it != active.end() && (*it)->id < f->id) ++it;
    active.insert(it, f);
    sched->on_flow_arrival(*pop.sim, *f);
    sched->mark_job_dirty(f->spec.job);
  }

  void control() { sched->control(*pop.sim, active); }
};

inline void expect_same_decisions(const Twin& a, const Twin& b, int round) {
  ASSERT_EQ(a.pop.flows.size(), b.pop.flows.size());
  for (std::size_t i = 0; i < a.pop.flows.size(); ++i) {
    const netsim::Flow& fa = a.pop.flows[i];
    const netsim::Flow& fb = b.pop.flows[i];
    EXPECT_BITEQ(fa.weight, fb.weight) << "flow " << i << " round " << round;
    ASSERT_EQ(fa.rate_cap.has_value(), fb.rate_cap.has_value())
        << "flow " << i << " round " << round;
    if (fa.rate_cap.has_value()) {
      EXPECT_BITEQ(*fa.rate_cap, *fb.rate_cap)
          << "flow " << i << " round " << round;
    }
  }
}

// ============================================================================
// Simulator-level randomized completion-trace scenarios
// ============================================================================

struct TraceEvent {
  std::uint64_t flow;
  double finish;
  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

struct ScenarioOptions {
  netsim::SimLoopMode loop = netsim::SimLoopMode::kLazy;
  netsim::AllocMode alloc = netsim::AllocMode::kIncremental;
  int flows = 60;
  // Uneven run(deadline) stepping: exercises the deadline-stamp path
  // (progress must be materialized exactly so the resumed run continues
  // bit-for-bit).
  bool stepped = false;
  // Timers that degrade and restore random link capacities mid-run: the
  // capacity-epoch invalidation path of the incremental allocator.
  bool capacity_churn = false;
  netsim::NetworkScheduler* sched = nullptr;  // nullptr = fair sharing
  // Intra-run parallelism width (see RunSpec::threads). Crank `flows` past
  // the simulator's kParallelBatch (512 active) to exercise the wide
  // stamping / heap-prep paths, not just the allocator fill.
  unsigned threads = 1;
};

struct ScenarioOutcome {
  std::vector<TraceEvent> trace;
  netsim::RateAllocator::Stats alloc_stats;
};

// Randomized scenario: `flows` submissions at staggered times via timers,
// random endpoints (with deliberate src == dst loopback collisions: those
// get an infinite rate and exercise the post-reallocation retirement sweep)
// and log-normal sizes, plus no-op timers sprinkled in between (they force
// event iterations that must not perturb byte accounting). Returns the
// exact completion trace -- the sequence of (flow id, finish time) pairs --
// plus the allocator's cache telemetry.
inline ScenarioOutcome run_sim_scenario(std::uint64_t seed,
                                        const ScenarioOptions& opt) {
  auto fabric = topology::make_big_switch(8, gbps(10));
  netsim::Simulator sim(&fabric.topo, opt.loop, opt.alloc);
  if (opt.sched != nullptr) sim.set_scheduler(opt.sched);
  if (opt.threads != 1) {
    sim.set_parallelism(&ThreadPool::shared(), opt.threads);
  }

  ScenarioOutcome out;
  sim.add_flow_listener(
      [&out](netsim::Simulator&, const netsim::Flow& f) {
        out.trace.push_back({f.id.value(), f.finish_time});
      });

  Rng rng(seed);
  for (int i = 0; i < opt.flows; ++i) {
    const double at = rng.uniform() * 0.5;
    const auto src = fabric.hosts[rng.uniform_int(fabric.hosts.size())];
    const auto dst = fabric.hosts[rng.uniform_int(fabric.hosts.size())];
    const double size = 1e6 * std::exp(2.0 * rng.normal());
    sim.schedule_at(at, [src, dst, size, i](netsim::Simulator& s) {
      netsim::FlowSpec spec;
      spec.src = src;
      spec.dst = dst;
      spec.size = size;
      spec.label = "t" + std::to_string(i);
      s.submit_flow(std::move(spec));
    });
    // No-op timer at an unrelated instant: forces an event iteration with no
    // allocation change.
    sim.schedule_at(rng.uniform() * 0.7, [](netsim::Simulator&) {});
  }

  if (opt.capacity_churn) {
    // Degrade a random host port at a random instant, restore it later.
    // Mutating the topology from a timer models mid-run failures; the
    // simulator is told via invalidate_allocation(), and the incremental
    // allocator must additionally notice through its capacity-epoch
    // fingerprint that every cached record is stale.
    topology::Topology* topo = &fabric.topo;
    for (int k = 0; k < 6; ++k) {
      const auto lid = LinkId{rng.uniform_int(fabric.topo.link_count())};
      const double full = fabric.topo.link(lid).capacity;
      const double degraded = full * (0.25 + 0.5 * rng.uniform());
      const double t_fail = 0.05 + rng.uniform() * 0.3;
      const double t_heal = t_fail + 0.05 + rng.uniform() * 0.2;
      sim.schedule_at(t_fail, [topo, lid, degraded](netsim::Simulator& s) {
        topo->set_link_capacity(lid, degraded);
        s.invalidate_allocation();
      });
      sim.schedule_at(t_heal, [topo, lid, full](netsim::Simulator& s) {
        topo->set_link_capacity(lid, full);
        s.invalidate_allocation();
      });
    }
  }

  if (opt.stepped) {
    double t = 0.0;
    Rng step_rng(seed ^ 0x9e3779b97f4a7c15ull);
    for (int k = 0; k < 40; ++k) {
      t += 0.01 + 0.05 * step_rng.uniform();
      sim.run(t);
    }
  }
  sim.run();
  EXPECT_EQ(sim.active_flow_count(), 0u);
  out.alloc_stats = sim.alloc_stats();
  return out;
}

}  // namespace echelon::eqh
