// Unit and property tests for the demand-limited weighted max-min allocator.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "netsim/allocator.hpp"
#include "topology/builders.hpp"

namespace echelon::netsim {
namespace {

// Builds a flow on the given fabric with routing resolved.
Flow make_flow(const topology::BuiltFabric& f, std::size_t src,
               std::size_t dst, Bytes size, std::uint64_t id = 0) {
  Flow flow;
  flow.id = FlowId{id};
  flow.spec.src = f.hosts[src];
  flow.spec.dst = f.hosts[dst];
  flow.spec.size = size;
  flow.remaining = size;
  flow.path = *f.topo.route(f.hosts[src], f.hosts[dst], id);
  return flow;
}

std::vector<Flow*> ptrs(std::vector<Flow>& flows) {
  std::vector<Flow*> out;
  for (Flow& f : flows) out.push_back(&f);
  return out;
}

TEST(Allocator, SingleFlowGetsFullBandwidth) {
  auto f = topology::make_big_switch(2, 10.0);
  RateAllocator alloc(&f.topo);
  std::vector<Flow> flows{make_flow(f, 0, 1, 100.0)};
  auto p = ptrs(flows);
  alloc.allocate(p);
  EXPECT_DOUBLE_EQ(flows[0].rate, 10.0);
}

TEST(Allocator, TwoFlowsSameLinkSplitEvenly) {
  auto f = topology::make_big_switch(2, 10.0);
  RateAllocator alloc(&f.topo);
  std::vector<Flow> flows{make_flow(f, 0, 1, 100.0, 0),
                          make_flow(f, 0, 1, 100.0, 1)};
  auto p = ptrs(flows);
  alloc.allocate(p);
  EXPECT_DOUBLE_EQ(flows[0].rate, 5.0);
  EXPECT_DOUBLE_EQ(flows[1].rate, 5.0);
}

TEST(Allocator, WeightsBiasShares) {
  auto f = topology::make_big_switch(2, 9.0);
  RateAllocator alloc(&f.topo);
  std::vector<Flow> flows{make_flow(f, 0, 1, 100.0, 0),
                          make_flow(f, 0, 1, 100.0, 1)};
  flows[0].weight = 2.0;
  flows[1].weight = 1.0;
  auto p = ptrs(flows);
  alloc.allocate(p);
  EXPECT_DOUBLE_EQ(flows[0].rate, 6.0);
  EXPECT_DOUBLE_EQ(flows[1].rate, 3.0);
}

TEST(Allocator, CapIsHonoredAndLeftoverRedistributed) {
  auto f = topology::make_big_switch(2, 10.0);
  RateAllocator alloc(&f.topo);
  std::vector<Flow> flows{make_flow(f, 0, 1, 100.0, 0),
                          make_flow(f, 0, 1, 100.0, 1)};
  flows[0].rate_cap = 2.0;
  auto p = ptrs(flows);
  alloc.allocate(p);
  EXPECT_DOUBLE_EQ(flows[0].rate, 2.0);
  EXPECT_DOUBLE_EQ(flows[1].rate, 8.0);  // work conserving for uncapped flows
}

TEST(Allocator, AllCappedLeavesCapacityUnused) {
  // Non-work-conserving by design when every flow is capped: MADD needs
  // exact pacing.
  auto f = topology::make_big_switch(2, 10.0);
  RateAllocator alloc(&f.topo);
  std::vector<Flow> flows{make_flow(f, 0, 1, 100.0, 0),
                          make_flow(f, 0, 1, 100.0, 1)};
  flows[0].rate_cap = 2.0;
  flows[1].rate_cap = 3.0;
  auto p = ptrs(flows);
  alloc.allocate(p);
  EXPECT_DOUBLE_EQ(flows[0].rate, 2.0);
  EXPECT_DOUBLE_EQ(flows[1].rate, 3.0);
}

TEST(Allocator, InfeasibleCapsDegradeGracefully) {
  auto f = topology::make_big_switch(2, 10.0);
  RateAllocator alloc(&f.topo);
  std::vector<Flow> flows{make_flow(f, 0, 1, 100.0, 0),
                          make_flow(f, 0, 1, 100.0, 1)};
  flows[0].rate_cap = 8.0;
  flows[1].rate_cap = 8.0;
  auto p = ptrs(flows);
  alloc.allocate(p);
  // Equal weights: both throttle to the fair share; capacity never exceeded.
  EXPECT_DOUBLE_EQ(flows[0].rate, 5.0);
  EXPECT_DOUBLE_EQ(flows[1].rate, 5.0);
}

TEST(Allocator, DifferentDestinationsDontContend) {
  auto f = topology::make_big_switch(4, 10.0);
  RateAllocator alloc(&f.topo);
  std::vector<Flow> flows{make_flow(f, 0, 1, 100.0, 0),
                          make_flow(f, 2, 3, 100.0, 1)};
  auto p = ptrs(flows);
  alloc.allocate(p);
  EXPECT_DOUBLE_EQ(flows[0].rate, 10.0);
  EXPECT_DOUBLE_EQ(flows[1].rate, 10.0);
}

TEST(Allocator, IngressBottleneckShared) {
  // Two sources into one destination port.
  auto f = topology::make_big_switch(3, 10.0);
  RateAllocator alloc(&f.topo);
  std::vector<Flow> flows{make_flow(f, 0, 2, 100.0, 0),
                          make_flow(f, 1, 2, 100.0, 1)};
  auto p = ptrs(flows);
  alloc.allocate(p);
  EXPECT_DOUBLE_EQ(flows[0].rate + flows[1].rate, 10.0);
  EXPECT_DOUBLE_EQ(flows[0].rate, 5.0);
}

TEST(Allocator, MaxMinUnevenDemands) {
  // Three flows from distinct sources into one port; one is capped low, the
  // other two split the rest (classic water-filling).
  auto f = topology::make_big_switch(4, 9.0);
  RateAllocator alloc(&f.topo);
  std::vector<Flow> flows{make_flow(f, 0, 3, 100.0, 0),
                          make_flow(f, 1, 3, 100.0, 1),
                          make_flow(f, 2, 3, 100.0, 2)};
  flows[0].rate_cap = 1.0;
  auto p = ptrs(flows);
  alloc.allocate(p);
  EXPECT_DOUBLE_EQ(flows[0].rate, 1.0);
  EXPECT_DOUBLE_EQ(flows[1].rate, 4.0);
  EXPECT_DOUBLE_EQ(flows[2].rate, 4.0);
}

TEST(Allocator, FinishedFlowsGetZero) {
  auto f = topology::make_big_switch(2, 10.0);
  RateAllocator alloc(&f.topo);
  std::vector<Flow> flows{make_flow(f, 0, 1, 100.0, 0),
                          make_flow(f, 0, 1, 100.0, 1)};
  flows[0].state = FlowState::kFinished;
  auto p = ptrs(flows);
  alloc.allocate(p);
  EXPECT_DOUBLE_EQ(flows[0].rate, 0.0);
  EXPECT_DOUBLE_EQ(flows[1].rate, 10.0);
}

TEST(Allocator, EmptyPathGetsInfiniteRate) {
  auto f = topology::make_big_switch(2, 10.0);
  RateAllocator alloc(&f.topo);
  Flow loop = make_flow(f, 0, 1, 100.0);
  loop.path.clear();  // loopback
  std::vector<Flow> flows{std::move(loop)};
  auto p = ptrs(flows);
  alloc.allocate(p);
  EXPECT_TRUE(std::isinf(flows[0].rate));
}

// ---------------------------------------------------------------------------
// Property sweep: on random instances, the allocation must (a) never exceed
// any link capacity, (b) never exceed a flow's cap, and (c) be maximal for
// uncapped flows (no uncapped flow can be raised without violating (a)).
// ---------------------------------------------------------------------------

class AllocatorProperty : public ::testing::TestWithParam<int> {};

TEST_P(AllocatorProperty, FeasibleAndMaximal) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int hosts = 2 + static_cast<int>(rng.uniform_int(6));
  const double cap = rng.uniform(1.0, 100.0);
  auto f = topology::make_big_switch(hosts, cap);
  RateAllocator alloc(&f.topo);

  const int n = 1 + static_cast<int>(rng.uniform_int(20));
  std::vector<Flow> flows;
  for (int i = 0; i < n; ++i) {
    std::size_t src = rng.uniform_int(static_cast<std::uint64_t>(hosts));
    std::size_t dst = rng.uniform_int(static_cast<std::uint64_t>(hosts));
    if (dst == src) dst = (dst + 1) % static_cast<std::size_t>(hosts);
    Flow fl = make_flow(f, src, dst, 100.0, static_cast<std::uint64_t>(i));
    fl.weight = rng.uniform(0.1, 4.0);
    if (rng.bernoulli(0.5)) fl.rate_cap = rng.uniform(0.0, cap * 1.5);
    flows.push_back(std::move(fl));
  }
  auto p = ptrs(flows);
  alloc.allocate(p);

  // (a) capacity feasibility.
  std::vector<double> load(f.topo.link_count(), 0.0);
  for (const Flow& fl : flows) {
    for (LinkId lid : fl.path) load[lid.value()] += fl.rate;
  }
  for (std::size_t l = 0; l < load.size(); ++l) {
    EXPECT_LE(load[l], f.topo.link(LinkId{l}).capacity + 1e-6);
  }
  // (b) caps respected.
  for (const Flow& fl : flows) {
    EXPECT_GE(fl.rate, -1e-12);
    if (fl.rate_cap) EXPECT_LE(fl.rate, *fl.rate_cap + 1e-9);
  }
  // (c) maximality: every uncapped flow is bottlenecked on some link.
  for (const Flow& fl : flows) {
    if (fl.rate_cap) continue;
    bool bottlenecked = false;
    for (LinkId lid : fl.path) {
      if (load[lid.value()] >= f.topo.link(lid).capacity - 1e-6) {
        bottlenecked = true;
        break;
      }
    }
    EXPECT_TRUE(bottlenecked) << "uncapped flow not at a saturated link";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, AllocatorProperty,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace echelon::netsim
