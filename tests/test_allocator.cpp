// Unit and property tests for the demand-limited weighted max-min allocator.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "netsim/allocator.hpp"
#include "topology/builders.hpp"

namespace echelon::netsim {
namespace {

// Builds a flow on the given fabric with routing resolved.
Flow make_flow(const topology::BuiltFabric& f, std::size_t src,
               std::size_t dst, Bytes size, std::uint64_t id = 0) {
  Flow flow;
  flow.id = FlowId{id};
  flow.spec.src = f.hosts[src];
  flow.spec.dst = f.hosts[dst];
  flow.spec.size = size;
  flow.remaining = size;
  flow.path = *f.topo.route(f.hosts[src], f.hosts[dst], id);
  return flow;
}

std::vector<Flow*> ptrs(std::vector<Flow>& flows) {
  std::vector<Flow*> out;
  for (Flow& f : flows) out.push_back(&f);
  return out;
}

TEST(Allocator, SingleFlowGetsFullBandwidth) {
  auto f = topology::make_big_switch(2, 10.0);
  RateAllocator alloc(&f.topo);
  std::vector<Flow> flows{make_flow(f, 0, 1, 100.0)};
  auto p = ptrs(flows);
  alloc.allocate(p);
  EXPECT_DOUBLE_EQ(flows[0].rate, 10.0);
}

TEST(Allocator, TwoFlowsSameLinkSplitEvenly) {
  auto f = topology::make_big_switch(2, 10.0);
  RateAllocator alloc(&f.topo);
  std::vector<Flow> flows{make_flow(f, 0, 1, 100.0, 0),
                          make_flow(f, 0, 1, 100.0, 1)};
  auto p = ptrs(flows);
  alloc.allocate(p);
  EXPECT_DOUBLE_EQ(flows[0].rate, 5.0);
  EXPECT_DOUBLE_EQ(flows[1].rate, 5.0);
}

TEST(Allocator, WeightsBiasShares) {
  auto f = topology::make_big_switch(2, 9.0);
  RateAllocator alloc(&f.topo);
  std::vector<Flow> flows{make_flow(f, 0, 1, 100.0, 0),
                          make_flow(f, 0, 1, 100.0, 1)};
  flows[0].weight = 2.0;
  flows[1].weight = 1.0;
  auto p = ptrs(flows);
  alloc.allocate(p);
  EXPECT_DOUBLE_EQ(flows[0].rate, 6.0);
  EXPECT_DOUBLE_EQ(flows[1].rate, 3.0);
}

TEST(Allocator, CapIsHonoredAndLeftoverRedistributed) {
  auto f = topology::make_big_switch(2, 10.0);
  RateAllocator alloc(&f.topo);
  std::vector<Flow> flows{make_flow(f, 0, 1, 100.0, 0),
                          make_flow(f, 0, 1, 100.0, 1)};
  flows[0].rate_cap = 2.0;
  auto p = ptrs(flows);
  alloc.allocate(p);
  EXPECT_DOUBLE_EQ(flows[0].rate, 2.0);
  EXPECT_DOUBLE_EQ(flows[1].rate, 8.0);  // work conserving for uncapped flows
}

TEST(Allocator, AllCappedLeavesCapacityUnused) {
  // Non-work-conserving by design when every flow is capped: MADD needs
  // exact pacing.
  auto f = topology::make_big_switch(2, 10.0);
  RateAllocator alloc(&f.topo);
  std::vector<Flow> flows{make_flow(f, 0, 1, 100.0, 0),
                          make_flow(f, 0, 1, 100.0, 1)};
  flows[0].rate_cap = 2.0;
  flows[1].rate_cap = 3.0;
  auto p = ptrs(flows);
  alloc.allocate(p);
  EXPECT_DOUBLE_EQ(flows[0].rate, 2.0);
  EXPECT_DOUBLE_EQ(flows[1].rate, 3.0);
}

TEST(Allocator, InfeasibleCapsDegradeGracefully) {
  auto f = topology::make_big_switch(2, 10.0);
  RateAllocator alloc(&f.topo);
  std::vector<Flow> flows{make_flow(f, 0, 1, 100.0, 0),
                          make_flow(f, 0, 1, 100.0, 1)};
  flows[0].rate_cap = 8.0;
  flows[1].rate_cap = 8.0;
  auto p = ptrs(flows);
  alloc.allocate(p);
  // Equal weights: both throttle to the fair share; capacity never exceeded.
  EXPECT_DOUBLE_EQ(flows[0].rate, 5.0);
  EXPECT_DOUBLE_EQ(flows[1].rate, 5.0);
}

TEST(Allocator, DifferentDestinationsDontContend) {
  auto f = topology::make_big_switch(4, 10.0);
  RateAllocator alloc(&f.topo);
  std::vector<Flow> flows{make_flow(f, 0, 1, 100.0, 0),
                          make_flow(f, 2, 3, 100.0, 1)};
  auto p = ptrs(flows);
  alloc.allocate(p);
  EXPECT_DOUBLE_EQ(flows[0].rate, 10.0);
  EXPECT_DOUBLE_EQ(flows[1].rate, 10.0);
}

TEST(Allocator, IngressBottleneckShared) {
  // Two sources into one destination port.
  auto f = topology::make_big_switch(3, 10.0);
  RateAllocator alloc(&f.topo);
  std::vector<Flow> flows{make_flow(f, 0, 2, 100.0, 0),
                          make_flow(f, 1, 2, 100.0, 1)};
  auto p = ptrs(flows);
  alloc.allocate(p);
  EXPECT_DOUBLE_EQ(flows[0].rate + flows[1].rate, 10.0);
  EXPECT_DOUBLE_EQ(flows[0].rate, 5.0);
}

TEST(Allocator, MaxMinUnevenDemands) {
  // Three flows from distinct sources into one port; one is capped low, the
  // other two split the rest (classic water-filling).
  auto f = topology::make_big_switch(4, 9.0);
  RateAllocator alloc(&f.topo);
  std::vector<Flow> flows{make_flow(f, 0, 3, 100.0, 0),
                          make_flow(f, 1, 3, 100.0, 1),
                          make_flow(f, 2, 3, 100.0, 2)};
  flows[0].rate_cap = 1.0;
  auto p = ptrs(flows);
  alloc.allocate(p);
  EXPECT_DOUBLE_EQ(flows[0].rate, 1.0);
  EXPECT_DOUBLE_EQ(flows[1].rate, 4.0);
  EXPECT_DOUBLE_EQ(flows[2].rate, 4.0);
}

TEST(Allocator, FinishedFlowsGetZero) {
  auto f = topology::make_big_switch(2, 10.0);
  RateAllocator alloc(&f.topo);
  std::vector<Flow> flows{make_flow(f, 0, 1, 100.0, 0),
                          make_flow(f, 0, 1, 100.0, 1)};
  flows[0].state = FlowState::kFinished;
  auto p = ptrs(flows);
  alloc.allocate(p);
  EXPECT_DOUBLE_EQ(flows[0].rate, 0.0);
  EXPECT_DOUBLE_EQ(flows[1].rate, 10.0);
}

TEST(Allocator, EmptyPathGetsInfiniteRate) {
  auto f = topology::make_big_switch(2, 10.0);
  RateAllocator alloc(&f.topo);
  Flow loop = make_flow(f, 0, 1, 100.0);
  loop.path.clear();  // loopback
  std::vector<Flow> flows{std::move(loop)};
  auto p = ptrs(flows);
  alloc.allocate(p);
  EXPECT_TRUE(std::isinf(flows[0].rate));
}

// ---------------------------------------------------------------------------
// Edge cases: degenerate weights, infeasible caps, loopback flows mixed with
// contended ones, and incremental-cache component isolation.
// ---------------------------------------------------------------------------

// Regression: a zero- or negative-weight flow used to divide by zero in the
// water level (and trip the unfrozen_weight assert in Debug builds). Such
// weights are now clamped to kMinFlowWeight: the degenerate flow receives an
// arbitrarily small share and its neighbors keep (essentially) everything.
TEST(Allocator, ZeroWeightFlowDoesNotDivideByZero) {
  auto f = topology::make_big_switch(2, 10.0);
  RateAllocator alloc(&f.topo);
  std::vector<Flow> flows{make_flow(f, 0, 1, 100.0, 0),
                          make_flow(f, 0, 1, 100.0, 1)};
  flows[0].weight = 0.0;
  auto p = ptrs(flows);
  alloc.allocate(p);
  EXPECT_GE(flows[0].rate, 0.0);
  EXPECT_LE(flows[0].rate, 1e-6);  // epsilon share only
  EXPECT_NEAR(flows[1].rate, 10.0, 1e-6);
  EXPECT_LE(flows[0].rate + flows[1].rate, 10.0 + 1e-6);
}

TEST(Allocator, NegativeWeightFlowIsClampedNotCrashing) {
  auto f = topology::make_big_switch(2, 10.0);
  RateAllocator alloc(&f.topo);
  std::vector<Flow> flows{make_flow(f, 0, 1, 100.0, 0),
                          make_flow(f, 0, 1, 100.0, 1)};
  flows[0].weight = -3.0;
  auto p = ptrs(flows);
  alloc.allocate(p);
  EXPECT_GE(flows[0].rate, 0.0);
  EXPECT_NEAR(flows[1].rate, 10.0, 1e-6);
}

TEST(Allocator, AllZeroWeightFlowsStillSplitCapacity) {
  // Clamped equal (epsilon) weights degenerate to plain even max-min.
  auto f = topology::make_big_switch(2, 10.0);
  RateAllocator alloc(&f.topo);
  std::vector<Flow> flows{make_flow(f, 0, 1, 100.0, 0),
                          make_flow(f, 0, 1, 100.0, 1)};
  flows[0].weight = 0.0;
  flows[1].weight = 0.0;
  auto p = ptrs(flows);
  alloc.allocate(p);
  EXPECT_DOUBLE_EQ(flows[0].rate, 5.0);
  EXPECT_DOUBLE_EQ(flows[1].rate, 5.0);
}

TEST(Allocator, CapAboveAnyFeasibleShareActsUncapped) {
  // A cap the fabric can never satisfy must not distort the fair share.
  auto f = topology::make_big_switch(3, 10.0);
  RateAllocator alloc(&f.topo);
  std::vector<Flow> flows{make_flow(f, 0, 2, 100.0, 0),
                          make_flow(f, 1, 2, 100.0, 1)};
  flows[0].rate_cap = 1e12;  // far above the 10.0 port
  auto p = ptrs(flows);
  alloc.allocate(p);
  EXPECT_DOUBLE_EQ(flows[0].rate, 5.0);
  EXPECT_DOUBLE_EQ(flows[1].rate, 5.0);
}

TEST(Allocator, LoopbackFlowsMixedWithContendedOnes) {
  // Empty-path (src == dst) flows are never network-limited and must not
  // perturb the water-fill of contended flows sharing the pass.
  auto f = topology::make_big_switch(3, 10.0);
  RateAllocator alloc(&f.topo);
  Flow loop_uncapped = make_flow(f, 0, 1, 100.0, 0);
  loop_uncapped.path.clear();
  Flow loop_capped = make_flow(f, 0, 1, 100.0, 1);
  loop_capped.path.clear();
  loop_capped.rate_cap = 7.5;
  std::vector<Flow> flows;
  flows.push_back(std::move(loop_uncapped));
  flows.push_back(std::move(loop_capped));
  flows.push_back(make_flow(f, 0, 2, 100.0, 2));
  flows.push_back(make_flow(f, 1, 2, 100.0, 3));
  auto p = ptrs(flows);
  alloc.allocate(p);
  EXPECT_TRUE(std::isinf(flows[0].rate));
  EXPECT_DOUBLE_EQ(flows[1].rate, 7.5);
  EXPECT_DOUBLE_EQ(flows[2].rate, 5.0);
  EXPECT_DOUBLE_EQ(flows[3].rate, 5.0);
}

// Two disjoint contention components on one fabric: churn (cap rewrites) in
// one component must not perturb the other's cached rates -- exact double
// equality, and the clean component must come from the cache (stats).
TEST(Allocator, ComponentChurnDoesNotPerturbCleanComponent) {
  auto f = topology::make_big_switch(4, 10.0);
  RateAllocator alloc(&f.topo, AllocMode::kIncremental);
  // Component A: hosts {0 -> 1} x2; component B: hosts {2 -> 3} x3.
  std::vector<Flow> flows{make_flow(f, 0, 1, 100.0, 0),
                          make_flow(f, 0, 1, 100.0, 1),
                          make_flow(f, 2, 3, 100.0, 2),
                          make_flow(f, 2, 3, 100.0, 3),
                          make_flow(f, 2, 3, 100.0, 4)};
  flows[2].weight = 1.5;  // make B's shares non-trivial doubles
  auto p = ptrs(flows);
  alloc.allocate(p);
  const double b0 = flows[2].rate;
  const double b1 = flows[3].rate;
  const double b2 = flows[4].rate;
  // Churn A across several passes: toggle caps and weights through the
  // notification setters.
  for (int pass = 0; pass < 4; ++pass) {
    flows[0].set_rate_cap(1.0 + pass);
    flows[1].set_weight(1.0 + 0.5 * pass);
    const auto reused_before = alloc.stats().components_reused;
    alloc.allocate(p);
    EXPECT_EQ(alloc.stats().components_reused, reused_before + 1)
        << "clean component was not served from the cache";
    EXPECT_EQ(flows[2].rate, b0);  // exact: bit-identical cached rates
    EXPECT_EQ(flows[3].rate, b1);
    EXPECT_EQ(flows[4].rate, b2);
    // Flow 0 gets its cap, unless the shared port saturates first at the
    // weighted fair share (unit weight vs flow 1's 1.0 + 0.5 * pass).
    const double fair0 = 10.0 / (1.0 + (1.0 + 0.5 * pass));
    EXPECT_DOUBLE_EQ(flows[0].rate, std::min(1.0 + pass, fair0));
  }
}

// Runtime link-capacity changes must invalidate cached converged rates even
// when no flow-side input changed (the capacity-epoch fingerprint).
TEST(Allocator, RuntimeCapacityChangeInvalidatesCache) {
  auto f = topology::make_big_switch(2, 10.0);
  RateAllocator alloc(&f.topo, AllocMode::kIncremental);
  std::vector<Flow> flows{make_flow(f, 0, 1, 100.0, 0),
                          make_flow(f, 0, 1, 100.0, 1)};
  auto p = ptrs(flows);
  alloc.allocate(p);
  alloc.allocate(p);  // second pass: served from cache
  EXPECT_EQ(alloc.stats().components_reused, 1u);
  EXPECT_DOUBLE_EQ(flows[0].rate, 5.0);
  // Degrade the uplink; no flow input changed, but rates must follow.
  f.topo.set_link_capacity(flows[0].path.front(), 4.0);
  alloc.allocate(p);
  EXPECT_DOUBLE_EQ(flows[0].rate, 2.0);
  EXPECT_DOUBLE_EQ(flows[1].rate, 2.0);
}

// ---------------------------------------------------------------------------
// Property sweep: on random instances, the allocation must (a) never exceed
// any link capacity, (b) never exceed a flow's cap, and (c) be maximal for
// uncapped flows (no uncapped flow can be raised without violating (a)).
// ---------------------------------------------------------------------------

class AllocatorProperty : public ::testing::TestWithParam<int> {};

TEST_P(AllocatorProperty, FeasibleAndMaximal) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int hosts = 2 + static_cast<int>(rng.uniform_int(6));
  const double cap = rng.uniform(1.0, 100.0);
  auto f = topology::make_big_switch(hosts, cap);
  RateAllocator alloc(&f.topo);

  const int n = 1 + static_cast<int>(rng.uniform_int(20));
  std::vector<Flow> flows;
  for (int i = 0; i < n; ++i) {
    std::size_t src = rng.uniform_int(static_cast<std::uint64_t>(hosts));
    std::size_t dst = rng.uniform_int(static_cast<std::uint64_t>(hosts));
    if (dst == src) dst = (dst + 1) % static_cast<std::size_t>(hosts);
    Flow fl = make_flow(f, src, dst, 100.0, static_cast<std::uint64_t>(i));
    fl.weight = rng.uniform(0.1, 4.0);
    if (rng.bernoulli(0.5)) fl.rate_cap = rng.uniform(0.0, cap * 1.5);
    flows.push_back(std::move(fl));
  }
  auto p = ptrs(flows);
  alloc.allocate(p);

  // (a) capacity feasibility.
  std::vector<double> load(f.topo.link_count(), 0.0);
  for (const Flow& fl : flows) {
    for (LinkId lid : fl.path) load[lid.value()] += fl.rate;
  }
  for (std::size_t l = 0; l < load.size(); ++l) {
    EXPECT_LE(load[l], f.topo.link(LinkId{l}).capacity + 1e-6);
  }
  // (b) caps respected.
  for (const Flow& fl : flows) {
    EXPECT_GE(fl.rate, -1e-12);
    if (fl.rate_cap) EXPECT_LE(fl.rate, *fl.rate_cap + 1e-9);
  }
  // (c) maximality: every uncapped flow is bottlenecked on some link.
  for (const Flow& fl : flows) {
    if (fl.rate_cap) continue;
    bool bottlenecked = false;
    for (LinkId lid : fl.path) {
      if (load[lid.value()] >= f.topo.link(lid).capacity - 1e-6) {
        bottlenecked = true;
        break;
      }
    }
    EXPECT_TRUE(bottlenecked) << "uncapped flow not at a saturated link";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, AllocatorProperty,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace echelon::netsim
