// Golden-equivalence suite for the event-loop fast path (see DESIGN.md,
// "Event-loop fast path").
//
// The lazy-accounting simulator loop (epoch-stamped byte counts + a
// completion-time min-heap) was written to be *bit identical* to the
// O(active)-per-event reference loop (SimLoopMode::kEagerScan): both modes
// evaluate exactly the same floating-point expressions on exactly the same
// operands at every observation point -- reallocation stamps, completion
// instants, deadline drains and callback ordering. This suite keeps them
// honest (shared scaffolding lives in tests/equivalence_harness.hpp):
//
//   1. Randomized cluster experiments across all five SchedulerKinds on both
//      big-switch and leaf-spine fabrics assert bit-identical
//      ExperimentResult metrics (wall_ms excepted) between the two modes.
//   2. Randomized simulator-level scenarios (timers + staggered flow
//      submissions) assert bit-identical completion *traces*: the exact
//      sequence of (flow id, finish time) pairs, including through
//      run(deadline) stepping, which exercises the deadline stamp + heap
//      rebuild path.
//   3. run_sweep determinism: N-threaded sweeps produce results identical to
//      the serial ordering, including with per-job compute jitter (per-job
//      seeded RNG, so thread assignment cannot leak into results), and
//      exceptions surface as in a serial loop (lowest index first).
//   4. The harness's allocation-counting operator-new hook proves
//      steady-state event iterations (timer firing + rescheduling with live
//      flows) perform zero heap allocations: pooled EventQueue slots, pooled
//      timer callbacks, no per-event byte sweeps.
//   5. The shared completion tail: zero-byte flows complete instantly with
//      the canonical callback-before-listener order and never enter the
//      active set.

#include "equivalence_harness.hpp"

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/sweep.hpp"
#include "echelon/srpt.hpp"

namespace echelon {
namespace {

using cluster::ExperimentConfig;
using cluster::SchedulerKind;
using eqh::expect_same_result;
using eqh::run_cluster;
using eqh::RunSpec;
using eqh::small_trace;
using netsim::SimLoopMode;
using netsim::Simulator;

// ============================================================================
// 1. Cluster-level golden equivalence: all schedulers x both fabrics
// ============================================================================

using LazyVsEager = eqh::SchedFabricTest;

TEST_P(LazyVsEager, BitIdenticalExperimentResults) {
  const auto [kind, fabric] = GetParam();
  for (const std::uint64_t seed : {11u, 23u, 47u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto jobs = small_trace(seed);
    RunSpec lazy{.scheduler = kind, .fabric = fabric,
                 .loop = SimLoopMode::kLazy};
    RunSpec eager{.scheduler = kind, .fabric = fabric,
                  .loop = SimLoopMode::kEagerScan};
    expect_same_result(run_cluster(jobs, lazy), run_cluster(jobs, eager));
  }
}

TEST_P(LazyVsEager, BitIdenticalWithComputeJitter) {
  const auto [kind, fabric] = GetParam();
  const auto jobs = small_trace(7, /*jitter=*/0.05);
  RunSpec lazy{.scheduler = kind, .fabric = fabric,
               .loop = SimLoopMode::kLazy};
  RunSpec eager{.scheduler = kind, .fabric = fabric,
                .loop = SimLoopMode::kEagerScan};
  expect_same_result(run_cluster(jobs, lazy), run_cluster(jobs, eager));
}

ECHELON_INSTANTIATE_SCHED_FABRIC(LazyVsEager);

// ============================================================================
// 2. Simulator-level event-trace equivalence
// ============================================================================

TEST(SimLoopTrace, FairSharingBitIdentical) {
  for (const std::uint64_t seed : {3u, 17u, 2026u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto lazy = eqh::run_sim_scenario(
        seed, {.loop = SimLoopMode::kLazy, .flows = 60});
    const auto eager = eqh::run_sim_scenario(
        seed, {.loop = SimLoopMode::kEagerScan, .flows = 60});
    EXPECT_EQ(lazy.trace, eager.trace);
    EXPECT_EQ(lazy.trace.size(), 60u);
  }
}

TEST(SimLoopTrace, SrptBitIdentical) {
  for (const std::uint64_t seed : {5u, 99u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ef::SrptScheduler a;
    ef::SrptScheduler b;
    const auto lazy = eqh::run_sim_scenario(
        seed, {.loop = SimLoopMode::kLazy, .flows = 50, .sched = &a});
    const auto eager = eqh::run_sim_scenario(
        seed, {.loop = SimLoopMode::kEagerScan, .flows = 50, .sched = &b});
    EXPECT_EQ(lazy.trace, eager.trace);
  }
}

TEST(SimLoopTrace, DeadlineSteppedBitIdentical) {
  for (const std::uint64_t seed : {21u, 1234u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto lazy = eqh::run_sim_scenario(
        seed, {.loop = SimLoopMode::kLazy, .flows = 40, .stepped = true});
    const auto eager = eqh::run_sim_scenario(
        seed, {.loop = SimLoopMode::kEagerScan, .flows = 40, .stepped = true});
    EXPECT_EQ(lazy.trace, eager.trace);
  }
}

// ============================================================================
// 3. run_sweep determinism
// ============================================================================

std::vector<cluster::SweepPoint> make_sweep_points() {
  std::vector<cluster::SweepPoint> points;
  for (const auto kind :
       {SchedulerKind::kFairSharing, SchedulerKind::kSrpt,
        SchedulerKind::kCoflowMadd, SchedulerKind::kEchelonMadd,
        SchedulerKind::kCoordinator}) {
    ExperimentConfig cfg;
    cfg.scheduler = kind;
    cfg.hosts = 16;
    cfg.port_capacity = gbps(25);
    points.push_back({small_trace(31), cfg});
  }
  // A jittered point: per-job seeded RNG must make the result independent of
  // which worker thread runs it.
  ExperimentConfig jcfg;
  jcfg.scheduler = SchedulerKind::kEchelonMadd;
  jcfg.hosts = 16;
  jcfg.port_capacity = gbps(25);
  points.push_back({small_trace(31, /*jitter=*/0.1), jcfg});
  return points;
}

TEST(RunSweep, ThreadedEqualsSerial) {
  const auto points = make_sweep_points();
  const auto serial = cluster::run_sweep(points, {.threads = 1});
  ASSERT_EQ(serial.size(), points.size());
  for (const unsigned threads : {2u, 4u, 8u}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    const auto parallel = cluster::run_sweep(points, {.threads = threads});
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE("point " + std::to_string(i));
      expect_same_result(parallel[i], serial[i]);
    }
  }
}

TEST(RunSweep, EmptyAndSinglePoint) {
  EXPECT_TRUE(cluster::run_sweep({}, {.threads = 4}).empty());
  const auto points = make_sweep_points();
  const auto one =
      cluster::run_sweep({points[0]}, {.threads = 4});
  ASSERT_EQ(one.size(), 1u);
  expect_same_result(
      one[0], cluster::run_experiment(points[0].jobs, points[0].config));
}

TEST(RunSweep, LowestIndexExceptionWins) {
  std::atomic<int> ran{0};
  try {
    cluster::parallel_for_indexed(8, 4, [&](std::size_t i) {
      ran.fetch_add(1);
      if (i == 2 || i == 5) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 2");
  }
  // Every index ran exactly once despite the failures.
  EXPECT_EQ(ran.load(), 8);
}

// ============================================================================
// 4. Zero-allocation steady-state event iterations
// ============================================================================

TEST(SimLoopAlloc, TimerIterationsAllocationFree) {
  auto fabric = topology::make_big_switch(4, gbps(10));
  Simulator sim(&fabric.topo);

  // A population of long-lived flows so every event iteration runs with a
  // non-trivial active set (the seed loop would have drained bytes across
  // all of them per event).
  for (int i = 0; i < 64; ++i) {
    netsim::FlowSpec spec;
    spec.src = fabric.hosts[i % 4];
    spec.dst = fabric.hosts[(i + 1) % 4];
    spec.size = 1e15;  // never finishes within the test horizon
    spec.label = "bg" + std::to_string(i);
    sim.submit_flow(std::move(spec));
  }

  // Self-rescheduling timers. The callback captures only a context pointer
  // (8 bytes): within std::function's small-object buffer, so every
  // steady-state reschedule is allocation-free end to end.
  struct Ticker {
    int fired = 0;
    double t_end = 1.0;
    void fire(Simulator& s) {
      ++fired;
      if (s.now() < t_end) {
        Ticker* self = this;
        s.schedule_after(0.0005, [self](Simulator& s2) { self->fire(s2); });
      }
    }
  } ticker;

  // Warm-up: grows the event-queue heap/pools and the flow rate state to
  // their high-water marks.
  Ticker* tp = &ticker;
  sim.schedule_at(0.0, [tp](Simulator& s) { tp->fire(s); });
  sim.run(0.1);
  const int fired_before = ticker.fired;

  eqh::alloc_count_begin();
  sim.run(0.9);
  const std::uint64_t allocs = eqh::alloc_count_end();

  // The window really was timer-dense.
  EXPECT_GT(ticker.fired, fired_before + 500);
#if ECHELON_ALLOC_HOOK
  EXPECT_EQ(allocs, 0u)
      << "steady-state event iterations must not allocate";
#else
  (void)allocs;
#endif
  sim.run();  // drain cleanly (flows retire at the horizon via deadline stop)
}

// ============================================================================
// 5. Shared completion tail: zero-byte flows
// ============================================================================

TEST(ZeroByteFlow, InstantCompletionCanonicalOrder) {
  auto fabric = topology::make_big_switch(2, gbps(10));
  Simulator sim(&fabric.topo);

  std::vector<std::string> order;
  sim.add_flow_listener([&order](Simulator&, const netsim::Flow& f) {
    order.push_back("listener:" + f.spec.label);
  });

  netsim::FlowSpec spec;
  spec.src = fabric.hosts[0];
  spec.dst = fabric.hosts[1];
  spec.size = 0.0;
  spec.label = "ctl";
  const auto id = sim.submit_flow(
      std::move(spec), [&order](Simulator&, const netsim::Flow& f) {
        order.push_back("done:" + f.spec.label);
        EXPECT_EQ(f.state, netsim::FlowState::kFinished);
      });

  // Completed synchronously, never entered the active set.
  EXPECT_EQ(sim.active_flow_count(), 0u);
  EXPECT_TRUE(sim.flow(id).finished());
  EXPECT_EQ(sim.flow(id).finish_time, 0.0);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "done:ctl");      // per-flow callback first
  EXPECT_EQ(order[1], "listener:ctl");  // then global listeners
}

}  // namespace
}  // namespace echelon
