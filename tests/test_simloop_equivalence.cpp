// Golden-equivalence suite for the event-loop fast path (see DESIGN.md,
// "Event-loop fast path").
//
// The lazy-accounting simulator loop (epoch-stamped byte counts + a
// completion-time min-heap) was written to be *bit identical* to the
// O(active)-per-event reference loop (SimLoopMode::kEagerScan): both modes
// evaluate exactly the same floating-point expressions on exactly the same
// operands at every observation point -- reallocation stamps, completion
// instants, deadline drains and callback ordering. This suite keeps them
// honest:
//
//   1. Randomized cluster experiments across all five SchedulerKinds on both
//      big-switch and leaf-spine fabrics assert bit-identical
//      ExperimentResult metrics (wall_ms excepted) between the two modes.
//   2. Randomized simulator-level scenarios (timers + staggered flow
//      submissions) assert bit-identical completion *traces*: the exact
//      sequence of (flow id, finish time) pairs, including through
//      run(deadline) stepping, which exercises the deadline stamp + heap
//      rebuild path.
//   3. run_sweep determinism: N-threaded sweeps produce results identical to
//      the serial ordering, including with per-job compute jitter (per-job
//      seeded RNG, so thread assignment cannot leak into results), and
//      exceptions surface as in a serial loop (lowest index first).
//   4. An allocation-counting operator-new hook proves steady-state event
//      iterations (timer firing + rescheduling with live flows) perform zero
//      heap allocations: pooled EventQueue slots, pooled timer callbacks,
//      no per-event byte sweeps.
//   5. The shared completion tail: zero-byte flows complete instantly with
//      the canonical callback-before-listener order and never enter the
//      active set.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/sweep.hpp"
#include "cluster/trace.hpp"
#include "common/rng.hpp"
#include "echelon/srpt.hpp"
#include "netsim/simulator.hpp"
#include "topology/builders.hpp"
#include "workload/paradigm.hpp"

// --- allocation-counting hook -----------------------------------------------
// Replaces the (unaligned) global new/delete with counting versions. Counting
// is off by default so gtest bookkeeping does not pollute the numbers.
//
// Disabled under ASan/TSan: the malloc-backed replacements fight the
// sanitizer allocator interceptors (operator-new-vs-free mismatch reports
// for allocations crossing the gtest shared-library boundary). The
// zero-allocation assertion becomes a runtime skip there; UBSan keeps the
// hook live.

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define ECHELON_ALLOC_HOOK 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define ECHELON_ALLOC_HOOK 0
#else
#define ECHELON_ALLOC_HOOK 1
#endif
#else
#define ECHELON_ALLOC_HOOK 1
#endif

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

#if ECHELON_ALLOC_HOOK
void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif  // ECHELON_ALLOC_HOOK

namespace echelon {
namespace {

using cluster::ExperimentConfig;
using cluster::ExperimentResult;
using cluster::FabricKind;
using cluster::SchedulerKind;
using netsim::SimLoopMode;
using netsim::Simulator;

// ============================================================================
// Helpers
// ============================================================================

// Bitwise double equality (0.0 vs -0.0 and NaN-safe is not needed here: the
// simulator never produces either at an observation point; plain == gives
// the strictest portable check with readable gtest failure output).
#define EXPECT_BITEQ(a, b) EXPECT_EQ(a, b)

void expect_same_result(const ExperimentResult& lazy,
                        const ExperimentResult& eager) {
  EXPECT_EQ(lazy.scheduler_name, eager.scheduler_name);
  EXPECT_BITEQ(lazy.makespan, eager.makespan);
  EXPECT_BITEQ(lazy.total_tardiness, eager.total_tardiness);
  EXPECT_BITEQ(lazy.weighted_total_tardiness, eager.weighted_total_tardiness);
  EXPECT_EQ(lazy.control_invocations, eager.control_invocations);
  EXPECT_EQ(lazy.heuristic_runs, eager.heuristic_runs);
  EXPECT_EQ(lazy.reuse_hits, eager.reuse_hits);
  // wall_ms is host timing: nondeterministic by nature, excluded.
  ASSERT_EQ(lazy.jobs.size(), eager.jobs.size());
  for (std::size_t j = 0; j < lazy.jobs.size(); ++j) {
    const auto& a = lazy.jobs[j];
    const auto& b = eager.jobs[j];
    EXPECT_EQ(a.job, b.job);
    EXPECT_EQ(a.description, b.description);
    EXPECT_BITEQ(a.arrival, b.arrival);
    EXPECT_BITEQ(a.finish, b.finish);
    EXPECT_BITEQ(a.mean_gpu_idle_fraction, b.mean_gpu_idle_fraction);
    ASSERT_EQ(a.iteration_times.size(), b.iteration_times.size());
    for (std::size_t k = 0; k < a.iteration_times.size(); ++k) {
      EXPECT_BITEQ(a.iteration_times[k], b.iteration_times[k]);
    }
  }
}

std::vector<cluster::JobSpec> small_trace(std::uint64_t seed,
                                          double jitter = 0.0) {
  cluster::TraceConfig tcfg;
  tcfg.num_jobs = 6;
  tcfg.seed = seed;
  tcfg.arrival_rate = 3.0;
  tcfg.iterations = 2;
  tcfg.min_width = 1024;
  tcfg.max_width = 2048;
  tcfg.rank_choices = {2, 4};
  auto jobs = cluster::generate_trace(tcfg);
  if (jitter > 0.0) {
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      jobs[j].compute_jitter = jitter;
      jobs[j].jitter_seed = seed * 1000 + j;  // per-job stream
    }
  }
  return jobs;
}

ExperimentResult run_mode(const std::vector<cluster::JobSpec>& jobs,
                          SchedulerKind kind, FabricKind fabric,
                          SimLoopMode mode) {
  ExperimentConfig cfg;
  cfg.scheduler = kind;
  cfg.fabric = fabric;
  cfg.hosts = 16;
  cfg.port_capacity = gbps(25);
  cfg.oversubscription = fabric == FabricKind::kLeafSpine ? 2.0 : 1.0;
  cfg.loop_mode = mode;
  return cluster::run_experiment(jobs, cfg);
}

// ============================================================================
// 1. Cluster-level golden equivalence: all schedulers x both fabrics
// ============================================================================

class LazyVsEager
    : public ::testing::TestWithParam<std::tuple<SchedulerKind, FabricKind>> {
};

TEST_P(LazyVsEager, BitIdenticalExperimentResults) {
  const auto [kind, fabric] = GetParam();
  for (const std::uint64_t seed : {11u, 23u, 47u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto jobs = small_trace(seed);
    expect_same_result(run_mode(jobs, kind, fabric, SimLoopMode::kLazy),
                       run_mode(jobs, kind, fabric, SimLoopMode::kEagerScan));
  }
}

TEST_P(LazyVsEager, BitIdenticalWithComputeJitter) {
  const auto [kind, fabric] = GetParam();
  const auto jobs = small_trace(7, /*jitter=*/0.05);
  expect_same_result(run_mode(jobs, kind, fabric, SimLoopMode::kLazy),
                     run_mode(jobs, kind, fabric, SimLoopMode::kEagerScan));
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulersBothFabrics, LazyVsEager,
    ::testing::Combine(::testing::Values(SchedulerKind::kFairSharing,
                                         SchedulerKind::kSrpt,
                                         SchedulerKind::kCoflowMadd,
                                         SchedulerKind::kEchelonMadd,
                                         SchedulerKind::kCoordinator),
                       ::testing::Values(FabricKind::kBigSwitch,
                                         FabricKind::kLeafSpine)),
    [](const auto& info) {
      std::string name = cluster::to_string(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      name += std::get<1>(info.param) == FabricKind::kBigSwitch
                  ? "_bigswitch"
                  : "_leafspine";
      return name;
    });

// ============================================================================
// 2. Simulator-level event-trace equivalence
// ============================================================================

struct TraceEvent {
  std::uint64_t flow;
  double finish;
  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

// Randomized scenario: `n` flows submitted at staggered times via timers,
// random endpoints and sizes, plus no-op timers sprinkled in between (they
// force event iterations that must not perturb byte accounting). Returns the
// exact completion trace.
std::vector<TraceEvent> run_trace_scenario(SimLoopMode mode,
                                           std::uint64_t seed, int n,
                                           bool stepped,
                                           netsim::NetworkScheduler* sched) {
  auto fabric = topology::make_big_switch(8, gbps(10));
  Simulator sim(&fabric.topo, mode);
  if (sched != nullptr) sim.set_scheduler(sched);

  std::vector<TraceEvent> trace;
  sim.add_flow_listener([&trace](Simulator&, const netsim::Flow& f) {
    trace.push_back({f.id.value(), f.finish_time});
  });

  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    const double at = rng.uniform() * 0.5;
    // Occasional src == dst collisions are deliberate: loopback flows get an
    // infinite rate and exercise the post-reallocation retirement sweep.
    const auto src = fabric.hosts[rng.uniform_int(fabric.hosts.size())];
    const auto dst = fabric.hosts[rng.uniform_int(fabric.hosts.size())];
    const double size = 1e6 * std::exp(2.0 * rng.normal());
    sim.schedule_at(at, [src, dst, size, i](Simulator& s) {
      netsim::FlowSpec spec;
      spec.src = src;
      spec.dst = dst;
      spec.size = size;
      spec.label = "t" + std::to_string(i);
      s.submit_flow(std::move(spec));
    });
    // No-op timer at an unrelated instant: forces an event iteration with no
    // allocation change.
    sim.schedule_at(rng.uniform() * 0.7, [](Simulator&) {});
  }

  if (stepped) {
    // Uneven deadline stepping exercises the deadline-stamp path: progress
    // must be materialized exactly so the resumed run continues bit-for-bit.
    double t = 0.0;
    Rng step_rng(seed ^ 0x9e3779b97f4a7c15ull);
    for (int k = 0; k < 40; ++k) {
      t += 0.01 + 0.05 * step_rng.uniform();
      sim.run(t);
    }
  }
  sim.run();
  EXPECT_EQ(sim.active_flow_count(), 0u);
  return trace;
}

TEST(SimLoopTrace, FairSharingBitIdentical) {
  for (const std::uint64_t seed : {3u, 17u, 2026u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto lazy =
        run_trace_scenario(SimLoopMode::kLazy, seed, 60, false, nullptr);
    const auto eager =
        run_trace_scenario(SimLoopMode::kEagerScan, seed, 60, false, nullptr);
    EXPECT_EQ(lazy, eager);
    EXPECT_EQ(lazy.size(), 60u);
  }
}

TEST(SimLoopTrace, SrptBitIdentical) {
  for (const std::uint64_t seed : {5u, 99u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ef::SrptScheduler a;
    ef::SrptScheduler b;
    const auto lazy =
        run_trace_scenario(SimLoopMode::kLazy, seed, 50, false, &a);
    const auto eager =
        run_trace_scenario(SimLoopMode::kEagerScan, seed, 50, false, &b);
    EXPECT_EQ(lazy, eager);
  }
}

TEST(SimLoopTrace, DeadlineSteppedBitIdentical) {
  for (const std::uint64_t seed : {21u, 1234u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto lazy =
        run_trace_scenario(SimLoopMode::kLazy, seed, 40, true, nullptr);
    const auto eager =
        run_trace_scenario(SimLoopMode::kEagerScan, seed, 40, true, nullptr);
    EXPECT_EQ(lazy, eager);
  }
}

// ============================================================================
// 3. run_sweep determinism
// ============================================================================

std::vector<cluster::SweepPoint> make_sweep_points() {
  std::vector<cluster::SweepPoint> points;
  for (const auto kind :
       {SchedulerKind::kFairSharing, SchedulerKind::kSrpt,
        SchedulerKind::kCoflowMadd, SchedulerKind::kEchelonMadd,
        SchedulerKind::kCoordinator}) {
    ExperimentConfig cfg;
    cfg.scheduler = kind;
    cfg.hosts = 16;
    cfg.port_capacity = gbps(25);
    points.push_back({small_trace(31), cfg});
  }
  // A jittered point: per-job seeded RNG must make the result independent of
  // which worker thread runs it.
  ExperimentConfig jcfg;
  jcfg.scheduler = SchedulerKind::kEchelonMadd;
  jcfg.hosts = 16;
  jcfg.port_capacity = gbps(25);
  points.push_back({small_trace(31, /*jitter=*/0.1), jcfg});
  return points;
}

TEST(RunSweep, ThreadedEqualsSerial) {
  const auto points = make_sweep_points();
  const auto serial = cluster::run_sweep(points, {.threads = 1});
  ASSERT_EQ(serial.size(), points.size());
  for (const unsigned threads : {2u, 4u, 8u}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    const auto parallel = cluster::run_sweep(points, {.threads = threads});
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE("point " + std::to_string(i));
      expect_same_result(parallel[i], serial[i]);
    }
  }
}

TEST(RunSweep, EmptyAndSinglePoint) {
  EXPECT_TRUE(cluster::run_sweep({}, {.threads = 4}).empty());
  const auto points = make_sweep_points();
  const auto one =
      cluster::run_sweep({points[0]}, {.threads = 4});
  ASSERT_EQ(one.size(), 1u);
  expect_same_result(
      one[0], cluster::run_experiment(points[0].jobs, points[0].config));
}

TEST(RunSweep, LowestIndexExceptionWins) {
  std::atomic<int> ran{0};
  try {
    cluster::parallel_for_indexed(8, 4, [&](std::size_t i) {
      ran.fetch_add(1);
      if (i == 2 || i == 5) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 2");
  }
  // Every index ran exactly once despite the failures.
  EXPECT_EQ(ran.load(), 8);
}

// ============================================================================
// 4. Zero-allocation steady-state event iterations
// ============================================================================

TEST(SimLoopAlloc, TimerIterationsAllocationFree) {
  auto fabric = topology::make_big_switch(4, gbps(10));
  Simulator sim(&fabric.topo);

  // A population of long-lived flows so every event iteration runs with a
  // non-trivial active set (the seed loop would have drained bytes across
  // all of them per event).
  for (int i = 0; i < 64; ++i) {
    netsim::FlowSpec spec;
    spec.src = fabric.hosts[i % 4];
    spec.dst = fabric.hosts[(i + 1) % 4];
    spec.size = 1e15;  // never finishes within the test horizon
    spec.label = "bg" + std::to_string(i);
    sim.submit_flow(std::move(spec));
  }

  // Self-rescheduling timers. The callback captures only a context pointer
  // (8 bytes): within std::function's small-object buffer, so every
  // steady-state reschedule is allocation-free end to end.
  struct Ticker {
    int fired = 0;
    double t_end = 1.0;
    void fire(Simulator& s) {
      ++fired;
      if (s.now() < t_end) {
        Ticker* self = this;
        s.schedule_after(0.0005, [self](Simulator& s2) { self->fire(s2); });
      }
    }
  } ticker;

  // Warm-up: grows the event-queue heap/pools and the flow rate state to
  // their high-water marks.
  Ticker* tp = &ticker;
  sim.schedule_at(0.0, [tp](Simulator& s) { tp->fire(s); });
  sim.run(0.1);
  const int fired_before = ticker.fired;

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  sim.run(0.9);
  g_count_allocs.store(false);

  // The window really was timer-dense.
  EXPECT_GT(ticker.fired, fired_before + 500);
#if ECHELON_ALLOC_HOOK
  EXPECT_EQ(g_alloc_count.load(), 0u)
      << "steady-state event iterations must not allocate";
#endif
  sim.run();  // drain cleanly (flows retire at the horizon via deadline stop)
}

// ============================================================================
// 5. Shared completion tail: zero-byte flows
// ============================================================================

TEST(ZeroByteFlow, InstantCompletionCanonicalOrder) {
  auto fabric = topology::make_big_switch(2, gbps(10));
  Simulator sim(&fabric.topo);

  std::vector<std::string> order;
  sim.add_flow_listener([&order](Simulator&, const netsim::Flow& f) {
    order.push_back("listener:" + f.spec.label);
  });

  netsim::FlowSpec spec;
  spec.src = fabric.hosts[0];
  spec.dst = fabric.hosts[1];
  spec.size = 0.0;
  spec.label = "ctl";
  const auto id = sim.submit_flow(
      std::move(spec), [&order](Simulator&, const netsim::Flow& f) {
        order.push_back("done:" + f.spec.label);
        EXPECT_EQ(f.state, netsim::FlowState::kFinished);
      });

  // Completed synchronously, never entered the active set.
  EXPECT_EQ(sim.active_flow_count(), 0u);
  EXPECT_TRUE(sim.flow(id).finished());
  EXPECT_EQ(sim.flow(id).finish_time, 0.0);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "done:ctl");      // per-flow callback first
  EXPECT_EQ(order[1], "listener:ctl");  // then global listeners
}

}  // namespace
}  // namespace echelon
