// Unit tests for the fluid discrete-event simulator: flow lifecycle, compute
// tasks, timers, listeners, determinism.

#include <gtest/gtest.h>

#include <vector>

#include "netsim/event_queue.hpp"
#include "netsim/simulator.hpp"
#include "topology/builders.hpp"

namespace echelon::netsim {
namespace {

TEST(EventQueue, OrdersByTimeThenSequence) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(2.0, [&] { fired.push_back(2); });
  q.schedule(1.0, [&] { fired.push_back(1); });
  q.schedule(1.0, [&] { fired.push_back(11); });  // same time, later seq
  EXPECT_EQ(q.next_time(), 1.0);
  while (!q.empty()) q.pop()();
  EXPECT_EQ(fired, (std::vector<int>{1, 11, 2}));
}

TEST(EventQueue, EmptyNextTimeIsInfinity) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), kTimeInfinity);
}

struct SimFixture : ::testing::Test {
  SimFixture() : fabric(topology::make_big_switch(4, 10.0)), sim(&fabric.topo) {}
  topology::BuiltFabric fabric;
  Simulator sim;
};

TEST_F(SimFixture, SingleFlowCompletesAtSizeOverRate) {
  const FlowId id = sim.submit_flow(FlowSpec{
      .src = fabric.hosts[0], .dst = fabric.hosts[1], .size = 50.0});
  sim.run();
  EXPECT_NEAR(sim.flow(id).finish_time, 5.0, 1e-9);
  EXPECT_TRUE(sim.flow(id).finished());
  EXPECT_EQ(sim.active_flow_count(), 0u);
}

TEST_F(SimFixture, TwoFlowsShareThenSpeedUp) {
  // Same port pair: fair sharing until the shorter finishes, then full rate.
  const FlowId a = sim.submit_flow(FlowSpec{
      .src = fabric.hosts[0], .dst = fabric.hosts[1], .size = 10.0});
  const FlowId b = sim.submit_flow(FlowSpec{
      .src = fabric.hosts[0], .dst = fabric.hosts[1], .size = 30.0});
  sim.run();
  // a: 10 bytes at 5 B/s -> t=2. b: 10 bytes by t=2, then 20 at 10 -> t=4.
  EXPECT_NEAR(sim.flow(a).finish_time, 2.0, 1e-9);
  EXPECT_NEAR(sim.flow(b).finish_time, 4.0, 1e-9);
}

TEST_F(SimFixture, StaggeredArrivalViaTimer) {
  std::vector<SimTime> finishes;
  sim.add_flow_listener([&finishes](Simulator& s, const Flow&) {
    finishes.push_back(s.now());
  });
  sim.submit_flow(FlowSpec{
      .src = fabric.hosts[0], .dst = fabric.hosts[1], .size = 40.0});
  sim.schedule_at(1.0, [this](Simulator& s) {
    s.submit_flow(FlowSpec{
        .src = fabric.hosts[0], .dst = fabric.hosts[1], .size = 10.0});
  });
  sim.run();
  // Flow 1 alone [0,1): 10 bytes. Then shared at 5 B/s. Flow 2: 10 bytes at
  // 5 B/s -> t=3. Flow 1: 10+2*5=20 by t=3, 20 left at 10 B/s -> t=5.
  ASSERT_EQ(finishes.size(), 2u);
  EXPECT_NEAR(finishes[0], 3.0, 1e-9);
  EXPECT_NEAR(finishes[1], 5.0, 1e-9);
}

TEST_F(SimFixture, ZeroByteFlowCompletesInstantly) {
  bool done = false;
  sim.submit_flow(FlowSpec{.src = fabric.hosts[0],
                           .dst = fabric.hosts[1],
                           .size = 0.0},
                  [&done](Simulator&, const Flow& f) {
                    done = true;
                    EXPECT_EQ(f.finish_time, f.start_time);
                  });
  EXPECT_TRUE(done);  // completed synchronously inside submit_flow
}

TEST_F(SimFixture, LoopbackFlowIsInstantaneous) {
  const FlowId id = sim.submit_flow(FlowSpec{
      .src = fabric.hosts[0], .dst = fabric.hosts[0], .size = 1e9});
  sim.run();
  EXPECT_NEAR(sim.flow(id).finish_time, 0.0, 1e-9);
}

TEST_F(SimFixture, TasksRunFifoPerWorker) {
  const WorkerId w = sim.add_worker(fabric.hosts[0]);
  std::vector<std::string> order;
  sim.add_task_listener([&order](Simulator&, const ComputeTask& t) {
    order.push_back(t.label);
  });
  sim.enqueue_task(w, 1.0, "a");
  sim.enqueue_task(w, 0.1, "b");  // shorter but queued second
  sim.run();
  EXPECT_EQ(order, (std::vector<std::string>{"a", "b"}));
  EXPECT_NEAR(sim.worker(w).busy_time, 1.1, 1e-9);
  EXPECT_NEAR(sim.worker(w).idle_fraction(), 0.0, 1e-9);
}

TEST_F(SimFixture, WorkersRunInParallel) {
  const WorkerId w0 = sim.add_worker(fabric.hosts[0]);
  const WorkerId w1 = sim.add_worker(fabric.hosts[1]);
  TaskId t0 = sim.enqueue_task(w0, 2.0, "x");
  TaskId t1 = sim.enqueue_task(w1, 2.0, "y");
  sim.run();
  EXPECT_NEAR(sim.task(t0).finish_time, 2.0, 1e-9);
  EXPECT_NEAR(sim.task(t1).finish_time, 2.0, 1e-9);
}

TEST_F(SimFixture, WorkerIdleFractionAccountsGaps) {
  const WorkerId w = sim.add_worker(fabric.hosts[0]);
  sim.enqueue_task(w, 1.0, "a");
  sim.schedule_at(3.0, [w](Simulator& s) { s.enqueue_task(w, 1.0, "b"); });
  sim.run();
  // Busy 2 s over the span [0, 4] -> 50% idle.
  EXPECT_NEAR(sim.worker(w).idle_fraction(), 0.5, 1e-9);
}

TEST_F(SimFixture, CallbackChainsFlowAfterTask) {
  const WorkerId w = sim.add_worker(fabric.hosts[0]);
  SimTime flow_done = 0.0;
  sim.enqueue_task(w, 1.5, "produce", JobId{0},
                   [&](Simulator& s, const ComputeTask&) {
                     s.submit_flow(FlowSpec{.src = fabric.hosts[0],
                                            .dst = fabric.hosts[1],
                                            .size = 10.0},
                                   [&](Simulator& s2, const Flow&) {
                                     flow_done = s2.now();
                                   });
                   });
  sim.run();
  EXPECT_NEAR(flow_done, 2.5, 1e-9);
}

TEST_F(SimFixture, RunUntilDeadlineStopsEarly) {
  sim.submit_flow(FlowSpec{
      .src = fabric.hosts[0], .dst = fabric.hosts[1], .size = 100.0});
  const SimTime t = sim.run(/*deadline=*/3.0);
  EXPECT_NEAR(t, 3.0, 1e-9);
  EXPECT_EQ(sim.active_flow_count(), 1u);
  // Resume to completion.
  const SimTime end = sim.run();
  EXPECT_NEAR(end, 10.0, 1e-9);
}

TEST_F(SimFixture, DeterministicReplay) {
  // Two identical simulations produce identical event trajectories.
  auto run_once = [this]() {
    topology::BuiltFabric f2 = topology::make_big_switch(4, 10.0);
    Simulator s(&f2.topo);
    std::vector<double> finishes;
    s.add_flow_listener([&finishes](Simulator& sm, const Flow&) {
      finishes.push_back(sm.now());
    });
    for (int i = 0; i < 20; ++i) {
      s.schedule_at(i * 0.1, [&f2, i](Simulator& sm) {
        sm.submit_flow(FlowSpec{.src = f2.hosts[i % 4],
                                .dst = f2.hosts[(i + 1) % 4],
                                .size = 10.0 + i});
      });
    }
    s.run();
    return finishes;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_F(SimFixture, ControlInvocationsCounted) {
  sim.submit_flow(FlowSpec{
      .src = fabric.hosts[0], .dst = fabric.hosts[1], .size = 10.0});
  sim.submit_flow(FlowSpec{
      .src = fabric.hosts[0], .dst = fabric.hosts[1], .size = 20.0});
  sim.run();
  // At least one pass per arrival batch and per departure.
  EXPECT_GE(sim.control_invocations(), 2u);
}

}  // namespace
}  // namespace echelon::netsim
