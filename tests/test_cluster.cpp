// Tests for trace generation and the cluster experiment runner.

#include <gtest/gtest.h>

#include "cluster/experiment.hpp"
#include "cluster/trace.hpp"

namespace echelon::cluster {
namespace {

TEST(Trace, DeterministicForSeed) {
  TraceConfig cfg;
  cfg.num_jobs = 8;
  cfg.seed = 7;
  const auto a = generate_trace(cfg);
  const auto b = generate_trace(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].paradigm, b[i].paradigm);
    EXPECT_EQ(a[i].ranks, b[i].ranks);
    EXPECT_DOUBLE_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].model.name, b[i].model.name);
  }
}

TEST(Trace, ArrivalsAreNonDecreasing) {
  TraceConfig cfg;
  cfg.num_jobs = 20;
  const auto jobs = generate_trace(cfg);
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    EXPECT_GE(jobs[i].arrival, jobs[i - 1].arrival);
  }
  EXPECT_DOUBLE_EQ(jobs[0].arrival, 0.0);
}

TEST(Trace, RespectsRankChoicesAndLayerBounds) {
  TraceConfig cfg;
  cfg.num_jobs = 30;
  cfg.rank_choices = {2, 4};
  cfg.min_layers = 3;
  cfg.max_layers = 5;
  const auto jobs = generate_trace(cfg);
  for (const JobSpec& j : jobs) {
    EXPECT_TRUE(j.ranks == 2 || j.ranks == 4);
    // Pipeline jobs may stretch layers up to `ranks`.
    EXPECT_GE(j.model.layer_count(), 3u);
    EXPECT_LE(j.model.layer_count(),
              std::max<std::size_t>(5u, static_cast<std::size_t>(j.ranks)));
  }
}

TEST(Trace, ParadigmWeightsZeroExcludes) {
  TraceConfig cfg;
  cfg.num_jobs = 30;
  cfg.paradigm_weights = {1.0, 0.0, 0.0, 0.0, 0.0, 0.0};  // DP-AllReduce only
  const auto jobs = generate_trace(cfg);
  for (const JobSpec& j : jobs) {
    EXPECT_EQ(j.paradigm, workload::Paradigm::kDpAllReduce);
  }
}

// Small mixed workload shared by the experiment tests.
std::vector<JobSpec> small_trace() {
  TraceConfig cfg;
  cfg.num_jobs = 5;
  cfg.seed = 3;
  cfg.rank_choices = {2, 4};
  cfg.min_layers = 3;
  cfg.max_layers = 4;
  cfg.min_width = 256;
  cfg.max_width = 512;
  cfg.arrival_rate = 5.0;
  cfg.iterations = 2;
  return generate_trace(cfg);
}

TEST(Experiment, AllJobsCompleteUnderEveryScheduler) {
  const auto jobs = small_trace();
  for (const SchedulerKind kind :
       {SchedulerKind::kFairSharing, SchedulerKind::kCoflowMadd,
        SchedulerKind::kEchelonMadd, SchedulerKind::kCoordinator}) {
    ExperimentConfig cfg;
    cfg.scheduler = kind;
    cfg.hosts = 8;
    const ExperimentResult r = run_experiment(jobs, cfg);
    EXPECT_EQ(r.jobs.size(), jobs.size()) << to_string(kind);
    for (const JobMetrics& jm : r.jobs) {
      EXPECT_GT(jm.jct(), 0.0);
      EXPECT_EQ(jm.iteration_times.size(), 2u);
      for (const Duration t : jm.iteration_times) EXPECT_GT(t, 0.0);
    }
    EXPECT_GT(r.makespan, 0.0);
    EXPECT_GE(r.total_tardiness, 0.0);
    EXPECT_GT(r.control_invocations, 0u);
  }
}

TEST(Experiment, EchelonBeatsOrMatchesBaselinesOnTardiness) {
  const auto jobs = small_trace();
  auto run = [&](SchedulerKind kind) {
    ExperimentConfig cfg;
    cfg.scheduler = kind;
    cfg.hosts = 8;
    return run_experiment(jobs, cfg);
  };
  const auto fair = run(SchedulerKind::kFairSharing);
  const auto echelon = run(SchedulerKind::kEchelonMadd);
  // The Eq. 4 objective: the tardiness-minimizing scheduler should not lose
  // to fair sharing on its own objective (allowing small heuristic slack).
  EXPECT_LE(echelon.total_tardiness, fair.total_tardiness * 1.05 + 1e-6);
}

TEST(Experiment, DeterministicAcrossRuns) {
  const auto jobs = small_trace();
  ExperimentConfig cfg;
  cfg.scheduler = SchedulerKind::kEchelonMadd;
  cfg.hosts = 8;
  const auto a = run_experiment(jobs, cfg);
  const auto b = run_experiment(jobs, cfg);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].finish, b.jobs[i].finish);
  }
  EXPECT_DOUBLE_EQ(a.total_tardiness, b.total_tardiness);
}

TEST(Experiment, PriorityQueueEnforcementStillCompletes) {
  const auto jobs = small_trace();
  ExperimentConfig cfg;
  cfg.scheduler = SchedulerKind::kEchelonMadd;
  cfg.hosts = 8;
  cfg.priority_queues = 8;
  const auto r = run_experiment(jobs, cfg);
  EXPECT_EQ(r.jobs.size(), jobs.size());
  EXPECT_NE(r.scheduler_name.find("+pq8"), std::string::npos);
}

TEST(Experiment, CoordinatorIntervalModeReportsControlStats) {
  const auto jobs = small_trace();
  ExperimentConfig cfg;
  cfg.scheduler = SchedulerKind::kCoordinator;
  cfg.hosts = 8;
  cfg.coordinator.mode = runtime::SchedulingMode::kInterval;
  cfg.coordinator.interval = 1e-3;
  cfg.coordinator.iterative_reuse = true;
  const auto r = run_experiment(jobs, cfg);
  EXPECT_EQ(r.jobs.size(), jobs.size());
  EXPECT_GT(r.heuristic_runs, 0u);
  // Interval mode must run the heuristic less often than the per-event
  // control-invocation count.
  EXPECT_LT(r.heuristic_runs, r.control_invocations);
}

TEST(Experiment, SrptSchedulerCompletesAllJobs) {
  const auto jobs = small_trace();
  ExperimentConfig cfg;
  cfg.scheduler = SchedulerKind::kSrpt;
  cfg.hosts = 8;
  const auto r = run_experiment(jobs, cfg);
  EXPECT_EQ(r.jobs.size(), jobs.size());
  EXPECT_EQ(r.scheduler_name, "srpt");
}

TEST(Experiment, LeafSpineFabricCompletesAllJobs) {
  const auto jobs = small_trace();
  for (const double oversub : {1.0, 4.0}) {
    ExperimentConfig cfg;
    cfg.scheduler = SchedulerKind::kEchelonMadd;
    cfg.fabric = FabricKind::kLeafSpine;
    cfg.oversubscription = oversub;
    cfg.hosts = 16;
    const auto r = run_experiment(jobs, cfg);
    EXPECT_EQ(r.jobs.size(), jobs.size());
    EXPECT_GT(r.makespan, 0.0);
  }
}

TEST(Experiment, OversubscriptionNeverSpeedsThingsUp) {
  const auto jobs = small_trace();
  auto run_oversub = [&](double o) {
    ExperimentConfig cfg;
    cfg.scheduler = SchedulerKind::kFairSharing;
    cfg.fabric = FabricKind::kLeafSpine;
    cfg.oversubscription = o;
    cfg.hosts = 16;
    cfg.port_capacity = gbps(1);  // make the network the bottleneck
    return run_experiment(jobs, cfg).iteration_samples().mean();
  };
  EXPECT_LE(run_oversub(1.0), run_oversub(8.0) + 1e-9);
}

TEST(Experiment, SingleParadigmTracesRunEachParadigm) {
  for (int p = 0; p < 6; ++p) {
    TraceConfig tcfg;
    tcfg.num_jobs = 2;
    tcfg.seed = 11;
    tcfg.paradigm_weights = {0, 0, 0, 0, 0, 0};
    tcfg.paradigm_weights[static_cast<std::size_t>(p)] = 1.0;
    tcfg.rank_choices = {2};
    tcfg.min_layers = 3;
    tcfg.max_layers = 3;
    tcfg.min_width = 128;
    tcfg.max_width = 128;
    const auto jobs = generate_trace(tcfg);
    ExperimentConfig cfg;
    cfg.scheduler = SchedulerKind::kEchelonMadd;
    cfg.hosts = 4;
    const auto r = run_experiment(jobs, cfg);
    EXPECT_EQ(r.jobs.size(), 2u)
        << workload::to_string(static_cast<workload::Paradigm>(p));
  }
}

}  // namespace
}  // namespace echelon::cluster
