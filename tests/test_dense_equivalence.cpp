// Golden-equivalence suite for the dense-state hot path (see DESIGN.md,
// "Hot-path data layout").
//
// The arena-backed schedulers/allocator were written to be *decision
// equivalent* with the seed (hash-map based) implementations: identical
// floating-point operation order, identical tie-breaks, identical results.
// This suite keeps them honest:
//
//   1. Reference (seed-logic) implementations of the rate allocator and all
//      five schedulers live in namespace `ref` below -- verbatim ports of
//      the pre-dense code, hash maps and all. (The allocator reference
//      tracks the canonical algorithm, which since the incremental
//      reallocation change is *per-component* progressive filling; it stays
//      map-based so it keeps pinning dense-vs-map equivalence.)
//   2. Randomized scenarios (>= 200 in total across big-switch and fat-tree
//      fabrics) run both implementations on identical flow sets and assert
//      bit-identical per-flow weights, rate caps and rates.
//   3. Full-simulation runs compare per-flow finish times, makespan and
//      total EchelonFlow tardiness end to end.
//   4. An allocation-counting operator-new hook proves the steady-state
//      control() + allocate() path performs zero heap allocations.
//   5. The Simulator satellite changes are covered: submit_flow now throws
//      on unroutable endpoints instead of release-mode UB.

// The allocation-counting operator-new hook (and the ECHELON_ALLOC_HOOK
// sanitizer gate) live in the shared harness so all three equivalence suites
// count with the same machinery.
#include "equivalence_harness.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "echelon/aalo.hpp"
#include "echelon/coflow_madd.hpp"
#include "echelon/echelon_madd.hpp"
#include "echelon/registry.hpp"
#include "echelon/sincronia.hpp"
#include "echelon/srpt.hpp"

namespace echelon {
namespace {

using ef::Arrangement;
using ef::Registry;
using netsim::Flow;
using netsim::FlowSpec;
using netsim::Simulator;

constexpr double kInf = std::numeric_limits<double>::infinity();

// ============================================================================
// Reference (seed-logic) implementations
// ============================================================================
namespace ref {

// --- reference RateAllocator::allocate --------------------------------------
// The canonical algorithm (since the incremental-allocation change) is
// *per-component* progressive filling: contended flows are partitioned into
// link-contention components and each component is water-filled
// independently (max-min fairness is separable across link-disjoint flow
// sets). Since the equivalence-class fill change the per-round link update
// is the *grouping-invariant* form (DESIGN.md §11): every component link's
// remaining capacity decreases once per round by delta * unfrozen_weight,
// instead of once per member by member_weight * delta -- the form whose
// floating-point trajectory is independent of how flows are grouped into
// fill units, which is what lets the class fill be bit-identical to the
// per-flow fill. This reference implements exactly that with hash maps and
// a plain DSU; the production allocator uses epoch-stamped dense scratch, a
// union-find threaded through the per-link state, and (in kIncremental
// mode) a converged-rate cache -- see netsim/allocator.cpp and
// tests/test_alloc_equivalence.cpp for the incremental-vs-full suite.
// Degenerate (<= 0) weights are clamped to kMinFlowWeight, mirroring the
// production fix for the old divide-by-zero.
void allocate(const topology::Topology& topo, std::span<Flow*> flows) {
  struct LinkLoad {
    double remaining_capacity = 0.0;
    double unfrozen_weight = 0.0;
    std::size_t owner = 0;  // first contended-flow index on this link
  };
  std::unordered_map<std::uint64_t, LinkLoad> links;

  std::vector<Flow*> contended;
  std::vector<double> weight;  // clamped effective weights
  std::vector<std::size_t> parent;
  auto find = [&parent](std::size_t s) {
    while (parent[s] != s) {
      parent[s] = parent[parent[s]];
      s = parent[s];
    }
    return s;
  };
  for (Flow* f : flows) {
    if (f->finished()) {
      f->rate = 0.0;
      continue;
    }
    f->rate = 0.0;
    if (f->rate_cap && *f->rate_cap <= 0.0) continue;
    if (f->path.empty()) {
      f->rate = f->rate_cap ? *f->rate_cap : kInf;
      continue;
    }
    const std::size_t slot = contended.size();
    const double w = f->weight > netsim::kMinFlowWeight
                         ? f->weight
                         : netsim::kMinFlowWeight;
    contended.push_back(f);
    weight.push_back(w);
    parent.push_back(slot);
    for (LinkId lid : f->path) {
      auto [it, inserted] = links.try_emplace(lid.value());
      if (inserted) {
        it->second.remaining_capacity = topo.link(lid).capacity;
        it->second.owner = slot;
      }
      it->second.unfrozen_weight += w;
      const std::size_t ra = find(it->second.owner);
      const std::size_t rb = find(slot);
      if (ra != rb) parent[rb] = ra;
    }
  }

  // Bucket contended flows into components, first-member order outside and
  // span order inside (matching the production counting sort).
  std::unordered_map<std::size_t, std::size_t> comp_of_root;
  std::vector<std::vector<std::size_t>> comps;
  for (std::size_t s = 0; s < contended.size(); ++s) {
    const std::size_t r = find(s);
    auto [it, inserted] = comp_of_root.try_emplace(r, comps.size());
    if (inserted) comps.emplace_back();
    comps[it->second].push_back(s);
  }

  for (const std::vector<std::size_t>& members : comps) {
    // Deduped component link list (first-use member order): the canonical
    // per-round update touches every component link exactly once.
    std::vector<std::uint64_t> comp_links;
    {
      std::unordered_map<std::uint64_t, bool> listed;
      for (const std::size_t s : members) {
        for (LinkId lid : contended[s]->path) {
          if (listed.try_emplace(lid.value(), true).second) {
            comp_links.push_back(lid.value());
          }
        }
      }
    }
    std::vector<std::size_t> unfrozen = members;
    while (!unfrozen.empty()) {
      double delta = kInf;
      for (const std::size_t s : unfrozen) {
        const Flow* f = contended[s];
        for (LinkId lid : f->path) {
          const LinkLoad& ll = links.at(lid.value());
          delta = std::min(delta, ll.remaining_capacity / ll.unfrozen_weight);
        }
        if (f->rate_cap) {
          delta = std::min(delta, (*f->rate_cap - f->rate) / weight[s]);
        }
      }
      if (!std::isfinite(delta)) break;
      delta = std::max(delta, 0.0);

      std::vector<std::size_t> next;
      next.reserve(unfrozen.size());
      for (const std::size_t s : unfrozen) {
        contended[s]->rate += weight[s] * delta;
      }
      // Grouping-invariant link update: once per link per round, by the
      // link's aggregate unfrozen weight (a fully-frozen link carries
      // unfrozen_weight == +-0.0, making the subtraction an exact no-op).
      for (const std::uint64_t l : comp_links) {
        LinkLoad& ll = links.at(l);
        ll.remaining_capacity -= delta * ll.unfrozen_weight;
      }
      constexpr double kEps = 1e-12;
      for (const std::size_t s : unfrozen) {
        Flow* f = contended[s];
        bool frozen = false;
        if (f->rate_cap && f->rate >= *f->rate_cap - kEps) {
          f->rate = *f->rate_cap;
          frozen = true;
        } else {
          for (LinkId lid : f->path) {
            if (links.at(lid.value()).remaining_capacity <= kEps) {
              frozen = true;
              break;
            }
          }
        }
        if (frozen) {
          for (LinkId lid : f->path) {
            links.at(lid.value()).unfrozen_weight -= weight[s];
          }
        } else {
          next.push_back(s);
        }
      }
      if (next.size() == unfrozen.size()) break;
      unfrozen.swap(next);
    }
  }
}

// --- seed ResidualCaps (hash-map residuals) ---------------------------------
class ResidualCaps {
 public:
  explicit ResidualCaps(const topology::Topology* topo) : topo_(topo) {}

  [[nodiscard]] double residual(LinkId lid) const {
    const auto it = residual_.find(lid.value());
    return it != residual_.end() ? it->second : topo_->link(lid).capacity;
  }
  [[nodiscard]] double path_residual(const Flow& f) const {
    double r = kInf;
    for (LinkId lid : f.path) r = std::min(r, residual(lid));
    return r;
  }
  void consume(const Flow& f, double rate) {
    if (rate <= 0.0) return;
    for (LinkId lid : f.path) {
      auto [it, inserted] =
          residual_.try_emplace(lid.value(), topo_->link(lid).capacity);
      it->second = std::max(0.0, it->second - rate);
    }
  }

 private:
  const topology::Topology* topo_;
  std::unordered_map<std::uint64_t, double> residual_;
};

// --- seed SRPT --------------------------------------------------------------
class Srpt final : public netsim::NetworkScheduler {
 public:
  void control(Simulator& sim, std::span<Flow*> active) override {
    std::vector<Flow*> order;
    order.reserve(active.size());
    for (Flow* f : active) {
      if (f->path.empty()) {
        f->weight = 1.0;
        f->rate_cap.reset();
        continue;
      }
      order.push_back(f);
    }
    std::stable_sort(order.begin(), order.end(),
                     [](const Flow* a, const Flow* b) {
                       if (a->remaining != b->remaining) {
                         return a->remaining < b->remaining;
                       }
                       return a->id < b->id;
                     });
    ResidualCaps caps(&sim.topology());
    for (Flow* f : order) {
      const double rate = caps.path_residual(*f);
      f->weight = 1.0;
      f->rate_cap = std::isfinite(rate) ? rate : 0.0;
      caps.consume(*f, f->rate_cap.value());
    }
  }
  [[nodiscard]] std::string name() const override { return "ref-srpt"; }
};

// --- seed Coflow-MADD (SEBF + MADD, std::map groups) ------------------------
class CoflowMadd final : public netsim::NetworkScheduler {
 public:
  explicit CoflowMadd(ef::CoflowMaddConfig config = {}) : config_(config) {}

  void control(Simulator& sim, std::span<Flow*> active) override {
    const topology::Topology& topo = sim.topology();
    struct Group {
      std::vector<Flow*> flows;
      double gamma_standalone = 0.0;
    };
    std::map<std::uint64_t, Group> groups;
    constexpr std::uint64_t kSingletonBase = 1ULL << 63;
    for (Flow* f : active) {
      if (f->path.empty()) {
        f->weight = 1.0;
        f->rate_cap.reset();
        continue;
      }
      const std::uint64_t key = f->spec.group.valid()
                                    ? f->spec.group.value()
                                    : kSingletonBase | f->id.value();
      groups[key].flows.push_back(f);
    }

    auto standalone_gamma = [&topo](const Group& g) {
      std::unordered_map<std::uint64_t, double> load;
      for (const Flow* f : g.flows) {
        for (LinkId lid : f->path) load[lid.value()] += f->remaining;
      }
      double gamma = 0.0;
      for (const auto& [lid, bytes] : load) {
        const double cap = topo.link(LinkId{lid}).capacity;
        gamma = std::max(gamma, cap > 0.0 ? bytes / cap : kInf);
      }
      return gamma;
    };
    auto residual_gamma = [](const ResidualCaps& caps, const Group& g) {
      std::unordered_map<std::uint64_t, double> load;
      for (const Flow* f : g.flows) {
        for (LinkId lid : f->path) load[lid.value()] += f->remaining;
      }
      double gamma = 0.0;
      for (const auto& [lid, bytes] : load) {
        const double cap = caps.residual(LinkId{lid});
        if (cap <= 0.0) return kInf;
        gamma = std::max(gamma, bytes / cap);
      }
      return gamma;
    };

    std::vector<std::map<std::uint64_t, Group>::iterator> order;
    order.reserve(groups.size());
    for (auto it = groups.begin(); it != groups.end(); ++it) {
      it->second.gamma_standalone = standalone_gamma(it->second);
      order.push_back(it);
    }
    std::stable_sort(order.begin(), order.end(), [](auto a, auto b) {
      return a->second.gamma_standalone < b->second.gamma_standalone;
    });

    ResidualCaps caps(&topo);
    for (auto it : order) {
      Group& g = it->second;
      const double gamma = residual_gamma(caps, g);
      for (Flow* f : g.flows) {
        double rate =
            std::isinf(gamma) || gamma <= 0.0 ? 0.0 : f->remaining / gamma;
        rate = std::min(rate, caps.path_residual(*f));
        f->weight = 1.0;
        f->rate_cap = rate;
        caps.consume(*f, rate);
      }
    }

    if (config_.work_conserving) {
      for (auto it : order) {
        Group& g = it->second;
        std::unordered_map<std::uint64_t, double> load;
        for (const Flow* f : g.flows) {
          for (LinkId lid : f->path) load[lid.value()] += f->remaining;
        }
        double lambda = kInf;
        for (const auto& [lid, bytes] : load) {
          if (bytes <= 0.0) continue;
          lambda = std::min(lambda, caps.residual(LinkId{lid}) / bytes);
        }
        if (!std::isfinite(lambda) || lambda < 0.0) lambda = 0.0;
        for (Flow* f : g.flows) {
          const double extra = f->remaining * lambda;
          if (extra <= 0.0) continue;
          f->rate_cap = *f->rate_cap + extra;
          caps.consume(*f, extra);
        }
      }
      for (auto it : order) {
        for (Flow* f : it->second.flows) {
          const double extra = caps.path_residual(*f);
          if (extra <= 0.0 || !std::isfinite(extra)) continue;
          f->rate_cap = *f->rate_cap + extra;
          caps.consume(*f, extra);
        }
      }
    }
  }
  [[nodiscard]] std::string name() const override { return "ref-coflow"; }

 private:
  ef::CoflowMaddConfig config_;
};

// --- seed EchelonFlow-MADD (std::map groups, per-pass sorts) ----------------
class EchelonMadd final : public netsim::NetworkScheduler {
 public:
  explicit EchelonMadd(const Registry* registry,
                       ef::EchelonMaddConfig config = {})
      : registry_(registry), config_(config) {}

  void control(Simulator& sim, std::span<Flow*> active) override {
    const topology::Topology& topo = sim.topology();
    const SimTime now = sim.now();

    struct Member {
      Flow* flow = nullptr;
      SimTime deadline = 0.0;
    };
    struct Group {
      std::vector<Member> members;
      double tardiness_standalone = 0.0;
      double weight = 1.0;
      double rank_key = 0.0;
    };

    auto min_uniform_tardiness = [&topo, now](const Group& g,
                                              const ResidualCaps* residual) {
      struct PerLink {
        double prefix_bytes = 0.0;
        double cap = 0.0;
      };
      std::unordered_map<std::uint64_t, PerLink> links;
      double t = 0.0;
      for (const Member& m : g.members) {
        for (LinkId lid : m.flow->path) {
          auto [it, inserted] = links.try_emplace(lid.value());
          if (inserted) {
            it->second.cap = residual != nullptr
                                 ? residual->residual(lid)
                                 : topo.link(lid).capacity;
          }
          it->second.prefix_bytes += m.flow->remaining;
          if (it->second.cap <= 0.0) return kInf;
          t = std::max(t, it->second.prefix_bytes / it->second.cap -
                              (m.deadline - now));
        }
      }
      return t;
    };

    std::map<std::uint64_t, Group> groups;
    constexpr std::uint64_t kSingletonBase = 1ULL << 63;
    for (Flow* f : active) {
      if (f->path.empty()) {
        f->weight = 1.0;
        f->rate_cap.reset();
        continue;
      }
      std::uint64_t key = kSingletonBase | f->id.value();
      SimTime deadline = f->start_time;
      double weight = 1.0;
      if (f->spec.group.valid() && registry_ != nullptr &&
          registry_->contains(f->spec.group)) {
        const ef::EchelonFlow& eflow = registry_->get(f->spec.group);
        if (const auto d = eflow.ideal_finish(f->spec.index_in_group)) {
          key = f->spec.group.value();
          deadline = *d;
          weight = eflow.weight();
        }
      }
      Group& g = groups[key];
      g.members.push_back(Member{f, deadline});
      g.weight = weight;
    }

    std::vector<std::map<std::uint64_t, Group>::iterator> order;
    order.reserve(groups.size());
    for (auto it = groups.begin(); it != groups.end(); ++it) {
      Group& g = it->second;
      std::stable_sort(g.members.begin(), g.members.end(),
                       [](const Member& a, const Member& b) {
                         return a.deadline < b.deadline;
                       });
      g.tardiness_standalone = min_uniform_tardiness(g, nullptr);
      g.rank_key = config_.use_weights && g.weight > 0.0
                       ? g.tardiness_standalone / g.weight
                       : g.tardiness_standalone;
      order.push_back(it);
    }
    const bool smallest_first =
        config_.ranking == ef::InterRanking::kSmallestTardinessFirst;
    std::stable_sort(order.begin(), order.end(),
                     [smallest_first](auto a, auto b) {
                       const double ta = a->second.rank_key;
                       const double tb = b->second.rank_key;
                       return smallest_first ? ta < tb : ta > tb;
                     });

    ResidualCaps caps(&topo);
    for (auto it : order) {
      Group& g = it->second;
      const double tstar = min_uniform_tardiness(g, &caps);
      std::size_t i = 0;
      while (i < g.members.size()) {
        std::size_t j = i + 1;
        while (j < g.members.size() &&
               time_eq(g.members[j].deadline, g.members[i].deadline)) {
          ++j;
        }
        for (std::size_t k = i; k < j; ++k) {
          Flow* f = g.members[k].flow;
          double rate = 0.0;
          if (std::isfinite(tstar)) {
            const double horizon = g.members[k].deadline + tstar - now;
            rate = horizon > 0.0 ? f->remaining / horizon : kInf;
          }
          rate = std::min(rate, caps.path_residual(*f));
          f->weight = 1.0;
          f->rate_cap = rate;
          caps.consume(*f, rate);
        }
        if (config_.work_conserving) {
          std::unordered_map<std::uint64_t, double> load;
          for (std::size_t k = i; k < j; ++k) {
            const Flow* f = g.members[k].flow;
            for (LinkId lid : f->path) load[lid.value()] += f->remaining;
          }
          double lambda = kInf;
          for (const auto& [lid, bytes] : load) {
            if (bytes <= 0.0) continue;
            lambda = std::min(lambda, caps.residual(LinkId{lid}) / bytes);
          }
          if (std::isfinite(lambda) && lambda > 0.0) {
            for (std::size_t k = i; k < j; ++k) {
              Flow* f = g.members[k].flow;
              const double extra = f->remaining * lambda;
              if (extra <= 0.0) continue;
              f->rate_cap = *f->rate_cap + extra;
              caps.consume(*f, extra);
            }
          }
        }
        i = j;
      }
    }

    if (config_.work_conserving) {
      for (auto it : order) {
        for (Member& m : it->second.members) {
          const double extra = caps.path_residual(*m.flow);
          if (extra <= 0.0 || !std::isfinite(extra)) continue;
          m.flow->rate_cap = *m.flow->rate_cap + extra;
          caps.consume(*m.flow, extra);
        }
      }
    }
  }
  [[nodiscard]] std::string name() const override { return "ref-echelon"; }

 private:
  const Registry* registry_;
  ef::EchelonMaddConfig config_;
};

// --- seed Aalo (std::map groups, per-pass sort) -----------------------------
class Aalo final : public netsim::NetworkScheduler {
 public:
  explicit Aalo(ef::AaloConfig config = {}) : config_(config) {}

  void on_flow_arrival(Simulator&, const Flow& flow) override {
    const std::uint64_t key = flow.spec.group.valid()
                                  ? flow.spec.group.value()
                                  : (1ULL << 63) | flow.id.value();
    group_arrival_.try_emplace(key, arrival_counter_++);
  }

  void control(Simulator& sim, std::span<Flow*> active) override {
    struct Group {
      std::vector<Flow*> flows;
      Bytes sent = 0.0;
      std::uint64_t arrival = 0;
      int queue = 0;
    };
    std::map<std::uint64_t, Group> groups;
    for (Flow* f : active) {
      if (f->path.empty()) {
        f->weight = 1.0;
        f->rate_cap.reset();
        continue;
      }
      const std::uint64_t key = f->spec.group.valid()
                                    ? f->spec.group.value()
                                    : (1ULL << 63) | f->id.value();
      Group& g = groups[key];
      g.flows.push_back(f);
      g.sent += f->spec.size - f->remaining;
      const auto it = group_arrival_.find(key);
      g.arrival = it != group_arrival_.end() ? it->second : arrival_counter_;
    }

    std::vector<Group*> order;
    order.reserve(groups.size());
    for (auto& [key, g] : groups) {
      (void)key;
      double threshold = config_.base_threshold;
      int q = 0;
      while (q < config_.num_queues - 1 && g.sent >= threshold) {
        threshold *= config_.multiplier;
        ++q;
      }
      g.queue = q;
      order.push_back(&g);
    }
    std::stable_sort(order.begin(), order.end(),
                     [](const Group* a, const Group* b) {
                       if (a->queue != b->queue) return a->queue < b->queue;
                       return a->arrival < b->arrival;
                     });

    ResidualCaps caps(&sim.topology());
    for (Group* g : order) {
      for (Flow* f : g->flows) {
        const double rate = caps.path_residual(*f);
        f->weight = 1.0;
        f->rate_cap = std::isfinite(rate) ? rate : 0.0;
        caps.consume(*f, *f->rate_cap);
      }
    }
  }
  [[nodiscard]] std::string name() const override { return "ref-aalo"; }

 private:
  ef::AaloConfig config_;
  std::unordered_map<std::uint64_t, std::uint64_t> group_arrival_;
  std::uint64_t arrival_counter_ = 0;
};

// --- seed Sincronia (BSSI + greedy fill, hash-map residuals) ----------------
class Sincronia final : public netsim::NetworkScheduler {
 public:
  void control(Simulator& sim, std::span<Flow*> active) override {
    struct Group {
      std::vector<Flow*> flows;
      std::unordered_map<std::uint64_t, Bytes> port_load;
      bool placed = false;
    };
    std::map<std::uint64_t, Group> groups;
    for (Flow* f : active) {
      if (f->path.empty()) {
        f->weight = 1.0;
        f->rate_cap.reset();
        continue;
      }
      const std::uint64_t key = f->spec.group.valid()
                                    ? f->spec.group.value()
                                    : (1ULL << 63) | f->id.value();
      Group& g = groups[key];
      g.flows.push_back(f);
      for (LinkId lid : f->path) g.port_load[lid.value()] += f->remaining;
    }
    if (groups.empty()) return;

    const topology::Topology& topo = sim.topology();
    std::vector<Group*> reverse_order;
    reverse_order.reserve(groups.size());
    std::unordered_map<std::uint64_t, Bytes> port_total;
    for (const auto& [key, g] : groups) {
      (void)key;
      for (const auto& [port, bytes] : g.port_load) port_total[port] += bytes;
    }
    for (std::size_t placed = 0; placed < groups.size(); ++placed) {
      std::uint64_t bottleneck = 0;
      double worst = -1.0;
      for (const auto& [port, bytes] : port_total) {
        const double cap = topo.link(LinkId{port}).capacity;
        const double load = cap > 0.0 ? bytes / cap : bytes;
        if (load > worst) {
          worst = load;
          bottleneck = port;
        }
      }
      Group* last = nullptr;
      Bytes last_bytes = -1.0;
      for (auto& [key, g] : groups) {
        (void)key;
        if (g.placed) continue;
        const auto it = g.port_load.find(bottleneck);
        const Bytes b = it != g.port_load.end() ? it->second : 0.0;
        if (b > last_bytes) {
          last_bytes = b;
          last = &g;
        }
      }
      last->placed = true;
      reverse_order.push_back(last);
      for (const auto& [port, bytes] : last->port_load) {
        port_total[port] -= bytes;
      }
    }

    ResidualCaps caps(&topo);
    for (auto it = reverse_order.rbegin(); it != reverse_order.rend(); ++it) {
      for (Flow* f : (*it)->flows) {
        const double rate = caps.path_residual(*f);
        f->weight = 1.0;
        f->rate_cap = std::isfinite(rate) ? rate : 0.0;
        caps.consume(*f, *f->rate_cap);
      }
    }
  }
  [[nodiscard]] std::string name() const override { return "ref-sincronia"; }
};

}  // namespace ref

// ============================================================================
// Scenario generation
// ============================================================================

topology::BuiltFabric make_fabric(int topo_kind) {
  // 0: big switch (16 hosts), 1: fat-tree k=4 (16 hosts).
  return topo_kind == 0 ? topology::make_big_switch(16, 10e9)
                        : topology::make_fat_tree(4, 10e9);
}

// A control-pass scenario: value-typed flows (ids 0..N-1) plus a registry
// with bound reference times. Copy the flow vector per implementation so both
// sides see identical state.
struct PassScenario {
  std::vector<Flow> flows;
  std::unique_ptr<Registry> registry;
};

PassScenario make_pass_scenario(const topology::BuiltFabric& fabric,
                                std::uint64_t seed) {
  Rng rng(seed);
  PassScenario sc;
  sc.registry = std::make_unique<Registry>();
  const int hosts = static_cast<int>(fabric.hosts.size());

  // EchelonFlow groups with mixed arrangements.
  struct GroupInfo {
    EchelonFlowId id;
    int capacity = 0;   // arrangement cardinality
    int next_index = 0; // members assigned so far
  };
  std::vector<GroupInfo> groups;
  const int num_groups = 1 + static_cast<int>(rng.uniform_int(5));
  for (int g = 0; g < num_groups; ++g) {
    const int n = 2 + static_cast<int>(rng.uniform_int(7));
    Arrangement arr;
    switch (rng.uniform_int(3)) {
      case 0:
        arr = Arrangement::coflow(n);
        break;
      case 1:
        arr = Arrangement::pipeline(n, rng.uniform(1e-3, 20e-3));
        break;
      default:
        arr = Arrangement::fsdp(std::max(1, n / 2), 2, rng.uniform(1e-3, 5e-3),
                                rng.uniform(1e-3, 5e-3));
        break;
    }
    const int capacity = arr.size();
    groups.push_back({sc.registry->create(JobId{0}, std::move(arr)), capacity,
                      0});
  }

  const int num_flows = 8 + static_cast<int>(rng.uniform_int(33));
  for (int i = 0; i < num_flows; ++i) {
    Flow f;
    f.id = FlowId{static_cast<std::uint64_t>(i)};
    const int src = static_cast<int>(rng.uniform_int(hosts));
    int dst = static_cast<int>(rng.uniform_int(hosts));
    if (rng.uniform() < 0.05) dst = src;  // occasional loopback flow
    f.spec.src = fabric.hosts[src];
    f.spec.dst = fabric.hosts[dst];
    f.spec.size = rng.uniform(1e3, 200e6);
    f.spec.label = "f" + std::to_string(i);
    // ~70% of flows belong to an EchelonFlow group (first one with room).
    if (rng.uniform() < 0.7) {
      const std::size_t start = rng.uniform_int(groups.size());
      for (std::size_t k = 0; k < groups.size(); ++k) {
        GroupInfo& g = groups[(start + k) % groups.size()];
        if (g.next_index < g.capacity) {
          f.spec.group = g.id;
          f.spec.index_in_group = g.next_index++;
          break;
        }
      }
    }
    f.remaining = f.spec.size * rng.uniform(0.05, 1.0);
    f.start_time = rng.uniform(0.0, 0.5);
    if (src != dst) {
      // Both fabrics are fully connected, so routing cannot fail here.
      f.path = *fabric.topo.route(f.spec.src, f.spec.dst, f.id.value());
    }
    // Bind reference times as the runtime would (ignores group-less flows;
    // members past the arrangement's cardinality are ignored too, exercising
    // the fallback-deadline path).
    sc.registry->note_arrival(f, f.start_time);
    sc.flows.push_back(std::move(f));
  }
  return sc;
}

// Runs `sched` + the dense allocator on copy A and `ref_sched` + the seed
// allocator on copy B; asserts bit-identical control decisions and rates.
void compare_pass(const topology::BuiltFabric& fabric, const PassScenario& sc,
                  netsim::NetworkScheduler& sched,
                  netsim::NetworkScheduler& ref_sched,
                  const std::string& tag) {
  std::vector<Flow> a = sc.flows;
  std::vector<Flow> b = sc.flows;
  std::vector<Flow*> pa, pb;
  for (Flow& f : a) pa.push_back(&f);
  for (Flow& f : b) pb.push_back(&f);

  Simulator sim(&fabric.topo);  // control() only reads topology() / now()

  sched.control(sim, pa);
  netsim::RateAllocator alloc(&fabric.topo);
  alloc.allocate(pa);

  ref_sched.control(sim, pb);
  ref::allocate(fabric.topo, pb);

  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(tag + " flow " + std::to_string(i));
    EXPECT_EQ(a[i].weight, b[i].weight);
    ASSERT_EQ(a[i].rate_cap.has_value(), b[i].rate_cap.has_value());
    if (a[i].rate_cap.has_value()) {
      EXPECT_EQ(*a[i].rate_cap, *b[i].rate_cap);
    }
    EXPECT_EQ(a[i].rate, b[i].rate);
  }
}

// ============================================================================
// 1) Allocator-only equivalence: random weights and caps.
// ============================================================================

TEST(DenseEquivalence, AllocatorMatchesSeedWaterFill) {
  for (int topo_kind = 0; topo_kind < 2; ++topo_kind) {
    const topology::BuiltFabric fabric = make_fabric(topo_kind);
    netsim::RateAllocator alloc(&fabric.topo);
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
      Rng rng(seed * 7919 + topo_kind);
      const int hosts = static_cast<int>(fabric.hosts.size());
      const int n = 4 + static_cast<int>(rng.uniform_int(40));
      std::vector<Flow> a;
      for (int i = 0; i < n; ++i) {
        Flow f;
        f.id = FlowId{static_cast<std::uint64_t>(i)};
        const int src = static_cast<int>(rng.uniform_int(hosts));
        int dst = static_cast<int>(rng.uniform_int(hosts));
        if (rng.uniform() < 0.05) dst = src;
        f.spec.src = fabric.hosts[src];
        f.spec.dst = fabric.hosts[dst];
        f.spec.size = rng.uniform(1e3, 100e6);
        f.remaining = f.spec.size;
        if (src != dst) {
          f.path = *fabric.topo.route(f.spec.src, f.spec.dst, f.id.value());
        }
        f.weight = rng.uniform(0.25, 4.0);
        if (rng.uniform() < 0.5) {
          f.rate_cap = rng.uniform(0.0, 12e9);  // sometimes 0 / above capacity
        }
        a.push_back(std::move(f));
      }
      std::vector<Flow> b = a;
      std::vector<Flow*> pa, pb;
      for (Flow& f : a) pa.push_back(&f);
      for (Flow& f : b) pb.push_back(&f);
      alloc.allocate(pa);
      ref::allocate(fabric.topo, pb);
      for (int i = 0; i < n; ++i) {
        SCOPED_TRACE("topo " + std::to_string(topo_kind) + " seed " +
                     std::to_string(seed) + " flow " + std::to_string(i));
        EXPECT_EQ(a[i].rate, b[i].rate);
      }
    }
  }
}

// ============================================================================
// 2) Scheduler control-pass equivalence (250 scenarios).
// ============================================================================

TEST(DenseEquivalence, SchedulersMatchSeedControlPasses) {
  for (int topo_kind = 0; topo_kind < 2; ++topo_kind) {
    const topology::BuiltFabric fabric = make_fabric(topo_kind);
    for (std::uint64_t seed = 0; seed < 25; ++seed) {
      const PassScenario sc =
          make_pass_scenario(fabric, seed * 104729 + topo_kind);
      const std::string tag =
          "topo " + std::to_string(topo_kind) + " seed " + std::to_string(seed);
      {
        ef::SrptScheduler s;
        ref::Srpt r;
        compare_pass(fabric, sc, s, r, tag + " srpt");
      }
      {
        ef::CoflowMaddScheduler s;
        ref::CoflowMadd r;
        compare_pass(fabric, sc, s, r, tag + " coflow");
      }
      {
        ef::AaloScheduler s;
        ref::Aalo r;
        compare_pass(fabric, sc, s, r, tag + " aalo");
      }
      {
        ef::SincroniaScheduler s;
        ref::Sincronia r;
        compare_pass(fabric, sc, s, r, tag + " sincronia");
      }
      {
        ef::EchelonMaddScheduler s(sc.registry.get());
        ref::EchelonMadd r(sc.registry.get());
        compare_pass(fabric, sc, s, r, tag + " echelon");
      }
      {
        // Alternate configuration knobs.
        ef::EchelonMaddConfig cfg;
        cfg.ranking = ef::InterRanking::kLargestTardinessFirst;
        cfg.use_weights = true;
        ef::EchelonMaddScheduler s(sc.registry.get(), cfg);
        ref::EchelonMadd r(sc.registry.get(), cfg);
        compare_pass(fabric, sc, s, r, tag + " echelon-alt");
      }
    }
  }
}

// The incremental cache must agree with seed decisions across *repeated*
// passes with churn in between (members finishing between passes).
TEST(DenseEquivalence, EchelonCacheSurvivesChurn) {
  const topology::BuiltFabric fabric = make_fabric(0);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    PassScenario sc = make_pass_scenario(fabric, seed * 31 + 7);
    std::vector<Flow> a = sc.flows;
    std::vector<Flow> b = sc.flows;
    ef::EchelonMaddScheduler s(sc.registry.get());
    ref::EchelonMadd r(sc.registry.get());
    Simulator sim(&fabric.topo);
    Rng rng(seed);
    // 6 passes; between passes, retire a random suffix of flows and shrink
    // the remainders (as progress would).
    std::vector<std::size_t> alive(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) alive[i] = i;
    for (int pass = 0; pass < 6 && !alive.empty(); ++pass) {
      std::vector<Flow*> pa, pb;
      for (std::size_t i : alive) {
        pa.push_back(&a[i]);
        pb.push_back(&b[i]);
      }
      s.control(sim, pa);
      r.control(sim, pb);
      for (std::size_t i : alive) {
        SCOPED_TRACE("seed " + std::to_string(seed) + " pass " +
                     std::to_string(pass) + " flow " + std::to_string(i));
        ASSERT_EQ(a[i].rate_cap.has_value(), b[i].rate_cap.has_value());
        if (a[i].rate_cap.has_value()) {
          EXPECT_EQ(*a[i].rate_cap, *b[i].rate_cap);
        }
      }
      // Churn: drop ~1/4 of the survivors, drain the rest a little.
      std::vector<std::size_t> next;
      for (std::size_t i : alive) {
        if (rng.uniform() < 0.25) continue;
        const double frac = rng.uniform(0.5, 1.0);
        a[i].remaining *= frac;
        b[i].remaining = a[i].remaining;
        next.push_back(i);
      }
      alive.swap(next);
    }
  }
}

// ============================================================================
// 3) Full-simulation equivalence: finish times + tardiness + makespan.
// ============================================================================

struct GroupSpec {
  int n = 0;
  int kind = 0;  // 0 coflow, 1 pipeline
  Duration T = 0.0;
};
struct FlowEvent {
  SimTime at = 0.0;
  int src = 0;
  int dst = 0;
  Bytes size = 0.0;
  int group = -1;
  int index = 0;
};
struct Workload {
  std::vector<GroupSpec> groups;
  std::vector<FlowEvent> events;
};

Workload make_workload(std::uint64_t seed, int hosts) {
  Rng rng(seed);
  Workload w;
  const int num_groups = 1 + static_cast<int>(rng.uniform_int(4));
  std::vector<int> next_index(num_groups, 0);
  for (int g = 0; g < num_groups; ++g) {
    GroupSpec gs;
    gs.n = 2 + static_cast<int>(rng.uniform_int(6));
    gs.kind = static_cast<int>(rng.uniform_int(2));
    gs.T = rng.uniform(1e-3, 10e-3);
    w.groups.push_back(gs);
  }
  const int num_flows = 6 + static_cast<int>(rng.uniform_int(25));
  for (int i = 0; i < num_flows; ++i) {
    FlowEvent e;
    e.at = rng.uniform() < 0.3 ? 0.0 : rng.uniform(0.0, 50e-3);
    e.src = static_cast<int>(rng.uniform_int(hosts));
    do {
      e.dst = static_cast<int>(rng.uniform_int(hosts));
    } while (e.dst == e.src);
    e.size = rng.uniform(1e5, 100e6);
    if (rng.uniform() < 0.75) {
      // Join a group that still has member slots (indices must stay within
      // the arrangement's cardinality).
      const int start = static_cast<int>(rng.uniform_int(w.groups.size()));
      for (int k = 0; k < num_groups; ++k) {
        const int g = (start + k) % num_groups;
        if (next_index[g] < w.groups[g].n) {
          e.group = g;
          e.index = next_index[g]++;
          break;
        }
      }
    }
    w.events.push_back(e);
  }
  return w;
}

// Result container + bitwise comparator shared via the harness
// (eqh::SimResult / eqh::expect_same_result).
using eqh::expect_same_result;
using eqh::SimResult;

template <typename MakeScheduler>
SimResult run_full_sim(int topo_kind, const Workload& w,
                       MakeScheduler make_scheduler) {
  const topology::BuiltFabric fabric = make_fabric(topo_kind);
  Simulator sim(&fabric.topo);
  Registry reg;
  reg.attach(sim);
  std::vector<EchelonFlowId> gids;
  for (const GroupSpec& g : w.groups) {
    gids.push_back(reg.create(
        JobId{0}, g.kind == 0 ? Arrangement::coflow(g.n)
                              : Arrangement::pipeline(g.n, g.T)));
  }
  auto sched = make_scheduler(reg);
  sim.set_scheduler(sched.get());
  for (const FlowEvent& e : w.events) {
    sim.schedule_at(e.at, [&fabric, &gids, e](Simulator& s) {
      FlowSpec spec;
      spec.src = fabric.hosts[e.src];
      spec.dst = fabric.hosts[e.dst];
      spec.size = e.size;
      if (e.group >= 0) {
        spec.group = gids[e.group];
        spec.index_in_group = e.index;
      }
      s.submit_flow(std::move(spec));
    });
  }
  SimResult out;
  out.makespan = sim.run();
  for (std::size_t i = 0; i < sim.flow_count(); ++i) {
    out.finish.push_back(sim.flow(FlowId{i}).finish_time);
  }
  out.tardiness = reg.total_tardiness();
  return out;
}

TEST(DenseEquivalence, FullSimulationsMatchSeedSchedulers) {
  using SchedPtr = std::unique_ptr<netsim::NetworkScheduler>;
  for (int topo_kind = 0; topo_kind < 2; ++topo_kind) {
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      const Workload w = make_workload(seed * 131 + topo_kind, 16);
      const std::string tag =
          "topo " + std::to_string(topo_kind) + " seed " + std::to_string(seed);

      expect_same_result(
          run_full_sim(topo_kind, w,
                       [](Registry&) -> SchedPtr {
                         return std::make_unique<ef::SrptScheduler>();
                       }),
          run_full_sim(topo_kind, w,
                       [](Registry&) -> SchedPtr {
                         return std::make_unique<ref::Srpt>();
                       }),
          tag + " srpt");

      expect_same_result(
          run_full_sim(topo_kind, w,
                       [](Registry&) -> SchedPtr {
                         return std::make_unique<ef::CoflowMaddScheduler>();
                       }),
          run_full_sim(topo_kind, w,
                       [](Registry&) -> SchedPtr {
                         return std::make_unique<ref::CoflowMadd>();
                       }),
          tag + " coflow");

      expect_same_result(
          run_full_sim(topo_kind, w,
                       [](Registry&) -> SchedPtr {
                         return std::make_unique<ef::AaloScheduler>();
                       }),
          run_full_sim(topo_kind, w,
                       [](Registry&) -> SchedPtr {
                         return std::make_unique<ref::Aalo>();
                       }),
          tag + " aalo");

      expect_same_result(
          run_full_sim(topo_kind, w,
                       [](Registry&) -> SchedPtr {
                         return std::make_unique<ef::SincroniaScheduler>();
                       }),
          run_full_sim(topo_kind, w,
                       [](Registry&) -> SchedPtr {
                         return std::make_unique<ref::Sincronia>();
                       }),
          tag + " sincronia");

      expect_same_result(
          run_full_sim(topo_kind, w,
                       [](Registry& reg) -> SchedPtr {
                         return std::make_unique<ef::EchelonMaddScheduler>(
                             &reg);
                       }),
          run_full_sim(topo_kind, w,
                       [](Registry& reg) -> SchedPtr {
                         return std::make_unique<ref::EchelonMadd>(&reg);
                       }),
          tag + " echelon");
    }
  }
}

// ============================================================================
// 4) Zero heap allocations in steady-state control() + allocate().
// ============================================================================

TEST(ZeroAlloc, ControlAndAllocateSteadyState) {
  const topology::BuiltFabric fabric = make_fabric(0);
  const PassScenario sc = make_pass_scenario(fabric, 42);
  Simulator sim(&fabric.topo);

  ef::EchelonMaddScheduler echelon(sc.registry.get());
  ef::CoflowMaddScheduler coflow;
  ef::AaloScheduler aalo;
  ef::SrptScheduler srpt;
  // Sincronia intentionally excluded: its BSSI ordering keeps per-pass hash
  // maps (bottleneck-argmax ties depend on map iteration order; see
  // sincronia.hpp).
  netsim::NetworkScheduler* scheds[] = {&echelon, &coflow, &aalo, &srpt};

  for (netsim::NetworkScheduler* sched : scheds) {
    std::vector<Flow> flows = sc.flows;
    std::vector<Flow*> ptrs;
    for (Flow& f : flows) ptrs.push_back(&f);
    netsim::RateAllocator alloc(&fabric.topo);

    // Warm-up: grow every arena to its high-water mark (and, for the
    // EchelonFlow scheduler, populate the group cache).
    for (int i = 0; i < 3; ++i) {
      sched->control(sim, ptrs);
      alloc.allocate(ptrs);
    }

#if !ECHELON_ALLOC_HOOK
    GTEST_SKIP() << "allocation-counting hook disabled under ASan/TSan";
#endif
    eqh::alloc_count_begin();
    for (int i = 0; i < 5; ++i) {
      sched->control(sim, ptrs);
      alloc.allocate(ptrs);
    }
    const std::uint64_t n = eqh::alloc_count_end();
    EXPECT_EQ(n, 0u) << sched->name()
                     << ": steady-state pass performed heap allocations";
  }
}

// ============================================================================
// 5) Satellite: submit_flow error path + swap-and-pop order invariant.
// ============================================================================

TEST(SimulatorSatellites, SubmitFlowThrowsOnUnroutableEndpoints) {
  topology::Topology topo;
  const NodeId a = topo.add_host("a");
  const NodeId b = topo.add_host("b");  // no link between them
  Simulator sim(&topo);
  FlowSpec spec;
  spec.src = a;
  spec.dst = b;
  spec.size = 1e6;
  EXPECT_THROW((void)sim.submit_flow(std::move(spec)), std::invalid_argument);
}

TEST(SimulatorSatellites, SwapAndPopPreservesCompletionDeterminism) {
  // Heavy churn under SRPT: staggered sizes force retirements from the
  // middle of the active set. Completion callbacks must still observe flows
  // finishing in a deterministic order, and every flow must finish.
  const topology::BuiltFabric fabric = make_fabric(0);
  Simulator sim(&fabric.topo);
  ef::SrptScheduler sched;
  sim.set_scheduler(&sched);
  std::vector<FlowId> completion_order;
  for (int i = 0; i < 24; ++i) {
    FlowSpec spec;
    spec.src = fabric.hosts[i % 16];
    spec.dst = fabric.hosts[(i + 3) % 16];
    spec.size = 1e6 * (1 + (i * 7) % 11);
    sim.submit_flow(std::move(spec),
                    [&completion_order](Simulator&, const Flow& f) {
                      completion_order.push_back(f.id);
                    });
  }
  sim.run();
  ASSERT_EQ(completion_order.size(), 24u);
  for (std::size_t i = 0; i < sim.flow_count(); ++i) {
    EXPECT_TRUE(sim.flow(FlowId{i}).finished());
  }
  // Re-running the identical workload must reproduce the identical order.
  Simulator sim2(&fabric.topo);
  ef::SrptScheduler sched2;
  sim2.set_scheduler(&sched2);
  std::vector<FlowId> completion_order2;
  for (int i = 0; i < 24; ++i) {
    FlowSpec spec;
    spec.src = fabric.hosts[i % 16];
    spec.dst = fabric.hosts[(i + 3) % 16];
    spec.size = 1e6 * (1 + (i * 7) % 11);
    sim2.submit_flow(std::move(spec),
                     [&completion_order2](Simulator&, const Flow& f) {
                       completion_order2.push_back(f.id);
                     });
  }
  sim2.run();
  EXPECT_EQ(completion_order, completion_order2);
}

}  // namespace
}  // namespace echelon
