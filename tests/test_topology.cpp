// Unit tests for src/topology: graph construction, routing, builders.

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "topology/builders.hpp"
#include "topology/graph.hpp"

namespace echelon::topology {
namespace {

TEST(Graph, AddNodesAndLinks) {
  Topology t;
  const NodeId a = t.add_host("a");
  const NodeId b = t.add_host("b");
  const NodeId s = t.add_switch("s", 1);
  EXPECT_EQ(t.node_count(), 3u);
  EXPECT_TRUE(is_host(t.node(a)));
  EXPECT_FALSE(is_host(t.node(s)));
  EXPECT_EQ(t.node(s).tier, 1);

  const auto [up, down] = t.add_duplex(a, b, 5.0);
  EXPECT_EQ(t.link_count(), 2u);
  EXPECT_EQ(t.link(up).src, a);
  EXPECT_EQ(t.link(up).dst, b);
  EXPECT_EQ(t.link(down).src, b);
  EXPECT_DOUBLE_EQ(t.link(up).capacity, 5.0);
}

TEST(Graph, RouteDirectLink) {
  Topology t;
  const NodeId a = t.add_host("a");
  const NodeId b = t.add_host("b");
  const LinkId l = t.add_link(a, b, 1.0);
  const auto path = t.route(a, b);
  ASSERT_TRUE(path.has_value());
  ASSERT_EQ(path->size(), 1u);
  EXPECT_EQ((*path)[0], l);
}

TEST(Graph, RouteSelfIsEmpty) {
  Topology t;
  const NodeId a = t.add_host("a");
  const auto path = t.route(a, a);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(path->empty());
}

TEST(Graph, RouteUnreachableIsNullopt) {
  Topology t;
  const NodeId a = t.add_host("a");
  const NodeId b = t.add_host("b");
  EXPECT_FALSE(t.route(a, b).has_value());
  // One-directional link: reachable one way only.
  t.add_link(a, b, 1.0);
  EXPECT_TRUE(t.route(a, b).has_value());
  EXPECT_FALSE(t.route(b, a).has_value());
}

TEST(Graph, RouteTakesShortestPath) {
  // a -> s1 -> b (2 hops) and a -> s2 -> s3 -> b (3 hops).
  Topology t;
  const NodeId a = t.add_host("a");
  const NodeId b = t.add_host("b");
  const NodeId s1 = t.add_switch("s1");
  const NodeId s2 = t.add_switch("s2");
  const NodeId s3 = t.add_switch("s3");
  t.add_duplex(a, s1, 1.0);
  t.add_duplex(s1, b, 1.0);
  t.add_duplex(a, s2, 1.0);
  t.add_duplex(s2, s3, 1.0);
  t.add_duplex(s3, b, 1.0);
  const auto path = t.route(a, b);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 2u);
}

TEST(Graph, EcmpIsDeterministicPerSeed) {
  // Two equal-cost 2-hop paths a -> {s1,s2} -> b.
  Topology t;
  const NodeId a = t.add_host("a");
  const NodeId b = t.add_host("b");
  const NodeId s1 = t.add_switch("s1");
  const NodeId s2 = t.add_switch("s2");
  t.add_duplex(a, s1, 1.0);
  t.add_duplex(s1, b, 1.0);
  t.add_duplex(a, s2, 1.0);
  t.add_duplex(s2, b, 1.0);

  const auto p1 = t.route(a, b, 42);
  const auto p2 = t.route(a, b, 42);
  ASSERT_TRUE(p1 && p2);
  EXPECT_EQ(*p1, *p2);

  // Across many seeds, both paths should be exercised.
  bool used_s1 = false;
  bool used_s2 = false;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const auto p = t.route(a, b, seed);
    ASSERT_TRUE(p);
    const NodeId mid = t.link((*p)[0]).dst;
    used_s1 |= mid == s1;
    used_s2 |= mid == s2;
  }
  EXPECT_TRUE(used_s1);
  EXPECT_TRUE(used_s2);
}

TEST(Graph, CloneWithCapacityPreservesStructure) {
  Topology t;
  const NodeId a = t.add_host("a");
  const NodeId b = t.add_host("b");
  t.add_duplex(a, b, 7.0);
  const Topology fast = t.clone_with_capacity(1e30);
  EXPECT_EQ(fast.node_count(), t.node_count());
  EXPECT_EQ(fast.link_count(), t.link_count());
  EXPECT_DOUBLE_EQ(fast.link(LinkId{0}).capacity, 1e30);
  EXPECT_DOUBLE_EQ(t.link(LinkId{0}).capacity, 7.0);  // original untouched
}

TEST(Builders, BigSwitchShape) {
  const BuiltFabric f = make_big_switch(8, gbps(100));
  EXPECT_EQ(f.hosts.size(), 8u);
  EXPECT_EQ(f.topo.node_count(), 9u);   // 8 hosts + 1 crossbar
  EXPECT_EQ(f.topo.link_count(), 16u);  // duplex per host
  // Any host pair routes through exactly 2 links (egress + ingress).
  const auto path = f.topo.route(f.hosts[0], f.hosts[7]);
  ASSERT_TRUE(path);
  EXPECT_EQ(path->size(), 2u);
}

TEST(Builders, BigSwitchHostsAreHosts) {
  const BuiltFabric f = make_big_switch(3, 1.0);
  for (const NodeId h : f.hosts) EXPECT_TRUE(is_host(f.topo.node(h)));
  EXPECT_EQ(f.topo.hosts().size(), 3u);
}

TEST(Builders, LeafSpineShape) {
  const BuiltFabric f = make_leaf_spine({.leaves = 4,
                                         .spines = 2,
                                         .hosts_per_leaf = 8,
                                         .host_link = gbps(100),
                                         .uplink = gbps(400)});
  EXPECT_EQ(f.hosts.size(), 32u);
  // 2 spines + 4 leaves + 32 hosts.
  EXPECT_EQ(f.topo.node_count(), 38u);
  // Cross-leaf path: host -> leaf -> spine -> leaf -> host = 4 links.
  const auto path = f.topo.route(f.hosts[0], f.hosts[31]);
  ASSERT_TRUE(path);
  EXPECT_EQ(path->size(), 4u);
  // Same-leaf path: host -> leaf -> host = 2 links.
  const auto same = f.topo.route(f.hosts[0], f.hosts[1]);
  ASSERT_TRUE(same);
  EXPECT_EQ(same->size(), 2u);
}

TEST(Builders, FatTreeShape) {
  const int k = 4;
  const BuiltFabric f = make_fat_tree(k, gbps(40));
  EXPECT_EQ(f.hosts.size(), static_cast<std::size_t>(k * k * k / 4));  // 16
  // (k/2)^2 core + k pods * (k/2 agg + k/2 edge) + hosts.
  EXPECT_EQ(f.topo.node_count(), 4u + 4u * 4u + 16u);
  // Hosts in different pods: 6 hops (h-e-a-c-a-e-h).
  const auto cross = f.topo.route(f.hosts[0], f.hosts[15]);
  ASSERT_TRUE(cross);
  EXPECT_EQ(cross->size(), 6u);
  // Same edge switch: 2 hops.
  const auto local = f.topo.route(f.hosts[0], f.hosts[1]);
  ASSERT_TRUE(local);
  EXPECT_EQ(local->size(), 2u);
}

TEST(Builders, FatTreeAllPairsReachable) {
  const BuiltFabric f = make_fat_tree(4, 1.0);
  for (std::size_t i = 0; i < f.hosts.size(); i += 5) {
    for (std::size_t j = 0; j < f.hosts.size(); j += 3) {
      EXPECT_TRUE(f.topo.route(f.hosts[i], f.hosts[j]).has_value());
    }
  }
}

}  // namespace
}  // namespace echelon::topology
