// Route interning + equivalence-class water-fill: the differential suite.
//
// The route-interning layer (topology::RouteTable, DESIGN.md §11) and the
// class-granularity max-min fill (netsim::FillMode::kClass) are pure
// performance restructurings: every observable -- flow rates, completion
// times, ExperimentResults, full structured-trace streams -- must be
// *bit-identical* to the per-flow fill they replace, and route computations
// must scale with distinct (src, dst, seed) keys per capacity epoch, not
// with flow count. This binary pins all of that:
//
//   1. RouteTable unit semantics: intern dedupe, path round-trip, the
//      epoch-gated cache, cached unreachable verdicts (exact Stats).
//   2. Route-computation regression under a flap-heavy fault plan: N flows
//      sharing an ECMP key cost one BFS per epoch, not one per reroute.
//   3. Dense-level differential fuzz: kClass vs kPerFlow bitwise rate
//      equality on randomized flow sets with heavy route/weight/cap sharing
//      (multi-member classes) plus uninterned direct-path flows (sentinel
//      singleton classes).
//   4. Cluster-level differential: 5 schedulers x 2 fabrics x
//      {incremental, full} x threads {1, 2, 8}, comparing bit-identical
//      ExperimentResults *and* whole trace streams (including the new
//      kClassFill events, which both granularities must emit identically).
//   5. Chaos differential: >= 100 distinct flap-heavy fault plans (seed x
//      scheduler grid), per-flow vs class under fire.
//   6. Zero-allocation steady state: the class fill's arenas reach their
//      high-water mark and stop allocating, and the class partition is
//      exact (counted classes match the constructed sharing structure).
//   7. Experiment-level telemetry: routes.* / alloc.classes counters export
//      through the metrics registry with their documented identities.

#include <cstdlib>
#include <string>
#include <vector>

#include "equivalence_harness.hpp"
#include "faultsim/injector.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "topology/route_table.hpp"

namespace echelon {
namespace {

using cluster::FabricKind;
using cluster::SchedulerKind;
using faultsim::ChaosProfile;
using faultsim::FaultInjector;
using faultsim::FaultKind;
using faultsim::FaultPlan;
using netsim::AllocMode;
using netsim::FillMode;
using netsim::Flow;
using netsim::FlowSpec;
using netsim::SimLoopMode;
using netsim::Simulator;
using eqh::expect_same_result;
using eqh::expect_same_trace;
using eqh::run_cluster;
using eqh::RunSpec;
using eqh::small_trace;

// ============================================================================
// 1. RouteTable unit semantics
// ============================================================================

TEST(RouteTable, InternDeduplicatesAndRoundTrips) {
  const auto fabric = topology::make_big_switch(8, gbps(10));
  topology::RouteTable table(&fabric.topo);
  const topology::Path p01 =
      *fabric.topo.route(fabric.hosts[0], fabric.hosts[1], 0);
  const topology::Path p02 =
      *fabric.topo.route(fabric.hosts[0], fabric.hosts[2], 0);

  const RouteId a = table.intern(p01);
  const RouteId b = table.intern(p02);
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_NE(a, b);
  // Interning the same link sequence again returns the existing id.
  EXPECT_EQ(table.intern(p01), a);
  EXPECT_EQ(table.intern(p02), b);
  EXPECT_EQ(table.size(), 2u);
  // path() is the exact canonical sequence, forever.
  EXPECT_EQ(table.path(a), p01);
  EXPECT_EQ(table.path(b), p02);
  // Interning does not touch the route() lookup telemetry.
  EXPECT_EQ(table.stats().lookups, 0u);
}

TEST(RouteTable, CacheServesByEpochAndRecomputesToTheSameId) {
  auto fabric = topology::make_big_switch(8, gbps(10));
  topology::RouteTable table(&fabric.topo);
  const NodeId src = fabric.hosts[0];
  const NodeId dst = fabric.hosts[1];

  const auto first = table.route(src, dst, 7);
  ASSERT_TRUE(first.has_value());
  for (int i = 0; i < 99; ++i) {
    EXPECT_EQ(table.route(src, dst, 7), first);
  }
  EXPECT_EQ(table.stats().lookups, 100u);
  EXPECT_EQ(table.stats().computations, 1u);
  EXPECT_EQ(table.stats().hits, 99u);

  // A different seed is a different cache key (one more BFS) even though a
  // single-path fabric routes it identically -- the intern table collapses
  // the result to the same RouteId.
  EXPECT_EQ(table.route(src, dst, 8), first);
  EXPECT_EQ(table.stats().computations, 2u);
  EXPECT_EQ(table.size(), 1u);

  // Any topology mutation bumps the capacity epoch and invalidates the
  // cache; the recomputed (identical) path dedupes back to the same id.
  const LinkId flapped = table.path(*first)[0];
  fabric.topo.set_link_up(flapped, false);
  fabric.topo.set_link_up(flapped, true);
  EXPECT_EQ(table.route(src, dst, 7), first);
  EXPECT_EQ(table.stats().computations, 3u);
  fabric.topo.set_link_capacity(flapped, gbps(10) / 2);
  EXPECT_EQ(table.route(src, dst, 7), first);
  EXPECT_EQ(table.stats().computations, 4u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(RouteTable, UnreachableVerdictsAreCachedPerEpoch) {
  auto fabric = topology::make_big_switch(8, gbps(10));
  topology::RouteTable table(&fabric.topo);
  const NodeId src = fabric.hosts[0];
  const NodeId dst = fabric.hosts[1];

  const auto route = table.route(src, dst, 3);
  ASSERT_TRUE(route.has_value());
  // Sever the source host's only uplink: dst becomes unreachable.
  const LinkId uplink = table.path(*route)[0];
  fabric.topo.set_link_up(uplink, false);

  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(table.route(src, dst, 3).has_value());
  }
  // One BFS discovered the severed pair; nine retries hit the cached
  // negative verdict -- the flap-retry economics the table exists for.
  EXPECT_EQ(table.stats().computations, 2u);
  EXPECT_EQ(table.stats().unreachable, 1u);
  EXPECT_EQ(table.stats().hits, 9u);

  fabric.topo.set_link_up(uplink, true);
  EXPECT_EQ(table.route(src, dst, 3), route);
  EXPECT_EQ(table.stats().computations, 3u);
  EXPECT_EQ(table.stats().unreachable, 1u);
}

// ============================================================================
// 2. Route-computation regression under a flap-heavy plan
// ============================================================================

// Eight long flows share one (src, dst, ecmp_seed) key across a 2-spine
// leaf-spine fabric while a plan flaps the uplink they currently cross five
// times. Every flap forces a fleet-wide reroute, but the interned cache must
// pay exactly one BFS per flap -- computations scale with epochs, not flows.
TEST(RouteCacheRegression, FlapHeavyPlanComputesOncePerEpochNotPerFlow) {
  auto fabric = topology::make_leaf_spine({.leaves = 2,
                                           .spines = 2,
                                           .hosts_per_leaf = 2,
                                           .host_link = gbps(10),
                                           .uplink = gbps(10)});
  Simulator sim(&fabric.topo);
  constexpr int kFlows = 8;
  std::vector<FlowId> flows;
  for (int i = 0; i < kFlows; ++i) {
    FlowSpec spec;
    spec.src = fabric.hosts[0];
    spec.dst = fabric.hosts[2];  // cross-leaf: host->leaf->spine->leaf->host
    spec.size = 1e9;
    spec.route_hint = 42;  // one shared ECMP key for the whole fleet
    spec.label = "bulk" + std::to_string(i);
    flows.push_back(sim.submit_flow(std::move(spec)));
  }
  // One BFS routed the whole fleet.
  EXPECT_EQ(sim.routes().stats().lookups, 8u);
  EXPECT_EQ(sim.routes().stats().computations, 1u);
  EXPECT_EQ(sim.routes().stats().hits, 7u);

  // The uplink the fleet sits on now, and the alternate spine's uplink.
  const LinkId on = sim.flow(flows[0]).path[1];
  const LinkId other = on.value() == 0 ? LinkId{2} : LinkId{0};

  // Alternate flapping the occupied uplink: each down lands on the link the
  // fleet currently crosses (it migrated to the other spine at the previous
  // down and stays there through the up).
  FaultPlan plan;
  for (int k = 0; k < 5; ++k) {
    const std::uint64_t target = (k % 2 == 0 ? on : other).value();
    plan.events.push_back(
        {0.1 + 0.2 * k, FaultKind::kLinkDown, target, 1.0});
    plan.events.push_back({0.2 + 0.2 * k, FaultKind::kLinkUp, target, 1.0});
  }
  FaultInjector inj(&sim, &fabric.topo, &plan);
  inj.arm();
  sim.run();

  EXPECT_EQ(inj.summary().events_fired, 10u);
  EXPECT_EQ(inj.summary().reroutes, 5u * kFlows);
  const topology::RouteTable::Stats& st = sim.routes().stats();
  // 8 submits + 5 reroute sweeps x 8 flows = 48 lookups, but only 6 BFS
  // runs ever happened: one at submit, one per flap epoch.
  EXPECT_EQ(st.lookups, 48u);
  EXPECT_EQ(st.computations, 6u);
  EXPECT_EQ(st.hits, 42u);
  EXPECT_EQ(st.unreachable, 0u);
  for (const FlowId id : flows) {
    EXPECT_TRUE(sim.flow(id).finished());
    EXPECT_LE(sim.flow(id).remaining, 0.0);
  }
}

// ============================================================================
// 3. Dense-level differential fuzz: kClass vs kPerFlow bitwise
// ============================================================================

// Randomized flow sets engineered for heavy class sharing: a handful of
// (src, dst) pairs routed through one intern table (identical Path objects
// and RouteIds), weights and caps drawn mostly from small discrete sets so
// (route, weight, cap) classes have many members -- plus a sprinkle of
// flows with a direct path write and no interned RouteId, which must fall
// back to sentinel singleton classes. The class fill must reproduce the
// per-flow fill's rates to the bit.
TEST(RouteClassDense, ClassVsPerFlowBitIdenticalOnSharedRoutes) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto fabric = topology::make_big_switch(16, 10e9);
    topology::RouteTable table(&fabric.topo);
    Rng rng(seed * 7919 + 17);
    const std::size_t hosts = fabric.hosts.size();

    // Six endpoint pairs, each with a stable interned route.
    struct Pair {
      NodeId src, dst;
      RouteId route;
    };
    std::vector<Pair> pairs;
    while (pairs.size() < 6) {
      const auto src = fabric.hosts[rng.uniform_int(hosts)];
      const auto dst = fabric.hosts[rng.uniform_int(hosts)];
      if (src == dst) continue;
      const auto rid = table.route(src, dst, pairs.size());
      ASSERT_TRUE(rid.has_value());
      pairs.push_back({src, dst, *rid});
    }

    const int n = 64 + static_cast<int>(rng.uniform_int(128));
    std::vector<Flow> a;
    for (int i = 0; i < n; ++i) {
      Flow f;
      f.id = FlowId{static_cast<std::uint64_t>(i)};
      const Pair& p = pairs[rng.uniform_int(pairs.size())];
      f.spec.src = p.src;
      f.spec.dst = p.dst;
      f.spec.size = rng.uniform(1e3, 100e6);
      f.remaining = f.spec.size;
      f.path = table.path(p.route);
      if (rng.uniform() < 0.9) {
        f.route = p.route;  // interned: eligible for multi-member classes
      }                     // else: direct path write, sentinel singleton
      // Mostly discrete weights/caps (class collisions), some continuous.
      const double u = rng.uniform();
      f.weight = u < 0.4 ? 1.0 : u < 0.7 ? 2.0 : rng.uniform(0.25, 4.0);
      const double c = rng.uniform();
      if (c < 0.2) {
        f.rate_cap = 4e8;
      } else if (c < 0.35) {
        f.rate_cap = rng.uniform(0.0, 2e9);
      }
      a.push_back(std::move(f));
    }
    std::vector<Flow> b = a;
    std::vector<Flow*> pa, pb;
    for (Flow& f : a) pa.push_back(&f);
    for (Flow& f : b) pb.push_back(&f);

    netsim::RateAllocator per_flow(&fabric.topo, AllocMode::kFullRecompute,
                                   FillMode::kPerFlow);
    netsim::RateAllocator by_class(&fabric.topo, AllocMode::kFullRecompute,
                                   FillMode::kClass);
    per_flow.allocate(pa);
    by_class.allocate(pb);
    for (int i = 0; i < n; ++i) {
      EXPECT_BITEQ(a[static_cast<std::size_t>(i)].rate,
                   b[static_cast<std::size_t>(i)].rate)
          << "flow " << i;
    }
    // The sharing structure actually compressed: fewer classes than flows.
    EXPECT_GT(by_class.stats().class_members, by_class.stats().classes);
    EXPECT_EQ(by_class.stats().class_members, per_flow.stats().class_members);
  }
}

// ============================================================================
// 4. Cluster-level differential: the full mode matrix, results + traces
// ============================================================================

using RouteClassEquivalence = eqh::SchedFabricTest;

TEST_P(RouteClassEquivalence, ClassFillBitIdenticalAcrossAllocAndThreads) {
  const auto [sched, fabric] = GetParam();
  const auto jobs = small_trace(11);
  for (const AllocMode alloc :
       {AllocMode::kIncremental, AllocMode::kFullRecompute}) {
    for (const unsigned threads : {1u, 2u, 8u}) {
      SCOPED_TRACE(std::string(alloc == AllocMode::kIncremental
                                   ? "incremental"
                                   : "full-recompute") +
                   " threads=" + std::to_string(threads));
      obs::TraceRecorder per_flow_trace(1u << 20);
      obs::TraceRecorder class_trace(1u << 20);
      RunSpec per_flow{.scheduler = sched,
                       .fabric = fabric,
                       .alloc = alloc,
                       .fill = FillMode::kPerFlow,
                       .threads = threads,
                       .trace_sink = &per_flow_trace};
      RunSpec by_class = per_flow;
      by_class.fill = FillMode::kClass;
      by_class.trace_sink = &class_trace;

      const auto ra = run_cluster(jobs, per_flow);
      const auto rb = run_cluster(jobs, by_class);
      expect_same_result(ra, rb);
      expect_same_trace(per_flow_trace, class_trace);
      // Both granularities emit the class-census event, one per component
      // fill -- the per-flow fill computes the partition too, precisely so
      // the streams stay comparable.
      EXPECT_GT(class_trace.count(obs::TraceKind::kClassFill), 0u);
      EXPECT_EQ(class_trace.count(obs::TraceKind::kClassFill),
                class_trace.count(obs::TraceKind::kCompFill));
    }
  }
}

ECHELON_INSTANTIATE_SCHED_FABRIC(RouteClassEquivalence);

// ============================================================================
// 5. Chaos differential: >= 100 flap-heavy plans under fire
// ============================================================================

int chaos_seed_budget() {
  if (const char* env = std::getenv("ECHELON_CHAOS_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
#if ECHELON_ALLOC_HOOK
  return 20;  // 20 seeds x 5 schedulers = 100 distinct plans
#else
  return 4;  // sanitizer legs: keep wall clock in check
#endif
}

TEST(RouteClassChaosDifferential, HundredFlapHeavyPlansBitIdentical) {
  const int seeds = chaos_seed_budget();
  const auto fabric = eqh::run_cluster_fabric(FabricKind::kLeafSpine);
  const SchedulerKind kinds[] = {
      SchedulerKind::kFairSharing, SchedulerKind::kSrpt,
      SchedulerKind::kCoflowMadd, SchedulerKind::kEchelonMadd,
      SchedulerKind::kCoordinator};
  const unsigned thread_cycle[] = {1u, 2u, 8u};

  std::uint64_t events_total = 0;
  std::uint64_t interactions_total = 0;
  obs::TraceRecorder per_flow_trace(1u << 20);
  obs::TraceRecorder class_trace(1u << 20);
  for (int s = 0; s < seeds; ++s) {
    const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(s);
    const auto jobs = small_trace(seed);
    std::size_t workers = 0;
    for (const auto& j : jobs) workers += static_cast<std::size_t>(j.ranks);

    int ki = 0;
    for (const SchedulerKind kind : kinds) {
      // One distinct plan per (seed, scheduler) grid point, link-flap
      // heavy: reroute storms are where route interning and class
      // repartitioning earn their keep.
      ChaosProfile p;
      p.seed = 3000 + static_cast<std::uint64_t>(s) * 16 +
               static_cast<std::uint64_t>(ki);
      p.horizon = 1.5;
      p.link_faults = 2 + (s + ki) % 3;
      p.brownouts = s % 2;
      p.stragglers = ki % 2;
      p.node_faults = ((s + ki) % 4 == 0) ? 1 : 0;
      p.job_aborts = ((s + ki) % 5 == 0) ? 1 : 0;
      const FaultPlan plan =
          faultsim::from_chaos(p, fabric.topo, workers, jobs.size());
      ASSERT_FALSE(plan.empty());

      const unsigned threads = thread_cycle[(s + ki) % 3];
      SCOPED_TRACE("seed " + std::to_string(seed) + " " +
                   std::string(cluster::to_string(kind)) +
                   " threads=" + std::to_string(threads));
      per_flow_trace.clear();
      class_trace.clear();
      RunSpec per_flow{.scheduler = kind,
                       .fabric = FabricKind::kLeafSpine,
                       .fill = FillMode::kPerFlow,
                       .plan = &plan,
                       .threads = threads,
                       .trace_sink = &per_flow_trace};
      RunSpec by_class = per_flow;
      by_class.fill = FillMode::kClass;
      by_class.trace_sink = &class_trace;

      const auto r0 = run_cluster(jobs, per_flow);
      events_total += r0.fault_events;
      interactions_total +=
          r0.flow_reroutes + r0.flow_parks + r0.flows_abandoned;
      expect_same_result(r0, run_cluster(jobs, by_class));
      expect_same_trace(per_flow_trace, class_trace);
      ++ki;
    }
  }
  // Non-vacuous: the plans actually fired and actually disturbed flows.
  EXPECT_GT(events_total, 0u);
  EXPECT_GT(interactions_total, 0u);
}

// ============================================================================
// 6. Zero-allocation steady state + exact class census
// ============================================================================

// 256 flows over 8 disjoint routes with a deliberate (weight, cap) sharing
// structure: per route, three distinct (weight, cap) combinations => exactly
// 24 classes per pass over 256 member flows. After warm-up the class fill's
// arenas are at their high-water mark and repeated passes allocate nothing.
TEST(RouteClassSteadyState, ClassFillIsAllocationFreeAndCensusIsExact) {
  const auto fabric = topology::make_big_switch(16, 10e9);
  topology::RouteTable table(&fabric.topo);
  constexpr int kPairs = 8;
  constexpr int kFlows = 256;

  std::vector<Flow> flows;
  for (int i = 0; i < kFlows; ++i) {
    Flow f;
    f.id = FlowId{static_cast<std::uint64_t>(i)};
    const int pair = i % kPairs;
    f.spec.src = fabric.hosts[static_cast<std::size_t>(pair)];
    f.spec.dst = fabric.hosts[static_cast<std::size_t>(pair + kPairs)];
    f.spec.size = 1e9;
    f.remaining = f.spec.size;
    const auto rid = table.route(f.spec.src, f.spec.dst, pair);
    ASSERT_TRUE(rid.has_value());
    f.route = *rid;
    f.path = table.path(*rid);
    // Stripe weights/caps by i/8 so every route sees all three classes:
    // (w=1, capped), (w=1, uncapped), (w=2, uncapped).
    const int stripe = i / kPairs;
    f.weight = stripe % 2 == 0 ? 1.0 : 2.0;
    if (stripe % 4 == 0) f.rate_cap = 5e8;
    flows.push_back(std::move(f));
  }
  std::vector<Flow*> ptrs;
  for (Flow& f : flows) ptrs.push_back(&f);

  netsim::RateAllocator alloc(&fabric.topo, AllocMode::kFullRecompute,
                              FillMode::kClass);
  alloc.allocate(ptrs);  // sizes the arenas
  alloc.allocate(ptrs);  // confirms the high-water mark
  const netsim::RateAllocator::Stats warm = alloc.stats();
  EXPECT_EQ(warm.class_members, warm.passes * kFlows);
  EXPECT_EQ(warm.classes, warm.passes * 24);

#if ECHELON_ALLOC_HOOK
  eqh::alloc_count_begin();
  for (int pass = 0; pass < 10; ++pass) alloc.allocate(ptrs);
  EXPECT_EQ(eqh::alloc_count_end(), 0u)
      << "class-granularity steady state must not allocate";
#else
  GTEST_SKIP() << "allocation hook disabled under this sanitizer";
#endif
}

// ============================================================================
// 7. Experiment-level telemetry export
// ============================================================================

TEST(RouteClassTelemetry, ExperimentExportsRouteAndClassCounters) {
  obs::MetricsRegistry reg;
  cluster::ExperimentConfig cfg;
  cfg.scheduler = SchedulerKind::kEchelonMadd;
  cfg.fabric = FabricKind::kLeafSpine;
  cfg.hosts = 16;
  cfg.port_capacity = gbps(25);
  cfg.oversubscription = 2.0;
  cfg.metrics = &reg;
  (void)cluster::run_experiment(small_trace(5), cfg);

  const std::uint64_t lookups = reg.counter("routes.lookups").value();
  const std::uint64_t hits = reg.counter("routes.cache_hits").value();
  const std::uint64_t computations = reg.counter("routes.computations").value();
  EXPECT_GT(lookups, 0u);
  EXPECT_GT(computations, 0u);
  // The documented RouteTable identity survives the export.
  EXPECT_EQ(hits + computations, lookups);
  const std::uint64_t distinct = reg.counter("routes.distinct").value();
  EXPECT_GT(distinct, 0u);
  EXPECT_LE(distinct, computations);

  const std::uint64_t classes = reg.counter("alloc.classes").value();
  const std::uint64_t members = reg.counter("alloc.class_members").value();
  EXPECT_GT(classes, 0u);
  EXPECT_GE(members, classes);
  EXPECT_GT(reg.gauge("alloc.flows_per_class").value(), 0.0);
}

}  // namespace
}  // namespace echelon
