// Unit tests for src/common: ids, time comparison, units, RNG, statistics,
// table rendering.

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/time.hpp"
#include "common/units.hpp"

namespace echelon {
namespace {

TEST(Ids, DefaultIsInvalid) {
  FlowId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, FlowId::invalid());
}

TEST(Ids, AllocatorIsMonotonic) {
  IdAllocator<NodeId> alloc;
  const NodeId a = alloc.next();
  const NodeId b = alloc.next();
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(b.value(), 1u);
  EXPECT_LT(a, b);
  EXPECT_TRUE(a.valid());
}

TEST(Ids, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<FlowId, NodeId>);
  static_assert(!std::is_same_v<JobId, EchelonFlowId>);
}

TEST(Ids, Hashable) {
  std::unordered_set<FlowId> set;
  set.insert(FlowId{1});
  set.insert(FlowId{1});
  set.insert(FlowId{2});
  EXPECT_EQ(set.size(), 2u);
}

TEST(Time, EqualityTolerance) {
  EXPECT_TRUE(time_eq(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(time_eq(1.0, 1.0 + 1e-6));
  EXPECT_TRUE(time_eq(kTimeInfinity, kTimeInfinity));
  EXPECT_FALSE(time_eq(1.0, kTimeInfinity));
}

TEST(Time, Ordering) {
  EXPECT_TRUE(time_lt(1.0, 2.0));
  EXPECT_FALSE(time_lt(1.0, 1.0 + 1e-12));  // within tolerance
  EXPECT_TRUE(time_le(1.0, 1.0 + 1e-12));
  EXPECT_TRUE(time_le(1.0, 2.0));
  EXPECT_FALSE(time_le(2.0, 1.0));
}

TEST(Units, BandwidthConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(gbps(100), 100e9 / 8.0);
  EXPECT_DOUBLE_EQ(to_gbps(gbps(100)), 100.0);
  EXPECT_DOUBLE_EQ(mbps(8), 1e6);
}

TEST(Units, SizeHelpers) {
  EXPECT_DOUBLE_EQ(kib(1), 1024.0);
  EXPECT_DOUBLE_EQ(mib(1), 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(to_mib(mib(3)), 3.0);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialMeanApproximatesInverseRate) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Rng, BoundedParetoStaysInRange) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.bounded_pareto(1.0, 100.0, 1.2);
    EXPECT_GE(x, 1.0 - 1e-9);
    EXPECT_LE(x, 100.0 + 1e-9);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(RunningStats, WelfordMatchesDirectComputation) {
  RunningStats s;
  const double xs[] = {1.0, 2.0, 3.0, 4.0, 10.0};
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  // Sample variance: ((9+4+1+0+36)*... ) mean=4: (9+4+1+0+36)/4 = 12.5
  EXPECT_DOUBLE_EQ(s.variance(), 12.5);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Samples, PercentilesInterpolate) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(99), 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Samples, SingleElement) {
  Samples s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.median(), 42.0);
  EXPECT_DOUBLE_EQ(s.p99(), 42.0);
}

TEST(Table, RendersAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", Table::num(1.5, 1)});
  t.add_row({"b", "x"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1.5   |"), std::string::npos);
  EXPECT_NE(out.find("|-------|"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

}  // namespace
}  // namespace echelon
