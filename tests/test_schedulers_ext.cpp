// Tests for the extended baseline schedulers: Aalo-style non-clairvoyant
// multi-level queues and Sincronia-style BSSI ordering.

#include <gtest/gtest.h>

#include "echelon/aalo.hpp"
#include "echelon/sincronia.hpp"
#include "netsim/simulator.hpp"
#include "topology/builders.hpp"

namespace echelon::ef {
namespace {

using netsim::FlowSpec;
using netsim::Simulator;

// --- Aalo --------------------------------------------------------------------

struct AaloFixture : ::testing::Test {
  AaloFixture()
      : fabric(topology::make_big_switch(4, 10.0)),
        sim(&fabric.topo),
        sched(AaloConfig{.base_threshold = 20.0, .multiplier = 4.0,
                         .num_queues = 4}) {
    sim.set_scheduler(&sched);
  }
  FlowId submit(std::size_t src, std::size_t dst, Bytes size,
                std::uint64_t group) {
    return sim.submit_flow(FlowSpec{.src = fabric.hosts[src],
                                    .dst = fabric.hosts[dst],
                                    .size = size,
                                    .group = EchelonFlowId{group}});
  }
  topology::BuiltFabric fabric;
  Simulator sim;
  AaloScheduler sched;
};

TEST_F(AaloFixture, FreshGroupPreemptsAgedGroup) {
  // Group 0 sends enough to leave the first queue; a later-arriving fresh
  // group then takes strict priority, with no size knowledge involved.
  const FlowId old_flow = submit(0, 1, 100.0, 0);
  sim.schedule_at(3.0, [this](Simulator&) {  // group 0 has sent 30 > 20
    submit(0, 1, 10.0, 1);
  });
  sim.run();
  EXPECT_NEAR(sim.flow(FlowId{1}).finish_time, 4.0, 1e-9);  // preempts
  EXPECT_NEAR(sim.flow(old_flow).finish_time, 11.0, 1e-9);
}

TEST_F(AaloFixture, FifoWithinQueueLevel) {
  // Two small groups in the lowest queue: the first to arrive wins the
  // shared port outright (strict order, work-conserving).
  const FlowId a = submit(0, 1, 15.0, 0);
  const FlowId b = submit(0, 1, 15.0, 1);
  sim.run();
  EXPECT_NEAR(sim.flow(a).finish_time, 1.5, 1e-9);
  EXPECT_NEAR(sim.flow(b).finish_time, 3.0, 1e-9);
}

TEST_F(AaloFixture, DisjointPortsRunConcurrently) {
  const FlowId a = submit(0, 1, 50.0, 0);
  const FlowId b = submit(2, 3, 50.0, 1);
  sim.run();
  EXPECT_NEAR(sim.flow(a).finish_time, 5.0, 1e-9);
  EXPECT_NEAR(sim.flow(b).finish_time, 5.0, 1e-9);
}

// --- Sincronia ----------------------------------------------------------------

struct SincroniaFixture : ::testing::Test {
  SincroniaFixture()
      : fabric(topology::make_big_switch(6, 10.0)), sim(&fabric.topo) {
    sim.set_scheduler(&sched);
  }
  FlowId submit(std::size_t src, std::size_t dst, Bytes size,
                std::uint64_t group) {
    return sim.submit_flow(FlowSpec{.src = fabric.hosts[src],
                                    .dst = fabric.hosts[dst],
                                    .size = size,
                                    .group = EchelonFlowId{group}});
  }
  topology::BuiltFabric fabric;
  Simulator sim;
  SincroniaScheduler sched;
};

TEST_F(SincroniaFixture, LargestContributorOnBottleneckGoesLast) {
  // Both coflows share ingress 2; coflow 0 is the bigger contributor, so
  // BSSI schedules it last and the small coflow finishes first.
  const FlowId big = submit(0, 2, 60.0, 0);
  const FlowId small = submit(1, 2, 20.0, 1);
  sim.run();
  EXPECT_NEAR(sim.flow(small).finish_time, 2.0, 1e-9);
  EXPECT_NEAR(sim.flow(big).finish_time, 8.0, 1e-9);
}

TEST_F(SincroniaFixture, OrderRespectingButWorkConserving) {
  // The last-ordered coflow still uses ports the first one does not touch.
  const FlowId big = submit(0, 1, 60.0, 0);
  const FlowId big_side = submit(2, 3, 60.0, 0);
  const FlowId small = submit(0, 1, 20.0, 1);
  sim.run();
  EXPECT_NEAR(sim.flow(small).finish_time, 2.0, 1e-9);
  EXPECT_NEAR(sim.flow(big_side).finish_time, 6.0, 1e-9);  // disjoint ports
  EXPECT_NEAR(sim.flow(big).finish_time, 8.0, 1e-9);
}

TEST_F(SincroniaFixture, SingleCoflowUsesFullFabric) {
  const FlowId a = submit(0, 1, 40.0, 0);
  const FlowId b = submit(2, 3, 20.0, 0);
  sim.run();
  EXPECT_NEAR(sim.flow(a).finish_time, 4.0, 1e-9);
  EXPECT_NEAR(sim.flow(b).finish_time, 2.0, 1e-9);
}

TEST_F(SincroniaFixture, MeanCctBeatsFairOnContendedMix) {
  auto mean_cct = [](bool sincronia) {
    auto fabric = topology::make_big_switch(4, 10.0);
    Simulator sim(&fabric.topo);
    SincroniaScheduler sched;
    if (sincronia) sim.set_scheduler(&sched);
    std::vector<FlowId> ids;
    int group = 0;
    for (const double size : {10.0, 30.0, 60.0}) {
      ids.push_back(sim.submit_flow(
          FlowSpec{.src = fabric.hosts[0],
                   .dst = fabric.hosts[1],
                   .size = size,
                   .group = EchelonFlowId{static_cast<std::uint64_t>(group++)}}));
    }
    sim.run();
    double sum = 0.0;
    for (const FlowId id : ids) sum += sim.flow(id).completion_time();
    return sum / 3.0;
  };
  EXPECT_LT(mean_cct(true), mean_cct(false));
}

}  // namespace
}  // namespace echelon::ef
