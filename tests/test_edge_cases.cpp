// Edge-case and boundary tests across modules: degenerate sizes, single
// micro-batches/buckets, logging controls, quiescent coordinators.

#include <gtest/gtest.h>

#include "common/log.hpp"
#include "echelon/echelon_madd.hpp"
#include "echelon/registry.hpp"
#include "netsim/simulator.hpp"
#include "runtime/coordinator.hpp"
#include "topology/builders.hpp"
#include "workload/dp.hpp"
#include "workload/pp.hpp"
#include "workload/profiler.hpp"

namespace echelon {
namespace {

TEST(Log, LevelGating) {
  set_log_level(LogLevel::kWarn);
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  set_log_level(LogLevel::kOff);
  EXPECT_FALSE(log_enabled(LogLevel::kError));
  set_log_level(LogLevel::kWarn);  // restore default for other tests
}

TEST(PipelineEdge, SingleMicroBatchDegeneratesToSequential) {
  auto fabric = topology::make_big_switch(2, 1e30);
  netsim::Simulator sim(&fabric.topo);
  ef::Registry reg;
  const auto placement = workload::make_placement(sim, fabric.hosts);
  const workload::ModelSpec model = workload::make_mlp(2, 32, 2);
  const workload::GpuSpec gpu = workload::unit_gpu();
  const auto job = workload::generate_pipeline(
      {.model = model, .gpu = gpu, .micro_batches = 1, .iterations = 1,
       .optimizer_fraction = 0.0},
      placement, reg, JobId{0});
  netsim::WorkflowEngine eng(&sim, &job.workflow);
  eng.launch(0.0);
  const SimTime t = sim.run();
  EXPECT_TRUE(eng.finished());
  // One micro-batch: pure sequential fwd+bwd across both stages.
  const double expected = gpu.compute_time(model.total_fwd_flops() +
                                           model.total_bwd_flops());
  EXPECT_NEAR(t, expected, 1e-6);
  // Every pipeline EchelonFlow has cardinality 1 and is trivially compliant.
  for (const EchelonFlowId id : job.echelonflows) {
    EXPECT_EQ(reg.get(id).cardinality(), 1);
    EXPECT_TRUE(reg.get(id).arrangement().is_coflow_compliant());
  }
}

TEST(DpEdge, SingleBucketSynchronizesOnce) {
  auto fabric = topology::make_big_switch(2, 1e9);
  netsim::Simulator sim(&fabric.topo);
  ef::Registry reg;
  const auto placement = workload::make_placement(sim, fabric.hosts);
  const auto job = workload::generate_dp_allreduce(
      {.model = workload::make_mlp(3, 32, 2),
       .gpu = workload::unit_gpu(),
       .buckets = 1,
       .iterations = 1},
      placement, reg, JobId{0});
  EXPECT_EQ(job.echelonflows.size(), 1u);
  netsim::WorkflowEngine eng(&sim, &job.workflow);
  eng.launch(0.0);
  sim.run();
  EXPECT_TRUE(eng.finished());
}

TEST(ProfilerEdge, FiniteProfilingCapacityShiftsOffsets) {
  // Profiling on a *finite* network inflates offsets beyond the zero-comm
  // ideal -- the profiler must honor the capacity parameter.
  auto fabric = topology::make_big_switch(2, 1.0);
  netsim::Simulator sim(&fabric.topo);
  ef::Registry reg;
  const auto placement = workload::make_placement(sim, fabric.hosts);
  workload::ModelSpec model = workload::make_mlp(2, 32, 2);
  for (auto& l : model.layers) l.activation_bytes = 4.0;  // 4 s at 1 B/s
  const auto job = workload::generate_pipeline(
      {.model = model, .gpu = workload::unit_gpu(), .micro_batches = 2,
       .iterations = 1},
      placement, reg, JobId{0});
  const auto fast =
      workload::profile_job(job, fabric.topo, placement.hosts, 1e30);
  const auto slow =
      workload::profile_job(job, fabric.topo, placement.hosts, 1.0);
  const auto ef_id = job.echelonflows[0].value();
  ASSERT_TRUE(fast.offsets.count(ef_id) && slow.offsets.count(ef_id));
  // Slow-network gaps between releases are at least the fast-network gaps.
  EXPECT_GE(slow.offsets.at(ef_id)[1], fast.offsets.at(ef_id)[1] - 1e-9);
  EXPECT_GT(slow.makespan, fast.makespan);
}

TEST(CoordinatorEdge, QuiescentIntervalModeTerminates) {
  // An interval coordinator with no flows must not keep the simulator alive
  // with timer chains.
  auto fabric = topology::make_big_switch(2, 10.0);
  netsim::Simulator sim(&fabric.topo);
  runtime::Coordinator coord(&sim, {.mode = runtime::SchedulingMode::kInterval,
                                    .interval = 0.01});
  sim.set_scheduler(&coord);
  const WorkerId w = sim.add_worker(fabric.hosts[0]);
  sim.enqueue_task(w, 1.0, "compute-only");
  const SimTime end = sim.run();
  EXPECT_NEAR(end, 1.0, 1e-9);
}

TEST(CoordinatorEdge, FlowAfterIdlePeriodIsScheduled) {
  auto fabric = topology::make_big_switch(2, 10.0);
  netsim::Simulator sim(&fabric.topo);
  runtime::Coordinator coord(&sim, {.mode = runtime::SchedulingMode::kInterval,
                                    .interval = 0.5});
  sim.set_scheduler(&coord);
  // First burst, full drain, long idle gap, second burst.
  sim.submit_flow(netsim::FlowSpec{
      .src = fabric.hosts[0], .dst = fabric.hosts[1], .size = 10.0});
  sim.schedule_at(10.0, [&fabric](netsim::Simulator& s) {
    s.submit_flow(netsim::FlowSpec{
        .src = fabric.hosts[0], .dst = fabric.hosts[1], .size = 10.0});
  });
  const SimTime end = sim.run();
  // The second flow must complete promptly (within one interval of grace).
  EXPECT_LE(end, 12.0);
  EXPECT_TRUE(sim.flow(FlowId{1}).finished());
}

TEST(EchelonMaddEdge, EmptyActiveSetIsNoOp) {
  auto fabric = topology::make_big_switch(2, 10.0);
  netsim::Simulator sim(&fabric.topo);
  ef::Registry reg;
  ef::EchelonMaddScheduler sched(&reg);
  std::vector<netsim::Flow*> empty;
  sched.control(sim, empty);  // must not crash
  SUCCEED();
}

TEST(EchelonMaddEdge, NullRegistryFallsBackToStartTimes) {
  auto fabric = topology::make_big_switch(2, 10.0);
  netsim::Simulator sim(&fabric.topo);
  ef::EchelonMaddScheduler sched(nullptr);
  sim.set_scheduler(&sched);
  const FlowId id = sim.submit_flow(netsim::FlowSpec{
      .src = fabric.hosts[0], .dst = fabric.hosts[1], .size = 10.0,
      .group = EchelonFlowId{7}, .index_in_group = 0});
  sim.run();
  EXPECT_NEAR(sim.flow(id).finish_time, 1.0, 1e-9);
}

TEST(RegistryEdge, IncompleteEchelonFlowExcludedFromObjective) {
  ef::Registry reg;
  const EchelonFlowId id =
      reg.create(JobId{0}, ef::Arrangement::coflow(2), "partial");
  netsim::Flow f;
  f.id = FlowId{0};
  f.spec.group = id;
  f.spec.index_in_group = 0;
  reg.note_arrival(f, 0.0);
  reg.note_departure(f, 5.0);
  // Only 1 of 2 members finished: not complete, not counted in Eq. 4.
  EXPECT_FALSE(reg.get(id).complete());
  EXPECT_DOUBLE_EQ(reg.total_tardiness(), 0.0);
  EXPECT_DOUBLE_EQ(reg.get(id).tardiness(), 5.0);  // running value exists
}

}  // namespace
}  // namespace echelon
