// Golden-equivalence suite for intra-run parallelism (DESIGN.md §10).
//
// The contract under test: every data-parallel section the shared
// ThreadPool powers -- per-component water-fill in the RateAllocator,
// active-flow stamping and completion-heap preparation in the Simulator,
// group-cache validation in the EchelonFlow-MADD scheduler, per-worker
// trace shards in obs -- produces results *bit-identical* to the serial
// path at ANY thread count. Parallelism here is a pure speed knob: the
// parallel sections execute the same floating-point expressions on the
// same operands as the serial loops and merge in a deterministic
// (ascending-component / active-order) sequence, so nothing observable may
// move. The suites sweep the threads axis {1, 2, 8, 0 = all participants}
// across:
//
//   1. ThreadPool / WorkerScratch unit semantics (coverage, lowest-index
//      exception, nested-dispatch inlining, pass epochs),
//   2. the full scheduler x fabric cluster matrix, fault-free and under a
//      chaos fault plan, in both allocator modes,
//   3. flow-detail trace streams (per-worker kCompFill shards must merge
//      into the exact serial emission order),
//   4. a simulator-level ~800-flow scenario that pushes the active set past
//      kParallelBatch so the wide stamping / heap-prep paths actually run.

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>

#include "common/scratch.hpp"
#include "equivalence_harness.hpp"
#include "obs/trace.hpp"

namespace echelon {
namespace {

namespace eqh = ::echelon::eqh;

// The threads axis every equivalence sweep walks: serial baseline, a small
// width, the acceptance-criteria width, and "all shared-pool participants".
// The shared pool is sized max(8, hardware_concurrency), so 2 and 8 truly
// dispatch to distinct workers even on small CI boxes.
constexpr unsigned kThreadAxis[] = {2, 8, 0};

// ============================================================================
// 1. ThreadPool semantics
// ============================================================================

TEST(ThreadPoolTest, SharedPoolHasAtLeastEightParticipants) {
  // The 8-thread equivalence axis must genuinely multithread everywhere.
  EXPECT_GE(ThreadPool::shared().concurrency(), 8u);
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnceAtAnyWidth) {
  ThreadPool& pool = ThreadPool::shared();
  for (const unsigned width : {1u, 2u, 3u, 8u, 0u}) {
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.run(kN, width, [&](unsigned, std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "width " << width << " index " << i;
    }
  }
}

TEST(ThreadPoolTest, LowestIndexExceptionWinsSerialAndParallel) {
  ThreadPool& pool = ThreadPool::shared();
  for (const unsigned width : {1u, 8u}) {
    std::atomic<std::size_t> attempted{0};
    bool caught = false;
    try {
      pool.run(64, width, [&](unsigned, std::size_t i) {
        attempted.fetch_add(1, std::memory_order_relaxed);
        if (i == 7 || i == 3 || i == 40) {
          throw std::runtime_error("fail@" + std::to_string(i));
        }
      });
    } catch (const std::runtime_error& e) {
      caught = true;
      EXPECT_STREQ(e.what(), "fail@3") << "width " << width;
    }
    EXPECT_TRUE(caught);
    // Exceptions do not abort the dispatch: every index is still attempted
    // (matching the sweep runner's historical contract).
    EXPECT_EQ(attempted.load(), 64u) << "width " << width;
  }
}

TEST(ThreadPoolTest, NestedDispatchRunsInlineSerially) {
  ThreadPool& pool = ThreadPool::shared();
  EXPECT_FALSE(ThreadPool::in_parallel_region());
  std::atomic<std::size_t> inner_total{0};
  std::atomic<bool> saw_region_flag{true};
  pool.run(8, 8, [&](unsigned, std::size_t) {
    if (!ThreadPool::in_parallel_region()) saw_region_flag = false;
    // A nested run must not wait on pool workers (they are busy running
    // *this* lambda) -- it degrades to an inline serial loop on the
    // calling worker. Deadlock here would hang the test.
    std::atomic<std::size_t> local{0};
    pool.run(16, 8, [&](unsigned w, std::size_t) {
      EXPECT_EQ(w, 0u);  // inline execution reports worker 0
      local.fetch_add(1, std::memory_order_relaxed);
    });
    inner_total.fetch_add(local.load(), std::memory_order_relaxed);
  });
  EXPECT_TRUE(saw_region_flag.load());
  EXPECT_EQ(inner_total.load(), 8u * 16u);
  EXPECT_FALSE(ThreadPool::in_parallel_region());
}

TEST(ThreadPoolTest, WidthOneRunsOnCallingThread) {
  const std::thread::id caller = std::this_thread::get_id();
  ThreadPool::shared().run(4, 1, [&](unsigned w, std::size_t) {
    EXPECT_EQ(w, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(WorkerScratchTest, ValuesPersistAcrossPassesAndInitOverloadResets) {
  WorkerScratch<int> ws;
  ws.begin_pass(4);
  for (unsigned w = 0; w < 4; ++w) ws.at(w) = static_cast<int>(w) + 10;
  for (unsigned w = 0; w < 4; ++w) EXPECT_EQ(ws.read(w), static_cast<int>(w) + 10);
  // Plain begin_pass keeps values (arena semantics) ...
  ws.begin_pass(4);
  for (unsigned w = 0; w < 4; ++w) EXPECT_EQ(ws.read(w), static_cast<int>(w) + 10);
  // ... while the init overload resets every slot without binding owners.
  ws.begin_pass(4, -1);
  for (unsigned w = 0; w < 4; ++w) EXPECT_EQ(ws.read(w), -1);
}

// ============================================================================
// 2. Cluster-level threads-axis bit identity
// ============================================================================

using ParallelEquivalence = eqh::SchedFabricTest;

TEST_P(ParallelEquivalence, ThreadsAxisBitIdenticalBothAllocModes) {
  const auto [scheduler, fabric] = GetParam();
  const auto jobs = eqh::small_trace(/*seed=*/91, /*jitter=*/0.1);

  for (const auto alloc :
       {netsim::AllocMode::kIncremental, netsim::AllocMode::kFullRecompute}) {
    eqh::RunSpec spec;
    spec.scheduler = scheduler;
    spec.fabric = fabric;
    spec.alloc = alloc;
    spec.threads = 1;
    const auto serial = eqh::run_cluster(jobs, spec);
    for (const unsigned threads : kThreadAxis) {
      spec.threads = threads;
      const auto wide = eqh::run_cluster(jobs, spec);
      eqh::expect_same_result(serial, wide);
    }
  }
}

TEST_P(ParallelEquivalence, ChaosFaultPlanThreadsAxisBitIdentical) {
  const auto [scheduler, fabric] = GetParam();
  const auto jobs = eqh::small_trace(/*seed=*/47);

  faultsim::ChaosProfile profile;
  profile.seed = 9;
  profile.horizon = 1.5;
  profile.link_faults = 3;
  profile.brownouts = 2;
  profile.stragglers = 2;
  const auto fabric_shape = eqh::run_cluster_fabric(fabric);
  std::size_t workers = 0;
  for (const auto& j : jobs) workers += static_cast<std::size_t>(j.ranks);
  const faultsim::FaultPlan plan =
      faultsim::from_chaos(profile, fabric_shape.topo, workers, jobs.size());

  eqh::RunSpec spec;
  spec.scheduler = scheduler;
  spec.fabric = fabric;
  spec.plan = &plan;
  spec.threads = 1;
  const auto serial = eqh::run_cluster(jobs, spec);
  for (const unsigned threads : kThreadAxis) {
    spec.threads = threads;
    const auto wide = eqh::run_cluster(jobs, spec);
    eqh::expect_same_result(serial, wide);
  }
}

ECHELON_INSTANTIATE_SCHED_FABRIC(ParallelEquivalence);

// ============================================================================
// 3. Trace streams: per-worker shards merge into the serial emission order
// ============================================================================

// Traced runs route through eqh::run_cluster (RunSpec::trace_sink) and the
// shared eqh::expect_same_trace comparator -- no local copies.
using TracedParallelEquivalence = eqh::SchedFabricTest;

TEST_P(TracedParallelEquivalence, FlowDetailTraceStreamIdenticalAcrossThreads) {
  const auto [scheduler, fabric] = GetParam();
  const auto jobs = eqh::small_trace(/*seed=*/73, /*jitter=*/0.05);
  eqh::RunSpec spec;
  spec.scheduler = scheduler;
  spec.fabric = fabric;
  // kFullRecompute maximizes per-pass fill components, i.e. kCompFill
  // traffic through the per-worker shards.
  spec.alloc = netsim::AllocMode::kFullRecompute;

  spec.threads = 1;
  obs::TraceRecorder serial_rec;
  spec.trace_sink = &serial_rec;
  const auto serial = eqh::run_cluster(jobs, spec);
  EXPECT_GT(serial_rec.count(obs::TraceKind::kCompFill), 0u);

  for (const unsigned threads : kThreadAxis) {
    spec.threads = threads;
    obs::TraceRecorder wide_rec;
    spec.trace_sink = &wide_rec;
    const auto wide = eqh::run_cluster(jobs, spec);
    eqh::expect_same_result(serial, wide);
    eqh::expect_same_trace(serial_rec, wide_rec);
  }
}

ECHELON_INSTANTIATE_SCHED_FABRIC(TracedParallelEquivalence);

// ============================================================================
// 4. Simulator-level wide paths (active set past kParallelBatch)
// ============================================================================

TEST(SimLevelParallelTest, LargeActiveSetBitIdenticalAcrossThreads) {
  // ~800 concurrently-active flows on an 8-host big switch: comfortably
  // past the simulator's 512-active parallel-stamping cutoff, so the wide
  // remaining-bytes stamp and completion-heap preparation paths execute
  // (not just the allocator fill). Stepped run + capacity churn drag in the
  // deadline-stamp and cache-invalidation machinery under parallelism too.
  for (const auto alloc :
       {netsim::AllocMode::kIncremental, netsim::AllocMode::kFullRecompute}) {
    eqh::ScenarioOptions opt;
    opt.alloc = alloc;
    opt.flows = 800;
    opt.stepped = true;
    opt.capacity_churn = true;
    opt.threads = 1;
    const auto serial = eqh::run_sim_scenario(/*seed=*/2024, opt);
    ASSERT_EQ(serial.trace.size(), 800u);

    for (const unsigned threads : kThreadAxis) {
      opt.threads = threads;
      const auto wide = eqh::run_sim_scenario(/*seed=*/2024, opt);
      ASSERT_EQ(wide.trace.size(), serial.trace.size());
      for (std::size_t i = 0; i < serial.trace.size(); ++i) {
        EXPECT_EQ(serial.trace[i].flow, wide.trace[i].flow) << "event " << i;
        EXPECT_BITEQ(serial.trace[i].finish, wide.trace[i].finish);
      }
      EXPECT_EQ(serial.alloc_stats.passes, wide.alloc_stats.passes);
      EXPECT_EQ(serial.alloc_stats.components, wide.alloc_stats.components);
      EXPECT_EQ(serial.alloc_stats.components_reused,
                wide.alloc_stats.components_reused);
      EXPECT_EQ(serial.alloc_stats.components_filled,
                wide.alloc_stats.components_filled);
    }
  }
}

}  // namespace
}  // namespace echelon
