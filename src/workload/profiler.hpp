// Computation profiling (paper §3.1 "distance ... can be profiled by
// running a few training iterations", §5 "Profiling" input to the agent).
//
// The profiler executes a generated job on a structurally identical fabric
// whose links are effectively infinite, so every flow completes the moment
// it starts. The flow *start* times observed in that run are, by the paper's
// definition, the ideal finish times: "assuming zero data transmission time,
// the ideal flow finish time is its start time". Per EchelonFlow, the
// offsets of those times from the head flow's give a measured arrangement
// function -- usable verbatim for paradigms whose analytic arrangement is
// awkward (e.g. 1F1B pipeline reordering, heterogeneous layers).
//
// Also extracts per-label compute durations ("distance" calibration) for
// tests and reports.

#pragma once

#include <string_view>
#include <unordered_map>
#include <vector>

#include "echelon/registry.hpp"
#include "workload/paradigm.hpp"

namespace echelon::workload {

struct ProfileResult {
  // EchelonFlowId value -> per-member ideal-finish offsets (seconds from the
  // head flow's start; index = index_in_group). kTimeInfinity for members
  // that never appeared.
  std::unordered_map<std::uint64_t, std::vector<Duration>> offsets;

  // Label -> observed start/finish of every compute task with that label.
  struct TaskTimes {
    SimTime start = 0.0;
    SimTime finish = 0.0;
  };
  std::unordered_map<std::string, TaskTimes> tasks;

  // Wall-clock of the profiled run (first root release to last node).
  Duration makespan = 0.0;

  // Mean duration of compute tasks whose label starts with `prefix`.
  [[nodiscard]] Duration mean_task_duration(std::string_view prefix) const;
};

// Runs `job` once on `topo` with all link capacities overridden to
// `profiling_capacity` (default: effectively infinite). `hosts_by_worker`
// maps WorkerId value -> attachment host, in worker-creation order, and must
// cover every worker the job's workflow references.
[[nodiscard]] ProfileResult profile_job(
    const GeneratedJob& job, const topology::Topology& topo,
    const std::vector<NodeId>& hosts_by_worker,
    BytesPerSec profiling_capacity = 1e30);

// Overwrites each of the job's EchelonFlow arrangements in `registry` with
// the profiled offsets (monotonized against floating-point jitter). Call
// before the real run binds any member flow.
void calibrate_registry(const GeneratedJob& job, const ProfileResult& profile,
                        ef::Registry& registry);

}  // namespace echelon::workload
