#include "workload/profiler.hpp"

#include <algorithm>
#include <cassert>

namespace echelon::workload {

Duration ProfileResult::mean_task_duration(std::string_view prefix) const {
  Duration sum = 0.0;
  std::size_t n = 0;
  for (const auto& [label, times] : tasks) {
    if (label.size() >= prefix.size() &&
        std::string_view(label).substr(0, prefix.size()) == prefix) {
      sum += times.finish - times.start;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

ProfileResult profile_job(const GeneratedJob& job,
                          const topology::Topology& topo,
                          const std::vector<NodeId>& hosts_by_worker,
                          BytesPerSec profiling_capacity) {
  const topology::Topology fast = topo.clone_with_capacity(profiling_capacity);
  netsim::Simulator sim(&fast);
  for (std::size_t w = 0; w < hosts_by_worker.size(); ++w) {
    sim.add_worker(hosts_by_worker[w]);
  }

  ProfileResult result;

  // Flow starts: group -> (index -> start time).
  std::unordered_map<std::uint64_t, std::unordered_map<int, SimTime>> starts;
  sim.add_flow_arrival_listener(
      [&starts](netsim::Simulator& s, const netsim::Flow& f) {
        if (!f.spec.group.valid()) return;
        starts[f.spec.group.value()][f.spec.index_in_group] = s.now();
      });
  sim.add_task_listener(
      [&result](netsim::Simulator&, const netsim::ComputeTask& t) {
        result.tasks[t.label] =
            ProfileResult::TaskTimes{t.start_time, t.finish_time};
      });

  netsim::WorkflowEngine engine(&sim, &job.workflow);
  engine.launch(0.0);
  const SimTime end = sim.run();
  result.makespan = end;
  assert(engine.finished() && "profiling run did not drain the workflow");

  // Convert absolute start times into head-relative offsets per EchelonFlow.
  for (const auto& [group, by_index] : starts) {
    int max_index = -1;
    SimTime head = kTimeInfinity;
    for (const auto& [idx, t] : by_index) {
      max_index = std::max(max_index, idx);
      head = std::min(head, t);
    }
    std::vector<Duration> offsets(static_cast<std::size_t>(max_index + 1),
                                  kTimeInfinity);
    for (const auto& [idx, t] : by_index) {
      offsets[static_cast<std::size_t>(idx)] = t - head;
    }
    result.offsets[group] = std::move(offsets);
  }
  return result;
}

void calibrate_registry(const GeneratedJob& job, const ProfileResult& profile,
                        ef::Registry& registry) {
  for (EchelonFlowId id : job.echelonflows) {
    const auto it = profile.offsets.find(id.value());
    if (it == profile.offsets.end()) continue;
    ef::EchelonFlow& ef = registry.get(id);
    if (static_cast<int>(it->second.size()) != ef.cardinality()) continue;

    // Monotonize: flow indices are emission order, which matches start order
    // up to floating-point jitter; Arrangement requires non-decreasing
    // offsets.
    std::vector<Duration> offsets = it->second;
    for (std::size_t j = 1; j < offsets.size(); ++j) {
      offsets[j] = std::max(offsets[j], offsets[j - 1]);
    }
    ef.set_arrangement(ef::Arrangement::from_offsets(std::move(offsets)));
  }
}

}  // namespace echelon::workload
