#include "workload/ep.hpp"

#include <cassert>

#include "collective/p2p.hpp"

namespace echelon::workload {

GeneratedJob generate_expert(const ExpertConfig& cfg,
                             const Placement& placement,
                             ef::Registry& registry, JobId job) {
  const std::size_t m = placement.size();
  const std::size_t L = cfg.model.layer_count();
  assert(m >= 2 && L >= 1 && cfg.iterations >= 1);

  GeneratedJob out;
  out.paradigm = Paradigm::kExpert;
  out.job = job;
  out.workflow.set_job(job);
  netsim::Workflow& wf = out.workflow;

  const int a2a_flows = static_cast<int>(m * (m - 1));

  netsim::WfNodeId prev_iter_end = wf.add_barrier("start");
  for (int it = 0; it < cfg.iterations; ++it) {
    const std::string itp = "it" + std::to_string(it) + ".";
    std::uint64_t ef_ord = 0;

    // Helper: one all-to-all Coflow-EchelonFlow gated by every rank's
    // predecessor computation, followed by a per-rank compute.
    std::vector<netsim::WfNodeId> prev_done(m, prev_iter_end);
    auto phase = [&](const std::string& name, Bytes total_bytes,
                     Duration compute) {
      const EchelonFlowId ef = registry.create(
          job, ef::Arrangement::coflow(a2a_flows),
          "j" + std::to_string(job.value()) + "." + itp + name);
      out.echelonflows.push_back(ef);
      collective::FlowTag tag{.job = job,
                              .group = ef,
                              .signature_base = signature_base(job, ef_ord++)};
      // Tokens split evenly across experts: bytes per ordered pair.
      auto a2a = collective::all_to_all(
          wf, placement.hosts, total_bytes / static_cast<double>(m * m), tag,
          itp + name);
      for (std::size_t w = 0; w < m; ++w) {
        wf.add_dep(prev_done[w], a2a.start);
      }
      for (std::size_t w = 0; w < m; ++w) {
        const netsim::WfNodeId c = wf.add_compute(
            placement.workers[w], compute,
            itp + name + ".c.w" + std::to_string(w));
        wf.add_dep(a2a.done, c);
        prev_done[w] = c;
      }
    };

    // Forward: per layer, dispatch all-to-all -> expert FFN -> combine
    // all-to-all -> (next layer's attention, folded into the FFN time).
    for (std::size_t l = 0; l < L; ++l) {
      const LayerSpec& layer = cfg.model.layers[l];
      const Bytes routed = cfg.routed_fraction * layer.activation_bytes *
                           static_cast<double>(m);  // all ranks' tokens
      const Duration t_expert =
          cfg.gpu.compute_time(layer.fwd_flops);  // expert FFN per rank
      phase("dispatch.l" + std::to_string(l), routed, t_expert);
      phase("combine.l" + std::to_string(l), routed,
            cfg.gpu.compute_time(layer.fwd_flops * 0.1));
    }
    // Backward: mirror in reverse layer order with bwd FLOPs.
    for (std::size_t li = L; li-- > 0;) {
      const LayerSpec& layer = cfg.model.layers[li];
      const Bytes routed = cfg.routed_fraction * layer.activation_bytes *
                           static_cast<double>(m);
      phase("bwd_dispatch.l" + std::to_string(li), routed,
            cfg.gpu.compute_time(layer.bwd_flops));
      phase("bwd_combine.l" + std::to_string(li), routed,
            cfg.gpu.compute_time(layer.bwd_flops * 0.1));
    }

    const netsim::WfNodeId iter_end = wf.add_barrier(itp + "end");
    const Duration t_opt = cfg.optimizer_fraction *
                           cfg.gpu.compute_time(cfg.model.total_fwd_flops());
    for (std::size_t w = 0; w < m; ++w) {
      const netsim::WfNodeId opt = wf.add_compute(
          placement.workers[w], t_opt, itp + "opt.w" + std::to_string(w));
      wf.add_dep(prev_done[w], opt);
      wf.add_dep(opt, iter_end);
    }
    out.iteration_end.push_back(iter_end);
    prev_iter_end = iter_end;
  }

  out.description = std::string("EP-MoE ") + cfg.model.name + " x" +
                    std::to_string(m) + " experts, " + std::to_string(L) +
                    " layers";
  return out;
}

}  // namespace echelon::workload
