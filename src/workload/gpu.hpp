// GPU compute-time model.
//
// Dedicated, monolithic GPUs (the paper's target configuration, §5) have
// highly predictable kernel times, so a sustained-throughput model --
// duration = FLOPs / (peak * efficiency) -- captures what the EchelonFlow
// profiler measures on real hardware.

#pragma once

#include <string>

#include "common/time.hpp"

namespace echelon::workload {

struct GpuSpec {
  std::string name;
  double peak_flops = 0.0;   // per second
  double efficiency = 0.4;   // fraction of peak sustained in training

  [[nodiscard]] Duration compute_time(double flops) const noexcept {
    return flops / (peak_flops * efficiency);
  }
};

[[nodiscard]] inline GpuSpec a100() {
  return GpuSpec{.name = "A100", .peak_flops = 312e12, .efficiency = 0.45};
}

[[nodiscard]] inline GpuSpec v100() {
  return GpuSpec{.name = "V100", .peak_flops = 125e12, .efficiency = 0.40};
}

// A deliberately slow "unit" GPU for analytically tractable tests: one FLOP
// per second so task durations equal FLOP counts.
[[nodiscard]] inline GpuSpec unit_gpu() {
  return GpuSpec{.name = "unit", .peak_flops = 1.0, .efficiency = 1.0};
}

}  // namespace echelon::workload
