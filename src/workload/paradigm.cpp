#include "workload/paradigm.hpp"

#include <cassert>

namespace echelon::workload {

std::vector<std::pair<std::size_t, std::size_t>> partition_layers(
    const ModelSpec& model, std::size_t parts) {
  const std::size_t n = model.layer_count();
  assert(parts >= 1);
  assert(parts <= n && "cannot split a model into more parts than layers");

  const double total = model.total_fwd_flops();
  std::vector<std::pair<std::size_t, std::size_t>> out;
  out.reserve(parts);
  std::size_t begin = 0;
  double acc = 0.0;
  for (std::size_t p = 0; p < parts; ++p) {
    const double target = total * static_cast<double>(p + 1) /
                          static_cast<double>(parts);
    std::size_t end = begin;
    // Leave enough layers for the remaining parts (each needs >= 1).
    const std::size_t max_end = n - (parts - 1 - p);
    while (end < max_end) {
      acc += model.layers[end].fwd_flops;
      ++end;
      if (acc >= target && end > begin) break;
    }
    if (end == begin) end = begin + 1;  // degenerate flops: force progress
    out.emplace_back(begin, end);
    begin = end;
  }
  out.back().second = n;  // absorb any remainder into the last part
  return out;
}

}  // namespace echelon::workload
