// Pipeline-parallel training workflows (paper Figs. 1, 2, 6; §4 Case II).
//
// The model is split into contiguous stages, one rank each; every mini-batch
// is split into micro-batches that stream through the stages. Activations
// flow stage s -> s+1 in the forward phase and their gradients flow
// s+1 -> s in the backward phase.
//
// Two schedules are provided:
//  * GPipe: all forwards, then all backwards in reverse micro-batch order
//    (Fig. 1a).
//  * 1F1B (PipeDream-flush style): steady-state alternation of one forward
//    and one backward per stage, reducing the bubble -- the paper notes
//    later PP variants "reorder computations ... to reduce the computation
//    idleness" and still form EchelonFlows with a (more complicated)
//    arrangement function.
//
// EchelonFlows: for every consecutive rank pair and direction, the per-
// micro-batch flows form an EchelonFlow with the Eq. 6 pipeline arrangement,
// where the distance T is the consuming stage's per-micro-batch compute
// time (obtained by profiling on real systems; analytically here).

#pragma once

#include "workload/paradigm.hpp"

namespace echelon::workload {

enum class PipelineSchedule { kGpipe, kOneFOneB };

struct PipelineConfig {
  ModelSpec model;  // quantities are per *micro-batch*
  GpuSpec gpu;
  int micro_batches = 4;
  int iterations = 2;
  PipelineSchedule schedule = PipelineSchedule::kGpipe;
  double optimizer_fraction = 0.05;

  // Multiplicative per-task compute jitter (relative stddev, 0 = exact).
  // The declared arrangement stays at the *profiled mean*, so jitter models
  // real runs deviating from the profile -- the assumption §5 flags
  // ("relies on accurate profiling of the computation time").
  double compute_jitter = 0.0;
  std::uint64_t jitter_seed = 1;
};

// One pipeline stage per placement rank (placement.size() stages).
[[nodiscard]] GeneratedJob generate_pipeline(const PipelineConfig& cfg,
                                             const Placement& placement,
                                             ef::Registry& registry,
                                             JobId job);

// Analytic GPipe bubble fraction for p stages and m micro-batches with
// uniform stage times: (p - 1) / (m + p - 1). Used by FIG1 to cross-check
// measured idleness.
[[nodiscard]] constexpr double gpipe_bubble_fraction(int stages,
                                                     int micro_batches) {
  return static_cast<double>(stages - 1) /
         static_cast<double>(micro_batches + stages - 1);
}

}  // namespace echelon::workload
