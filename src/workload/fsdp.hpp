// Fully-Sharded Data Parallelism (ZeRO-3) workflow (paper Fig. 3, §4 Case III).
//
// Parameters are sharded across all ranks. Per layer, an all-gather
// assembles the full weights before the forward (and again before the
// backward) computation; after each layer's backward, a reduce-scatter
// dispatches gradient shards to their owners.
//
// EchelonFlow structure (the paper's headline non-Coflow case):
//   * All all-gather flows of one iteration form a single EchelonFlow whose
//     elements are the per-layer all-gather *Coflows*, staggered by the
//     profiled per-layer compute times -- the Eq. 7 arrangement
//     ("staggered Coflow finish time" in Table 1).
//   * Each layer's reduce-scatter forms an ordinary Coflow (Eq. 5), like
//     gradient buckets in DP.

#pragma once

#include "workload/paradigm.hpp"

namespace echelon::workload {

struct FsdpConfig {
  ModelSpec model;
  GpuSpec gpu;
  int iterations = 2;
  double optimizer_fraction = 0.05;

  // Multiplicative per-task compute jitter (relative stddev, 0 = exact);
  // see PipelineConfig::compute_jitter.
  double compute_jitter = 0.0;
  std::uint64_t jitter_seed = 1;
};

[[nodiscard]] GeneratedJob generate_fsdp(const FsdpConfig& cfg,
                                         const Placement& placement,
                                         ef::Registry& registry, JobId job);

}  // namespace echelon::workload
