// Neural-network model descriptions used to synthesize training workloads.
//
// A ModelSpec is a per-layer inventory of the quantities that drive
// communication and computation in distributed training:
//   * parameter count      -> gradient / weight-shard flow sizes
//   * activation bytes     -> pipeline-parallel p2p flow sizes and
//                             tensor-parallel all-reduce sizes
//   * forward/backward FLOPs -> compute-task durations (via GpuSpec)
//
// Factories below produce standard shapes: uniform MLP stacks and
// transformer blocks with the usual 12*h^2 parameter and ~2*P*tokens FLOP
// approximations. Absolute realism is not required -- experiments depend on
// the *ratios* between computation and communication, which these formulas
// get right -- but the knobs are all exposed for custom models.

#pragma once

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace echelon::workload {

struct LayerSpec {
  std::string name;
  std::uint64_t params = 0;        // learnable parameters in this layer
  Bytes activation_bytes = 0.0;    // output activation size per micro-batch
  double fwd_flops = 0.0;          // forward FLOPs per micro-batch
  double bwd_flops = 0.0;          // backward FLOPs per micro-batch
};

struct ModelSpec {
  std::string name;
  std::vector<LayerSpec> layers;
  double bytes_per_element = 4.0;  // fp32 = 4, fp16/bf16 = 2

  [[nodiscard]] std::uint64_t total_params() const noexcept {
    std::uint64_t p = 0;
    for (const LayerSpec& l : layers) p += l.params;
    return p;
  }
  [[nodiscard]] Bytes total_param_bytes() const noexcept {
    return static_cast<double>(total_params()) * bytes_per_element;
  }
  [[nodiscard]] Bytes layer_param_bytes(std::size_t i) const {
    return static_cast<double>(layers.at(i).params) * bytes_per_element;
  }
  [[nodiscard]] double total_fwd_flops() const noexcept {
    double f = 0.0;
    for (const LayerSpec& l : layers) f += l.fwd_flops;
    return f;
  }
  [[nodiscard]] double total_bwd_flops() const noexcept {
    double f = 0.0;
    for (const LayerSpec& l : layers) f += l.bwd_flops;
    return f;
  }
  [[nodiscard]] std::size_t layer_count() const noexcept {
    return layers.size();
  }
};

// Uniform stack of fully-connected layers of `width` units, batch size
// `batch`. Parameters per layer: width^2 (+bias, ignored); FLOPs:
// 2*batch*width^2 forward and twice that backward.
[[nodiscard]] inline ModelSpec make_mlp(int layers, int width, int batch,
                                        double bytes_per_element = 4.0) {
  ModelSpec m;
  m.name = "mlp" + std::to_string(layers) + "x" + std::to_string(width);
  m.bytes_per_element = bytes_per_element;
  for (int l = 0; l < layers; ++l) {
    LayerSpec s;
    s.name = "fc" + std::to_string(l);
    s.params = static_cast<std::uint64_t>(width) * width;
    s.activation_bytes =
        static_cast<double>(batch) * width * bytes_per_element;
    s.fwd_flops = 2.0 * batch * static_cast<double>(width) * width;
    s.bwd_flops = 2.0 * s.fwd_flops;
    m.layers.push_back(std::move(s));
  }
  return m;
}

// Transformer of `blocks` layers, hidden size `hidden`, sequence length
// `seq`, micro-batch size `batch`. Per block: 12*hidden^2 parameters;
// forward FLOPs ~ 2 * params * batch * seq (dense ops dominate);
// activations: batch * seq * hidden elements.
[[nodiscard]] inline ModelSpec make_transformer(
    int blocks, int hidden, int seq, int batch,
    double bytes_per_element = 2.0) {
  ModelSpec m;
  m.name = "tfm" + std::to_string(blocks) + "x" + std::to_string(hidden);
  m.bytes_per_element = bytes_per_element;
  for (int b = 0; b < blocks; ++b) {
    LayerSpec s;
    s.name = "block" + std::to_string(b);
    s.params = 12ULL * static_cast<std::uint64_t>(hidden) * hidden;
    s.activation_bytes = static_cast<double>(batch) * seq * hidden *
                         bytes_per_element;
    s.fwd_flops = 2.0 * static_cast<double>(s.params) * batch * seq;
    s.bwd_flops = 2.0 * s.fwd_flops;
    m.layers.push_back(std::move(s));
  }
  return m;
}

}  // namespace echelon::workload
