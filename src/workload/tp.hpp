// Tensor-parallel (Megatron-style) training workflow (paper Fig. 5).
//
// Every layer's parameters are sharded across all ranks; each rank computes
// 1/m of the layer's FLOPs. The forward pass runs an all-reduce per layer to
// assemble activations (AS in Fig. 5); the backward pass runs one per layer
// for the activation gradients (GS). Each all-reduce's flows barrier the
// next layer's computation, so they form a Coflow-compliant EchelonFlow
// (Eq. 5) -- §4 Case I.

#pragma once

#include "workload/paradigm.hpp"

namespace echelon::workload {

struct TensorConfig {
  ModelSpec model;
  GpuSpec gpu;
  int iterations = 2;
  double optimizer_fraction = 0.05;
};

[[nodiscard]] GeneratedJob generate_tensor(const TensorConfig& cfg,
                                           const Placement& placement,
                                           ef::Registry& registry, JobId job);

}  // namespace echelon::workload
