#include "workload/tp.hpp"

#include <cassert>

#include "collective/ring.hpp"

namespace echelon::workload {

GeneratedJob generate_tensor(const TensorConfig& cfg,
                             const Placement& placement,
                             ef::Registry& registry, JobId job) {
  const std::size_t m = placement.size();
  const std::size_t L = cfg.model.layer_count();
  assert(m >= 2 && L >= 1 && cfg.iterations >= 1);

  GeneratedJob out;
  out.paradigm = Paradigm::kTensor;
  out.job = job;
  out.workflow.set_job(job);
  netsim::Workflow& wf = out.workflow;

  const double shard = 1.0 / static_cast<double>(m);
  const int ring_flows = static_cast<int>(2 * (m - 1) * m);

  netsim::WfNodeId prev_iter_end = wf.add_barrier("start");
  for (int it = 0; it < cfg.iterations; ++it) {
    const std::string itp = "it" + std::to_string(it) + ".";
    std::uint64_t ef_ord = 0;

    // Forward: per layer, sharded compute on every rank, then an activation
    // all-reduce gating the next layer.
    std::vector<netsim::WfNodeId> prev_done(m, prev_iter_end);
    for (std::size_t l = 0; l < L; ++l) {
      const LayerSpec& layer = cfg.model.layers[l];
      const Duration t = cfg.gpu.compute_time(layer.fwd_flops * shard);
      const EchelonFlowId ef = registry.create(
          job, ef::Arrangement::coflow(ring_flows),
          "j" + std::to_string(job.value()) + "." + itp + "as.l" +
              std::to_string(l));
      out.echelonflows.push_back(ef);
      collective::FlowTag tag{.job = job,
                              .group = ef,
                              .signature_base = signature_base(job, ef_ord++)};
      auto ar = collective::ring_all_reduce(wf, placement.hosts,
                                            layer.activation_bytes, tag,
                                            itp + "as.l" + std::to_string(l));
      for (std::size_t w = 0; w < m; ++w) {
        const netsim::WfNodeId f = wf.add_compute(
            placement.workers[w], t,
            itp + "f.l" + std::to_string(l) + ".w" + std::to_string(w));
        wf.add_dep(prev_done[w], f);
        wf.add_dep(f, ar.start);
        prev_done[w] = ar.done;  // next layer waits for the all-reduce
      }
    }

    // Backward: reverse layer order, gradient all-reduce per layer.
    for (std::size_t li = L; li-- > 0;) {
      const LayerSpec& layer = cfg.model.layers[li];
      const Duration t = cfg.gpu.compute_time(layer.bwd_flops * shard);
      const EchelonFlowId ef = registry.create(
          job, ef::Arrangement::coflow(ring_flows),
          "j" + std::to_string(job.value()) + "." + itp + "gs.l" +
              std::to_string(li));
      out.echelonflows.push_back(ef);
      collective::FlowTag tag{.job = job,
                              .group = ef,
                              .signature_base = signature_base(job, ef_ord++)};
      auto ar = collective::ring_all_reduce(wf, placement.hosts,
                                            layer.activation_bytes, tag,
                                            itp + "gs.l" + std::to_string(li));
      for (std::size_t w = 0; w < m; ++w) {
        const netsim::WfNodeId b = wf.add_compute(
            placement.workers[w], t,
            itp + "b.l" + std::to_string(li) + ".w" + std::to_string(w));
        wf.add_dep(prev_done[w], b);
        wf.add_dep(b, ar.start);
        prev_done[w] = ar.done;
      }
    }

    const netsim::WfNodeId iter_end = wf.add_barrier(itp + "end");
    const Duration t_opt = cfg.optimizer_fraction *
                           cfg.gpu.compute_time(cfg.model.total_fwd_flops()) *
                           shard;
    for (std::size_t w = 0; w < m; ++w) {
      const netsim::WfNodeId opt = wf.add_compute(
          placement.workers[w], t_opt, itp + "opt.w" + std::to_string(w));
      wf.add_dep(prev_done[w], opt);
      wf.add_dep(opt, iter_end);
    }
    out.iteration_end.push_back(iter_end);
    prev_iter_end = iter_end;
  }

  out.description = std::string("TP ") + cfg.model.name + " x" +
                    std::to_string(m) + " ranks, " + std::to_string(L) +
                    " layers";
  return out;
}

}  // namespace echelon::workload
