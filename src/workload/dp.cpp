#include "workload/dp.hpp"

#include <cassert>

#include "collective/ps.hpp"
#include "collective/ring.hpp"

namespace echelon::workload {

namespace {

// Per-bucket totals derived from a layer partition, in *reverse layer
// order* (bucket 0 = the last layers, synchronized first -- backward runs
// from the output toward the input).
struct Bucket {
  Bytes grad_bytes = 0.0;
  double bwd_flops = 0.0;
};

std::vector<Bucket> make_buckets(const ModelSpec& model, int count) {
  const auto parts = partition_layers(model, static_cast<std::size_t>(count));
  std::vector<Bucket> out(parts.size());
  for (std::size_t p = 0; p < parts.size(); ++p) {
    Bucket& b = out[parts.size() - 1 - p];  // reverse order
    for (std::size_t l = parts[p].first; l < parts[p].second; ++l) {
      b.grad_bytes += model.layer_param_bytes(l);
      b.bwd_flops += model.layers[l].bwd_flops;
    }
  }
  return out;
}

}  // namespace

GeneratedJob generate_dp_allreduce(const DpAllReduceConfig& cfg,
                                   const Placement& placement,
                                   ef::Registry& registry, JobId job) {
  const std::size_t m = placement.size();
  assert(m >= 2);
  assert(cfg.buckets >= 1 && cfg.iterations >= 1);

  GeneratedJob out;
  out.paradigm = Paradigm::kDpAllReduce;
  out.job = job;
  out.workflow.set_job(job);
  netsim::Workflow& wf = out.workflow;

  const Duration t_fwd = cfg.gpu.compute_time(cfg.model.total_fwd_flops());
  const Duration t_opt = cfg.optimizer_fraction * t_fwd;
  const std::vector<Bucket> buckets = make_buckets(cfg.model, cfg.buckets);

  netsim::WfNodeId prev_iter_end = wf.add_barrier("start");
  for (int it = 0; it < cfg.iterations; ++it) {
    const std::string itp = "it" + std::to_string(it) + ".";

    // Forward pass on every rank.
    std::vector<netsim::WfNodeId> fwd(m);
    for (std::size_t w = 0; w < m; ++w) {
      fwd[w] = wf.add_compute(placement.workers[w], t_fwd,
                              itp + "f.w" + std::to_string(w));
      wf.add_dep(prev_iter_end, fwd[w]);
    }

    // Backward per bucket (serial chain per rank), each bucket's gradients
    // ring-all-reduced as soon as every rank produced them.
    std::vector<netsim::WfNodeId> prev_bwd = fwd;
    std::vector<netsim::WfNodeId> sync_done;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      const Duration t_bwd = cfg.gpu.compute_time(buckets[b].bwd_flops);
      std::vector<netsim::WfNodeId> bwd(m);
      for (std::size_t w = 0; w < m; ++w) {
        bwd[w] = wf.add_compute(
            placement.workers[w], t_bwd,
            itp + "b.bk" + std::to_string(b) + ".w" + std::to_string(w));
        wf.add_dep(prev_bwd[w], bwd[w]);
      }

      const EchelonFlowId ef = registry.create(
          job,
          ef::Arrangement::coflow(static_cast<int>(2 * (m - 1) * m)),
          "j" + std::to_string(job.value()) + "." + itp + "ar.bk" +
              std::to_string(b));
      out.echelonflows.push_back(ef);
      collective::FlowTag tag{.job = job,
                              .group = ef,
                              .signature_base = signature_base(job, b)};
      auto ar = collective::ring_all_reduce(
          wf, placement.hosts, buckets[b].grad_bytes, tag,
          itp + "ar.bk" + std::to_string(b));
      for (std::size_t w = 0; w < m; ++w) wf.add_dep(bwd[w], ar.start);
      sync_done.push_back(ar.done);
      prev_bwd = bwd;
    }

    // Optimizer step per rank once every bucket is synchronized.
    const netsim::WfNodeId iter_end = wf.add_barrier(itp + "end");
    for (std::size_t w = 0; w < m; ++w) {
      const netsim::WfNodeId opt = wf.add_compute(
          placement.workers[w], t_opt, itp + "opt.w" + std::to_string(w));
      wf.add_deps(sync_done, opt);
      wf.add_dep(prev_bwd[w], opt);
      wf.add_dep(opt, iter_end);
    }
    out.iteration_end.push_back(iter_end);
    prev_iter_end = iter_end;
  }

  out.description = std::string("DP-AllReduce ") + cfg.model.name + " x" +
                    std::to_string(m) + " ranks, " +
                    std::to_string(cfg.buckets) + " buckets";
  return out;
}

GeneratedJob generate_dp_ps(const DpPsConfig& cfg, const Placement& placement,
                            NodeId ps_host, WorkerId ps_worker,
                            ef::Registry& registry, JobId job) {
  const std::size_t m = placement.size();
  assert(m >= 1);
  assert(cfg.buckets >= 1 && cfg.iterations >= 1);

  GeneratedJob out;
  out.paradigm = Paradigm::kDpPs;
  out.job = job;
  out.workflow.set_job(job);
  netsim::Workflow& wf = out.workflow;

  const Duration t_fwd = cfg.gpu.compute_time(cfg.model.total_fwd_flops());
  const Duration t_opt = cfg.optimizer_fraction * t_fwd;
  const Duration t_ps_update = cfg.ps_update_fraction * t_fwd;
  const std::vector<Bucket> buckets = make_buckets(cfg.model, cfg.buckets);

  netsim::WfNodeId prev_iter_end = wf.add_barrier("start");
  for (int it = 0; it < cfg.iterations; ++it) {
    const std::string itp = "it" + std::to_string(it) + ".";

    std::vector<netsim::WfNodeId> fwd(m);
    for (std::size_t w = 0; w < m; ++w) {
      fwd[w] = wf.add_compute(placement.workers[w], t_fwd,
                              itp + "f.w" + std::to_string(w));
      wf.add_dep(prev_iter_end, fwd[w]);
    }

    std::vector<netsim::WfNodeId> prev_bwd = fwd;
    std::vector<netsim::WfNodeId> update_done;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      const Duration t_bwd = cfg.gpu.compute_time(buckets[b].bwd_flops);
      std::vector<netsim::WfNodeId> bwd(m);
      for (std::size_t w = 0; w < m; ++w) {
        bwd[w] = wf.add_compute(
            placement.workers[w], t_bwd,
            itp + "b.bk" + std::to_string(b) + ".w" + std::to_string(w));
        wf.add_dep(prev_bwd[w], bwd[w]);
      }

      // Gradient push: one Coflow per bucket (paper §4 Case I).
      const EchelonFlowId ef = registry.create(
          job, ef::Arrangement::coflow(static_cast<int>(m)),
          "j" + std::to_string(job.value()) + "." + itp + "push.bk" +
              std::to_string(b));
      out.echelonflows.push_back(ef);
      collective::FlowTag tag{.job = job,
                              .group = ef,
                              .signature_base = signature_base(job, b)};
      auto push = collective::ps_push(wf, placement.hosts, ps_host,
                                      buckets[b].grad_bytes, tag,
                                      itp + "bk" + std::to_string(b));
      for (std::size_t w = 0; w < m; ++w) wf.add_dep(bwd[w], push.start);

      const netsim::WfNodeId update = wf.add_compute(
          ps_worker, t_ps_update, itp + "psup.bk" + std::to_string(b));
      wf.add_dep(push.done, update);
      update_done.push_back(update);
      prev_bwd = bwd;
    }

    // Weight pull: one Coflow for the whole model; its completion starts the
    // next iteration (paper §4 Case I).
    const EchelonFlowId pull_ef = registry.create(
        job, ef::Arrangement::coflow(static_cast<int>(m)),
        "j" + std::to_string(job.value()) + "." + itp + "pull");
    out.echelonflows.push_back(pull_ef);
    collective::FlowTag pull_tag{
        .job = job,
        .group = pull_ef,
        .signature_base = signature_base(job, buckets.size())};
    auto pull =
        collective::ps_pull(wf, placement.hosts, ps_host,
                            cfg.model.total_param_bytes(), pull_tag, itp);
    wf.add_deps(update_done, pull.start);

    const netsim::WfNodeId iter_end = wf.add_barrier(itp + "end");
    for (std::size_t w = 0; w < m; ++w) {
      const netsim::WfNodeId opt = wf.add_compute(
          placement.workers[w], t_opt, itp + "opt.w" + std::to_string(w));
      wf.add_dep(pull.done, opt);
      wf.add_dep(opt, iter_end);
    }
    out.iteration_end.push_back(iter_end);
    prev_iter_end = iter_end;
  }

  out.description = std::string("DP-PS ") + cfg.model.name + " x" +
                    std::to_string(m) + " workers + 1 PS, " +
                    std::to_string(cfg.buckets) + " buckets";
  return out;
}

}  // namespace echelon::workload
