// Common types for training-paradigm workflow generators.
//
// A generator turns (model, GPU, placement, #iterations) into:
//   * a netsim::Workflow -- the job's full computation/communication DAG,
//     unrolled over iterations, faithful to the paradigm's schedule (§2.1),
//   * EchelonFlow declarations in the registry, one per gradient bucket /
//     collective / worker-pair pipe, with the paradigm's arrangement
//     function (§4), and
//   * iteration-end markers for per-iteration metrics.

#pragma once

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "echelon/registry.hpp"
#include "netsim/simulator.hpp"
#include "netsim/workflow.hpp"
#include "workload/gpu.hpp"
#include "workload/model.hpp"

namespace echelon::workload {

enum class Paradigm { kDpAllReduce, kDpPs, kPipeline, kTensor, kFsdp, kExpert };

[[nodiscard]] constexpr const char* to_string(Paradigm p) noexcept {
  switch (p) {
    case Paradigm::kDpAllReduce: return "DP-AllReduce";
    case Paradigm::kDpPs: return "DP-PS";
    case Paradigm::kPipeline: return "PP";
    case Paradigm::kTensor: return "TP";
    case Paradigm::kFsdp: return "FSDP";
    case Paradigm::kExpert: return "EP-MoE";
  }
  return "?";
}

// Where a job's ranks live: hosts[i] is the network attachment of rank i and
// workers[i] its GPU in the simulator.
struct Placement {
  std::vector<NodeId> hosts;
  std::vector<WorkerId> workers;

  [[nodiscard]] std::size_t size() const noexcept { return hosts.size(); }
};

// Creates one worker per host on the simulator.
[[nodiscard]] inline Placement make_placement(netsim::Simulator& sim,
                                              std::vector<NodeId> hosts,
                                              const std::string& prefix = {}) {
  Placement p;
  p.hosts = std::move(hosts);
  p.workers.reserve(p.hosts.size());
  for (std::size_t i = 0; i < p.hosts.size(); ++i) {
    p.workers.push_back(
        sim.add_worker(p.hosts[i], prefix + "w" + std::to_string(i)));
  }
  return p;
}

struct GeneratedJob {
  Paradigm paradigm = Paradigm::kDpAllReduce;
  JobId job;
  netsim::Workflow workflow;
  std::vector<netsim::WfNodeId> iteration_end;  // barrier per iteration
  std::vector<EchelonFlowId> echelonflows;
  std::string description;
};

// Splits layers [0, n) into `parts` contiguous groups balanced by forward
// FLOPs (greedy prefix cut at the ideal per-part share). Returns half-open
// [begin, end) index pairs. Every part is non-empty when parts <= n.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
partition_layers(const ModelSpec& model, std::size_t parts);

// Multiplicative compute jitter: scales a nominal duration by a lognormal
// factor of relative stddev ~= `jitter`, floored so durations stay positive.
// With jitter == 0 the duration passes through exactly.
[[nodiscard]] inline Duration apply_jitter(Duration nominal, double jitter,
                                           Rng* rng) {
  if (jitter <= 0.0 || rng == nullptr) return nominal;
  const double factor = std::max(0.05, 1.0 + jitter * rng->normal());
  return nominal * factor;
}

// Signature base for the k-th EchelonFlow structure of a job: stable across
// iterations (the iteration index deliberately does not participate).
[[nodiscard]] constexpr std::uint64_t signature_base(
    JobId job, std::uint64_t ef_ordinal_in_iteration) noexcept {
  return ((job.value() + 1) << 36) | (ef_ordinal_in_iteration << 18) | 1;
}

}  // namespace echelon::workload
