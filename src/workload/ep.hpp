// Expert Parallelism (Mixture-of-Experts) workflow -- an extensibility
// demonstration.
//
// The paper closes §1 noting EchelonFlow "is also extensible to future DDLT
// paradigms, as long as their computation patterns can be profiled". MoE
// training (GShard/Switch-Transformer style) is the canonical post-paper
// paradigm: every layer routes tokens to experts sharded across all ranks
// with an all-to-all, computes the expert FFN, and routes results back with
// a second all-to-all. Both all-to-alls barrier the next computation, so --
// like TP -- each one forms a Coflow-compliant EchelonFlow; the paradigm
// slots into the abstraction with zero changes to the scheduler, which is
// the point.

#pragma once

#include "workload/paradigm.hpp"

namespace echelon::workload {

struct ExpertConfig {
  ModelSpec model;
  GpuSpec gpu;
  int iterations = 2;
  // Fraction of each layer's activation volume crossing the network in one
  // all-to-all (capacity-factor x routed share; ~1.0 for top-1 routing).
  double routed_fraction = 1.0;
  double optimizer_fraction = 0.05;
};

[[nodiscard]] GeneratedJob generate_expert(const ExpertConfig& cfg,
                                           const Placement& placement,
                                           ef::Registry& registry, JobId job);

}  // namespace echelon::workload
