#include "workload/pp.hpp"

#include <cassert>

#include "collective/p2p.hpp"

namespace echelon::workload {

namespace {

struct StageInfo {
  Duration t_fwd = 0.0;       // per micro-batch
  Duration t_bwd = 0.0;       // per micro-batch
  Bytes out_activation = 0.0; // activation bytes crossing to the next stage
};

std::vector<StageInfo> make_stages(const ModelSpec& model, const GpuSpec& gpu,
                                   std::size_t stages) {
  const auto parts = partition_layers(model, stages);
  std::vector<StageInfo> out(parts.size());
  for (std::size_t s = 0; s < parts.size(); ++s) {
    double fwd = 0.0;
    double bwd = 0.0;
    for (std::size_t l = parts[s].first; l < parts[s].second; ++l) {
      fwd += model.layers[l].fwd_flops;
      bwd += model.layers[l].bwd_flops;
    }
    out[s].t_fwd = gpu.compute_time(fwd);
    out[s].t_bwd = gpu.compute_time(bwd);
    out[s].out_activation =
        model.layers[parts[s].second - 1].activation_bytes;
  }
  return out;
}

// Per-stage task order (the schedule): pairs of (is_backward, micro-batch).
std::vector<std::pair<bool, int>> stage_order(PipelineSchedule schedule,
                                              std::size_t stage,
                                              std::size_t stages, int M) {
  std::vector<std::pair<bool, int>> seq;
  seq.reserve(static_cast<std::size_t>(2 * M));
  if (schedule == PipelineSchedule::kGpipe) {
    // All forwards in order, then all backwards in reverse micro-batch
    // order (Fig. 1a).
    for (int i = 0; i < M; ++i) seq.emplace_back(false, i);
    for (int i = M - 1; i >= 0; --i) seq.emplace_back(true, i);
  } else {
    // 1F1B: warmup of (stages-1-stage) forwards, then steady-state
    // forward/backward alternation, then the backward drain.
    const int warmup =
        std::min(static_cast<int>(stages - 1 - stage), M);
    int nf = 0;
    int nb = 0;
    while (nf < warmup) seq.emplace_back(false, nf++);
    while (nf < M) {
      seq.emplace_back(false, nf++);
      seq.emplace_back(true, nb++);
    }
    while (nb < M) seq.emplace_back(true, nb++);
  }
  return seq;
}

}  // namespace

GeneratedJob generate_pipeline(const PipelineConfig& cfg,
                               const Placement& placement,
                               ef::Registry& registry, JobId job) {
  const std::size_t S = placement.size();
  const int M = cfg.micro_batches;
  assert(S >= 2 && M >= 1 && cfg.iterations >= 1);

  GeneratedJob out;
  out.paradigm = Paradigm::kPipeline;
  out.job = job;
  out.workflow.set_job(job);
  netsim::Workflow& wf = out.workflow;

  const std::vector<StageInfo> stages = make_stages(cfg.model, cfg.gpu, S);
  Rng jitter_rng(cfg.jitter_seed);

  netsim::WfNodeId prev_iter_end = wf.add_barrier("start");
  for (int it = 0; it < cfg.iterations; ++it) {
    const std::string itp = "it" + std::to_string(it) + ".";
    const auto um = static_cast<std::size_t>(M);

    // --- EchelonFlow declarations: one per rank pair per direction --------
    // Forward pipe s -> s+1: Eq. 6 with T = consumer's per-micro-batch
    // forward time. Backward pipe s+1 -> s: T = consumer's backward time.
    // For 1F1B the steady-state spacing on the consumer alternates one
    // forward and one backward per micro-batch, so T = t_fwd + t_bwd.
    std::vector<EchelonFlowId> fwd_ef(S - 1);
    std::vector<EchelonFlowId> bwd_ef(S - 1);
    std::vector<collective::FlowTag> fwd_tag(S - 1);
    std::vector<collective::FlowTag> bwd_tag(S - 1);
    for (std::size_t s = 0; s + 1 < S; ++s) {
      const bool onefb = cfg.schedule == PipelineSchedule::kOneFOneB;
      const Duration t_cons_f =
          onefb ? stages[s + 1].t_fwd + stages[s + 1].t_bwd
                : stages[s + 1].t_fwd;
      const Duration t_cons_b =
          onefb ? stages[s].t_fwd + stages[s].t_bwd : stages[s].t_bwd;
      fwd_ef[s] = registry.create(
          job, ef::Arrangement::pipeline(M, t_cons_f),
          "j" + std::to_string(job.value()) + "." + itp + "act.s" +
              std::to_string(s));
      bwd_ef[s] = registry.create(
          job, ef::Arrangement::pipeline(M, t_cons_b),
          "j" + std::to_string(job.value()) + "." + itp + "grad.s" +
              std::to_string(s + 1));
      out.echelonflows.push_back(fwd_ef[s]);
      out.echelonflows.push_back(bwd_ef[s]);
      fwd_tag[s] = collective::FlowTag{
          .job = job, .group = fwd_ef[s],
          .signature_base = signature_base(job, 2 * s)};
      bwd_tag[s] = collective::FlowTag{
          .job = job, .group = bwd_ef[s],
          .signature_base = signature_base(job, 2 * s + 1)};
    }

    // --- nodes -------------------------------------------------------------
    std::vector<std::vector<netsim::WfNodeId>> F(S), B(S);
    std::vector<std::vector<netsim::WfNodeId>> A(S), G(S);  // flow *done* ids
    for (std::size_t s = 0; s < S; ++s) {
      F[s].resize(um);
      B[s].resize(um);
      A[s].resize(um);
      G[s].resize(um);
      for (int i = 0; i < M; ++i) {
        F[s][static_cast<std::size_t>(i)] = wf.add_compute(
            placement.workers[s],
            apply_jitter(stages[s].t_fwd, cfg.compute_jitter, &jitter_rng),
            itp + "f.s" + std::to_string(s) + ".mb" + std::to_string(i));
        B[s][static_cast<std::size_t>(i)] = wf.add_compute(
            placement.workers[s],
            apply_jitter(stages[s].t_bwd, cfg.compute_jitter, &jitter_rng),
            itp + "b.s" + std::to_string(s) + ".mb" + std::to_string(i));
      }
    }

    // Activation flows (emitted in micro-batch order so EchelonFlow indices
    // follow the arrangement) and gradient flows.
    for (std::size_t s = 0; s + 1 < S; ++s) {
      for (int i = 0; i < M; ++i) {
        auto act = collective::p2p(
            wf, placement.hosts[s], placement.hosts[s + 1],
            stages[s].out_activation, fwd_tag[s],
            itp + "act.s" + std::to_string(s) + ".mb" + std::to_string(i));
        wf.add_dep(F[s][static_cast<std::size_t>(i)], act.start);
        A[s][static_cast<std::size_t>(i)] = act.done;
      }
    }
    // Backward gradient flows: micro-batch emission order mirrors the
    // schedule's backward order (reverse for GPipe, in-order for 1F1B).
    for (std::size_t s = S - 1; s >= 1; --s) {
      const bool reverse = cfg.schedule == PipelineSchedule::kGpipe;
      for (int k = 0; k < M; ++k) {
        const int i = reverse ? M - 1 - k : k;
        auto grad = collective::p2p(
            wf, placement.hosts[s], placement.hosts[s - 1],
            stages[s - 1].out_activation, bwd_tag[s - 1],
            itp + "grad.s" + std::to_string(s) + ".mb" + std::to_string(i));
        wf.add_dep(B[s][static_cast<std::size_t>(i)], grad.start);
        G[s][static_cast<std::size_t>(i)] = grad.done;
      }
    }

    // --- data dependencies ---------------------------------------------------
    for (std::size_t s = 0; s < S; ++s) {
      for (int i = 0; i < M; ++i) {
        const auto ui = static_cast<std::size_t>(i);
        if (s == 0) {
          wf.add_dep(prev_iter_end, F[s][ui]);
        } else {
          wf.add_dep(A[s - 1][ui], F[s][ui]);
        }
        if (s == S - 1) {
          wf.add_dep(F[s][ui], B[s][ui]);  // loss -> backward
        } else {
          wf.add_dep(G[s + 1][ui], B[s][ui]);
        }
      }
    }

    // --- schedule (serial order per GPU) -------------------------------------
    // The per-worker FIFO already serializes tasks, but the *order* must be
    // the paradigm's schedule, not data-arrival order; chain consecutive
    // schedule entries explicitly.
    for (std::size_t s = 0; s < S; ++s) {
      const auto seq = stage_order(cfg.schedule, s, S, M);
      for (std::size_t k = 1; k < seq.size(); ++k) {
        const auto [pb, pi] = seq[k - 1];
        const auto [cb, ci] = seq[k];
        const netsim::WfNodeId prev =
            pb ? B[s][static_cast<std::size_t>(pi)]
               : F[s][static_cast<std::size_t>(pi)];
        const netsim::WfNodeId cur =
            cb ? B[s][static_cast<std::size_t>(ci)]
               : F[s][static_cast<std::size_t>(ci)];
        wf.add_dep(prev, cur);
      }
    }

    // --- iteration end: optimizer per stage after its last backward ----------
    const netsim::WfNodeId iter_end = wf.add_barrier(itp + "end");
    for (std::size_t s = 0; s < S; ++s) {
      const netsim::WfNodeId opt = wf.add_compute(
          placement.workers[s],
          cfg.optimizer_fraction * stages[s].t_fwd * M,
          itp + "opt.s" + std::to_string(s));
      for (int i = 0; i < M; ++i) {
        wf.add_dep(B[s][static_cast<std::size_t>(i)], opt);
      }
      wf.add_dep(opt, iter_end);
    }
    out.iteration_end.push_back(iter_end);
    prev_iter_end = iter_end;
  }

  out.description =
      std::string(cfg.schedule == PipelineSchedule::kGpipe ? "PP-GPipe "
                                                           : "PP-1F1B ") +
      cfg.model.name + " x" + std::to_string(S) + " stages, " +
      std::to_string(M) + " micro-batches";
  return out;
}

}  // namespace echelon::workload
