// Data-parallel training workflows (paper Fig. 4).
//
// Both variants replicate the model on every rank. Per iteration: a forward
// pass, then backward computed bucket-by-bucket in reverse layer order with
// gradient synchronization overlapping the remaining backward computation
// (PyTorch-DDP style bucketing, as the paper describes in §4 Case I).
//
// * AllReduce flavor: each bucket's gradients are ring-all-reduced; the
//   bucket's flows form one Coflow-compliant EchelonFlow (Eq. 5).
// * Parameter-server flavor: each bucket's gradients are pushed to the PS
//   (one Coflow per bucket); after the PS applies the update, the fresh
//   weights are pulled by all workers (one more Coflow gating the next
//   iteration).

#pragma once

#include "workload/paradigm.hpp"

namespace echelon::workload {

struct DpAllReduceConfig {
  ModelSpec model;
  GpuSpec gpu;
  int buckets = 4;
  int iterations = 2;
  // Optimizer step cost as a fraction of the forward-pass time.
  double optimizer_fraction = 0.05;
};

[[nodiscard]] GeneratedJob generate_dp_allreduce(const DpAllReduceConfig& cfg,
                                                 const Placement& placement,
                                                 ef::Registry& registry,
                                                 JobId job);

struct DpPsConfig {
  ModelSpec model;
  GpuSpec gpu;
  int buckets = 4;
  int iterations = 2;
  double optimizer_fraction = 0.05;
  // PS-side aggregation+update cost per bucket, as a fraction of the
  // forward-pass time.
  double ps_update_fraction = 0.02;
};

// `placement` holds the worker ranks; the PS is a separate node/worker.
[[nodiscard]] GeneratedJob generate_dp_ps(const DpPsConfig& cfg,
                                          const Placement& placement,
                                          NodeId ps_host, WorkerId ps_worker,
                                          ef::Registry& registry, JobId job);

}  // namespace echelon::workload
