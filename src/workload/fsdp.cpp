#include "workload/fsdp.hpp"

#include <cassert>

#include "collective/ring.hpp"

namespace echelon::workload {

GeneratedJob generate_fsdp(const FsdpConfig& cfg, const Placement& placement,
                           ef::Registry& registry, JobId job) {
  const std::size_t m = placement.size();
  const std::size_t L = cfg.model.layer_count();
  assert(m >= 2 && L >= 1 && cfg.iterations >= 1);

  GeneratedJob out;
  out.paradigm = Paradigm::kFsdp;
  out.job = job;
  out.workflow.set_job(job);
  netsim::Workflow& wf = out.workflow;

  // Per-layer compute times (each rank runs the *full* layer on its local
  // batch; only parameters are sharded).
  std::vector<Duration> t_f(L), t_b(L);
  for (std::size_t l = 0; l < L; ++l) {
    t_f[l] = cfg.gpu.compute_time(cfg.model.layers[l].fwd_flops);
    t_b[l] = cfg.gpu.compute_time(cfg.model.layers[l].bwd_flops);
  }

  // Eq. 7 arrangement, generalized to non-uniform layers: stage i < L is the
  // forward all-gather of layer i (ideal finish = when F_i could start on an
  // infinitely fast network); stage L + j is the backward all-gather of
  // layer L-1-j. Each stage holds the m*(m-1) flows of one ring all-gather.
  const int flows_per_stage = static_cast<int>((m - 1) * m);
  std::vector<int> stage_sizes(2 * L, flows_per_stage);
  std::vector<Duration> stage_offsets(2 * L, 0.0);
  {
    Duration acc = 0.0;
    for (std::size_t i = 0; i < L; ++i) {
      stage_offsets[i] = acc;
      acc += t_f[i];
    }
    stage_offsets[L] = acc;  // AG'_{L-1}: ideal finish when F_{L-1} is done
    for (std::size_t j = 1; j < L; ++j) {
      acc += t_b[L - j];
      stage_offsets[L + j] = acc;
    }
  }

  Rng jitter_rng(cfg.jitter_seed);

  netsim::WfNodeId prev_iter_end = wf.add_barrier("start");
  for (int it = 0; it < cfg.iterations; ++it) {
    const std::string itp = "it" + std::to_string(it) + ".";

    const EchelonFlowId ag_ef = registry.create(
        job, ef::Arrangement::staged(stage_sizes, stage_offsets),
        "j" + std::to_string(job.value()) + "." + itp + "ag");
    out.echelonflows.push_back(ag_ef);
    collective::FlowTag ag_tag{.job = job,
                               .group = ag_ef,
                               .signature_base = signature_base(job, 0)};

    // Forward: all-gathers released at iteration start (stage i), each
    // gating its layer's compute.
    std::vector<netsim::WfNodeId> prev_f(m, prev_iter_end);
    std::vector<std::vector<netsim::WfNodeId>> F(
        L, std::vector<netsim::WfNodeId>(m));
    for (std::size_t l = 0; l < L; ++l) {
      auto ag = collective::ring_all_gather(
          wf, placement.hosts, cfg.model.layer_param_bytes(l), ag_tag,
          itp + "ag.l" + std::to_string(l));
      wf.add_dep(prev_iter_end, ag.start);
      for (std::size_t w = 0; w < m; ++w) {
        F[l][w] = wf.add_compute(
            placement.workers[w],
            apply_jitter(t_f[l], cfg.compute_jitter, &jitter_rng),
            itp + "f.l" + std::to_string(l) + ".w" + std::to_string(w));
        wf.add_dep(ag.done, F[l][w]);
        wf.add_dep(prev_f[w], F[l][w]);
        prev_f[w] = F[l][w];
      }
    }

    // Backward phase entry: all ranks finished the last forward layer.
    const netsim::WfNodeId bwd_start = wf.add_barrier(itp + "bwd.start");
    for (std::size_t w = 0; w < m; ++w) wf.add_dep(prev_f[w], bwd_start);

    // Backward: all-gathers re-assemble each layer's weights (released at
    // backward start, stage L..2L-1 of the same EchelonFlow); after each
    // layer's backward, a reduce-scatter Coflow ships gradient shards.
    std::vector<netsim::WfNodeId> prev_b(m, bwd_start);
    std::vector<netsim::WfNodeId> rs_done;
    for (std::size_t li = L; li-- > 0;) {
      auto ag = collective::ring_all_gather(
          wf, placement.hosts, cfg.model.layer_param_bytes(li), ag_tag,
          itp + "ag'.l" + std::to_string(li));
      wf.add_dep(bwd_start, ag.start);

      std::vector<netsim::WfNodeId> bwd(m);
      for (std::size_t w = 0; w < m; ++w) {
        bwd[w] = wf.add_compute(
            placement.workers[w],
            apply_jitter(t_b[li], cfg.compute_jitter, &jitter_rng),
            itp + "b.l" + std::to_string(li) + ".w" + std::to_string(w));
        wf.add_dep(ag.done, bwd[w]);
        wf.add_dep(prev_b[w], bwd[w]);
        prev_b[w] = bwd[w];
      }

      const EchelonFlowId rs_ef = registry.create(
          job, ef::Arrangement::coflow(flows_per_stage),
          "j" + std::to_string(job.value()) + "." + itp + "rs.l" +
              std::to_string(li));
      out.echelonflows.push_back(rs_ef);
      collective::FlowTag rs_tag{
          .job = job,
          .group = rs_ef,
          .signature_base = signature_base(job, 1 + li)};
      auto rs = collective::ring_reduce_scatter(
          wf, placement.hosts, cfg.model.layer_param_bytes(li), rs_tag,
          itp + "rs.l" + std::to_string(li));
      for (std::size_t w = 0; w < m; ++w) wf.add_dep(bwd[w], rs.start);
      rs_done.push_back(rs.done);
    }

    const netsim::WfNodeId iter_end = wf.add_barrier(itp + "end");
    const Duration t_opt =
        cfg.optimizer_fraction *
        cfg.gpu.compute_time(cfg.model.total_fwd_flops()) /
        static_cast<double>(m);  // optimizer touches only the local shard
    for (std::size_t w = 0; w < m; ++w) {
      const netsim::WfNodeId opt = wf.add_compute(
          placement.workers[w], t_opt, itp + "opt.w" + std::to_string(w));
      wf.add_deps(rs_done, opt);
      wf.add_dep(prev_b[w], opt);
      wf.add_dep(opt, iter_end);
    }
    out.iteration_end.push_back(iter_end);
    prev_iter_end = iter_end;
  }

  out.description = std::string("FSDP ") + cfg.model.name + " x" +
                    std::to_string(m) + " ranks, " + std::to_string(L) +
                    " layers";
  return out;
}

}  // namespace echelon::workload
