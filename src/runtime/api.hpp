// Framework-facing EchelonFlow API (paper Fig. 7).
//
// A DDLT framework breaks its workflow into EchelonFlows (as in §4) and
// reports, per EchelonFlow, the arrangement function plus per-flow size,
// source and destination. These are the exact fields the paper lists.

#pragma once

#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "echelon/arrangement.hpp"

namespace echelon::runtime {

struct FlowInfo {
  Bytes size = 0.0;
  NodeId src;
  NodeId dst;
};

struct EchelonFlowRequest {
  JobId job;
  std::string label;
  // "Shape" and "distance" from head-flow profiling (§3.1).
  ef::Arrangement arrangement;
  // Per-flow info, in arrangement (index) order; size must equal the
  // arrangement's cardinality.
  std::vector<FlowInfo> flows;
  double weight = 1.0;

  // Structural signature base for iterative-reuse scheduling (0 = none).
  std::uint64_t signature_base = 0;
};

}  // namespace echelon::runtime
