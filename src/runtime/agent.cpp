#include "runtime/agent.hpp"

#include <cassert>

namespace echelon::runtime {

EchelonFlowAgent::EchelonFlowAgent(netsim::Simulator* sim,
                                   Coordinator* coordinator, JobId job,
                                   std::string framework_name)
    : sim_(sim),
      coordinator_(coordinator),
      job_(job),
      framework_name_(std::move(framework_name)) {
  assert(sim != nullptr && coordinator != nullptr);
}

EchelonFlowId EchelonFlowAgent::register_echelonflow(
    EchelonFlowRequest request) {
  request.job = job_;
  const EchelonFlowId id = coordinator_->accept_request(request);
  registrations_.emplace(id.value(), Registration{std::move(request)});
  return id;
}

FlowId EchelonFlowAgent::post_flow(EchelonFlowId ef, int index,
                                   netsim::Simulator::FlowCallback on_done) {
  const auto it = registrations_.find(ef.value());
  assert(it != registrations_.end() && "post_flow before registration");
  const EchelonFlowRequest& req = it->second.request;
  assert(index >= 0 && index < static_cast<int>(req.flows.size()));
  const FlowInfo& info = req.flows[static_cast<std::size_t>(index)];

  netsim::FlowSpec spec{
      .src = info.src,
      .dst = info.dst,
      .size = info.size,
      .job = job_,
      .group = ef,
      .index_in_group = index,
      .label = req.label + "#" + std::to_string(index),
      .signature =
          req.signature_base == 0
              ? 0
              : req.signature_base + static_cast<std::uint64_t>(index)};
  ++posted_;
  return sim_->submit_flow(std::move(spec), std::move(on_done));
}

}  // namespace echelon::runtime
