// Priority-queue enforcement of scheduling decisions (paper §5).
//
// Real deployments cannot set one exact rate per flow; the common practice
// the paper cites is to map flows onto a small number of priority queues
// and let the fabric do weighted sharing among them. This decorator runs
// the inner scheduler to obtain ideal rates, then *discards* the exact caps
// and replaces them with one of `num_queues` exponentially spaced weights
// (queue q gets weight 2^-q), chosen from the flow's ideal share of its
// bottleneck link.
//
// Comparing a policy with and without this decorator measures the
// enforcement gap between idealized rate control and practical K-queue
// weighted sharing (bench EXT-C).

#pragma once

#include "netsim/scheduler.hpp"
#include "netsim/simulator.hpp"

namespace echelon::runtime {

struct PriorityQueueConfig {
  int num_queues = 8;
};

class PriorityQueueEnforcer final : public netsim::NetworkScheduler {
 public:
  PriorityQueueEnforcer(netsim::NetworkScheduler* inner,
                        PriorityQueueConfig config = {})
      : inner_(inner), config_(config) {
    // Enforcement destroys the inner policy's outputs every pass (caps are
    // cleared, weights rewritten), so the "clean components keep their
    // previous decisions" induction behind kIncremental never holds below
    // this decorator. Pin the inner policy to the reference mode.
    inner_->set_sched_mode(netsim::SchedMode::kFullRecompute);
  }

  void control(netsim::Simulator& sim,
               std::span<netsim::Flow*> active) override;

  // Topology changes must reach the inner policy (the coordinator drops its
  // signature-keyed decision cache on this hook); the enforcer itself is
  // stateless w.r.t. the fabric.
  void on_topology_change(netsim::Simulator& sim) override {
    inner_->on_topology_change(sim);
  }
  // Membership and dirty-mark hooks pass through so inner caches (the
  // coordinator's group cache, dirty sets) stay coherent even while the
  // inner mode is pinned to full recomputation.
  void on_flow_arrival(netsim::Simulator& sim,
                       const netsim::Flow& flow) override {
    inner_->on_flow_arrival(sim, flow);
  }
  void on_flow_departure(netsim::Simulator& sim,
                         const netsim::Flow& flow) override {
    inner_->on_flow_departure(sim, flow);
  }
  void mark_job_dirty(JobId job) override { inner_->mark_job_dirty(job); }
  void mark_all_jobs_dirty() override { inner_->mark_all_jobs_dirty(); }

  [[nodiscard]] std::string name() const override {
    return inner_->name() + "+pq" + std::to_string(config_.num_queues);
  }

 private:
  // Mode requests are absorbed: the enforcer always runs its (full) rewrite
  // and the inner policy stays pinned to kFullRecompute (see constructor).
  void on_sched_mode(netsim::SchedMode) override {}

  netsim::NetworkScheduler* inner_;
  PriorityQueueConfig config_;
};

}  // namespace echelon::runtime
