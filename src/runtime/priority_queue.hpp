// Priority-queue enforcement of scheduling decisions (paper §5).
//
// Real deployments cannot set one exact rate per flow; the common practice
// the paper cites is to map flows onto a small number of priority queues
// and let the fabric do weighted sharing among them. This decorator runs
// the inner scheduler to obtain ideal rates, then *discards* the exact caps
// and replaces them with one of `num_queues` exponentially spaced weights
// (queue q gets weight 2^-q), chosen from the flow's ideal share of its
// bottleneck link.
//
// Comparing a policy with and without this decorator measures the
// enforcement gap between idealized rate control and practical K-queue
// weighted sharing (bench EXT-C).

#pragma once

#include "netsim/scheduler.hpp"
#include "netsim/simulator.hpp"

namespace echelon::runtime {

struct PriorityQueueConfig {
  int num_queues = 8;
};

class PriorityQueueEnforcer final : public netsim::NetworkScheduler {
 public:
  PriorityQueueEnforcer(netsim::NetworkScheduler* inner,
                        PriorityQueueConfig config = {})
      : inner_(inner), config_(config) {}

  void control(netsim::Simulator& sim,
               std::span<netsim::Flow*> active) override;

  // Topology changes must reach the inner policy (the coordinator drops its
  // signature-keyed decision cache on this hook); the enforcer itself is
  // stateless w.r.t. the fabric.
  void on_topology_change(netsim::Simulator& sim) override {
    inner_->on_topology_change(sim);
  }

  [[nodiscard]] std::string name() const override {
    return inner_->name() + "+pq" + std::to_string(config_.num_queues);
  }

 private:
  netsim::NetworkScheduler* inner_;
  PriorityQueueConfig config_;
};

}  // namespace echelon::runtime
