#include "runtime/priority_queue.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace echelon::runtime {

void PriorityQueueEnforcer::control(netsim::Simulator& sim,
                                    std::span<netsim::Flow*> active) {
  inner_->control(sim, active);

  const topology::Topology& topo = sim.topology();
  for (netsim::Flow* f : active) {
    if (f->path.empty()) continue;  // loopback: nothing to enforce
    double bottleneck = std::numeric_limits<double>::infinity();
    for (LinkId lid : f->path) {
      bottleneck = std::min(bottleneck, topo.link(lid).capacity);
    }
    const double ideal = f->rate_cap.value_or(bottleneck);
    const double share = bottleneck > 0.0 ? ideal / bottleneck : 0.0;

    // Queue 0 = shares near 1, each further queue halves the weight; shares
    // below 2^-(K-1) all land in the last (lowest-priority) queue.
    const double floor_share = std::ldexp(1.0, -(config_.num_queues - 1));
    const double clamped = std::clamp(share, floor_share, 1.0);
    const int queue = std::min(config_.num_queues - 1,
                               static_cast<int>(-std::floor(std::log2(clamped))));

    f->set_weight(std::ldexp(1.0, -queue));
    f->clear_rate_cap();  // enforcement is weighted sharing only
  }
}

}  // namespace echelon::runtime
