// Message-passing backend facade (paper Fig. 7: NCCL / Gloo / MPI).
//
// Frameworks issue collective calls; the backend decomposes each call into
// fabric flows. Different backends favour different algorithms -- NCCL's
// ring, MPI's direct exchange -- and the choice changes the flow structure
// the scheduler sees, so the facade keeps the decomposition strategy
// explicit and swappable.

#pragma once

#include <string>
#include <vector>

#include "collective/group.hpp"
#include "collective/hd.hpp"
#include "collective/p2p.hpp"
#include "collective/ps.hpp"
#include "collective/ring.hpp"

namespace echelon::runtime {

enum class BackendKind {
  kNccl,  // ring collectives (reduce-scatter + all-gather)
  kGloo,  // recursive halving-doubling (falls back to ring off powers of 2)
  kMpi,   // direct all-to-all exchange
};

[[nodiscard]] constexpr const char* to_string(BackendKind k) noexcept {
  switch (k) {
    case BackendKind::kNccl: return "nccl";
    case BackendKind::kGloo: return "gloo";
    case BackendKind::kMpi: return "mpi";
  }
  return "?";
}

class Backend {
 public:
  explicit Backend(BackendKind kind) : kind_(kind) {}

  [[nodiscard]] BackendKind kind() const noexcept { return kind_; }

  // Number of flows an all-reduce over m ranks expands into -- needed by
  // callers to size the EchelonFlow arrangement before decomposing.
  [[nodiscard]] int all_reduce_cardinality(int ranks) const noexcept {
    switch (kind_) {
      case BackendKind::kMpi:
        // Scatter round (shards to owners) + gather round (reduced shards
        // back): 2 * m(m-1) flows.
        return 2 * ranks * (ranks - 1);
      case BackendKind::kGloo:
        if (collective::is_power_of_two(static_cast<std::size_t>(ranks))) {
          int log2 = 0;
          while ((1 << log2) < ranks) ++log2;
          return 2 * ranks * log2;  // hd rs + ag: m flows per round
        }
        [[fallthrough]];
      case BackendKind::kNccl:
        return 2 * ranks * (ranks - 1);  // ring rs + ag
    }
    return 0;
  }

  [[nodiscard]] bool uses_hd(std::size_t ranks) const noexcept {
    return kind_ == BackendKind::kGloo && collective::is_power_of_two(ranks);
  }

  [[nodiscard]] collective::CollectiveHandles all_reduce(
      netsim::Workflow& wf, const std::vector<NodeId>& hosts,
      Bytes data_bytes, collective::FlowTag& tag,
      const std::string& label) const {
    if (kind_ == BackendKind::kMpi) {
      // Direct exchange: a scatter round (every rank ships each shard to
      // its owner, bytes/m per pair), local reduction, then a gather round
      // returning the reduced shards -- 2 * m(m-1) flows, same per-rank
      // volume as the ring (2(m-1)/m * data).
      const Bytes per_pair =
          data_bytes / static_cast<double>(hosts.size());
      auto scatter =
          collective::all_to_all(wf, hosts, per_pair, tag, label + ".sc");
      auto gather =
          collective::all_to_all(wf, hosts, per_pair, tag, label + ".ga");
      wf.add_dep(scatter.done, gather.start);
      collective::CollectiveHandles h;
      h.start = scatter.start;
      h.done = gather.done;
      h.flow_nodes = std::move(scatter.flow_nodes);
      h.flow_nodes.insert(h.flow_nodes.end(), gather.flow_nodes.begin(),
                          gather.flow_nodes.end());
      return h;
    }
    if (uses_hd(hosts.size())) {
      return collective::hd_all_reduce(wf, hosts, data_bytes, tag, label);
    }
    return collective::ring_all_reduce(wf, hosts, data_bytes, tag, label);
  }

  [[nodiscard]] collective::CollectiveHandles all_gather(
      netsim::Workflow& wf, const std::vector<NodeId>& hosts,
      Bytes data_bytes, collective::FlowTag& tag,
      const std::string& label) const {
    if (kind_ == BackendKind::kMpi) {
      return collective::all_to_all(
          wf, hosts, data_bytes / static_cast<double>(hosts.size()), tag,
          label);
    }
    if (uses_hd(hosts.size())) {
      return collective::hd_all_gather(wf, hosts, data_bytes, tag, label);
    }
    return collective::ring_all_gather(wf, hosts, data_bytes, tag, label);
  }

  [[nodiscard]] collective::CollectiveHandles reduce_scatter(
      netsim::Workflow& wf, const std::vector<NodeId>& hosts,
      Bytes data_bytes, collective::FlowTag& tag,
      const std::string& label) const {
    if (kind_ == BackendKind::kMpi) {
      return collective::all_to_all(
          wf, hosts, data_bytes / static_cast<double>(hosts.size()), tag,
          label);
    }
    if (uses_hd(hosts.size())) {
      return collective::hd_reduce_scatter(wf, hosts, data_bytes, tag, label);
    }
    return collective::ring_reduce_scatter(wf, hosts, data_bytes, tag, label);
  }

  [[nodiscard]] collective::CollectiveHandles send(
      netsim::Workflow& wf, NodeId src, NodeId dst, Bytes bytes,
      collective::FlowTag& tag, const std::string& label) const {
    return collective::p2p(wf, src, dst, bytes, tag, label);
  }

 private:
  BackendKind kind_;
};

}  // namespace echelon::runtime
