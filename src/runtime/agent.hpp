// The EchelonFlow Agent (paper §5, Fig. 7).
//
// A shim between a DDLT framework and its message-passing backend. The
// framework registers EchelonFlows (arrangement + per-flow info) through the
// agent; when a computation produces data, the framework posts the flow and
// the agent issues the communication call to the backend -- here, submitting
// the flow to the simulated fabric, tagged so the coordinator can schedule
// it. One agent serves one framework instance (one job); all agents share
// the coordinator.

#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "netsim/simulator.hpp"
#include "runtime/api.hpp"
#include "runtime/coordinator.hpp"

namespace echelon::runtime {

class EchelonFlowAgent {
 public:
  EchelonFlowAgent(netsim::Simulator* sim, Coordinator* coordinator,
                   JobId job, std::string framework_name = "framework");

  [[nodiscard]] JobId job() const noexcept { return job_; }
  [[nodiscard]] const std::string& framework_name() const noexcept {
    return framework_name_;
  }

  // Forwards the request to the coordinator and remembers the per-flow info
  // so post_flow can build the actual transfers.
  EchelonFlowId register_echelonflow(EchelonFlowRequest request);

  // The framework calls this when member `index` of `ef` has data ready.
  // Returns the fabric-level flow id. `on_done` fires at completion (the
  // agent's callback to the framework).
  FlowId post_flow(EchelonFlowId ef, int index,
                   netsim::Simulator::FlowCallback on_done = {});

  [[nodiscard]] std::uint64_t posted_flows() const noexcept {
    return posted_;
  }

 private:
  struct Registration {
    EchelonFlowRequest request;
  };

  netsim::Simulator* sim_;
  Coordinator* coordinator_;
  JobId job_;
  std::string framework_name_;
  std::unordered_map<std::uint64_t, Registration> registrations_;
  std::uint64_t posted_ = 0;
};

}  // namespace echelon::runtime
