// The EchelonFlow Coordinator (paper §5, Fig. 7).
//
// Receives EchelonFlow requests from agents, runs the scheduling heuristic
// (EchelonFlow-MADD by default), and emits bandwidth allocations. Three
// operating points, matching the paper's scalability discussion:
//
//   * per-event: re-run the heuristic on every flow arrival/departure (the
//     textbook Coflow-scheduler behaviour; most reactive, most expensive).
//   * interval: re-run at fixed scheduling intervals; flows arriving
//     mid-interval wait for the next decision.
//   * interval + iterative reuse: additionally cache decisions keyed by
//     each flow's *structural signature* (stable across training
//     iterations); a mid-interval arrival whose signature was seen in a
//     previous iteration is granted its cached rate immediately. This is
//     the paper's "maintain the scheduling decision throughout the DDLT
//     lifetime leveraging the iterative nature of DDLT jobs".

#pragma once

#include <cstdint>
#include <unordered_map>

#include "echelon/echelon_madd.hpp"
#include "echelon/registry.hpp"
#include "netsim/scheduler.hpp"
#include "netsim/simulator.hpp"
#include "obs/trace.hpp"
#include "runtime/api.hpp"

namespace echelon::runtime {

enum class SchedulingMode { kPerEvent, kInterval };

struct CoordinatorConfig {
  SchedulingMode mode = SchedulingMode::kPerEvent;
  Duration interval = 10e-3;       // scheduling interval in kInterval mode
  bool iterative_reuse = false;    // signature-keyed decision cache
  ef::EchelonMaddConfig policy;    // inner heuristic configuration
};

class Coordinator final : public netsim::NetworkScheduler {
 public:
  // Attaches the registry to `sim` for runtime binding; the caller still
  // selects the coordinator as the network scheduler via set_scheduler.
  Coordinator(netsim::Simulator* sim, CoordinatorConfig config = {});

  [[nodiscard]] ef::Registry& registry() noexcept { return registry_; }
  [[nodiscard]] const ef::Registry& registry() const noexcept {
    return registry_;
  }

  // Framework request path (used by agents): declares an EchelonFlow and
  // returns its id for flow tagging.
  EchelonFlowId accept_request(const EchelonFlowRequest& request);

  // Observability (DESIGN.md §9): with a sink attached, every heuristic
  // re-run emits kHeuristicRun (id = run index, ctx = active flows) and
  // every signature-cache grant emits kReuseHit (id = flow, ctx = signature,
  // value = granted rate). Read-only; nullptr (the default) detaches and
  // costs one branch per site.
  void set_trace(obs::TraceSink* sink) noexcept { trace_ = sink; }

  // --- NetworkScheduler -------------------------------------------------------
  void control(netsim::Simulator& sim,
               std::span<netsim::Flow*> active) override;
  // Forward membership hooks to the inner heuristic so its persistent group
  // cache stays incremental (it would otherwise fall back to full rebuilds).
  void on_flow_arrival(netsim::Simulator& sim,
                       const netsim::Flow& flow) override {
    ++dirty_events_;
    policy_.on_flow_arrival(sim, flow);
  }
  void on_flow_departure(netsim::Simulator& sim,
                         const netsim::Flow& flow) override {
    ++dirty_events_;
    policy_.on_flow_departure(sim, flow);
  }
  // Dirty marks (DESIGN.md §12) feed the inner heuristic's job-scoped
  // recomputation and double as interval-mode churn detection: a mark with
  // no accompanying arrival/departure (park/resume, reroute, external
  // setter churn) still invalidates the standing allocation, so the next
  // interval boundary re-runs instead of skipping. Mode-independent: the
  // simulator forwards marks under both SchedModes.
  void mark_job_dirty(JobId job) override {
    ++dirty_events_;
    policy_.mark_job_dirty(job);
  }
  void mark_all_jobs_dirty() override {
    ++dirty_events_;
    policy_.mark_all_jobs_dirty();
  }
  // Runtime topology changes (fault injection) invalidate the iterative
  // decision cache: a cached rate was granted against path capacities that
  // no longer hold, and replaying it after a link loss could over-subscribe
  // the degraded fabric (the allocator would clamp, but the *decision* is
  // stale). Drop the cache and force a heuristic re-run.
  void on_topology_change(netsim::Simulator& sim) override {
    decision_cache_.clear();
    ++dirty_events_;
    policy_.on_topology_change(sim);
  }
  [[nodiscard]] std::string name() const override;

  // --- control-plane statistics ------------------------------------------------
  [[nodiscard]] std::uint64_t heuristic_runs() const noexcept {
    return heuristic_runs_;
  }
  [[nodiscard]] std::uint64_t reuse_hits() const noexcept {
    return reuse_hits_;
  }
  [[nodiscard]] std::uint64_t deferred_flows() const noexcept {
    return deferred_flows_;
  }

 private:
  void arm_timer(netsim::Simulator& sim);

  // The coordinator is a decorator: the interval/reuse machinery is
  // mode-agnostic, so the mode only needs to reach the inner heuristic.
  void on_sched_mode(netsim::SchedMode mode) override {
    policy_.set_sched_mode(mode);
  }

  netsim::Simulator* sim_;
  CoordinatorConfig config_;
  ef::Registry registry_;
  ef::EchelonMaddScheduler policy_;
  obs::TraceSink* trace_ = nullptr;  // null => zero-cost emission branches

  SimTime next_recompute_ = 0.0;
  bool timer_pending_ = false;
  std::uint64_t dirty_events_ = 0;  // arrivals/departures since last run
  std::uint64_t heuristic_runs_ = 0;
  std::uint64_t reuse_hits_ = 0;
  std::uint64_t deferred_flows_ = 0;

  // signature -> last granted rate.
  std::unordered_map<std::uint64_t, BytesPerSec> decision_cache_;
};

}  // namespace echelon::runtime
