#include "runtime/coordinator.hpp"

#include <cassert>

namespace echelon::runtime {

Coordinator::Coordinator(netsim::Simulator* sim, CoordinatorConfig config)
    : sim_(sim), config_(config), policy_(&registry_, config.policy) {
  assert(sim != nullptr);
  registry_.attach(*sim);
}

EchelonFlowId Coordinator::accept_request(const EchelonFlowRequest& request) {
  assert(static_cast<int>(request.flows.size()) ==
             request.arrangement.size() &&
         "per-flow info must match the arrangement cardinality");
  return registry_.create(request.job, request.arrangement, request.label,
                          request.weight);
}

void Coordinator::arm_timer(netsim::Simulator& sim) {
  if (timer_pending_) return;
  timer_pending_ = true;
  sim.schedule_at(next_recompute_, [this](netsim::Simulator& s) {
    timer_pending_ = false;
    // Force a scheduler pass; `control` below sees now >= next_recompute_
    // and re-runs the heuristic.
    s.invalidate_allocation();
  });
}

void Coordinator::control(netsim::Simulator& sim,
                          std::span<netsim::Flow*> active) {
  // An interval boundary with no arrivals or departures since the previous
  // heuristic run leaves the standing allocation valid -- skip the recompute
  // (this is what makes interval scheduling cheaper than per-event even at
  // low event rates).
  const bool due = time_le(next_recompute_, sim.now());
  if (config_.mode == SchedulingMode::kInterval && due &&
      dirty_events_ == 0) {
    if (!active.empty()) {
      next_recompute_ = sim.now() + config_.interval;
      arm_timer(sim);
    }
    return;
  }

  if (config_.mode == SchedulingMode::kPerEvent || due) {
    policy_.control(sim, active);
    if (trace_ != nullptr) {
      trace_->record(obs::TraceEvent{.kind = obs::TraceKind::kHeuristicRun,
                                     .t = sim.now(),
                                     .id = heuristic_runs_,
                                     .ctx = active.size()});
    }
    ++heuristic_runs_;
    dirty_events_ = 0;
    if (config_.mode == SchedulingMode::kInterval) {
      next_recompute_ = sim.now() + config_.interval;
      if (config_.iterative_reuse) {
        for (const netsim::Flow* f : active) {
          if (f->spec.signature != 0 && f->rate_cap) {
            decision_cache_[f->spec.signature] = *f->rate_cap;
          }
        }
      }
      if (!active.empty()) arm_timer(sim);
    }
    return;
  }

  // Mid-interval: reuse standing allocations. Flows that already carry a
  // rate cap keep it; new arrivals are granted a cached decision when their
  // structural signature was scheduled in an earlier iteration, and are
  // otherwise parked until the next scheduling interval.
  for (netsim::Flow* f : active) {
    if (f->rate_cap) continue;
    if (config_.iterative_reuse && f->spec.signature != 0) {
      if (const auto it = decision_cache_.find(f->spec.signature);
          it != decision_cache_.end()) {
        f->set_rate_cap(it->second);
        ++reuse_hits_;
        if (trace_ != nullptr) {
          trace_->record(
              obs::TraceEvent{.kind = obs::TraceKind::kReuseHit,
                              .t = sim.now(),
                              .id = f->id.value(),
                              .job = f->spec.job.value(),
                              .ctx = f->spec.signature,
                              .value = it->second});
        }
        continue;
      }
    }
    f->set_rate_cap(0.0);
    ++deferred_flows_;
  }
  if (!active.empty()) arm_timer(sim);
}

std::string Coordinator::name() const {
  std::string n = "coordinator[" + policy_.name();
  if (config_.mode == SchedulingMode::kInterval) {
    n += ",interval";
    if (config_.iterative_reuse) n += "+reuse";
  }
  n += "]";
  return n;
}

}  // namespace echelon::runtime
