#include "faultsim/fault_plan.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "common/rng.hpp"

namespace echelon::faultsim {

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kLinkUp: return "link-up";
    case FaultKind::kBrownout: return "brownout";
    case FaultKind::kBrownoutEnd: return "brownout-end";
    case FaultKind::kStraggler: return "straggler";
    case FaultKind::kStragglerEnd: return "straggler-end";
    case FaultKind::kNodeDown: return "node-down";
    case FaultKind::kNodeUp: return "node-up";
    case FaultKind::kJobAbort: return "job-abort";
    case FaultKind::kJobRestart: return "job-restart";
  }
  return "?";
}

std::optional<FaultKind> kind_from_string(std::string_view name) noexcept {
  for (const FaultKind k :
       {FaultKind::kLinkDown, FaultKind::kLinkUp, FaultKind::kBrownout,
        FaultKind::kBrownoutEnd, FaultKind::kStraggler,
        FaultKind::kStragglerEnd, FaultKind::kNodeDown, FaultKind::kNodeUp,
        FaultKind::kJobAbort, FaultKind::kJobRestart}) {
    if (name == to_string(k)) return k;
  }
  return std::nullopt;
}

FaultPlan from_chaos(const ChaosProfile& profile,
                     const topology::Topology& topo, std::size_t worker_count,
                     std::size_t job_count) {
  FaultPlan plan;
  Rng rng(profile.seed);
  const SimTime horizon = profile.horizon;
  const auto hosts = topo.hosts();

  // Window helper: start in [0, 0.8 * horizon), length in the outage range.
  const auto window = [&rng, horizon](const ChaosProfile& p) {
    const SimTime start = rng.uniform(0.0, 0.8 * horizon);
    const Duration len =
        horizon * rng.uniform(p.min_outage, p.max_outage);
    return std::pair<SimTime, SimTime>{start, start + len};
  };

  // Categories are generated in a fixed order so the seed uniquely
  // determines the plan regardless of which counts are zero.
  for (int i = 0; i < profile.link_faults && topo.link_count() > 0; ++i) {
    const auto [t0, t1] = window(profile);
    const std::uint64_t link = rng.uniform_int(topo.link_count());
    plan.events.push_back({t0, FaultKind::kLinkDown, link, 1.0});
    plan.events.push_back({t1, FaultKind::kLinkUp, link, 1.0});
  }
  for (int i = 0; i < profile.brownouts && topo.link_count() > 0; ++i) {
    const auto [t0, t1] = window(profile);
    const std::uint64_t link = rng.uniform_int(topo.link_count());
    const double factor = rng.uniform(profile.min_factor, profile.max_factor);
    plan.events.push_back({t0, FaultKind::kBrownout, link, factor});
    plan.events.push_back({t1, FaultKind::kBrownoutEnd, link, 1.0});
  }
  for (int i = 0; i < profile.stragglers && worker_count > 0; ++i) {
    const auto [t0, t1] = window(profile);
    const std::uint64_t worker = rng.uniform_int(worker_count);
    const double scale =
        rng.uniform(profile.min_slowdown, profile.max_slowdown);
    plan.events.push_back({t0, FaultKind::kStraggler, worker, scale});
    plan.events.push_back({t1, FaultKind::kStragglerEnd, worker, 1.0});
  }
  for (int i = 0; i < profile.node_faults && !hosts.empty(); ++i) {
    const auto [t0, t1] = window(profile);
    const std::uint64_t node =
        hosts[rng.uniform_int(hosts.size())].value();
    plan.events.push_back({t0, FaultKind::kNodeDown, node, 1.0});
    plan.events.push_back({t1, FaultKind::kNodeUp, node, 1.0});
  }
  for (int i = 0; i < profile.job_aborts && job_count > 0; ++i) {
    const auto [t0, t1] = window(profile);
    const std::uint64_t job = rng.uniform_int(job_count);
    plan.events.push_back({t0, FaultKind::kJobAbort, job, 1.0});
    plan.events.push_back({t1, FaultKind::kJobRestart, job, 1.0});
  }

  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return plan;
}

std::string serialize(const FaultPlan& plan) {
  std::ostringstream out;
  out.precision(17);  // doubles round-trip exactly
  out << "retries " << plan.max_retries << "\n";
  out << "backoff " << plan.retry_backoff << "\n";
  for (const FaultEvent& e : plan.events) {
    out << e.at << ' ' << to_string(e.kind) << ' ';
    if (e.target == kAllLinks) {
      out << '*';
    } else {
      out << e.target;
    }
    if (e.kind == FaultKind::kBrownout || e.kind == FaultKind::kStraggler) {
      out << ' ' << e.factor;
    }
    out << '\n';
  }
  return out.str();
}

FaultPlan parse_fault_plan(std::istream& in) {
  FaultPlan plan;
  std::string line;
  int lineno = 0;
  const auto fail = [&lineno](const std::string& why) {
    throw std::invalid_argument("fault plan line " + std::to_string(lineno) +
                                ": " + why);
  };
  while (std::getline(in, line)) {
    ++lineno;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream tok(line);
    std::string first;
    if (!(tok >> first)) continue;  // blank / comment-only line
    if (first == "retries") {
      if (!(tok >> plan.max_retries) || plan.max_retries < 0) {
        fail("expected non-negative integer after 'retries'");
      }
      continue;
    }
    if (first == "backoff") {
      if (!(tok >> plan.retry_backoff) || plan.retry_backoff <= 0.0) {
        fail("expected positive duration after 'backoff'");
      }
      continue;
    }
    FaultEvent ev;
    try {
      ev.at = std::stod(first);
    } catch (const std::exception&) {
      fail("expected event time, 'retries' or 'backoff', got '" + first + "'");
    }
    std::string kind_name;
    if (!(tok >> kind_name)) fail("missing fault kind");
    const auto kind = kind_from_string(kind_name);
    if (!kind) fail("unknown fault kind '" + kind_name + "'");
    ev.kind = *kind;
    std::string target;
    if (!(tok >> target)) fail("missing fault target");
    if (target == "*") {
      if (ev.kind != FaultKind::kBrownout &&
          ev.kind != FaultKind::kBrownoutEnd) {
        fail("'*' target is only valid for brownout events");
      }
      ev.target = kAllLinks;
    } else {
      try {
        ev.target = std::stoull(target);
      } catch (const std::exception&) {
        fail("bad fault target '" + target + "'");
      }
    }
    if (ev.kind == FaultKind::kBrownout || ev.kind == FaultKind::kStraggler) {
      if (!(tok >> ev.factor) || ev.factor <= 0.0) {
        fail("expected positive factor");
      }
    }
    plan.events.push_back(ev);
  }
  return plan;
}

FaultPlan parse_fault_plan(const std::string& text) {
  std::istringstream in(text);
  return parse_fault_plan(in);
}

}  // namespace echelon::faultsim
