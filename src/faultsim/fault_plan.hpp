// Deterministic fault-injection plans (DESIGN.md §8).
//
// A FaultPlan is a timed script of infrastructure faults -- link outages,
// partial-capacity brownouts, compute stragglers, whole-node failures and
// job abort/restart pairs -- replayed against a running Simulator by the
// FaultInjector. Plans are plain data: they can be written by hand, parsed
// from a text file (--fault-plan), or generated from a seeded ChaosProfile,
// and the same plan always produces the same simulation, byte for byte.
//
// The paper motivates EchelonFlow with training jobs sharing "a highly
// dynamic network" (§1) and recalibration after members fall behind
// (Fig. 6); this module is how we make that dynamism a first-class,
// reproducible test input rather than two hand-scripted scenarios.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.hpp"
#include "topology/graph.hpp"

namespace echelon::faultsim {

enum class FaultKind {
  kLinkDown,      // target = link id
  kLinkUp,        // target = link id
  kBrownout,      // target = link id or kAllLinks; factor = capacity multiplier
  kBrownoutEnd,   // target = link id or kAllLinks; restores exact nominal
  kStraggler,     // target = worker id; factor = compute-duration multiplier
  kStragglerEnd,  // target = worker id
  kNodeDown,      // target = node id; all incident links go down
  kNodeUp,        // target = node id; links taken down by kNodeDown return
  kJobAbort,      // target = job id; active flows park, new flows park at birth
  kJobRestart,    // target = job id; parked flows resume
};

[[nodiscard]] const char* to_string(FaultKind kind) noexcept;
[[nodiscard]] std::optional<FaultKind> kind_from_string(
    std::string_view name) noexcept;

// Sentinel target for kBrownout/kBrownoutEnd meaning "every link" -- the
// uniform-degradation case used by the monotonicity property tests.
inline constexpr std::uint64_t kAllLinks = ~0ULL;

struct FaultEvent {
  SimTime at = 0.0;
  FaultKind kind = FaultKind::kLinkDown;
  std::uint64_t target = 0;  // link / node / worker / job id, per kind
  double factor = 1.0;       // brownout capacity multiplier / straggler scale
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  // Recovery policy for flows parked by an outage: a parked flow retries
  // routing every `retry_backoff` seconds; after `max_retries` *failed*
  // attempts it is abandoned (completes unsuccessfully, releasing dependent
  // work, with the undelivered bytes recorded as loss).
  int max_retries = 3;
  Duration retry_backoff = 50e-3;

  [[nodiscard]] bool empty() const noexcept { return events.empty(); }
};

// Random-plan generator knobs. A profile plus the deployment shape uniquely
// determines a plan: same seed, same plan, same simulation.
struct ChaosProfile {
  std::uint64_t seed = 1;
  SimTime horizon = 1.0;  // faults start in [0, 0.8 * horizon)

  int link_faults = 0;  // link down/up windows
  int brownouts = 0;    // single-link capacity-degradation windows
  int stragglers = 0;   // compute-slowdown windows
  int node_faults = 0;  // whole-node outage windows
  int job_aborts = 0;   // abort + late-restart pairs

  double min_outage = 0.05;    // window length, fraction of horizon
  double max_outage = 0.25;
  double min_factor = 0.2;     // brownout capacity multiplier range
  double max_factor = 0.8;
  double min_slowdown = 1.5;   // straggler duration multiplier range
  double max_slowdown = 4.0;
};

// Generates a scripted plan from a profile. Targets are drawn from the
// topology's links and hosts, `worker_count` workers and `job_count` jobs
// (categories whose pool is empty are skipped). Every fault is a
// well-formed window: the recovery event is always emitted, so plans never
// leave the fabric degraded forever. Events are sorted by time (stable).
[[nodiscard]] FaultPlan from_chaos(const ChaosProfile& profile,
                                   const topology::Topology& topo,
                                   std::size_t worker_count,
                                   std::size_t job_count);

// Text round-trip, one event per line:
//   retries <n>
//   backoff <seconds>
//   <time> <kind> <target|*> [factor]
// '#' starts a comment. parse throws std::invalid_argument on bad input.
[[nodiscard]] std::string serialize(const FaultPlan& plan);
[[nodiscard]] FaultPlan parse_fault_plan(std::istream& in);
[[nodiscard]] FaultPlan parse_fault_plan(const std::string& text);

}  // namespace echelon::faultsim
