// FaultInjector: replays a FaultPlan against a live Simulator (DESIGN.md §8).
//
// The injector owns graceful degradation. When a fault severs an active
// flow's path it re-routes the flow over the surviving fabric when an
// alternate path exists, else *parks* it (Simulator::park_flow) and retries
// with bounded backoff; link recovery triggers opportunistic resumes, and a
// flow whose retry budget is exhausted is abandoned (completes
// unsuccessfully, releasing dependent work). Per-flow interactions are
// recorded as FaultOutcome rows and aggregated into a FaultSummary.
//
// Determinism contract: every injector decision is a function of simulation
// state that is itself bit-identical across {kLazy, kEagerScan} x
// {kIncremental, kFullRecompute} -- the topology, flow specs/paths,
// now(), and *ascending-FlowId* sweeps (never the internal active-set
// order, which is mode-dependent mid-instant). An empty plan schedules
// nothing and perturbs nothing: runs with a zero-fault injector are
// byte-identical to runs without one.

#pragma once

#include <cstdint>
#include <vector>

#include "faultsim/fault_plan.hpp"
#include "netsim/simulator.hpp"
#include "obs/trace.hpp"
#include "topology/graph.hpp"

namespace echelon::faultsim {

// Per-flow fault interaction record (cluster trace column source).
struct FaultOutcome {
  FlowId flow;
  JobId job;
  int reroutes = 0;       // paths replaced in place
  int parks = 0;          // times removed from the network
  int retries = 0;        // failed resume attempts
  bool abandoned = false; // retry budget exhausted; flow completed unsuccessfully
  Bytes bytes_lost = 0.0; // undelivered bytes at abandonment
  Duration downtime = 0.0;  // total time spent parked
};

// Run-level aggregate.
struct FaultSummary {
  std::uint64_t events_fired = 0;
  std::uint64_t reroutes = 0;
  std::uint64_t parks = 0;
  std::uint64_t retries = 0;
  std::uint64_t resumes = 0;
  std::uint64_t abandoned = 0;
  Duration downtime = 0.0;
};

class FaultInjector {
 public:
  // `sim`, `topo` and `plan` must outlive the injector; `topo` must be the
  // topology `sim` was built on (the injector mutates link state through it
  // and tells the simulator via notify_topology_change).
  FaultInjector(netsim::Simulator* sim, topology::Topology* topo,
                const FaultPlan* plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Installs the unroutable-flow handler + arrival listener and schedules
  // every plan event. Call once, before Simulator::run.
  void arm();

  // Observability (DESIGN.md §9): with a sink attached, every applied plan
  // event emits kFaultFired (id = target, ctx = FaultKind, value = factor)
  // and every failed resume attempt emits kFlowRetry (ctx = attempt #).
  // Read-only; nullptr (the default) detaches and costs one branch per
  // site. The Simulator's own park/resume/abandon events cover the rest of
  // the outage lifecycle.
  void set_trace(obs::TraceSink* sink) noexcept { trace_ = sink; }

  [[nodiscard]] const FaultSummary& summary() const noexcept {
    return summary_;
  }
  // Flows that interacted with a fault, ascending FlowId.
  [[nodiscard]] std::vector<FaultOutcome> outcomes() const;

 private:
  enum class ParkReason { kOutage, kAbort };

  struct ParkRecord {
    SimTime parked_at = 0.0;
    ParkReason reason = ParkReason::kOutage;
    int attempts = 0;  // failed resume attempts *this* episode
  };

  void apply(const FaultEvent& ev);
  // Ascending-id sweep over active flows whose path crosses a down link:
  // reroute where possible, park where not.
  void sweep_broken_paths();
  // Ascending-id resume attempt for every outage-parked flow (after a
  // recovery event). Abort-parked flows wait for their job's restart.
  void try_resume_all();
  void park(FlowId id, ParkReason reason);
  void schedule_retry(FlowId id);
  void retry(FlowId id);
  void resume(FlowId id, topology::Path path);
  void abandon(FlowId id);
  [[nodiscard]] bool is_parked(FlowId id) const;
  FaultOutcome& outcome(FlowId id);

  netsim::Simulator* sim_;
  topology::Topology* topo_;
  const FaultPlan* plan_;
  obs::TraceSink* trace_ = nullptr;  // null => zero-cost emission branches

  FaultSummary summary_;
  // Dense per-flow outcome table, indexed by FlowId value; `touched` rows
  // are exported by outcomes(). Grown on demand.
  struct Row {
    bool touched = false;
    FaultOutcome data;
  };
  std::vector<Row> rows_;
  // Parked flows, kept sorted ascending (deterministic sweeps).
  std::vector<FlowId> parked_;
  std::vector<ParkRecord> park_records_;  // parallel to rows_ indexing

  // kNodeDown remembers exactly which incident links it took down so
  // kNodeUp restores that set and nothing else (a link independently downed
  // by kLinkDown stays down).
  std::vector<std::vector<LinkId>> node_down_links_;  // indexed by node id
  // Brownout nominal capacities, indexed by link id; NaN = not stored.
  std::vector<double> nominal_caps_;
  // Jobs currently aborted: new flows of these jobs are parked immediately.
  std::vector<std::uint64_t> aborted_jobs_;  // sorted ascending
};

}  // namespace echelon::faultsim
