#include "faultsim/injector.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/log.hpp"

namespace echelon::faultsim {

namespace {
constexpr double kNoNominal = std::numeric_limits<double>::quiet_NaN();
}  // namespace

FaultInjector::FaultInjector(netsim::Simulator* sim, topology::Topology* topo,
                             const FaultPlan* plan)
    : sim_(sim), topo_(topo), plan_(plan) {
  assert(sim != nullptr && topo != nullptr && plan != nullptr);
  assert(&sim->topology() == topo &&
         "injector topology must be the simulator's topology");
  node_down_links_.resize(topo_->node_count());
  nominal_caps_.assign(topo_->link_count(), kNoNominal);
}

void FaultInjector::arm() {
  // Graceful-degradation hooks are installed unconditionally so behaviour
  // is uniform across plans; with a zero-fault plan they are pure no-ops
  // and the run is byte-identical to one without an injector.
  sim_->set_unroutable_handler([this](netsim::Simulator&, FlowId id) {
    // Parked at birth: no route existed at submission. Under an aborted job
    // the restart resumes it; otherwise the outage retry policy owns it.
    const bool aborted = [&] {
      const JobId job = sim_->flow(id).spec.job;
      return job.valid() &&
             std::binary_search(aborted_jobs_.begin(), aborted_jobs_.end(),
                                job.value());
    }();
    park(id, aborted ? ParkReason::kAbort : ParkReason::kOutage);
  });
  sim_->add_flow_arrival_listener(
      [this](netsim::Simulator& sim, const netsim::Flow& flow) {
        const JobId job = flow.spec.job;
        if (!job.valid() ||
            !std::binary_search(aborted_jobs_.begin(), aborted_jobs_.end(),
                                job.value())) {
          return;
        }
        // The flow is not yet in the active set (arrival listeners fire
        // first), so defer the park to the same instant's next event batch.
        const FlowId id = flow.id;
        sim.schedule_at(sim.now(), [this, id](netsim::Simulator& s) {
          const netsim::Flow& f = s.flow(id);
          if (f.state == netsim::FlowState::kActive &&
              f.active_index != netsim::Flow::kNotActive) {
            park(id, ParkReason::kAbort);
          }
        });
      });
  for (const FaultEvent& ev : plan_->events) {
    sim_->schedule_at(ev.at, [this, ev](netsim::Simulator&) { apply(ev); });
  }
}

FaultOutcome& FaultInjector::outcome(FlowId id) {
  if (rows_.size() <= id.value()) {
    rows_.resize(id.value() + 1);
    park_records_.resize(id.value() + 1);
  }
  Row& row = rows_[id.value()];
  if (!row.touched) {
    row.touched = true;
    row.data.flow = id;
    row.data.job = sim_->flow(id).spec.job;
  }
  return row.data;
}

std::vector<FaultOutcome> FaultInjector::outcomes() const {
  std::vector<FaultOutcome> out;
  for (const Row& row : rows_) {
    if (row.touched) out.push_back(row.data);
  }
  return out;
}

bool FaultInjector::is_parked(FlowId id) const {
  return std::binary_search(parked_.begin(), parked_.end(), id);
}

void FaultInjector::apply(const FaultEvent& ev) {
  ++summary_.events_fired;
  if (trace_ != nullptr) {
    trace_->record(
        obs::TraceEvent{.kind = obs::TraceKind::kFaultFired,
                        .t = sim_->now(),
                        .id = ev.target,
                        .job = obs::TraceEvent::kNone,
                        .ctx = static_cast<std::uint64_t>(ev.kind),
                        .value = ev.factor});
  }
  ECHELON_LOG(kDebug) << "fault " << to_string(ev.kind) << " target "
                      << ev.target << " at " << sim_->now();
  switch (ev.kind) {
    case FaultKind::kLinkDown: {
      const LinkId link{ev.target};
      if (!topo_->link_up(link)) break;  // already down (overlapping faults)
      topo_->set_link_up(link, false);
      sim_->notify_topology_change();
      sweep_broken_paths();
      break;
    }
    case FaultKind::kLinkUp: {
      const LinkId link{ev.target};
      if (topo_->link_up(link)) break;
      topo_->set_link_up(link, true);
      sim_->notify_topology_change();
      try_resume_all();
      break;
    }
    case FaultKind::kNodeDown: {
      const NodeId node{ev.target};
      auto& taken = node_down_links_.at(node.value());
      if (!taken.empty()) break;  // node already down
      for (const LinkId link : topo_->incident_links(node)) {
        if (!topo_->link_up(link)) continue;
        topo_->set_link_up(link, false);
        taken.push_back(link);
      }
      if (taken.empty()) break;  // every incident link was already down
      sim_->notify_topology_change();
      sweep_broken_paths();
      break;
    }
    case FaultKind::kNodeUp: {
      const NodeId node{ev.target};
      auto& taken = node_down_links_.at(node.value());
      if (taken.empty()) break;
      for (const LinkId link : taken) topo_->set_link_up(link, true);
      taken.clear();
      sim_->notify_topology_change();
      try_resume_all();
      break;
    }
    case FaultKind::kBrownout: {
      const auto dim = [this, &ev](LinkId link) {
        double& nominal = nominal_caps_.at(link.value());
        if (std::isnan(nominal)) nominal = topo_->link(link).capacity;
        topo_->set_link_capacity(link, nominal * ev.factor);
      };
      if (ev.target == kAllLinks) {
        for (std::size_t l = 0; l < topo_->link_count(); ++l) dim(LinkId{l});
      } else {
        dim(LinkId{ev.target});
      }
      sim_->notify_topology_change();
      break;
    }
    case FaultKind::kBrownoutEnd: {
      const auto restore = [this](LinkId link) {
        double& nominal = nominal_caps_.at(link.value());
        if (std::isnan(nominal)) return;  // no matching brownout
        topo_->set_link_capacity(link, nominal);  // exact nominal value
        nominal = kNoNominal;
      };
      if (ev.target == kAllLinks) {
        for (std::size_t l = 0; l < topo_->link_count(); ++l) {
          restore(LinkId{l});
        }
      } else {
        restore(LinkId{ev.target});
      }
      sim_->notify_topology_change();
      break;
    }
    case FaultKind::kStraggler:
      sim_->set_compute_scale(WorkerId{ev.target}, ev.factor);
      break;
    case FaultKind::kStragglerEnd:
      sim_->set_compute_scale(WorkerId{ev.target}, 1.0);
      break;
    case FaultKind::kJobAbort: {
      const auto pos = std::lower_bound(aborted_jobs_.begin(),
                                        aborted_jobs_.end(), ev.target);
      if (pos != aborted_jobs_.end() && *pos == ev.target) break;
      aborted_jobs_.insert(pos, ev.target);
      // Park the job's active flows, ascending id (mode-independent order).
      std::vector<FlowId> ids = sim_->active_flows();
      std::sort(ids.begin(), ids.end());
      for (const FlowId id : ids) {
        const netsim::Flow& f = sim_->flow(id);
        if (f.spec.job.valid() && f.spec.job.value() == ev.target) {
          park(id, ParkReason::kAbort);
        }
      }
      break;
    }
    case FaultKind::kJobRestart: {
      const auto pos = std::lower_bound(aborted_jobs_.begin(),
                                        aborted_jobs_.end(), ev.target);
      if (pos == aborted_jobs_.end() || *pos != ev.target) break;
      aborted_jobs_.erase(pos);
      // Resume the job's abort-parked flows, ascending id. A flow whose
      // endpoints are still disconnected (overlapping outage) moves to the
      // outage retry policy instead of waiting forever.
      const std::vector<FlowId> parked = parked_;  // resume mutates parked_
      for (const FlowId id : parked) {
        if (!is_parked(id)) continue;
        if (park_records_.at(id.value()).reason != ParkReason::kAbort) {
          continue;
        }
        const netsim::Flow& f = sim_->flow(id);
        if (!f.spec.job.valid() || f.spec.job.value() != ev.target) continue;
        auto path = sim_->route_flow(id);
        if (path.has_value()) {
          resume(id, std::move(*path));
        } else {
          park_records_.at(id.value()).reason = ParkReason::kOutage;
          schedule_retry(id);
        }
      }
      break;
    }
  }
}

void FaultInjector::sweep_broken_paths() {
  // Copy + sort: decisions must follow ascending FlowId, never the
  // simulator's internal active-set order (mode-dependent mid-instant).
  std::vector<FlowId> ids = sim_->active_flows();
  std::sort(ids.begin(), ids.end());
  for (const FlowId id : ids) {
    const netsim::Flow& f = sim_->flow(id);
    bool broken = false;
    for (const LinkId link : f.path) {
      if (!topo_->link_up(link)) {
        broken = true;
        break;
      }
    }
    if (!broken) continue;
    auto path = sim_->route_flow(id);
    if (path.has_value()) {
      sim_->reroute_flow(id, std::move(*path));
      ++outcome(id).reroutes;
      ++summary_.reroutes;
    } else {
      park(id, ParkReason::kOutage);
    }
  }
}

void FaultInjector::try_resume_all() {
  const std::vector<FlowId> parked = parked_;  // resume mutates parked_
  for (const FlowId id : parked) {
    if (!is_parked(id)) continue;
    if (park_records_.at(id.value()).reason == ParkReason::kAbort) continue;
    auto path = sim_->route_flow(id);
    if (!path.has_value()) continue;  // stay parked; retry timer still runs
    resume(id, std::move(*path));
  }
}

void FaultInjector::park(FlowId id, ParkReason reason) {
  sim_->park_flow(id);  // no-op if the flow was parked at birth
  FaultOutcome& out = outcome(id);
  ++out.parks;
  ++summary_.parks;
  ParkRecord& rec = park_records_.at(id.value());
  rec.parked_at = sim_->now();
  rec.reason = reason;
  rec.attempts = 0;  // retry budget is per park episode
  const auto pos = std::lower_bound(parked_.begin(), parked_.end(), id);
  assert(pos == parked_.end() || *pos != id);
  parked_.insert(pos, id);
  if (reason == ParkReason::kOutage) schedule_retry(id);
}

void FaultInjector::schedule_retry(FlowId id) {
  sim_->schedule_after(plan_->retry_backoff,
                       [this, id](netsim::Simulator&) { retry(id); });
}

void FaultInjector::retry(FlowId id) {
  if (!is_parked(id)) return;  // resumed (or abandoned) in the meantime
  ParkRecord& rec = park_records_.at(id.value());
  if (rec.reason == ParkReason::kAbort) return;  // waits for job restart
  const netsim::Flow& f = sim_->flow(id);
  auto path = sim_->route_flow(id);
  if (path.has_value()) {
    resume(id, std::move(*path));
    return;
  }
  ++rec.attempts;
  ++outcome(id).retries;
  ++summary_.retries;
  if (trace_ != nullptr) {
    trace_->record(obs::TraceEvent{
        .kind = obs::TraceKind::kFlowRetry,
        .t = sim_->now(),
        .id = id.value(),
        .job = f.spec.job.value(),
        .ctx = static_cast<std::uint64_t>(rec.attempts),
        .value = f.remaining});
  }
  if (rec.attempts >= plan_->max_retries) {
    abandon(id);
  } else {
    schedule_retry(id);
  }
}

void FaultInjector::resume(FlowId id, topology::Path path) {
  FaultOutcome& out = outcome(id);
  out.downtime += sim_->now() - park_records_.at(id.value()).parked_at;
  summary_.downtime += sim_->now() - park_records_.at(id.value()).parked_at;
  const auto pos = std::lower_bound(parked_.begin(), parked_.end(), id);
  assert(pos != parked_.end() && *pos == id);
  parked_.erase(pos);
  ++summary_.resumes;
  sim_->resume_flow(id, std::move(path));
}

void FaultInjector::abandon(FlowId id) {
  FaultOutcome& out = outcome(id);
  out.downtime += sim_->now() - park_records_.at(id.value()).parked_at;
  summary_.downtime += sim_->now() - park_records_.at(id.value()).parked_at;
  out.abandoned = true;
  out.bytes_lost = sim_->flow(id).remaining;
  ++summary_.abandoned;
  const auto pos = std::lower_bound(parked_.begin(), parked_.end(), id);
  assert(pos != parked_.end() && *pos == id);
  parked_.erase(pos);
  sim_->abandon_flow(id);
}

}  // namespace echelon::faultsim
