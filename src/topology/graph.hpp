// Topology graph with deterministic shortest-path (ECMP-hashed) routing.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "topology/link.hpp"
#include "topology/node.hpp"

namespace echelon::topology {

// A routed path is the ordered list of directed links a flow traverses.
using Path = std::vector<LinkId>;

class Topology {
 public:
  Topology() = default;

  NodeId add_host(std::string name);
  NodeId add_switch(std::string name, int tier = 0);

  // Adds a single directed link. Returns its id.
  LinkId add_link(NodeId src, NodeId dst, BytesPerSec capacity);

  // Changes a link's capacity at runtime -- models failures, degradation
  // (flaky optics, congestion from external tenants) and recovery. Callers
  // driving a live simulation must invalidate its allocation afterwards so
  // rates are recomputed against the new capacity. Bumps the capacity
  // epoch, which the incremental RateAllocator folds into its component
  // fingerprints: any capacity change conservatively invalidates every
  // cached converged-rate record.
  void set_link_capacity(LinkId id, BytesPerSec capacity) {
    links_.at(id.value()).capacity = capacity;
    ++capacity_epoch_;
  }

  // Monotonic counter incremented by every runtime capacity change. Cached
  // allocation state derived from link capacities is valid only while this
  // value is unchanged.
  [[nodiscard]] std::uint64_t capacity_epoch() const noexcept {
    return capacity_epoch_;
  }

  // Administratively takes a link down (or back up). A down link carries no
  // traffic and is skipped by route(); capacity is preserved so recovery
  // restores the exact nominal value. Bumps the capacity epoch for the same
  // reason set_link_capacity does: cached allocation state must not survive
  // a reachability change.
  void set_link_up(LinkId id, bool up) {
    std::uint8_t& state = link_up_.at(id.value());
    if (static_cast<bool>(state) == up) return;
    state = up ? 1 : 0;
    ++capacity_epoch_;
  }

  [[nodiscard]] bool link_up(LinkId id) const {
    return link_up_.at(id.value()) != 0;
  }

  // All directed links touching node `n` (both directions) -- used by fault
  // injection to take a whole node down. O(L) scan; not on any hot path.
  [[nodiscard]] std::vector<LinkId> incident_links(NodeId n) const;

  // Adds a full-duplex cable: two directed links. Returns {src->dst, dst->src}.
  std::pair<LinkId, LinkId> add_duplex(NodeId a, NodeId b,
                                       BytesPerSec capacity);

  [[nodiscard]] const Node& node(NodeId id) const { return nodes_.at(id.value()); }
  [[nodiscard]] const Link& link(LinkId id) const { return links_.at(id.value()); }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const noexcept { return links_.size(); }
  [[nodiscard]] const std::vector<Node>& nodes() const noexcept { return nodes_; }
  [[nodiscard]] const std::vector<Link>& links() const noexcept { return links_; }

  [[nodiscard]] std::vector<NodeId> hosts() const;

  // Shortest path (hop count) from src to dst over *up* links only. Among
  // equal-cost paths the choice is deterministic in `ecmp_seed`, so a given
  // flow always takes the same path while different flows spread across
  // parallel links. With every link up the result is identical to the
  // fault-free routing decision. Returns std::nullopt when dst is
  // unreachable (possibly because of down links).
  [[nodiscard]] std::optional<Path> route(NodeId src, NodeId dst,
                                          std::uint64_t ecmp_seed = 0) const;

  // Out-edges of a node (link ids).
  [[nodiscard]] const std::vector<LinkId>& out_links(NodeId n) const {
    return adjacency_.at(n.value());
  }

  // Structural copy with every link capacity replaced. Node and link ids are
  // preserved, so workflows built against this topology run unchanged on the
  // clone -- used for "infinitely fast network" profiling runs.
  [[nodiscard]] Topology clone_with_capacity(BytesPerSec capacity) const {
    Topology t = *this;
    for (Link& l : t.links_) l.capacity = capacity;
    return t;
  }

 private:
  NodeId add_node(NodeKind kind, std::string name, int tier);

  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> adjacency_;  // indexed by node id
  std::vector<std::uint8_t> link_up_;           // indexed by link id; 1 = up
  std::uint64_t capacity_epoch_ = 0;
};

}  // namespace echelon::topology
