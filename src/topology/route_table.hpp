// Route interning: canonical Path -> RouteId table with an epoch-gated
// (src, dst, ecmp_seed) route cache (DESIGN.md §11).
//
// Collectives emit thousands of concurrent flows over a handful of distinct
// routed paths, and Topology::route() -- a BFS plus a forward walk -- used
// to run from scratch on every flow submission and every fault-driven
// reroute. The table splits that cost in two:
//
//   * An *append-only* intern table of distinct paths. intern() returns the
//     existing RouteId when the exact link sequence was seen before, so two
//     flows routed the same way share one id -- the key the RateAllocator's
//     equivalence-class fill groups on. A RouteId, once issued, resolves to
//     the same path forever (path() is epoch-independent); ids are dense
//     indices suitable for counting-sort buckets.
//   * A (src, dst, ecmp_seed) -> RouteId cache in front of the BFS,
//     validated against Topology::capacity_epoch(). Every runtime
//     link-capacity or up/down change bumps the epoch (that is the existing
//     invalidation contract of the incremental allocator), so a cached
//     route is served only while the topology that produced it is
//     unchanged -- fault-driven reroutes recompute exactly when they must.
//     Unreachable verdicts are cached too: a flap-heavy retry loop probing
//     a severed pair costs one BFS per epoch, not one per retry.
//
// Route computation happens at submission / fault time, outside the
// simulator's zero-allocation steady-state region, so the cache may use
// ordinary node-based containers.

#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "topology/graph.hpp"

namespace echelon::topology {

class RouteTable {
 public:
  explicit RouteTable(const Topology* topo) : topo_(topo) {}

  // Cached Topology::route(): returns the interned id of the (deterministic)
  // path from src to dst under `ecmp_seed`, or nullopt when dst is
  // unreachable right now. Serves from the cache while the capacity epoch
  // is unchanged; recomputes (and re-interns) after any topology mutation.
  [[nodiscard]] std::optional<RouteId> route(NodeId src, NodeId dst,
                                             std::uint64_t ecmp_seed);

  // Interns an explicit path (e.g. a caller-chosen reroute), returning the
  // existing id when the exact link sequence is already in the table.
  [[nodiscard]] RouteId intern(const Path& path);

  // The canonical link sequence of an interned route. Valid forever --
  // interning is append-only and ids are never recycled.
  [[nodiscard]] const Path& path(RouteId id) const {
    return paths_.at(id.value());
  }

  // Distinct paths interned so far (== the smallest unissued RouteId).
  [[nodiscard]] std::size_t size() const noexcept { return paths_.size(); }

  // Telemetry pinned by the route-computation regression test: `hits`
  // counts route() calls served from the epoch-valid cache, `computations`
  // counts actual Topology::route() BFS runs (hits + computations ==
  // lookups), `unreachable` the subset of computations with no path.
  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t computations = 0;
    std::uint64_t unreachable = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct CacheKey {
    std::uint64_t src;
    std::uint64_t dst;
    std::uint64_t seed;
    friend bool operator==(const CacheKey&, const CacheKey&) = default;
  };
  struct CacheKeyHash {
    [[nodiscard]] std::size_t operator()(const CacheKey& k) const noexcept;
  };
  // kUnreachableRoute in `route_index` caches a negative verdict.
  struct CacheEntry {
    std::uint64_t epoch = 0;
    std::uint32_t route_index = 0;
  };
  static constexpr std::uint32_t kUnreachableRoute = 0xffffffffu;

  [[nodiscard]] static std::uint64_t hash_path(const Path& path) noexcept;

  const Topology* topo_;
  Stats stats_;
  std::vector<Path> paths_;  // append-only; indexed by RouteId
  // Exact-match intern index: path hash -> ids of all paths with that hash.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_hash_;
  std::unordered_map<CacheKey, CacheEntry, CacheKeyHash> cache_;
};

}  // namespace echelon::topology
