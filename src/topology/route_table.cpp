#include "topology/route_table.hpp"

namespace echelon::topology {

namespace {

// SplitMix64 finalizer (same mix as common/scratch.hpp's KeySlotMap): full
// avalanche so sequential link ids spread across the hash space.
[[nodiscard]] std::uint64_t mix(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

std::size_t RouteTable::CacheKeyHash::operator()(
    const CacheKey& k) const noexcept {
  std::uint64_t h = mix(k.src);
  h = mix(h ^ k.dst);
  h = mix(h ^ k.seed);
  return static_cast<std::size_t>(h);
}

std::uint64_t RouteTable::hash_path(const Path& path) noexcept {
  // Order-sensitive chained mix; the empty path (src == dst) hashes to a
  // fixed non-zero constant and interns like any other path.
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const LinkId lid : path) h = mix(h ^ lid.value());
  return h;
}

RouteId RouteTable::intern(const Path& path) {
  const std::uint64_t h = hash_path(path);
  std::vector<std::uint32_t>& chain = by_hash_[h];
  // Hash collisions are resolved by exact link-sequence comparison -- two
  // distinct paths never share a RouteId, which the allocator's class
  // partition relies on (same id => same links => same component).
  for (const std::uint32_t idx : chain) {
    if (paths_[idx] == path) return RouteId{idx};
  }
  const auto idx = static_cast<std::uint32_t>(paths_.size());
  paths_.push_back(path);
  chain.push_back(idx);
  return RouteId{idx};
}

std::optional<RouteId> RouteTable::route(NodeId src, NodeId dst,
                                         std::uint64_t ecmp_seed) {
  ++stats_.lookups;
  const std::uint64_t epoch = topo_->capacity_epoch();
  const CacheKey key{src.value(), dst.value(), ecmp_seed};
  auto [it, inserted] = cache_.try_emplace(key);
  if (!inserted && it->second.epoch == epoch) {
    ++stats_.hits;
    if (it->second.route_index == kUnreachableRoute) return std::nullopt;
    return RouteId{it->second.route_index};
  }
  ++stats_.computations;
  auto path = topo_->route(src, dst, ecmp_seed);
  if (!path.has_value()) {
    ++stats_.unreachable;
    it->second = CacheEntry{epoch, kUnreachableRoute};
    return std::nullopt;
  }
  const RouteId id = intern(*path);
  it->second = CacheEntry{epoch, static_cast<std::uint32_t>(id.value())};
  return id;
}

}  // namespace echelon::topology
