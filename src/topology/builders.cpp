#include "topology/builders.hpp"

#include <cassert>
#include <string>

namespace echelon::topology {

BuiltFabric make_big_switch(int num_hosts, BytesPerSec port_capacity) {
  assert(num_hosts > 0);
  BuiltFabric out;
  const NodeId sw = out.topo.add_switch("xbar", 2);
  out.hosts.reserve(static_cast<std::size_t>(num_hosts));
  for (int h = 0; h < num_hosts; ++h) {
    const NodeId host = out.topo.add_host("h" + std::to_string(h));
    out.topo.add_duplex(host, sw, port_capacity);
    out.hosts.push_back(host);
  }
  return out;
}

BuiltFabric make_leaf_spine(const LeafSpineConfig& cfg) {
  assert(cfg.leaves > 0 && cfg.spines > 0 && cfg.hosts_per_leaf > 0);
  BuiltFabric out;
  std::vector<NodeId> leaves;
  std::vector<NodeId> spines;
  leaves.reserve(static_cast<std::size_t>(cfg.leaves));
  spines.reserve(static_cast<std::size_t>(cfg.spines));
  for (int s = 0; s < cfg.spines; ++s) {
    spines.push_back(out.topo.add_switch("spine" + std::to_string(s), 1));
  }
  for (int l = 0; l < cfg.leaves; ++l) {
    const NodeId leaf = out.topo.add_switch("leaf" + std::to_string(l), 0);
    leaves.push_back(leaf);
    for (const NodeId spine : spines) {
      out.topo.add_duplex(leaf, spine, cfg.uplink);
    }
    for (int h = 0; h < cfg.hosts_per_leaf; ++h) {
      const NodeId host = out.topo.add_host(
          "h" + std::to_string(l) + "_" + std::to_string(h));
      out.topo.add_duplex(host, leaf, cfg.host_link);
      out.hosts.push_back(host);
    }
  }
  return out;
}

BuiltFabric make_fat_tree(int k, BytesPerSec link_capacity) {
  assert(k >= 2 && k % 2 == 0);
  BuiltFabric out;
  const int half = k / 2;

  // Core layer: (k/2)^2 switches, arranged as a half x half grid.
  std::vector<NodeId> core;
  core.reserve(static_cast<std::size_t>(half * half));
  for (int i = 0; i < half * half; ++i) {
    core.push_back(out.topo.add_switch("core" + std::to_string(i), 2));
  }

  for (int pod = 0; pod < k; ++pod) {
    std::vector<NodeId> aggs;
    std::vector<NodeId> edges;
    for (int a = 0; a < half; ++a) {
      aggs.push_back(out.topo.add_switch(
          "agg" + std::to_string(pod) + "_" + std::to_string(a), 1));
    }
    for (int e = 0; e < half; ++e) {
      edges.push_back(out.topo.add_switch(
          "edge" + std::to_string(pod) + "_" + std::to_string(e), 0));
    }
    // Agg a in each pod connects to core switches [a*half, (a+1)*half).
    for (int a = 0; a < half; ++a) {
      for (int c = 0; c < half; ++c) {
        out.topo.add_duplex(aggs[static_cast<std::size_t>(a)],
                            core[static_cast<std::size_t>(a * half + c)],
                            link_capacity);
      }
    }
    // Full bipartite edge <-> agg within the pod.
    for (const NodeId agg : aggs) {
      for (const NodeId edge : edges) {
        out.topo.add_duplex(edge, agg, link_capacity);
      }
    }
    // k/2 hosts per edge switch.
    for (int e = 0; e < half; ++e) {
      for (int h = 0; h < half; ++h) {
        const NodeId host =
            out.topo.add_host("h" + std::to_string(pod) + "_" +
                              std::to_string(e) + "_" + std::to_string(h));
        out.topo.add_duplex(host, edges[static_cast<std::size_t>(e)],
                            link_capacity);
        out.hosts.push_back(host);
      }
    }
  }
  return out;
}

}  // namespace echelon::topology
