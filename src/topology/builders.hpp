// Canned topology builders.
//
// * Big switch: the non-blocking fabric abstraction used throughout the
//   Coflow literature (Varys, Sincronia): each host has an ingress and an
//   egress port of capacity B attached to one giant crossbar; flows contend
//   only at ports. This is the default fabric for EchelonFlow experiments.
// * Leaf-spine: two-tier Clos with a configurable oversubscription ratio,
//   for topology-sensitive experiments where core contention matters.
// * Fat-tree: canonical k-ary three-tier fat-tree.

#pragma once

#include <vector>

#include "common/units.hpp"
#include "topology/graph.hpp"

namespace echelon::topology {

struct BuiltFabric {
  Topology topo;
  std::vector<NodeId> hosts;
};

// `num_hosts` hosts, each connected to a single crossbar switch by a duplex
// link of `port_capacity`. The switch itself never bottlenecks.
[[nodiscard]] BuiltFabric make_big_switch(int num_hosts,
                                          BytesPerSec port_capacity);

struct LeafSpineConfig {
  int leaves = 4;
  int spines = 2;
  int hosts_per_leaf = 8;
  BytesPerSec host_link = 0.0;   // host <-> leaf
  BytesPerSec uplink = 0.0;      // leaf <-> spine (per spine)
};

[[nodiscard]] BuiltFabric make_leaf_spine(const LeafSpineConfig& cfg);

// k-ary fat-tree: k pods, (k/2)^2 core switches, k^3/4 hosts. `k` must be
// even and >= 2. Every link has capacity `link_capacity` (full bisection).
[[nodiscard]] BuiltFabric make_fat_tree(int k, BytesPerSec link_capacity);

}  // namespace echelon::topology
