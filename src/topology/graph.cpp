#include "topology/graph.hpp"

#include <algorithm>
#include <deque>
#include <limits>

namespace echelon::topology {

NodeId Topology::add_node(NodeKind kind, std::string name, int tier) {
  const NodeId id{nodes_.size()};
  nodes_.push_back(Node{id, kind, std::move(name), tier});
  adjacency_.emplace_back();
  return id;
}

NodeId Topology::add_host(std::string name) {
  return add_node(NodeKind::kHost, std::move(name), 0);
}

NodeId Topology::add_switch(std::string name, int tier) {
  return add_node(NodeKind::kSwitch, std::move(name), tier);
}

LinkId Topology::add_link(NodeId src, NodeId dst, BytesPerSec capacity) {
  const LinkId id{links_.size()};
  links_.push_back(Link{id, src, dst, capacity});
  adjacency_.at(src.value()).push_back(id);
  link_up_.push_back(1);
  return id;
}

std::vector<LinkId> Topology::incident_links(NodeId n) const {
  std::vector<LinkId> out;
  for (const auto& l : links_) {
    if (l.src == n || l.dst == n) out.push_back(l.id);
  }
  return out;
}

std::pair<LinkId, LinkId> Topology::add_duplex(NodeId a, NodeId b,
                                               BytesPerSec capacity) {
  return {add_link(a, b, capacity), add_link(b, a, capacity)};
}

std::vector<NodeId> Topology::hosts() const {
  std::vector<NodeId> out;
  for (const auto& n : nodes_) {
    if (is_host(n)) out.push_back(n.id);
  }
  return out;
}

namespace {
// Mixes the ECMP seed with a candidate link id to pick deterministically
// among equal-cost next hops.
std::uint64_t ecmp_mix(std::uint64_t seed, std::uint64_t v) noexcept {
  std::uint64_t x = seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}
}  // namespace

std::optional<Path> Topology::route(NodeId src, NodeId dst,
                                    std::uint64_t ecmp_seed) const {
  if (src == dst) return Path{};
  constexpr auto kUnreached = std::numeric_limits<std::uint32_t>::max();

  // BFS from dst over reversed edges to get hop distance to dst from every
  // node; then walk forward from src always decreasing the distance, picking
  // among ties by ECMP hash.
  std::vector<std::uint32_t> dist(nodes_.size(), kUnreached);
  std::vector<std::vector<LinkId>> in_links(nodes_.size());
  for (const auto& l : links_) {
    if (!link_up_[l.id.value()]) continue;  // down links carry no traffic
    in_links[l.dst.value()].push_back(l.id);
  }

  std::deque<NodeId> queue;
  dist[dst.value()] = 0;
  queue.push_back(dst);
  while (!queue.empty()) {
    const NodeId cur = queue.front();
    queue.pop_front();
    for (LinkId lid : in_links[cur.value()]) {
      const NodeId prev = links_[lid.value()].src;
      if (dist[prev.value()] == kUnreached) {
        dist[prev.value()] = dist[cur.value()] + 1;
        queue.push_back(prev);
      }
    }
  }
  if (dist[src.value()] == kUnreached) return std::nullopt;

  Path path;
  NodeId cur = src;
  while (cur != dst) {
    const std::uint32_t want = dist[cur.value()] - 1;
    LinkId best = LinkId::invalid();
    std::uint64_t best_hash = 0;
    for (LinkId lid : adjacency_[cur.value()]) {
      if (!link_up_[lid.value()]) continue;
      const Link& l = links_[lid.value()];
      if (dist[l.dst.value()] != want) continue;
      const std::uint64_t h = ecmp_mix(ecmp_seed, lid.value());
      if (!best.valid() || h < best_hash) {
        best = lid;
        best_hash = h;
      }
    }
    // dist[src] was reachable, so a next hop always exists.
    path.push_back(best);
    cur = links_[best.value()].dst;
  }
  return path;
}

}  // namespace echelon::topology
