// Directed capacity-bounded link.
//
// All links are directed: a full-duplex cable is modeled as two Links. This
// matches the big-switch abstraction of the Coflow literature, where a host's
// NIC has independent ingress and egress capacity.

#pragma once

#include "common/ids.hpp"
#include "common/units.hpp"

namespace echelon::topology {

struct Link {
  LinkId id;
  NodeId src;
  NodeId dst;
  BytesPerSec capacity = 0.0;
};

}  // namespace echelon::topology
