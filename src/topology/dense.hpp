// LinkId-indexed dense scratch bound to a Topology.
//
// LinkIds are dense vector indices into Topology::links(), so per-pass
// per-link state (residual capacity, prefix loads, water-filling link loads)
// belongs in an epoch-stamped flat array rather than a hash map. LinkScratch
// wraps EpochScratch with the strongly-typed LinkId interface and sizes
// itself from the topology at the start of every pass -- growing lazily if
// links were added, never shrinking, never allocating in steady state.

#pragma once

#include "common/ids.hpp"
#include "common/scratch.hpp"
#include "topology/graph.hpp"

namespace echelon::topology {

template <typename T>
class LinkScratch {
 public:
  // Arms the scratch for a new pass over `topo` (O(1) once the arena has
  // reached the topology's link count).
  void begin_pass(const Topology& topo) {
    scratch_.ensure_size(topo.link_count());
    scratch_.begin_pass();
  }

  [[nodiscard]] bool active(LinkId id) const {
    return scratch_.active(id.value());
  }

  T& touch(LinkId id) { return scratch_.touch(id.value()); }
  T& touch(LinkId id, const T& init) { return scratch_.touch(id.value(), init); }

  [[nodiscard]] T& at(LinkId id) { return scratch_.at(id.value()); }
  [[nodiscard]] const T& at(LinkId id) const { return scratch_.at(id.value()); }

  [[nodiscard]] const T* find(LinkId id) const {
    return scratch_.find(id.value());
  }

  // Link indices touched this pass, in first-touch order. Iterate this for
  // max/min folds over sparse per-link accumulations (the folds themselves
  // are order-independent).
  [[nodiscard]] const std::vector<std::uint32_t>& touched() const noexcept {
    return scratch_.touched();
  }

 private:
  EpochScratch<T> scratch_;
};

}  // namespace echelon::topology
