// Network node model: hosts (GPU servers) and switches.

#pragma once

#include <string>

#include "common/ids.hpp"

namespace echelon::topology {

enum class NodeKind { kHost, kSwitch };

struct Node {
  NodeId id;
  NodeKind kind = NodeKind::kHost;
  std::string name;

  // For switches: tier in the topology (0 = edge/leaf, 1 = agg/spine,
  // 2 = core). Unused for hosts.
  int tier = 0;
};

[[nodiscard]] constexpr bool is_host(const Node& n) noexcept {
  return n.kind == NodeKind::kHost;
}

}  // namespace echelon::topology
