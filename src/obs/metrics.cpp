#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace echelon::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()) &&
         "histogram bucket bounds must be ascending");
  counts_.assign(bounds_.size() + 1, 0);  // +1: implicit +inf tail bucket
}

void Histogram::observe(double x) noexcept {
  // First bucket whose upper bound admits x; the tail bucket catches
  // everything beyond the last bound (and NaN, defensively).
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += x;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

namespace {

double bucket_quantile(const std::vector<double>& bounds,
                       const std::vector<std::uint64_t>& counts,
                       std::uint64_t count, double min_v, double max_v,
                       double q) noexcept {
  if (count == 0) return 0.0;
  if (q >= 1.0) return max_v;
  if (q <= 0.0) return min_v;
  const double target = q * static_cast<double>(count);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cum += static_cast<double>(counts[i]);
    if (cum >= target) {
      // Upper bound of the containing bucket; the +inf tail reports the
      // exact observed max instead of infinity.
      return i < bounds.size() ? bounds[i] : max_v;
    }
  }
  return max_v;
}

}  // namespace

double Histogram::quantile(double q) const noexcept {
  return bucket_quantile(bounds_, counts_, count_, min_, max_, q);
}

double MetricsSnapshot::Hist::quantile(double q) const noexcept {
  return bucket_quantile(bounds, counts, count, min, max, q);
}

std::vector<double> default_duration_bounds() {
  std::vector<double> b;
  b.reserve(28);
  for (double decade = 1e-6; decade < 5e2; decade *= 10.0) {
    b.push_back(decade);
    b.push_back(2.0 * decade);
    b.push_back(5.0 * decade);
  }
  b.push_back(1e3);
  return b;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return gauges_.try_emplace(std::string(name)).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  if (bounds.empty()) bounds = default_duration_bounds();
  return histograms_.emplace(std::string(name), Histogram(std::move(bounds)))
      .first->second;
}

Series& MetricsRegistry::series(std::string_view name) {
  auto [it, inserted] = series_.try_emplace(std::string(name));
  if (inserted && series_budget_ != 0) {
    it->second.set_point_budget(series_budget_);
  }
  return it->second;
}

void MetricsRegistry::set_series_budget(std::size_t budget) {
  series_budget_ = budget;
  for (auto& [name, ser] : series_) ser.set_point_budget(budget);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c.value());
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g.value());
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::Hist out;
    out.name = name;
    out.bounds = h.bounds();
    out.counts = h.counts();
    out.count = h.count();
    out.sum = h.sum();
    out.min = h.count() == 0 ? 0.0 : h.min();
    out.max = h.count() == 0 ? 0.0 : h.max();
    s.histograms.push_back(std::move(out));
  }
  s.series.reserve(series_.size());
  for (const auto& [name, ser] : series_) {
    s.series.push_back(MetricsSnapshot::Ser{name, ser.points()});
  }
  return s;
}

const std::uint64_t* MetricsSnapshot::find_counter(
    std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return &v;
  }
  return nullptr;
}

const double* MetricsSnapshot::find_gauge(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return &v;
  }
  return nullptr;
}

const MetricsSnapshot::Hist* MetricsSnapshot::find_histogram(
    std::string_view name) const {
  for (const Hist& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

const MetricsSnapshot::Ser* MetricsSnapshot::find_series(
    std::string_view name) const {
  for (const Ser& s : series) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

MetricsSnapshot merge_snapshots(std::span<const MetricsSnapshot> snapshots) {
  // Accumulate through ordered maps so the merged snapshot is name-sorted
  // regardless of which points define which metrics.
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::pair<double, std::uint64_t>> gauges;  // sum, n
  std::map<std::string, MetricsSnapshot::Hist> hists;

  for (const MetricsSnapshot& s : snapshots) {
    for (const auto& [name, v] : s.counters) counters[name] += v;
    for (const auto& [name, v] : s.gauges) {
      auto& [sum, n] = gauges[name];
      sum += v;
      ++n;
    }
    for (const MetricsSnapshot::Hist& h : s.histograms) {
      const auto it = hists.find(h.name);
      if (it == hists.end()) {
        hists.emplace(h.name, h);
        continue;
      }
      MetricsSnapshot::Hist& acc = it->second;
      if (acc.bounds != h.bounds) {
        throw std::invalid_argument(
            "merge_snapshots: histogram '" + h.name +
            "' has mismatched bucket layouts across snapshots (" +
            std::to_string(acc.bounds.size()) + " vs " +
            std::to_string(h.bounds.size()) +
            " bounds) -- same-name histograms must be registered with "
            "identical bounds");
      }
      for (std::size_t i = 0; i < acc.counts.size(); ++i) {
        acc.counts[i] += h.counts[i];
      }
      if (acc.count == 0) {
        acc.min = h.min;
        acc.max = h.max;
      } else if (h.count != 0) {
        acc.min = std::min(acc.min, h.min);
        acc.max = std::max(acc.max, h.max);
      }
      acc.count += h.count;
      acc.sum += h.sum;
    }
  }

  MetricsSnapshot out;
  out.counters.assign(counters.begin(), counters.end());
  out.gauges.reserve(gauges.size());
  for (const auto& [name, acc] : gauges) {
    out.gauges.emplace_back(name,
                            acc.first / static_cast<double>(acc.second));
  }
  out.histograms.reserve(hists.size());
  for (auto& [name, h] : hists) out.histograms.push_back(std::move(h));
  return out;
}

}  // namespace echelon::obs
