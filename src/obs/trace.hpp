// Structured event tracing for the simulation observability layer
// (DESIGN.md §9).
//
// The data plane of observability is a stream of small fixed-size
// TraceEvents emitted by the Simulator, RateAllocator, FaultInjector and
// Coordinator at the instants something *happened*: a flow entered or left
// the network, a control pass ran, a fault fired. Consumers implement
// TraceSink; the stock implementation is TraceRecorder, a bounded ring
// buffer with drop-oldest overflow semantics and a label directory for
// human-readable export (Perfetto, CSV).
//
// No-perturbation contract: emitters only ever *read* simulation state and
// every emission site is guarded by a null-sink branch, so
//   * with no sink attached the simulation performs zero extra work and
//     zero allocations (the steady-state zero-allocation suites run with
//     observability compiled in and prove exactly this), and
//   * with a sink attached the simulation's decisions are bit-identical to
//     an untraced run (tests/test_obs.cpp pins this byte-for-byte).

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"

namespace echelon::obs {

// What happened. Field meaning per kind is documented on TraceEvent.
enum class TraceKind : std::uint8_t {
  // --- flow lifecycle (detail >= kFlow unless noted) ---
  kFlowSubmit,   // submitted (may be parked at birth)
  kFlowStart,    // entered the network (arrival listeners fired)
  kFlowFinish,   // completed (value = undelivered bytes; >0 => abandoned)
  kFlowPark,     // pulled from the network by a fault     (detail >= kCoarse)
  kFlowResume,   // re-entered after an outage             (detail >= kCoarse)
  kFlowReroute,  // path replaced in place                 (detail >= kCoarse)
  kFlowRetry,    // failed resume attempt (FaultInjector)  (detail >= kCoarse)
  kFlowAbandon,  // retry budget exhausted                 (detail >= kCoarse)
  // --- compute phases (detail >= kFlow) ---
  kTaskStart,
  kTaskFinish,
  // --- control plane (detail >= kCoarse) ---
  kControlPass,   // scheduler control() invocation (Simulator::reallocate)
  kAllocPass,     // RateAllocator pass (component cache behaviour)
  kFaultFired,    // FaultPlan event applied (FaultInjector)
  kHeuristicRun,  // Coordinator re-ran the scheduling heuristic
  kReuseHit,      // Coordinator granted a cached (signature-keyed) decision
  kCompFill,      // RateAllocator water-filled one component (detail >= kFlow)
  kClassFill,     // equivalence-class count of that fill     (detail >= kFlow)
  kSchedPass,     // dirty-job set forwarded to the scheduler (DESIGN.md §12)
};

inline constexpr std::size_t kTraceKindCount =
    static_cast<std::size_t>(TraceKind::kSchedPass) + 1;

[[nodiscard]] const char* to_string(TraceKind kind) noexcept;

// How much the emitters record. Ordered: each level is a superset of the
// previous one. kCoarse captures control-plane and fault activity (O(passes)
// events); kFlow additionally captures per-flow and per-task lifecycles
// (O(flows + tasks) events) -- the level Perfetto flow tracks need.
enum class TraceDetail : std::uint8_t { kOff = 0, kCoarse = 1, kFlow = 2 };

[[nodiscard]] const char* to_string(TraceDetail detail) noexcept;
// Parses "off" | "coarse" | "flow"; returns false on anything else.
[[nodiscard]] bool trace_detail_from_string(std::string_view name,
                                            TraceDetail* out) noexcept;

// One structured event. Fixed size, trivially copyable; the ring buffer
// stores these by value. Field semantics by kind:
//
//   kind          id            job        ctx              value
//   ------------  ------------  ---------  ---------------  ----------------
//   kFlowSubmit   flow id       job id     group id         size bytes
//   kFlowStart    flow id       job id     group id         size bytes
//   kFlowFinish   flow id       job id     group id         undelivered bytes
//   kFlowPark     flow id       job id     group id         remaining bytes
//   kFlowResume   flow id       job id     group id         remaining bytes
//   kFlowReroute  flow id       job id     group id         remaining bytes
//   kFlowRetry    flow id       job id     attempt #        remaining bytes
//   kFlowAbandon  flow id       job id     group id         bytes lost
//   kTaskStart    task id       job id     worker id        duration s
//   kTaskFinish   task id       job id     worker id        duration s
//   kControlPass  pass index    --         active flows     --
//   kAllocPass    pass index    --         components seen  components filled
//   kFaultFired   fault target  --         FaultKind        factor
//   kHeuristicRun run index     --         active flows     --
//   kReuseHit     flow id       job id     signature        granted rate B/s
//   kCompFill     pass index    --         component id     member count
//   kClassFill    pass index    --         component id     class count
//   kSchedPass    pass index    --         dirty job count  1 = all dirty
//                                          (active flows when all dirty)
//
// `job` and `ctx` use kNone when not applicable.
struct TraceEvent {
  static constexpr std::uint64_t kNone = ~0ull;

  TraceKind kind = TraceKind::kControlPass;
  SimTime t = 0.0;
  std::uint64_t id = 0;
  std::uint64_t job = kNone;
  std::uint64_t ctx = kNone;
  double value = 0.0;
};

// Consumer interface. `label` carries a human-readable name on *first-seen*
// events only (kFlowSubmit / kFlowStart / kTaskStart); it is empty
// everywhere else so hot emission sites never touch strings.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceEvent& ev, std::string_view label) = 0;
  void record(const TraceEvent& ev) { record(ev, {}); }
};

// Ring-buffered recorder: keeps the most recent `capacity` events
// (drop-oldest on overflow, with an exact dropped count), cumulative
// per-kind counts over *all* recorded events, and an interned label
// directory for flows and tasks. Not thread-safe by design -- one recorder
// per simulation, mirroring the simulator's own single-threadedness; sweep
// runners attach one recorder per point.
class TraceRecorder final : public TraceSink {
 public:
  explicit TraceRecorder(std::size_t capacity = 1u << 16);

  using TraceSink::record;
  void record(const TraceEvent& ev, std::string_view label) override;

  // Events currently retained, oldest first. Materializes a copy (export
  // paths only; never on the simulation hot path).
  [[nodiscard]] std::vector<TraceEvent> events() const;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  // Total events seen / overwritten since construction (recorded >= size).
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return recorded_ - size_;
  }
  // Cumulative count of events of `kind`, including dropped ones.
  [[nodiscard]] std::uint64_t count(TraceKind kind) const noexcept {
    return counts_[static_cast<std::size_t>(kind)];
  }

  // Label directory (empty string_view when the entity was never labeled).
  [[nodiscard]] std::string_view flow_label(std::uint64_t flow_id) const;
  [[nodiscard]] std::string_view task_label(std::uint64_t task_id) const;

  void clear();

 private:
  // Directory key: entity class in the top byte keeps flow and task id
  // spaces disjoint.
  [[nodiscard]] static std::uint64_t flow_key(std::uint64_t id) noexcept {
    return (1ull << 56) | id;
  }
  [[nodiscard]] static std::uint64_t task_key(std::uint64_t id) noexcept {
    return (2ull << 56) | id;
  }
  [[nodiscard]] std::string_view lookup(std::uint64_t key) const;

  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  // next write slot once the ring is full
  std::size_t size_ = 0;
  std::uint64_t recorded_ = 0;
  std::array<std::uint64_t, kTraceKindCount> counts_{};
  std::unordered_map<std::uint64_t, std::string> labels_;
};

// Thread-confined trace shards for parallel emitters (DESIGN.md §10).
//
// TraceSinks are not thread-safe, so a parallel section must never record
// into one directly -- and even a locked sink would record in *scheduling*
// order, breaking the bit-identical-at-any-thread-count contract. Instead
// each pool worker records into its own shard, tagging every event with a
// deterministic order key (e.g. the component id), and after the join the
// orchestrating thread forwards everything to the real sink sorted by that
// key. Keys unique within a pass give a total order independent of which
// worker emitted what, so the downstream sink observes the exact event
// stream a serial emitter would have produced.
//
// Arena semantics: shard and merge buffers keep their high-water capacity
// across passes, so steady-state parallel emission allocates nothing.
class TraceShards {
 public:
  // Starts a pass with `workers` usable shards (grown as needed, never
  // shrunk) and clears every shard.
  void begin(std::size_t workers);

  // Records `ev` into worker `w`'s shard. Thread-confined: each worker
  // index is used by exactly one thread per pass (the same contract as
  // WorkerScratch).
  void record(std::size_t w, std::uint64_t order_key, const TraceEvent& ev);

  // Forwards every recorded event to `sink` in ascending order_key order
  // (ties broken by worker index, then per-shard emission order -- but
  // callers use unique keys, making the order fully deterministic). Called
  // from the orchestrating thread after the parallel section has joined.
  void merge_into(TraceSink& sink);

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

 private:
  struct Keyed {
    std::uint64_t key;
    std::uint32_t shard;
    std::uint32_t seq;  // per-shard emission order (tie-break stability)
    TraceEvent ev;
  };
  // Padded so neighbouring workers' shard vectors never share a cache line.
  struct alignas(64) Shard {
    std::vector<Keyed> events;
  };
  std::vector<Shard> shards_;
  std::vector<Keyed> merged_;  // reused across passes
};

}  // namespace echelon::obs
