// Bounded flight recorder for the service plane (DESIGN.md §15).
//
// A fixed-size ring of recent structured service events -- admission
// outcomes, launches, completions, fault firings, telemetry flushes,
// snapshot boundaries, and errors. The ring drops oldest on overflow but
// keeps exact cumulative per-kind counts, mirroring obs::TraceRecorder.
//
// On an error path (SnapshotError, unroutable flow, job abandon) the
// service dumps the ring as a self-contained text post-mortem:
//
//   ECHFLIGHT 1
//   capacity 4096
//   recorded 12345
//   counts admit=9 launch=9 complete=7 ...
//   E <kind> <t> <a> <b> [note...]
//   ...
//   END
//
// Times print as %.17g (exact double round-trip), so
// parse_flight_dump(dump(rec)) reproduces the recorder's contents bit for
// bit -- the round-trip is pinned by tests. Recording is wall-clock-free
// and deterministic; the ring participates in snapshot verification via
// ring_digest().

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.hpp"

namespace echelon::obs {

enum class FlightKind : std::uint8_t {
  kAdmit = 0,     // a = job index
  kQueue,         // a = job index, b = queue depth after
  kReject,        // a = job index
  kLaunch,        // a = job index, b = running count after
  kComplete,      // a = job index, b = completed count after
  kFault,         // a = cumulative faults fired
  kFlush,         // a = flush index, b = steps executed
  kSnapshot,      // a = steps executed
  kError,         // note = what()
};
inline constexpr int kFlightKindCount = 9;

[[nodiscard]] std::string_view flight_kind_name(FlightKind kind) noexcept;

struct FlightEvent {
  FlightKind kind = FlightKind::kError;
  SimTime t = 0.0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::string note;

  [[nodiscard]] bool operator==(const FlightEvent&) const = default;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity);

  void record(FlightKind kind, SimTime t, std::uint64_t a = 0,
              std::uint64_t b = 0, std::string note = {});

  // Ring contents, oldest first.
  [[nodiscard]] std::vector<FlightEvent> events() const;
  // Exact cumulative count per kind (survives ring drops).
  [[nodiscard]] std::uint64_t count(FlightKind kind) const noexcept {
    return counts_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  void clear();

  // Overwrites the ring with checkpointed contents (oldest first). Used by
  // snapshot restore: journal replay rebuilds every event *except* the
  // kSnapshot markers earlier saves injected, so the ring is restored
  // verbatim rather than re-derived. Throws std::invalid_argument when
  // `events` exceeds capacity or `counts` has the wrong length.
  void restore(std::uint64_t recorded,
               const std::vector<std::uint64_t>& counts,
               std::vector<FlightEvent> events);

  // FNV-1a digest of the ring contents + cumulative counters; used by the
  // snapshot verification image to pin interrupted == uninterrupted.
  [[nodiscard]] std::uint64_t ring_digest() const noexcept;

  // Self-contained post-mortem (see format above).
  void dump(std::ostream& os) const;
  [[nodiscard]] std::string dump_string() const;

 private:
  std::vector<FlightEvent> ring_;
  std::size_t head_ = 0;  // next write slot
  std::size_t size_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t counts_[kFlightKindCount] = {};
};

// Parsed post-mortem; ok == false sets error and leaves fields best-effort.
struct ParsedFlightDump {
  std::size_t capacity = 0;
  std::uint64_t recorded = 0;
  std::uint64_t counts[kFlightKindCount] = {};
  std::vector<FlightEvent> events;
  bool ok = false;
  std::string error;
};

[[nodiscard]] ParsedFlightDump parse_flight_dump(std::istream& is);

}  // namespace echelon::obs
