// Prometheus-style text exposition for MetricsSnapshot (DESIGN.md §15).
//
// to_prom_text renders a snapshot into the Prometheus text format:
//   # TYPE <family> counter|gauge|histogram
//   <family>{<labels>} <value>
// with exact cumulative bucket counts for histograms (`_bucket{le="..."}`
// ascending, a `+Inf` tail, then `_sum` and `_count`).
//
// Output is byte-stable: families are emitted in sorted name order and
// samples within a family in sorted label order, floats always print as
// %.17g, and nothing wall-clock-dependent (timestamps, hostnames) ever
// appears. Two snapshots with equal contents render to equal bytes, which
// is what lets the telemetry tests compare interrupted vs uninterrupted
// service runs with a plain string equality.
//
// Dotted numeric name segments become labels keyed by the preceding
// segment: "link.3.util" renders as `link_util{link="3"}` and
// "job.12.tardiness" as `job_tardiness{job="12"}`. Counter families get
// the conventional `_total` suffix. Label sets are interned (stable
// first-seen ids) so repeated flushes of the same registry shape do no
// per-flush label-string rebuilding.
//
// PromWriter owns a file target: each write() renders the snapshot,
// optionally rotates previous expositions (path.1, path.2, ...) and
// replaces `path` via a tmp-file + rename so readers never see a torn
// exposition.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace echelon::obs {

// Stable first-seen interning of label-set strings. Ids are dense and
// assigned in intern() call order; the same label set always maps to the
// same id for the interner's lifetime.
class LabelInterner {
 public:
  std::uint32_t intern(std::string_view labels);
  [[nodiscard]] std::size_t size() const noexcept { return by_id_.size(); }
  [[nodiscard]] const std::string& label_at(std::uint32_t id) const {
    return *by_id_.at(id);
  }

 private:
  std::map<std::string, std::uint32_t, std::less<>> ids_;
  std::vector<const std::string*> by_id_;  // map nodes are stable
};

// Split a dotted metric name into a sanitized family name and a prom label
// string (`key="value",...`; empty when the name has no numeric segments).
// Exposed for tests.
void prom_split_name(std::string_view dotted, std::string& family,
                     std::string& labels);

// Render the snapshot to Prometheus text exposition (empty snapshot ->
// empty string). `interner`, when given, interns every distinct label set
// encountered (stable across calls). Throws std::invalid_argument if two
// metrics of different instrument kinds collapse onto one family name.
[[nodiscard]] std::string to_prom_text(const MetricsSnapshot& snap,
                                       LabelInterner* interner = nullptr);

// File target with optional rotation. rotate_keep == 0 overwrites in
// place; rotate_keep == N first shifts path -> path.1 -> ... -> path.N
// (dropping path.N) so the last N expositions survive.
class PromWriter {
 public:
  explicit PromWriter(std::string path, int rotate_keep = 0);

  // Renders and atomically replaces the target file. Returns the rendered
  // byte count. Throws std::runtime_error on I/O failure.
  std::size_t write(const MetricsSnapshot& snap);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::uint64_t writes() const noexcept { return writes_; }
  [[nodiscard]] const LabelInterner& interner() const noexcept {
    return interner_;
  }

 private:
  std::string path_;
  int rotate_keep_;
  LabelInterner interner_;
  std::uint64_t writes_ = 0;
};

}  // namespace echelon::obs
