// Tabular exporters for MetricsSnapshot (DESIGN.md §9): long-format CSV via
// common/csv.hpp and a human-readable summary table via common/table.hpp.
//
// CSV layout (one row per scalar, plot-friendly):
//   metric,kind,key,value
//   sim.flows_finished,counter,,1234
//   alloc.cache_hit_rate,gauge,,0.82
//   flow.completion_s,hist,p99,0.0125
//   link.3.util,series,12.5,0.74        (key = sim time for series samples)
//
// The summary table shows every counter and gauge plus count/mean/p50/p99/max
// for each histogram -- the at-a-glance view the CLI prints after a traced
// run.

#pragma once

#include <iosfwd>
#include <string>

#include "common/csv.hpp"
#include "obs/metrics.hpp"

namespace echelon::obs {

// Flattens a snapshot into the long CSV format described above.
[[nodiscard]] Csv metrics_to_csv(const MetricsSnapshot& snapshot);

// Convenience: write the long-format CSV to `path`. Returns false when the
// file cannot be opened.
[[nodiscard]] bool write_metrics_csv(const std::string& path,
                                     const MetricsSnapshot& snapshot);

// Renders the human-readable summary (counters, gauges, histogram
// statistics) to `os`. Series are summarized by sample count only.
void print_metrics_summary(std::ostream& os, const MetricsSnapshot& snapshot);

}  // namespace echelon::obs
