#include "obs/perfetto.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <string_view>
#include <unordered_map>

#include "topology/graph.hpp"

namespace echelon::obs {

namespace {

// --- emission helpers -------------------------------------------------------

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Streams traceEvents with the shared boilerplate (comma separation,
// event counting) factored out.
class EventWriter {
 public:
  explicit EventWriter(std::ostream& os) : os_(os) {
    os_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  }

  // `fields` is the pre-rendered body of the JSON object (no braces).
  void emit(const std::string& fields) {
    if (count_ != 0) os_ << ',';
    os_ << "\n{" << fields << '}';
    ++count_;
  }

  std::size_t finish() {
    os_ << "\n]}\n";
    return count_;
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }

 private:
  std::ostream& os_;
  std::size_t count_ = 0;
};

std::string common_fields(std::string_view name, std::string_view ph,
                          std::string_view cat, std::uint64_t pid,
                          std::uint64_t tid, double ts) {
  std::string f = "\"name\":\"";
  append_json_escaped(f, name);
  f += "\",\"ph\":\"";
  f += ph;
  f += "\",\"cat\":\"";
  f += cat;
  f += "\",\"pid\":";
  f += std::to_string(pid);
  f += ",\"tid\":";
  f += std::to_string(tid);
  f += ",\"ts\":";
  f += fmt_double(ts);
  return f;
}

std::uint64_t pid_for_job(std::uint64_t job) {
  return job == TraceEvent::kNone ? 0 : job + 1;
}

// Thread ids inside a job process: flow groups first, workers offset into a
// distant band so the two id spaces cannot collide.
constexpr std::uint64_t kWorkerTidBase = 1u << 20;

std::uint64_t flow_tid(std::uint64_t group) {
  return group == TraceEvent::kNone ? 0 : group + 1;
}

std::uint64_t worker_tid(std::uint64_t worker) {
  return worker == TraceEvent::kNone ? kWorkerTidBase
                                     : kWorkerTidBase + worker + 1;
}

struct OpenSlice {
  double t = 0.0;
  std::uint64_t job = TraceEvent::kNone;
  std::uint64_t ctx = TraceEvent::kNone;
  bool open = false;
  bool started = false;  // slice time anchored at kFlowStart, not kFlowSubmit
};

std::string series_display_name(std::string_view name,
                                const topology::Topology* topo) {
  // "link.<id>.util" -> "src->dst util" when a topology is available.
  constexpr std::string_view kPrefix = "link.";
  if (topo == nullptr || name.substr(0, kPrefix.size()) != kPrefix) {
    return std::string(name);
  }
  const std::string_view rest = name.substr(kPrefix.size());
  const std::size_t dot = rest.find('.');
  if (dot == std::string_view::npos) return std::string(name);
  std::uint64_t id = 0;
  for (const char c : rest.substr(0, dot)) {
    if (c < '0' || c > '9') return std::string(name);
    id = id * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (id >= topo->link_count()) return std::string(name);
  const topology::Link& l = topo->links()[id];
  std::string out = topo->node(l.src).name;
  out += "->";
  out += topo->node(l.dst).name;
  out += ' ';
  out += rest.substr(dot + 1);
  return out;
}

}  // namespace

std::size_t write_perfetto_trace(std::ostream& os, const TraceRecorder& rec,
                                 const MetricsSnapshot* metrics,
                                 const PerfettoOptions& options) {
  const std::vector<TraceEvent> events = rec.events();
  const double scale = options.time_scale;

  // Pass 1: discover slice opens, track structure and the time horizon.
  std::unordered_map<std::uint64_t, OpenSlice> flow_open;
  std::unordered_map<std::uint64_t, OpenSlice> task_open;
  std::set<std::uint64_t> jobs;                       // ordered => stable M order
  std::map<std::uint64_t, std::set<std::uint64_t>> groups_by_job;
  std::map<std::uint64_t, std::set<std::uint64_t>> workers_by_job;
  double horizon = 0.0;
  for (const TraceEvent& ev : events) {
    horizon = std::max(horizon, ev.t);
    switch (ev.kind) {
      case TraceKind::kFlowSubmit:
      case TraceKind::kFlowStart: {
        OpenSlice& s = flow_open[ev.id];
        if (ev.kind == TraceKind::kFlowStart) {
          // The slice is anchored at the *first* network entry; the submit
          // time only serves as a fallback for flows parked at birth that
          // never start.
          if (!s.started) s.t = ev.t;
          s.started = true;
          s.open = true;
          s.job = ev.job;
          s.ctx = ev.ctx;
        } else if (!s.open) {
          s.t = ev.t;
          s.open = true;
          s.job = ev.job;
          s.ctx = ev.ctx;
        }
        jobs.insert(pid_for_job(ev.job));
        groups_by_job[pid_for_job(ev.job)].insert(flow_tid(ev.ctx));
        break;
      }
      case TraceKind::kTaskStart: {
        OpenSlice& s = task_open[ev.id];
        s.t = ev.t;
        s.job = ev.job;
        s.ctx = ev.ctx;
        s.open = true;
        jobs.insert(pid_for_job(ev.job));
        workers_by_job[pid_for_job(ev.job)].insert(worker_tid(ev.ctx));
        break;
      }
      default: break;
    }
  }

  EventWriter w(os);

  // --- metadata: process / thread names -------------------------------------
  const auto meta = [&](std::string_view what, std::uint64_t pid,
                        std::uint64_t tid, bool thread_level,
                        std::string_view value) {
    std::string f = "\"name\":\"";
    f += what;
    f += "\",\"ph\":\"M\",\"pid\":";
    f += std::to_string(pid);
    if (thread_level) {
      f += ",\"tid\":";
      f += std::to_string(tid);
    }
    f += ",\"args\":{\"name\":\"";
    append_json_escaped(f, value);
    f += "\"}";
    w.emit(f);
  };

  for (const std::uint64_t pid : jobs) {
    meta("process_name", pid, 0, false, "job " + std::to_string(pid - 1));
    for (const std::uint64_t tid : groups_by_job[pid]) {
      meta("thread_name", pid, tid, true,
           "group " + std::to_string(tid - 1));
    }
    for (const std::uint64_t tid : workers_by_job[pid]) {
      meta("thread_name", pid, tid, true,
           "worker " + std::to_string(tid - kWorkerTidBase - 1));
    }
  }
  meta("process_name", kControlPid, 0, false, "control plane");
  for (const TraceKind k :
       {TraceKind::kControlPass, TraceKind::kAllocPass, TraceKind::kFaultFired,
        TraceKind::kHeuristicRun, TraceKind::kReuseHit,
        TraceKind::kSchedPass}) {
    meta("thread_name", kControlPid, static_cast<std::uint64_t>(k), true,
         to_string(k));
  }
  if (metrics != nullptr && !metrics->series.empty()) {
    bool any_sim = false;
    bool any_service = false;
    for (const MetricsSnapshot::Ser& ser : metrics->series) {
      (ser.name.rfind("service.", 0) == 0 ? any_service : any_sim) = true;
    }
    if (any_sim) meta("process_name", kCountersPid, 0, false, "counters");
    if (any_service) {
      meta("process_name", kServicePid, 0, false, "service control");
    }
  }

  // --- events, in recorded order --------------------------------------------
  const auto flow_name = [&](std::uint64_t id) {
    const std::string_view label = rec.flow_label(id);
    return label.empty() ? "flow " + std::to_string(id) : std::string(label);
  };
  const auto task_name = [&](std::uint64_t id) {
    const std::string_view label = rec.task_label(id);
    return label.empty() ? "task " + std::to_string(id) : std::string(label);
  };
  const auto instant = [&](const TraceEvent& ev, std::uint64_t pid,
                           std::uint64_t tid, std::string_view cat,
                           const std::string& name) {
    std::string f = common_fields(name, "i", cat, pid, tid, ev.t * scale);
    f += ",\"s\":\"t\",\"args\":{\"value\":";
    f += fmt_double(ev.value);
    f += '}';
    w.emit(f);
  };

  for (const TraceEvent& ev : events) {
    switch (ev.kind) {
      case TraceKind::kFlowSubmit:
        instant(ev, pid_for_job(ev.job), flow_tid(ev.ctx), "flow",
                "submit " + flow_name(ev.id));
        break;
      case TraceKind::kFlowStart:
        break;  // slice emitted at the matching finish
      case TraceKind::kFlowFinish: {
        const auto it = flow_open.find(ev.id);
        const double t0 = it != flow_open.end() && it->second.open
                              ? it->second.t
                              : ev.t;
        std::string f = common_fields(flow_name(ev.id), "X", "flow",
                                      pid_for_job(ev.job), flow_tid(ev.ctx),
                                      t0 * scale);
        f += ",\"dur\":";
        f += fmt_double(std::max(0.0, ev.t - t0) * scale);
        f += ",\"args\":{\"undelivered_bytes\":";
        f += fmt_double(ev.value);
        f += '}';
        w.emit(f);
        if (it != flow_open.end()) it->second.open = false;
        break;
      }
      case TraceKind::kFlowPark:
      case TraceKind::kFlowResume:
      case TraceKind::kFlowReroute:
      case TraceKind::kFlowAbandon:
        instant(ev, pid_for_job(ev.job), flow_tid(ev.ctx), "fault",
                std::string(to_string(ev.kind)) + " " + flow_name(ev.id));
        break;
      case TraceKind::kFlowRetry:
        // ctx carries the attempt number, not a group; pin retries to the
        // control plane's fault thread so the job track stays clean.
        instant(ev, kControlPid,
                static_cast<std::uint64_t>(TraceKind::kFaultFired), "fault",
                "retry " + flow_name(ev.id));
        break;
      case TraceKind::kTaskStart:
        break;  // slice emitted at the matching finish
      case TraceKind::kTaskFinish: {
        const auto it = task_open.find(ev.id);
        // kTaskFinish carries the duration; fall back to it when the start
        // event was dropped from the ring.
        const double t0 = it != task_open.end() && it->second.open
                              ? it->second.t
                              : std::max(0.0, ev.t - ev.value);
        std::string f = common_fields(task_name(ev.id), "X", "compute",
                                      pid_for_job(ev.job), worker_tid(ev.ctx),
                                      t0 * scale);
        f += ",\"dur\":";
        f += fmt_double(std::max(0.0, ev.t - t0) * scale);
        w.emit(f);
        if (it != task_open.end()) it->second.open = false;
        break;
      }
      case TraceKind::kControlPass:
      case TraceKind::kAllocPass:
      case TraceKind::kFaultFired:
      case TraceKind::kHeuristicRun:
      case TraceKind::kReuseHit:
      case TraceKind::kSchedPass:
        instant(ev, kControlPid, static_cast<std::uint64_t>(ev.kind),
                "control",
                std::string(to_string(ev.kind)) + " " + std::to_string(ev.id));
        break;
      case TraceKind::kCompFill:
      case TraceKind::kClassFill:
        break;  // per-component fill detail has no Perfetto track (yet)
    }
  }

  // --- close slices whose finish never arrived ------------------------------
  // Deterministic order: ascending entity id.
  const auto close_open = [&](std::unordered_map<std::uint64_t, OpenSlice>& m,
                              bool is_flow) {
    std::vector<std::pair<std::uint64_t, OpenSlice>> open;
    for (const auto& [id, s] : m) {
      if (s.open) open.emplace_back(id, s);
    }
    std::sort(open.begin(), open.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [id, s] : open) {
      std::string f = common_fields(
          is_flow ? flow_name(id) : task_name(id), "X",
          is_flow ? "flow" : "compute", pid_for_job(s.job),
          is_flow ? flow_tid(s.ctx) : worker_tid(s.ctx), s.t * scale);
      f += ",\"dur\":";
      f += fmt_double(std::max(0.0, horizon - s.t) * scale);
      f += ",\"args\":{\"unfinished\":1}";
      w.emit(f);
    }
  };
  close_open(flow_open, /*is_flow=*/true);
  close_open(task_open, /*is_flow=*/false);

  // --- counter tracks from the metrics snapshot -----------------------------
  if (metrics != nullptr) {
    std::uint64_t tid = 0;
    for (const MetricsSnapshot::Ser& ser : metrics->series) {
      const std::string display =
          series_display_name(ser.name, options.topology);
      const std::uint64_t pid = ser.name.rfind("service.", 0) == 0
                                    ? kServicePid
                                    : kCountersPid;
      for (const auto& [t, v] : ser.points) {
        std::string f =
            common_fields(display, "C", "counter", pid, tid, t * scale);
        f += ",\"args\":{\"value\":";
        f += fmt_double(v);
        f += '}';
        w.emit(f);
      }
      ++tid;
    }
  }

  return w.finish();
}

bool write_perfetto_trace_file(const std::string& path,
                               const TraceRecorder& rec,
                               const MetricsSnapshot* metrics,
                               const PerfettoOptions& options) {
  std::ofstream f(path);
  if (!f) return false;
  write_perfetto_trace(f, rec, metrics, options);
  return f.good();
}

// --- parser -----------------------------------------------------------------

namespace {

class MiniJson {
 public:
  explicit MiniJson(std::string text) : text_(std::move(text)) {}

  [[nodiscard]] ParsedTrace parse() {
    ParsedTrace out;
    skip_ws();
    if (!expect('{')) return fail(out, "expected top-level object");
    bool found = false;
    while (true) {
      skip_ws();
      if (peek() == '}') { ++pos_; break; }
      std::string key;
      if (!parse_string(&key)) return fail(out, "expected object key");
      skip_ws();
      if (!expect(':')) return fail(out, "expected ':'");
      skip_ws();
      if (key == "traceEvents") {
        if (!parse_events(&out)) return fail(out, error_);
        found = true;
      } else {
        if (!skip_value()) return fail(out, "bad value for key " + key);
      }
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; break; }
      return fail(out, "expected ',' or '}'");
    }
    if (!found) return fail(out, "no traceEvents array");
    out.ok = true;
    return out;
  }

 private:
  static ParsedTrace fail(ParsedTrace& out, std::string why) {
    out.ok = false;
    out.error = std::move(why);
    out.events.clear();
    return out;
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  bool expect(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool parse_string(std::string* out) {
    if (!expect('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_++];
        switch (e) {
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          case 'r': *out += '\r'; break;
          case 'u':
            if (pos_ + 4 > text_.size()) return false;
            pos_ += 4;   // exporter only emits control chars this way
            *out += '?';
            break;
          default: *out += e;
        }
      } else {
        *out += c;
      }
    }
    return false;
  }

  bool parse_number(double* out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return false;
    *out = std::strtod(text_.c_str() + start, nullptr);
    return true;
  }

  // Skips any value (string / number / object / array / literal).
  bool skip_value() {
    skip_ws();
    const char c = peek();
    if (c == '"') {
      std::string tmp;
      return parse_string(&tmp);
    }
    if (c == '{' || c == '[') {
      const char close = c == '{' ? '}' : ']';
      ++pos_;
      int depth = 1;
      while (pos_ < text_.size() && depth > 0) {
        const char d = text_[pos_];
        if (d == '"') {
          std::string tmp;
          if (!parse_string(&tmp)) return false;
          continue;
        }
        if (d == c) ++depth;
        if (d == close) --depth;
        ++pos_;
      }
      return depth == 0;
    }
    // number / true / false / null
    while (pos_ < text_.size() && text_[pos_] != ',' && text_[pos_] != '}' &&
           text_[pos_] != ']') {
      ++pos_;
    }
    return true;
  }

  bool parse_events(ParsedTrace* out) {
    if (!expect('[')) { error_ = "traceEvents is not an array"; return false; }
    while (true) {
      skip_ws();
      if (peek() == ']') { ++pos_; return true; }
      if (!parse_event(out)) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      error_ = "expected ',' or ']' in traceEvents";
      return false;
    }
  }

  bool parse_event(ParsedTrace* out) {
    skip_ws();
    if (!expect('{')) { error_ = "expected event object"; return false; }
    ParsedTraceEvent ev;
    while (true) {
      skip_ws();
      if (peek() == '}') { ++pos_; break; }
      std::string key;
      if (!parse_string(&key)) { error_ = "expected event key"; return false; }
      skip_ws();
      if (!expect(':')) { error_ = "expected ':' in event"; return false; }
      skip_ws();
      bool parsed = false;
      if (key == "name" || key == "ph" || key == "cat" || key == "s") {
        std::string v;
        if (!parse_string(&v)) { error_ = "bad string field"; return false; }
        if (key == "name") ev.name = std::move(v);
        else if (key == "ph") ev.ph = std::move(v);
        else if (key == "cat") ev.cat = std::move(v);
        parsed = true;
      } else if (key == "pid" || key == "tid" || key == "ts" || key == "dur") {
        double v = 0.0;
        if (!parse_number(&v)) { error_ = "bad number field"; return false; }
        if (key == "pid") ev.pid = static_cast<std::uint64_t>(v);
        else if (key == "tid") ev.tid = static_cast<std::uint64_t>(v);
        else if (key == "ts") ev.ts = v;
        else { ev.dur = v; ev.has_dur = true; }
        parsed = true;
      }
      if (!parsed && !skip_value()) {
        error_ = "bad value for event key " + key;
        return false;
      }
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; break; }
      error_ = "expected ',' or '}' in event";
      return false;
    }
    out->events.push_back(std::move(ev));
    return true;
  }

  std::string text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::size_t ParsedTrace::count_ph(std::string_view ph) const {
  return static_cast<std::size_t>(
      std::count_if(events.begin(), events.end(),
                    [&](const ParsedTraceEvent& e) { return e.ph == ph; }));
}

std::size_t ParsedTrace::count_name(std::string_view name) const {
  return static_cast<std::size_t>(
      std::count_if(events.begin(), events.end(),
                    [&](const ParsedTraceEvent& e) { return e.name == name; }));
}

ParsedTrace parse_trace_event_json(std::istream& is) {
  std::ostringstream buf;
  buf << is.rdbuf();
  return MiniJson(buf.str()).parse();
}

}  // namespace echelon::obs
