#include "obs/flightrec.hpp"

#include <cstdio>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace echelon::obs {

namespace {

constexpr std::string_view kKindNames[kFlightKindCount] = {
    "admit", "queue", "reject", "launch", "complete",
    "fault", "flush", "snapshot", "error",
};

bool kind_from_name(std::string_view name, FlightKind& out) {
  for (int i = 0; i < kFlightKindCount; ++i) {
    if (kKindNames[i] == name) {
      out = static_cast<FlightKind>(i);
      return true;
    }
  }
  return false;
}

std::uint64_t f64_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

void fnv1a(std::uint64_t& h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
}

void fnv1a_u64(std::uint64_t& h, std::uint64_t v) { fnv1a(h, &v, sizeof(v)); }

std::string fmt_time(SimTime t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", t);
  return buf;
}

}  // namespace

std::string_view flight_kind_name(FlightKind kind) noexcept {
  return kKindNames[static_cast<std::size_t>(kind)];
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

void FlightRecorder::record(FlightKind kind, SimTime t, std::uint64_t a,
                            std::uint64_t b, std::string note) {
  FlightEvent& slot = ring_[head_];
  slot.kind = kind;
  slot.t = t;
  slot.a = a;
  slot.b = b;
  slot.note = std::move(note);
  head_ = (head_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
  ++recorded_;
  ++counts_[static_cast<std::size_t>(kind)];
}

std::vector<FlightEvent> FlightRecorder::events() const {
  std::vector<FlightEvent> out;
  out.reserve(size_);
  const std::size_t start = (head_ + ring_.size() - size_) % ring_.size();
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void FlightRecorder::clear() {
  head_ = 0;
  size_ = 0;
  recorded_ = 0;
  for (auto& c : counts_) c = 0;
}

void FlightRecorder::restore(std::uint64_t recorded,
                             const std::vector<std::uint64_t>& counts,
                             std::vector<FlightEvent> events) {
  if (events.size() > ring_.size()) {
    throw std::invalid_argument(
        "FlightRecorder::restore: " + std::to_string(events.size()) +
        " events exceed ring capacity " + std::to_string(ring_.size()));
  }
  if (counts.size() != static_cast<std::size_t>(kFlightKindCount)) {
    throw std::invalid_argument(
        "FlightRecorder::restore: expected " +
        std::to_string(kFlightKindCount) + " per-kind counts, got " +
        std::to_string(counts.size()));
  }
  clear();
  size_ = events.size();
  head_ = size_ % ring_.size();
  for (std::size_t i = 0; i < events.size(); ++i) {
    ring_[i] = std::move(events[i]);
  }
  recorded_ = recorded;
  for (int i = 0; i < kFlightKindCount; ++i) {
    counts_[i] = counts[static_cast<std::size_t>(i)];
  }
}

std::uint64_t FlightRecorder::ring_digest() const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  fnv1a_u64(h, recorded_);
  for (std::uint64_t c : counts_) fnv1a_u64(h, c);
  const std::size_t start = (head_ + ring_.size() - size_) % ring_.size();
  for (std::size_t i = 0; i < size_; ++i) {
    const FlightEvent& ev = ring_[(start + i) % ring_.size()];
    fnv1a_u64(h, static_cast<std::uint64_t>(ev.kind));
    fnv1a_u64(h, f64_bits(ev.t));
    fnv1a_u64(h, ev.a);
    fnv1a_u64(h, ev.b);
    fnv1a(h, ev.note.data(), ev.note.size());
    fnv1a_u64(h, ev.note.size());
  }
  return h;
}

void FlightRecorder::dump(std::ostream& os) const {
  os << "ECHFLIGHT 1\n";
  os << "capacity " << ring_.size() << "\n";
  os << "recorded " << recorded_ << "\n";
  os << "counts";
  for (int i = 0; i < kFlightKindCount; ++i) {
    os << ' ' << kKindNames[i] << '=' << counts_[i];
  }
  os << "\n";
  for (const FlightEvent& ev : events()) {
    os << "E " << flight_kind_name(ev.kind) << ' ' << fmt_time(ev.t) << ' '
       << ev.a << ' ' << ev.b;
    if (!ev.note.empty()) os << ' ' << ev.note;
    os << "\n";
  }
  os << "END\n";
}

std::string FlightRecorder::dump_string() const {
  std::ostringstream os;
  dump(os);
  return os.str();
}

ParsedFlightDump parse_flight_dump(std::istream& is) {
  ParsedFlightDump out;
  std::string line;
  auto fail = [&out](std::string msg) {
    out.ok = false;
    out.error = std::move(msg);
    return out;
  };

  if (!std::getline(is, line) || line != "ECHFLIGHT 1") {
    return fail("bad header: expected 'ECHFLIGHT 1'");
  }
  if (!std::getline(is, line) ||
      std::sscanf(line.c_str(), "capacity %zu", &out.capacity) != 1) {
    return fail("bad capacity line");
  }
  if (!std::getline(is, line) ||
      std::sscanf(line.c_str(), "recorded %llu",
                  reinterpret_cast<unsigned long long*>(&out.recorded)) != 1) {
    return fail("bad recorded line");
  }
  if (!std::getline(is, line) || line.rfind("counts", 0) != 0) {
    return fail("bad counts line");
  }
  {
    std::istringstream cs(line.substr(6));
    std::string tok;
    while (cs >> tok) {
      const std::size_t eq = tok.find('=');
      if (eq == std::string::npos) return fail("bad counts token: " + tok);
      FlightKind kind{};
      if (!kind_from_name(tok.substr(0, eq), kind)) {
        return fail("unknown kind in counts: " + tok);
      }
      out.counts[static_cast<std::size_t>(kind)] =
          std::strtoull(tok.c_str() + eq + 1, nullptr, 10);
    }
  }
  bool saw_end = false;
  while (std::getline(is, line)) {
    if (line == "END") {
      saw_end = true;
      break;
    }
    if (line.rfind("E ", 0) != 0) return fail("bad event line: " + line);
    std::istringstream es(line.substr(2));
    std::string kind_name;
    std::string t_str;
    FlightEvent ev;
    if (!(es >> kind_name >> t_str >> ev.a >> ev.b)) {
      return fail("short event line: " + line);
    }
    if (!kind_from_name(kind_name, ev.kind)) {
      return fail("unknown event kind: " + kind_name);
    }
    ev.t = std::strtod(t_str.c_str(), nullptr);
    if (es.peek() == ' ') es.get();
    std::getline(es, ev.note);
    out.events.push_back(std::move(ev));
  }
  if (!saw_end) return fail("missing END");
  if (out.events.size() > out.capacity) {
    return fail("more events than capacity");
  }
  out.ok = true;
  return out;
}

}  // namespace echelon::obs
