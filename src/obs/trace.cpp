#include "obs/trace.hpp"

#include <algorithm>

namespace echelon::obs {

const char* to_string(TraceKind kind) noexcept {
  switch (kind) {
    case TraceKind::kFlowSubmit: return "flow_submit";
    case TraceKind::kFlowStart: return "flow_start";
    case TraceKind::kFlowFinish: return "flow_finish";
    case TraceKind::kFlowPark: return "flow_park";
    case TraceKind::kFlowResume: return "flow_resume";
    case TraceKind::kFlowReroute: return "flow_reroute";
    case TraceKind::kFlowRetry: return "flow_retry";
    case TraceKind::kFlowAbandon: return "flow_abandon";
    case TraceKind::kTaskStart: return "task_start";
    case TraceKind::kTaskFinish: return "task_finish";
    case TraceKind::kControlPass: return "control_pass";
    case TraceKind::kAllocPass: return "alloc_pass";
    case TraceKind::kFaultFired: return "fault_fired";
    case TraceKind::kHeuristicRun: return "heuristic_run";
    case TraceKind::kReuseHit: return "reuse_hit";
    case TraceKind::kCompFill: return "comp_fill";
    case TraceKind::kClassFill: return "class_fill";
    case TraceKind::kSchedPass: return "sched_pass";
  }
  return "?";
}

const char* to_string(TraceDetail detail) noexcept {
  switch (detail) {
    case TraceDetail::kOff: return "off";
    case TraceDetail::kCoarse: return "coarse";
    case TraceDetail::kFlow: return "flow";
  }
  return "?";
}

bool trace_detail_from_string(std::string_view name,
                              TraceDetail* out) noexcept {
  if (name == "off") {
    *out = TraceDetail::kOff;
  } else if (name == "coarse") {
    *out = TraceDetail::kCoarse;
  } else if (name == "flow") {
    *out = TraceDetail::kFlow;
  } else {
    return false;
  }
  return true;
}

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void TraceRecorder::record(const TraceEvent& ev, std::string_view label) {
  ++recorded_;
  ++counts_[static_cast<std::size_t>(ev.kind)];
  if (!label.empty()) {
    switch (ev.kind) {
      case TraceKind::kFlowSubmit:
      case TraceKind::kFlowStart:
        labels_.try_emplace(flow_key(ev.id), label);
        break;
      case TraceKind::kTaskStart:
        labels_.try_emplace(task_key(ev.id), label);
        break;
      default:
        break;  // labels are only interned for first-seen entity events
    }
  }
  if (size_ < capacity_) {
    ring_.push_back(ev);
    ++size_;
    return;
  }
  // Full: overwrite the oldest slot (head_ is the oldest once wrapped).
  ring_[head_] = ev;
  head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  if (size_ < capacity_) {
    out.assign(ring_.begin(), ring_.end());
    return out;
  }
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  return out;
}

std::string_view TraceRecorder::lookup(std::uint64_t key) const {
  const auto it = labels_.find(key);
  return it != labels_.end() ? std::string_view(it->second)
                             : std::string_view{};
}

std::string_view TraceRecorder::flow_label(std::uint64_t flow_id) const {
  return lookup(flow_key(flow_id));
}

std::string_view TraceRecorder::task_label(std::uint64_t task_id) const {
  return lookup(task_key(task_id));
}

void TraceRecorder::clear() {
  ring_.clear();
  head_ = 0;
  size_ = 0;
  recorded_ = 0;
  counts_.fill(0);
  labels_.clear();
}

void TraceShards::begin(std::size_t workers) {
  if (shards_.size() < workers) shards_.resize(workers);
  for (Shard& s : shards_) s.events.clear();
}

void TraceShards::record(std::size_t w, std::uint64_t order_key,
                         const TraceEvent& ev) {
  Shard& s = shards_[w];
  s.events.push_back(Keyed{order_key, static_cast<std::uint32_t>(w),
                           static_cast<std::uint32_t>(s.events.size()), ev});
}

void TraceShards::merge_into(TraceSink& sink) {
  merged_.clear();
  for (const Shard& s : shards_) {
    merged_.insert(merged_.end(), s.events.begin(), s.events.end());
  }
  std::sort(merged_.begin(), merged_.end(),
            [](const Keyed& a, const Keyed& b) {
              if (a.key != b.key) return a.key < b.key;
              if (a.shard != b.shard) return a.shard < b.shard;
              return a.seq < b.seq;
            });
  for (const Keyed& k : merged_) sink.record(k.ev);
}

}  // namespace echelon::obs
