#include "obs/export.hpp"

#include <ostream>

#include "common/table.hpp"

namespace echelon::obs {

Csv metrics_to_csv(const MetricsSnapshot& snapshot) {
  Csv csv({"metric", "kind", "key", "value"});
  for (const auto& [name, v] : snapshot.counters) {
    csv.add_row({name, "counter", "", std::to_string(v)});
  }
  for (const auto& [name, v] : snapshot.gauges) {
    csv.add_row({name, "gauge", "", Csv::num(v)});
  }
  for (const MetricsSnapshot::Hist& h : snapshot.histograms) {
    csv.add_row({h.name, "hist", "count", std::to_string(h.count)});
    csv.add_row({h.name, "hist", "sum", Csv::num(h.sum)});
    csv.add_row({h.name, "hist", "mean", Csv::num(h.mean())});
    csv.add_row({h.name, "hist", "min", Csv::num(h.min)});
    csv.add_row({h.name, "hist", "p50", Csv::num(h.quantile(0.50))});
    csv.add_row({h.name, "hist", "p90", Csv::num(h.quantile(0.90))});
    csv.add_row({h.name, "hist", "p99", Csv::num(h.quantile(0.99))});
    csv.add_row({h.name, "hist", "max", Csv::num(h.max)});
    // Raw buckets, for exact downstream re-aggregation. Key is the bucket
    // upper bound ("inf" for the tail).
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      const std::string key =
          i < h.bounds.size() ? "le_" + Csv::num(h.bounds[i]) : "le_inf";
      csv.add_row({h.name, "bucket", key, std::to_string(h.counts[i])});
    }
  }
  for (const MetricsSnapshot::Ser& s : snapshot.series) {
    for (const auto& [t, v] : s.points) {
      csv.add_row({s.name, "series", Csv::num(t), Csv::num(v)});
    }
  }
  return csv;
}

bool write_metrics_csv(const std::string& path,
                       const MetricsSnapshot& snapshot) {
  return metrics_to_csv(snapshot).write_file(path);
}

void print_metrics_summary(std::ostream& os, const MetricsSnapshot& snapshot) {
  if (!snapshot.counters.empty() || !snapshot.gauges.empty()) {
    Table scalars({"metric", "kind", "value"});
    for (const auto& [name, v] : snapshot.counters) {
      scalars.add_row({name, "counter", std::to_string(v)});
    }
    for (const auto& [name, v] : snapshot.gauges) {
      scalars.add_row({name, "gauge", Table::num(v, 6)});
    }
    scalars.print(os);
  }
  if (!snapshot.histograms.empty()) {
    os << '\n';
    Table hists({"histogram", "count", "mean", "p50", "p99", "max"});
    for (const MetricsSnapshot::Hist& h : snapshot.histograms) {
      hists.add_row({h.name, std::to_string(h.count), Table::num(h.mean(), 6),
                     Table::num(h.quantile(0.50), 6),
                     Table::num(h.quantile(0.99), 6), Table::num(h.max, 6)});
    }
    hists.print(os);
  }
  if (!snapshot.series.empty()) {
    os << '\n';
    Table series({"series", "samples"});
    for (const MetricsSnapshot::Ser& s : snapshot.series) {
      series.add_row({s.name, std::to_string(s.points.size())});
    }
    series.print(os);
  }
}

}  // namespace echelon::obs
