// Metrics registry for the simulation observability layer (DESIGN.md §9).
//
// Four instrument types:
//   * Counter   -- monotonically increasing u64 (events, cache hits).
//   * Gauge     -- last-written double (makespan, wall time).
//   * Histogram -- fixed-bucket distribution (latencies, tardiness); bucket
//                  upper bounds are fixed at registration so histograms from
//                  different runs merge by adding counts.
//   * Series    -- (sim-time, value) samples (per-link utilization, active
//                  flow counts). Append-only, recorded at control passes.
//
// A MetricsRegistry owns named instruments; instrument references returned
// by counter()/gauge()/histogram()/series() stay valid for the registry's
// lifetime (node-based map). Registries are *not* thread-safe -- the
// threading model mirrors the simulator's: one registry per experiment, and
// cluster::run_sweep gives every sweep point (hence every worker thread) its
// own registry, then merges the per-point snapshots deterministically in
// point order.
//
// snapshot() produces a name-sorted, self-contained MetricsSnapshot that
// exporters (CSV, Perfetto counter tracks, summary tables, bench JSON
// context) consume without holding the registry.

#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/time.hpp"

namespace echelon::obs {

class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept { value_ += delta; }
  void set(std::uint64_t value) noexcept { value_ = value; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double value) noexcept { value_ = value; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

// Fixed-bucket histogram. `bounds` are ascending bucket upper bounds; an
// implicit +inf bucket catches the tail, so counts().size() ==
// bounds().size() + 1. Also tracks count/sum/min/max exactly.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double x) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept {
    return counts_;
  }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  // Bucket-resolution quantile estimate: the upper bound of the bucket
  // containing the q-th sample (exact `max` for q >= 1). Good enough for
  // p50/p99 reporting; the fixed-bucket design is what makes cross-run
  // merging exact.
  [[nodiscard]] double quantile(double q) const noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Default latency/duration buckets: 1-2-5 decades from 1 µs to 1000 s
// (seconds). Shared by every duration-flavoured histogram so merges line up.
[[nodiscard]] std::vector<double> default_duration_bounds();

// Time-stamped samples of a gauge-like quantity.
//
// Unbounded by default. set_point_budget(B) bounds memory for indefinitely
// long service runs by *decimation*: once B retained points accumulate,
// every other one is dropped and the keep-stride doubles, so the series
// thereafter records only every stride-th offered sample. The retained set
// is always exactly the uncapped series' samples at offer indices that are
// multiples of the current stride -- a capped and an uncapped series fed
// the same stream agree bitwise on every point the capped one kept.
class Series {
 public:
  void sample(SimTime t, double value) {
    if (total_ % stride_ == 0) {
      points_.emplace_back(t, value);
      if (budget_ != 0 && points_.size() >= budget_) decimate();
    }
    ++total_;
  }
  [[nodiscard]] const std::vector<std::pair<SimTime, double>>& points()
      const noexcept {
    return points_;
  }

  // Retention cap (0 = unbounded, the default). Budgets below 2 are clamped
  // to 2: decimation must be able to make progress. Applying a budget to an
  // already-over-budget series decimates immediately.
  void set_point_budget(std::size_t budget) {
    budget_ = budget == 0 ? 0 : std::max<std::size_t>(budget, 2);
    while (budget_ != 0 && points_.size() >= budget_) decimate();
  }
  [[nodiscard]] std::size_t point_budget() const noexcept { return budget_; }
  // Current keep-stride in offered samples (1 until the budget first trips).
  [[nodiscard]] std::uint64_t stride() const noexcept { return stride_; }
  // Samples offered over the series' lifetime (>= points().size()).
  [[nodiscard]] std::uint64_t total_samples() const noexcept { return total_; }

 private:
  void decimate() {
    // Keep retained indices 0, 2, 4, ... -- offer indices that are multiples
    // of the doubled stride.
    std::size_t out = 0;
    for (std::size_t i = 0; i < points_.size(); i += 2) {
      points_[out++] = points_[i];
    }
    points_.resize(out);
    stride_ *= 2;
  }

  std::vector<std::pair<SimTime, double>> points_;
  std::size_t budget_ = 0;
  std::uint64_t stride_ = 1;
  std::uint64_t total_ = 0;
};

// Self-contained, name-sorted copy of a registry's state.
struct MetricsSnapshot {
  struct Hist {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  // bounds.size() + 1 (tail = +inf)
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    [[nodiscard]] double mean() const noexcept {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
    [[nodiscard]] double quantile(double q) const noexcept;
  };
  struct Ser {
    std::string name;
    std::vector<std::pair<SimTime, double>> points;
  };

  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<Hist> histograms;
  std::vector<Ser> series;

  [[nodiscard]] bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty() &&
           series.empty();
  }
  // Lookup helpers (nullptr / fallback when absent). Linear scan over the
  // sorted vectors -- snapshots are small and read on export paths only.
  [[nodiscard]] const std::uint64_t* find_counter(std::string_view name) const;
  [[nodiscard]] const double* find_gauge(std::string_view name) const;
  [[nodiscard]] const Hist* find_histogram(std::string_view name) const;
  [[nodiscard]] const Ser* find_series(std::string_view name) const;
};

class MetricsRegistry {
 public:
  // Returns the named instrument, creating it on first use. A histogram's
  // bucket bounds are fixed by its first registration; `bounds` empty means
  // default_duration_bounds().
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds = {});
  Series& series(std::string_view name);

  // Retention cap applied to every existing and future series in this
  // registry (see Series::set_point_budget; 0 = unbounded).
  void set_series_budget(std::size_t budget);
  [[nodiscard]] std::size_t series_budget() const noexcept {
    return series_budget_;
  }

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  // std::map: deterministic (name-sorted) iteration and stable node
  // addresses, so instrument references never move.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::map<std::string, Series, std::less<>> series_;
  std::size_t series_budget_ = 0;
};

// Deterministic merge of per-point snapshots (point order): counters sum;
// gauges average (arithmetic mean over the snapshots defining them);
// histograms with identical bounds add counts and merge count/sum/min/max.
// A histogram name appearing with *different* bucket layouts is a
// registration bug; the merge throws std::invalid_argument naming the
// metric rather than silently misfolding counts.
// Series are point-local and intentionally dropped -- export them per point.
[[nodiscard]] MetricsSnapshot merge_snapshots(
    std::span<const MetricsSnapshot> snapshots);

}  // namespace echelon::obs
