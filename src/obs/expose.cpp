#include "obs/expose.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <utility>

namespace echelon::obs {

namespace {

// Shortest round-trippable float formatting, matching the Perfetto
// exporter's convention so every emitted double is byte-stable.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool all_digits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) return false;
  }
  return true;
}

void append_sanitized(std::string_view seg, std::string& out) {
  for (char c : seg) {
    const bool ok = (std::isalnum(static_cast<unsigned char>(c)) != 0) ||
                    c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
}

struct Family {
  char type = 'g';  // 'c' counter, 'g' gauge, 'h' histogram
  std::vector<std::pair<std::string, std::string>> scalars;  // labels, value
  std::vector<std::pair<std::string, const MetricsSnapshot::Hist*>> hists;
};

Family& family_for(std::map<std::string, Family>& families,
                   const std::string& name, char type) {
  auto [it, inserted] = families.try_emplace(name);
  if (inserted) {
    it->second.type = type;
  } else if (it->second.type != type) {
    throw std::invalid_argument(
        "to_prom_text: family '" + name +
        "' produced by metrics of different instrument kinds");
  }
  return it->second;
}

void add_scalar(std::map<std::string, Family>& families, LabelInterner* intern,
                std::string_view dotted, char type, std::string value) {
  std::string family;
  std::string labels;
  prom_split_name(dotted, family, labels);
  if (type == 'c') family += "_total";
  if (intern != nullptr && !labels.empty()) intern->intern(labels);
  family_for(families, family, type)
      .scalars.emplace_back(std::move(labels), std::move(value));
}

}  // namespace

std::uint32_t LabelInterner::intern(std::string_view labels) {
  const auto it = ids_.find(labels);
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(by_id_.size());
  const auto node = ids_.emplace(std::string(labels), id).first;
  by_id_.push_back(&node->first);
  return id;
}

void prom_split_name(std::string_view dotted, std::string& family,
                     std::string& labels) {
  family.clear();
  labels.clear();
  std::string last_key = "idx";  // key for a numeric segment with no prefix
  std::vector<std::string> used_keys;
  std::size_t pos = 0;
  while (pos <= dotted.size()) {
    const std::size_t dot = dotted.find('.', pos);
    const std::string_view seg =
        dotted.substr(pos, dot == std::string_view::npos ? dot : dot - pos);
    if (!seg.empty()) {
      if (all_digits(seg)) {
        std::string key = last_key;
        // Prometheus forbids duplicate label names; disambiguate repeats.
        int repeat = 1;
        for (const std::string& u : used_keys) {
          if (u == key) ++repeat;
        }
        used_keys.push_back(key);
        if (repeat > 1) key += "_" + std::to_string(repeat);
        if (!labels.empty()) labels.push_back(',');
        labels += key;
        labels += "=\"";
        labels.append(seg);
        labels += "\"";
      } else {
        if (!family.empty()) family.push_back('_');
        append_sanitized(seg, family);
        last_key.clear();
        append_sanitized(seg, last_key);
      }
    }
    if (dot == std::string_view::npos) break;
    pos = dot + 1;
  }
  if (family.empty()) family = "metric";
  if (std::isdigit(static_cast<unsigned char>(family.front())) != 0) {
    family.insert(family.begin(), '_');
  }
}

std::string to_prom_text(const MetricsSnapshot& snap, LabelInterner* interner) {
  std::map<std::string, Family> families;

  for (const auto& [name, v] : snap.counters) {
    add_scalar(families, interner, name, 'c', std::to_string(v));
  }
  for (const auto& [name, v] : snap.gauges) {
    add_scalar(families, interner, name, 'g', fmt_double(v));
  }
  // A series exposes as a gauge reading its most recent sample -- the
  // "current value" a scraper would see.
  for (const MetricsSnapshot::Ser& s : snap.series) {
    if (s.points.empty()) continue;
    add_scalar(families, interner, s.name, 'g',
               fmt_double(s.points.back().second));
  }
  for (const MetricsSnapshot::Hist& h : snap.histograms) {
    std::string family;
    std::string labels;
    prom_split_name(h.name, family, labels);
    if (interner != nullptr && !labels.empty()) interner->intern(labels);
    family_for(families, family, 'h').hists.emplace_back(std::move(labels), &h);
  }

  std::string out;
  for (auto& [name, fam] : families) {
    out += "# TYPE ";
    out += name;
    out += fam.type == 'c' ? " counter\n"
           : fam.type == 'h' ? " histogram\n"
                             : " gauge\n";
    std::sort(fam.scalars.begin(), fam.scalars.end());
    for (const auto& [labels, value] : fam.scalars) {
      out += name;
      if (!labels.empty()) {
        out += '{';
        out += labels;
        out += '}';
      }
      out += ' ';
      out += value;
      out += '\n';
    }
    std::sort(fam.hists.begin(), fam.hists.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [labels, h] : fam.hists) {
      const std::string prefix = labels.empty() ? "" : labels + ",";
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i < h->counts.size(); ++i) {
        cum += h->counts[i];
        out += name;
        out += "_bucket{";
        out += prefix;
        out += "le=\"";
        out += i < h->bounds.size() ? fmt_double(h->bounds[i]) : "+Inf";
        out += "\"} ";
        out += std::to_string(cum);
        out += '\n';
      }
      out += name;
      out += "_sum";
      if (!labels.empty()) {
        out += '{';
        out += labels;
        out += '}';
      }
      out += ' ';
      out += fmt_double(h->sum);
      out += '\n';
      out += name;
      out += "_count";
      if (!labels.empty()) {
        out += '{';
        out += labels;
        out += '}';
      }
      out += ' ';
      out += std::to_string(h->count);
      out += '\n';
    }
  }
  return out;
}

PromWriter::PromWriter(std::string path, int rotate_keep)
    : path_(std::move(path)), rotate_keep_(rotate_keep) {}

std::size_t PromWriter::write(const MetricsSnapshot& snap) {
  const std::string text = to_prom_text(snap, &interner_);
  if (rotate_keep_ > 0) {
    // Shift path -> path.1 -> ... -> path.N; missing links are fine (the
    // first few writes have nothing to rotate).
    for (int i = rotate_keep_ - 1; i >= 1; --i) {
      const std::string from = path_ + "." + std::to_string(i);
      const std::string to = path_ + "." + std::to_string(i + 1);
      std::rename(from.c_str(), to.c_str());
    }
    std::rename(path_.c_str(), (path_ + ".1").c_str());
  }
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) {
      throw std::runtime_error("PromWriter: cannot open " + tmp);
    }
    os.write(text.data(), static_cast<std::streamsize>(text.size()));
    if (!os) {
      throw std::runtime_error("PromWriter: short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    throw std::runtime_error("PromWriter: cannot rename " + tmp + " -> " +
                             path_);
  }
  ++writes_;
  return text.size();
}

}  // namespace echelon::obs
