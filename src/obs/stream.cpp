#include "obs/stream.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace echelon::obs {

namespace {

std::uint64_t f64_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double bits_f64(std::uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

void TraceChunkWriter::record(const TraceEvent& ev, std::string_view label) {
  buf_.push_back(Buffered{ev, std::string(label)});
}

std::size_t TraceChunkWriter::flush() {
  const std::size_t n = buf_.size();
  *os_ << "ECHCHUNK " << n << "\n";
  char line[256];
  for (const Buffered& b : buf_) {
    std::snprintf(line, sizeof(line),
                  "%c %u %016" PRIx64 " %" PRIu64 " %" PRIu64 " %" PRIu64
                  " %016" PRIx64,
                  b.label.empty() ? 'E' : 'L',
                  static_cast<unsigned>(b.ev.kind), f64_bits(b.ev.t), b.ev.id,
                  b.ev.job, b.ev.ctx, f64_bits(b.ev.value));
    *os_ << line;
    if (!b.label.empty()) *os_ << ' ' << b.label;
    *os_ << "\n";
  }
  total_ += n;
  ++chunks_;
  buf_.clear();
  return n;
}

std::uint64_t merge_trace_chunks(std::istream& is, TraceSink& sink) {
  std::uint64_t replayed = 0;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    unsigned long long n = 0;
    if (std::sscanf(line.c_str(), "ECHCHUNK %llu", &n) != 1) {
      throw std::runtime_error("merge_trace_chunks: bad chunk header: " +
                               line);
    }
    for (unsigned long long i = 0; i < n; ++i) {
      if (!std::getline(is, line)) {
        throw std::runtime_error(
            "merge_trace_chunks: chunk truncated (expected " +
            std::to_string(n) + " events, got " + std::to_string(i) + ")");
      }
      char tag = 0;
      unsigned kind = 0;
      std::uint64_t t_bits = 0;
      std::uint64_t v_bits = 0;
      TraceEvent ev;
      int consumed = 0;
      if (std::sscanf(line.c_str(),
                      "%c %u %" SCNx64 " %" SCNu64 " %" SCNu64 " %" SCNu64
                      " %" SCNx64 "%n",
                      &tag, &kind, &t_bits, &ev.id, &ev.job, &ev.ctx, &v_bits,
                      &consumed) != 7 ||
          (tag != 'E' && tag != 'L') || kind >= kTraceKindCount) {
        throw std::runtime_error("merge_trace_chunks: bad event line: " +
                                 line);
      }
      ev.kind = static_cast<TraceKind>(kind);
      ev.t = bits_f64(t_bits);
      ev.value = bits_f64(v_bits);
      std::string_view label;
      if (tag == 'L') {
        std::string_view rest{line};
        rest.remove_prefix(static_cast<std::size_t>(consumed));
        if (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
        label = rest;
      }
      sink.record(ev, label);
      ++replayed;
    }
  }
  return replayed;
}

}  // namespace echelon::obs
