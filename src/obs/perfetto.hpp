// Chrome/Perfetto `trace_event` JSON export of a recorded simulation
// (DESIGN.md §9).
//
// The emitted file is the classic JSON-object trace format
// (`{"traceEvents":[...], "displayTimeUnit":"ms"}`) that ui.perfetto.dev and
// chrome://tracing both load natively. Track layout:
//
//   * One *process* per job (pid = job + 1, named via "M" metadata from the
//     recorder's label directory when available), with
//       - one thread per flow group ("X" complete slices per flow:
//         start -> finish, instant "i" events for park/resume/reroute/
//         retry/abandon), and
//       - one thread per worker for compute phases (task "X" slices).
//   * A dedicated *counters* process (pid = kCountersPid) holding "C"
//     counter tracks sampled from a MetricsSnapshot's time series --
//     per-link utilization (named after the topology's endpoint nodes when
//     one is supplied) and scheduler-level series such as active flows.
//   * Control-plane events (control passes, alloc passes, fault firings,
//     heuristic runs, reuse hits) land on named threads of a *control*
//     process (pid = kControlPid).
//
// Times are seconds in the simulator and microseconds in trace_event; the
// exporter multiplies by 1e6. Flows whose finish was dropped from the ring
// are closed at the recorder's horizon (last event time) so every slice
// remains well-formed.
//
// parse_trace_event_json() is a deliberately small parser for exactly the
// subset this exporter emits (flat string/number fields, no nesting inside
// args beyond one level). It exists so tests and CI can round-trip the
// output without a JSON dependency.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace echelon::topology {
class Topology;
}  // namespace echelon::topology

namespace echelon::obs {

// Synthetic pids for non-job tracks. Job pids are job + 1 (jobs are
// 0-based), so reserve a distant range to avoid collisions.
inline constexpr std::uint64_t kControlPid = 1'000'000;
inline constexpr std::uint64_t kCountersPid = 1'000'001;
// Service-plane counter tracks ("service.*" series: SLO gauges, queue
// depth, control-plane self-profile) render as their own process so live
// service telemetry is visually separate from simulation counters.
inline constexpr std::uint64_t kServicePid = 1'000'002;

struct PerfettoOptions {
  // Simulator seconds -> trace_event timestamp units (µs).
  double time_scale = 1e6;
  // When supplied, link counter tracks are named "src->dst"; otherwise
  // "link.<id>".
  const topology::Topology* topology = nullptr;
};

// Writes the recorder (and, optionally, a metrics snapshot's time series)
// as trace_event JSON. Returns the number of traceEvents emitted.
std::size_t write_perfetto_trace(std::ostream& os, const TraceRecorder& rec,
                                 const MetricsSnapshot* metrics = nullptr,
                                 const PerfettoOptions& options = {});

// Convenience: open `path` and write. Returns false when the file cannot be
// opened or the stream fails.
[[nodiscard]] bool write_perfetto_trace_file(
    const std::string& path, const TraceRecorder& rec,
    const MetricsSnapshot* metrics = nullptr,
    const PerfettoOptions& options = {});

// One parsed traceEvent (subset of fields the exporter emits).
struct ParsedTraceEvent {
  std::string name;
  std::string ph;   // "X", "i", "C", "M"
  std::string cat;
  std::uint64_t pid = 0;
  std::uint64_t tid = 0;
  double ts = 0.0;
  double dur = 0.0;   // "X" only
  bool has_dur = false;
};

struct ParsedTrace {
  std::vector<ParsedTraceEvent> events;
  bool ok = false;           // false => `error` explains
  std::string error;

  [[nodiscard]] std::size_t count_ph(std::string_view ph) const;
  [[nodiscard]] std::size_t count_name(std::string_view name) const;
};

// Parses the subset of trace_event JSON that write_perfetto_trace emits.
[[nodiscard]] ParsedTrace parse_trace_event_json(std::istream& is);

}  // namespace echelon::obs
