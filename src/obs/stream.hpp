// Incremental (chunked) trace streaming for long service runs
// (DESIGN.md §15).
//
// TraceRecorder buffers a whole run; an indefinitely-running ServiceLoop
// cannot afford that. TraceChunkWriter is a TraceSink that buffers events
// only until the service's next flush boundary, then appends one
// self-delimiting text chunk to a stream and forgets them -- memory held
// is O(events per chunk), not O(run).
//
// Chunk format (doubles as raw IEEE-754 bit images in hex, so replay is
// bit-exact):
//
//   ECHCHUNK <n-events>
//   E <kind> <t-bits> <id> <job> <ctx> <value-bits>
//   L <kind> <t-bits> <id> <job> <ctx> <value-bits> <label...>
//
// merge_trace_chunks replays a concatenation of chunks into any TraceSink
// in recorded order. Feeding the merged stream into a TraceRecorder of the
// same capacity as a whole-run recorder reproduces the identical ring
// (events, cumulative counts, label directory), so the Perfetto export of
// the merged stream is byte-identical to the whole-run export -- pinned by
// tests/test_service_telemetry.cpp.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace echelon::obs {

class TraceChunkWriter final : public TraceSink {
 public:
  explicit TraceChunkWriter(std::ostream& os) : os_(&os) {}

  using TraceSink::record;
  void record(const TraceEvent& ev, std::string_view label) override;

  // Appends one chunk holding everything buffered since the previous flush
  // (a "ECHCHUNK 0" chunk when nothing is buffered -- boundaries are still
  // visible in the stream) and clears the buffer. Returns the event count.
  std::size_t flush();

  [[nodiscard]] std::size_t buffered() const noexcept { return buf_.size(); }
  [[nodiscard]] std::uint64_t chunks() const noexcept { return chunks_; }
  [[nodiscard]] std::uint64_t total_events() const noexcept { return total_; }

 private:
  struct Buffered {
    TraceEvent ev;
    std::string label;
  };
  std::ostream* os_;
  std::vector<Buffered> buf_;
  std::uint64_t chunks_ = 0;
  std::uint64_t total_ = 0;
};

// Replays every chunk in `is` into `sink` in recorded order; returns the
// number of events replayed. Throws std::runtime_error on malformed input
// (bad magic, short chunk, unparseable event line).
std::uint64_t merge_trace_chunks(std::istream& is, TraceSink& sink);

}  // namespace echelon::obs
