// Streaming job-arrival sources for the online service loop (DESIGN.md §13).
//
// Two concrete generators:
//   * PoissonArrivalGenerator -- samples the exact per-job draw sequence of
//     cluster::generate_trace (same Rng consumption order), so the stream it
//     emits for a TraceConfig is element-for-element identical to the batch
//     trace for that config. An optional burst knob collapses every Nth
//     inter-arrival gap to zero without perturbing the draw sequence.
//   * TraceFileArrivalReader -- replays a text arrival-trace file
//     (write_arrival_trace's format, the fault-plan round-trip idiom:
//     precision-17 doubles, line-based parse, loud std::invalid_argument
//     with a line number on any malformed input).
//
// Both are checkpointable: their progress state is small and explicit
// (snapshot.cpp serializes it), and restoring it resumes the stream
// bit-exactly mid-flight.

#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/job.hpp"
#include "cluster/trace.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"

namespace echelon::service {

struct Arrival {
  SimTime at = 0.0;
  cluster::JobSpec job;
};

class ArrivalGenerator {
 public:
  virtual ~ArrivalGenerator() = default;
  // Next arrival, or nullopt when the stream is exhausted. Arrival times
  // must be non-decreasing; the ServiceLoop enforces this loudly.
  [[nodiscard]] virtual std::optional<Arrival> next() = 0;
  [[nodiscard]] virtual const char* kind() const noexcept = 0;
};

// Seeded Poisson stream, draw-compatible with cluster::generate_trace.
class PoissonArrivalGenerator final : public ArrivalGenerator {
 public:
  // burst_every == 0 disables bursting; N >= 2 makes every Nth job arrive
  // at the same instant as its predecessor (the exponential gap draw is
  // still consumed, so the sampled job parameters are unchanged -- only the
  // arrival clock differs). Throws std::invalid_argument on a non-positive
  // arrival rate or num_jobs < 0.
  explicit PoissonArrivalGenerator(const cluster::TraceConfig& config,
                                   int burst_every = 0);

  [[nodiscard]] std::optional<Arrival> next() override;
  [[nodiscard]] const char* kind() const noexcept override {
    return "poisson";
  }

  // Checkpoint surface (snapshot.cpp).
  [[nodiscard]] const cluster::TraceConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] int burst_every() const noexcept { return burst_every_; }
  [[nodiscard]] const Rng& rng() const noexcept { return rng_; }
  [[nodiscard]] SimTime clock() const noexcept { return clock_; }
  [[nodiscard]] int emitted() const noexcept { return emitted_; }
  void restore(const std::array<std::uint64_t, 4>& rng_state, SimTime clock,
               int emitted) noexcept {
    rng_.set_state(rng_state);
    clock_ = clock;
    emitted_ = emitted;
  }

 private:
  cluster::TraceConfig config_;
  int burst_every_;
  Rng rng_;
  SimTime clock_ = 0.0;
  int emitted_ = 0;
};

// Replays a written arrival trace file.
class TraceFileArrivalReader final : public ArrivalGenerator {
 public:
  // Parses the whole file up front (fail-fast on malformed input); throws
  // std::invalid_argument with a line number on any parse error and
  // std::runtime_error if the file cannot be opened.
  explicit TraceFileArrivalReader(const std::string& path);

  [[nodiscard]] std::optional<Arrival> next() override;
  [[nodiscard]] const char* kind() const noexcept override { return "trace"; }

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::size_t index() const noexcept { return index_; }
  [[nodiscard]] std::size_t size() const noexcept { return arrivals_.size(); }
  // Checkpoint restore: skip the first `index` arrivals.
  void seek(std::size_t index);

 private:
  std::string path_;
  std::vector<Arrival> arrivals_;
  std::size_t index_ = 0;
};

// Text serialization for arrival streams (fault_plan.hpp round-trip idiom):
// write(parse(text)) == text, and write -> read -> write is byte-identical.
// Only MLP-parameterized models survive the round trip exactly as written;
// arbitrary ModelSpecs are emitted layer-by-layer.
void write_arrival_trace(std::ostream& out,
                         const std::vector<Arrival>& arrivals);
[[nodiscard]] std::string serialize_arrivals(
    const std::vector<Arrival>& arrivals);
[[nodiscard]] std::vector<Arrival> parse_arrival_trace(std::istream& in);
[[nodiscard]] std::vector<Arrival> parse_arrival_trace(
    const std::string& text);

// Drains a generator to completion (testing / trace capture helper).
[[nodiscard]] std::vector<Arrival> drain(ArrivalGenerator& gen);

}  // namespace echelon::service
