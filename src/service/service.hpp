// Long-running scheduler daemon over the batch simulator (DESIGN.md §13).
//
// ServiceLoop turns run_experiment's one-shot pipeline into a streaming
// control loop: job arrivals are pulled from an ArrivalGenerator, pushed
// through pluggable admission control (admission.hpp), placed and launched
// incrementally (the exact rank-packing of run_experiment, applied in
// launch order), and interleaved with periodic control ticks that force a
// scheduler pass. The loop is *pull-driven*: every run of the simulator
// stops at a deterministic boundary -- the next arrival instant or the next
// control tick t_k = k * control_period -- so two ServiceLoops fed the same
// configuration and arrival stream execute the identical event history and
// produce bit-identical results and trace streams. That is the invariant
// the snapshot/restore layer (snapshot.hpp) is built on: a restored loop
// replays its arrival journal through this same step loop and must land on
// a bitwise-equal simulator state.

#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/experiment.hpp"
#include "cluster/job.hpp"
#include "common/units.hpp"
#include "faultsim/fault_plan.hpp"
#include "faultsim/injector.hpp"
#include "netsim/simulator.hpp"
#include "netsim/workflow.hpp"
#include "obs/expose.hpp"
#include "obs/flightrec.hpp"
#include "obs/metrics.hpp"
#include "obs/stream.hpp"
#include "obs/trace.hpp"
#include "runtime/coordinator.hpp"
#include "runtime/priority_queue.hpp"
#include "service/admission.hpp"
#include "service/arrivals.hpp"
#include "service/slo.hpp"
#include "topology/builders.hpp"

namespace echelon::service {

// Deterministic service-plane telemetry (DESIGN.md §15). Everything here
// except `profile` is a pure function of simulated time, so it is part of
// the snapshot wire format and a restored loop rebuilds identical
// telemetry state by journal replay. Output *attachments* (file targets)
// are per-process and live in TelemetryOutputs instead.
struct TelemetryConfig {
  // Interval between telemetry flushes in simulated seconds (0 = never).
  // A flush renders service.* counters/gauges/series into the internal
  // telemetry registry and, when outputs are attached, writes the
  // Prometheus exposition and appends one trace chunk.
  Duration metrics_every = 0.0;
  // Retention cap per telemetry series (obs::Series decimation; 0 = off).
  std::size_t series_budget = 0;
  // Flight-recorder ring capacity (0 = recorder off).
  std::size_t flightrec_capacity = 0;
  SloConfig slo;  // no objectives = SLO tracking off
  // Control-plane self-profiling (wall clock). Profile data lives in a
  // separate registry, is never serialized and never appears in the
  // Prometheus exposition, so enabling it cannot perturb determinism.
  bool profile = false;

  [[nodiscard]] bool enabled() const noexcept {
    return metrics_every > 0.0 || flightrec_capacity > 0 || slo.enabled() ||
           profile;
  }
};

// Per-process telemetry output attachments (never serialized; reattach
// after snapshot restore via RestoreOptions).
struct TelemetryOutputs {
  obs::PromWriter* prom = nullptr;         // exposition file target
  obs::TraceChunkWriter* chunk = nullptr;  // chunked trace, flushed per flush
  std::string flightrec_path;  // post-mortem dump target ("" = none)
};

struct ServiceConfig {
  cluster::SchedulerKind scheduler = cluster::SchedulerKind::kEchelonMadd;
  cluster::FabricKind fabric = cluster::FabricKind::kBigSwitch;
  int hosts = 16;
  BytesPerSec port_capacity = gbps(25);
  double oversubscription = 1.0;  // leaf-spine only
  bool coflow_work_conserving = true;
  int priority_queues = 0;
  netsim::SimLoopMode loop_mode = netsim::SimLoopMode::kLazy;
  netsim::AllocMode alloc_mode = netsim::AllocMode::kIncremental;
  netsim::FillMode fill_mode = netsim::FillMode::kClass;
  netsim::SchedMode sched_mode = netsim::SchedMode::kIncremental;
  unsigned threads = 1;

  // Interval between forced control passes while work is outstanding.
  Duration control_period = 0.01;
  AdmissionConfig admission;

  // Optional deterministic fault script; must outlive the loop (snapshot
  // restore hands ownership of the reparsed plan to the loop instead).
  const faultsim::FaultPlan* fault_plan = nullptr;

  // Observability (read-only emitters; never affect results).
  obs::TraceSink* trace_sink = nullptr;
  obs::TraceDetail trace_detail = obs::TraceDetail::kOff;
  obs::MetricsRegistry* metrics = nullptr;

  // Service-plane telemetry (read-only over sim state; never affects
  // results -- pinned by tests/test_service_telemetry.cpp).
  TelemetryConfig telemetry;
};

// One consumed arrival plus the admission decision made for it. The journal
// of these is the durable half of a snapshot: replaying it through the step
// loop reconstructs all service and simulator state.
struct JournalEntry {
  AdmissionOutcome outcome = AdmissionOutcome::kAdmitted;
  Arrival arrival;
};

struct ServiceJobRecord {
  workload::Paradigm paradigm = workload::Paradigm::kDpAllReduce;
  SimTime submitted = 0.0;  // arrival instant (admission time)
  SimTime started = 0.0;    // launch instant (== submitted unless queued)
  SimTime finish = 0.0;     // workflow completion; 0 while running
  bool finished = false;
  // Latched by the SLO tracker when the job outlives a kJct objective's
  // threshold while still running (sticky; only set with SLO telemetry on).
  bool deadline_at_risk = false;
};

struct ServiceResult {
  std::string scheduler_name;
  SimTime end = 0.0;
  Duration total_tardiness = 0.0;
  Duration weighted_total_tardiness = 0.0;
  std::uint64_t control_invocations = 0;

  std::uint64_t arrivals = 0;
  std::uint64_t admitted = 0;
  std::uint64_t queued = 0;
  std::uint64_t rejected = 0;
  std::uint64_t launched = 0;
  std::uint64_t completed = 0;
  std::uint64_t steps = 0;
  std::uint64_t control_ticks = 0;
  // Jobs ever flagged deadline-at-risk (0 unless SLO telemetry is on).
  std::uint64_t deadline_at_risk = 0;
  // Telemetry flushes performed (0 with telemetry off).
  std::uint64_t telemetry_flushes = 0;
  double wall_ms = 0.0;

  // Bitwise-comparable behavioural signature: every flow's completion time
  // in FlowId order, plus the per-job lifecycle records in launch order.
  std::vector<SimTime> flow_finish;
  std::vector<ServiceJobRecord> jobs;
};

class ServiceLoop {
 public:
  explicit ServiceLoop(const ServiceConfig& config);
  // Variant for restored snapshots: the loop owns the reparsed fault plan.
  ServiceLoop(const ServiceConfig& config,
              std::optional<faultsim::FaultPlan> owned_plan);
  ~ServiceLoop();

  ServiceLoop(const ServiceLoop&) = delete;
  ServiceLoop& operator=(const ServiceLoop&) = delete;

  void set_generator(std::unique_ptr<ArrivalGenerator> gen);

  // Advances to the next boundary (arrival instant or control tick) and
  // processes it. Returns false -- without advancing -- once the arrival
  // stream is exhausted and no admitted or queued work remains. Throws
  // std::logic_error if the generator emits a time-non-monotone arrival or
  // one in the simulator's past (the same-instant ordering contract).
  bool step();

  // Runs the loop to completion: steps until idle, then drains any leftover
  // events (fault-plan timers past the last completion). Returns the final
  // simulation time.
  SimTime drain();

  [[nodiscard]] ServiceResult result() const;

  // Publishes steady-state service metrics into the registry configured at
  // construction (no-op without one): counters service.*, queue-depth
  // gauge, decisions/sec and admission-rate gauges, per-group tardiness
  // histogram. Callable at any boundary.
  void publish_metrics() const;

  // --- snapshot surface (snapshot.cpp) ---
  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const std::vector<JournalEntry>& journal() const noexcept {
    return journal_;
  }
  [[nodiscard]] const ArrivalGenerator* generator() const noexcept {
    return gen_.get();
  }
  [[nodiscard]] const std::optional<Arrival>& pending_arrival()
      const noexcept {
    return pending_;
  }
  [[nodiscard]] const netsim::Simulator& sim() const noexcept { return sim_; }
  [[nodiscard]] netsim::Simulator& sim() noexcept { return sim_; }
  [[nodiscard]] const ef::Registry& registry() const noexcept {
    return *registry_;
  }
  [[nodiscard]] const netsim::NetworkScheduler& scheduler() const noexcept {
    return *scheduler_;
  }
  [[nodiscard]] const faultsim::FaultInjector* injector() const noexcept {
    return injector_.get();
  }
  [[nodiscard]] std::uint64_t steps_executed() const noexcept {
    return steps_;
  }
  [[nodiscard]] std::uint64_t tick_index() const noexcept {
    return tick_index_;
  }
  [[nodiscard]] std::uint64_t running() const noexcept { return running_; }
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return wait_queue_.size();
  }
  [[nodiscard]] std::uint64_t launched() const noexcept {
    return jobs_.size();
  }
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
  [[nodiscard]] std::uint64_t admitted_count() const noexcept {
    return admitted_;
  }
  [[nodiscard]] std::uint64_t queued_count() const noexcept {
    return queued_total_;
  }
  [[nodiscard]] std::uint64_t rejected_count() const noexcept {
    return rejected_;
  }
  [[nodiscard]] std::uint64_t control_ticks() const noexcept {
    return control_ticks_;
  }
  [[nodiscard]] std::size_t next_host_cursor() const noexcept {
    return next_host_;
  }
  [[nodiscard]] std::uint64_t last_launch_seq() const noexcept {
    return last_launch_seq_;
  }
  [[nodiscard]] SimTime last_arrival_at() const noexcept {
    return last_arrival_at_;
  }

  // --- service-plane telemetry (DESIGN.md §15) ---
  // Attach per-process output targets (prom file, chunked trace stream,
  // flight-recorder dump path). Telemetry *state* is config-driven and
  // deterministic; outputs only render it, so attaching or omitting them
  // never changes results.
  void attach_telemetry_outputs(TelemetryOutputs outputs);
  [[nodiscard]] const TelemetryOutputs& telemetry_outputs() const noexcept {
    return outputs_;
  }
  // Deterministic telemetry registry state / its Prometheus exposition.
  [[nodiscard]] obs::MetricsSnapshot telemetry_snapshot() const {
    return telemetry_.snapshot();
  }
  [[nodiscard]] std::string prom_exposition() const {
    return obs::to_prom_text(telemetry_.snapshot());
  }
  // Wall-clock self-profile (separate registry; empty unless
  // telemetry.profile is set).
  [[nodiscard]] obs::MetricsSnapshot profile_snapshot() const {
    return profile_.snapshot();
  }
  [[nodiscard]] const SloTracker* slo() const noexcept { return slo_.get(); }
  [[nodiscard]] const obs::FlightRecorder* flight() const noexcept {
    return flightrec_.get();
  }
  [[nodiscard]] std::uint64_t telemetry_flushes() const noexcept {
    return flushes_;
  }
  [[nodiscard]] std::uint64_t flush_index() const noexcept {
    return flush_index_;
  }
  [[nodiscard]] std::uint64_t faults_seen() const noexcept {
    return faults_seen_;
  }
  [[nodiscard]] std::uint64_t deadline_at_risk_count() const noexcept {
    return at_risk_;
  }
  // Forces one telemetry flush at the current sim time (e.g. after drain()
  // so the terminal exposition reflects end-of-run state). No-op when
  // telemetry is disabled; deterministic like the periodic flushes.
  void flush_now();
  // Snapshot restore support: replay rebuilds every flight event except the
  // kSnapshot markers earlier saves injected into the original ring, so
  // restore overwrites the ring verbatim (snapshot.cpp kTelemetry section).
  [[nodiscard]] obs::FlightRecorder* mutable_flight() noexcept {
    return flightrec_.get();
  }
  // Records a snapshot-boundary marker in the flight ring. Call *after*
  // saving, so the saved image (and hence a restored ring) matches an
  // uninterrupted run that never snapshotted.
  void note_snapshot();
  // Records an error event and, when a flight dump path is attached, writes
  // the post-mortem file. Called automatically when step() throws; public
  // so drivers can report out-of-loop failures (e.g. SnapshotError).
  void note_error(std::string_view what);
  void dump_flight(std::ostream& os) const;
  // Self-profiling hook for externally-timed phases (snapshot save in the
  // CLI). No-op unless telemetry.profile is on.
  void record_phase_ms(std::string_view phase, double ms);

  // Restore plumbing (snapshot.cpp only): journal replay with outcome
  // cross-checking, then reattachment of the live generator + observability.
  void begin_replay(const std::vector<JournalEntry>& expected);
  void end_replay(std::unique_ptr<ArrivalGenerator> gen,
                  std::optional<Arrival> pending);
  void attach_observability(obs::TraceSink* sink, obs::TraceDetail detail,
                            obs::MetricsRegistry* metrics);

 private:
  struct LiveJob {
    cluster::JobSpec spec;
    SimTime submitted = 0.0;
    workload::GeneratedJob generated;
    std::unique_ptr<netsim::WorkflowEngine> engine;
    ServiceJobRecord record;
    // EchelonFlow group id range [group_begin, group_end) this job created
    // in the registry (tardiness attribution for SLO samples).
    std::size_t group_begin = 0;
    std::size_t group_end = 0;
  };

  void build_stack();
  void refill_pending();
  bool step_impl();
  void telemetry_boundary();
  void flush_telemetry(SimTime now);
  void mark_deadline_risk(SimTime now);
  void handle_arrivals_at(SimTime at);
  void admit(Arrival arrival);
  void launch_job(const cluster::JobSpec& spec, SimTime submitted,
                  SimTime start);
  void job_finished(std::size_t index);

  ServiceConfig config_;
  std::optional<faultsim::FaultPlan> owned_plan_;
  topology::BuiltFabric fabric_;
  netsim::Simulator sim_;

  ef::Registry standalone_registry_;
  std::unique_ptr<runtime::Coordinator> coordinator_;
  std::unique_ptr<netsim::NetworkScheduler> policy_;
  std::unique_ptr<runtime::PriorityQueueEnforcer> pq_;
  ef::Registry* registry_ = nullptr;
  netsim::NetworkScheduler* scheduler_ = nullptr;
  std::unique_ptr<faultsim::FaultInjector> injector_;

  std::unique_ptr<ArrivalGenerator> gen_;
  std::optional<Arrival> pending_;
  std::vector<JournalEntry> journal_;
  std::deque<Arrival> wait_queue_;
  std::vector<std::unique_ptr<LiveJob>> jobs_;  // stable addresses (engines
                                                // point into their workflow)

  std::size_t next_host_ = 0;
  std::uint64_t running_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t queued_total_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t steps_ = 0;
  std::uint64_t tick_index_ = 0;
  std::uint64_t control_ticks_ = 0;
  // Same-instant submission-order guard (ISSUE 9 satellite): the event-queue
  // sequence floor of the most recent launch; a later launch scheduling
  // below it would break the pop_due tie-break contract.
  std::uint64_t last_launch_seq_ = 0;
  SimTime last_arrival_at_ = -kTimeInfinity;
  double wall_ms_ = 0.0;

  // --- service-plane telemetry (DESIGN.md §15) ---
  // Deterministic telemetry state: prom-exported registry, SLO tracker,
  // flight ring. Rebuilt identically by snapshot journal replay.
  obs::MetricsRegistry telemetry_;
  // Wall-clock self-profile; kept OUT of telemetry_ so the exposition
  // stays bit-reproducible. Never serialized.
  obs::MetricsRegistry profile_;
  std::unique_ptr<SloTracker> slo_;
  std::unique_ptr<obs::FlightRecorder> flightrec_;
  TelemetryOutputs outputs_;
  std::uint64_t flush_index_ = 0;  // floor(now / metrics_every) at last flush
  std::uint64_t flushes_ = 0;
  std::uint64_t faults_seen_ = 0;     // injector events_fired already noted
  std::uint64_t abandons_seen_ = 0;   // injector abandons already noted
  std::uint64_t at_risk_ = 0;         // jobs latched deadline-at-risk
  std::vector<double> link_util_scratch_;
  // Cached per-link series handles (stable registry node addresses),
  // resolved on the first flush so later flushes skip the name building.
  std::vector<obs::Series*> link_series_;

  const std::vector<JournalEntry>* replay_expected_ = nullptr;
};

}  // namespace echelon::service
