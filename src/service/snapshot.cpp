#include "service/snapshot.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "faultsim/fault_plan.hpp"
#include "workload/model.hpp"

namespace echelon::service {

namespace {

// Section tags, in required stream order.
enum : std::uint32_t {
  kConfigTag = 1,
  kArrivalsTag = 2,
  kGeneratorTag = 3,
  kServiceTag = 4,
  kVerifyTag = 5,
  kTelemetryTag = 6,
  kEndTag = 0xFFFFFFFFu,
};

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a(const char* data, std::size_t n,
                    std::uint64_t h = kFnvOffset) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t f64_bits(double v) noexcept {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double bits_f64(std::uint64_t bits) noexcept {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// ---------------------------------------------------------------------------
// Little-endian buffer writer / bounds-checked reader
// ---------------------------------------------------------------------------

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  void f64(double v) { u64(f64_bits(v)); }
  void str(const std::string& s) {
    u64(s.size());
    buf_.append(s);
  }
  void raw(const char* data, std::size_t n) { buf_.append(data, n); }

  [[nodiscard]] std::string take() { return std::move(buf_); }
  [[nodiscard]] const std::string& buffer() const noexcept { return buf_; }

 private:
  std::string buf_;
};

class Reader {
 public:
  Reader(const char* data, std::size_t size, std::string where)
      : data_(data), size_(size), where_(std::move(where)) {}

  [[nodiscard]] std::uint8_t u8(const char* what) {
    need(1, what);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  [[nodiscard]] std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  [[nodiscard]] std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  [[nodiscard]] double f64(const char* what) { return bits_f64(u64(what)); }
  [[nodiscard]] std::string str(const char* what) {
    const std::uint64_t n = u64(what);
    if (n > remaining()) {
      throw SnapshotError("snapshot: " + where_ + ": string length " +
                          std::to_string(n) + " for " + what +
                          " exceeds the " + std::to_string(remaining()) +
                          " bytes left at offset " + std::to_string(pos_));
    }
    std::string s(data_ + pos_, static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }
  void expect_exhausted(const char* what) const {
    if (pos_ != size_) {
      throw SnapshotError("snapshot: " + where_ + ": " +
                          std::to_string(size_ - pos_) +
                          " trailing bytes after " + what);
    }
  }

 private:
  void need(std::size_t n, const char* what) {
    if (size_ - pos_ < n) {
      throw SnapshotError("snapshot: " + where_ + ": truncated reading " +
                          what + " at offset " + std::to_string(pos_) +
                          " (need " + std::to_string(n) + ", have " +
                          std::to_string(size_ - pos_) + ")");
    }
  }

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::string where_;
};

// ---------------------------------------------------------------------------
// JobSpec / TraceConfig / Arrival payloads
// ---------------------------------------------------------------------------

void put_gpu(Writer& w, const workload::GpuSpec& g) {
  w.str(g.name);
  w.f64(g.peak_flops);
  w.f64(g.efficiency);
}

workload::GpuSpec get_gpu(Reader& r) {
  workload::GpuSpec g;
  g.name = r.str("gpu.name");
  g.peak_flops = r.f64("gpu.peak_flops");
  g.efficiency = r.f64("gpu.efficiency");
  return g;
}

void put_jobspec(Writer& w, const cluster::JobSpec& j) {
  w.u32(static_cast<std::uint32_t>(j.paradigm));
  w.u32(static_cast<std::uint32_t>(j.ranks));
  w.u32(static_cast<std::uint32_t>(j.iterations));
  w.u32(static_cast<std::uint32_t>(j.buckets));
  w.u32(static_cast<std::uint32_t>(j.micro_batches));
  w.u32(static_cast<std::uint32_t>(j.pp_schedule));
  w.f64(j.compute_jitter);
  w.u64(j.jitter_seed);
  w.f64(j.arrival);
  put_gpu(w, j.gpu);
  w.str(j.model.name);
  w.f64(j.model.bytes_per_element);
  w.u64(j.model.layers.size());
  for (const workload::LayerSpec& l : j.model.layers) {
    w.str(l.name);
    w.u64(l.params);
    w.f64(l.activation_bytes);
    w.f64(l.fwd_flops);
    w.f64(l.bwd_flops);
  }
}

cluster::JobSpec get_jobspec(Reader& r) {
  cluster::JobSpec j;
  const std::uint32_t paradigm = r.u32("job.paradigm");
  if (paradigm > static_cast<std::uint32_t>(workload::Paradigm::kExpert)) {
    throw SnapshotError("snapshot: job.paradigm " + std::to_string(paradigm) +
                        " is out of range");
  }
  j.paradigm = static_cast<workload::Paradigm>(paradigm);
  j.ranks = static_cast<int>(r.u32("job.ranks"));
  j.iterations = static_cast<int>(r.u32("job.iterations"));
  j.buckets = static_cast<int>(r.u32("job.buckets"));
  j.micro_batches = static_cast<int>(r.u32("job.micro_batches"));
  const std::uint32_t sched = r.u32("job.pp_schedule");
  if (sched > static_cast<std::uint32_t>(
                  workload::PipelineSchedule::kOneFOneB)) {
    throw SnapshotError("snapshot: job.pp_schedule " + std::to_string(sched) +
                        " is out of range");
  }
  j.pp_schedule = static_cast<workload::PipelineSchedule>(sched);
  j.compute_jitter = r.f64("job.compute_jitter");
  j.jitter_seed = r.u64("job.jitter_seed");
  j.arrival = r.f64("job.arrival");
  j.gpu = get_gpu(r);
  j.model.name = r.str("model.name");
  j.model.bytes_per_element = r.f64("model.bytes_per_element");
  const std::uint64_t layers = r.u64("model.layer_count");
  for (std::uint64_t l = 0; l < layers; ++l) {
    workload::LayerSpec spec;
    spec.name = r.str("layer.name");
    spec.params = r.u64("layer.params");
    spec.activation_bytes = r.f64("layer.activation_bytes");
    spec.fwd_flops = r.f64("layer.fwd_flops");
    spec.bwd_flops = r.f64("layer.bwd_flops");
    j.model.layers.push_back(std::move(spec));
  }
  return j;
}

void put_arrival(Writer& w, const Arrival& a) {
  w.f64(a.at);
  put_jobspec(w, a.job);
}

Arrival get_arrival(Reader& r) {
  Arrival a;
  a.at = r.f64("arrival.at");
  a.job = get_jobspec(r);
  return a;
}

void put_trace_config(Writer& w, const cluster::TraceConfig& c) {
  w.u32(static_cast<std::uint32_t>(c.num_jobs));
  w.f64(c.arrival_rate);
  w.u64(c.seed);
  w.u64(c.paradigm_weights.size());
  for (const double x : c.paradigm_weights) w.f64(x);
  w.u64(c.rank_choices.size());
  for (const int x : c.rank_choices) w.u32(static_cast<std::uint32_t>(x));
  w.u32(static_cast<std::uint32_t>(c.min_layers));
  w.u32(static_cast<std::uint32_t>(c.max_layers));
  w.u32(static_cast<std::uint32_t>(c.min_width));
  w.u32(static_cast<std::uint32_t>(c.max_width));
  w.u32(static_cast<std::uint32_t>(c.batch));
  w.u32(static_cast<std::uint32_t>(c.iterations));
  put_gpu(w, c.gpu);
}

cluster::TraceConfig get_trace_config(Reader& r) {
  cluster::TraceConfig c;
  c.num_jobs = static_cast<int>(r.u32("trace.num_jobs"));
  c.arrival_rate = r.f64("trace.arrival_rate");
  c.seed = r.u64("trace.seed");
  const std::uint64_t weights = r.u64("trace.weight_count");
  c.paradigm_weights.clear();
  for (std::uint64_t i = 0; i < weights; ++i) {
    c.paradigm_weights.push_back(r.f64("trace.weight"));
  }
  const std::uint64_t choices = r.u64("trace.rank_choice_count");
  c.rank_choices.clear();
  for (std::uint64_t i = 0; i < choices; ++i) {
    c.rank_choices.push_back(static_cast<int>(r.u32("trace.rank_choice")));
  }
  c.min_layers = static_cast<int>(r.u32("trace.min_layers"));
  c.max_layers = static_cast<int>(r.u32("trace.max_layers"));
  c.min_width = static_cast<int>(r.u32("trace.min_width"));
  c.max_width = static_cast<int>(r.u32("trace.max_width"));
  c.batch = static_cast<int>(r.u32("trace.batch"));
  c.iterations = static_cast<int>(r.u32("trace.iterations"));
  c.gpu = get_gpu(r);
  return c;
}

// ---------------------------------------------------------------------------
// Verification image: named (field, bits) pairs
// ---------------------------------------------------------------------------

struct ImageBuilder {
  std::vector<std::pair<std::string, std::uint64_t>> fields;

  void add(std::string name, std::uint64_t bits) {
    fields.emplace_back(std::move(name), bits);
  }
  void addf(std::string name, double v) { add(std::move(name), f64_bits(v)); }
};

void build_verify_image(const ServiceLoop& loop, ImageBuilder& img) {
  const netsim::Simulator& sim = loop.sim();
  img.addf("sim.now", sim.now());
  img.addf("sim.epoch_time", sim.epoch_time());
  img.add("sim.flow_count", sim.flow_count());
  img.add("sim.active_flow_count", sim.active_flow_count());
  img.add("sim.accounting_generation", sim.accounting_generation());
  img.add("sim.control_invocations", sim.control_invocations());
  img.add("sim.worker_count", sim.worker_count());

  img.add("events.size", sim.events().size());
  img.add("events.scheduled_seq", sim.events().scheduled_seq());
  // Order-insensitive fold over pending (at, seq) keys: callbacks are
  // opaque, but the pending key multiset pins the queue's future behaviour.
  std::uint64_t qdigest = 0;
  sim.events().for_each_pending([&](SimTime at, std::uint64_t seq) {
    std::uint64_t h = kFnvOffset;
    for (const std::uint64_t word : {f64_bits(at), seq}) {
      for (int i = 0; i < 8; ++i) {
        h ^= (word >> (8 * i)) & 0xff;
        h *= kFnvPrime;
      }
    }
    qdigest += h;
  });
  img.add("events.digest", qdigest);
  img.add("completion_heap.digest", sim.completion_heap_digest());

  const netsim::RateAllocator::Stats& as = sim.alloc_stats();
  img.add("alloc.passes", as.passes);
  img.add("alloc.components", as.components);
  img.add("alloc.components_reused", as.components_reused);
  img.add("alloc.components_filled", as.components_filled);
  img.add("alloc.classes", as.classes);
  img.add("alloc.class_members", as.class_members);

  const netsim::SchedStats& ss = loop.scheduler().sched_stats();
  img.add("sched.passes", ss.passes);
  img.add("sched.full_passes", ss.full_passes);
  img.add("sched.scoped_passes", ss.scoped_passes);
  img.add("sched.pass_skips", ss.pass_skips);
  img.add("sched.groups_seen", ss.groups_seen);
  img.add("sched.groups_scheduled", ss.groups_scheduled);
  img.add("sched.groups_reused", ss.groups_reused);

  const topology::RouteTable::Stats& rs = sim.routes().stats();
  img.add("routes.size", sim.routes().size());
  img.add("routes.lookups", rs.lookups);
  img.add("routes.hits", rs.hits);
  img.add("routes.computations", rs.computations);
  img.add("routes.unreachable", rs.unreachable);

  img.add("registry.size", loop.registry().size());
  img.addf("registry.total_tardiness", loop.registry().total_tardiness());
  img.addf("registry.weighted_total_tardiness",
           loop.registry().weighted_total_tardiness());

  const faultsim::FaultInjector* inj = loop.injector();
  img.add("fault.present", inj != nullptr ? 1 : 0);
  if (inj != nullptr) {
    const faultsim::FaultSummary& fs = inj->summary();
    img.add("fault.events_fired", fs.events_fired);
    img.add("fault.reroutes", fs.reroutes);
    img.add("fault.parks", fs.parks);
    img.add("fault.retries", fs.retries);
    img.add("fault.resumes", fs.resumes);
    img.add("fault.abandoned", fs.abandoned);
    img.addf("fault.downtime", fs.downtime);
  }

  img.add("service.steps", loop.steps_executed());
  img.add("service.tick_index", loop.tick_index());
  img.add("service.control_ticks", loop.control_ticks());
  img.add("service.running", loop.running());
  img.add("service.completed", loop.completed());
  img.add("service.admitted", loop.admitted_count());
  img.add("service.queued", loop.queued_count());
  img.add("service.rejected", loop.rejected_count());
  img.add("service.queue_depth", loop.queue_depth());
  img.add("service.launched", loop.launched());
  img.add("service.next_host", loop.next_host_cursor());
  img.add("service.last_launch_seq", loop.last_launch_seq());
  img.addf("service.last_arrival_at", loop.last_arrival_at());

  for (std::size_t i = 0; i < sim.flow_count(); ++i) {
    const netsim::Flow& f = sim.flow(FlowId{i});
    const std::string p = "flow[" + std::to_string(i) + "].";
    img.add(p + "state", static_cast<std::uint64_t>(f.state));
    img.add(p + "entered", f.entered ? 1 : 0);
    img.addf(p + "remaining", f.remaining);
    img.addf(p + "rate", f.rate);
    img.addf(p + "start_time", f.start_time);
    img.addf(p + "finish_time", f.finish_time);
    img.addf(p + "weight", f.weight);
    img.add(p + "has_rate_cap", f.rate_cap.has_value() ? 1 : 0);
    img.addf(p + "rate_cap", f.rate_cap.value_or(-1.0));
    img.add(p + "route",
            f.route.valid() ? f.route.value() : ~std::uint64_t{0});
    std::uint64_t pdigest = kFnvOffset;
    for (const LinkId link : f.path) {
      const std::uint64_t word = link.value();
      for (int b = 0; b < 8; ++b) {
        pdigest ^= (word >> (8 * b)) & 0xff;
        pdigest *= kFnvPrime;
      }
    }
    img.add(p + "path_len", f.path.size());
    img.add(p + "path_digest", pdigest);
  }
}

// Telemetry state (except the flight ring, below) is rebuilt by journal
// replay -- it is a pure function of config + journal -- so this image pins
// the rebuild bit-for-bit, including the exact Prometheus exposition bytes
// a flush would produce.
void build_telemetry_image(const ServiceLoop& loop, ImageBuilder& img) {
  img.add("telemetry.flushes", loop.telemetry_flushes());
  img.add("telemetry.flush_index", loop.flush_index());
  img.add("telemetry.faults_seen", loop.faults_seen());
  img.add("telemetry.deadline_at_risk", loop.deadline_at_risk_count());
  const SloTracker* slo = loop.slo();
  img.add("telemetry.slo.present", slo != nullptr ? 1 : 0);
  img.add("telemetry.slo.digest", slo != nullptr ? slo->digest() : 0);
  img.add("telemetry.flight.present", loop.flight() != nullptr ? 1 : 0);
  const std::string prom = loop.prom_exposition();
  img.add("telemetry.prom.size", prom.size());
  img.add("telemetry.prom.digest", fnv1a(prom.data(), prom.size()));
}

// The flight ring is the one piece of telemetry state replay cannot
// re-derive: earlier periodic saves injected kSnapshot markers into the
// original run's ring, and replay (which never snapshots) would rebuild a
// ring without them. It is serialized verbatim and restored by overwrite.
void put_flight_ring(Writer& w, const obs::FlightRecorder* fr) {
  w.u8(fr != nullptr ? 1 : 0);
  if (fr == nullptr) return;
  w.u64(fr->capacity());
  w.u64(fr->recorded());
  w.u32(static_cast<std::uint32_t>(obs::kFlightKindCount));
  for (int k = 0; k < obs::kFlightKindCount; ++k) {
    w.u64(fr->count(static_cast<obs::FlightKind>(k)));
  }
  const std::vector<obs::FlightEvent> events = fr->events();
  w.u64(events.size());
  for (const obs::FlightEvent& ev : events) {
    w.u32(static_cast<std::uint32_t>(ev.kind));
    w.f64(ev.t);
    w.u64(ev.a);
    w.u64(ev.b);
    w.str(ev.note);
  }
  w.u64(fr->ring_digest());
}

void get_flight_ring(Reader& r, ServiceLoop& loop) {
  const bool present = r.u8("telemetry.flight.present") != 0;
  obs::FlightRecorder* fr = loop.mutable_flight();
  if (!present) {
    if (fr != nullptr) {
      throw SnapshotError(
          "snapshot telemetry: restored loop has a flight recorder but the "
          "snapshot recorded none");
    }
    return;
  }
  if (fr == nullptr) {
    throw SnapshotError(
        "snapshot telemetry: snapshot carries a flight ring but the "
        "restored loop has no recorder");
  }
  const std::uint64_t capacity = r.u64("telemetry.flight.capacity");
  if (capacity != fr->capacity()) {
    throw SnapshotError("snapshot telemetry: flight ring capacity " +
                        std::to_string(capacity) +
                        " does not match the configured " +
                        std::to_string(fr->capacity()));
  }
  const std::uint64_t recorded = r.u64("telemetry.flight.recorded");
  const std::uint32_t kind_count = r.u32("telemetry.flight.kind_count");
  if (kind_count != static_cast<std::uint32_t>(obs::kFlightKindCount)) {
    throw SnapshotError("snapshot telemetry: flight ring has " +
                        std::to_string(kind_count) + " event kinds, built " +
                        std::to_string(obs::kFlightKindCount));
  }
  std::vector<std::uint64_t> counts;
  for (std::uint32_t k = 0; k < kind_count; ++k) {
    counts.push_back(r.u64("telemetry.flight.count"));
  }
  const std::uint64_t n = r.u64("telemetry.flight.event_count");
  if (n > capacity) {
    throw SnapshotError("snapshot telemetry: flight ring holds " +
                        std::to_string(n) + " events, more than capacity " +
                        std::to_string(capacity));
  }
  std::vector<obs::FlightEvent> events;
  events.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    obs::FlightEvent ev;
    const std::uint32_t kind = r.u32("telemetry.flight.kind");
    if (kind >= static_cast<std::uint32_t>(obs::kFlightKindCount)) {
      throw SnapshotError("snapshot telemetry: flight event kind " +
                          std::to_string(kind) + " is out of range");
    }
    ev.kind = static_cast<obs::FlightKind>(kind);
    ev.t = r.f64("telemetry.flight.t");
    ev.a = r.u64("telemetry.flight.a");
    ev.b = r.u64("telemetry.flight.b");
    ev.note = r.str("telemetry.flight.note");
    events.push_back(std::move(ev));
  }
  const std::uint64_t digest = r.u64("telemetry.flight.digest");
  fr->restore(recorded, counts, std::move(events));
  if (fr->ring_digest() != digest) {
    throw SnapshotError(
        "snapshot telemetry: restored flight ring digest mismatch -- the "
        "serialized ring did not round-trip");
  }
}

void put_image(Writer& w, const ImageBuilder& img) {
  w.u64(img.fields.size());
  for (const auto& [name, bits] : img.fields) {
    w.str(name);
    w.u64(bits);
  }
}

// Compares a saved image against the restored loop's recomputed one.
void verify_image(Reader& r, const ImageBuilder& fresh, const char* what) {
  const std::uint64_t saved_count = r.u64("verify.field_count");
  if (saved_count != fresh.fields.size()) {
    throw SnapshotError("snapshot " + std::string(what) + ": image has " +
                        std::to_string(saved_count) +
                        " fields, restored state has " +
                        std::to_string(fresh.fields.size()));
  }
  for (std::uint64_t i = 0; i < saved_count; ++i) {
    const std::string name = r.str("verify.field_name");
    const std::uint64_t bits = r.u64("verify.field_bits");
    const auto& [fresh_name, fresh_bits] = fresh.fields[i];
    if (name != fresh_name) {
      throw SnapshotError("snapshot " + std::string(what) + ": field " +
                          std::to_string(i) + " is '" + name +
                          "' in the image but '" + fresh_name +
                          "' in the restored state");
    }
    if (bits != fresh_bits) {
      throw SnapshotError(
          "snapshot " + std::string(what) + ": '" + name +
          "' mismatch: saved 0x" +
          [](std::uint64_t v) {
            std::ostringstream os;
            os << std::hex << v;
            return os.str();
          }(bits) +
          " restored 0x" +
          [](std::uint64_t v) {
            std::ostringstream os;
            os << std::hex << v;
            return os.str();
          }(fresh_bits) +
          " -- restored run diverged from the checkpointed one");
    }
  }
}

// ---------------------------------------------------------------------------
// Generator state
// ---------------------------------------------------------------------------

enum : std::uint8_t {
  kGenNone = 0,
  kGenPoisson = 1,
  kGenTraceFile = 2,
};

void put_generator(Writer& w, const ServiceLoop& loop) {
  const ArrivalGenerator* gen = loop.generator();
  if (const auto* p = dynamic_cast<const PoissonArrivalGenerator*>(gen)) {
    w.u8(kGenPoisson);
    put_trace_config(w, p->config());
    w.u32(static_cast<std::uint32_t>(p->burst_every()));
    for (const std::uint64_t word : p->rng().state()) w.u64(word);
    w.f64(p->clock());
    w.u32(static_cast<std::uint32_t>(p->emitted()));
  } else if (const auto* t =
                 dynamic_cast<const TraceFileArrivalReader*>(gen)) {
    w.u8(kGenTraceFile);
    w.str(t->path());
    w.u64(t->index());
  } else {
    // No generator, an exhausted external one, or a test-injected kind the
    // snapshot cannot persist; restore resumes with no further arrivals.
    w.u8(kGenNone);
  }
  const std::optional<Arrival>& pending = loop.pending_arrival();
  w.u8(pending.has_value() ? 1 : 0);
  if (pending.has_value()) put_arrival(w, *pending);
}

struct GeneratorState {
  std::unique_ptr<ArrivalGenerator> gen;
  std::optional<Arrival> pending;
};

GeneratorState get_generator(Reader& r) {
  GeneratorState out;
  const std::uint8_t kind = r.u8("generator.kind");
  switch (kind) {
    case kGenNone:
      break;
    case kGenPoisson: {
      const cluster::TraceConfig cfg = get_trace_config(r);
      const int burst = static_cast<int>(r.u32("generator.burst_every"));
      std::array<std::uint64_t, 4> state{};
      for (std::uint64_t& word : state) word = r.u64("generator.rng_word");
      const double clock = r.f64("generator.clock");
      const int emitted = static_cast<int>(r.u32("generator.emitted"));
      auto gen = std::make_unique<PoissonArrivalGenerator>(cfg, burst);
      gen->restore(state, clock, emitted);
      out.gen = std::move(gen);
      break;
    }
    case kGenTraceFile: {
      const std::string path = r.str("generator.path");
      const std::uint64_t index = r.u64("generator.index");
      auto gen = std::make_unique<TraceFileArrivalReader>(path);
      if (index > gen->size()) {
        throw SnapshotError("snapshot: trace generator index " +
                            std::to_string(index) + " exceeds the " +
                            std::to_string(gen->size()) + " arrivals in " +
                            path);
      }
      gen->seek(static_cast<std::size_t>(index));
      out.gen = std::move(gen);
      break;
    }
    default:
      throw SnapshotError("snapshot: unknown generator kind " +
                          std::to_string(kind));
  }
  if (r.u8("generator.has_pending") != 0) out.pending = get_arrival(r);
  r.expect_exhausted("generator section");
  return out;
}

// Journal replay source: yields the consumed arrivals back in order.
class JournalReplayGenerator final : public ArrivalGenerator {
 public:
  explicit JournalReplayGenerator(std::vector<Arrival> arrivals)
      : arrivals_(std::move(arrivals)) {}
  std::optional<Arrival> next() override {
    if (index_ >= arrivals_.size()) return std::nullopt;
    return arrivals_[index_++];
  }
  const char* kind() const noexcept override { return "journal-replay"; }

 private:
  std::vector<Arrival> arrivals_;
  std::size_t index_ = 0;
};

void put_section(Writer& w, std::uint32_t tag, const std::string& payload) {
  w.u32(tag);
  w.u64(payload.size());
  w.raw(payload.data(), payload.size());
}

}  // namespace

// ---------------------------------------------------------------------------
// save
// ---------------------------------------------------------------------------

std::string save_snapshot(const ServiceLoop& loop) {
  Writer out;
  out.raw(kSnapshotMagic, sizeof(kSnapshotMagic));
  out.u32(kSnapshotVersion);

  {
    Writer w;
    const ServiceConfig& c = loop.config();
    w.u32(static_cast<std::uint32_t>(c.scheduler));
    w.u32(static_cast<std::uint32_t>(c.fabric));
    w.u32(static_cast<std::uint32_t>(c.hosts));
    w.f64(c.port_capacity);
    w.f64(c.oversubscription);
    w.u8(c.coflow_work_conserving ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(c.priority_queues));
    w.u32(static_cast<std::uint32_t>(c.loop_mode));
    w.u32(static_cast<std::uint32_t>(c.alloc_mode));
    w.u32(static_cast<std::uint32_t>(c.fill_mode));
    w.u32(static_cast<std::uint32_t>(c.sched_mode));
    w.u32(c.threads);
    w.f64(c.control_period);
    w.u32(static_cast<std::uint32_t>(c.admission.policy));
    w.u64(c.admission.max_running);
    w.u64(c.admission.queue_cap);
    w.f64(c.admission.tardiness_limit);
    w.str(c.fault_plan != nullptr ? faultsim::serialize(*c.fault_plan)
                                  : std::string{});
    const TelemetryConfig& tc = c.telemetry;
    w.f64(tc.metrics_every);
    w.u64(tc.series_budget);
    w.u64(tc.flightrec_capacity);
    w.u8(tc.profile ? 1 : 0);
    w.f64(tc.slo.window);
    w.u32(static_cast<std::uint32_t>(tc.slo.objectives.size()));
    for (const SloObjective& o : tc.slo.objectives) {
      w.u32(static_cast<std::uint32_t>(o.kind));
      w.f64(o.threshold);
      w.f64(o.budget);
    }
    put_section(out, kConfigTag, w.take());
  }
  {
    Writer w;
    w.u64(loop.journal().size());
    for (const JournalEntry& e : loop.journal()) {
      w.u8(static_cast<std::uint8_t>(e.outcome));
      put_arrival(w, e.arrival);
    }
    put_section(out, kArrivalsTag, w.take());
  }
  {
    Writer w;
    put_generator(w, loop);
    put_section(out, kGeneratorTag, w.take());
  }
  {
    Writer w;
    w.u64(loop.steps_executed());
    w.u64(loop.tick_index());
    w.u64(loop.journal().size());
    w.f64(loop.last_arrival_at());
    w.f64(loop.sim().now());
    put_section(out, kServiceTag, w.take());
  }
  {
    Writer w;
    ImageBuilder img;
    build_verify_image(loop, img);
    put_image(w, img);
    put_section(out, kVerifyTag, w.take());
  }
  {
    Writer w;
    ImageBuilder img;
    build_telemetry_image(loop, img);
    put_image(w, img);
    put_flight_ring(w, loop.flight());
    put_section(out, kTelemetryTag, w.take());
  }

  out.u32(kEndTag);
  const std::uint64_t checksum =
      fnv1a(out.buffer().data(), out.buffer().size());
  out.u64(checksum);
  return out.take();
}

void save_snapshot_file(const ServiceLoop& loop, const std::string& path) {
  const std::string bytes = save_snapshot(loop);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw SnapshotError("snapshot: cannot open " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) throw SnapshotError("snapshot: short write to " + path);
}

// ---------------------------------------------------------------------------
// restore
// ---------------------------------------------------------------------------

std::unique_ptr<ServiceLoop> restore_snapshot(const std::string& bytes,
                                              const RestoreOptions& options) {
  // Header and integrity first: nothing past this point sees unchecksummed
  // bytes, so a flipped bit can never parse into a half-restored loop.
  constexpr std::size_t kHeader = sizeof(kSnapshotMagic) + 4;
  constexpr std::size_t kTrailer = 4 + 8;  // end tag + checksum
  if (bytes.size() < kHeader + kTrailer) {
    throw SnapshotError("snapshot: " + std::to_string(bytes.size()) +
                        " bytes is too short to be a snapshot");
  }
  if (std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) !=
      0) {
    throw SnapshotError("snapshot: bad magic (not an ECHSNAP1 snapshot)");
  }
  Reader header(bytes.data() + sizeof(kSnapshotMagic), 4, "header");
  const std::uint32_t version = header.u32("version");
  if (version != kSnapshotVersion) {
    throw SnapshotError("snapshot: unsupported version " +
                        std::to_string(version) + " (expected " +
                        std::to_string(kSnapshotVersion) + ")");
  }
  {
    Reader tail(bytes.data() + bytes.size() - 8, 8, "trailer");
    const std::uint64_t recorded = tail.u64("checksum");
    const std::uint64_t actual = fnv1a(bytes.data(), bytes.size() - 8);
    if (recorded != actual) {
      std::ostringstream os;
      os << "snapshot: checksum mismatch (recorded 0x" << std::hex << recorded
         << ", computed 0x" << actual << ") -- corrupt or truncated";
      throw SnapshotError(os.str());
    }
  }

  Reader r(bytes.data() + kHeader, bytes.size() - kHeader - 8, "body");
  auto open_section = [&r](std::uint32_t want,
                           const char* name) -> std::string {
    const std::uint32_t tag = r.u32("section tag");
    if (tag != want) {
      throw SnapshotError("snapshot: expected section " + std::string(name) +
                          " (tag " + std::to_string(want) + "), found tag " +
                          std::to_string(tag));
    }
    const std::uint64_t len = r.u64("section length");
    if (len > r.remaining()) {
      throw SnapshotError("snapshot: section " + std::string(name) +
                          " claims " + std::to_string(len) +
                          " bytes but only " + std::to_string(r.remaining()) +
                          " remain");
    }
    std::string payload;
    for (std::uint64_t i = 0; i < len; ++i) {
      payload.push_back(static_cast<char>(r.u8("section payload")));
    }
    return payload;
  };

  // kConfig
  ServiceConfig config;
  std::optional<faultsim::FaultPlan> plan;
  {
    const std::string payload = open_section(kConfigTag, "config");
    Reader c(payload.data(), payload.size(), "config");
    const std::uint32_t sched = c.u32("config.scheduler");
    if (sched >
        static_cast<std::uint32_t>(cluster::SchedulerKind::kCoordinator)) {
      throw SnapshotError("snapshot: config.scheduler " +
                          std::to_string(sched) + " is out of range");
    }
    config.scheduler = static_cast<cluster::SchedulerKind>(sched);
    const std::uint32_t fabric = c.u32("config.fabric");
    if (fabric > static_cast<std::uint32_t>(cluster::FabricKind::kLeafSpine)) {
      throw SnapshotError("snapshot: config.fabric " +
                          std::to_string(fabric) + " is out of range");
    }
    config.fabric = static_cast<cluster::FabricKind>(fabric);
    config.hosts = static_cast<int>(c.u32("config.hosts"));
    config.port_capacity = c.f64("config.port_capacity");
    config.oversubscription = c.f64("config.oversubscription");
    config.coflow_work_conserving = c.u8("config.coflow_work_conserving") != 0;
    config.priority_queues = static_cast<int>(c.u32("config.priority_queues"));
    const std::uint32_t loop_mode = c.u32("config.loop_mode");
    if (loop_mode > static_cast<std::uint32_t>(
                        netsim::SimLoopMode::kEagerScan)) {
      throw SnapshotError("snapshot: config.loop_mode is out of range");
    }
    config.loop_mode = static_cast<netsim::SimLoopMode>(loop_mode);
    const std::uint32_t alloc = c.u32("config.alloc_mode");
    if (alloc >
        static_cast<std::uint32_t>(netsim::AllocMode::kIncremental)) {
      throw SnapshotError("snapshot: config.alloc_mode is out of range");
    }
    config.alloc_mode = static_cast<netsim::AllocMode>(alloc);
    const std::uint32_t fill = c.u32("config.fill_mode");
    if (fill > static_cast<std::uint32_t>(netsim::FillMode::kClass)) {
      throw SnapshotError("snapshot: config.fill_mode is out of range");
    }
    config.fill_mode = static_cast<netsim::FillMode>(fill);
    const std::uint32_t smode = c.u32("config.sched_mode");
    if (smode >
        static_cast<std::uint32_t>(netsim::SchedMode::kIncremental)) {
      throw SnapshotError("snapshot: config.sched_mode is out of range");
    }
    config.sched_mode = static_cast<netsim::SchedMode>(smode);
    config.threads = c.u32("config.threads");
    config.control_period = c.f64("config.control_period");
    const std::uint32_t policy = c.u32("config.admission.policy");
    if (policy >
        static_cast<std::uint32_t>(AdmissionPolicy::kTardinessAware)) {
      throw SnapshotError("snapshot: config.admission.policy " +
                          std::to_string(policy) + " is out of range");
    }
    config.admission.policy = static_cast<AdmissionPolicy>(policy);
    config.admission.max_running = c.u64("config.admission.max_running");
    config.admission.queue_cap = c.u64("config.admission.queue_cap");
    config.admission.tardiness_limit =
        c.f64("config.admission.tardiness_limit");
    const std::string plan_text = c.str("config.fault_plan");
    config.telemetry.metrics_every = c.f64("config.telemetry.metrics_every");
    config.telemetry.series_budget = c.u64("config.telemetry.series_budget");
    config.telemetry.flightrec_capacity =
        c.u64("config.telemetry.flightrec_capacity");
    config.telemetry.profile = c.u8("config.telemetry.profile") != 0;
    config.telemetry.slo.window = c.f64("config.telemetry.slo.window");
    const std::uint32_t slo_count =
        c.u32("config.telemetry.slo.objective_count");
    for (std::uint32_t i = 0; i < slo_count; ++i) {
      SloObjective o;
      const std::uint32_t kind = c.u32("config.telemetry.slo.kind");
      if (kind >= static_cast<std::uint32_t>(kSloKindCount)) {
        throw SnapshotError("snapshot: SLO objective kind " +
                            std::to_string(kind) + " is out of range");
      }
      o.kind = static_cast<SloKind>(kind);
      o.threshold = c.f64("config.telemetry.slo.threshold");
      o.budget = c.f64("config.telemetry.slo.budget");
      config.telemetry.slo.objectives.push_back(o);
    }
    c.expect_exhausted("config section");
    if (!plan_text.empty()) {
      try {
        plan = faultsim::parse_fault_plan(plan_text);
      } catch (const std::invalid_argument& e) {
        throw SnapshotError(
            std::string("snapshot: embedded fault plan failed to parse: ") +
            e.what());
      }
    }
  }

  // kArrivals
  std::vector<JournalEntry> journal;
  {
    const std::string payload = open_section(kArrivalsTag, "arrivals");
    Reader a(payload.data(), payload.size(), "arrivals");
    const std::uint64_t count = a.u64("journal.count");
    for (std::uint64_t i = 0; i < count; ++i) {
      JournalEntry e;
      const std::uint8_t outcome = a.u8("journal.outcome");
      if (outcome > static_cast<std::uint8_t>(AdmissionOutcome::kRejected)) {
        throw SnapshotError("snapshot: journal entry " + std::to_string(i) +
                            " has out-of-range outcome " +
                            std::to_string(outcome));
      }
      e.outcome = static_cast<AdmissionOutcome>(outcome);
      e.arrival = get_arrival(a);
      journal.push_back(std::move(e));
    }
    a.expect_exhausted("arrivals section");
  }

  // kGenerator
  GeneratorState generator;
  {
    const std::string payload = open_section(kGeneratorTag, "generator");
    Reader g(payload.data(), payload.size(), "generator");
    generator = get_generator(g);
  }

  // kService
  std::uint64_t target_steps = 0;
  {
    const std::string payload = open_section(kServiceTag, "service");
    Reader s(payload.data(), payload.size(), "service");
    target_steps = s.u64("service.steps");
    (void)s.u64("service.tick_index");
    const std::uint64_t journal_len = s.u64("service.journal_len");
    if (journal_len != journal.size()) {
      throw SnapshotError("snapshot: service section records " +
                          std::to_string(journal_len) +
                          " journal entries but the arrivals section holds " +
                          std::to_string(journal.size()));
    }
    (void)s.f64("service.last_arrival_at");
    (void)s.f64("service.now");
    s.expect_exhausted("service section");
  }

  // Rebuild + replay: run the journal back through the identical step loop
  // (dark: observability attaches only after the state is re-established).
  auto loop = std::make_unique<ServiceLoop>(config, std::move(plan));
  {
    std::vector<Arrival> arrivals;
    arrivals.reserve(journal.size());
    for (const JournalEntry& e : journal) arrivals.push_back(e.arrival);
    loop->begin_replay(journal);
    loop->set_generator(
        std::make_unique<JournalReplayGenerator>(std::move(arrivals)));
    while (loop->steps_executed() < target_steps) {
      if (!loop->step()) {
        throw SnapshotError(
            "snapshot replay underran: loop went idle after " +
            std::to_string(loop->steps_executed()) + " of " +
            std::to_string(target_steps) +
            " steps -- journal and step counter disagree");
      }
    }
    if (loop->journal().size() != journal.size()) {
      throw SnapshotError("snapshot replay consumed " +
                          std::to_string(loop->journal().size()) +
                          " arrivals but the journal holds " +
                          std::to_string(journal.size()));
    }
  }

  // kVerify: bitwise comparison of the replayed state against the image.
  {
    const std::string payload = open_section(kVerifyTag, "verify");
    Reader v(payload.data(), payload.size(), "verify");
    ImageBuilder fresh;
    build_verify_image(*loop, fresh);
    verify_image(v, fresh, "verify");
    v.expect_exhausted("verify image");
  }

  // kTelemetry: the replay rebuilt the telemetry state from config +
  // journal; pin it (flush counters, SLO window, exposition bytes) against
  // what the checkpointed run held, then restore the flight ring verbatim
  // (replay cannot reproduce earlier saves' kSnapshot markers).
  {
    const std::string payload = open_section(kTelemetryTag, "telemetry");
    Reader t(payload.data(), payload.size(), "telemetry");
    ImageBuilder fresh;
    build_telemetry_image(*loop, fresh);
    verify_image(t, fresh, "telemetry");
    get_flight_ring(t, *loop);
    t.expect_exhausted("telemetry section");
  }

  const std::uint32_t end_tag = r.u32("end tag");
  if (end_tag != kEndTag) {
    throw SnapshotError("snapshot: missing end tag (found " +
                        std::to_string(end_tag) + ")");
  }
  r.expect_exhausted("snapshot body");

  loop->end_replay(std::move(generator.gen), std::move(generator.pending));
  loop->attach_observability(options.trace_sink, options.trace_detail,
                             options.metrics);
  loop->attach_telemetry_outputs(options.telemetry);
  return loop;
}

std::unique_ptr<ServiceLoop> restore_snapshot_file(
    const std::string& path, const RestoreOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SnapshotError("snapshot: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return restore_snapshot(buf.str(), options);
}

}  // namespace echelon::service
