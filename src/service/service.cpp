#include "service/service.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "common/pool.hpp"
#include "common/timer.hpp"
#include "echelon/coflow_madd.hpp"
#include "echelon/sincronia.hpp"
#include "echelon/srpt.hpp"
#include "workload/paradigm.hpp"

namespace echelon::service {

namespace {

topology::BuiltFabric make_fabric(const ServiceConfig& config) {
  if (config.hosts < 2) {
    throw std::invalid_argument("ServiceLoop: hosts must be >= 2");
  }
  if (config.fabric == cluster::FabricKind::kBigSwitch) {
    return topology::make_big_switch(config.hosts, config.port_capacity);
  }
  // Same shape as run_experiment: hosts/8 leaves of 8 hosts, 2 spines,
  // uplinks carrying 8 * port_capacity / (2 * oversubscription) each.
  const int hosts_per_leaf = 8;
  const int leaves = std::max(1, config.hosts / hosts_per_leaf);
  const int spines = 2;
  return topology::make_leaf_spine(
      {.leaves = leaves,
       .spines = spines,
       .hosts_per_leaf = hosts_per_leaf,
       .host_link = config.port_capacity,
       .uplink = hosts_per_leaf * config.port_capacity /
                 (spines * config.oversubscription)});
}

}  // namespace

ServiceLoop::ServiceLoop(const ServiceConfig& config)
    : ServiceLoop(config, std::nullopt) {}

ServiceLoop::ServiceLoop(const ServiceConfig& config,
                         std::optional<faultsim::FaultPlan> owned_plan)
    : config_(config),
      owned_plan_(std::move(owned_plan)),
      fabric_(make_fabric(config_)),
      sim_(&fabric_.topo, config_.loop_mode, config_.alloc_mode,
           config_.fill_mode) {
  if (config_.control_period <= 0.0) {
    throw std::invalid_argument("ServiceLoop: control_period must be > 0");
  }
  if (config_.telemetry.metrics_every < 0.0) {
    throw std::invalid_argument("ServiceLoop: metrics_every must be >= 0");
  }
  if (owned_plan_.has_value()) config_.fault_plan = &*owned_plan_;
  build_stack();

  // Telemetry state is config-driven (no output attachments yet), so a
  // restored loop replaying its journal rebuilds it identically.
  if (config_.telemetry.slo.enabled()) {
    slo_ = std::make_unique<SloTracker>(config_.telemetry.slo);
  }
  if (config_.telemetry.flightrec_capacity > 0) {
    flightrec_ = std::make_unique<obs::FlightRecorder>(
        config_.telemetry.flightrec_capacity);
  }
  if (config_.telemetry.series_budget > 0) {
    telemetry_.set_series_budget(config_.telemetry.series_budget);
  }
}

ServiceLoop::~ServiceLoop() = default;

void ServiceLoop::build_stack() {
  // Scheduler stack, mirroring run_experiment: the coordinator owns its
  // registry; every other scheduler shares the standalone one (attached for
  // tardiness measurement either way).
  registry_ = &standalone_registry_;
  switch (config_.scheduler) {
    case cluster::SchedulerKind::kFairSharing:
      policy_ = std::make_unique<netsim::FairSharingScheduler>();
      standalone_registry_.attach(sim_);
      break;
    case cluster::SchedulerKind::kSrpt:
      policy_ = std::make_unique<ef::SrptScheduler>();
      standalone_registry_.attach(sim_);
      break;
    case cluster::SchedulerKind::kCoflowMadd:
      policy_ = std::make_unique<ef::CoflowMaddScheduler>(
          ef::CoflowMaddConfig{.work_conserving =
                                   config_.coflow_work_conserving});
      standalone_registry_.attach(sim_);
      break;
    case cluster::SchedulerKind::kSincronia:
      policy_ = std::make_unique<ef::SincroniaScheduler>();
      standalone_registry_.attach(sim_);
      break;
    case cluster::SchedulerKind::kEchelonMadd:
      policy_ = std::make_unique<ef::EchelonMaddScheduler>(
          &standalone_registry_, ef::EchelonMaddConfig{});
      standalone_registry_.attach(sim_);
      break;
    case cluster::SchedulerKind::kCoordinator:
      coordinator_ = std::make_unique<runtime::Coordinator>(
          &sim_, runtime::CoordinatorConfig{});
      registry_ = &coordinator_->registry();
      break;
  }

  scheduler_ = coordinator_
                   ? static_cast<netsim::NetworkScheduler*>(coordinator_.get())
                   : policy_.get();
  if (config_.priority_queues > 0) {
    pq_ = std::make_unique<runtime::PriorityQueueEnforcer>(
        scheduler_, runtime::PriorityQueueConfig{
                        .num_queues = config_.priority_queues});
    scheduler_ = pq_.get();
  }
  scheduler_->set_sched_mode(config_.sched_mode);
  sim_.set_scheduler(scheduler_);

  if (config_.threads != 1) {
    sim_.set_parallelism(&ThreadPool::shared(), config_.threads);
    if (auto* madd = dynamic_cast<ef::EchelonMaddScheduler*>(policy_.get())) {
      madd->set_parallelism(&ThreadPool::shared(), config_.threads);
    }
  }

  attach_observability(config_.trace_sink, config_.trace_detail,
                       config_.metrics);

  // Fault injection armed before any launch, preserving run_experiment's
  // fault-first same-instant tie-break.
  if (config_.fault_plan != nullptr) {
    injector_ = std::make_unique<faultsim::FaultInjector>(
        &sim_, &fabric_.topo, config_.fault_plan);
    if (config_.trace_sink != nullptr &&
        config_.trace_detail >= obs::TraceDetail::kCoarse) {
      injector_->set_trace(config_.trace_sink);
    }
    injector_->arm();
  }
}

void ServiceLoop::attach_observability(obs::TraceSink* sink,
                                       obs::TraceDetail detail,
                                       obs::MetricsRegistry* metrics) {
  config_.trace_sink = sink;
  config_.trace_detail = detail;
  config_.metrics = metrics;
  if (sink != nullptr && detail != obs::TraceDetail::kOff) {
    sim_.set_trace(sink, detail);
    if (coordinator_ && detail >= obs::TraceDetail::kCoarse) {
      coordinator_->set_trace(sink);
    }
    if (injector_ && detail >= obs::TraceDetail::kCoarse) {
      injector_->set_trace(sink);
    }
  }
  if (metrics != nullptr) sim_.set_metrics(metrics);
}

void ServiceLoop::set_generator(std::unique_ptr<ArrivalGenerator> gen) {
  gen_ = std::move(gen);
}

void ServiceLoop::refill_pending() {
  if (pending_.has_value() || gen_ == nullptr) return;
  pending_ = gen_->next();
  if (pending_.has_value() && pending_->at < last_arrival_at_) {
    throw std::logic_error(
        "ServiceLoop: arrival stream is not time-monotone (arrival at " +
        std::to_string(pending_->at) + " after " +
        std::to_string(last_arrival_at_) + ")");
  }
}

bool ServiceLoop::step() {
  bool advanced = false;
  try {
    advanced = step_impl();
  } catch (const std::exception& e) {
    // Crash path: preserve the flight ring as a post-mortem before the
    // exception unwinds through the driver.
    note_error(e.what());
    throw;
  }
  if (advanced) telemetry_boundary();
  return advanced;
}

bool ServiceLoop::step_impl() {
  refill_pending();
  const bool work_left = running_ > 0 || !wait_queue_.empty();
  if (!pending_.has_value() && !work_left) return false;

  const ScopedTimer wall;
  // Control ticks sit at fixed multiples of the period (multiplication, not
  // accumulation: k * p is one rounding, so the tick grid is identical in
  // every run regardless of where snapshots cut the sequence).
  const SimTime tick_at =
      config_.control_period * static_cast<double>(tick_index_ + 1);
  const bool is_tick =
      !(pending_.has_value() && (!work_left || !(tick_at < pending_->at)));
  if (!is_tick) {
    const SimTime at = pending_->at;
    sim_.run(at);
    handle_arrivals_at(at);
    if (!work_left) {
      // The jump skipped an idle gap; realign the tick grid so the next
      // tick is the first multiple of the period not yet reached.
      const auto caught_up = static_cast<std::uint64_t>(
          std::floor(sim_.now() / config_.control_period));
      tick_index_ = std::max(tick_index_, caught_up);
    }
  } else {
    sim_.run(tick_at);
    ++tick_index_;
    ++control_ticks_;
    sim_.invalidate_allocation();
  }
  ++steps_;
  const double ms = wall.elapsed_ms();
  wall_ms_ += ms;
  if (config_.telemetry.profile) {
    record_phase_ms(is_tick ? "tick" : "arrival", ms);
  }
  return true;
}

void ServiceLoop::telemetry_boundary() {
  const TelemetryConfig& tc = config_.telemetry;
  if (!tc.enabled()) return;
  const SimTime now = sim_.now();
  if (flightrec_ != nullptr && injector_ != nullptr) {
    const faultsim::FaultSummary& s = injector_->summary();
    if (s.events_fired > faults_seen_) {
      faults_seen_ = s.events_fired;
      flightrec_->record(obs::FlightKind::kFault, now, faults_seen_);
    }
    if (s.abandoned > abandons_seen_) {
      abandons_seen_ = s.abandoned;
      // Abandons are terminal data loss -- dump a post-mortem while the
      // run continues.
      note_error("flow abandoned (retry budget exhausted); total " +
                 std::to_string(abandons_seen_));
    }
  }
  if (tc.metrics_every > 0.0) {
    const auto target =
        static_cast<std::uint64_t>(std::floor(now / tc.metrics_every));
    if (target > flush_index_) {
      flush_index_ = target;
      if (tc.profile) {
        const ScopedTimer t;
        flush_telemetry(now);
        record_phase_ms("flush", t.elapsed_ms());
      } else {
        flush_telemetry(now);
      }
    }
  }
}

void ServiceLoop::flush_telemetry(SimTime now) {
  ++flushes_;
  obs::MetricsRegistry& m = telemetry_;
  // SLO gauges and deadline-at-risk latching ride the flush heartbeat:
  // publishing them at every step boundary cost ~1-2% of the whole run and
  // the values are only observable at flush time anyway. The window itself
  // is a pure function of (completions, expiry time), so expiring here
  // keeps the tracker state identical to an every-step cadence.
  if (slo_ != nullptr) {
    slo_->on_boundary(now, &telemetry_);
    mark_deadline_risk(now);
  }
  m.counter("service.arrivals").set(journal_.size());
  m.counter("service.admitted").set(admitted_);
  m.counter("service.queued").set(queued_total_);
  m.counter("service.rejected").set(rejected_);
  m.counter("service.launched").set(jobs_.size());
  m.counter("service.completed").set(completed_);
  m.counter("service.steps").set(steps_);
  m.counter("service.control_ticks").set(control_ticks_);
  m.counter("service.flushes").set(flushes_);
  m.gauge("service.admission_rate")
      .set(journal_.empty() ? 1.0
                            : static_cast<double>(admitted_) /
                                  static_cast<double>(journal_.size()));
  m.gauge("service.total_tardiness_s").set(registry_->total_tardiness());
  m.series("service.queue_depth")
      .sample(now, static_cast<double>(wait_queue_.size()));
  m.series("service.running").sample(now, static_cast<double>(running_));
  m.series("service.active_flows")
      .sample(now, static_cast<double>(sim_.active_flow_count()));
  sim_.link_utilization(link_util_scratch_);
  if (link_series_.size() != link_util_scratch_.size()) {
    link_series_.clear();
    link_series_.reserve(link_util_scratch_.size());
    for (std::size_t i = 0; i < link_util_scratch_.size(); ++i) {
      link_series_.push_back(
          &m.series("service.link." + std::to_string(i) + ".util"));
    }
  }
  for (std::size_t i = 0; i < link_util_scratch_.size(); ++i) {
    link_series_[i]->sample(now, link_util_scratch_[i]);
  }
  if (flightrec_ != nullptr) {
    flightrec_->record(obs::FlightKind::kFlush, now, flush_index_, steps_);
  }
  if (outputs_.prom != nullptr) outputs_.prom->write(telemetry_.snapshot());
  if (outputs_.chunk != nullptr) outputs_.chunk->flush();
}

void ServiceLoop::mark_deadline_risk(SimTime now) {
  for (const SloObjective& obj : config_.telemetry.slo.objectives) {
    if (obj.kind != SloKind::kJct) continue;
    for (const auto& lj : jobs_) {
      ServiceJobRecord& r = lj->record;
      if (r.finished || r.deadline_at_risk) continue;
      if (now - r.submitted > obj.threshold) {
        r.deadline_at_risk = true;
        ++at_risk_;
      }
    }
  }
  telemetry_.gauge("service.slo.deadline_at_risk")
      .set(static_cast<double>(at_risk_));
}

void ServiceLoop::handle_arrivals_at(SimTime at) {
  // Consume every arrival landing at exactly this instant, in stream order.
  // Bitwise time equality is deliberate: the burst generator reuses the
  // previous arrival's double, and distinct-but-epsilon-close instants must
  // remain distinct boundaries (they are distinct event times).
  while (pending_.has_value() && pending_->at == at) {
    Arrival arrival = std::move(*pending_);
    pending_.reset();
    if (arrival.at < sim_.now()) {
      throw std::logic_error("ServiceLoop: arrival at " +
                             std::to_string(arrival.at) +
                             " is in the simulator's past (now " +
                             std::to_string(sim_.now()) + ")");
    }
    last_arrival_at_ = arrival.at;
    admit(std::move(arrival));
    refill_pending();
  }
}

void ServiceLoop::admit(Arrival arrival) {
  AdmissionOutcome outcome;
  if (config_.telemetry.profile) {
    const ScopedTimer t;
    outcome = decide(config_.admission, running_, wait_queue_.size(),
                     registry_->total_tardiness());
    record_phase_ms("admission", t.elapsed_ms());
  } else {
    outcome = decide(config_.admission, running_, wait_queue_.size(),
                     registry_->total_tardiness());
  }
  if (replay_expected_ != nullptr) {
    const std::size_t i = journal_.size();
    if (i >= replay_expected_->size() ||
        (*replay_expected_)[i].outcome != outcome) {
      throw std::runtime_error(
          "snapshot replay diverged: arrival " + std::to_string(i) +
          " decided '" + to_string(outcome) + "' but the journal recorded '" +
          (i < replay_expected_->size()
               ? to_string((*replay_expected_)[i].outcome)
               : "<past end>") +
          "' (configuration or code mismatch)");
    }
  }
  journal_.push_back(JournalEntry{outcome, arrival});
  if (flightrec_ != nullptr) {
    const std::uint64_t journal_index = journal_.size() - 1;
    switch (outcome) {
      case AdmissionOutcome::kAdmitted:
        flightrec_->record(obs::FlightKind::kAdmit, arrival.at, journal_index,
                           running_);
        break;
      case AdmissionOutcome::kQueued:
        flightrec_->record(obs::FlightKind::kQueue, arrival.at, journal_index,
                           wait_queue_.size() + 1);
        break;
      case AdmissionOutcome::kRejected:
        flightrec_->record(obs::FlightKind::kReject, arrival.at,
                           journal_index);
        break;
    }
  }
  switch (outcome) {
    case AdmissionOutcome::kAdmitted:
      ++admitted_;
      launch_job(arrival.job, arrival.at, arrival.at);
      break;
    case AdmissionOutcome::kQueued:
      ++queued_total_;
      wait_queue_.push_back(std::move(arrival));
      break;
    case AdmissionOutcome::kRejected:
      ++rejected_;
      break;
  }
}

void ServiceLoop::launch_job(const cluster::JobSpec& spec, SimTime submitted,
                             SimTime start) {
  const std::size_t index = jobs_.size();
  const std::size_t H = fabric_.hosts.size();
  if (static_cast<std::size_t>(spec.ranks) > H) {
    throw std::invalid_argument("ServiceLoop: job needs " +
                                std::to_string(spec.ranks) + " ranks but the "
                                "fabric has " + std::to_string(H) + " hosts");
  }

  const ScopedTimer launch_timer;
  auto lj = std::make_unique<LiveJob>();
  lj->spec = spec;
  lj->submitted = submitted;
  lj->record.paradigm = spec.paradigm;
  lj->record.submitted = submitted;
  lj->record.started = start;

  // run_experiment's rank packing, applied in launch order: consecutive
  // ports from a wrapping cursor, DP-PS gets one extra port for its
  // parameter server.
  std::vector<NodeId> job_hosts;
  job_hosts.reserve(static_cast<std::size_t>(spec.ranks));
  for (int r = 0; r < spec.ranks; ++r) {
    job_hosts.push_back(fabric_.hosts[(next_host_ + r) % H]);
  }
  const workload::Placement placement = workload::make_placement(
      sim_, job_hosts, "j" + std::to_string(index) + ".");

  NodeId ps_host;
  WorkerId ps_worker;
  std::size_t consumed = static_cast<std::size_t>(spec.ranks);
  if (spec.paradigm == workload::Paradigm::kDpPs) {
    ps_host = fabric_.hosts[(next_host_ + consumed) % H];
    ps_worker =
        sim_.add_worker(ps_host, "j" + std::to_string(index) + ".ps");
    ++consumed;
  }
  next_host_ = (next_host_ + consumed) % H;

  lj->group_begin = registry_->size();
  lj->generated = cluster::generate_job_workflow(
      spec, placement, ps_host, ps_worker, *registry_, JobId{index});
  lj->group_end = registry_->size();
  lj->engine = std::make_unique<netsim::WorkflowEngine>(
      &sim_, &lj->generated.workflow);
  lj->engine->on_complete = [this, index](netsim::Simulator&) {
    job_finished(index);
  };

  // Same-instant ordering contract (ISSUE 9 satellite): a launch scheduled
  // after another must land strictly later in the event queue's sequence
  // space -- pop_due's tie-break then replays same-instant releases in
  // submission order. A violation means something scheduled out of band.
  const std::uint64_t seq_before = sim_.events().scheduled_seq();
  assert(seq_before >= last_launch_seq_ &&
         "launch sequence floor moved backwards");
  if (seq_before < last_launch_seq_) {
    throw std::logic_error(
        "ServiceLoop: launch would schedule below the previous launch's "
        "sequence floor, breaking the same-instant submission-order "
        "tie-break");
  }
  lj->engine->launch(start);
  last_launch_seq_ = std::max(last_launch_seq_, sim_.events().scheduled_seq());

  jobs_.push_back(std::move(lj));
  ++running_;
  if (flightrec_ != nullptr) {
    flightrec_->record(obs::FlightKind::kLaunch, start, index, running_);
  }
  if (config_.telemetry.profile) {
    record_phase_ms("launch", launch_timer.elapsed_ms());
  }
}

void ServiceLoop::job_finished(std::size_t index) {
  LiveJob& lj = *jobs_[index];
  lj.record.finish = sim_.now();
  lj.record.finished = true;
  assert(running_ > 0);
  --running_;
  ++completed_;
  if (config_.telemetry.enabled()) {
    const SimTime now = sim_.now();
    const double jct = lj.record.finish - lj.record.submitted;
    const double queue_wait = lj.record.started - lj.record.submitted;
    // Max tardiness over the job's complete groups (incomplete ones report
    // -inf and are skipped; a fully-incomplete job samples 0).
    double tardiness = 0.0;
    bool any_group = false;
    for (std::size_t g = lj.group_begin; g < lj.group_end; ++g) {
      const ef::EchelonFlow& grp = registry_->get(EchelonFlowId{g});
      if (!grp.complete()) continue;
      tardiness =
          any_group ? std::max(tardiness, grp.tardiness()) : grp.tardiness();
      any_group = true;
    }
    telemetry_.histogram("service.jct_s").observe(jct);
    telemetry_.histogram("service.queue_wait_s").observe(queue_wait);
    telemetry_.histogram("service.job_tardiness_s").observe(tardiness);
    if (slo_ != nullptr) {
      const double values[kSloKindCount] = {jct, queue_wait, tardiness};
      slo_->on_completion(now, values);
    }
    if (flightrec_ != nullptr) {
      flightrec_->record(obs::FlightKind::kComplete, now, index, completed_);
    }
  }
  // Backfill freed slots from the wait queue, oldest first, launching at
  // the completion instant. This runs inside sim_.run() (the engine's
  // on_complete fires from the event loop), so the released root nodes join
  // the very next batch at this instant -- deterministically ordered by
  // their schedule sequence.
  while (!wait_queue_.empty() &&
         (config_.admission.max_running == 0 ||
          running_ < config_.admission.max_running)) {
    Arrival next = std::move(wait_queue_.front());
    wait_queue_.pop_front();
    launch_job(next.job, next.at, sim_.now());
  }
}

SimTime ServiceLoop::drain() {
  while (step()) {
  }
  // Leftover events past the last completion: fault-plan timers, parked
  // retries, etc. Runs to quiescence.
  const ScopedTimer wall;
  const SimTime end = sim_.run();
  wall_ms_ += wall.elapsed_ms();
  return end;
}

ServiceResult ServiceLoop::result() const {
  ServiceResult r;
  r.scheduler_name = scheduler_->name();
  r.end = sim_.now();
  r.total_tardiness = registry_->total_tardiness();
  r.weighted_total_tardiness = registry_->weighted_total_tardiness();
  r.control_invocations = sim_.control_invocations();
  r.arrivals = journal_.size();
  r.admitted = admitted_;
  r.queued = queued_total_;
  r.rejected = rejected_;
  r.launched = jobs_.size();
  r.completed = completed_;
  r.steps = steps_;
  r.control_ticks = control_ticks_;
  r.deadline_at_risk = at_risk_;
  r.telemetry_flushes = flushes_;
  r.wall_ms = wall_ms_;
  r.flow_finish.reserve(sim_.flow_count());
  for (std::size_t i = 0; i < sim_.flow_count(); ++i) {
    r.flow_finish.push_back(sim_.flow(FlowId{i}).finish_time);
  }
  r.jobs.reserve(jobs_.size());
  for (const auto& lj : jobs_) r.jobs.push_back(lj->record);
  return r;
}

void ServiceLoop::publish_metrics() const {
  if (config_.metrics == nullptr) return;
  obs::MetricsRegistry& m = *config_.metrics;
  m.counter("service.arrivals").set(journal_.size());
  m.counter("service.admitted").set(admitted_);
  m.counter("service.queued").set(queued_total_);
  m.counter("service.rejected").set(rejected_);
  m.counter("service.launched").set(jobs_.size());
  m.counter("service.completed").set(completed_);
  m.counter("service.steps").set(steps_);
  m.counter("service.control_ticks").set(control_ticks_);
  m.gauge("service.queue_depth").set(static_cast<double>(wait_queue_.size()));
  m.gauge("service.running").set(static_cast<double>(running_));
  m.gauge("service.admission_rate")
      .set(journal_.empty() ? 1.0
                            : static_cast<double>(admitted_) /
                                  static_cast<double>(journal_.size()));
  // Control decisions per host-side second of service-loop work.
  m.gauge("service.decisions_per_sec")
      .set(wall_ms_ <= 0.0 ? 0.0
                           : static_cast<double>(sim_.control_invocations()) /
                                 (wall_ms_ / 1e3));
  m.gauge("echelon.total_tardiness_s").set(registry_->total_tardiness());
  obs::Histogram& tard = m.histogram("service.tardiness_s");
  for (const ef::EchelonFlow* g : registry_->all()) {
    if (g->complete()) tard.observe(g->tardiness());
  }
}

void ServiceLoop::attach_telemetry_outputs(TelemetryOutputs outputs) {
  outputs_ = std::move(outputs);
}

void ServiceLoop::flush_now() {
  if (!config_.telemetry.enabled()) return;
  flush_telemetry(sim_.now());
}

void ServiceLoop::note_snapshot() {
  if (flightrec_ == nullptr) return;
  flightrec_->record(obs::FlightKind::kSnapshot, sim_.now(), steps_);
}

void ServiceLoop::note_error(std::string_view what) {
  if (flightrec_ == nullptr) return;
  flightrec_->record(obs::FlightKind::kError, sim_.now(), 0, 0,
                     std::string(what));
  if (!outputs_.flightrec_path.empty()) {
    std::ofstream os(outputs_.flightrec_path,
                     std::ios::binary | std::ios::trunc);
    if (os) flightrec_->dump(os);
  }
}

void ServiceLoop::dump_flight(std::ostream& os) const {
  if (flightrec_ != nullptr) flightrec_->dump(os);
}

void ServiceLoop::record_phase_ms(std::string_view phase, double ms) {
  if (!config_.telemetry.profile) return;
  const std::string name = "service.profile." + std::string(phase) + "_ms";
  profile_.histogram(name).observe(ms);
  profile_.series(name).sample(sim_.now(), ms);
}

void ServiceLoop::begin_replay(const std::vector<JournalEntry>& expected) {
  replay_expected_ = &expected;
}

void ServiceLoop::end_replay(std::unique_ptr<ArrivalGenerator> gen,
                             std::optional<Arrival> pending) {
  replay_expected_ = nullptr;
  gen_ = std::move(gen);
  pending_ = std::move(pending);
}

}  // namespace echelon::service
