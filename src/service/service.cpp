#include "service/service.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/pool.hpp"
#include "common/timer.hpp"
#include "echelon/coflow_madd.hpp"
#include "echelon/sincronia.hpp"
#include "echelon/srpt.hpp"
#include "workload/paradigm.hpp"

namespace echelon::service {

namespace {

topology::BuiltFabric make_fabric(const ServiceConfig& config) {
  if (config.hosts < 2) {
    throw std::invalid_argument("ServiceLoop: hosts must be >= 2");
  }
  if (config.fabric == cluster::FabricKind::kBigSwitch) {
    return topology::make_big_switch(config.hosts, config.port_capacity);
  }
  // Same shape as run_experiment: hosts/8 leaves of 8 hosts, 2 spines,
  // uplinks carrying 8 * port_capacity / (2 * oversubscription) each.
  const int hosts_per_leaf = 8;
  const int leaves = std::max(1, config.hosts / hosts_per_leaf);
  const int spines = 2;
  return topology::make_leaf_spine(
      {.leaves = leaves,
       .spines = spines,
       .hosts_per_leaf = hosts_per_leaf,
       .host_link = config.port_capacity,
       .uplink = hosts_per_leaf * config.port_capacity /
                 (spines * config.oversubscription)});
}

}  // namespace

ServiceLoop::ServiceLoop(const ServiceConfig& config)
    : ServiceLoop(config, std::nullopt) {}

ServiceLoop::ServiceLoop(const ServiceConfig& config,
                         std::optional<faultsim::FaultPlan> owned_plan)
    : config_(config),
      owned_plan_(std::move(owned_plan)),
      fabric_(make_fabric(config_)),
      sim_(&fabric_.topo, config_.loop_mode, config_.alloc_mode,
           config_.fill_mode) {
  if (config_.control_period <= 0.0) {
    throw std::invalid_argument("ServiceLoop: control_period must be > 0");
  }
  if (owned_plan_.has_value()) config_.fault_plan = &*owned_plan_;
  build_stack();
}

ServiceLoop::~ServiceLoop() = default;

void ServiceLoop::build_stack() {
  // Scheduler stack, mirroring run_experiment: the coordinator owns its
  // registry; every other scheduler shares the standalone one (attached for
  // tardiness measurement either way).
  registry_ = &standalone_registry_;
  switch (config_.scheduler) {
    case cluster::SchedulerKind::kFairSharing:
      policy_ = std::make_unique<netsim::FairSharingScheduler>();
      standalone_registry_.attach(sim_);
      break;
    case cluster::SchedulerKind::kSrpt:
      policy_ = std::make_unique<ef::SrptScheduler>();
      standalone_registry_.attach(sim_);
      break;
    case cluster::SchedulerKind::kCoflowMadd:
      policy_ = std::make_unique<ef::CoflowMaddScheduler>(
          ef::CoflowMaddConfig{.work_conserving =
                                   config_.coflow_work_conserving});
      standalone_registry_.attach(sim_);
      break;
    case cluster::SchedulerKind::kSincronia:
      policy_ = std::make_unique<ef::SincroniaScheduler>();
      standalone_registry_.attach(sim_);
      break;
    case cluster::SchedulerKind::kEchelonMadd:
      policy_ = std::make_unique<ef::EchelonMaddScheduler>(
          &standalone_registry_, ef::EchelonMaddConfig{});
      standalone_registry_.attach(sim_);
      break;
    case cluster::SchedulerKind::kCoordinator:
      coordinator_ = std::make_unique<runtime::Coordinator>(
          &sim_, runtime::CoordinatorConfig{});
      registry_ = &coordinator_->registry();
      break;
  }

  scheduler_ = coordinator_
                   ? static_cast<netsim::NetworkScheduler*>(coordinator_.get())
                   : policy_.get();
  if (config_.priority_queues > 0) {
    pq_ = std::make_unique<runtime::PriorityQueueEnforcer>(
        scheduler_, runtime::PriorityQueueConfig{
                        .num_queues = config_.priority_queues});
    scheduler_ = pq_.get();
  }
  scheduler_->set_sched_mode(config_.sched_mode);
  sim_.set_scheduler(scheduler_);

  if (config_.threads != 1) {
    sim_.set_parallelism(&ThreadPool::shared(), config_.threads);
    if (auto* madd = dynamic_cast<ef::EchelonMaddScheduler*>(policy_.get())) {
      madd->set_parallelism(&ThreadPool::shared(), config_.threads);
    }
  }

  attach_observability(config_.trace_sink, config_.trace_detail,
                       config_.metrics);

  // Fault injection armed before any launch, preserving run_experiment's
  // fault-first same-instant tie-break.
  if (config_.fault_plan != nullptr) {
    injector_ = std::make_unique<faultsim::FaultInjector>(
        &sim_, &fabric_.topo, config_.fault_plan);
    if (config_.trace_sink != nullptr &&
        config_.trace_detail >= obs::TraceDetail::kCoarse) {
      injector_->set_trace(config_.trace_sink);
    }
    injector_->arm();
  }
}

void ServiceLoop::attach_observability(obs::TraceSink* sink,
                                       obs::TraceDetail detail,
                                       obs::MetricsRegistry* metrics) {
  config_.trace_sink = sink;
  config_.trace_detail = detail;
  config_.metrics = metrics;
  if (sink != nullptr && detail != obs::TraceDetail::kOff) {
    sim_.set_trace(sink, detail);
    if (coordinator_ && detail >= obs::TraceDetail::kCoarse) {
      coordinator_->set_trace(sink);
    }
    if (injector_ && detail >= obs::TraceDetail::kCoarse) {
      injector_->set_trace(sink);
    }
  }
  if (metrics != nullptr) sim_.set_metrics(metrics);
}

void ServiceLoop::set_generator(std::unique_ptr<ArrivalGenerator> gen) {
  gen_ = std::move(gen);
}

void ServiceLoop::refill_pending() {
  if (pending_.has_value() || gen_ == nullptr) return;
  pending_ = gen_->next();
  if (pending_.has_value() && pending_->at < last_arrival_at_) {
    throw std::logic_error(
        "ServiceLoop: arrival stream is not time-monotone (arrival at " +
        std::to_string(pending_->at) + " after " +
        std::to_string(last_arrival_at_) + ")");
  }
}

bool ServiceLoop::step() {
  refill_pending();
  const bool work_left = running_ > 0 || !wait_queue_.empty();
  if (!pending_.has_value() && !work_left) return false;

  const ScopedTimer wall;
  // Control ticks sit at fixed multiples of the period (multiplication, not
  // accumulation: k * p is one rounding, so the tick grid is identical in
  // every run regardless of where snapshots cut the sequence).
  const SimTime tick_at =
      config_.control_period * static_cast<double>(tick_index_ + 1);
  if (pending_.has_value() && (!work_left || !(tick_at < pending_->at))) {
    const SimTime at = pending_->at;
    sim_.run(at);
    handle_arrivals_at(at);
    if (!work_left) {
      // The jump skipped an idle gap; realign the tick grid so the next
      // tick is the first multiple of the period not yet reached.
      const auto caught_up = static_cast<std::uint64_t>(
          std::floor(sim_.now() / config_.control_period));
      tick_index_ = std::max(tick_index_, caught_up);
    }
  } else {
    sim_.run(tick_at);
    ++tick_index_;
    ++control_ticks_;
    sim_.invalidate_allocation();
  }
  ++steps_;
  wall_ms_ += wall.elapsed_ms();
  return true;
}

void ServiceLoop::handle_arrivals_at(SimTime at) {
  // Consume every arrival landing at exactly this instant, in stream order.
  // Bitwise time equality is deliberate: the burst generator reuses the
  // previous arrival's double, and distinct-but-epsilon-close instants must
  // remain distinct boundaries (they are distinct event times).
  while (pending_.has_value() && pending_->at == at) {
    Arrival arrival = std::move(*pending_);
    pending_.reset();
    if (arrival.at < sim_.now()) {
      throw std::logic_error("ServiceLoop: arrival at " +
                             std::to_string(arrival.at) +
                             " is in the simulator's past (now " +
                             std::to_string(sim_.now()) + ")");
    }
    last_arrival_at_ = arrival.at;
    admit(std::move(arrival));
    refill_pending();
  }
}

void ServiceLoop::admit(Arrival arrival) {
  const AdmissionOutcome outcome =
      decide(config_.admission, running_, wait_queue_.size(),
             registry_->total_tardiness());
  if (replay_expected_ != nullptr) {
    const std::size_t i = journal_.size();
    if (i >= replay_expected_->size() ||
        (*replay_expected_)[i].outcome != outcome) {
      throw std::runtime_error(
          "snapshot replay diverged: arrival " + std::to_string(i) +
          " decided '" + to_string(outcome) + "' but the journal recorded '" +
          (i < replay_expected_->size()
               ? to_string((*replay_expected_)[i].outcome)
               : "<past end>") +
          "' (configuration or code mismatch)");
    }
  }
  journal_.push_back(JournalEntry{outcome, arrival});
  switch (outcome) {
    case AdmissionOutcome::kAdmitted:
      ++admitted_;
      launch_job(arrival.job, arrival.at, arrival.at);
      break;
    case AdmissionOutcome::kQueued:
      ++queued_total_;
      wait_queue_.push_back(std::move(arrival));
      break;
    case AdmissionOutcome::kRejected:
      ++rejected_;
      break;
  }
}

void ServiceLoop::launch_job(const cluster::JobSpec& spec, SimTime submitted,
                             SimTime start) {
  const std::size_t index = jobs_.size();
  const std::size_t H = fabric_.hosts.size();
  if (static_cast<std::size_t>(spec.ranks) > H) {
    throw std::invalid_argument("ServiceLoop: job needs " +
                                std::to_string(spec.ranks) + " ranks but the "
                                "fabric has " + std::to_string(H) + " hosts");
  }

  auto lj = std::make_unique<LiveJob>();
  lj->spec = spec;
  lj->submitted = submitted;
  lj->record.paradigm = spec.paradigm;
  lj->record.submitted = submitted;
  lj->record.started = start;

  // run_experiment's rank packing, applied in launch order: consecutive
  // ports from a wrapping cursor, DP-PS gets one extra port for its
  // parameter server.
  std::vector<NodeId> job_hosts;
  job_hosts.reserve(static_cast<std::size_t>(spec.ranks));
  for (int r = 0; r < spec.ranks; ++r) {
    job_hosts.push_back(fabric_.hosts[(next_host_ + r) % H]);
  }
  const workload::Placement placement = workload::make_placement(
      sim_, job_hosts, "j" + std::to_string(index) + ".");

  NodeId ps_host;
  WorkerId ps_worker;
  std::size_t consumed = static_cast<std::size_t>(spec.ranks);
  if (spec.paradigm == workload::Paradigm::kDpPs) {
    ps_host = fabric_.hosts[(next_host_ + consumed) % H];
    ps_worker =
        sim_.add_worker(ps_host, "j" + std::to_string(index) + ".ps");
    ++consumed;
  }
  next_host_ = (next_host_ + consumed) % H;

  lj->generated = cluster::generate_job_workflow(
      spec, placement, ps_host, ps_worker, *registry_, JobId{index});
  lj->engine = std::make_unique<netsim::WorkflowEngine>(
      &sim_, &lj->generated.workflow);
  lj->engine->on_complete = [this, index](netsim::Simulator&) {
    job_finished(index);
  };

  // Same-instant ordering contract (ISSUE 9 satellite): a launch scheduled
  // after another must land strictly later in the event queue's sequence
  // space -- pop_due's tie-break then replays same-instant releases in
  // submission order. A violation means something scheduled out of band.
  const std::uint64_t seq_before = sim_.events().scheduled_seq();
  assert(seq_before >= last_launch_seq_ &&
         "launch sequence floor moved backwards");
  if (seq_before < last_launch_seq_) {
    throw std::logic_error(
        "ServiceLoop: launch would schedule below the previous launch's "
        "sequence floor, breaking the same-instant submission-order "
        "tie-break");
  }
  lj->engine->launch(start);
  last_launch_seq_ = std::max(last_launch_seq_, sim_.events().scheduled_seq());

  jobs_.push_back(std::move(lj));
  ++running_;
}

void ServiceLoop::job_finished(std::size_t index) {
  LiveJob& lj = *jobs_[index];
  lj.record.finish = sim_.now();
  lj.record.finished = true;
  assert(running_ > 0);
  --running_;
  ++completed_;
  // Backfill freed slots from the wait queue, oldest first, launching at
  // the completion instant. This runs inside sim_.run() (the engine's
  // on_complete fires from the event loop), so the released root nodes join
  // the very next batch at this instant -- deterministically ordered by
  // their schedule sequence.
  while (!wait_queue_.empty() &&
         (config_.admission.max_running == 0 ||
          running_ < config_.admission.max_running)) {
    Arrival next = std::move(wait_queue_.front());
    wait_queue_.pop_front();
    launch_job(next.job, next.at, sim_.now());
  }
}

SimTime ServiceLoop::drain() {
  while (step()) {
  }
  // Leftover events past the last completion: fault-plan timers, parked
  // retries, etc. Runs to quiescence.
  const ScopedTimer wall;
  const SimTime end = sim_.run();
  wall_ms_ += wall.elapsed_ms();
  return end;
}

ServiceResult ServiceLoop::result() const {
  ServiceResult r;
  r.scheduler_name = scheduler_->name();
  r.end = sim_.now();
  r.total_tardiness = registry_->total_tardiness();
  r.weighted_total_tardiness = registry_->weighted_total_tardiness();
  r.control_invocations = sim_.control_invocations();
  r.arrivals = journal_.size();
  r.admitted = admitted_;
  r.queued = queued_total_;
  r.rejected = rejected_;
  r.launched = jobs_.size();
  r.completed = completed_;
  r.steps = steps_;
  r.control_ticks = control_ticks_;
  r.wall_ms = wall_ms_;
  r.flow_finish.reserve(sim_.flow_count());
  for (std::size_t i = 0; i < sim_.flow_count(); ++i) {
    r.flow_finish.push_back(sim_.flow(FlowId{i}).finish_time);
  }
  r.jobs.reserve(jobs_.size());
  for (const auto& lj : jobs_) r.jobs.push_back(lj->record);
  return r;
}

void ServiceLoop::publish_metrics() const {
  if (config_.metrics == nullptr) return;
  obs::MetricsRegistry& m = *config_.metrics;
  m.counter("service.arrivals").set(journal_.size());
  m.counter("service.admitted").set(admitted_);
  m.counter("service.queued").set(queued_total_);
  m.counter("service.rejected").set(rejected_);
  m.counter("service.launched").set(jobs_.size());
  m.counter("service.completed").set(completed_);
  m.counter("service.steps").set(steps_);
  m.counter("service.control_ticks").set(control_ticks_);
  m.gauge("service.queue_depth").set(static_cast<double>(wait_queue_.size()));
  m.gauge("service.running").set(static_cast<double>(running_));
  m.gauge("service.admission_rate")
      .set(journal_.empty() ? 1.0
                            : static_cast<double>(admitted_) /
                                  static_cast<double>(journal_.size()));
  // Control decisions per host-side second of service-loop work.
  m.gauge("service.decisions_per_sec")
      .set(wall_ms_ <= 0.0 ? 0.0
                           : static_cast<double>(sim_.control_invocations()) /
                                 (wall_ms_ / 1e3));
  m.gauge("echelon.total_tardiness_s").set(registry_->total_tardiness());
  obs::Histogram& tard = m.histogram("service.tardiness_s");
  for (const ef::EchelonFlow* g : registry_->all()) {
    if (g->complete()) tard.observe(g->tardiness());
  }
}

void ServiceLoop::begin_replay(const std::vector<JournalEntry>& expected) {
  replay_expected_ = &expected;
}

void ServiceLoop::end_replay(std::unique_ptr<ArrivalGenerator> gen,
                             std::optional<Arrival> pending) {
  replay_expected_ = nullptr;
  gen_ = std::move(gen);
  pending_ = std::move(pending);
}

}  // namespace echelon::service
