#include "service/arrivals.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "workload/model.hpp"

namespace echelon::service {

namespace {

workload::Paradigm paradigm_from_string(const std::string& s, int lineno) {
  using workload::Paradigm;
  for (const Paradigm p :
       {Paradigm::kDpAllReduce, Paradigm::kDpPs, Paradigm::kPipeline,
        Paradigm::kTensor, Paradigm::kFsdp, Paradigm::kExpert}) {
    if (s == workload::to_string(p)) return p;
  }
  throw std::invalid_argument("arrival trace line " + std::to_string(lineno) +
                              ": unknown paradigm '" + s + "'");
}

const char* pp_schedule_name(workload::PipelineSchedule s) noexcept {
  return s == workload::PipelineSchedule::kGpipe ? "gpipe" : "1f1b";
}

workload::PipelineSchedule pp_schedule_from_string(const std::string& s,
                                                   int lineno) {
  if (s == "gpipe") return workload::PipelineSchedule::kGpipe;
  if (s == "1f1b") return workload::PipelineSchedule::kOneFOneB;
  throw std::invalid_argument("arrival trace line " + std::to_string(lineno) +
                              ": unknown pipeline schedule '" + s + "'");
}

[[noreturn]] void fail(int lineno, const std::string& what) {
  throw std::invalid_argument("arrival trace line " + std::to_string(lineno) +
                              ": " + what);
}

// Reads one expected keyword token; loud mismatch diagnostics.
void expect_key(std::istringstream& ls, const char* key, int lineno) {
  std::string tok;
  if (!(ls >> tok) || tok != key) {
    fail(lineno, "expected '" + std::string(key) + "', got '" + tok + "'");
  }
}

template <typename T>
T read_value(std::istringstream& ls, const char* key, int lineno) {
  expect_key(ls, key, lineno);
  T v{};
  if (!(ls >> v)) fail(lineno, std::string("malformed value for ") + key);
  return v;
}

// Name fields sit last on their line and run to end-of-line (names may
// contain spaces), mirroring fault_plan's free-tail convention.
std::string read_name_tail(std::istringstream& ls, int lineno) {
  expect_key(ls, "name", lineno);
  std::string rest;
  std::getline(ls, rest);
  if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
  if (rest.empty()) fail(lineno, "empty name");
  return rest;
}

std::string next_line(std::istream& in, int& lineno) {
  std::string line;
  if (!std::getline(in, line)) {
    fail(lineno, "unexpected end of trace");
  }
  ++lineno;
  return line;
}

void put_f(std::ostream& out, double v) {
  out << std::setprecision(17) << v;
}

}  // namespace

// ---------------------------------------------------------------------------
// PoissonArrivalGenerator
// ---------------------------------------------------------------------------

PoissonArrivalGenerator::PoissonArrivalGenerator(
    const cluster::TraceConfig& config, int burst_every)
    : config_(config), burst_every_(burst_every), rng_(config.seed) {
  if (config_.arrival_rate <= 0.0) {
    throw std::invalid_argument(
        "PoissonArrivalGenerator: arrival_rate must be > 0");
  }
  if (config_.num_jobs < 0) {
    throw std::invalid_argument(
        "PoissonArrivalGenerator: num_jobs must be >= 0");
  }
  if (config_.paradigm_weights.size() != 6) {
    throw std::invalid_argument(
        "PoissonArrivalGenerator: paradigm_weights must have 6 entries");
  }
  if (config_.rank_choices.empty()) {
    throw std::invalid_argument(
        "PoissonArrivalGenerator: rank_choices must be non-empty");
  }
}

std::optional<Arrival> PoissonArrivalGenerator::next() {
  if (emitted_ >= config_.num_jobs) return std::nullopt;

  // EXACTLY generate_trace's per-job draw sequence (cluster/trace.cpp):
  // paradigm, rank choice, layer count, log-uniform width, then the
  // exponential gap consumed AFTER the arrival instant is recorded. Keeping
  // the order identical is what makes this stream == generate_trace(config)
  // element-for-element (tests/test_service.cpp pins it).
  cluster::JobSpec spec;
  {
    double total = 0.0;
    for (const double w : config_.paradigm_weights) total += w;
    double x = rng_.uniform(0.0, total);
    spec.paradigm = workload::Paradigm::kDpAllReduce;
    for (std::size_t i = 0; i < config_.paradigm_weights.size(); ++i) {
      x -= config_.paradigm_weights[i];
      if (x <= 0.0) {
        spec.paradigm = static_cast<workload::Paradigm>(i);
        break;
      }
    }
  }
  spec.ranks =
      config_.rank_choices[rng_.uniform_int(config_.rank_choices.size())];

  const int layers =
      config_.min_layers +
      static_cast<int>(rng_.uniform_int(static_cast<std::uint64_t>(
          config_.max_layers - config_.min_layers + 1)));
  const double lw = rng_.uniform(std::log(double(config_.min_width)),
                                 std::log(double(config_.max_width)));
  const int width = static_cast<int>(std::exp(lw));

  const int eff_layers = spec.paradigm == workload::Paradigm::kPipeline
                             ? std::max(layers, spec.ranks)
                             : layers;
  spec.model = workload::make_mlp(eff_layers, width, config_.batch);
  spec.gpu = config_.gpu;
  spec.iterations = config_.iterations;
  spec.buckets = std::min(4, eff_layers);
  spec.micro_batches = 4;
  spec.arrival = clock_;

  const double gap = rng_.exponential(config_.arrival_rate);
  ++emitted_;
  // Burst knob: every Nth job's *successor* arrives at the same instant --
  // the gap draw above was still consumed, so the job parameter stream is
  // untouched and burst_every == 0 reproduces generate_trace exactly.
  if (burst_every_ < 2 || emitted_ % burst_every_ != 0) {
    clock_ += gap;
  }
  return Arrival{spec.arrival, std::move(spec)};
}

// ---------------------------------------------------------------------------
// Trace-file serialization
// ---------------------------------------------------------------------------

void write_arrival_trace(std::ostream& out,
                         const std::vector<Arrival>& arrivals) {
  out << "# echelonflow arrival trace v1\n";
  out << "arrivals " << arrivals.size() << "\n";
  for (const Arrival& a : arrivals) {
    const cluster::JobSpec& j = a.job;
    out << "arrival ";
    put_f(out, a.at);
    out << " paradigm " << workload::to_string(j.paradigm) << " ranks "
        << j.ranks << " iterations " << j.iterations << " buckets "
        << j.buckets << " micro " << j.micro_batches << " ppsched "
        << pp_schedule_name(j.pp_schedule) << " jitter ";
    put_f(out, j.compute_jitter);
    out << " jseed " << j.jitter_seed << " submit ";
    put_f(out, j.arrival);
    out << "\n";
    out << "gpu peak ";
    put_f(out, j.gpu.peak_flops);
    out << " eff ";
    put_f(out, j.gpu.efficiency);
    out << " name " << j.gpu.name << "\n";
    out << "model bpe ";
    put_f(out, j.model.bytes_per_element);
    out << " layers " << j.model.layers.size() << " name " << j.model.name
        << "\n";
    for (const workload::LayerSpec& l : j.model.layers) {
      out << "layer params " << l.params << " act ";
      put_f(out, l.activation_bytes);
      out << " fwd ";
      put_f(out, l.fwd_flops);
      out << " bwd ";
      put_f(out, l.bwd_flops);
      out << " name " << l.name << "\n";
    }
  }
}

std::string serialize_arrivals(const std::vector<Arrival>& arrivals) {
  std::ostringstream out;
  write_arrival_trace(out, arrivals);
  return out.str();
}

std::vector<Arrival> parse_arrival_trace(std::istream& in) {
  int lineno = 0;
  std::string line = next_line(in, lineno);
  if (line != "# echelonflow arrival trace v1") {
    fail(lineno, "bad header '" + line + "'");
  }
  line = next_line(in, lineno);
  std::istringstream count_ls(line);
  const auto count = read_value<std::uint64_t>(count_ls, "arrivals", lineno);

  std::vector<Arrival> arrivals;
  arrivals.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Arrival a;
    cluster::JobSpec& j = a.job;
    {
      std::istringstream ls(next_line(in, lineno));
      a.at = read_value<double>(ls, "arrival", lineno);
      expect_key(ls, "paradigm", lineno);
      std::string pname;
      if (!(ls >> pname)) fail(lineno, "missing paradigm");
      j.paradigm = paradigm_from_string(pname, lineno);
      j.ranks = read_value<int>(ls, "ranks", lineno);
      j.iterations = read_value<int>(ls, "iterations", lineno);
      j.buckets = read_value<int>(ls, "buckets", lineno);
      j.micro_batches = read_value<int>(ls, "micro", lineno);
      expect_key(ls, "ppsched", lineno);
      std::string sname;
      if (!(ls >> sname)) fail(lineno, "missing ppsched");
      j.pp_schedule = pp_schedule_from_string(sname, lineno);
      j.compute_jitter = read_value<double>(ls, "jitter", lineno);
      j.jitter_seed = read_value<std::uint64_t>(ls, "jseed", lineno);
      j.arrival = read_value<double>(ls, "submit", lineno);
    }
    {
      std::istringstream ls(next_line(in, lineno));
      expect_key(ls, "gpu", lineno);
      j.gpu.peak_flops = read_value<double>(ls, "peak", lineno);
      j.gpu.efficiency = read_value<double>(ls, "eff", lineno);
      j.gpu.name = read_name_tail(ls, lineno);
    }
    std::uint64_t layer_count = 0;
    {
      std::istringstream ls(next_line(in, lineno));
      expect_key(ls, "model", lineno);
      j.model.bytes_per_element = read_value<double>(ls, "bpe", lineno);
      layer_count = read_value<std::uint64_t>(ls, "layers", lineno);
      j.model.name = read_name_tail(ls, lineno);
    }
    j.model.layers.reserve(layer_count);
    for (std::uint64_t l = 0; l < layer_count; ++l) {
      std::istringstream ls(next_line(in, lineno));
      expect_key(ls, "layer", lineno);
      workload::LayerSpec spec;
      spec.params = read_value<std::uint64_t>(ls, "params", lineno);
      spec.activation_bytes = read_value<double>(ls, "act", lineno);
      spec.fwd_flops = read_value<double>(ls, "fwd", lineno);
      spec.bwd_flops = read_value<double>(ls, "bwd", lineno);
      spec.name = read_name_tail(ls, lineno);
      j.model.layers.push_back(std::move(spec));
    }
    arrivals.push_back(std::move(a));
  }
  return arrivals;
}

std::vector<Arrival> parse_arrival_trace(const std::string& text) {
  std::istringstream in(text);
  return parse_arrival_trace(in);
}

// ---------------------------------------------------------------------------
// TraceFileArrivalReader
// ---------------------------------------------------------------------------

TraceFileArrivalReader::TraceFileArrivalReader(const std::string& path)
    : path_(path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open arrival trace: " + path);
  }
  arrivals_ = parse_arrival_trace(in);
}

std::optional<Arrival> TraceFileArrivalReader::next() {
  if (index_ >= arrivals_.size()) return std::nullopt;
  return arrivals_[index_++];
}

void TraceFileArrivalReader::seek(std::size_t index) {
  if (index > arrivals_.size()) {
    throw std::invalid_argument(
        "TraceFileArrivalReader::seek past end of trace");
  }
  index_ = index;
}

std::vector<Arrival> drain(ArrivalGenerator& gen) {
  std::vector<Arrival> out;
  while (auto a = gen.next()) out.push_back(std::move(*a));
  return out;
}

}  // namespace echelon::service
