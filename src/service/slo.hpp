// Declarative SLO tracking for the service plane (DESIGN.md §15).
//
// An SloObjective states "at most `budget` fraction of jobs may violate
// `kind` <= `threshold` over a rolling `window` of simulated time". The
// tracker ingests one sample per completed job (JCT, queue wait, group
// tardiness) from ServiceLoop::job_finished, maintains the rolling window
// incrementally (a deque of samples plus per-objective violation
// counters), and at every telemetry flush boundary publishes
// per-objective gauges:
//
//   service.slo.<i>.violations    violating samples in the window
//   service.slo.<i>.total        samples in the window
//   service.slo.<i>.error_budget  remaining budget fraction in [−inf, 1]
//   service.slo.<i>.burn_rate     observed violation rate / budgeted rate
//
// burn_rate > 1 means the objective is burning error budget faster than
// allowed (the classic SRE multi-window burn-rate signal); error_budget
// goes negative once the window has already blown the objective.
//
// Everything is a pure function of simulated time and sample values -- no
// wall clock -- so runs are bit-reproducible and snapshot/restore can
// rebuild the tracker exactly (the window contents are re-derived from
// replayed completions; the verification image pins them).

#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.hpp"

namespace echelon::obs {
class Gauge;
class MetricsRegistry;
}

namespace echelon::service {

enum class SloKind : std::uint8_t {
  kJct = 0,        // job completion time: finish - submitted
  kQueueWait,      // admission queue wait: started - submitted
  kTardiness,      // max EchelonFlow group tardiness over the job's groups
};
inline constexpr int kSloKindCount = 3;

[[nodiscard]] std::string_view to_string(SloKind kind) noexcept;

struct SloObjective {
  SloKind kind = SloKind::kJct;
  double threshold = 0.0;  // seconds (tardiness may be negative-capable)
  double budget = 0.0;     // allowed violating fraction in [0, 1]

  [[nodiscard]] bool operator==(const SloObjective&) const = default;
};

struct SloConfig {
  double window = 10.0;  // rolling window in simulated seconds
  std::vector<SloObjective> objectives;

  [[nodiscard]] bool enabled() const noexcept { return !objectives.empty(); }
  [[nodiscard]] bool operator==(const SloConfig&) const = default;
};

// Parses "kind<=threshold@budget" specs, comma-separated, e.g.
//   "jct<=5.0@0.1,queue_wait<=1.0@0.05,tardiness<=0.5@0.2"
// Returns nullopt (with a message in *error when given) on bad input.
[[nodiscard]] std::optional<std::vector<SloObjective>> parse_slo_spec(
    std::string_view spec, std::string* error = nullptr);

// Published gauge values for one objective (also queryable directly).
struct SloGauges {
  std::uint64_t violations = 0;  // in window
  std::uint64_t total = 0;       // in window
  double error_budget = 1.0;     // remaining fraction of allowed violations
  double burn_rate = 0.0;        // violation rate / budgeted rate
};

class SloTracker {
 public:
  explicit SloTracker(SloConfig config);

  [[nodiscard]] const SloConfig& config() const noexcept { return config_; }

  // One sample per completed job, in completion order. `values` indexed by
  // SloKind. Monotone non-decreasing `t` expected (completion order).
  void on_completion(SimTime t, const double (&values)[kSloKindCount]);

  // Boundary hook (called at telemetry flush boundaries): expires samples
  // older than t - window and publishes service.slo.* gauges into
  // `registry` (skipped when null). The window after expiry is a pure
  // function of the expiry time, so the call cadence never changes state.
  void on_boundary(SimTime t, obs::MetricsRegistry* registry);

  [[nodiscard]] SloGauges gauges(std::size_t objective) const;
  [[nodiscard]] std::size_t window_size() const noexcept {
    return window_.size();
  }
  [[nodiscard]] std::uint64_t total_samples() const noexcept {
    return total_samples_;
  }

  // FNV-1a digest over window contents + violation counters, for the
  // snapshot verification image.
  [[nodiscard]] std::uint64_t digest() const noexcept;

 private:
  struct Sample {
    SimTime t;
    double values[kSloKindCount];
  };

  // Per-objective gauge handles into the publishing registry, resolved
  // once: on_boundary runs at every step boundary, and rebuilding the
  // dotted names there (4 lookups + ~5 string allocations per objective
  // per step) dominated the telemetry-on overhead budget. MetricsRegistry
  // hands out stable node addresses, so the pointers stay valid as long
  // as the registry does; the cache rebuilds if a different registry is
  // passed.
  struct GaugeHandles {
    obs::Gauge* violations = nullptr;
    obs::Gauge* total = nullptr;
    obs::Gauge* error_budget = nullptr;
    obs::Gauge* burn_rate = nullptr;
  };

  void expire(SimTime t);
  void bind_gauges(obs::MetricsRegistry* registry);

  SloConfig config_;
  std::deque<Sample> window_;
  // Violating samples currently in the window, per objective.
  std::vector<std::uint64_t> violations_;
  std::uint64_t total_samples_ = 0;
  std::vector<GaugeHandles> handles_;
  obs::MetricsRegistry* bound_registry_ = nullptr;
};

}  // namespace echelon::service
