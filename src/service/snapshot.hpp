// Versioned binary snapshot/restore for the online service (DESIGN.md §13).
//
// The event queue and workflow engines hold arbitrary std::function
// closures, so a direct state-image resume is impossible. The snapshot is
// instead a *replay checkpoint* (event-sourcing): it persists the service
// configuration, the journal of every consumed arrival with its admission
// outcome, the arrival generator's progress state, and a bitwise
// verification image of the simulator. Restore rebuilds the stack from the
// configuration, replays the journal through the identical step loop
// (cross-checking every recomputed admission decision against the journaled
// one), then compares the rebuilt simulator against the verification image
// field-for-field -- any drift fails loudly with the offending field named.
// Because the service loop is pull-driven over a deterministic boundary
// sequence, save -> load -> continue is bit-identical to an uninterrupted
// run (tests/test_service.cpp proves this at every boundary).
//
// Wire format (all integers little-endian, doubles as IEEE-754 bit images):
//
//   magic   8 bytes  "ECHSNAP1"
//   version u32      kSnapshotVersion (readers reject anything else)
//   sections, each {tag u32, length u64, payload}:
//     1 kConfig     ServiceConfig incl. the fault plan's text serialization
//                   and the TelemetryConfig (v2: metrics_every, series
//                   budget, flight-recorder capacity, SLO objectives)
//     2 kArrivals   journal: count, then {outcome u8, at f64, JobSpec}
//     3 kGenerator  generator kind + progress (Poisson RNG words / trace
//                   file cursor) + the fetched-but-unconsumed arrival
//     4 kService    step counter, tick index, journal length, clocks
//     5 kVerify     named scalar image + per-flow records (see .cpp)
//     6 kTelemetry  (v2) named scalar image over the telemetry state:
//                   flush counters, SLO window digest, flight-ring digest,
//                   Prometheus exposition digest. Telemetry *state* is
//                   config-driven, so journal replay rebuilds it; this
//                   section verifies the rebuild bit-for-bit.
//   end tag u32      0xFFFFFFFF
//   checksum u64     FNV-1a over every preceding byte
//
// Every byte flip is detected: mutations in the header fail the magic or
// version check, anything else fails the checksum *before* any payload is
// parsed, and a checksum-valid but semantically-wrong image (version bump
// without converter, code drift) fails replay or verification. A snapshot
// never loads garbage (tests/test_service.cpp fuzzes this with seeded
// byte flips over every offset class).

#pragma once

#include <memory>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/service.hpp"

namespace echelon::service {

inline constexpr char kSnapshotMagic[8] = {'E', 'C', 'H', 'S', 'N', 'A', 'P',
                                           '1'};
// v2: TelemetryConfig in kConfig + the kTelemetry verification section.
inline constexpr std::uint32_t kSnapshotVersion = 2;

// Thrown on any malformed, truncated, corrupt, or divergent snapshot. The
// message always names what failed and where.
struct SnapshotError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Serializes the loop's full state. Call only at a step boundary (between
// ServiceLoop::step() calls); mid-event state is not capturable.
[[nodiscard]] std::string save_snapshot(const ServiceLoop& loop);
void save_snapshot_file(const ServiceLoop& loop, const std::string& path);

// Observability to attach to the restored loop *after* replay (replay runs
// dark so a restored run's trace stream contains only post-snapshot events;
// prefix events live in the original run's sink).
struct RestoreOptions {
  obs::TraceSink* trace_sink = nullptr;
  obs::TraceDetail trace_detail = obs::TraceDetail::kOff;
  obs::MetricsRegistry* metrics = nullptr;
  // Telemetry output targets to reattach (telemetry *state* -- SLO window,
  // flight ring, flush counters -- is rebuilt by replay and verified
  // against the kTelemetry section; outputs are per-process).
  TelemetryOutputs telemetry;
};

// Rebuilds a ServiceLoop from snapshot bytes. Throws SnapshotError on any
// validation failure; never returns a partially-restored loop.
[[nodiscard]] std::unique_ptr<ServiceLoop> restore_snapshot(
    const std::string& bytes, const RestoreOptions& options = {});
[[nodiscard]] std::unique_ptr<ServiceLoop> restore_snapshot_file(
    const std::string& path, const RestoreOptions& options = {});

}  // namespace echelon::service
