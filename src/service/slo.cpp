#include "service/slo.hpp"

#include <charconv>
#include <cstring>

#include "obs/metrics.hpp"

namespace echelon::service {

namespace {

bool kind_from_name(std::string_view name, SloKind& out) {
  if (name == "jct") {
    out = SloKind::kJct;
  } else if (name == "queue_wait") {
    out = SloKind::kQueueWait;
  } else if (name == "tardiness") {
    out = SloKind::kTardiness;
  } else {
    return false;
  }
  return true;
}

bool parse_double(std::string_view s, double& out) {
  const char* begin = s.data();
  const char* end = begin + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end;
}

void fnv1a_u64(std::uint64_t& h, std::uint64_t v) {
  for (std::size_t i = 0; i < sizeof(v); ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
}

std::uint64_t f64_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

std::string_view to_string(SloKind kind) noexcept {
  switch (kind) {
    case SloKind::kJct:
      return "jct";
    case SloKind::kQueueWait:
      return "queue_wait";
    case SloKind::kTardiness:
      return "tardiness";
  }
  return "?";
}

std::optional<std::vector<SloObjective>> parse_slo_spec(std::string_view spec,
                                                        std::string* error) {
  const auto fail = [error](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return std::nullopt;
  };
  std::vector<SloObjective> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string_view item = spec.substr(
        pos, comma == std::string_view::npos ? comma : comma - pos);
    if (!item.empty()) {
      const std::size_t le = item.find("<=");
      if (le == std::string_view::npos) {
        return fail("missing '<=' in SLO objective '" + std::string(item) +
                    "' (expected kind<=threshold@budget)");
      }
      const std::size_t at = item.find('@', le + 2);
      if (at == std::string_view::npos) {
        return fail("missing '@budget' in SLO objective '" +
                    std::string(item) + "'");
      }
      SloObjective obj;
      if (!kind_from_name(item.substr(0, le), obj.kind)) {
        return fail("unknown SLO kind '" + std::string(item.substr(0, le)) +
                    "' (expected jct | queue_wait | tardiness)");
      }
      if (!parse_double(item.substr(le + 2, at - le - 2), obj.threshold)) {
        return fail("bad threshold in SLO objective '" + std::string(item) +
                    "'");
      }
      if (!parse_double(item.substr(at + 1), obj.budget) || obj.budget < 0.0 ||
          obj.budget > 1.0) {
        return fail("bad budget in SLO objective '" + std::string(item) +
                    "' (expected a fraction in [0, 1])");
      }
      out.push_back(obj);
    }
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) return fail("empty SLO spec");
  return out;
}

SloTracker::SloTracker(SloConfig config) : config_(std::move(config)) {
  violations_.assign(config_.objectives.size(), 0);
}

void SloTracker::on_completion(SimTime t,
                               const double (&values)[kSloKindCount]) {
  Sample s;
  s.t = t;
  for (int i = 0; i < kSloKindCount; ++i) s.values[i] = values[i];
  window_.push_back(s);
  ++total_samples_;
  for (std::size_t i = 0; i < config_.objectives.size(); ++i) {
    const SloObjective& obj = config_.objectives[i];
    if (values[static_cast<std::size_t>(obj.kind)] > obj.threshold) {
      ++violations_[i];
    }
  }
}

void SloTracker::expire(SimTime t) {
  const SimTime cutoff = t - config_.window;
  while (!window_.empty() && window_.front().t < cutoff) {
    const Sample& s = window_.front();
    for (std::size_t i = 0; i < config_.objectives.size(); ++i) {
      const SloObjective& obj = config_.objectives[i];
      if (s.values[static_cast<std::size_t>(obj.kind)] > obj.threshold) {
        --violations_[i];
      }
    }
    window_.pop_front();
  }
}

SloGauges SloTracker::gauges(std::size_t objective) const {
  SloGauges g;
  g.violations = violations_[objective];
  g.total = window_.size();
  const double budget = config_.objectives[objective].budget;
  if (g.total == 0) {
    g.error_budget = 1.0;
    g.burn_rate = 0.0;
    return g;
  }
  const double rate =
      static_cast<double>(g.violations) / static_cast<double>(g.total);
  if (budget > 0.0) {
    g.error_budget = 1.0 - rate / budget;
    g.burn_rate = rate / budget;
  } else {
    // Zero budget: any violation is an immediate full burn.
    g.error_budget = g.violations == 0 ? 1.0 : 0.0;
    g.burn_rate = g.violations == 0 ? 0.0 : 1e9;
  }
  return g;
}

void SloTracker::bind_gauges(obs::MetricsRegistry* registry) {
  handles_.clear();
  handles_.reserve(config_.objectives.size());
  for (std::size_t i = 0; i < config_.objectives.size(); ++i) {
    const std::string prefix = "service.slo." + std::to_string(i) + ".";
    GaugeHandles h;
    h.violations = &registry->gauge(prefix + "violations");
    h.total = &registry->gauge(prefix + "total");
    h.error_budget = &registry->gauge(prefix + "error_budget");
    h.burn_rate = &registry->gauge(prefix + "burn_rate");
    handles_.push_back(h);
  }
  bound_registry_ = registry;
}

void SloTracker::on_boundary(SimTime t, obs::MetricsRegistry* registry) {
  expire(t);
  if (registry == nullptr) return;
  if (registry != bound_registry_) bind_gauges(registry);
  for (std::size_t i = 0; i < config_.objectives.size(); ++i) {
    const SloGauges g = gauges(i);
    const GaugeHandles& h = handles_[i];
    h.violations->set(static_cast<double>(g.violations));
    h.total->set(static_cast<double>(g.total));
    h.error_budget->set(g.error_budget);
    h.burn_rate->set(g.burn_rate);
  }
}

std::uint64_t SloTracker::digest() const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  fnv1a_u64(h, total_samples_);
  fnv1a_u64(h, window_.size());
  for (const Sample& s : window_) {
    fnv1a_u64(h, f64_bits(s.t));
    for (double v : s.values) fnv1a_u64(h, f64_bits(v));
  }
  for (std::uint64_t v : violations_) fnv1a_u64(h, v);
  return h;
}

}  // namespace echelon::service
