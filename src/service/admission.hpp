// Pluggable admission control for the online service loop (DESIGN.md §13).
//
// The decision is a pure function of three observable numbers -- running
// jobs, queued jobs, and the registry's accumulated total tardiness -- so
// the same stream of arrivals always produces the same stream of decisions.
// That determinism is load-bearing: snapshot restore *replays* the arrival
// journal through this function and cross-checks every recomputed outcome
// against the journaled one (src/service/snapshot.cpp).

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "common/time.hpp"

namespace echelon::service {

enum class AdmissionPolicy : std::uint32_t {
  kAcceptAll = 0,     // every arrival launches immediately
  kQueueWithCap = 1,  // bounded running set; overflow queues up to a cap
  kTardinessAware = 2,  // queue-with-cap that sheds load once the cluster
                        // is already missing deadlines
};

[[nodiscard]] constexpr const char* to_string(AdmissionPolicy p) noexcept {
  switch (p) {
    case AdmissionPolicy::kAcceptAll: return "accept-all";
    case AdmissionPolicy::kQueueWithCap: return "queue-with-cap";
    case AdmissionPolicy::kTardinessAware: return "tardiness-aware";
  }
  return "?";
}

[[nodiscard]] inline AdmissionPolicy admission_policy_from_string(
    std::string_view s) {
  if (s == "accept-all") return AdmissionPolicy::kAcceptAll;
  if (s == "queue-with-cap") return AdmissionPolicy::kQueueWithCap;
  if (s == "tardiness-aware") return AdmissionPolicy::kTardinessAware;
  throw std::invalid_argument("unknown admission policy: " + std::string(s));
}

// Journaled per-arrival decision. The numeric values are part of the
// snapshot wire format (SNAPSHOT §kArrivals) -- do not renumber.
enum class AdmissionOutcome : std::uint8_t {
  kAdmitted = 0,
  kQueued = 1,
  kRejected = 2,
};

[[nodiscard]] constexpr const char* to_string(AdmissionOutcome o) noexcept {
  switch (o) {
    case AdmissionOutcome::kAdmitted: return "admitted";
    case AdmissionOutcome::kQueued: return "queued";
    case AdmissionOutcome::kRejected: return "rejected";
  }
  return "?";
}

struct AdmissionConfig {
  AdmissionPolicy policy = AdmissionPolicy::kAcceptAll;
  // Max concurrently-running jobs; 0 = unlimited. Ignored by kAcceptAll.
  std::uint64_t max_running = 0;
  // Max jobs waiting for a running slot; arrivals past it are rejected.
  std::uint64_t queue_cap = 16;
  // kTardinessAware only: once the registry's total tardiness exceeds this,
  // over-capacity arrivals are rejected outright instead of queued --
  // queueing more work a cluster that is already late only deepens the
  // deficit (the paper's Eq. 3 objective is additive in per-group lateness).
  Duration tardiness_limit = 1.0;
};

[[nodiscard]] inline AdmissionOutcome decide(const AdmissionConfig& cfg,
                                             std::uint64_t running,
                                             std::uint64_t queued,
                                             Duration total_tardiness) {
  switch (cfg.policy) {
    case AdmissionPolicy::kAcceptAll:
      return AdmissionOutcome::kAdmitted;
    case AdmissionPolicy::kQueueWithCap:
      if (cfg.max_running == 0 || running < cfg.max_running) {
        return AdmissionOutcome::kAdmitted;
      }
      return queued < cfg.queue_cap ? AdmissionOutcome::kQueued
                                    : AdmissionOutcome::kRejected;
    case AdmissionPolicy::kTardinessAware:
      if (cfg.max_running == 0 || running < cfg.max_running) {
        return AdmissionOutcome::kAdmitted;
      }
      if (total_tardiness > cfg.tardiness_limit) {
        return AdmissionOutcome::kRejected;
      }
      return queued < cfg.queue_cap ? AdmissionOutcome::kQueued
                                    : AdmissionOutcome::kRejected;
  }
  return AdmissionOutcome::kRejected;
}

}  // namespace echelon::service
