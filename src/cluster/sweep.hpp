// Parallel experiment sweep runner.
//
// A "sweep" is a list of independent experiment configurations (points).
// run_sweep executes them across a small thread pool and returns results in
// point order. Determinism contract: each experiment is a pure function of
// its SweepPoint -- the simulator is single-threaded per experiment and all
// randomness (e.g. compute jitter) is seeded from the specs -- so the result
// vector is identical for any thread count, including 1 (the host-side
// `wall_ms` timing field is the only exception). The golden suite asserts
// exactly this.
//
// Scheduling: workers claim point indices from a shared atomic counter
// (dynamic load balancing; sweep points can differ wildly in cost).
// Exceptions thrown by a point are captured and rethrown on the calling
// thread -- the first failing index wins, matching serial semantics.

#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "cluster/experiment.hpp"

namespace echelon::cluster {

// One experiment in a sweep: a job mix plus the configuration to run it
// under.
struct SweepPoint {
  std::vector<JobSpec> jobs;
  ExperimentConfig config;
};

struct SweepOptions {
  // Worker threads. 0 = one per hardware thread (at least 1); 1 = run
  // serially on the calling thread (no pool spawned).
  unsigned threads = 0;
};

// Runs every point and returns results[i] == run_experiment(points[i]).
[[nodiscard]] std::vector<ExperimentResult> run_sweep(
    const std::vector<SweepPoint>& points, const SweepOptions& options = {});

// Deterministic parallel-for underlying run_sweep, exposed for benches whose
// per-point runner is not run_experiment. Invokes fn(i) for every
// i in [0, n) exactly once across `threads` workers (same semantics for
// `threads` as SweepOptions::threads). fn must not touch shared mutable
// state except through index i. Rethrows the lowest-index exception.
void parallel_for_indexed(std::size_t n, unsigned threads,
                          const std::function<void(std::size_t)>& fn);

}  // namespace echelon::cluster
