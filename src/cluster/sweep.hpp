// Parallel experiment sweep runner.
//
// A "sweep" is a list of independent experiment configurations (points).
// run_sweep executes them across a small thread pool and returns results in
// point order. Determinism contract: each experiment is a pure function of
// its SweepPoint -- the simulator is single-threaded per experiment and all
// randomness (e.g. compute jitter) is seeded from the specs -- so the result
// vector is identical for any thread count, including 1 (the host-side
// `wall_ms` timing field is the only exception). The golden suite asserts
// exactly this.
//
// Scheduling: points dispatch onto the process-wide echelon::ThreadPool
// (common/pool.hpp) -- no per-call thread spawn; repeated sweeps reuse
// parked workers. Workers steal point indices from per-worker atomic
// cursors (dynamic load balancing; sweep points can differ wildly in
// cost). Exceptions thrown by a point are captured and rethrown on the
// calling thread -- the lowest failing index wins, matching serial
// semantics. Nested-parallelism safe: a sweep point whose experiment
// config enables intra-run parallelism (ExperimentConfig::threads) shares
// the same pool; inner dispatches from pool workers run inline-serially
// by construction, so a sweep can never deadlock on its own workers.

#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "cluster/experiment.hpp"
#include "obs/metrics.hpp"

namespace echelon::cluster {

// One experiment in a sweep: a job mix plus the configuration to run it
// under.
struct SweepPoint {
  std::vector<JobSpec> jobs;
  ExperimentConfig config;
};

struct SweepOptions {
  // Worker threads. 0 = one per hardware thread (at least 1); 1 = run
  // serially on the calling thread (no pool spawned).
  unsigned threads = 0;
};

// Per-sweep-point metric capture (DESIGN.md §9). When a SweepCapture is
// passed to run_sweep, every point gets its *own* MetricsRegistry, created
// and written exclusively on the worker thread that runs the point
// (thread-confined: registries are not thread-safe and never need to be
// here). After the pool joins, the per-point snapshots are stored in point
// order and merged deterministically -- the merged snapshot is identical for
// any thread count. A point whose config already carries a `metrics`
// registry keeps it (the caller owns that one; its snapshot is still
// captured).
struct SweepCapture {
  std::vector<obs::MetricsSnapshot> point_metrics;  // [i] <-> points[i]
  obs::MetricsSnapshot merged;  // counters summed, gauges averaged
};

// Runs every point and returns results[i] == run_experiment(points[i]).
// `capture` (optional) receives per-point metrics snapshots plus their
// deterministic merge; trace sinks, being caller-owned, are attached
// per-point through each point's config instead.
[[nodiscard]] std::vector<ExperimentResult> run_sweep(
    const std::vector<SweepPoint>& points, const SweepOptions& options = {},
    SweepCapture* capture = nullptr);

// Deterministic parallel-for underlying run_sweep, exposed for benches whose
// per-point runner is not run_experiment. Invokes fn(i) for every
// i in [0, n) exactly once across `threads` workers (same semantics for
// `threads` as SweepOptions::threads). fn must not touch shared mutable
// state except through index i. Rethrows the lowest-index exception.
void parallel_for_indexed(std::size_t n, unsigned threads,
                          const std::function<void(std::size_t)>& fn);

}  // namespace echelon::cluster
