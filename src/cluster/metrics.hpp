// Experiment result types.

#pragma once

#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/time.hpp"
#include "workload/paradigm.hpp"

namespace echelon::cluster {

struct JobMetrics {
  JobId job;
  workload::Paradigm paradigm = workload::Paradigm::kDpAllReduce;
  std::string description;
  SimTime arrival = 0.0;
  SimTime finish = 0.0;
  std::vector<Duration> iteration_times;
  double mean_gpu_idle_fraction = 0.0;

  [[nodiscard]] Duration jct() const noexcept { return finish - arrival; }
  [[nodiscard]] Duration mean_iteration_time() const noexcept {
    if (iteration_times.empty()) return 0.0;
    Duration s = 0.0;
    for (Duration t : iteration_times) s += t;
    return s / static_cast<double>(iteration_times.size());
  }
};

struct ExperimentResult {
  std::string scheduler_name;
  std::vector<JobMetrics> jobs;

  // Objective values from the registry (Eqs. 3/4).
  Duration total_tardiness = 0.0;
  Duration weighted_total_tardiness = 0.0;

  // Control-plane cost.
  std::uint64_t control_invocations = 0;
  std::uint64_t heuristic_runs = 0;   // coordinator only; 0 otherwise
  std::uint64_t reuse_hits = 0;       // coordinator only
  double wall_ms = 0.0;               // host-side runtime of the simulation

  // Fault-injection summary (all zero when no fault plan was attached).
  std::uint64_t fault_events = 0;     // plan events fired
  std::uint64_t flow_reroutes = 0;    // flows re-pathed around a dead link
  std::uint64_t flow_parks = 0;       // flows pulled from the network
  std::uint64_t flow_retries = 0;     // failed resubmission attempts
  std::uint64_t flows_abandoned = 0;  // retry budget exhausted
  Duration flow_downtime = 0.0;       // total time flows spent parked

  SimTime makespan = 0.0;

  [[nodiscard]] Samples jct_samples() const {
    Samples s;
    for (const JobMetrics& j : jobs) s.add(j.jct());
    return s;
  }
  [[nodiscard]] Samples iteration_samples() const {
    Samples s;
    for (const JobMetrics& j : jobs) s.add_all(j.iteration_times);
    return s;
  }
  [[nodiscard]] double mean_idle_fraction() const {
    if (jobs.empty()) return 0.0;
    double s = 0.0;
    for (const JobMetrics& j : jobs) s += j.mean_gpu_idle_fraction;
    return s / static_cast<double>(jobs.size());
  }
};

}  // namespace echelon::cluster
