// Cluster experiment runner: places jobs on a shared fabric, runs them under
// a chosen network scheduler, and collects the metrics every bench reports.

#pragma once

#include <vector>

#include "cluster/job.hpp"
#include "cluster/metrics.hpp"
#include "common/units.hpp"
#include "echelon/echelon_madd.hpp"
#include "faultsim/fault_plan.hpp"
#include "netsim/simulator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/coordinator.hpp"

namespace echelon::cluster {

enum class SchedulerKind {
  kFairSharing,
  kSrpt,         // pFabric-style per-flow shortest-remaining-first
  kCoflowMadd,
  kSincronia,    // order-first BSSI + greedy rate assignment
  kEchelonMadd,
  kCoordinator,  // EchelonFlow-MADD behind the runtime Coordinator
};

[[nodiscard]] constexpr const char* to_string(SchedulerKind k) noexcept {
  switch (k) {
    case SchedulerKind::kFairSharing: return "fair";
    case SchedulerKind::kSrpt: return "srpt";
    case SchedulerKind::kCoflowMadd: return "coflow-madd";
    case SchedulerKind::kSincronia: return "sincronia";
    case SchedulerKind::kEchelonMadd: return "echelonflow-madd";
    case SchedulerKind::kCoordinator: return "coordinator";
  }
  return "?";
}

enum class FabricKind {
  kBigSwitch,  // non-blocking crossbar (Coflow-literature default)
  kLeafSpine,  // two-tier Clos; oversubscription makes the core contend
};

struct ExperimentConfig {
  SchedulerKind scheduler = SchedulerKind::kEchelonMadd;

  // Fabric: `hosts` ports of `port_capacity` each. Jobs are packed
  // rank-by-rank starting at consecutive offsets, so ports are shared
  // between jobs whenever sum(ranks) > hosts (GPU fragmentation, paper §5).
  FabricKind fabric = FabricKind::kBigSwitch;
  int hosts = 16;
  BytesPerSec port_capacity = gbps(100);
  // Leaf-spine only: hosts-per-leaf / uplink oversubscription ratio; the
  // fabric gets hosts/8 leaves of 8 hosts and 2 spines whose uplinks carry
  // 8 * port_capacity / (2 * oversubscription) each.
  double oversubscription = 1.0;

  // Scheduler knobs.
  ef::EchelonMaddConfig echelon;
  bool coflow_work_conserving = true;
  runtime::CoordinatorConfig coordinator;

  // Wrap the policy in K-queue priority enforcement (0 = exact rates).
  int priority_queues = 0;

  // Simulator event-loop strategy. kLazy is the production fast path;
  // kEagerScan is the O(active)-per-event reference the golden-equivalence
  // suite compares against (results are bit-identical by construction).
  netsim::SimLoopMode loop_mode = netsim::SimLoopMode::kLazy;

  // Reallocation strategy. kIncremental is the production fast path
  // (per-component water-fill with a converged-rate cache); kFullRecompute
  // water-fills every component on every pass and is the reference mode of
  // tests/test_alloc_equivalence.cpp (results are bit-identical).
  netsim::AllocMode alloc_mode = netsim::AllocMode::kIncremental;

  // Water-fill granularity. kClass (the production default) fills one unit
  // per (route, weight, cap) equivalence class and fans rates back out;
  // kPerFlow fills every flow individually. Results are bit-identical
  // (tests/test_route_class_equivalence.cpp pins this differentially).
  netsim::FillMode fill_mode = netsim::FillMode::kClass;

  // Control-plane recomputation strategy (DESIGN.md §12). kIncremental is
  // the production fast path (dirty-job-scoped scheduler passes driven by
  // the simulator's mark forwarding); kFullRecompute recomputes every
  // decision every pass and is the reference mode of
  // tests/test_churn_equivalence.cpp (results are bit-identical).
  netsim::SchedMode sched_mode = netsim::SchedMode::kIncremental;

  // Non-zero: drive seeded deterministic weight churn through the Flow
  // notification setters while the run executes (one active flow perturbed
  // per millisecond tick). Exercises the external-churn dirty path
  // (pre-control control_dirty scan -> job mark) outside the simulator's
  // own mark sites; the perturbation is overwritten by the next scheduler
  // pass, so it stresses the control plane without changing placements.
  // Identical across SchedMode by construction (EXPERIMENTS.md EXT-R).
  std::uint64_t churn_seed = 0;

  // Optional deterministic fault script, replayed by a FaultInjector during
  // the run (DESIGN.md §8). Must outlive run_experiment; read-only, so one
  // plan can be shared across sweep threads. nullptr = fault-free. A
  // non-null plan with zero events produces byte-identical results to
  // nullptr (proven by tests/test_faults.cpp).
  const faultsim::FaultPlan* fault_plan = nullptr;

  // --- intra-run parallelism (DESIGN.md §10) ---
  // Worker count for the simulator's data-parallel sections (per-component
  // water-fill, active-flow stamping, completion-heap preparation, group-
  // cache validation). 1 = fully serial (default; no pool touched); 0 = all
  // participants of the process-wide shared pool; N = at most N
  // participants. Results are bit-identical at every setting -- parallel
  // sections execute the same FP expressions on the same operands and merge
  // in a deterministic order (tests/test_parallel_equivalence.cpp pins
  // this). Nested-safe under run_sweep: inner dispatches from sweep workers
  // run inline-serially on the shared pool.
  unsigned threads = 1;

  // --- observability (DESIGN.md §9) ---
  // Optional structured-event sink, threaded into the Simulator, the
  // RateAllocator, the Coordinator and the FaultInjector. The emitters only
  // ever *read* simulation state: ExperimentResults with and without a sink
  // are byte-identical (tests/test_obs.cpp pins this). Must outlive
  // run_experiment; nullptr (or kOff) means zero extra work.
  obs::TraceSink* trace_sink = nullptr;
  obs::TraceDetail trace_detail = obs::TraceDetail::kOff;
  // Optional metrics registry: the run samples per-link utilization /
  // active-flow series and flow-completion / queue-depth histograms while it
  // executes, and run_experiment fills run-level counters and gauges
  // (allocator cache behaviour, coordinator stats, fault summary, per-group
  // tardiness histogram) at the end. Same read-only contract as trace_sink.
  obs::MetricsRegistry* metrics = nullptr;
};

[[nodiscard]] ExperimentResult run_experiment(const std::vector<JobSpec>& jobs,
                                              const ExperimentConfig& config);

// Expands one JobSpec into its paradigm's workflow graph on the given
// placement, registering echelon groups under `id`. `ps_host`/`ps_worker`
// are only consumed by the DP-PS paradigm (the parameter-server endpoint).
// Shared by run_experiment's batch placement loop and the online service's
// incremental job launch (src/service): both must expand jobs identically
// for batch and streaming runs to be comparable.
[[nodiscard]] workload::GeneratedJob generate_job_workflow(
    const JobSpec& spec, const workload::Placement& placement, NodeId ps_host,
    WorkerId ps_worker, ef::Registry& registry, JobId id);

}  // namespace echelon::cluster
