#include "cluster/sweep.hpp"

#include <algorithm>
#include <thread>

#include "common/pool.hpp"

namespace echelon::cluster {

namespace {

[[nodiscard]] unsigned resolve_threads(unsigned requested,
                                       std::size_t n) noexcept {
  unsigned t = requested;
  if (t == 0) {
    t = std::thread::hardware_concurrency();
    if (t == 0) t = 1;
  }
  // Never engage more workers than there are points.
  t = static_cast<unsigned>(
      std::min<std::size_t>(t, std::max<std::size_t>(n, 1)));
  return std::max(1u, t);
}

}  // namespace

void parallel_for_indexed(std::size_t n, unsigned threads,
                          const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  threads = resolve_threads(threads, n);

  // Dispatch onto the process-wide shared pool instead of spawning a
  // per-call thread vector (satellite of DESIGN.md §10): repeated sweeps
  // reuse parked workers, and a sweep point that itself runs a threaded
  // simulator nests safely -- ThreadPool::run detects re-entry from a pool
  // task and degrades to an inline serial loop rather than deadlocking on
  // its own workers. The pool preserves this function's contract: every
  // index is attempted exactly once and the lowest failing index is
  // rethrown, matching what a serial loop would have thrown first.
  ThreadPool::shared().run(n, threads,
                           [&fn](unsigned, std::size_t i) { fn(i); });
}

std::vector<ExperimentResult> run_sweep(const std::vector<SweepPoint>& points,
                                        const SweepOptions& options,
                                        SweepCapture* capture) {
  std::vector<ExperimentResult> results(points.size());
  if (capture == nullptr) {
    parallel_for_indexed(points.size(), options.threads, [&](std::size_t i) {
      results[i] = run_experiment(points[i].jobs, points[i].config);
    });
    return results;
  }

  // Metric capture: one registry per point, created and written only on the
  // worker thread that owns the point (thread-confined -- registries are not
  // thread-safe, and never shared here). Snapshots land in a pre-sized slot
  // vector, so the merge below sees them in point order regardless of
  // completion order.
  capture->point_metrics.assign(points.size(), obs::MetricsSnapshot{});
  parallel_for_indexed(points.size(), options.threads, [&](std::size_t i) {
    ExperimentConfig config = points[i].config;
    obs::MetricsRegistry local;
    if (config.metrics == nullptr) config.metrics = &local;
    results[i] = run_experiment(points[i].jobs, config);
    capture->point_metrics[i] = config.metrics->snapshot();
  });
  capture->merged = obs::merge_snapshots(capture->point_metrics);
  return results;
}

}  // namespace echelon::cluster
