#include "cluster/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

namespace echelon::cluster {

namespace {

[[nodiscard]] unsigned resolve_threads(unsigned requested,
                                       std::size_t n) noexcept {
  unsigned t = requested;
  if (t == 0) {
    t = std::thread::hardware_concurrency();
    if (t == 0) t = 1;
  }
  // Never spawn more workers than there are points.
  t = static_cast<unsigned>(
      std::min<std::size_t>(t, std::max<std::size_t>(n, 1)));
  return std::max(1u, t);
}

}  // namespace

void parallel_for_indexed(std::size_t n, unsigned threads,
                          const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  threads = resolve_threads(threads, n);

  // One exception slot per point: workers never touch each other's slots,
  // so no lock is needed, and rethrowing the lowest failing index matches
  // what a serial loop would have thrown first.
  std::vector<std::exception_ptr> errors(n);
  std::atomic<std::size_t> next{0};
  const auto worker = [&]() noexcept {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };

  if (threads == 1) {
    // Serial fast path: run on the calling thread, no pool.
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& th : pool) th.join();
  }

  for (std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

std::vector<ExperimentResult> run_sweep(const std::vector<SweepPoint>& points,
                                        const SweepOptions& options,
                                        SweepCapture* capture) {
  std::vector<ExperimentResult> results(points.size());
  if (capture == nullptr) {
    parallel_for_indexed(points.size(), options.threads, [&](std::size_t i) {
      results[i] = run_experiment(points[i].jobs, points[i].config);
    });
    return results;
  }

  // Metric capture: one registry per point, created and written only on the
  // worker thread that owns the point (thread-confined -- registries are not
  // thread-safe, and never shared here). Snapshots land in a pre-sized slot
  // vector, so the merge below sees them in point order regardless of
  // completion order.
  capture->point_metrics.assign(points.size(), obs::MetricsSnapshot{});
  parallel_for_indexed(points.size(), options.threads, [&](std::size_t i) {
    ExperimentConfig config = points[i].config;
    obs::MetricsRegistry local;
    if (config.metrics == nullptr) config.metrics = &local;
    results[i] = run_experiment(points[i].jobs, config);
    capture->point_metrics[i] = config.metrics->snapshot();
  });
  capture->merged = obs::merge_snapshots(capture->point_metrics);
  return results;
}

}  // namespace echelon::cluster
