// Multi-tenant cluster job model.

#pragma once

#include <string>

#include "common/time.hpp"
#include "workload/paradigm.hpp"
#include "workload/pp.hpp"

namespace echelon::cluster {

struct JobSpec {
  workload::Paradigm paradigm = workload::Paradigm::kDpAllReduce;
  workload::ModelSpec model;
  workload::GpuSpec gpu;
  int ranks = 4;
  int iterations = 2;
  SimTime arrival = 0.0;

  // Paradigm-specific knobs (ignored where not applicable).
  int buckets = 4;                       // DP / DP-PS
  int micro_batches = 4;                 // PP
  workload::PipelineSchedule pp_schedule =
      workload::PipelineSchedule::kGpipe;

  // Multiplicative per-task compute jitter (PP / FSDP; relative stddev,
  // 0 = exact). The jitter stream is seeded per job at generation time, so
  // results are a pure function of the spec -- independent of which thread
  // of a sweep runs the experiment.
  double compute_jitter = 0.0;
  std::uint64_t jitter_seed = 1;

  [[nodiscard]] std::string describe() const {
    return std::string(workload::to_string(paradigm)) + "/" + model.name +
           "/x" + std::to_string(ranks);
  }
};

}  // namespace echelon::cluster
