#include "cluster/experiment.hpp"

#include <cassert>
#include <memory>

#include "common/pool.hpp"
#include "common/timer.hpp"
#include "echelon/coflow_madd.hpp"
#include "echelon/sincronia.hpp"
#include "echelon/srpt.hpp"
#include "faultsim/injector.hpp"
#include "netsim/workflow.hpp"
#include "runtime/priority_queue.hpp"
#include "topology/builders.hpp"
#include "workload/dp.hpp"
#include "workload/ep.hpp"
#include "workload/fsdp.hpp"
#include "workload/tp.hpp"

namespace echelon::cluster {

workload::GeneratedJob generate_job_workflow(const JobSpec& spec,
                                             const workload::Placement& placement,
                                             NodeId ps_host, WorkerId ps_worker,
                                             ef::Registry& registry, JobId id) {
  using workload::Paradigm;
  switch (spec.paradigm) {
    case Paradigm::kDpAllReduce:
      return workload::generate_dp_allreduce(
          {.model = spec.model,
           .gpu = spec.gpu,
           .buckets = spec.buckets,
           .iterations = spec.iterations},
          placement, registry, id);
    case Paradigm::kDpPs:
      return workload::generate_dp_ps({.model = spec.model,
                                       .gpu = spec.gpu,
                                       .buckets = spec.buckets,
                                       .iterations = spec.iterations},
                                      placement, ps_host, ps_worker, registry,
                                      id);
    case Paradigm::kPipeline:
      return workload::generate_pipeline({.model = spec.model,
                                          .gpu = spec.gpu,
                                          .micro_batches = spec.micro_batches,
                                          .iterations = spec.iterations,
                                          .schedule = spec.pp_schedule,
                                          .compute_jitter = spec.compute_jitter,
                                          .jitter_seed = spec.jitter_seed},
                                         placement, registry, id);
    case Paradigm::kTensor:
      return workload::generate_tensor({.model = spec.model,
                                        .gpu = spec.gpu,
                                        .iterations = spec.iterations},
                                       placement, registry, id);
    case Paradigm::kFsdp:
      return workload::generate_fsdp({.model = spec.model,
                                      .gpu = spec.gpu,
                                      .iterations = spec.iterations,
                                      .compute_jitter = spec.compute_jitter,
                                      .jitter_seed = spec.jitter_seed},
                                     placement, registry, id);
    case Paradigm::kExpert:
      return workload::generate_expert({.model = spec.model,
                                        .gpu = spec.gpu,
                                        .iterations = spec.iterations},
                                       placement, registry, id);
  }
  assert(false && "unknown paradigm");
  return {};
}

namespace {

struct LiveJob {
  JobSpec spec;
  workload::GeneratedJob generated;
  std::vector<WorkerId> workers;
  std::unique_ptr<netsim::WorkflowEngine> engine;
};

// Seeded external-churn driver (EXPERIMENTS.md EXT-R): every `period` of
// simulated time, perturb one active routed flow's weight through the
// notification setters. The next scheduler pass overwrites the perturbation,
// so the workload outcome is untouched; what this exercises is the
// pre-control control_dirty scan -> per-job mark -> scoped-recompute path
// that no simulator-internal event would otherwise trigger. Fully
// deterministic (SplitMix64 over flow indices) and SchedMode-independent.
class ChurnDriver {
 public:
  ChurnDriver(std::uint64_t seed, Duration period,
              const std::vector<LiveJob>* live)
      : state_(seed), period_(period), live_(live) {}

  void arm(netsim::Simulator& sim, SimTime at) {
    sim.schedule_at(at, [this](netsim::Simulator& s) { tick(s); });
  }

 private:
  [[nodiscard]] std::uint64_t next() noexcept {  // SplitMix64
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  void tick(netsim::Simulator& s) {
    const std::size_t n = s.flow_count();
    if (n > 0) {
      // A few probes from a random start find an active flow whenever the
      // network is busy; quiet ticks (compute gaps) perturb nothing.
      const std::uint64_t start = next();
      for (std::uint64_t probe = 0; probe < 8; ++probe) {
        netsim::Flow& f = s.flow_mutable(FlowId{(start + probe) % n});
        if (f.state == netsim::FlowState::kActive && !f.path.empty()) {
          const double w =
              0.5 + static_cast<double>(next() % 1024) / 1024.0;
          f.set_weight(w);
          s.invalidate_allocation();
          break;
        }
      }
    }
    // Keep ticking while any job still runs; stop afterwards so the event
    // loop can reach quiescence.
    for (const LiveJob& lj : *live_) {
      if (lj.engine != nullptr && !lj.engine->finished()) {
        arm(s, s.now() + period_);
        return;
      }
    }
  }

  std::uint64_t state_;
  Duration period_;
  const std::vector<LiveJob>* live_;
};

}  // namespace

ExperimentResult run_experiment(const std::vector<JobSpec>& jobs,
                                const ExperimentConfig& config) {
  assert(config.hosts >= 2);
  topology::BuiltFabric fabric;
  if (config.fabric == FabricKind::kBigSwitch) {
    fabric = topology::make_big_switch(config.hosts, config.port_capacity);
  } else {
    const int hosts_per_leaf = 8;
    const int leaves = std::max(1, config.hosts / hosts_per_leaf);
    const int spines = 2;
    fabric = topology::make_leaf_spine(
        {.leaves = leaves,
         .spines = spines,
         .hosts_per_leaf = hosts_per_leaf,
         .host_link = config.port_capacity,
         .uplink = hosts_per_leaf * config.port_capacity /
                   (spines * config.oversubscription)});
  }
  netsim::Simulator sim(&fabric.topo, config.loop_mode, config.alloc_mode,
                        config.fill_mode);

  // Scheduler stack. The coordinator owns its registry; other schedulers
  // share a standalone one (attached for tardiness measurement either way).
  ef::Registry standalone_registry;
  std::unique_ptr<runtime::Coordinator> coordinator;
  std::unique_ptr<netsim::NetworkScheduler> policy;
  ef::Registry* registry = &standalone_registry;

  switch (config.scheduler) {
    case SchedulerKind::kFairSharing:
      policy = std::make_unique<netsim::FairSharingScheduler>();
      standalone_registry.attach(sim);
      break;
    case SchedulerKind::kSrpt:
      policy = std::make_unique<ef::SrptScheduler>();
      standalone_registry.attach(sim);
      break;
    case SchedulerKind::kCoflowMadd:
      policy = std::make_unique<ef::CoflowMaddScheduler>(
          ef::CoflowMaddConfig{.work_conserving =
                                   config.coflow_work_conserving});
      standalone_registry.attach(sim);
      break;
    case SchedulerKind::kSincronia:
      policy = std::make_unique<ef::SincroniaScheduler>();
      standalone_registry.attach(sim);
      break;
    case SchedulerKind::kEchelonMadd:
      policy = std::make_unique<ef::EchelonMaddScheduler>(&standalone_registry,
                                                          config.echelon);
      standalone_registry.attach(sim);
      break;
    case SchedulerKind::kCoordinator:
      coordinator = std::make_unique<runtime::Coordinator>(
          &sim, config.coordinator);
      registry = &coordinator->registry();
      break;
  }

  netsim::NetworkScheduler* scheduler =
      coordinator ? static_cast<netsim::NetworkScheduler*>(coordinator.get())
                  : policy.get();
  std::unique_ptr<runtime::PriorityQueueEnforcer> pq;
  if (config.priority_queues > 0) {
    pq = std::make_unique<runtime::PriorityQueueEnforcer>(
        scheduler,
        runtime::PriorityQueueConfig{.num_queues = config.priority_queues});
    scheduler = pq.get();
  }
  // Control-plane mode (DESIGN.md §12). Decorators route it: the
  // coordinator forwards to its inner heuristic, the priority-queue
  // enforcer absorbs it (enforcement invalidates the incremental
  // induction, so its inner stack stays pinned to full recomputation).
  scheduler->set_sched_mode(config.sched_mode);
  sim.set_scheduler(scheduler);

  // Intra-run parallelism wiring (DESIGN.md §10): hand the process-wide
  // shared pool to the simulator (allocator water-fill, flow stamping, heap
  // prep) and, when the standalone EchelonFlow-MADD policy is in play, to
  // its group-cache validation. threads == 1 leaves everything serial and
  // never touches the pool. Safe under run_sweep: nested dispatches from
  // pool workers run inline-serially.
  if (config.threads != 1) {
    sim.set_parallelism(&ThreadPool::shared(), config.threads);
    if (auto* madd = dynamic_cast<ef::EchelonMaddScheduler*>(policy.get())) {
      madd->set_parallelism(&ThreadPool::shared(), config.threads);
    }
  }

  // Observability wiring (DESIGN.md §9): read-only emitters, null-guarded at
  // every site. The coordinator's kHeuristicRun/kReuseHit and the fault
  // injector's events are control-plane kinds, gated at kCoarse.
  if (config.trace_sink != nullptr &&
      config.trace_detail != obs::TraceDetail::kOff) {
    sim.set_trace(config.trace_sink, config.trace_detail);
    if (coordinator && config.trace_detail >= obs::TraceDetail::kCoarse) {
      coordinator->set_trace(config.trace_sink);
    }
  }
  if (config.metrics != nullptr) sim.set_metrics(config.metrics);

  // Place and generate every job. Ranks are packed onto consecutive ports
  // (wrapping), so jobs share ports once the cluster is loaded.
  std::vector<LiveJob> live;
  live.reserve(jobs.size());
  std::size_t next_host = 0;
  const std::size_t H = fabric.hosts.size();
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const JobSpec& spec = jobs[j];
    assert(static_cast<std::size_t>(spec.ranks) <= H &&
           "job does not fit the cluster");

    std::vector<NodeId> job_hosts;
    job_hosts.reserve(static_cast<std::size_t>(spec.ranks));
    for (int r = 0; r < spec.ranks; ++r) {
      job_hosts.push_back(fabric.hosts[(next_host + r) % H]);
    }
    const workload::Placement placement = workload::make_placement(
        sim, job_hosts, "j" + std::to_string(j) + ".");

    NodeId ps_host;
    WorkerId ps_worker;
    std::size_t consumed = static_cast<std::size_t>(spec.ranks);
    if (spec.paradigm == workload::Paradigm::kDpPs) {
      ps_host = fabric.hosts[(next_host + consumed) % H];
      ps_worker = sim.add_worker(ps_host, "j" + std::to_string(j) + ".ps");
      ++consumed;
    }
    next_host = (next_host + consumed) % H;

    LiveJob lj{.spec = spec};
    lj.generated = generate_job_workflow(spec, placement, ps_host, ps_worker,
                                         *registry, JobId{j});
    lj.workers = placement.workers;
    if (ps_worker.valid()) lj.workers.push_back(ps_worker);
    live.push_back(std::move(lj));
  }

  // Arm fault injection (if any) before anything is scheduled: plan events
  // land in the queue ahead of job launches, so same-instant ties resolve
  // fault-first, deterministically.
  std::unique_ptr<faultsim::FaultInjector> injector;
  if (config.fault_plan != nullptr) {
    injector = std::make_unique<faultsim::FaultInjector>(&sim, &fabric.topo,
                                                         config.fault_plan);
    if (config.trace_sink != nullptr &&
        config.trace_detail >= obs::TraceDetail::kCoarse) {
      injector->set_trace(config.trace_sink);
    }
    injector->arm();
  }

  // Launch at arrival times and run to quiescence.
  for (LiveJob& lj : live) {
    lj.engine =
        std::make_unique<netsim::WorkflowEngine>(&sim, &lj.generated.workflow);
    lj.engine->launch(lj.spec.arrival);
  }

  // Optional external-churn driver (EXPERIMENTS.md EXT-R): armed after the
  // launches so its first tick lands once flows can be active.
  std::unique_ptr<ChurnDriver> churn;
  if (config.churn_seed != 0) {
    constexpr Duration kChurnPeriod = 1e-3;
    churn = std::make_unique<ChurnDriver>(config.churn_seed, kChurnPeriod,
                                          &live);
    churn->arm(sim, kChurnPeriod);
  }

  const ScopedTimer wall_timer;
  const SimTime end = sim.run();
  const double wall_ms = wall_timer.elapsed_ms();

  // Collect metrics.
  ExperimentResult result;
  result.scheduler_name = scheduler->name();
  result.makespan = end;
  result.total_tardiness = registry->total_tardiness();
  result.weighted_total_tardiness = registry->weighted_total_tardiness();
  result.control_invocations = sim.control_invocations();
  if (coordinator) {
    result.heuristic_runs = coordinator->heuristic_runs();
    result.reuse_hits = coordinator->reuse_hits();
  }
  result.wall_ms = wall_ms;
  if (injector) {
    const faultsim::FaultSummary& fs = injector->summary();
    result.fault_events = fs.events_fired;
    result.flow_reroutes = fs.reroutes;
    result.flow_parks = fs.parks;
    result.flow_retries = fs.retries;
    result.flows_abandoned = fs.abandoned;
    result.flow_downtime = fs.downtime;
  }

  for (std::size_t j = 0; j < live.size(); ++j) {
    const LiveJob& lj = live[j];
    assert(lj.engine->finished() && "job did not complete");
    JobMetrics jm;
    jm.job = JobId{j};
    jm.paradigm = lj.spec.paradigm;
    jm.description = lj.generated.description;
    jm.arrival = lj.spec.arrival;

    SimTime prev = lj.spec.arrival;
    for (const netsim::WfNodeId node : lj.generated.iteration_end) {
      const SimTime t = lj.engine->node_finish(node);
      jm.iteration_times.push_back(t - prev);
      prev = t;
    }
    jm.finish = prev;

    double idle = 0.0;
    for (const WorkerId w : lj.workers) {
      idle += sim.worker(w).idle_fraction();
    }
    jm.mean_gpu_idle_fraction =
        lj.workers.empty() ? 0.0 : idle / static_cast<double>(lj.workers.size());
    result.jobs.push_back(std::move(jm));
  }

  // Run-level metrics registry fill (DESIGN.md §9): counters, gauges and
  // the per-EchelonFlow tardiness distribution the paper's objective
  // (Eqs. 1-2) is written in terms of. Pure observation -- nothing above
  // reads the registry.
  if (config.metrics != nullptr) {
    obs::MetricsRegistry& m = *config.metrics;
    m.gauge("sim.makespan_s").set(end);
    m.gauge("run.wall_ms").set(result.wall_ms);
    m.gauge("echelon.total_tardiness_s").set(result.total_tardiness);
    m.gauge("echelon.weighted_total_tardiness_s")
        .set(result.weighted_total_tardiness);
    m.counter("sim.control_invocations").set(sim.control_invocations());
    m.counter("sim.flows").set(sim.flow_count());

    const netsim::RateAllocator::Stats& as = sim.alloc_stats();
    m.counter("alloc.passes").set(as.passes);
    m.counter("alloc.components").set(as.components);
    m.counter("alloc.components_reused").set(as.components_reused);
    m.counter("alloc.components_filled").set(as.components_filled);
    m.counter("alloc.classes").set(as.classes);
    m.counter("alloc.class_members").set(as.class_members);
    // Fill-work compression from equivalence classing: mean flows per class
    // over everything the fills touched (1.0 = no sharing; higher = fewer
    // water-fill units than flows).
    m.gauge("alloc.flows_per_class")
        .set(as.classes == 0 ? 1.0
                             : static_cast<double>(as.class_members) /
                                   static_cast<double>(as.classes));
    m.gauge("alloc.cache_hit_rate")
        .set(as.components == 0
                 ? 0.0
                 : static_cast<double>(as.components_reused) /
                       static_cast<double>(as.components));

    // Control-plane cache telemetry (DESIGN.md §12). Observational only --
    // the counters differ between SchedModes while decisions stay
    // bit-identical, so they are deliberately absent from ExperimentResult.
    const netsim::SchedStats& ss = scheduler->sched_stats();
    m.counter("sched.passes").set(ss.passes);
    m.counter("sched.full_passes").set(ss.full_passes);
    m.counter("sched.scoped_passes").set(ss.scoped_passes);
    m.counter("sched.pass_skips").set(ss.pass_skips);
    m.counter("sched.groups_seen").set(ss.groups_seen);
    m.counter("sched.groups_scheduled").set(ss.groups_scheduled);
    m.counter("sched.groups_reused").set(ss.groups_reused);

    const topology::RouteTable::Stats& rs = sim.routes().stats();
    m.counter("routes.lookups").set(rs.lookups);
    m.counter("routes.cache_hits").set(rs.hits);
    m.counter("routes.computations").set(rs.computations);
    m.counter("routes.distinct").set(sim.routes().size());

    if (coordinator) {
      m.counter("coordinator.heuristic_runs")
          .set(coordinator->heuristic_runs());
      m.counter("coordinator.reuse_hits").set(coordinator->reuse_hits());
      m.counter("coordinator.deferred_flows")
          .set(coordinator->deferred_flows());
    }
    // Group-cache telemetry of the standalone EchelonFlow-MADD policy (the
    // coordinator's inner policy is not exposed; its stats are above).
    if (const auto* em = dynamic_cast<ef::EchelonMaddScheduler*>(policy.get());
        em != nullptr) {
      m.counter("group_cache.rebuilds").set(em->cache_rebuilds());
      m.gauge("group_cache.groups")
          .set(static_cast<double>(em->cached_group_count()));
    }
    if (injector) {
      const faultsim::FaultSummary& fs = injector->summary();
      m.counter("fault.events_fired").set(fs.events_fired);
      m.counter("fault.reroutes").set(fs.reroutes);
      m.counter("fault.parks").set(fs.parks);
      m.counter("fault.retries").set(fs.retries);
      m.counter("fault.resumes").set(fs.resumes);
      m.counter("fault.abandoned").set(fs.abandoned);
      m.gauge("fault.downtime_s").set(fs.downtime);
    }

    obs::Histogram& tard = m.histogram("echelonflow.tardiness_s");
    for (const ef::EchelonFlow* g : registry->all()) {
      if (g->complete()) tard.observe(g->tardiness());
    }
    obs::Histogram& iter = m.histogram("job.iteration_s");
    for (const JobMetrics& jm : result.jobs) {
      for (const Duration it : jm.iteration_times) iter.observe(it);
    }
  }
  return result;
}

}  // namespace echelon::cluster
