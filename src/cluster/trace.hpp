// Synthetic multi-tenant trace generation.
//
// Substitutes for the production GPU-cluster traces the paper's evaluation
// would have used (see DESIGN.md): Poisson job arrivals, a configurable
// paradigm mix, and log-normal-ish model-size variation. The contention
// structure -- many jobs with heterogeneous communication patterns sharing
// ports -- is what the scheduling comparison depends on, and the generator
// reproduces it deterministically from a seed.

#pragma once

#include <vector>

#include "common/rng.hpp"
#include "cluster/job.hpp"

namespace echelon::cluster {

struct TraceConfig {
  int num_jobs = 10;
  double arrival_rate = 0.5;  // jobs per second (Poisson)
  std::uint64_t seed = 42;

  // Paradigm mix: relative weights, same order as workload::Paradigm.
  // Default: DP-heavy, as in production clusters.
  std::vector<double> paradigm_weights = {4.0, 2.0, 2.0, 1.0, 2.0, 1.0};

  // Rank-count choices, sampled uniformly.
  std::vector<int> rank_choices = {2, 4, 8};

  // Model scale: layers uniform in [min,max]; width log-uniform-ish.
  int min_layers = 4;
  int max_layers = 12;
  int min_width = 1024;
  int max_width = 4096;
  int batch = 32;

  int iterations = 2;
  workload::GpuSpec gpu = workload::a100();
};

[[nodiscard]] std::vector<JobSpec> generate_trace(const TraceConfig& cfg);

}  // namespace echelon::cluster
