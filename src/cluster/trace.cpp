#include "cluster/trace.hpp"

#include <cassert>
#include <cmath>

namespace echelon::cluster {

namespace {

workload::Paradigm sample_paradigm(const std::vector<double>& weights,
                                   Rng& rng) {
  double total = 0.0;
  for (double w : weights) total += w;
  double x = rng.uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x <= 0.0) return static_cast<workload::Paradigm>(i);
  }
  return workload::Paradigm::kDpAllReduce;
}

}  // namespace

std::vector<JobSpec> generate_trace(const TraceConfig& cfg) {
  assert(cfg.num_jobs >= 1);
  assert(cfg.paradigm_weights.size() == 6);
  Rng rng(cfg.seed);

  std::vector<JobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(cfg.num_jobs));
  SimTime clock = 0.0;
  for (int j = 0; j < cfg.num_jobs; ++j) {
    JobSpec spec;
    spec.paradigm = sample_paradigm(cfg.paradigm_weights, rng);
    spec.ranks = cfg.rank_choices[rng.uniform_int(cfg.rank_choices.size())];

    const int layers = cfg.min_layers +
                       static_cast<int>(rng.uniform_int(
                           static_cast<std::uint64_t>(cfg.max_layers -
                                                      cfg.min_layers + 1)));
    // Log-uniform width in [min_width, max_width].
    const double lw = rng.uniform(std::log(double(cfg.min_width)),
                                  std::log(double(cfg.max_width)));
    const int width = static_cast<int>(std::exp(lw));

    // Pipeline stages consume one layer minimum each; ensure enough layers.
    const int eff_layers = spec.paradigm == workload::Paradigm::kPipeline
                               ? std::max(layers, spec.ranks)
                               : layers;
    spec.model = workload::make_mlp(eff_layers, width, cfg.batch);
    spec.gpu = cfg.gpu;
    spec.iterations = cfg.iterations;
    spec.buckets = std::min(4, eff_layers);
    spec.micro_batches = 4;
    spec.arrival = clock;
    clock += rng.exponential(cfg.arrival_rate);
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

}  // namespace echelon::cluster
