#include "netsim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <stdexcept>
#include <string>

#include "common/log.hpp"

namespace echelon::netsim {

// A flow is considered drained once fewer bytes than this remain. Flow sizes
// in the experiments are >= 1 byte, so a micro-byte of slack only absorbs
// floating-point error.
constexpr Bytes kBytesEpsilon = 1e-6;

namespace {

// Canonical completion instant for an active flow under the epoch-stamped
// accounting: the zero crossing of `remaining - rate * (t - epoch)`. Both
// loop modes (and the retirement predicate) evaluate exactly this
// expression on exactly these operands, which is what makes lazy and eager
// runs bit-identical. Edge cases fall out of IEEE arithmetic: rate == +inf
// gives epoch (finishes immediately); rate == 0 with positive remaining
// gives +inf (never finishes on its own).
[[nodiscard]] inline SimTime completion_time(SimTime epoch,
                                             const Flow& f) noexcept {
  return epoch + f.remaining / f.rate;
}

// Retirement horizon at instant `t`: a flow whose residual drains within the
// simulator's relative time resolution counts as finished *now*. With
// extreme rates (profiling runs use ~1e30 B/s links) the completion instant
// is not representable as a distinct double and the flow could otherwise
// never retire.
[[nodiscard]] inline SimTime retire_threshold(SimTime t) noexcept {
  return t + kTimeEpsilon * std::max(1.0, std::fabs(t));
}

}  // namespace

Simulator::Simulator(const topology::Topology* topo, SimLoopMode mode,
                     AllocMode alloc_mode, FillMode fill_mode)
    : topo_(topo),
      routes_(topo),
      allocator_(topo, alloc_mode, fill_mode),
      scheduler_(&default_scheduler_),
      mode_(mode) {
  assert(topo != nullptr);
}

void Simulator::set_scheduler(NetworkScheduler* scheduler) noexcept {
  scheduler_ = scheduler != nullptr ? scheduler : &default_scheduler_;
  // A fresh scheduler has seen none of the standing flows: its first pass
  // must be a full one.
  mark_all_jobs_dirty();
  allocation_dirty_ = true;
}

void Simulator::set_trace(obs::TraceSink* sink,
                          obs::TraceDetail detail) noexcept {
  trace_ = sink;
  trace_detail_ = sink == nullptr ? obs::TraceDetail::kOff : detail;
  // The allocator emits kAllocPass, a control-plane (kCoarse) event, plus
  // per-component kCompFill events at kFlow detail.
  allocator_.set_trace(
      trace_detail_ >= obs::TraceDetail::kCoarse ? sink : nullptr,
      trace_detail_ >= obs::TraceDetail::kFlow);
}

void Simulator::set_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  if (registry == nullptr) {
    m_flow_completion_ = nullptr;
    m_queue_depth_ = nullptr;
    m_active_flows_ = nullptr;
    m_link_util_.clear();
    link_rate_scratch_.clear();
    return;
  }
  m_flow_completion_ = &registry->histogram("flow.completion_s");
  m_queue_depth_ = &registry->histogram(
      "worker.queue_depth",
      {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0});
  m_active_flows_ = &registry->series("sim.active_flows");
  m_link_util_.clear();
  m_link_util_.reserve(topo_->link_count());
  for (std::size_t i = 0; i < topo_->link_count(); ++i) {
    m_link_util_.push_back(
        &registry->series("link." + std::to_string(i) + ".util"));
  }
  link_rate_scratch_.assign(topo_->link_count(), 0.0);
}

void Simulator::trace_flow(obs::TraceKind kind, const Flow& f, double value,
                           std::string_view label) {
  trace_->record(obs::TraceEvent{.kind = kind,
                                 .t = now_,
                                 .id = f.id.value(),
                                 .job = f.spec.job.value(),
                                 .ctx = f.spec.group.value(),
                                 .value = value},
                 label);
}

void Simulator::link_utilization(std::vector<double>& out) const {
  // Per-link utilization: sum of allocated rates over the nominal capacity.
  // O(active * path_len). assign() on a same-sized vector reallocates
  // nothing, so steady-state sampling stays allocation-free.
  out.assign(topo_->link_count(), 0.0);
  for (FlowId id : active_flows_) {
    const Flow& f = flows_.at(id.value());
    if (f.rate <= 0.0 || std::isinf(f.rate)) continue;
    for (const LinkId lid : f.path) out[lid.value()] += f.rate;
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double cap = topo_->links()[i].capacity;
    out[i] = cap > 0.0 ? out[i] / cap : 0.0;
  }
}

void Simulator::sample_metrics() {
  m_active_flows_->sample(now_, static_cast<double>(active_flows_.size()));
  link_utilization(link_rate_scratch_);
  for (std::size_t i = 0; i < link_rate_scratch_.size(); ++i) {
    m_link_util_[i]->sample(now_, link_rate_scratch_[i]);
  }
}

WorkerId Simulator::add_worker(NodeId host, std::string name) {
  const WorkerId id{workers_.size()};
  if (name.empty()) name = "w" + std::to_string(id.value());
  workers_.push_back(Worker{.id = id, .host = host, .name = std::move(name)});
  return id;
}

TaskId Simulator::enqueue_task(WorkerId worker, Duration duration,
                               std::string label, JobId job,
                               TaskCallback on_done) {
  const TaskId id{tasks_.size()};
  tasks_.push_back(ComputeTask{.id = id,
                               .worker = worker,
                               .duration = duration,
                               .label = std::move(label),
                               .job = job,
                               .enqueue_time = now_});
  task_done_.push_back(std::move(on_done));
  Worker& w = workers_.at(worker.value());
  w.queue.push_back(id);
  if (m_queue_depth_ != nullptr) {
    m_queue_depth_->observe(static_cast<double>(w.queue.size()));
  }
  if (w.idle()) start_next_task(worker);
  return id;
}

void Simulator::start_next_task(WorkerId worker) {
  Worker& w = workers_.at(worker.value());
  if (!w.idle() || w.queue.empty()) return;
  const TaskId id = w.queue.front();
  w.queue.pop_front();
  ComputeTask& t = tasks_.at(id.value());
  t.start_time = now_;
  // Straggler scaling is applied once, at start, and recorded back into the
  // task so busy-time accounting and later reads see the actual runtime.
  // The healthy scale of 1.0 is bitwise neutral (d * 1.0 == d), so
  // fault-free runs are unchanged.
  t.duration *= w.compute_scale;
  w.running = id;
  w.first_start = std::min(w.first_start, now_);
  if (tracing(obs::TraceDetail::kFlow)) {
    trace_->record(obs::TraceEvent{.kind = obs::TraceKind::kTaskStart,
                                   .t = now_,
                                   .id = id.value(),
                                   .job = t.job.value(),
                                   .ctx = worker.value(),
                                   .value = t.duration},
                   t.label);
  }
  // [this, id] fits std::function's small-object buffer: no allocation.
  events_.schedule(now_ + t.duration, [this, id] { finish_task(id); });
}

void Simulator::finish_task(TaskId id) {
  ComputeTask& t = tasks_.at(id.value());
  t.finish_time = now_;
  Worker& w = workers_.at(t.worker.value());
  w.busy_time += t.duration;
  w.last_finish = std::max(w.last_finish, now_);
  w.running = TaskId::invalid();

  if (tracing(obs::TraceDetail::kFlow)) {
    trace_->record(obs::TraceEvent{.kind = obs::TraceKind::kTaskFinish,
                                   .t = now_,
                                   .id = id.value(),
                                   .job = t.job.value(),
                                   .ctx = t.worker.value(),
                                   .value = t.duration});
  }

  ECHELON_LOG(kDebug) << "task " << t.label << " done at " << now_;

  // Fire completion callbacks first: they typically release successor work
  // (flows or tasks on other workers), and for determinism that work should
  // be visible before this worker greedily grabs its next queued task.
  // Callbacks may enqueue tasks and reallocate tasks_, so work on a copy.
  const ComputeTask snapshot = t;
  if (TaskCallback cb = std::move(task_done_.at(id.value())); cb) {
    cb(*this, snapshot);
  }
  for (const TaskCallback& cb : task_listeners_) cb(*this, snapshot);
  start_next_task(snapshot.worker);
}

FlowId Simulator::submit_flow(FlowSpec spec, FlowCallback on_done) {
  const FlowId id{flows_.size()};
  Flow f;
  f.id = id;
  f.spec = std::move(spec);
  f.remaining = f.spec.size;
  f.start_time = now_;
  if (tracing(obs::TraceDetail::kFlow)) {
    trace_flow(obs::TraceKind::kFlowSubmit, f, f.spec.size, f.spec.label);
  }
  if (f.spec.src != f.spec.dst) {
    // Route through the interned cache: the hint (when set) replaces the
    // flow id as the ECMP seed so structurally identical flows across
    // iterations share one canonical route -- and therefore one allocator
    // equivalence class.
    const std::uint64_t seed =
        f.spec.route_hint != 0 ? f.spec.route_hint : id.value();
    const auto rid = routes_.route(f.spec.src, f.spec.dst, seed);
    if (!rid.has_value()) {
      if (unroutable_handler_) {
        // Graceful degradation (fault injection): the endpoints are
        // disconnected *right now* -- park the flow at birth and let the
        // injector's retry policy decide when to resubmit it. The flow has
        // not entered the network: no arrival listeners, no scheduler
        // notification, start_time is fixed on its first real entry.
        f.state = FlowState::kParked;
        flows_.push_back(std::move(f));
        flow_done_.push_back(std::move(on_done));
        UnroutableHandler handler = unroutable_handler_;  // reentrancy-safe
        handler(*this, id);
        return id;
      }
      // Without a handler a disconnected endpoint pair is a caller bug (bad
      // workload spec or topology), not a recoverable condition -- but it
      // must not vanish in release builds the way the old assert did.
      ECHELON_LOG(kError) << "submit_flow: no route from node "
                          << f.spec.src.value() << " to node "
                          << f.spec.dst.value() << " (flow '" << f.spec.label
                          << "')";
      throw std::invalid_argument(
          "Simulator::submit_flow: no route from node " +
          std::to_string(f.spec.src.value()) + " to node " +
          std::to_string(f.spec.dst.value()));
    }
    f.route = *rid;
    f.path = routes_.path(*rid);  // copy of the canonical interned path
  }
  f.entered = true;
  flows_.push_back(std::move(f));
  flow_done_.push_back(std::move(on_done));
  if (tracing(obs::TraceDetail::kFlow)) {
    const Flow& fr = flows_.at(id.value());
    trace_flow(obs::TraceKind::kFlowStart, fr, fr.spec.size, fr.spec.label);
  }

  // Callbacks may submit flows and reallocate flows_; re-index as needed and
  // hand callbacks a snapshot.
  for (const FlowCallback& cb : flow_arrival_listeners_) {
    cb(*this, flows_.at(id.value()));
  }
  if (flows_.at(id.value()).remaining <= kBytesEpsilon) {
    // Zero-byte flow (e.g. control message): completes instantly, without
    // ever joining the active set. The scheduler never saw it arrive, so it
    // is not told about the departure either.
    complete_flow(id, /*notify_scheduler=*/false);
    return id;
  }
  // A flow submitted mid-epoch starts with rate 0 and is skipped by the
  // stamping pass until the reallocation below assigns it a rate -- at which
  // point the epoch has been moved to its start instant, so its `remaining`
  // baseline is consistent with the epoch by construction.
  flows_.at(id.value()).active_index = active_flows_.size();
  active_flows_.push_back(id);  // ids are monotonic: tail push keeps order
  allocation_dirty_ = true;
  mark_job_dirty(flows_.at(id.value()).spec.job);
  scheduler_->on_flow_arrival(*this, flows_.at(id.value()));
  return id;
}

void Simulator::schedule_at(SimTime at, TimerCallback cb) {
  // Relative tolerance, consistent with the run loop's simultaneity window:
  // the loop fires events up to a *relative* epsilon early (time_le), so a
  // callback computing "a moment ago" arithmetically may legitimately land
  // an epsilon before now_ at large simulation times. The old absolute
  // check (`at >= now_ - kTimeEpsilon`) aborted exactly there.
  assert(!time_lt(at, now_) && "cannot schedule in the past");
  // Park the (potentially large) user callback in a pooled slot so the
  // closure handed to the EventQueue is just {this, slot} -- within
  // std::function's small-object buffer. Steady-state timer scheduling and
  // firing therefore performs no heap allocation.
  std::uint32_t slot;
  if (!timer_free_.empty()) {
    slot = timer_free_.back();
    timer_free_.pop_back();
    timer_pool_[slot] = std::move(cb);
  } else {
    slot = static_cast<std::uint32_t>(timer_pool_.size());
    timer_pool_.push_back(std::move(cb));
  }
  events_.schedule(std::max(at, now_), [this, slot] { fire_timer(slot); });
}

void Simulator::fire_timer(std::uint32_t slot) {
  // Release the slot before invoking: the callback may schedule new timers
  // (and thus reuse it).
  TimerCallback cb = std::move(timer_pool_[slot]);
  timer_pool_[slot] = nullptr;
  timer_free_.push_back(slot);
  cb(*this);
}

void Simulator::reallocate() {
  // Schedulers tie-break on span order, so present flows in ascending-FlowId
  // order (the seed invariant) even after swap-and-pop retirements.
  restore_active_order();
  active_scratch_.clear();
  active_scratch_.reserve(active_flows_.size());
  for (FlowId id : active_flows_) {
    active_scratch_.push_back(&flows_.at(id.value()));
  }
  // Pre-control churn scan (DESIGN.md §12): a control_dirty flag standing
  // *before* the scheduler runs means an external caller touched the flow's
  // weight/cap through the notification setters since the allocator last
  // consumed the flag -- genuine churn the per-event mark sites cannot see.
  // Read-only: the allocator still consumes the flags after control().
  if (!all_jobs_dirty_) {
    for (const Flow* f : active_scratch_) {
      if (f->control_dirty) mark_job_dirty(f->spec.job);
    }
  }
  if (tracing(obs::TraceDetail::kCoarse)) {
    trace_->record(obs::TraceEvent{.kind = obs::TraceKind::kControlPass,
                                   .t = now_,
                                   .id = control_invocations_,
                                   .ctx = active_scratch_.size()});
    // Mode-independent by construction: the mark set is maintained whether
    // or not the scheduler runs incrementally, so traced streams are
    // bit-identical across SchedModes. value 1.0 flags an all-dirty pass.
    trace_->record(obs::TraceEvent{.kind = obs::TraceKind::kSchedPass,
                                   .t = now_,
                                   .id = control_invocations_,
                                   .ctx = all_jobs_dirty_
                                              ? active_scratch_.size()
                                              : dirty_jobs_.size(),
                                   .value = all_jobs_dirty_ ? 1.0 : 0.0});
  }
  // Forward the accumulated dirty-job marks, then clear them: everything the
  // upcoming pass needs to reconsider has been announced.
  if (all_jobs_dirty_) {
    scheduler_->mark_all_jobs_dirty();
  } else {
    for (const std::uint64_t j : dirty_jobs_) {
      scheduler_->mark_job_dirty(JobId{j});
    }
  }
  all_jobs_dirty_ = false;
  dirty_jobs_.clear();
  scheduler_->control(*this, active_scratch_);
  ++control_invocations_;
  allocator_.allocate(active_scratch_, now_);
  allocation_dirty_ = false;
  if (metrics_ != nullptr) sample_metrics();
  // Same-instant reallocation (epoch unmoved): every unchanged flow's heap
  // entry is bitwise still valid, so re-stamp only the allocator's dirty
  // set instead of rebuilding O(active). When the epoch moved, the stamp
  // already marked the heap dirty and the full rebuild runs in step 3.
  if (mode_ == SimLoopMode::kLazy && !completion_heap_dirty_) {
    patch_completion_heap();
  }
}

void Simulator::patch_completion_heap() {
  for (Flow* f : allocator_.rate_changed()) {
    // Per-flow generation bump: invalidates exactly this flow's previous
    // entry; other flows' entries keep matching their own stamps.
    f->completion_gen = ++heap_gen_;
    if (f->active_index == Flow::kNotActive || f->rate <= 0.0) continue;
    completion_heap_.push_back(
        CompletionEntry{completion_time(epoch_time_, *f), f->id, heap_gen_});
    std::push_heap(completion_heap_.begin(), completion_heap_.end(),
                   LaterCompletion{});
  }
}

void Simulator::restore_active_order() {
  if (!active_order_dirty_) return;
  // FlowIds are monotonic and never reused, so ascending id == seed insertion
  // order. Sorting (no allocation: introsort) restores the exact active-set
  // order the seed maintained with order-preserving erase.
  std::sort(active_flows_.begin(), active_flows_.end());
  for (std::size_t i = 0; i < active_flows_.size(); ++i) {
    flows_.at(active_flows_[i].value()).active_index = i;
  }
  active_order_dirty_ = false;
}

void Simulator::stamp_active_flows(SimTime to) {
  const Duration dt = to - epoch_time_;
  if (dt > 0.0) {
    // Per-flow stamping is embarrassingly parallel: each iteration reads
    // and writes exactly one flow, and `remaining -= rate * dt` is the same
    // expression either way -- the parallel stamp is bit-identical to the
    // serial one. Dispatch only above the batch cutoff; the loop body is a
    // handful of cycles per flow.
    const auto stamp_one = [this, dt](Flow& f) {
      // Rate-0 flows (just-submitted, or starved by the allocator) make no
      // progress; skipping them keeps the stamp proportional to *flowing*
      // flows and avoids perturbing their byte counts.
      if (f.rate == 0.0) return;
      f.remaining -= f.rate * dt;
      // Accounting-drift canary: materialization may undershoot zero by
      // rounding, never by more than the drain slack plus relative error on
      // the flow size (large flows accumulate absolute ulp error).
      assert(f.remaining >= -(kBytesEpsilon + 1e-9 * f.spec.size) &&
             "lazy byte accounting drifted below zero");
    };
    if (pool_ != nullptr && active_flows_.size() >= kParallelBatch) {
      pool_->run(active_flows_.size(), par_threads_,
                 [&](unsigned, std::size_t i) {
                   stamp_one(flows_.at(active_flows_[i].value()));
                 });
    } else {
      for (FlowId id : active_flows_) stamp_one(flows_.at(id.value()));
    }
    // Completion times are a function of (epoch, remaining, rate): moving
    // the epoch re-derives them all (same values mathematically, different
    // floating-point operands), so the heap must be rebuilt before next
    // use. A zero-dt stamp leaves every operand bitwise unchanged, so
    // existing entries stay valid and reallocate() patches in only the
    // flows whose rate actually changed.
    completion_heap_dirty_ = true;
    // The control-plane era advances with the byte accounting: every
    // remaining-dependent scheduler quantity (tardiness, gamma, SRPT rank)
    // must be recomputed after this point. Zero-dt stamps leave every
    // operand bitwise unchanged and the generation with them.
    ++accounting_gen_;
  }
  epoch_time_ = to;
}

void Simulator::rebuild_completion_heap() {
  completion_heap_.clear();
  ++heap_gen_;
  if (pool_ != nullptr && active_flows_.size() >= kParallelBatch) {
    // Parallel entry preparation: completion_time per flow into an index
    // slot (disjoint writes; the completion_gen stamp touches only that
    // flow). The serial compaction below walks the slots in active order,
    // so the heap array -- and therefore make_heap's result -- is the exact
    // sequence the serial loop builds.
    const std::size_t n = active_flows_.size();
    heap_prep_scratch_.resize(n);
    pool_->run(n, par_threads_, [&](unsigned, std::size_t i) {
      Flow& f = flows_.at(active_flows_[i].value());
      CompletionEntry& e = heap_prep_scratch_[i];
      if (f.rate <= 0.0) {
        e.gen = 0;  // never completes at its current rate; no entry
        return;
      }
      f.completion_gen = heap_gen_;
      e = CompletionEntry{completion_time(epoch_time_, f), f.id, heap_gen_};
    });
    for (const CompletionEntry& e : heap_prep_scratch_) {
      if (e.gen != 0) completion_heap_.push_back(e);
    }
  } else {
    for (FlowId id : active_flows_) {
      Flow& f = flows_.at(id.value());
      if (f.rate <= 0.0) continue;  // never completes at its current rate
      f.completion_gen = heap_gen_;
      completion_heap_.push_back(
          CompletionEntry{completion_time(epoch_time_, f), id, heap_gen_});
    }
  }
  std::make_heap(completion_heap_.begin(), completion_heap_.end(),
                 LaterCompletion{});
  completion_heap_dirty_ = false;
}

SimTime Simulator::earliest_completion_scan() const noexcept {
  SimTime best = kTimeInfinity;
  for (FlowId id : active_flows_) {
    const Flow& f = flows_.at(id.value());
    if (f.rate <= 0.0) continue;
    best = std::min(best, completion_time(epoch_time_, f));
  }
  return best;
}

SimTime Simulator::earliest_completion_heap() {
  // Entries can only go stale between a rebuild and the next read if a
  // callback retires a flow -- which also dirties the allocation and forces
  // a rebuild first. The lazy-discard loop below is therefore belt and
  // suspenders; it also keeps the method correct if that invariant ever
  // loosens.
  while (!completion_heap_.empty()) {
    const CompletionEntry& e = completion_heap_.front();
    const Flow& f = flows_.at(e.flow.value());
    if (f.active_index != Flow::kNotActive && f.completion_gen == e.gen) {
      return e.tc;
    }
    std::pop_heap(completion_heap_.begin(), completion_heap_.end(),
                  LaterCompletion{});
    completion_heap_.pop_back();
  }
  return kTimeInfinity;
}

void Simulator::complete_flow(FlowId id, bool notify_scheduler) {
  Flow& f = flows_.at(id.value());
  f.state = FlowState::kFinished;
  f.finish_time = now_;

  // value = undelivered bytes: 0 for a clean finish, > 0 for an abandonment.
  if (tracing(obs::TraceDetail::kFlow)) {
    trace_flow(obs::TraceKind::kFlowFinish, f, f.remaining);
  }
  if (m_flow_completion_ != nullptr && f.entered) {
    m_flow_completion_->observe(f.finish_time - f.start_time);
  }

  ECHELON_LOG(kDebug) << "flow " << f.spec.label << " done at " << now_;

  // Callbacks may submit flows and reallocate flows_, so work on a copy.
  // Canonical departure order: scheduler hook, then the per-flow callback,
  // then global listeners.
  const Flow snapshot = f;
  if (notify_scheduler) scheduler_->on_flow_departure(*this, snapshot);
  if (FlowCallback cb = std::move(flow_done_.at(id.value())); cb) {
    cb(*this, snapshot);
  }
  for (const FlowCallback& cb : flow_listeners_) cb(*this, snapshot);
}

void Simulator::finish_flow(FlowId id) {
  Flow& f = flows_.at(id.value());
  f.remaining = 0.0;
  f.rate = 0.0;
  // O(1) swap-and-pop retirement (the seed did a linear std::erase). The
  // swap perturbs ascending-FlowId order; restore_active_order() repairs it
  // before anything order-sensitive runs.
  const std::size_t idx = f.active_index;
  assert(idx != Flow::kNotActive && idx < active_flows_.size() &&
         active_flows_[idx] == id && "finish_flow on inactive flow");
  const std::size_t last = active_flows_.size() - 1;
  if (idx != last) {
    const FlowId moved = active_flows_[last];
    active_flows_[idx] = moved;
    flows_.at(moved.value()).active_index = idx;
    active_order_dirty_ = true;
  }
  active_flows_.pop_back();
  f.active_index = Flow::kNotActive;
  allocation_dirty_ = true;
  mark_job_dirty(f.spec.job);

  complete_flow(id, /*notify_scheduler=*/true);
}

void Simulator::park_flow(FlowId id) {
  Flow& f = flows_.at(id.value());
  if (f.state != FlowState::kActive || f.active_index == Flow::kNotActive) {
    return;  // parked, finished, or never entered: nothing to remove
  }
  // Materialize every active flow's bytes *before* pulling this one out:
  // `remaining` must record exactly what was left un-transmitted at the park
  // instant. The epoch moves to now_, so the reallocation below stamps a
  // zero-dt no-op.
  stamp_active_flows(now_);

  // Swap-and-pop removal, mirroring finish_flow.
  const std::size_t idx = f.active_index;
  assert(idx < active_flows_.size() && active_flows_[idx] == id);
  const std::size_t last = active_flows_.size() - 1;
  if (idx != last) {
    const FlowId moved = active_flows_[last];
    active_flows_[idx] = moved;
    flows_.at(moved.value()).active_index = idx;
    active_order_dirty_ = true;
  }
  active_flows_.pop_back();
  f.active_index = Flow::kNotActive;
  f.rate = 0.0;
  f.state = FlowState::kParked;
  // Invalidate any completion-heap entry the flow may still own: after a
  // resume the flow is active again with a valid active_index, so a stale
  // entry from before the park would otherwise pass the validity check.
  f.completion_gen = ++heap_gen_;
  allocation_dirty_ = true;
  mark_job_dirty(f.spec.job);

  if (tracing(obs::TraceDetail::kCoarse)) {
    trace_flow(obs::TraceKind::kFlowPark, f, f.remaining);
  }

  // The scheduler saw this flow arrive, so it must see it leave (group
  // caches, frozen-member handling). The completion callback and global
  // flow listeners do NOT fire: the flow is suspended, not done -- in
  // particular the EchelonFlow registry must not mark the member finished.
  const Flow snapshot = f;
  scheduler_->on_flow_departure(*this, snapshot);
}

void Simulator::resume_flow(FlowId id, topology::Path path) {
  Flow& f = flows_.at(id.value());
  assert(f.state == FlowState::kParked && "resume_flow on non-parked flow");
  if (f.state != FlowState::kParked) return;
  // Re-intern so the flow's route identity matches its new path -- a
  // recovery path computed by route_flow() lands back on the canonical
  // RouteId; an externally crafted path gets its own (still-deduplicated)
  // id. Either way `route` and `path` stay in sync.
  f.route = routes_.intern(path);
  f.path = std::move(path);
  f.state = FlowState::kActive;
  f.rate = 0.0;
  // The allocator's converged-rate cache does not fingerprint paths; the
  // dirty mark forces the flow's component to refill against the new path.
  f.control_dirty = true;

  if (tracing(obs::TraceDetail::kCoarse)) {
    trace_flow(obs::TraceKind::kFlowResume, f, f.remaining);
  }

  if (!f.entered) {
    // Parked at birth: this is the flow's first real network entry. Fix the
    // start time and fire the arrival listeners the submission path skipped.
    f.entered = true;
    f.start_time = now_;
    if (tracing(obs::TraceDetail::kFlow)) {
      trace_flow(obs::TraceKind::kFlowStart, f, f.remaining, f.spec.label);
    }
    for (const FlowCallback& cb : flow_arrival_listeners_) {
      cb(*this, flows_.at(id.value()));
    }
    if (flows_.at(id.value()).remaining <= kBytesEpsilon) {
      // Zero-byte flow finally deliverable: completes instantly, never
      // joining the active set (mirrors submit_flow).
      complete_flow(id, /*notify_scheduler=*/false);
      return;
    }
  }

  Flow& fr = flows_.at(id.value());  // listeners may reallocate flows_
  fr.active_index = active_flows_.size();
  active_flows_.push_back(id);
  // The resumed id is almost certainly smaller than the current tail.
  active_order_dirty_ = true;
  allocation_dirty_ = true;
  mark_job_dirty(fr.spec.job);
  scheduler_->on_flow_arrival(*this, fr);
}

void Simulator::reroute_flow(FlowId id, topology::Path path) {
  Flow& f = flows_.at(id.value());
  assert(f.state == FlowState::kActive && f.active_index != Flow::kNotActive &&
         "reroute_flow on inactive flow");
  f.route = routes_.intern(path);  // keep route identity in sync (see resume)
  f.path = std::move(path);
  // See resume_flow: the component cache validates members/weights/caps and
  // the capacity epoch but not paths, so the reroute must announce itself.
  f.control_dirty = true;
  allocation_dirty_ = true;
  mark_job_dirty(f.spec.job);
  if (tracing(obs::TraceDetail::kCoarse)) {
    // `remaining` is epoch-stamped, not materialized -- observational only.
    trace_flow(obs::TraceKind::kFlowReroute, f, f.remaining);
  }
}

std::optional<topology::Path> Simulator::route_flow(FlowId id) {
  const Flow& f = flows_.at(id.value());
  if (f.spec.src == f.spec.dst) return topology::Path{};  // loopback: no links
  const std::uint64_t seed =
      f.spec.route_hint != 0 ? f.spec.route_hint : id.value();
  const auto rid = routes_.route(f.spec.src, f.spec.dst, seed);
  if (!rid.has_value()) return std::nullopt;
  return routes_.path(*rid);
}

void Simulator::abandon_flow(FlowId id) {
  Flow& f = flows_.at(id.value());
  assert(f.state == FlowState::kParked && "abandon_flow on non-parked flow");
  if (f.state != FlowState::kParked) return;
  if (!f.entered) {
    // Parked at birth and never admitted: fire the arrival listeners now so
    // every completion is paired with exactly one arrival -- the EchelonFlow
    // registry requires note_start before note_finish, and a group member
    // that is abandoned unseen must still enter the ledger (it "starts" and
    // finishes at the abandonment instant, delivering nothing). The flow
    // never joins the active set and the scheduler is never notified.
    f.entered = true;
    f.start_time = now_;
    for (const FlowCallback& cb : flow_arrival_listeners_) {
      cb(*this, flows_.at(id.value()));  // listeners may reallocate flows_
    }
  }
  // Unsuccessful completion: finish_time is fixed and the completion
  // callback + listeners fire so dependent DAG work is released, but
  // `remaining` keeps the undelivered bytes as the loss record. The
  // scheduler is not re-notified -- it saw the departure at park time (and
  // never saw parked-at-birth flows at all).
  if (tracing(obs::TraceDetail::kCoarse)) {
    const Flow& fr = flows_.at(id.value());  // listeners may reallocate
    trace_flow(obs::TraceKind::kFlowAbandon, fr, fr.remaining);
  }
  complete_flow(id, /*notify_scheduler=*/false);
}

SimTime Simulator::run(SimTime deadline) {
  while (true) {
    // 1. Fire every event due at the current instant, in *submission* order.
    // The batch drain (EventQueue::pop_due) is what guarantees stable order
    // across the whole simultaneity window: events whose timestamps are
    // epsilon-equal but bitwise distinct would otherwise pop in timestamp
    // order, i.e. possibly reverse submission order. Events scheduled by a
    // firing callback carry higher sequence numbers and drain in the next
    // iteration -- still at this instant, still after everything already
    // submitted.
    while (!events_.empty() && time_le(events_.next_time(), now_)) {
      due_cbs_.clear();
      events_.pop_due(now_, due_cbs_);
      for (auto& cb : due_cbs_) {
        cb();
        cb = nullptr;  // release captured state before the next fires
      }
    }

    // 2. Refresh rates if the flow set or control state changed. The stamp
    // materializes every active flow's bytes at `now_` (the only O(active)
    // byte pass in the loop), so the scheduler and allocator see exact
    // remaining counts.
    if (allocation_dirty_) {
      stamp_active_flows(now_);
      reallocate();
      // Retire flows completed by callbacks racing with reallocation --
      // e.g. infinite-rate loopback flows. Sweep in ascending-id order
      // (descending index) so completion callbacks fire as in the seed.
      restore_active_order();
      bool retired = false;
      for (std::size_t i = active_flows_.size(); i-- > 0;) {
        Flow& f = flows_.at(active_flows_[i].value());
        if (std::isinf(f.rate) || f.remaining <= kBytesEpsilon) {
          finish_flow(f.id);
          retired = true;
        }
      }
      if (retired) continue;  // callbacks may have scheduled work at `now_`
    }

    // 3. Pick the next instant. Lazy mode reads the heap top (rebuilding by
    // heapify at most once per accounting epoch); eager mode scans.
    if (mode_ == SimLoopMode::kLazy && completion_heap_dirty_) {
      rebuild_completion_heap();
    }
    const SimTime next_event = events_.next_time();
    const SimTime next_done = mode_ == SimLoopMode::kLazy
                                  ? earliest_completion_heap()
                                  : earliest_completion_scan();
    const SimTime next = std::min(next_event, next_done);
    if (next > deadline) {
      // Materialize progress up to the deadline so a later run() resumes
      // exactly where this one stopped.
      if (deadline > now_) stamp_active_flows(deadline);
      now_ = std::max(now_, deadline);
      return now_;
    }
    if (next == kTimeInfinity) return now_;  // quiescent

    // 4. Advance. No byte drain: accounting is lazy, `remaining` stays
    // authoritative at the epoch and is materialized at the next stamp.
    if (next > now_) now_ = next;

    // 5. Retire flows whose completion instant has arrived (within the
    // relative time resolution -- see retire_threshold). Completion
    // callbacks fire in descending-FlowId order, as the seed's
    // descending-index sweep did.
    const SimTime threshold = retire_threshold(now_);
    if (mode_ == SimLoopMode::kLazy) {
      // Pop every due entry first (callbacks during finish_flow cannot
      // retire other active flows, so the candidate set is stable), then
      // finish in descending-id order.
      retire_scratch_.clear();
      while (!completion_heap_.empty()) {
        const CompletionEntry e = completion_heap_.front();
        const Flow& f = flows_.at(e.flow.value());
        const bool valid =
            f.active_index != Flow::kNotActive && f.completion_gen == e.gen;
        if (valid && e.tc > threshold) break;
        std::pop_heap(completion_heap_.begin(), completion_heap_.end(),
                      LaterCompletion{});
        completion_heap_.pop_back();
        if (valid) retire_scratch_.push_back(e.flow);
      }
      std::sort(retire_scratch_.begin(), retire_scratch_.end(),
                std::greater<FlowId>{});
      for (FlowId id : retire_scratch_) {
        assert(flows_.at(id.value()).active_index != Flow::kNotActive);
        finish_flow(id);
      }
    } else {
      restore_active_order();  // retire in descending-id order
      for (std::size_t i = active_flows_.size(); i-- > 0;) {
        Flow& f = flows_.at(active_flows_[i].value());
        if (f.rate <= 0.0) continue;
        if (completion_time(epoch_time_, f) <= threshold) finish_flow(f.id);
      }
    }
  }
}

}  // namespace echelon::netsim
