#include "netsim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

#include "common/log.hpp"

namespace echelon::netsim {

// A flow is considered drained once fewer bytes than this remain. Flow sizes
// in the experiments are >= 1 byte, so a micro-byte of slack only absorbs
// floating-point error.
constexpr Bytes kBytesEpsilon = 1e-6;

Simulator::Simulator(const topology::Topology* topo)
    : topo_(topo), allocator_(topo), scheduler_(&default_scheduler_) {
  assert(topo != nullptr);
}

void Simulator::set_scheduler(NetworkScheduler* scheduler) noexcept {
  scheduler_ = scheduler != nullptr ? scheduler : &default_scheduler_;
  allocation_dirty_ = true;
}

WorkerId Simulator::add_worker(NodeId host, std::string name) {
  const WorkerId id{workers_.size()};
  if (name.empty()) name = "w" + std::to_string(id.value());
  workers_.push_back(Worker{.id = id, .host = host, .name = std::move(name)});
  return id;
}

TaskId Simulator::enqueue_task(WorkerId worker, Duration duration,
                               std::string label, JobId job,
                               TaskCallback on_done) {
  const TaskId id{tasks_.size()};
  tasks_.push_back(ComputeTask{.id = id,
                               .worker = worker,
                               .duration = duration,
                               .label = std::move(label),
                               .job = job,
                               .enqueue_time = now_});
  task_done_.push_back(std::move(on_done));
  Worker& w = workers_.at(worker.value());
  w.queue.push_back(id);
  if (w.idle()) start_next_task(worker);
  return id;
}

void Simulator::start_next_task(WorkerId worker) {
  Worker& w = workers_.at(worker.value());
  if (!w.idle() || w.queue.empty()) return;
  const TaskId id = w.queue.front();
  w.queue.pop_front();
  ComputeTask& t = tasks_.at(id.value());
  t.start_time = now_;
  w.running = id;
  w.first_start = std::min(w.first_start, now_);
  events_.schedule(now_ + t.duration, [this, id] { finish_task(id); });
}

void Simulator::finish_task(TaskId id) {
  ComputeTask& t = tasks_.at(id.value());
  t.finish_time = now_;
  Worker& w = workers_.at(t.worker.value());
  w.busy_time += t.duration;
  w.last_finish = std::max(w.last_finish, now_);
  w.running = TaskId::invalid();

  ECHELON_LOG(kDebug) << "task " << t.label << " done at " << now_;

  // Fire completion callbacks first: they typically release successor work
  // (flows or tasks on other workers), and for determinism that work should
  // be visible before this worker greedily grabs its next queued task.
  // Callbacks may enqueue tasks and reallocate tasks_, so work on a copy.
  const ComputeTask snapshot = t;
  if (TaskCallback cb = std::move(task_done_.at(id.value())); cb) {
    cb(*this, snapshot);
  }
  for (const TaskCallback& cb : task_listeners_) cb(*this, snapshot);
  start_next_task(snapshot.worker);
}

FlowId Simulator::submit_flow(FlowSpec spec, FlowCallback on_done) {
  const FlowId id{flows_.size()};
  Flow f;
  f.id = id;
  f.spec = std::move(spec);
  f.remaining = f.spec.size;
  f.start_time = now_;
  if (f.spec.src != f.spec.dst) {
    auto path = topo_->route(f.spec.src, f.spec.dst, id.value());
    if (!path.has_value()) {
      // A disconnected endpoint pair is a caller bug (bad workload spec or
      // topology), not a recoverable condition -- but it must not vanish in
      // release builds the way the old assert did.
      ECHELON_LOG(kError) << "submit_flow: no route from node "
                          << f.spec.src.value() << " to node "
                          << f.spec.dst.value() << " (flow '" << f.spec.label
                          << "')";
      throw std::invalid_argument(
          "Simulator::submit_flow: no route from node " +
          std::to_string(f.spec.src.value()) + " to node " +
          std::to_string(f.spec.dst.value()));
    }
    f.path = std::move(*path);
  }
  flows_.push_back(std::move(f));
  flow_done_.push_back(std::move(on_done));

  // Callbacks may submit flows and reallocate flows_; re-index as needed and
  // hand callbacks a snapshot.
  for (const FlowCallback& cb : flow_arrival_listeners_) {
    cb(*this, flows_.at(id.value()));
  }
  if (flows_.at(id.value()).remaining <= kBytesEpsilon) {
    // Zero-byte flow (e.g. control message): completes instantly.
    Flow& stored = flows_.at(id.value());
    stored.state = FlowState::kFinished;
    stored.finish_time = now_;
    const Flow snapshot = stored;
    if (FlowCallback cb = std::move(flow_done_.at(id.value())); cb) {
      cb(*this, snapshot);
    }
    for (const FlowCallback& cb : flow_listeners_) cb(*this, snapshot);
    return id;
  }
  flows_.at(id.value()).active_index = active_flows_.size();
  active_flows_.push_back(id);  // ids are monotonic: tail push keeps order
  allocation_dirty_ = true;
  scheduler_->on_flow_arrival(*this, flows_.at(id.value()));
  return id;
}

void Simulator::schedule_at(SimTime at, TimerCallback cb) {
  assert(at >= now_ - kTimeEpsilon && "cannot schedule in the past");
  events_.schedule(std::max(at, now_), [this, cb = std::move(cb)] { cb(*this); });
}

void Simulator::reallocate() {
  // Schedulers tie-break on span order, so present flows in ascending-FlowId
  // order (the seed invariant) even after swap-and-pop retirements.
  restore_active_order();
  active_scratch_.clear();
  active_scratch_.reserve(active_flows_.size());
  for (FlowId id : active_flows_) {
    active_scratch_.push_back(&flows_.at(id.value()));
  }
  scheduler_->control(*this, active_scratch_);
  ++control_invocations_;
  allocator_.allocate(active_scratch_);
  allocation_dirty_ = false;
}

void Simulator::restore_active_order() {
  if (!active_order_dirty_) return;
  // FlowIds are monotonic and never reused, so ascending id == seed insertion
  // order. Sorting (no allocation: introsort) restores the exact active-set
  // order the seed maintained with order-preserving erase.
  std::sort(active_flows_.begin(), active_flows_.end());
  for (std::size_t i = 0; i < active_flows_.size(); ++i) {
    flows_.at(active_flows_[i].value()).active_index = i;
  }
  active_order_dirty_ = false;
}

SimTime Simulator::earliest_completion() const noexcept {
  SimTime best = kTimeInfinity;
  for (FlowId id : active_flows_) {
    const Flow& f = flows_.at(id.value());
    if (f.rate <= 0.0) continue;
    if (std::isinf(f.rate)) return now_;
    best = std::min(best, now_ + f.remaining / f.rate);
  }
  return best;
}

void Simulator::finish_flow(FlowId id) {
  Flow& f = flows_.at(id.value());
  f.state = FlowState::kFinished;
  f.finish_time = now_;
  f.remaining = 0.0;
  f.rate = 0.0;
  // O(1) swap-and-pop retirement (the seed did a linear std::erase). The
  // swap perturbs ascending-FlowId order; restore_active_order() repairs it
  // before anything order-sensitive runs.
  const std::size_t idx = f.active_index;
  assert(idx != Flow::kNotActive && idx < active_flows_.size() &&
         active_flows_[idx] == id && "finish_flow on inactive flow");
  const std::size_t last = active_flows_.size() - 1;
  if (idx != last) {
    const FlowId moved = active_flows_[last];
    active_flows_[idx] = moved;
    flows_.at(moved.value()).active_index = idx;
    active_order_dirty_ = true;
  }
  active_flows_.pop_back();
  f.active_index = Flow::kNotActive;
  allocation_dirty_ = true;

  ECHELON_LOG(kDebug) << "flow " << f.spec.label << " done at " << now_;

  // Callbacks may submit flows and reallocate flows_, so work on a copy.
  const Flow snapshot = f;
  scheduler_->on_flow_departure(*this, snapshot);
  if (FlowCallback cb = std::move(flow_done_.at(id.value())); cb) {
    cb(*this, snapshot);
  }
  for (const FlowCallback& cb : flow_listeners_) cb(*this, snapshot);
}

SimTime Simulator::run(SimTime deadline) {
  while (true) {
    // 1. Fire every event due at the current instant.
    while (!events_.empty() && time_le(events_.next_time(), now_)) {
      auto cb = events_.pop();
      cb();
    }

    // 2. Refresh rates if the flow set or control state changed.
    if (allocation_dirty_) {
      reallocate();
      // Retire flows completed by callbacks racing with reallocation --
      // e.g. infinite-rate loopback flows. Sweep in ascending-id order
      // (descending index) so completion callbacks fire as in the seed.
      restore_active_order();
      bool retired = false;
      for (std::size_t i = active_flows_.size(); i-- > 0;) {
        Flow& f = flows_.at(active_flows_[i].value());
        if (std::isinf(f.rate) || f.remaining <= kBytesEpsilon) {
          finish_flow(f.id);
          retired = true;
        }
      }
      if (retired) continue;  // callbacks may have scheduled work at `now_`
    }

    // 3. Pick the next instant.
    const SimTime next_event = events_.next_time();
    const SimTime next_done = earliest_completion();
    SimTime next = std::min(next_event, next_done);
    if (next > deadline) {
      // Drain progress up to the deadline so a later run() resumes exactly
      // where this one stopped.
      const Duration dt = deadline - now_;
      if (dt > 0.0) {
        for (FlowId id : active_flows_) {
          Flow& f = flows_.at(id.value());
          f.remaining -= f.rate * dt;
        }
      }
      now_ = deadline;
      return now_;
    }
    if (next == kTimeInfinity) return now_;  // quiescent

    // 4. Advance: drain bytes at constant rates.
    const Duration dt = next - now_;
    if (dt > 0.0) {
      for (FlowId id : active_flows_) {
        Flow& f = flows_.at(id.value());
        f.remaining -= f.rate * dt;
      }
      now_ = next;
    } else {
      now_ = next;  // same-instant event
    }

    // 5. Retire completed flows (iterate by index: callbacks can add flows).
    // A flow whose residual would drain within the simulator's time
    // resolution counts as finished *now*: with extreme rates (profiling
    // runs use ~1e30 B/s links) `now + remaining/rate` is not representable
    // as a distinct double and the flow could otherwise never retire.
    const double horizon = kTimeEpsilon * std::max(1.0, std::fabs(now_));
    restore_active_order();  // retire in descending-id order, as the seed did
    for (std::size_t i = active_flows_.size(); i-- > 0;) {
      Flow& f = flows_.at(active_flows_[i].value());
      if (f.remaining <= kBytesEpsilon ||
          (f.rate > 0.0 && f.remaining <= f.rate * horizon)) {
        finish_flow(f.id);
      }
    }
  }
}

}  // namespace echelon::netsim
