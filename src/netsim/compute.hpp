// GPU compute model: workers execute tasks serially in FIFO-ready order.
//
// A Worker models one dedicated, monolithic GPU (the configuration the paper
// targets, §5). Tasks are enqueued when their dependencies are met and run
// back-to-back; the gap between them is the GPU idleness ("bubble") that
// EchelonFlow scheduling aims to minimize.

#pragma once

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace echelon::netsim {

class Simulator;

struct ComputeTask {
  TaskId id;
  WorkerId worker;
  Duration duration = 0.0;
  std::string label;
  JobId job;

  SimTime enqueue_time = 0.0;
  SimTime start_time = kTimeInfinity;
  SimTime finish_time = kTimeInfinity;

  [[nodiscard]] bool finished() const noexcept {
    return finish_time < kTimeInfinity;
  }
};

struct Worker {
  WorkerId id;
  NodeId host;                 // network attachment point
  std::string name;

  std::deque<TaskId> queue;    // ready tasks waiting for the GPU
  TaskId running = TaskId::invalid();
  // Straggler multiplier: tasks *starting* on this worker run for
  // duration * compute_scale (fault injection models a slowed GPU; paper
  // Fig. 6 recalibration). 1.0 is bitwise neutral -- d * 1.0 == d in IEEE
  // arithmetic -- so fault-free runs are unperturbed. A running task keeps
  // the scale it started with.
  double compute_scale = 1.0;
  Duration busy_time = 0.0;    // total time spent executing tasks
  SimTime first_start = kTimeInfinity;
  SimTime last_finish = 0.0;

  [[nodiscard]] bool idle() const noexcept { return !running.valid(); }

  // Fraction of [first task start, last task finish] the GPU sat idle.
  [[nodiscard]] double idle_fraction() const noexcept {
    const Duration span = last_finish - first_start;
    if (span <= 0.0) return 0.0;
    return 1.0 - busy_time / span;
  }
};

}  // namespace echelon::netsim
