// Demand-limited weighted max-min rate allocation (progressive filling).
//
// Given the set of active flows (each with a path, a weight, and an optional
// rate cap) and per-link capacities, computes each flow's transmission rate:
//
//   rate_i = min(cap_i, weighted max-min fair share)
//
// Caps act as demands in classic water-filling: capacity a capped flow
// declines is redistributed among *uncapped* flows sharing its links, but a
// flow is never pushed above its cap. This gives schedulers exact rate
// control (MADD-style deliberate slowdown) while the default -- every cap
// unset, every weight 1 -- degenerates to TCP-like per-flow max-min fairness.

#pragma once

#include <span>
#include <vector>

#include "netsim/flow.hpp"
#include "topology/graph.hpp"

namespace echelon::netsim {

class RateAllocator {
 public:
  explicit RateAllocator(const topology::Topology* topo) : topo_(topo) {}

  // Overwrites `rate` on every flow in `flows`. Finished flows get rate 0.
  void allocate(std::span<Flow*> flows) const;

 private:
  const topology::Topology* topo_;
};

}  // namespace echelon::netsim
