// Demand-limited weighted max-min rate allocation (progressive filling).
//
// Given the set of active flows (each with a path, a weight, and an optional
// rate cap) and per-link capacities, computes each flow's transmission rate:
//
//   rate_i = min(cap_i, weighted max-min fair share)
//
// Caps act as demands in classic water-filling: capacity a capped flow
// declines is redistributed among *uncapped* flows sharing its links, but a
// flow is never pushed above its cap. This gives schedulers exact rate
// control (MADD-style deliberate slowdown) while the default -- every cap
// unset, every weight 1 -- degenerates to TCP-like per-flow max-min fairness.
//
// Hot-path data layout: the allocator runs after every scheduler control()
// pass, so its per-round state is arena-backed (see DESIGN.md). Per-link
// load lives in an epoch-stamped dense array indexed by LinkId; the unfrozen
// / next working sets are reusable member buffers; and each flow's link
// indices are flattened once per pass into a contiguous u32 arena so the
// water-filling inner loops walk a flat array instead of re-resolving
// LinkIds through a hash map. Steady-state allocate() calls perform no heap
// allocations after warm-up.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netsim/flow.hpp"
#include "topology/dense.hpp"
#include "topology/graph.hpp"

namespace echelon::netsim {

class RateAllocator {
 public:
  explicit RateAllocator(const topology::Topology* topo) : topo_(topo) {}

  // Overwrites `rate` on every flow in `flows`. Finished flows get rate 0.
  // Non-const: reuses the allocator's internal arenas across calls.
  void allocate(std::span<Flow*> flows);

 private:
  struct LinkLoad {
    double remaining_capacity = 0.0;
    double unfrozen_weight = 0.0;  // sum of weights of unfrozen flows here
  };
  // A contending flow plus the [begin, end) range of its cached link indices
  // in path_flat_.
  struct ActiveFlow {
    Flow* flow = nullptr;
    std::uint32_t path_begin = 0;
    std::uint32_t path_end = 0;
  };

  const topology::Topology* topo_;

  // --- reusable arenas (allocation-free after warm-up) ---
  topology::LinkScratch<LinkLoad> links_;
  std::vector<ActiveFlow> unfrozen_;
  std::vector<ActiveFlow> next_;
  std::vector<std::uint32_t> path_flat_;  // cached dense link indices
};

}  // namespace echelon::netsim
