// Demand-limited weighted max-min rate allocation (progressive filling),
// decomposed by link-contention component.
//
// Given the set of active flows (each with a path, a weight, and an optional
// rate cap) and per-link capacities, computes each flow's transmission rate:
//
//   rate_i = min(cap_i, weighted max-min fair share)
//
// Caps act as demands in classic water-filling: capacity a capped flow
// declines is redistributed among *uncapped* flows sharing its links, but a
// flow is never pushed above its cap. This gives schedulers exact rate
// control (MADD-style deliberate slowdown) while the default -- every cap
// unset, every weight 1 -- degenerates to TCP-like per-flow max-min fairness.
//
// Component decomposition (DESIGN.md "Incremental max-min allocation"):
// max-min fairness is local to the contention graph -- two flows that share
// no links cannot influence each other's rates. Every pass therefore
// partitions the contended flows into link-contention components (an
// epoch-stamped union-find threaded through the dense per-link scratch) and
// water-fills each component independently. This is the *canonical*
// algorithm for both modes:
//
//   * AllocMode::kFullRecompute -- water-fill every component, every pass.
//   * AllocMode::kIncremental   -- additionally cache each component's
//     converged rates in a slot+generation record store. A component whose
//     exact inputs (member ids in order, weights, caps) match its cached
//     record is *clean*: its rates are restored from the cache without
//     touching the water-fill. Because the fill is a deterministic function
//     of exactly the validated inputs, cached and recomputed rates are
//     bit-identical -- the property tests/test_alloc_equivalence.cpp pins.
//
// Change detection is belt and braces: schedulers that mutate weights/caps
// through Flow::set_weight / set_rate_cap / clear_rate_cap mark the flow
// control-dirty (a cheap short-circuit to "refill"), but validation also
// compares the recorded weight/cap *values* member by member, so direct
// field writes that bypass the setters are still detected. Arrivals miss the
// cache (no record yet); departures change the member list and miss too.
//
// Equivalence-class fill (DESIGN.md §11): collectives emit thousands of
// flows over a handful of distinct routed paths, so each component's
// members are additionally partitioned into (interned route, weight, cap)
// equivalence classes and the production fill (FillMode::kClass) iterates
// over K classes instead of N flows -- per-pass cost scales with distinct
// routes, not flows. The per-flow granularity survives as the reference
// the differential suite compares bit-for-bit.
//
// Hot-path data layout: the allocator runs after every scheduler control()
// pass, so its per-round state is arena-backed (see DESIGN.md). Per-link
// load lives in an epoch-stamped dense array indexed by LinkId; the
// union-find, component buckets, class partition and unfrozen / next
// working sets are reusable member buffers; and each flow's link indices
// are flattened once per pass into a contiguous u32 arena so the
// water-filling inner loops walk a flat array instead of re-resolving
// LinkIds through a hash map. Steady-state allocate() calls perform no heap
// allocations after warm-up -- in incremental mode this includes passes
// that hit or refill the cache with a stable component structure.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/pool.hpp"
#include "common/scratch.hpp"
#include "common/time.hpp"
#include "netsim/flow.hpp"
#include "obs/trace.hpp"
#include "topology/dense.hpp"
#include "topology/graph.hpp"

namespace echelon::netsim {

// Reallocation strategy. Both modes run the identical per-component
// progressive filling and produce bit-identical rates; kIncremental skips
// the fill for components whose inputs are unchanged since their last fill.
enum class AllocMode { kFullRecompute, kIncremental };

// Water-fill granularity (DESIGN.md §11). Under weighted max-min, flows
// sharing the same interned route, weight and cap are interchangeable: they
// see identical link constraints, accumulate identical per-round
// increments, and freeze together. kClass (the production path) therefore
// partitions each component's members into such equivalence classes and
// iterates the fill over K classes instead of N flows, fanning the
// converged class rates back out in a serial flow-id-ascending scatter.
// kPerFlow runs the same canonical fill with every member as its own unit
// -- the reference granularity the class-vs-per-flow differential suite
// compares against. Both granularities execute the identical sequence of
// floating-point operations per unit and per link (grouping-invariant
// form), so results, stats and traces are bit-identical.
enum class FillMode { kPerFlow, kClass };

// Weights at or below this epsilon are clamped up to it inside the
// allocator. A zero or negative weight would otherwise divide-by-zero in
// the water level computation (and previously tripped an assert in Debug
// builds); clamping gives such flows an arbitrarily small -- but positive --
// share instead. Weights above the epsilon are used bit-exactly as given.
inline constexpr double kMinFlowWeight = 1e-12;

class RateAllocator {
 public:
  // Raw allocator defaults to full recompute: standalone users (benchmarks,
  // property tests) typically re-run allocate() on an unchanged population,
  // which the cache would trivially short-circuit. The Simulator -- whose
  // passes see genuine arrival/departure/cap churn -- constructs its
  // allocator in kIncremental mode by default.
  explicit RateAllocator(const topology::Topology* topo,
                         AllocMode mode = AllocMode::kFullRecompute,
                         FillMode fill = FillMode::kClass)
      : topo_(topo), mode_(mode), fill_(fill) {}

  // Overwrites `rate` on every flow in `flows`. Finished flows get rate 0.
  // Non-const: reuses the allocator's internal arenas across calls. Also
  // consumes (clears) every flow's `control_dirty` notification flag.
  // `now` is only used to timestamp the optional kAllocPass trace event;
  // standalone callers (benchmarks, property tests) can ignore it.
  void allocate(std::span<Flow*> flows, SimTime now = 0.0);

  // Observability (DESIGN.md §9): with a sink attached, every allocate()
  // pass emits one kAllocPass event (id = pass index, ctx = components seen
  // this pass, value = components water-filled this pass; reused = ctx -
  // value). With `per_component` additionally set (the Simulator passes
  // detail >= kFlow), every water-filled component emits a kCompFill event
  // (id = pass index, ctx = component id, value = member count) followed by
  // a kClassFill event (same keys, value = equivalence-class count) in
  // ascending-component order -- parallel fills record into per-worker
  // shards and merge on the same key, so the stream is bit-identical at any
  // thread count *and* across fill granularities. nullptr (the default)
  // detaches: the emission site reduces to a single pointer compare and the
  // pass performs no extra work.
  void set_trace(obs::TraceSink* sink, bool per_component = false) noexcept {
    trace_ = sink;
    trace_components_ = sink != nullptr && per_component;
  }

  // Intra-pass parallelism (DESIGN.md §10): water-fill independent
  // contention components on up to `threads` pool participants. Components
  // are link-disjoint, each fill writes only its own members' rates and its
  // own links' scratch slots, and every order-sensitive effect (cache
  // stores, stats, dirty-set handoff, trace emission) happens serially in
  // ascending-component order after the join -- so results, stats and
  // traces are bit-identical to the serial pass at any thread count.
  // threads == 1 or pool == nullptr restores the serial path (the
  // default); threads == 0 uses every pool participant.
  void set_parallelism(ThreadPool* pool, unsigned threads) noexcept {
    pool_ = threads == 1 ? nullptr : pool;
    threads_ = threads;
  }

  [[nodiscard]] AllocMode mode() const noexcept { return mode_; }
  [[nodiscard]] FillMode fill_mode() const noexcept { return fill_; }
  // Switch the fill granularity (differential testing). Takes effect on the
  // next allocate() pass; both granularities produce bit-identical output,
  // so switching mid-run is legal (the incremental cache stays valid).
  void set_fill_mode(FillMode fill) noexcept { fill_ = fill; }

  // Flows whose `rate` differs from the value they carried into the last
  // allocate() pass, in span order. This is the dirty set the Simulator
  // uses to patch (rather than rebuild) its completion-time heap when the
  // accounting epoch did not move. Valid until the next allocate() call.
  [[nodiscard]] std::span<Flow* const> rate_changed() const noexcept {
    return rate_changed_;
  }

  // Telemetry: cumulative component-cache behavior (kIncremental only fills
  // components_filled < components; kFullRecompute fills all of them).
  struct Stats {
    std::uint64_t passes = 0;
    std::uint64_t components = 0;         // components seen, cumulative
    std::uint64_t components_reused = 0;  // cache hits (rates restored)
    std::uint64_t components_filled = 0;  // water-filled (miss or full mode)
    // Equivalence classes across water-filled components, cumulative. The
    // fill iterates classes, so classes / class_members is the per-pass
    // cost compression the route-interning layer achieved (1.0 = no
    // sharing, every flow its own class).
    std::uint64_t classes = 0;
    std::uint64_t class_members = 0;      // member flows of those classes
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct LinkLoad {
    double remaining_capacity = 0.0;
    double unfrozen_weight = 0.0;  // sum of weights of unfrozen flows here
    // First active-flow slot that touched this link in the current pass;
    // later touches union their slot with it, threading the union-find
    // through the dense link scratch without a per-pass edge list.
    std::uint32_t owner_slot = 0;
    // Dedup marker for the per-component link list (each filled component
    // walks its classes' routes once and lists every link exactly once).
    // Links are component-disjoint, so the marker needs no reset within a
    // pass; begin_pass() re-initializes it to 0.
    std::uint8_t listed = 0;
  };
  // A contending flow plus the [begin, end) range of its cached link indices
  // in path_flat_ and its clamped effective weight (== Flow::weight for all
  // weights above kMinFlowWeight).
  struct ActiveFlow {
    Flow* flow = nullptr;
    std::uint32_t path_begin = 0;
    std::uint32_t path_end = 0;
    double weight = 1.0;
  };
  // Snapshot of one member's allocation inputs plus its converged rate --
  // one contiguous array per record keeps the validation walk and the
  // in-place refresh on a single cache stream.
  struct MemberSnap {
    std::uint64_t id = 0;       // members appear in ascending span order
    double weight = 0.0;        // raw Flow::weight snapshot
    double cap = 0.0;           // valid when has_cap
    double rate = 0.0;          // converged rate
    bool has_cap = false;
  };
  // Cached converged state of one contention component. Referenced from
  // flow_rec_ by (index, generation); bumping `gen` invalidates every
  // outstanding reference in O(1) when the record is recycled. A record
  // whose *membership* still matches is refreshed in place on refill (same
  // slot, same gen, back-pointers untouched) -- the steady churn path.
  struct CompRecord {
    std::uint32_t gen = 0;
    bool in_free_list = false;
    std::uint64_t last_used_pass = 0;
    // Topology::capacity_epoch() at fill time: runtime link-capacity
    // changes (failures / degradation / recovery) conservatively invalidate
    // every cached record.
    std::uint64_t capacity_epoch = 0;
    std::vector<MemberSnap> members;
  };

  static constexpr std::uint32_t kInvalidIndex = 0xffffffffu;

  // Thread-confined working set of one water-fill: the unfrozen member list
  // and its next-round double buffer. One per pool participant
  // (WorkerScratch) so concurrent component fills never share them; the
  // serial path uses slot 0.
  struct FillScratch {
    std::vector<std::uint32_t> unfrozen;
    std::vector<std::uint32_t> next;
  };

  [[nodiscard]] std::uint32_t uf_find(std::uint32_t slot) noexcept;
  // Partitions the members of every to-be-filled component into (route,
  // weight, cap) equivalence classes and builds each component's deduped
  // link list. Serial; output is read-only during the (possibly parallel)
  // fills. See allocate() Phase B2.
  void partition_classes();
  // Progressive filling of fill component `rank` (index into fill_comps_)
  // at class granularity: the working units are the component's classes and
  // converged rates land in cls_rate_. Touches only the component's own
  // links_/class state plus `fs` -- safe to run concurrently for distinct
  // components with distinct scratch.
  void fill_component_class(std::size_t rank, FillScratch& fs);
  // The same canonical fill with every class member as its own unit
  // (reference granularity); converged rates land in member_rate_. Executes
  // bit-identical arithmetic to fill_component_class -- see DESIGN.md §11
  // for the grouping-invariance argument.
  void fill_component_perflow(std::size_t rank, FillScratch& fs);
  // Exact cache validation; on hit restores the cached rates and returns
  // true. Collision-proof: compares member ids positionally plus the
  // recorded weight/cap values bit-for-bit.
  [[nodiscard]] bool try_reuse(const std::uint32_t* members,
                               std::size_t count);
  void store_component(const std::uint32_t* members, std::size_t count);
  // Reclaims records unreferenced by any live component once the slab has
  // grown past 2x the live component count (departed flows leave phantom
  // references behind; the sweep bounds the slab instead of refcounting).
  void maybe_sweep_records(std::size_t live_components);

  const topology::Topology* topo_;
  AllocMode mode_;
  FillMode fill_ = FillMode::kClass;
  Stats stats_;
  std::uint64_t pass_ = 0;
  obs::TraceSink* trace_ = nullptr;  // null => zero-cost emission branch
  bool trace_components_ = false;    // emit kCompFill per filled component
  ThreadPool* pool_ = nullptr;       // null => serial fills (the default)
  unsigned threads_ = 1;

  // --- reusable arenas (allocation-free after warm-up) ---
  topology::LinkScratch<LinkLoad> links_;
  std::vector<ActiveFlow> af_;            // contended flows, span order
  std::vector<std::uint32_t> path_flat_;  // cached dense link indices
  std::vector<std::uint32_t> uf_parent_;  // union-find over af_ slots
  std::vector<std::uint32_t> comp_of_root_;
  std::vector<std::uint32_t> comp_of_;
  std::vector<std::uint32_t> comp_start_;   // comps+1 prefix offsets
  std::vector<std::uint32_t> comp_cursor_;
  std::vector<std::uint32_t> comp_members_; // bucketed slots, span order
  WorkerScratch<FillScratch> fill_scratch_; // per-participant fill arenas
  std::vector<std::uint32_t> fill_comps_;   // components to fill, ascending
  std::vector<std::uint32_t> fill_cands_;   // reuse_candidate per fill comp
  obs::TraceShards comp_shards_;            // parallel kCompFill emission
  std::vector<double> prev_rate_;           // span-parallel rate snapshot
  std::vector<Flow*> rate_changed_;

  // --- equivalence-class partition (Phase B2; DESIGN.md §11) ---
  // Built once per pass over exactly the members of to-be-filled
  // components (cache-reused components never touch it), then read-only
  // during the fills. SoA layout keyed by dense class index.
  std::vector<std::uint32_t> dirty_slots_;      // fill members, rank-major
  std::vector<std::uint64_t> route_key_;        // per dirty slot: bucket key
  std::vector<std::uint32_t> route_start_;      // route-bucket scatter
  std::vector<std::uint32_t> route_cursor_;
  std::vector<std::uint32_t> route_order_;
  std::vector<std::uint32_t> comp_rank_;        // comp id -> fill rank
  std::vector<std::uint32_t> class_of_slot_;    // af_ slot -> class id
  std::uint32_t n_classes_ = 0;
  std::vector<double> cls_weight_;              // clamped effective weight
  std::vector<double> cls_cap_;                 // valid when cls_has_cap_
  std::vector<std::uint8_t> cls_has_cap_;
  std::vector<double> cls_rate_;                // converged class rate
  std::vector<std::uint32_t> cls_count_;        // members in the class
  std::vector<std::uint32_t> cls_path_begin_;   // route links in path_flat_
  std::vector<std::uint32_t> cls_path_end_;
  std::vector<std::uint32_t> cls_rank_;         // owning fill rank
  std::vector<std::uint32_t> rank_class_start_; // ranks+1: classes per rank
  std::vector<std::uint32_t> rank_class_cursor_;
  std::vector<std::uint32_t> rank_classes_;     // class ids bucketed by rank
  std::vector<std::uint32_t> class_member_start_;  // classes+1
  std::vector<std::uint32_t> class_member_cursor_;
  std::vector<std::uint32_t> class_members_;    // slots bucketed by class
  std::vector<std::uint32_t> comp_links_;       // deduped links, rank-major
  std::vector<std::uint32_t> rank_link_start_;  // ranks+1 offsets into ^
  std::vector<double> member_rate_;             // per-slot rates (kPerFlow)

  // --- component record cache (kIncremental) ---
  std::vector<CompRecord> records_;
  std::vector<std::uint32_t> record_free_;
  // Set by try_reuse when a record's member list matched positionally but
  // its values (weights / caps / capacity epoch) did not: store_component
  // refreshes that record in place instead of allocating a fresh slot.
  // Valid only between a try_reuse miss and the store_component that
  // immediately follows it.
  std::uint32_t reuse_candidate_ = kInvalidIndex;
  // Per flow id: record index + generation snapshot ("which record did this
  // flow's component last converge in"). Grows with the simulation's total
  // flow count, like the Simulator's own flow table.
  std::vector<std::uint32_t> flow_rec_;
  std::vector<std::uint32_t> flow_rec_gen_;
};

}  // namespace echelon::netsim
