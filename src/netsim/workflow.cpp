#include "netsim/workflow.hpp"

#include <deque>

namespace echelon::netsim {

bool Workflow::is_acyclic() const {
  // Kahn's algorithm: if a topological order covers all nodes, no cycle.
  std::vector<int> indegree(nodes_.size(), 0);
  for (const WfNode& n : nodes_) indegree[n.id] = n.dependency_count;
  std::deque<WfNodeId> ready;
  for (const WfNode& n : nodes_) {
    if (n.dependency_count == 0) ready.push_back(n.id);
  }
  std::size_t visited = 0;
  while (!ready.empty()) {
    const WfNodeId cur = ready.front();
    ready.pop_front();
    ++visited;
    for (WfNodeId succ : nodes_[cur].successors) {
      if (--indegree[succ] == 0) ready.push_back(succ);
    }
  }
  return visited == nodes_.size();
}

WorkflowEngine::WorkflowEngine(Simulator* sim, const Workflow* wf)
    : sim_(sim),
      wf_(wf),
      pending_(wf->size()),
      start_times_(wf->size(), kTimeInfinity),
      finish_times_(wf->size(), kTimeInfinity),
      flow_ids_(wf->size(), FlowId::invalid()) {
  for (const WfNode& n : wf->nodes()) pending_[n.id] = n.dependency_count;
}

void WorkflowEngine::launch(SimTime start) {
  const std::vector<WfNodeId> roots = wf_->roots();
  sim_->schedule_at(start, [this, roots](Simulator&) {
    for (WfNodeId id : roots) release(id);
  });
}

void WorkflowEngine::release(WfNodeId id) {
  const WfNode& n = wf_->node(id);
  start_times_[id] = sim_->now();
  switch (n.kind) {
    case WfKind::kCompute:
      sim_->enqueue_task(n.worker, n.duration, n.label, n.flow.job,
                         [this, id](Simulator&, const ComputeTask&) {
                           node_done(id);
                         });
      break;
    case WfKind::kFlow: {
      const FlowId fid = sim_->submit_flow(
          n.flow,
          [this, id](Simulator&, const Flow&) { node_done(id); });
      flow_ids_[id] = fid;
      if (on_flow_submitted) on_flow_submitted(id, fid);
      // Zero-byte flows complete inside submit_flow; node_done already ran.
      break;
    }
    case WfKind::kBarrier:
      node_done(id);
      break;
  }
}

void WorkflowEngine::node_done(WfNodeId id) {
  finish_times_[id] = sim_->now();
  ++completed_;
  // Barriers and zero-byte flows complete synchronously inside release(), so
  // a successor's node_done can run -- and observe finished() -- before this
  // frame returns. Only the call whose own increment completed the workflow
  // may fire on_complete, otherwise every frame in the synchronous release
  // chain would re-fire it.
  const bool completes_workflow = finished();
  for (WfNodeId succ : wf_->node(id).successors) {
    if (--pending_[succ] == 0) release(succ);
  }
  if (completes_workflow && on_complete) on_complete(*sim_);
}

}  // namespace echelon::netsim
