// Flow model for the fluid (flow-level) network simulation.

#pragma once

#include <optional>
#include <string>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "topology/graph.hpp"

namespace echelon::netsim {

// Immutable description of a flow, provided at submission time.
struct FlowSpec {
  NodeId src;
  NodeId dst;
  Bytes size = 0.0;

  // Application metadata carried through to schedulers and reports.
  JobId job;                    // owning training job (optional)
  EchelonFlowId group;          // owning EchelonFlow (optional)
  int index_in_group = 0;       // position within the EchelonFlow
  std::string label;            // human-readable tag for traces

  // Structural identity stable across training iterations (same position in
  // the workflow => same signature). Lets the coordinator reuse scheduling
  // decisions over a job's lifetime (paper §5). 0 = no signature.
  std::uint64_t signature = 0;

  // ECMP seed hint for route interning (DESIGN.md §11). When nonzero, the
  // Simulator routes this flow with `route_hint` as the ECMP seed instead of
  // the flow id, so structurally identical flows across training iterations
  // (same signature => same hint) land on the *same* interned route and
  // collapse into one allocator equivalence class. 0 = no hint (per-flow-id
  // seed, the historical behavior).
  std::uint64_t route_hint = 0;
};

// kParked: the flow is known to the simulator but not in the network -- its
// path was severed by a fault (or it was unroutable at submission) and it is
// waiting for recovery. A parked flow holds its materialized `remaining`,
// carries rate 0, and is invisible to the scheduler and allocator until
// resumed (Simulator::resume_flow) or given up on (Simulator::abandon_flow).
enum class FlowState { kActive, kParked, kFinished };

// Live flow state, owned by the Simulator.
struct Flow {
  // Sentinel for `active_index` when the flow is not in the active set.
  static constexpr std::size_t kNotActive = static_cast<std::size_t>(-1);

  FlowId id;
  FlowSpec spec;
  topology::Path path;          // directed links traversed
  // Interned identity of `path` in the Simulator's RouteTable: flows with
  // equal `route` have bitwise-equal paths, which is what the allocator's
  // equivalence-class fill groups on. Kept in sync with `path` by the
  // Simulator (submission, resume, reroute); invalid for flows whose path
  // was written directly (standalone benchmarks/tests), which the allocator
  // then treats as singleton classes.
  RouteId route;

  // Simulator bookkeeping: this flow's slot in Simulator::active_flows_,
  // enabling O(1) swap-and-pop retirement (kNotActive while inactive).
  // Maintained exclusively by the Simulator.
  std::size_t active_index = kNotActive;
  // Simulator bookkeeping: generation stamp tying this flow to its entry in
  // the completion-time heap (DESIGN.md "Event-loop fast path"). An entry
  // whose generation no longer matches is stale and is discarded lazily.
  // 64-bit: the incremental heap patch bumps the generation per rate-changed
  // flow (not per rebuild), so the counter must never wrap.
  std::uint64_t completion_gen = 0;

  FlowState state = FlowState::kActive;
  // Bytes left to transmit *as of the simulator's accounting epoch* (the
  // last reallocation boundary or deadline stamp), not necessarily as of
  // `now()`. The Simulator materializes the up-to-date value on demand as
  // `remaining - rate * (now - epoch)`; between epochs this field is not
  // advanced per event. Outside of `Simulator::run` (at quiescence or at a
  // run deadline) the value is always materialized and exact.
  Bytes remaining = 0.0;
  SimTime start_time = 0.0;     // when the flow entered the network
  SimTime finish_time = kTimeInfinity;
  // True once the flow has actually entered the network (arrival listeners
  // fired, start_time fixed). Flows parked at birth because no route existed
  // enter on their first successful resume instead of at submission.
  bool entered = false;

  // --- control plane ---
  // Weight for weighted max-min sharing (fair default: 1).
  double weight = 1.0;
  // Explicit rate demand set by a scheduler. The allocator never exceeds it.
  // nullopt = uncapped (pure max-min share).
  std::optional<BytesPerSec> rate_cap;
  // Cap/weight-change notification consumed by the RateAllocator: true when
  // a scheduler changed this flow's control inputs since the last
  // reallocation. Set by the compare-and-set mutators below; direct writes
  // to `weight` / `rate_cap` remain legal (the incremental allocator also
  // validates the recorded *values*), but forgo the cheap short-circuit.
  bool control_dirty = false;

  // Compare-and-set control mutators: no-ops (and no dirty mark) when the
  // new value equals the current one, so steady-state schedulers that
  // re-emit identical decisions keep clean components clean.
  void set_weight(double w) noexcept {
    if (w != weight) {
      weight = w;
      control_dirty = true;
    }
  }
  void set_rate_cap(BytesPerSec cap) noexcept {
    if (!rate_cap || *rate_cap != cap) {
      rate_cap = cap;
      control_dirty = true;
    }
  }
  void clear_rate_cap() noexcept {
    if (rate_cap) {
      rate_cap.reset();
      control_dirty = true;
    }
  }

  // --- data plane (recomputed by the allocator) ---
  BytesPerSec rate = 0.0;

  [[nodiscard]] bool finished() const noexcept {
    return state == FlowState::kFinished;
  }
  [[nodiscard]] bool parked() const noexcept {
    return state == FlowState::kParked;
  }
  [[nodiscard]] Duration completion_time() const noexcept {
    return finish_time - start_time;
  }
};

}  // namespace echelon::netsim
