// Computation/communication DAG and its execution engine.
//
// A Workflow is a static DAG whose nodes are GPU compute tasks, network
// flows, or zero-cost barriers; edges are data dependencies. Paradigm
// generators (src/workload) emit one Workflow per training job, fully
// unrolled over micro-batches, layers, buckets, collective steps, and
// iterations -- mirroring how a real framework's execution graph looks to
// the network.
//
// The WorkflowEngine binds a Workflow to a Simulator: it releases source
// nodes at launch and releases each successor the moment its last
// dependency completes, recording per-node start/finish times.

#pragma once

#include <cassert>
#include <functional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "netsim/simulator.hpp"

namespace echelon::netsim {

using WfNodeId = std::size_t;

enum class WfKind { kCompute, kFlow, kBarrier };

struct WfNode {
  WfNodeId id = 0;
  WfKind kind = WfKind::kBarrier;
  std::string label;

  // kCompute
  WorkerId worker;
  Duration duration = 0.0;

  // kFlow
  FlowSpec flow;

  std::vector<WfNodeId> successors;
  int dependency_count = 0;
};

class Workflow {
 public:
  // Job id stamped on every subsequently added node (flows inherit it in
  // their FlowSpec; compute tasks carry it to the simulator).
  void set_job(JobId job) noexcept { job_ = job; }
  [[nodiscard]] JobId job() const noexcept { return job_; }

  WfNodeId add_compute(WorkerId worker, Duration duration, std::string label) {
    WfNode n;
    n.kind = WfKind::kCompute;
    n.worker = worker;
    n.duration = duration;
    n.label = std::move(label);
    return add_node(std::move(n));
  }

  WfNodeId add_flow(FlowSpec spec, std::string label = {}) {
    WfNode n;
    n.kind = WfKind::kFlow;
    if (label.empty()) label = spec.label;
    n.flow = std::move(spec);
    n.label = std::move(label);
    return add_node(std::move(n));
  }

  WfNodeId add_barrier(std::string label) {
    WfNode n;
    n.kind = WfKind::kBarrier;
    n.label = std::move(label);
    return add_node(std::move(n));
  }

  // Declares that `succ` cannot start before `pre` completes.
  void add_dep(WfNodeId pre, WfNodeId succ) {
    assert(pre < nodes_.size() && succ < nodes_.size() && pre != succ);
    nodes_[pre].successors.push_back(succ);
    ++nodes_[succ].dependency_count;
  }

  // Convenience: every node in `pres` must precede `succ`.
  void add_deps(const std::vector<WfNodeId>& pres, WfNodeId succ) {
    for (WfNodeId p : pres) add_dep(p, succ);
  }

  [[nodiscard]] const WfNode& node(WfNodeId id) const { return nodes_.at(id); }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] const std::vector<WfNode>& nodes() const noexcept {
    return nodes_;
  }

  // Nodes with no dependencies (released at launch).
  [[nodiscard]] std::vector<WfNodeId> roots() const {
    std::vector<WfNodeId> out;
    for (const WfNode& n : nodes_) {
      if (n.dependency_count == 0) out.push_back(n.id);
    }
    return out;
  }

  // Sanity check: the dependency graph must be acyclic to be executable.
  [[nodiscard]] bool is_acyclic() const;

 private:
  WfNodeId add_node(WfNode n) {
    n.id = nodes_.size();
    if (!n.flow.job.valid()) n.flow.job = job_;
    nodes_.push_back(std::move(n));
    return nodes_.back().id;
  }

  std::vector<WfNode> nodes_;
  JobId job_;
};

class WorkflowEngine {
 public:
  // The engine keeps pointers to both; they must outlive it.
  WorkflowEngine(Simulator* sim, const Workflow* wf);

  // Releases all root nodes at `start` (>= sim.now()).
  void launch(SimTime start);

  [[nodiscard]] bool finished() const noexcept {
    return completed_ == wf_->size();
  }
  [[nodiscard]] std::size_t completed_nodes() const noexcept {
    return completed_;
  }

  [[nodiscard]] SimTime node_start(WfNodeId id) const {
    return start_times_.at(id);
  }
  [[nodiscard]] SimTime node_finish(WfNodeId id) const {
    return finish_times_.at(id);
  }
  // FlowId assigned to a kFlow node once submitted (invalid before).
  [[nodiscard]] FlowId flow_of(WfNodeId id) const { return flow_ids_.at(id); }

  // Hooks. `on_flow_submitted` lets callers (the EchelonFlow registry) bind
  // simulator FlowIds to abstraction-level flow positions as they appear.
  std::function<void(WfNodeId, FlowId)> on_flow_submitted;
  std::function<void(Simulator&)> on_complete;

 private:
  void release(WfNodeId id);
  void node_done(WfNodeId id);

  Simulator* sim_;
  const Workflow* wf_;
  std::vector<int> pending_;
  std::vector<SimTime> start_times_;
  std::vector<SimTime> finish_times_;
  std::vector<FlowId> flow_ids_;
  std::size_t completed_ = 0;
};

}  // namespace echelon::netsim
