// Fluid flow-level discrete-event simulator.
//
// The simulator advances between "interesting" instants: scheduled events
// (timers, task completions, deferred flow submissions) and flow completion
// times implied by the current rate allocation. Between instants every active
// flow transmits at a constant rate, so progress is exact (no time stepping).
//
// The control loop per instant:
//   1. fire all due events (may submit flows / enqueue tasks),
//   2. if the active flow set changed, materialize per-flow byte counts at
//      the current instant (the "epoch stamp"), let the NetworkScheduler
//      assign weights and rate caps, then recompute rates with the
//      RateAllocator,
//   3. advance to min(next event, earliest flow completion),
//   4. retire flows whose completion time has arrived (callbacks may again
//      mutate state).
//
// Hot-path layout (DESIGN.md "Event-loop fast path"): byte accounting is
// *lazy*. `Flow::remaining` is authoritative only at the accounting epoch
// `epoch_time_`; the up-to-date value is `remaining - rate * (t - epoch)`.
// Rates change only at reallocation boundaries, so one O(active) stamp per
// reallocate() replaces the seed's O(active) drain per event, and completion
// instants come from a min-heap of precomputed completion times instead of a
// linear scan. Per event the loop costs O(log n + retired flows).
//
// SimLoopMode::kEagerScan keeps the seed's O(active)-per-event linear scans
// (on top of the same epoch-stamped accounting) as a reference
// implementation: both modes evaluate identical floating-point expressions
// on identical operands at every observation point, so results are
// bit-identical -- the property the golden-equivalence suite asserts.

#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.hpp"
#include "common/pool.hpp"
#include "common/time.hpp"
#include "netsim/allocator.hpp"
#include "netsim/compute.hpp"
#include "netsim/event_queue.hpp"
#include "netsim/flow.hpp"
#include "netsim/scheduler.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "topology/graph.hpp"
#include "topology/route_table.hpp"

namespace echelon::netsim {

// Event-loop strategy. kLazy is the production O(log n)-per-event path;
// kEagerScan is the O(active)-per-event reference used by the
// golden-equivalence suite. Both produce bit-identical simulations.
enum class SimLoopMode { kLazy, kEagerScan };

class Simulator {
 public:
  using FlowCallback = std::function<void(Simulator&, const Flow&)>;
  using TaskCallback = std::function<void(Simulator&, const ComputeTask&)>;
  using TimerCallback = std::function<void(Simulator&)>;

  // The simulator's allocator defaults to incremental reallocation
  // (AllocMode::kIncremental): its passes see genuine arrival / departure /
  // cap churn, which is exactly what the component cache exploits.
  // kFullRecompute is retained as the reference mode for the
  // golden-equivalence suite (tests/test_alloc_equivalence.cpp).
  // `fill_mode` selects the per-component water-fill granularity
  // (equivalence classes by default; see FillMode) -- the two produce
  // bit-identical allocations, which the route-class differential suite
  // pins.
  explicit Simulator(const topology::Topology* topo,
                     SimLoopMode mode = SimLoopMode::kLazy,
                     AllocMode alloc_mode = AllocMode::kIncremental,
                     FillMode fill_mode = FillMode::kClass);

  // Non-copyable: owns callbacks holding references to itself.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] SimLoopMode loop_mode() const noexcept { return mode_; }
  [[nodiscard]] AllocMode alloc_mode() const noexcept {
    return allocator_.mode();
  }
  // Component-cache telemetry of the underlying allocator.
  [[nodiscard]] const RateAllocator::Stats& alloc_stats() const noexcept {
    return allocator_.stats();
  }
  [[nodiscard]] const topology::Topology& topology() const noexcept {
    return *topo_;
  }
  // Route interning table (DESIGN.md §11): every path the simulator puts a
  // flow on is interned here, giving flows a RouteId identity the allocator
  // groups equivalence classes on. Read-mostly telemetry access; mutable so
  // fault-injection helpers can re-intern recovery paths through the same
  // cache.
  [[nodiscard]] topology::RouteTable& routes() noexcept { return routes_; }
  [[nodiscard]] const topology::RouteTable& routes() const noexcept {
    return routes_;
  }

  // --- control plane ---
  // `scheduler` must outlive the simulator run. Defaults to fair sharing.
  void set_scheduler(NetworkScheduler* scheduler) noexcept;
  [[nodiscard]] NetworkScheduler& scheduler() noexcept { return *scheduler_; }

  // --- intra-run parallelism (DESIGN.md §10) ---
  // Dispatches the O(active)/O(components) control-plane passes -- the
  // allocator's per-component water-fills, the accounting-epoch byte stamp
  // and the completion-heap entry preparation -- onto up to `threads`
  // participants of `pool`. Every parallel section performs the identical
  // floating-point work on disjoint state and merges order-sensitively
  // after the join, so simulation results are bit-identical at any thread
  // count (the threaded golden-equivalence suite pins this). threads == 1
  // or pool == nullptr restores the fully serial simulator (the default);
  // threads == 0 uses every pool participant. Nested use -- a parallel
  // simulator inside a run_sweep worker -- is safe: inner sections execute
  // inline-serially (ThreadPool nested-dispatch rule).
  void set_parallelism(ThreadPool* pool, unsigned threads) noexcept {
    pool_ = threads == 1 ? nullptr : pool;
    par_threads_ = threads;
    allocator_.set_parallelism(pool, threads);
  }

  // --- observability (DESIGN.md §9) ---
  // Attaches a structured-event sink. Emitters only ever *read* simulation
  // state, so decisions are bit-identical with and without a sink; with
  // `sink == nullptr` (the default) every emission site reduces to a single
  // pointer comparison -- zero extra work, zero allocations. `detail`
  // selects which kinds fire (see obs::TraceDetail); the allocator's
  // kAllocPass emission follows the kCoarse level. Sink must outlive the
  // simulator run.
  void set_trace(obs::TraceSink* sink,
                 obs::TraceDetail detail = obs::TraceDetail::kFlow) noexcept;
  [[nodiscard]] obs::TraceSink* trace_sink() const noexcept { return trace_; }
  [[nodiscard]] obs::TraceDetail trace_detail() const noexcept {
    return trace_detail_;
  }

  // Attaches a metrics registry: per-link utilization and active-flow-count
  // series sampled at every control pass, a flow-completion-time histogram
  // and a worker-queue-depth histogram. Same contract as set_trace:
  // read-only, nullptr (the default) detaches and costs one branch.
  // Instrument pointers are resolved here once so sampling never does a
  // name lookup. Registry must outlive the simulator run.
  void set_metrics(obs::MetricsRegistry* registry);
  [[nodiscard]] obs::MetricsRegistry* metrics() const noexcept {
    return metrics_;
  }

  // Current per-link utilization (allocated rate / nominal capacity) into
  // `out`, resized to link_count(). Read-only over active-flow state; the
  // service-plane telemetry flusher samples this at its own cadence,
  // independent of the control-pass sampling set_metrics wires up.
  void link_utilization(std::vector<double>& out) const;

  // --- workers / compute ---
  WorkerId add_worker(NodeId host, std::string name = {});
  [[nodiscard]] const Worker& worker(WorkerId id) const {
    return workers_.at(id.value());
  }
  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }

  // Enqueues a task on a worker's FIFO queue; it starts as soon as the GPU
  // is free. `on_done` fires at completion.
  TaskId enqueue_task(WorkerId worker, Duration duration, std::string label,
                      JobId job = {}, TaskCallback on_done = {});
  [[nodiscard]] const ComputeTask& task(TaskId id) const {
    return tasks_.at(id.value());
  }

  // Straggler control: tasks *starting* on `worker` after this call run for
  // duration * scale. The currently running task (if any) keeps the scale it
  // started with. scale == 1.0 is bitwise neutral.
  void set_compute_scale(WorkerId worker, double scale) {
    workers_.at(worker.value()).compute_scale = scale;
  }

  // --- flows ---
  // Submits a flow that starts *now*. `on_done` fires at completion.
  FlowId submit_flow(FlowSpec spec, FlowCallback on_done = {});
  [[nodiscard]] const Flow& flow(FlowId id) const {
    return flows_.at(id.value());
  }
  [[nodiscard]] std::size_t flow_count() const noexcept {
    return flows_.size();
  }
  [[nodiscard]] std::size_t active_flow_count() const noexcept {
    return active_flows_.size();
  }
  // The active set (unspecified order between control passes; ascending
  // FlowId right after a control pass). Read-only view for fault injection
  // and diagnostics.
  [[nodiscard]] const std::vector<FlowId>& active_flows() const noexcept {
    return active_flows_;
  }

  // Mutable flow access for schedulers (weights/caps).
  [[nodiscard]] Flow& flow_mutable(FlowId id) { return flows_.at(id.value()); }

  // --- graceful degradation (fault injection) ---
  // Removes an active flow from the network without finishing it: bytes
  // transmitted so far are materialized, the scheduler sees a departure (its
  // caches must not keep the flow), but the completion callback and global
  // flow listeners do NOT fire -- the flow is suspended, not done. No-op on
  // flows that are not active.
  void park_flow(FlowId id);

  // Puts a parked flow back into the network on `path`, which must be valid
  // in the current topology. Resumes from the parked `remaining`; on the
  // first real entry (flows parked at birth) fixes start_time and fires the
  // arrival listeners. The scheduler sees a (re-)arrival.
  void resume_flow(FlowId id, topology::Path path);

  // Replaces an active flow's path in place (fault rerouting). Marks the
  // flow control-dirty so the incremental allocator refills its component
  // (the converged-rate cache does not fingerprint paths) and forces a
  // reallocation.
  void reroute_flow(FlowId id, topology::Path path);

  // Recomputes flow `id`'s route in the *current* topology through the
  // interned route cache, using the same ECMP seed submit_flow used
  // (route_hint if set, else the flow id) -- so a recovered flow lands back
  // on its canonical route and its equivalence class. Returns nullopt when
  // the endpoints are currently disconnected. Does not mutate the flow;
  // callers pass the result to resume_flow/reroute_flow.
  [[nodiscard]] std::optional<topology::Path> route_flow(FlowId id);

  // Gives up on a parked flow (retry budget exhausted): the flow completes
  // *unsuccessfully* at the current instant -- finish_time is set and the
  // completion callback and flow listeners fire so dependent work is
  // released, but `remaining` keeps the undelivered byte count as a record
  // of loss. The scheduler is not notified (it saw the departure at park
  // time).
  void abandon_flow(FlowId id);

  // When set, a flow submitted with no route between its endpoints is
  // *parked at birth* (state kParked, not entered, handler invoked with its
  // id) instead of submit_flow throwing std::invalid_argument. Installed by
  // the fault injector, which owns the retry/park policy for outages.
  using UnroutableHandler = std::function<void(Simulator&, FlowId)>;
  void set_unroutable_handler(UnroutableHandler handler) {
    unroutable_handler_ = std::move(handler);
  }

  // Tells the control plane that link capacities / up-down state changed at
  // runtime: forwards to NetworkScheduler::on_topology_change and
  // invalidates the allocation. Fault injectors call this after every
  // topology mutation. Capacity churn couples every job through the shared
  // fabric, so the whole dirty-job set escalates.
  void notify_topology_change() {
    scheduler_->on_topology_change(*this);
    mark_all_jobs_dirty();
    allocation_dirty_ = true;
  }

  // --- incremental control plane (DESIGN.md §12) ---
  // Per-job dirty marks, accumulated between control passes and forwarded to
  // the NetworkScheduler at the top of every reallocate(). The simulator
  // marks on every scheduler-visible membership change (arrival, completion,
  // park/resume, reroute) and on externally-observed weight/cap churn (the
  // Flow notification setters leave control_dirty, which the pre-control
  // scan picks up); Registry-style external control-state changes call these
  // directly. Tracking is mode-independent -- the marks are forwarded as
  // hints whether or not the scheduler runs incrementally, so traces and
  // results never depend on SchedMode.
  void mark_job_dirty(JobId job) {
    if (all_jobs_dirty_) return;
    const std::uint64_t v = job.value();
    for (const std::uint64_t d : dirty_jobs_) {
      if (d == v) return;
    }
    if (dirty_jobs_.size() >= kMaxDirtyJobs) {
      mark_all_jobs_dirty();
      return;
    }
    dirty_jobs_.push_back(v);
  }
  void mark_all_jobs_dirty() noexcept {
    all_jobs_dirty_ = true;
    dirty_jobs_.clear();
  }

  // Accounting generation: bumped exactly when an epoch stamp advances byte
  // counts (dt > 0). Together with the topology's capacity_epoch this forms
  // the control-plane *era*: while both are unchanged, every scheduler input
  // except explicitly-marked job state is bitwise identical, which is what
  // lets incremental schedulers reuse cached per-job rank keys.
  [[nodiscard]] std::uint64_t accounting_generation() const noexcept {
    return accounting_gen_;
  }

  // --- timers ---
  void schedule_at(SimTime at, TimerCallback cb);
  void schedule_after(Duration delay, TimerCallback cb) {
    schedule_at(now_ + delay, std::move(cb));
  }

  // --- global listeners (metrics collection) ---
  void add_flow_listener(FlowCallback cb) {
    flow_listeners_.push_back(std::move(cb));
  }
  // Fires when a flow enters the network (start time fixed). Used by the
  // EchelonFlow registry to bind reference times under any scheduler.
  void add_flow_arrival_listener(FlowCallback cb) {
    flow_arrival_listeners_.push_back(std::move(cb));
  }
  void add_task_listener(TaskCallback cb) {
    task_listeners_.push_back(std::move(cb));
  }

  // Forces a scheduler + allocator pass before the next advance. Schedulers
  // call this when external state (e.g. a new EchelonFlow registration)
  // changes their decisions.
  void invalidate_allocation() noexcept { allocation_dirty_ = true; }

  // Runs until the event queue is empty and no flows are active, or until
  // `deadline`. Returns the simulation time reached.
  SimTime run(SimTime deadline = kTimeInfinity);

  // Count of scheduler control passes -- a measure of control-plane load.
  [[nodiscard]] std::uint64_t control_invocations() const noexcept {
    return control_invocations_;
  }

  // --- snapshot introspection (src/service, DESIGN.md §13) ---
  // Read-only views of the engine's internal clocks and queues, consumed by
  // the service snapshot layer to build its bitwise verification image. None
  // of these mutate state or observe anything mode-dependent.
  [[nodiscard]] SimTime epoch_time() const noexcept { return epoch_time_; }
  [[nodiscard]] const EventQueue& events() const noexcept { return events_; }
  // Order-insensitive FNV-1a fold over the completion heap's (tc, flow, gen)
  // triples plus its size and rebuild generation. Two simulators whose
  // histories diverged anywhere upstream of completion scheduling disagree
  // here with overwhelming probability; identical histories agree exactly
  // (the heap's *array* order may differ between lazily-rebuilt heaps, hence
  // the commutative fold).
  [[nodiscard]] std::uint64_t completion_heap_digest() const noexcept {
    constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
    constexpr std::uint64_t kPrime = 0x100000001b3ULL;
    std::uint64_t acc = 0;
    for (const CompletionEntry& e : completion_heap_) {
      std::uint64_t h = kOffset;
      std::uint64_t bits;
      static_assert(sizeof(bits) == sizeof(e.tc));
      std::memcpy(&bits, &e.tc, sizeof(bits));
      for (const std::uint64_t word : {bits, static_cast<std::uint64_t>(
                                                 e.flow.value()),
                                       e.gen}) {
        for (int i = 0; i < 8; ++i) {
          h ^= (word >> (8 * i)) & 0xff;
          h *= kPrime;
        }
      }
      acc += h;  // commutative: heap array order is not part of the contract
    }
    return acc ^ (static_cast<std::uint64_t>(completion_heap_.size()) << 1) ^
           heap_gen_;
  }

 private:
  // Completion-time heap entry: the instant `flow` finishes at its current
  // rate, computed at stamp time as `epoch + remaining / rate`. `gen` ties
  // the entry to the rebuild epoch; a mismatch means the entry is stale.
  struct CompletionEntry {
    SimTime tc;
    FlowId flow;
    std::uint64_t gen;
  };
  // Comparator for std::*_heap (max-heap): "a completes later than b" puts
  // the earliest completion (ties: lowest FlowId) at the front.
  struct LaterCompletion {
    [[nodiscard]] bool operator()(const CompletionEntry& a,
                                  const CompletionEntry& b) const noexcept {
      if (a.tc != b.tc) return a.tc > b.tc;
      return a.flow > b.flow;
    }
  };

  void reallocate();
  // True when a sink is attached at (at least) `min_detail` -- the guard in
  // front of every emission site.
  [[nodiscard]] bool tracing(obs::TraceDetail min_detail) const noexcept {
    return trace_ != nullptr && trace_detail_ >= min_detail;
  }
  // Builds and records one flow-lifecycle event from the flow's metadata.
  // Callers gate with tracing() first; out-of-line so the disabled path
  // stays a lone branch.
  void trace_flow(obs::TraceKind kind, const Flow& f, double value,
                  std::string_view label = {});
  // Samples per-link utilization and the active-flow count into metrics_.
  // Called at reallocation boundaries only, and only when a registry is
  // attached.
  void sample_metrics();
  void start_next_task(WorkerId worker);
  void finish_task(TaskId id);
  void finish_flow(FlowId id);
  // Shared completion tail: marks the flow finished and fires the departure
  // hooks in their canonical order (scheduler -> per-flow callback -> global
  // listeners). Both the zero-byte instant-completion path and finish_flow
  // funnel through here so the ordering is defined in exactly one place.
  // `notify_scheduler` is false for zero-byte flows, which never arrived
  // from the scheduler's point of view.
  void complete_flow(FlowId id, bool notify_scheduler);
  void fire_timer(std::uint32_t slot);
  // Re-establishes ascending-FlowId order of active_flows_ after swap-and-pop
  // retirements (callback and scheduler tie-break order depend on it).
  void restore_active_order();
  // Materializes every active flow's `remaining` at time `to` and moves the
  // accounting epoch there. O(active); called once per reallocation boundary
  // and per run() deadline, never per event.
  void stamp_active_flows(SimTime to);
  // Rebuilds the completion heap from the current epoch state (heapify,
  // O(active)). Lazy mode only.
  void rebuild_completion_heap();
  // Incremental heap maintenance for same-instant reallocations: when the
  // accounting epoch did not move, every unchanged flow's heap entry is
  // bitwise still valid, so only the allocator's rate-changed dirty set
  // needs re-stamping (O(changed * log n) instead of O(active)). Lazy mode
  // only; called right after a reallocation that kept the epoch in place.
  void patch_completion_heap();
  [[nodiscard]] SimTime earliest_completion_scan() const noexcept;
  [[nodiscard]] SimTime earliest_completion_heap();

  const topology::Topology* topo_;
  topology::RouteTable routes_;
  RateAllocator allocator_;
  FairSharingScheduler default_scheduler_;
  NetworkScheduler* scheduler_;
  SimLoopMode mode_;

  // Intra-run parallelism (set_parallelism). Sections dispatch only above
  // kParallelBatch active flows -- below it the sync cost dwarfs the work;
  // the cutoff cannot affect results because both paths are bit-identical.
  ThreadPool* pool_ = nullptr;
  unsigned par_threads_ = 1;
  static constexpr std::size_t kParallelBatch = 512;
  // Parallel heap preparation: per-active-flow entries computed into index
  // slots, compacted serially in active order (gen == 0 marks "no entry";
  // heap_gen_ is always >= 1 by then).
  std::vector<CompletionEntry> heap_prep_scratch_;

  SimTime now_ = 0.0;
  // Accounting epoch: the instant at which every active flow's `remaining`
  // is authoritative. Invariant: epoch_time_ <= now_.
  SimTime epoch_time_ = 0.0;
  EventQueue events_;

  std::vector<Flow> flows_;             // indexed by FlowId; never shrinks
  std::vector<FlowCallback> flow_done_; // parallel to flows_
  std::vector<FlowId> active_flows_;
  // Reused by reallocate() so steady-state control passes are allocation-free
  // (grows to the high-water mark of the active set, never shrinks).
  std::vector<Flow*> active_scratch_;

  // Completion-time min-heap (lazy mode). Cleared and re-heapified once per
  // accounting epoch; entries invalidated in between are discarded lazily
  // via the generation stamp.
  std::vector<CompletionEntry> completion_heap_;
  bool completion_heap_dirty_ = true;
  std::uint64_t heap_gen_ = 0;
  // Scratch for the heap retirement pass (due flows, sorted descending id).
  std::vector<FlowId> retire_scratch_;
  // Scratch for the step-1 batch event drain (EventQueue::pop_due): all
  // events due within the simultaneity window, in submission order.
  std::vector<EventQueue::Callback> due_cbs_;

  // Timer callbacks live in a pooled side table so the EventQueue entry only
  // captures {this, slot} -- small enough for std::function's small-object
  // buffer, making steady-state schedule_at/fire allocation-free.
  std::vector<TimerCallback> timer_pool_;
  std::vector<std::uint32_t> timer_free_;

  std::vector<Worker> workers_;
  std::vector<ComputeTask> tasks_;
  std::vector<TaskCallback> task_done_;

  std::vector<FlowCallback> flow_listeners_;
  std::vector<FlowCallback> flow_arrival_listeners_;
  std::vector<TaskCallback> task_listeners_;
  UnroutableHandler unroutable_handler_;

  bool allocation_dirty_ = false;
  // True when swap-and-pop retirement has perturbed active_flows_ away from
  // ascending-FlowId order.
  bool active_order_dirty_ = false;
  std::uint64_t control_invocations_ = 0;

  // --- incremental control plane (DESIGN.md §12) ---
  // Dirty-job marks accumulated since the last control pass. Deduplicated
  // linearly (the set is capped at kMaxDirtyJobs before escalating to the
  // all-dirty flag, so the scan is a handful of comparisons); starts
  // all-dirty so the first pass after construction or set_scheduler is a
  // full one.
  static constexpr std::size_t kMaxDirtyJobs = 64;
  std::vector<std::uint64_t> dirty_jobs_;
  bool all_jobs_dirty_ = true;
  // Bumped in stamp_active_flows whenever dt > 0 (the only place byte
  // accounting advances).
  std::uint64_t accounting_gen_ = 0;

  // --- observability (null by default: every emission site is one branch) ---
  obs::TraceSink* trace_ = nullptr;
  obs::TraceDetail trace_detail_ = obs::TraceDetail::kOff;
  obs::MetricsRegistry* metrics_ = nullptr;
  // Instruments resolved once in set_metrics (stable registry node
  // addresses), so sampling never performs a name lookup.
  obs::Histogram* m_flow_completion_ = nullptr;
  obs::Histogram* m_queue_depth_ = nullptr;
  obs::Series* m_active_flows_ = nullptr;
  std::vector<obs::Series*> m_link_util_;   // indexed by LinkId
  std::vector<double> link_rate_scratch_;   // per-link allocated-rate sums
};

}  // namespace echelon::netsim
