// Fluid flow-level discrete-event simulator.
//
// The simulator advances between "interesting" instants: scheduled events
// (timers, task completions, deferred flow submissions) and flow completion
// times implied by the current rate allocation. Between instants every active
// flow transmits at a constant rate, so progress is exact (no time stepping).
//
// The control loop per instant:
//   1. fire all due events (may submit flows / enqueue tasks),
//   2. if the active flow set changed, let the NetworkScheduler assign
//      weights and rate caps, then recompute rates with the RateAllocator,
//   3. advance to min(next event, earliest flow completion), draining
//      `rate * dt` bytes from each active flow,
//   4. retire finished flows (callbacks may again mutate state).

#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "netsim/allocator.hpp"
#include "netsim/compute.hpp"
#include "netsim/event_queue.hpp"
#include "netsim/flow.hpp"
#include "netsim/scheduler.hpp"
#include "topology/graph.hpp"

namespace echelon::netsim {

class Simulator {
 public:
  using FlowCallback = std::function<void(Simulator&, const Flow&)>;
  using TaskCallback = std::function<void(Simulator&, const ComputeTask&)>;
  using TimerCallback = std::function<void(Simulator&)>;

  explicit Simulator(const topology::Topology* topo);

  // Non-copyable: owns callbacks holding references to itself.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] const topology::Topology& topology() const noexcept {
    return *topo_;
  }

  // --- control plane ---
  // `scheduler` must outlive the simulator run. Defaults to fair sharing.
  void set_scheduler(NetworkScheduler* scheduler) noexcept;
  [[nodiscard]] NetworkScheduler& scheduler() noexcept { return *scheduler_; }

  // --- workers / compute ---
  WorkerId add_worker(NodeId host, std::string name = {});
  [[nodiscard]] const Worker& worker(WorkerId id) const {
    return workers_.at(id.value());
  }
  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }

  // Enqueues a task on a worker's FIFO queue; it starts as soon as the GPU
  // is free. `on_done` fires at completion.
  TaskId enqueue_task(WorkerId worker, Duration duration, std::string label,
                      JobId job = {}, TaskCallback on_done = {});
  [[nodiscard]] const ComputeTask& task(TaskId id) const {
    return tasks_.at(id.value());
  }

  // --- flows ---
  // Submits a flow that starts *now*. `on_done` fires at completion.
  FlowId submit_flow(FlowSpec spec, FlowCallback on_done = {});
  [[nodiscard]] const Flow& flow(FlowId id) const {
    return flows_.at(id.value());
  }
  [[nodiscard]] std::size_t flow_count() const noexcept {
    return flows_.size();
  }
  [[nodiscard]] std::size_t active_flow_count() const noexcept {
    return active_flows_.size();
  }

  // Mutable flow access for schedulers (weights/caps).
  [[nodiscard]] Flow& flow_mutable(FlowId id) { return flows_.at(id.value()); }

  // --- timers ---
  void schedule_at(SimTime at, TimerCallback cb);
  void schedule_after(Duration delay, TimerCallback cb) {
    schedule_at(now_ + delay, std::move(cb));
  }

  // --- global listeners (metrics collection) ---
  void add_flow_listener(FlowCallback cb) {
    flow_listeners_.push_back(std::move(cb));
  }
  // Fires when a flow enters the network (start time fixed). Used by the
  // EchelonFlow registry to bind reference times under any scheduler.
  void add_flow_arrival_listener(FlowCallback cb) {
    flow_arrival_listeners_.push_back(std::move(cb));
  }
  void add_task_listener(TaskCallback cb) {
    task_listeners_.push_back(std::move(cb));
  }

  // Forces a scheduler + allocator pass before the next advance. Schedulers
  // call this when external state (e.g. a new EchelonFlow registration)
  // changes their decisions.
  void invalidate_allocation() noexcept { allocation_dirty_ = true; }

  // Runs until the event queue is empty and no flows are active, or until
  // `deadline`. Returns the simulation time reached.
  SimTime run(SimTime deadline = kTimeInfinity);

  // Count of scheduler control passes -- a measure of control-plane load.
  [[nodiscard]] std::uint64_t control_invocations() const noexcept {
    return control_invocations_;
  }

 private:
  void reallocate();
  void start_next_task(WorkerId worker);
  void finish_task(TaskId id);
  void finish_flow(FlowId id);
  // Re-establishes ascending-FlowId order of active_flows_ after swap-and-pop
  // retirements (callback and scheduler tie-break order depend on it).
  void restore_active_order();
  [[nodiscard]] SimTime earliest_completion() const noexcept;

  const topology::Topology* topo_;
  RateAllocator allocator_;
  FairSharingScheduler default_scheduler_;
  NetworkScheduler* scheduler_;

  SimTime now_ = 0.0;
  EventQueue events_;

  std::vector<Flow> flows_;             // indexed by FlowId; never shrinks
  std::vector<FlowCallback> flow_done_; // parallel to flows_
  std::vector<FlowId> active_flows_;
  // Reused by reallocate() so steady-state control passes are allocation-free
  // (grows to the high-water mark of the active set, never shrinks).
  std::vector<Flow*> active_scratch_;

  std::vector<Worker> workers_;
  std::vector<ComputeTask> tasks_;
  std::vector<TaskCallback> task_done_;

  std::vector<FlowCallback> flow_listeners_;
  std::vector<FlowCallback> flow_arrival_listeners_;
  std::vector<TaskCallback> task_listeners_;

  bool allocation_dirty_ = false;
  // True when swap-and-pop retirement has perturbed active_flows_ away from
  // ascending-FlowId order.
  bool active_order_dirty_ = false;
  std::uint64_t control_invocations_ = 0;
};

}  // namespace echelon::netsim
