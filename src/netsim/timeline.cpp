#include "netsim/timeline.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace echelon::netsim {

TimelineRecorder::TimelineRecorder(Simulator& sim) {
  sim.add_task_listener([this](Simulator&, const ComputeTask& t) {
    records_.push_back(
        Record{t.worker, t.label, t.start_time, t.finish_time});
    worker_count_ =
        std::max(worker_count_, static_cast<std::size_t>(t.worker.value() + 1));
  });
}

std::string TimelineRecorder::cell_code(const std::string& label) {
  // Phase letter: first alphabetic character after any "it<K>." iteration
  // prefix (so "it0.f.s2.mb3" codes as forward, not as micro-batch).
  std::size_t pos = 0;
  if (label.rfind("it", 0) == 0) {
    std::size_t k = 2;
    while (k < label.size() &&
           std::isdigit(static_cast<unsigned char>(label[k]))) {
      ++k;
    }
    if (k < label.size() && label[k] == '.') pos = k + 1;
  }
  while (pos < label.size() &&
         !std::isalpha(static_cast<unsigned char>(label[pos]))) {
    ++pos;
  }
  // Trailing digits (micro-batch / layer index).
  std::size_t dend = label.size();
  while (dend > 0 && std::isdigit(static_cast<unsigned char>(label[dend - 1]))) {
    --dend;
  }
  std::string code;
  if (pos < label.size()) code += label[pos];
  code += label.substr(dend, 2);
  if (code.empty()) code = "#";
  return code;
}

std::string TimelineRecorder::render(Duration slot,
                                     std::size_t max_slots) const {
  SimTime end = 0.0;
  for (const Record& r : records_) end = std::max(end, r.finish);
  if (slot <= 0.0 || records_.empty()) return "";
  const std::size_t slots =
      std::min(max_slots, static_cast<std::size_t>(end / slot + 0.999));

  // Cell width: longest code, min 2.
  std::size_t width = 2;
  for (const Record& r : records_) {
    width = std::max(width, cell_code(r.label).size());
  }

  std::ostringstream os;
  for (std::size_t w = 0; w < worker_count_; ++w) {
    std::vector<std::string> row(slots, std::string(width, '.'));
    for (const Record& r : records_) {
      if (r.worker.value() != w) continue;
      const auto first =
          static_cast<std::size_t>(std::max(0.0, r.start / slot + 0.25));
      const auto last = static_cast<std::size_t>(
          std::max(0.0, r.finish / slot - 0.25));
      std::string code = cell_code(r.label);
      code.resize(width, ' ');
      for (std::size_t k = first; k <= last && k < slots; ++k) row[k] = code;
    }
    os << 'w' << w << " | ";
    for (const std::string& cell : row) os << cell << ' ';
    os << "|\n";
  }
  return os.str();
}

}  // namespace echelon::netsim
