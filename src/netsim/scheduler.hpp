// Network control-plane interface.
//
// A NetworkScheduler observes flow arrivals/departures and, whenever the
// active set changes, assigns per-flow weights and rate caps that the
// RateAllocator then turns into feasible rates. Concrete policies:
//   * FairSharingScheduler (here)    -- TCP-like max-min fairness baseline
//   * CoflowMaddScheduler (echelon/) -- Varys-style SEBF + MADD
//   * EchelonMaddScheduler (echelon/)-- the paper's tardiness-minimizing
//                                       adaptation (Property 4)
//
// --- Incremental control plane (DESIGN.md §12) ------------------------------
// Mirroring the RateAllocator's AllocMode split, every scheduler runs in one
// of two modes:
//   * kFullRecompute -- the reference mode: each control() pass recomputes
//     every decision from the active span alone. Always correct, including
//     for hook-less callers that drive control() directly.
//   * kIncremental   -- dirty-job-scoped: the Simulator forwards per-job
//     dirty marks (arrivals, completions, fault outcomes, external
//     weight/cap churn observed through the Flow notification setters) via
//     mark_job_dirty / mark_all_jobs_dirty before each pass, and the
//     scheduler recomputes only the jobs affected -- with exact cross-job
//     invalidation where decisions couple through shared links or global
//     orderings. Requires the arrival/departure hooks and dirty marks to be
//     delivered (the Simulator always does); hook-less callers must stay on
//     kFullRecompute.
// Both modes produce bit-identical decisions; the equivalence suites
// (tests/test_churn_equivalence.cpp) enforce this across the full
// sched x fabric x chaos x threads matrix.

#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "netsim/flow.hpp"

namespace echelon::netsim {

class Simulator;

enum class SchedMode {
  kFullRecompute,  // reference: recompute everything every pass
  kIncremental,    // dirty-job-scoped recomputation (production)
};

// Control-plane cache telemetry, kept by the NetworkScheduler base and
// surfaced through run metrics (sched.* counters). Never feeds back into
// decisions, so the counters may differ between modes while results stay
// bit-identical.
struct SchedStats {
  std::uint64_t passes = 0;            // control() invocations
  std::uint64_t full_passes = 0;       // full recomputations (reference mode
                                       // or incremental all-dirty fallback)
  std::uint64_t scoped_passes = 0;     // dirty-job-scoped incremental passes
  std::uint64_t pass_skips = 0;        // exact no-op skips (nothing dirty)
  std::uint64_t groups_seen = 0;       // group visits across scoped passes
  std::uint64_t groups_scheduled = 0;  // groups recomputed in scoped passes
  std::uint64_t groups_reused = 0;     // era-valid cached rank keys reused
};

// Small sorted-unique accumulator for per-job dirty marks, shared by the
// incremental schedulers. The Simulator caps its forwarded set at 64 distinct
// jobs (escalating to mark_all_jobs_dirty beyond), so membership tests are a
// binary search over a handful of entries. Allocation-free after warm-up
// (the backing vector high-waters).
class DirtyJobSet {
 public:
  void mark(JobId job) {
    if (all_) return;
    const std::uint64_t v = job.value();
    if (std::find(jobs_.begin(), jobs_.end(), v) == jobs_.end()) {
      jobs_.push_back(v);
    }
  }
  void mark_all() noexcept {
    all_ = true;
    jobs_.clear();
  }
  // Sorts the accumulated marks so contains() can binary-search.
  void prepare() { std::sort(jobs_.begin(), jobs_.end()); }
  [[nodiscard]] bool contains(std::uint64_t job_value) const {
    return std::binary_search(jobs_.begin(), jobs_.end(), job_value);
  }
  [[nodiscard]] bool all() const noexcept { return all_; }
  [[nodiscard]] bool empty() const noexcept { return !all_ && jobs_.empty(); }
  [[nodiscard]] std::size_t count() const noexcept { return jobs_.size(); }
  void clear() noexcept {
    all_ = false;
    jobs_.clear();
  }

 private:
  std::vector<std::uint64_t> jobs_;  // unsorted until prepare()
  bool all_ = false;
};

class NetworkScheduler {
 public:
  virtual ~NetworkScheduler() = default;

  // Notification hooks. The simulator calls `control` after any arrival or
  // departure, before recomputing rates.
  virtual void on_flow_arrival(Simulator& sim, const Flow& flow) {
    (void)sim;
    (void)flow;
  }
  virtual void on_flow_departure(Simulator& sim, const Flow& flow) {
    (void)sim;
    (void)flow;
  }
  // Fired by Simulator::notify_topology_change after link capacities or
  // up/down state changed at runtime (fault injection, operator action).
  // Schedulers holding decisions derived from path capacities -- e.g. the
  // coordinator's signature-keyed rate cache -- must drop them here; the
  // default is a no-op because most policies recompute from scratch every
  // control pass.
  virtual void on_topology_change(Simulator& sim) { (void)sim; }

  // Dirty-mark hooks (DESIGN.md §12). The Simulator batches per-job marks
  // between control passes and forwards them right before control(); they
  // are *hints* that bound which jobs may need recomputation in
  // kIncremental mode. Defaults are no-ops so policies that recompute from
  // scratch every pass (and external callers) stay correct without changes.
  virtual void mark_job_dirty(JobId job) { (void)job; }
  virtual void mark_all_jobs_dirty() {}

  // Assign `weight` / `rate_cap` on the active flows. The allocator enforces
  // feasibility afterwards, so over-subscription degrades gracefully rather
  // than violating capacity.
  virtual void control(Simulator& sim, std::span<Flow*> active) = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  // Mode selection. Defaults to kFullRecompute so raw schedulers driven
  // without hooks keep their historical behavior; ExperimentConfig flips
  // production runs to kIncremental.
  void set_sched_mode(SchedMode mode) {
    sched_mode_ = mode;
    on_sched_mode(mode);
  }
  [[nodiscard]] SchedMode sched_mode() const noexcept { return sched_mode_; }

  [[nodiscard]] const SchedStats& sched_stats() const noexcept {
    return stats_;
  }

 protected:
  // Mode-change hook for decorators (the Coordinator forwards the mode to
  // its inner heuristic; the PriorityQueueEnforcer pins its inner policy to
  // kFullRecompute regardless).
  virtual void on_sched_mode(SchedMode mode) { (void)mode; }

  SchedMode sched_mode_ = SchedMode::kFullRecompute;
  SchedStats stats_;
};

// Plain weighted max-min fairness: every flow uncapped with weight 1. This is
// the "naive bandwidth fair sharing" baseline of Fig. 2.
//
// Incremental mode: fair sharing writes the same constants every pass, so a
// pass with no dirty marks is an exact no-op -- every active flow already
// carries weight 1 / no cap from the pass that admitted it, and only the
// schedulers themselves or externally-observed setter churn (which marks the
// owning job) can disturb that.
class FairSharingScheduler final : public NetworkScheduler {
 public:
  void control(Simulator&, std::span<Flow*> active) override {
    ++stats_.passes;
    if (sched_mode_ == SchedMode::kIncremental && !dirty_) {
      ++stats_.pass_skips;
      return;
    }
    for (Flow* f : active) {
      f->set_weight(1.0);
      f->clear_rate_cap();
    }
    dirty_ = false;
    ++stats_.full_passes;
  }
  void mark_job_dirty(JobId) override { dirty_ = true; }
  void mark_all_jobs_dirty() override { dirty_ = true; }
  [[nodiscard]] std::string name() const override { return "fair"; }

 private:
  bool dirty_ = true;  // conservatively dirty until the first pass
};

}  // namespace echelon::netsim
