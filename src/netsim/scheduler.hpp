// Network control-plane interface.
//
// A NetworkScheduler observes flow arrivals/departures and, whenever the
// active set changes, assigns per-flow weights and rate caps that the
// RateAllocator then turns into feasible rates. Concrete policies:
//   * FairSharingScheduler (here)    -- TCP-like max-min fairness baseline
//   * CoflowMaddScheduler (echelon/) -- Varys-style SEBF + MADD
//   * EchelonMaddScheduler (echelon/)-- the paper's tardiness-minimizing
//                                       adaptation (Property 4)

#pragma once

#include <span>
#include <string>

#include "netsim/flow.hpp"

namespace echelon::netsim {

class Simulator;

class NetworkScheduler {
 public:
  virtual ~NetworkScheduler() = default;

  // Notification hooks. The simulator calls `control` after any arrival or
  // departure, before recomputing rates.
  virtual void on_flow_arrival(Simulator& sim, const Flow& flow) {
    (void)sim;
    (void)flow;
  }
  virtual void on_flow_departure(Simulator& sim, const Flow& flow) {
    (void)sim;
    (void)flow;
  }
  // Fired by Simulator::notify_topology_change after link capacities or
  // up/down state changed at runtime (fault injection, operator action).
  // Schedulers holding decisions derived from path capacities -- e.g. the
  // coordinator's signature-keyed rate cache -- must drop them here; the
  // default is a no-op because most policies recompute from scratch every
  // control pass.
  virtual void on_topology_change(Simulator& sim) { (void)sim; }

  // Assign `weight` / `rate_cap` on the active flows. The allocator enforces
  // feasibility afterwards, so over-subscription degrades gracefully rather
  // than violating capacity.
  virtual void control(Simulator& sim, std::span<Flow*> active) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

// Plain weighted max-min fairness: every flow uncapped with weight 1. This is
// the "naive bandwidth fair sharing" baseline of Fig. 2.
class FairSharingScheduler final : public NetworkScheduler {
 public:
  void control(Simulator&, std::span<Flow*> active) override {
    for (Flow* f : active) {
      f->set_weight(1.0);
      f->clear_rate_cap();
    }
  }
  [[nodiscard]] std::string name() const override { return "fair"; }
};

}  // namespace echelon::netsim
