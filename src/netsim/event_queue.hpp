// Deterministic time-ordered event queue.
//
// Ties in time are broken by insertion sequence number, so two events
// scheduled for the same instant always fire in the order they were
// scheduled -- a requirement for reproducible simulations.

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/time.hpp"

namespace echelon::netsim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  void schedule(SimTime at, Callback cb) {
    heap_.push(Entry{at, seq_++, std::move(cb)});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  [[nodiscard]] SimTime next_time() const noexcept {
    return heap_.empty() ? kTimeInfinity : heap_.top().at;
  }

  // Pops and returns the earliest event. Precondition: !empty().
  [[nodiscard]] Callback pop() {
    // std::priority_queue::top() returns const&; the callback must be moved
    // out, so we const_cast the owned entry. Safe: the entry is removed
    // immediately after and never observed again.
    Callback cb = std::move(const_cast<Entry&>(heap_.top()).cb);
    heap_.pop();
    return cb;
  }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Callback cb;
    // Min-heap: earliest time first, then lowest sequence number.
    bool operator<(const Entry& other) const noexcept {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  std::priority_queue<Entry> heap_;
  std::uint64_t seq_ = 0;
};

}  // namespace echelon::netsim
