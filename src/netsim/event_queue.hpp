// Deterministic time-ordered event queue.
//
// Ties in time are broken by insertion sequence number, so two events
// scheduled for the same instant always fire in the order they were
// scheduled -- a requirement for reproducible simulations.
//
// "Same instant" is subtle: the simulator compares times with a *relative*
// tolerance (time_eq), but the heap orders entries by their exact double
// values (time_eq is not transitive, so it cannot be a strict-weak-order
// tie-break inside the comparator). Two events whose timestamps are
// epsilon-close but bitwise distinct would pop in timestamp order -- i.e.
// *reverse* submission order when the later-submitted event computed the
// arithmetically smaller double for the same instant. pop_due() exists to
// repair this: it drains every entry due at a horizon and hands them back
// sorted by submission sequence, so callers that batch-fire a simultaneity
// window observe global submission order within it.
//
// Hot-path layout (DESIGN.md "Event-loop fast path"): the heap itself is a
// plain vector of 24-byte POD entries ordered with std::push_heap/pop_heap,
// and the callbacks live in a side pool indexed by slot. Compared to the
// seed's std::priority_queue<Entry{..., std::function}>:
//   * heap sift operations move trivially-copyable entries instead of
//     std::function objects (no virtual dispatch, no potential allocation
//     per swap),
//   * pop() moves the callback out of the owned pool slot -- no const_cast
//     of priority_queue::top() needed,
//   * slots are recycled through a free list, so once the queue has grown to
//     its high-water depth, schedule()/pop() perform zero heap allocations
//     beyond whatever the caller's std::function itself captures (callbacks
//     whose captures fit the small-object buffer are entirely allocation
//     free).

#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/time.hpp"

namespace echelon::netsim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  void schedule(SimTime at, Callback cb) {
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      pool_[slot] = std::move(cb);
    } else {
      slot = static_cast<std::uint32_t>(pool_.size());
      pool_.push_back(std::move(cb));
    }
    heap_.push_back(Entry{at, seq_++, slot});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  [[nodiscard]] SimTime next_time() const noexcept {
    return heap_.empty() ? kTimeInfinity : heap_.front().at;
  }

  // Pops and returns the earliest event. Precondition: !empty().
  [[nodiscard]] Callback pop() {
    assert(!heap_.empty());
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    const Entry e = heap_.back();
    heap_.pop_back();
    Callback cb = std::move(pool_[e.slot]);
    pool_[e.slot] = nullptr;  // release captured state deterministically
    free_slots_.push_back(e.slot);
    return cb;
  }

  // Drains every entry due at `horizon` (time_le, i.e. the simulator's
  // relative simultaneity window) and appends their callbacks to `out`
  // sorted by submission sequence. This is the stable-order batch pop the
  // run loop uses: entries whose timestamps are epsilon-equal but bitwise
  // distinct still fire in the order they were scheduled. Events scheduled
  // *during* the resulting callbacks carry higher sequence numbers and join
  // the caller's next batch, so global submission order is preserved across
  // batches too. Uses a member scratch vector: steady-state calls allocate
  // nothing once high-water sizes are reached.
  void pop_due(SimTime horizon, std::vector<Callback>& out) {
    due_scratch_.clear();
    while (!heap_.empty() && time_le(heap_.front().at, horizon)) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      due_scratch_.push_back(heap_.back());
      heap_.pop_back();
    }
    // The common batch is a single due entry (steady-state event loops fire
    // one event per instant); sorting is only meaningful from two up.
    if (due_scratch_.size() > 1) {
      std::sort(due_scratch_.begin(), due_scratch_.end(),
                [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
    }
    for (const Entry& e : due_scratch_) {
      out.push_back(std::move(pool_[e.slot]));
      pool_[e.slot] = nullptr;
      free_slots_.push_back(e.slot);
    }
  }

  // Total events ever scheduled (the tie-break sequence counter). Part of
  // the service snapshot's verification image: two runs that executed the
  // same event history have the same counter.
  [[nodiscard]] std::uint64_t scheduled_seq() const noexcept { return seq_; }

  // Visits the (at, seq) key of every pending entry in unspecified (heap)
  // order. Callbacks are opaque closures and cannot be serialized, but the
  // multiset of pending keys is a strong fingerprint of queue state -- the
  // service snapshot folds it into an order-insensitive digest.
  template <typename Visitor>
  void for_each_pending(Visitor&& visit) const {
    for (const Entry& e : heap_) visit(e.at, e.seq);
  }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  // Comparator for std::*_heap (which builds a max-heap): "a fires later
  // than b" puts the earliest (time, then sequence) entry at the front.
  struct Later {
    [[nodiscard]] bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::vector<Entry> heap_;
  std::vector<Callback> pool_;          // slot -> pending callback
  std::vector<std::uint32_t> free_slots_;
  std::vector<Entry> due_scratch_;      // pop_due batch, reused across calls
  std::uint64_t seq_ = 0;
};

}  // namespace echelon::netsim
