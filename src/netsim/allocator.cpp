#include "netsim/allocator.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <unordered_map>

namespace echelon::netsim {

namespace {

struct LinkLoad {
  double remaining_capacity = 0.0;
  double unfrozen_weight = 0.0;  // sum of weights of unfrozen flows here
};

}  // namespace

void RateAllocator::allocate(std::span<Flow*> flows) const {
  // Per-round link state, built only for links that carry at least one flow.
  std::unordered_map<std::uint64_t, LinkLoad> links;

  std::vector<Flow*> unfrozen;
  unfrozen.reserve(flows.size());
  for (Flow* f : flows) {
    if (f->finished()) {
      f->rate = 0.0;
      continue;
    }
    f->rate = 0.0;
    // Zero-size or zero-cap flows are trivially done / stalled.
    if (f->rate_cap && *f->rate_cap <= 0.0) continue;
    // A flow with an empty path (src == dst, e.g. loopback shard exchange)
    // is never network-limited; grant its cap or effectively-infinite rate.
    if (f->path.empty()) {
      f->rate = f->rate_cap ? *f->rate_cap
                            : std::numeric_limits<double>::infinity();
      continue;
    }
    unfrozen.push_back(f);
    for (LinkId lid : f->path) {
      auto [it, inserted] = links.try_emplace(lid.value());
      if (inserted) {
        it->second.remaining_capacity = topo_->link(lid).capacity;
      }
      it->second.unfrozen_weight += f->weight;
    }
  }

  // Progressive filling: repeatedly raise the "water level" (rate per unit
  // weight) until a link saturates or a flow reaches its cap; freeze and
  // repeat. Each round freezes at least one flow or saturates at least one
  // link, so the loop terminates in O(flows + links) rounds.
  while (!unfrozen.empty()) {
    // Max additional level permitted by each constraining link.
    double delta = std::numeric_limits<double>::infinity();
    for (const Flow* f : unfrozen) {
      for (LinkId lid : f->path) {
        const LinkLoad& ll = links.at(lid.value());
        assert(ll.unfrozen_weight > 0.0);
        delta = std::min(delta, ll.remaining_capacity / ll.unfrozen_weight);
      }
      if (f->rate_cap) {
        delta = std::min(delta, (*f->rate_cap - f->rate) / f->weight);
      }
    }
    if (!std::isfinite(delta)) break;  // defensive: no constraint found
    delta = std::max(delta, 0.0);

    // Apply the level increase and freeze exhausted flows.
    std::vector<Flow*> next;
    next.reserve(unfrozen.size());
    for (Flow* f : unfrozen) {
      const double inc = f->weight * delta;
      f->rate += inc;
      for (LinkId lid : f->path) {
        links.at(lid.value()).remaining_capacity -= inc;
      }
    }
    // Freezing pass (separate from the increment so all link updates land
    // before saturation checks).
    constexpr double kEps = 1e-12;
    for (Flow* f : unfrozen) {
      bool frozen = false;
      if (f->rate_cap && f->rate >= *f->rate_cap - kEps) {
        f->rate = *f->rate_cap;
        frozen = true;
      } else {
        for (LinkId lid : f->path) {
          if (links.at(lid.value()).remaining_capacity <= kEps) {
            frozen = true;
            break;
          }
        }
      }
      if (frozen) {
        for (LinkId lid : f->path) {
          links.at(lid.value()).unfrozen_weight -= f->weight;
        }
      } else {
        next.push_back(f);
      }
    }
    if (next.size() == unfrozen.size()) break;  // defensive: no progress
    unfrozen.swap(next);
  }
}

}  // namespace echelon::netsim
