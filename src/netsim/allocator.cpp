#include "netsim/allocator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace echelon::netsim {

std::uint32_t RateAllocator::uf_find(std::uint32_t slot) noexcept {
  // Path halving: each step links a node to its grandparent, flattening the
  // tree as a side effect of the lookup.
  while (uf_parent_[slot] != slot) {
    uf_parent_[slot] = uf_parent_[uf_parent_[slot]];
    slot = uf_parent_[slot];
  }
  return slot;
}

void RateAllocator::allocate(std::span<Flow*> flows, SimTime now) {
  ++pass_;
  ++stats_.passes;

  // Per-round link state, stamped only for links that carry at least one
  // flow (lazy epoch reset; no per-pass map rebuild).
  links_.begin_pass(*topo_);
  af_.clear();
  path_flat_.clear();
  uf_parent_.clear();
  prev_rate_.clear();
  rate_changed_.clear();

  // Snapshot incoming rates so the pass can report exactly which flows the
  // reallocation actually changed (the Simulator's heap-patch dirty set).
  for (const Flow* f : flows) prev_rate_.push_back(f->rate);

  // --- Phase A: scan. Classify trivial flows, build the contended flow
  // list, accumulate per-link loads, and thread the union-find through the
  // per-link owner slots. ---
  for (Flow* f : flows) {
    if (f->finished()) {
      f->rate = 0.0;
      continue;
    }
    f->rate = 0.0;
    // Zero-size or zero-cap flows are trivially done / stalled.
    if (f->rate_cap && *f->rate_cap <= 0.0) continue;
    // A flow with an empty path (src == dst, e.g. loopback shard exchange)
    // is never network-limited; grant its cap or effectively-infinite rate.
    if (f->path.empty()) {
      f->rate = f->rate_cap ? *f->rate_cap
                            : std::numeric_limits<double>::infinity();
      continue;
    }
    const auto slot = static_cast<std::uint32_t>(af_.size());
    // Clamp degenerate weights: a zero/negative weight used to divide by
    // zero in the water level (and trip the unfrozen_weight assert).
    const double w = f->weight > kMinFlowWeight ? f->weight : kMinFlowWeight;
    const auto begin = static_cast<std::uint32_t>(path_flat_.size());
    uf_parent_.push_back(slot);
    for (LinkId lid : f->path) {
      path_flat_.push_back(static_cast<std::uint32_t>(lid.value()));
      LinkLoad& ll = links_.touch(
          lid, LinkLoad{topo_->link(lid).capacity, 0.0, slot});
      ll.unfrozen_weight += w;
      if (ll.owner_slot != slot) {
        // Shared link: this flow contends with the link's first owner.
        const std::uint32_t ra = uf_find(ll.owner_slot);
        const std::uint32_t rb = uf_find(slot);
        if (ra != rb) uf_parent_[rb] = ra;
      }
    }
    af_.push_back(ActiveFlow{
        f, begin, static_cast<std::uint32_t>(path_flat_.size()), w});
  }

  // --- Phase B: label components in first-member order and bucket member
  // slots with a counting sort (preserves ascending span order within each
  // component -- the order the fill and the cache validation both rely on).
  const std::uint32_t n = static_cast<std::uint32_t>(af_.size());
  comp_of_root_.assign(n, kInvalidIndex);
  comp_of_.resize(n);
  std::uint32_t comps = 0;
  for (std::uint32_t s = 0; s < n; ++s) {
    const std::uint32_t r = uf_find(s);
    if (comp_of_root_[r] == kInvalidIndex) comp_of_root_[r] = comps++;
    comp_of_[s] = comp_of_root_[r];
  }
  comp_start_.assign(comps + 1, 0);
  for (std::uint32_t s = 0; s < n; ++s) ++comp_start_[comp_of_[s] + 1];
  for (std::uint32_t c = 0; c < comps; ++c) comp_start_[c + 1] += comp_start_[c];
  comp_cursor_.assign(comp_start_.begin(), comp_start_.end());
  comp_members_.resize(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    comp_members_[comp_cursor_[comp_of_[s]]++] = s;
  }

  // --- Phase C: per component, reuse the cached converged rates when the
  // inputs are provably unchanged, otherwise water-fill (and re-cache).
  //
  // Structured as validate -> fill -> merge so the fills can run on the
  // shared pool (DESIGN.md §10). The serial cache-validation pass collects
  // the miss list (ascending component order) plus each miss's in-place
  // refresh candidate; the fills -- pure functions of per-component inputs
  // writing only their own members' rates and their own (link-disjoint)
  // links_ slots -- run in any order on any thread; and every
  // order-sensitive effect (record stores, stats, kCompFill emission)
  // happens serially afterwards in ascending-component order. Both paths
  // execute identical floating-point expressions on identical operands, so
  // rates, stats, the dirty set and the trace stream are bit-identical at
  // any thread count, including the serial path. ---
  stats_.components += comps;
  const std::uint64_t filled_before = stats_.components_filled;
  fill_comps_.clear();
  fill_cands_.clear();
  for (std::uint32_t c = 0; c < comps; ++c) {
    const std::uint32_t* members = comp_members_.data() + comp_start_[c];
    const std::size_t count = comp_start_[c + 1] - comp_start_[c];
    if (mode_ == AllocMode::kIncremental && try_reuse(members, count)) {
      ++stats_.components_reused;
      continue;
    }
    fill_comps_.push_back(c);
    fill_cands_.push_back(reuse_candidate_);
  }

  const bool emit_comps = trace_ != nullptr && trace_components_;
  if (pool_ != nullptr && fill_comps_.size() > 1) {
    const unsigned workers =
        std::min<unsigned>(threads_ == 0 ? pool_->concurrency() : threads_,
                           pool_->concurrency());
    fill_scratch_.begin_pass(workers);
    if (emit_comps) comp_shards_.begin(workers);
    pool_->run(fill_comps_.size(), workers, [&](unsigned w, std::size_t i) {
      const std::uint32_t c = fill_comps_[i];
      const std::size_t count = comp_start_[c + 1] - comp_start_[c];
      water_fill(comp_members_.data() + comp_start_[c], count,
                 fill_scratch_.at(w));
      if (emit_comps) {
        comp_shards_.record(
            w, c,
            obs::TraceEvent{.kind = obs::TraceKind::kCompFill,
                            .t = now,
                            .id = pass_ - 1,
                            .job = obs::TraceEvent::kNone,
                            .ctx = c,
                            .value = static_cast<double>(count)});
      }
    });
    if (emit_comps) comp_shards_.merge_into(*trace_);
  } else {
    fill_scratch_.begin_pass(1);
    FillScratch& fs = fill_scratch_.at(0);
    for (const std::uint32_t c : fill_comps_) {
      const std::size_t count = comp_start_[c + 1] - comp_start_[c];
      water_fill(comp_members_.data() + comp_start_[c], count, fs);
      if (emit_comps) {
        trace_->record(
            obs::TraceEvent{.kind = obs::TraceKind::kCompFill,
                            .t = now,
                            .id = pass_ - 1,
                            .job = obs::TraceEvent::kNone,
                            .ctx = c,
                            .value = static_cast<double>(count)});
      }
    }
  }

  // Deterministic merge: record-cache stores walk the miss list in
  // ascending-component order, exactly as the interleaved serial loop did.
  // (Stores only read converged member rates and write cache/back-pointer
  // state components never share, so deferring them past the fills changes
  // no decision -- try_reuse of a later component never reads state stored
  // for an earlier one within the same pass.)
  stats_.components_filled += fill_comps_.size();
  if (mode_ == AllocMode::kIncremental) {
    for (std::size_t i = 0; i < fill_comps_.size(); ++i) {
      const std::uint32_t c = fill_comps_[i];
      reuse_candidate_ = fill_cands_[i];
      store_component(comp_members_.data() + comp_start_[c],
                      comp_start_[c + 1] - comp_start_[c]);
    }
    maybe_sweep_records(comps);
  }

  // --- Dirty-set handoff + notification consumption. ---
  for (std::size_t i = 0; i < flows.size(); ++i) {
    Flow* f = flows[i];
    f->control_dirty = false;
    if (f->rate != prev_rate_[i]) rate_changed_.push_back(f);
  }

  // Observability: one event per pass, read-only, behind the null-sink
  // branch (DESIGN.md §9 no-perturbation contract).
  if (trace_ != nullptr) {
    trace_->record(obs::TraceEvent{
        .kind = obs::TraceKind::kAllocPass,
        .t = now,
        .id = pass_ - 1,
        .job = obs::TraceEvent::kNone,
        .ctx = comps,
        .value =
            static_cast<double>(stats_.components_filled - filled_before)});
  }
}

void RateAllocator::water_fill(const std::uint32_t* members,
                               std::size_t count, FillScratch& fs) {
  // Progressive filling: repeatedly raise the "water level" (rate per unit
  // weight) until a link saturates or a flow reaches its cap; freeze and
  // repeat. Each round freezes at least one flow or saturates at least one
  // link, so the loop terminates in O(flows + links) rounds. Components are
  // link-disjoint by construction, so each per-link scratch slot is touched
  // by exactly one component's fill -- which is also what makes concurrent
  // fills of distinct components race-free (the mutable working set, `fs`,
  // is thread-confined per participant).
  std::vector<std::uint32_t>& unfrozen_ = fs.unfrozen;
  std::vector<std::uint32_t>& next_ = fs.next;
  unfrozen_.assign(members, members + count);
  while (!unfrozen_.empty()) {
    // Max additional level permitted by each constraining link.
    double delta = std::numeric_limits<double>::infinity();
    for (const std::uint32_t s : unfrozen_) {
      const ActiveFlow& a = af_[s];
      for (std::uint32_t p = a.path_begin; p < a.path_end; ++p) {
        const LinkLoad& ll = links_.at(LinkId{path_flat_[p]});
        assert(ll.unfrozen_weight > 0.0);
        delta = std::min(delta, ll.remaining_capacity / ll.unfrozen_weight);
      }
      if (a.flow->rate_cap) {
        delta =
            std::min(delta, (*a.flow->rate_cap - a.flow->rate) / a.weight);
      }
    }
    if (!std::isfinite(delta)) break;  // defensive: no constraint found
    delta = std::max(delta, 0.0);

    // Apply the level increase and freeze exhausted flows.
    next_.clear();
    for (const std::uint32_t s : unfrozen_) {
      const ActiveFlow& a = af_[s];
      const double inc = a.weight * delta;
      a.flow->rate += inc;
      for (std::uint32_t p = a.path_begin; p < a.path_end; ++p) {
        links_.at(LinkId{path_flat_[p]}).remaining_capacity -= inc;
      }
    }
    // Freezing pass (separate from the increment so all link updates land
    // before saturation checks).
    constexpr double kEps = 1e-12;
    for (const std::uint32_t s : unfrozen_) {
      const ActiveFlow& a = af_[s];
      Flow* f = a.flow;
      bool frozen = false;
      if (f->rate_cap && f->rate >= *f->rate_cap - kEps) {
        f->rate = *f->rate_cap;
        frozen = true;
      } else {
        for (std::uint32_t p = a.path_begin; p < a.path_end; ++p) {
          if (links_.at(LinkId{path_flat_[p]}).remaining_capacity <= kEps) {
            frozen = true;
            break;
          }
        }
      }
      if (frozen) {
        for (std::uint32_t p = a.path_begin; p < a.path_end; ++p) {
          links_.at(LinkId{path_flat_[p]}).unfrozen_weight -= a.weight;
        }
      } else {
        next_.push_back(s);
      }
    }
    if (next_.size() == unfrozen_.size()) break;  // defensive: no progress
    unfrozen_.swap(next_);
  }
}

bool RateAllocator::try_reuse(const std::uint32_t* members,
                              std::size_t count) {
  reuse_candidate_ = kInvalidIndex;
  // Resolve the candidate record through the first member's back-pointer.
  const std::uint64_t id0 = af_[members[0]].flow->id.value();
  if (id0 >= flow_rec_.size()) return false;
  const std::uint32_t rec_idx = flow_rec_[id0];
  if (rec_idx == kInvalidIndex) return false;
  CompRecord& rec = records_[rec_idx];
  if (rec.in_free_list || flow_rec_gen_[id0] != rec.gen) return false;
  if (rec.members.size() != count) return false;
  // Membership walk first: positional member identity. A record whose
  // member list still matches is an in-place refresh candidate even when
  // the value validation below fails -- steady control-plane churn rewrites
  // weights/caps of a stable component, and refreshing the existing slot
  // skips the back-pointer rewrite and the slab turnover entirely.
  for (std::size_t i = 0; i < count; ++i) {
    if (rec.members[i].id != af_[members[i]].flow->id.value()) return false;
  }
  reuse_candidate_ = rec_idx;
  if (rec.capacity_epoch != topo_->capacity_epoch()) return false;
  // Exact validation: bit-for-bit weight/cap values. Flow ids are never
  // reused and paths are immutable per id, so id equality implies path
  // equality; link capacities come from the topology and are pinned by the
  // capacity epoch above. Matching inputs therefore imply the cached rates
  // equal what water_fill would recompute, bit for bit. The control_dirty
  // check is a cheap setter-notification short-circuit; the value compare
  // is authoritative, so direct field writes are still detected.
  for (std::size_t i = 0; i < count; ++i) {
    const Flow* f = af_[members[i]].flow;
    const MemberSnap& m = rec.members[i];
    if (f->control_dirty) return false;
    if (m.weight != f->weight) return false;
    const bool has_cap = f->rate_cap.has_value();
    if (m.has_cap != has_cap) return false;
    if (has_cap && m.cap != *f->rate_cap) return false;
  }
  rec.last_used_pass = pass_;
  for (std::size_t i = 0; i < count; ++i) {
    af_[members[i]].flow->rate = rec.members[i].rate;
  }
  return true;
}

void RateAllocator::store_component(const std::uint32_t* members,
                                    std::size_t count) {
  if (reuse_candidate_ != kInvalidIndex) {
    // Same membership, new values: refresh the record in place. The slot,
    // its generation and every flow back-pointer stay valid.
    CompRecord& rec = records_[reuse_candidate_];
    rec.last_used_pass = pass_;
    rec.capacity_epoch = topo_->capacity_epoch();
    for (std::size_t i = 0; i < count; ++i) {
      const Flow* f = af_[members[i]].flow;
      MemberSnap& m = rec.members[i];
      m.weight = f->weight;
      m.has_cap = f->rate_cap.has_value();
      m.cap = f->rate_cap ? *f->rate_cap : 0.0;
      m.rate = f->rate;
    }
    return;
  }
  std::uint32_t idx;
  if (!record_free_.empty()) {
    idx = record_free_.back();
    record_free_.pop_back();
    records_[idx].in_free_list = false;
  } else {
    idx = static_cast<std::uint32_t>(records_.size());
    records_.emplace_back();
    // Keep the free list's capacity at least the slab size so the sweep
    // below never allocates.
    record_free_.reserve(records_.capacity());
  }
  CompRecord& rec = records_[idx];
  ++rec.gen;  // invalidates any stale references to a recycled slot
  rec.last_used_pass = pass_;
  rec.capacity_epoch = topo_->capacity_epoch();
  rec.members.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Flow* f = af_[members[i]].flow;
    const std::uint64_t id = f->id.value();
    MemberSnap& m = rec.members[i];
    m.id = id;
    m.weight = f->weight;
    m.has_cap = f->rate_cap.has_value();
    m.cap = f->rate_cap ? *f->rate_cap : 0.0;
    m.rate = f->rate;
    if (id >= flow_rec_.size()) {
      flow_rec_.resize(id + 1, kInvalidIndex);
      flow_rec_gen_.resize(id + 1, 0);
    }
    flow_rec_[id] = idx;
    flow_rec_gen_[id] = rec.gen;
  }
}

void RateAllocator::maybe_sweep_records(std::size_t live_components) {
  const std::size_t allocated = records_.size() - record_free_.size();
  if (allocated <= 2 * live_components + 64) return;
  // Mark-and-sweep: every live component touched its record this pass
  // (reuse or store), so anything with an older stamp is unreachable --
  // either superseded by a refill or orphaned by departed flows.
  for (std::uint32_t i = 0; i < records_.size(); ++i) {
    CompRecord& rec = records_[i];
    if (rec.in_free_list || rec.last_used_pass == pass_) continue;
    ++rec.gen;  // O(1) invalidation of all phantom flow references
    rec.in_free_list = true;
    record_free_.push_back(i);  // no alloc: capacity >= records_.capacity()
  }
}

}  // namespace echelon::netsim
